// Telemetry-bus tests: crash-durable snapshot sequencing (SIGKILL at
// the telemetry.publish commit site loses at most one interval and a
// respawned owner continues the numbering), cross-process trace merge
// determinism and pid/tid correctness, the dfmres-status-v1 JSON
// round-trip against a live two-worker campaign, and torn-snapshot
// tolerance in both readers.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/campaign.hpp"
#include "src/core/telemetry.hpp"
#include "src/util/crashpoint.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"

namespace dfmres {
namespace {

std::string make_root(const std::string& tag) {
  const std::string root = testing::TempDir() + "dfmres_telem_" + tag + "_" +
                           std::to_string(::getpid());
  EXPECT_TRUE(make_dir(root).is_ok());
  return root;
}

TelemetryOptions manual_options(const std::string& root,
                                const std::string& owner) {
  TelemetryOptions options;
  options.campaign_root = root;
  options.owner = owner;
  options.interval = std::chrono::nanoseconds(0);  // publish_now only
  return options;
}

/// Trimmed search budgets so worker-run jobs stay unit-test sized.
void trim(CampaignJobSpec& job) {
  job.flow.atpg.random_batches = 4;
  job.flow.atpg.backtrack_limit = 1000;
  job.resyn.max_iterations_per_phase = 8;
  job.resyn.reanalyses_per_iteration = 8;
}

CampaignWorkerOptions fast_worker(const std::string& root,
                                  const std::string& owner) {
  CampaignWorkerOptions options;
  options.campaign_root = root;
  options.owner = owner;
  options.total_threads = 1;
  options.heartbeat = std::chrono::milliseconds(20);
  options.lease_ttl = std::chrono::milliseconds(60);
  options.backoff_base = std::chrono::milliseconds(10);
  options.telemetry_interval = std::chrono::milliseconds(25);
  return options;
}

TEST(Telemetry, FileNameEncodesOwnerAndSeq) {
  EXPECT_EQ(telemetry_file_name("w42", 7), "w42.7.json");
  EXPECT_EQ(telemetry_file_name("coord", 123), "coord.123.json");
}

TEST(Telemetry, PublishNowAdvancesSeqAndWritesDurableSnapshots) {
  const std::string root = make_root("seq");
  TelemetryPublisher pub(manual_options(root, "w1"));
  ASSERT_TRUE(pub.init().is_ok());
  EXPECT_EQ(pub.next_seq(), 1u);
  ASSERT_TRUE(pub.publish_now().is_ok());
  ASSERT_TRUE(pub.publish_now().is_ok());
  EXPECT_EQ(pub.next_seq(), 3u);
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    const auto text =
        read_file(root + "/telemetry/" + telemetry_file_name("w1", seq));
    ASSERT_TRUE(text) << text.status().to_string();
    const auto doc = JsonValue::parse(*text);
    ASSERT_TRUE(doc) << doc.status().to_string();
    EXPECT_EQ(doc->find("schema")->as_string(), kTelemetrySchema);
    EXPECT_EQ(doc->find("owner")->as_string(), "w1");
    EXPECT_EQ(doc->find("seq")->as_number(), static_cast<double>(seq));
    EXPECT_EQ(doc->find("pid")->as_number(),
              static_cast<double>(::getpid()));
  }
}

/// Forks a child that publishes `publishes` snapshots for `owner`. The
/// parent arms DFMRES_CRASH_AFTER before calling; the child re-reads it
/// post-fork so the telemetry.publish crash site fires in the child.
int fork_publisher(const std::string& root, const std::string& owner,
                   int publishes) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    crash_point_rearm_from_env();
    TelemetryPublisher pub(manual_options(root, owner));
    if (!pub.init().is_ok()) ::_exit(2);
    for (int i = 0; i < publishes; ++i) {
      if (!pub.publish_now().is_ok()) ::_exit(3);
    }
    ::_exit(0);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return wstatus;
}

TEST(Telemetry, SeqStaysMonotonicAcrossSigkillAtPublishCommit) {
  const std::string root = make_root("sigkill");

  // Child dies at the second telemetry.publish commit: the seq-2 file
  // is already durable, the in-memory cursor advance is lost. That is
  // the worst instant for the protocol — the published file must be
  // whole and the numbering must not restart or skip.
  ASSERT_EQ(::setenv("DFMRES_CRASH_AFTER", "telemetry.publish:2", 1), 0);
  const int killed = fork_publisher(root, "w1", 5);
  ASSERT_EQ(::unsetenv("DFMRES_CRASH_AFTER"), 0);
  ASSERT_TRUE(WIFSIGNALED(killed)) << "publisher survived the crash point";
  EXPECT_EQ(WTERMSIG(killed), SIGKILL);

  EXPECT_TRUE(path_exists(root + "/telemetry/w1.1.json"));
  EXPECT_TRUE(path_exists(root + "/telemetry/w1.2.json"));
  EXPECT_FALSE(path_exists(root + "/telemetry/w1.3.json"));

  // Both survivors parse whole: exclusive-create + rename publication
  // cannot leave a torn document behind.
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    const auto text =
        read_file(root + "/telemetry/" + telemetry_file_name("w1", seq));
    ASSERT_TRUE(text);
    EXPECT_TRUE(JsonValue::parse(*text)) << "torn snapshot " << seq;
  }

  // A respawn under the same owner recovers the directory high-water
  // mark and continues the sequence instead of reusing a name.
  TelemetryPublisher pub(manual_options(root, "w1"));
  ASSERT_TRUE(pub.init().is_ok());
  EXPECT_EQ(pub.next_seq(), 3u);
  ASSERT_TRUE(pub.publish_now().is_ok());
  EXPECT_TRUE(path_exists(root + "/telemetry/w1.3.json"));
}

TEST(TelemetryHeavy, MergedTraceIsDeterministicWithRealPidTid) {
  CampaignManifest manifest;
  manifest.jobs.push_back({});
  CampaignJobSpec& spec = manifest.jobs[0];
  spec.name = "tlu";
  spec.design = "sparc_tlu";
  spec.resyn.q_max = 0;
  trim(spec);

  const std::string root = make_root("merge") + "/camp";
  ASSERT_TRUE(init_campaign_root(manifest, root).is_ok());
  const auto stats = run_campaign_worker(fast_worker(root, "w1"));
  ASSERT_TRUE(stats) << stats.status().to_string();

  const auto first = merge_campaign_trace(root);
  ASSERT_TRUE(first) << first.status().to_string();
  const auto second = merge_campaign_trace(root);
  ASSERT_TRUE(second) << second.status().to_string();
  // Byte-identical re-merge: the timeline is diffable evidence.
  EXPECT_EQ(*first, *second);

  const auto doc = JsonValue::parse(*first);
  ASSERT_TRUE(doc) << doc.status().to_string();
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);

  const double worker_pid = static_cast<double>(::getpid());
  bool saw_lease_process = false;
  bool saw_worker_process = false;
  bool saw_worker_span = false;
  bool saw_claim = false;
  for (const JsonValue& event : events->items()) {
    const std::string ph = event.find("ph")->as_string();
    const double pid = event.find("pid")->as_number();
    if (ph == "M") {
      const std::string name = event.find("name")->as_string();
      if (name == "process_name") {
        const std::string label =
            event.find("args")->find("name")->as_string();
        if (pid == 0.0 && label == "lease protocol") {
          saw_lease_process = true;
        }
        if (pid == worker_pid && label == "worker w1") {
          saw_worker_process = true;
        }
      }
      continue;
    }
    if (ph == "X") {
      // Every duration span belongs to the real worker process and
      // carries a thread row.
      EXPECT_EQ(pid, worker_pid);
      EXPECT_NE(event.find("tid"), nullptr);
      saw_worker_span = true;
    }
    if (ph == "i" && event.find("name")->as_string() == "lease.claim") {
      EXPECT_EQ(pid, 0.0);
      saw_claim = true;
    }
  }
  EXPECT_TRUE(saw_lease_process);
  EXPECT_TRUE(saw_worker_process);
  EXPECT_TRUE(saw_worker_span);
  EXPECT_TRUE(saw_claim);
}

TEST(TelemetryHeavy, StatusJsonRoundTripsAgainstLiveTwoWorkerCampaign) {
  CampaignManifest manifest;
  for (const char* name : {"tlu-a", "tlu-b"}) {
    manifest.jobs.push_back({});
    CampaignJobSpec& spec = manifest.jobs.back();
    spec.name = name;
    spec.design = "sparc_tlu";
    spec.resyn.q_max = 0;
    trim(spec);
  }

  const std::string root = make_root("status") + "/camp";
  ASSERT_TRUE(init_campaign_root(manifest, root).is_ok());

  std::thread a([&] { (void)run_campaign_worker(fast_worker(root, "w1")); });
  std::thread b([&] { (void)run_campaign_worker(fast_worker(root, "w2")); });

  // Poll the live campaign: read-only observation must succeed and
  // parse at every instant, whatever half-written mixture of leases,
  // shards and snapshots is on disk.
  for (int i = 0; i < 20; ++i) {
    const auto live = poll_campaign_status(root);
    ASSERT_TRUE(live) << live.status().to_string();
    const auto line = render_status_json(*live);
    const auto doc = JsonValue::parse(line);
    ASSERT_TRUE(doc) << doc.status().to_string();
    if (live->report_written) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  a.join();
  b.join();

  const auto status = poll_campaign_status(root);
  ASSERT_TRUE(status) << status.status().to_string();
  EXPECT_TRUE(status->report_written);
  EXPECT_EQ(status->jobs_total, 2u);
  EXPECT_EQ(status->done, 2u);
  EXPECT_EQ(status->eta_s, 0.0);
  ASSERT_EQ(status->jobs.size(), 2u);
  // Manifest order, both terminal.
  EXPECT_EQ(status->jobs[0].name, "tlu-a");
  EXPECT_EQ(status->jobs[1].name, "tlu-b");
  for (const JobStatusRow& job : status->jobs) {
    EXPECT_EQ(job.state, "done") << job.name;
    EXPECT_GE(job.runtime_s, 0.0);
  }
  // Both workers published snapshots from this pid.
  ASSERT_GE(status->workers.size(), 2u);
  for (const WorkerStatusRow& worker : status->workers) {
    EXPECT_EQ(worker.pid, static_cast<std::uint64_t>(::getpid()));
    EXPECT_GE(worker.seq, 1u);
  }

  // The machine interface round-trips: one newline-terminated line of
  // dfmres-status-v1 whose fields mirror the polled struct.
  const std::string line = render_status_json(*status);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  const auto doc = JsonValue::parse(line);
  ASSERT_TRUE(doc) << doc.status().to_string();
  EXPECT_EQ(doc->find("schema")->as_string(), kStatusSchema);
  EXPECT_TRUE(doc->find("report_written")->as_bool());
  EXPECT_EQ(doc->find("jobs_total")->as_number(), 2.0);
  EXPECT_EQ(doc->find("done")->as_number(), 2.0);
  ASSERT_EQ(doc->find("jobs")->items().size(), 2u);
  for (const JsonValue& job : doc->find("jobs")->items()) {
    EXPECT_EQ(job.find("state")->as_string(), "done");
  }
  ASSERT_GE(doc->find("workers")->items().size(), 2u);

  // Torn-snapshot tolerance: a crash mid-rename cannot happen, but a
  // half-copied or foreign file in telemetry/ must be skipped by both
  // readers, not fatal — and skipping keeps the merge byte-identical.
  const auto merged_before = merge_campaign_trace(root);
  ASSERT_TRUE(merged_before) << merged_before.status().to_string();
  ASSERT_TRUE(write_file_atomic(root + "/telemetry/w9.1.json",
                                "{\"schema\": \"dfmres-telem", "t")
                  .is_ok());
  ASSERT_TRUE(
      write_file_atomic(root + "/telemetry/w9.2.json", "", "t").is_ok());
  ASSERT_TRUE(write_file_atomic(root + "/telemetry/README", "not json", "t")
                  .is_ok());
  const auto merged_after = merge_campaign_trace(root);
  ASSERT_TRUE(merged_after) << merged_after.status().to_string();
  EXPECT_EQ(*merged_before, *merged_after);
  const auto tolerant = poll_campaign_status(root);
  ASSERT_TRUE(tolerant) << tolerant.status().to_string();
  EXPECT_EQ(tolerant->workers.size(), status->workers.size());
}

/// The `--follow` fix: across repeated polls a StatusPoller opens and
/// parses each telemetry snapshot at most once (per-owner seq cursors),
/// instead of rebuilding the full state from every file every tick.
TEST(Telemetry, FollowCursorParsesEachSnapshotAtMostOnce) {
  const std::string root = make_root("cursor") + "/camp";
  CampaignManifest manifest;
  manifest.jobs.push_back({});
  manifest.jobs[0].name = "tlu";
  manifest.jobs[0].design = "sparc_tlu";
  trim(manifest.jobs[0]);
  ASSERT_TRUE(init_campaign_root(manifest, root).is_ok());

  TelemetryPublisher w1(manual_options(root, "w1"));
  ASSERT_TRUE(w1.init().is_ok());
  ASSERT_TRUE(w1.publish_now().is_ok());
  ASSERT_TRUE(w1.publish_now().is_ok());
  TelemetryPublisher w2(manual_options(root, "w2"));
  ASSERT_TRUE(w2.init().is_ok());
  ASSERT_TRUE(w2.publish_now().is_ok());

  StatusPoller poller(root);
  // Poll 1 reads the 3 existing snapshots once each.
  const auto first = poller.poll();
  ASSERT_TRUE(first) << first.status().to_string();
  EXPECT_EQ(first->workers.size(), 2u);
  EXPECT_EQ(poller.snapshots_parsed(), 3u);
  // Poll 2: nothing new on disk, nothing re-read.
  const auto second = poller.poll();
  ASSERT_TRUE(second) << second.status().to_string();
  EXPECT_EQ(second->workers.size(), 2u);
  EXPECT_EQ(poller.snapshots_parsed(), 3u);
  // Poll 3 after one fresh snapshot: exactly one more parse, and the
  // rate derives from the (prev, last) pair held across polls.
  ASSERT_TRUE(w1.publish_now().is_ok());
  const auto third = poller.poll();
  ASSERT_TRUE(third) << third.status().to_string();
  EXPECT_EQ(poller.snapshots_parsed(), 4u);
  ASSERT_EQ(third->workers.size(), 2u);
  EXPECT_EQ(third->workers[0].owner, "w1");
  EXPECT_EQ(third->workers[0].seq, 3u);

  // The one-shot poll agrees with a fresh poller (same implementation).
  const auto one_shot = poll_campaign_status(root);
  ASSERT_TRUE(one_shot) << one_shot.status().to_string();
  ASSERT_EQ(one_shot->workers.size(), third->workers.size());
  EXPECT_EQ(one_shot->workers[0].seq, third->workers[0].seq);
  EXPECT_EQ(one_shot->workers[1].seq, third->workers[1].seq);
}

TEST(Telemetry, MergeWithoutManifestIsNotFound) {
  const std::string root = make_root("nomanifest");
  const auto merged = merge_campaign_trace(root);
  ASSERT_FALSE(merged);
  EXPECT_EQ(merged.code(), StatusCode::kNotFound);
  const auto status = poll_campaign_status(root);
  ASSERT_FALSE(status);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dfmres
