// Request-surface tests: the single options-validation registry shared
// by manifests, CLI flags and the dfmres-request-v1 wire form; strict
// request parsing; wire round-trips; campaign-id validation.

#include "src/core/request.hpp"

#include <string>

#include "gtest/gtest.h"
#include "src/core/campaign.hpp"
#include "src/util/json.hpp"

namespace dfmres {
namespace {

using Mode = CampaignJobSpec::Mode;

// ---- the shared field registry -------------------------------------------

TEST(JobFieldRegistry, TextValuesApplyWithRangeChecks) {
  CampaignJobSpec job;
  EXPECT_TRUE(apply_job_field_text(&job, "utilization", "0.65", "t").is_ok());
  EXPECT_DOUBLE_EQ(job.flow.utilization, 0.65);
  EXPECT_TRUE(apply_job_field_text(&job, "q_max", "7", "t").is_ok());
  EXPECT_EQ(job.resyn.q_max, 7);
  EXPECT_TRUE(apply_job_field_text(&job, "p1_pct", "25", "t").is_ok());
  EXPECT_DOUBLE_EQ(job.resyn.p1, 0.25);
  EXPECT_TRUE(apply_job_field_text(&job, "mode", "flow", "t").is_ok());
  EXPECT_EQ(job.mode, Mode::Flow);
  EXPECT_TRUE(apply_job_field_text(&job, "seed", "42", "t").is_ok());
  EXPECT_EQ(job.flow.atpg.seed, 42u);
  EXPECT_TRUE(apply_job_field_text(&job, "deadline", "500ms", "t").is_ok());
  EXPECT_EQ(job.deadline, std::chrono::nanoseconds(500'000'000));

  // Out of range / wrong type / unknown key all fail loudly.
  EXPECT_EQ(apply_job_field_text(&job, "q_max", "101", "t").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(apply_job_field_text(&job, "q_max", "2.5", "t").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(apply_job_field_text(&job, "q_max", "5x", "t").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(apply_job_field_text(&job, "utilization", "0.01", "t").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(apply_job_field_text(&job, "mode", "turbo", "t").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(apply_job_field_text(&job, "no_such_knob", "1", "t").code(),
            StatusCode::kInvalidArgument);
  // The error message names the caller's locus.
  const Status s = apply_job_field_text(&job, "q_max", "101", "job 3");
  EXPECT_NE(s.message().find("job 3"), std::string::npos);
}

TEST(JobFieldRegistry, JsonAndTextPathsAgree) {
  // The same knob set through both front-ends lands identically: one
  // registry row, two converters.
  CampaignJobSpec via_text;
  ASSERT_TRUE(apply_job_field_text(&via_text, "threads", "8", "t").is_ok());
  ASSERT_TRUE(
      apply_job_field_text(&via_text, "warm_start", "false", "t").is_ok());

  const auto doc =
      JsonValue::parse("{\"threads\": 8, \"warm_start\": false}");
  ASSERT_TRUE(doc);
  CampaignJobSpec via_json;
  for (const auto& [key, value] : doc->members()) {
    ASSERT_TRUE(apply_job_field_json(&via_json, key, value, "t").is_ok());
  }
  EXPECT_EQ(via_text.flow.atpg.num_threads, via_json.flow.atpg.num_threads);
  EXPECT_EQ(via_text.flow.warm_start, via_json.flow.warm_start);
}

TEST(JobFieldRegistry, JobSpecRoundTripsThroughWriter) {
  CampaignJobSpec job;
  job.name = "j1";
  job.design = "sparc_tlu";
  job.mode = Mode::Resyn;
  job.flow.utilization = 0.6;
  job.flow.atpg.seed = 99;
  job.resyn.q_max = 3;
  job.resyn.p1 = 0.5;
  job.deadline = std::chrono::milliseconds(1500);

  JsonWriter w;
  write_job_spec(w, job);
  const auto doc = JsonValue::parse(w.take());
  ASSERT_TRUE(doc) << doc.status().to_string();
  CampaignJobSpec back;
  ASSERT_TRUE(parse_job_spec(*doc, "round-trip", &back).is_ok());
  EXPECT_EQ(back.name, "j1");
  EXPECT_EQ(back.design, "sparc_tlu");
  EXPECT_EQ(back.mode, Mode::Resyn);
  EXPECT_DOUBLE_EQ(back.flow.utilization, 0.6);
  EXPECT_EQ(back.flow.atpg.seed, 99u);
  EXPECT_EQ(back.resyn.q_max, 3);
  EXPECT_DOUBLE_EQ(back.resyn.p1, 0.5);
  EXPECT_EQ(back.deadline, job.deadline);
}

TEST(JobFieldRegistry, ParseJobSpecRequiresNameAndDesign) {
  CampaignJobSpec out;
  const auto no_name = JsonValue::parse("{\"design\": \"d\"}");
  ASSERT_TRUE(no_name);
  EXPECT_EQ(parse_job_spec(*no_name, "t", &out).code(),
            StatusCode::kInvalidArgument);
  const auto no_design = JsonValue::parse("{\"name\": \"a\"}");
  ASSERT_TRUE(no_design);
  EXPECT_EQ(parse_job_spec(*no_design, "t", &out).code(),
            StatusCode::kInvalidArgument);
}

// ---- table-driven CLI flags ----------------------------------------------

TEST(CliFlagTable, MatchesBoundFlagsAndValidates) {
  static constexpr CliFlagBinding kFlags[] = {
      {"--q", "q_max"},
      {"--util", "utilization"},
  };
  CampaignJobSpec job;
  const char* argv_ok[] = {"--q", "5"};
  int i = 0;
  auto matched =
      match_job_flag(kFlags, 2, const_cast<char**>(argv_ok), &i, &job);
  ASSERT_TRUE(matched) << matched.status().to_string();
  EXPECT_TRUE(*matched);
  EXPECT_EQ(i, 1);  // consumed the value
  EXPECT_EQ(job.resyn.q_max, 5);

  // Unbound flag: not consumed, not an error.
  const char* argv_other[] = {"--write", "out.v"};
  i = 0;
  matched = match_job_flag(kFlags, 2, const_cast<char**>(argv_other), &i, &job);
  ASSERT_TRUE(matched);
  EXPECT_FALSE(*matched);
  EXPECT_EQ(i, 0);

  // Bound flag, bad value: the registry's validation error surfaces.
  const char* argv_bad[] = {"--q", "banana"};
  i = 0;
  matched = match_job_flag(kFlags, 2, const_cast<char**>(argv_bad), &i, &job);
  EXPECT_FALSE(matched);
  EXPECT_EQ(matched.status().code(), StatusCode::kInvalidArgument);

  // Bound flag with no value: invalid, not silently ignored.
  const char* argv_missing[] = {"--q"};
  i = 0;
  matched =
      match_job_flag(kFlags, 1, const_cast<char**>(argv_missing), &i, &job);
  EXPECT_FALSE(matched);
}

// ---- campaign ids --------------------------------------------------------

TEST(CampaignId, ValidatesDirectorySafety) {
  EXPECT_TRUE(validate_campaign_id("run-1").is_ok());
  EXPECT_TRUE(validate_campaign_id("A.b_c-9").is_ok());
  EXPECT_FALSE(validate_campaign_id("").is_ok());
  EXPECT_FALSE(validate_campaign_id(".").is_ok());
  EXPECT_FALSE(validate_campaign_id("..").is_ok());
  EXPECT_FALSE(validate_campaign_id("a/b").is_ok());
  EXPECT_FALSE(validate_campaign_id("__reserved").is_ok());
  EXPECT_FALSE(validate_campaign_id(std::string(200, 'x')).is_ok());
}

// ---- dfmres-request-v1 wire form -----------------------------------------

constexpr const char* kManifestJson =
    "{\"schema\": \"dfmres-campaign-manifest-v1\", \"jobs\": ["
    "{\"name\": \"a\", \"design\": \"sparc_tlu\", \"mode\": \"flow\"}]}";

TEST(ParseRequest, AcceptsEveryKind) {
  const std::string campaign =
      std::string("{\"schema\": \"dfmres-request-v1\", "
                  "\"kind\": \"submit_campaign\", \"id\": \"c1\", "
                  "\"manifest\": ") + kManifestJson + "}";
  auto r = parse_request(campaign);
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_STREQ(r->kind(), "submit_campaign");
  EXPECT_EQ(r->id(), "c1");
  const auto* cr = std::get_if<CampaignRequest>(&r->payload);
  ASSERT_NE(cr, nullptr);
  ASSERT_EQ(cr->manifest.jobs.size(), 1u);
  EXPECT_EQ(cr->manifest.jobs[0].design, "sparc_tlu");

  r = parse_request(
      "{\"schema\": \"dfmres-request-v1\", \"kind\": \"submit_job\", "
      "\"id\": \"j1\", \"job\": {\"name\": \"j1\", \"design\": \"d\", "
      "\"q_max\": 2}}");
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_STREQ(r->kind(), "submit_job");
  const auto* rr = std::get_if<RunRequest>(&r->payload);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->job.resyn.q_max, 2);

  r = parse_request("{\"schema\": \"dfmres-request-v1\", "
                    "\"kind\": \"status\"}");
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_STREQ(r->kind(), "status");
  EXPECT_EQ(r->id(), "");

  r = parse_request("{\"schema\": \"dfmres-request-v1\", "
                    "\"kind\": \"cancel\", \"id\": \"c1\"}");
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_STREQ(r->kind(), "cancel");

  r = parse_request("{\"schema\": \"dfmres-request-v1\", "
                    "\"kind\": \"drain\"}");
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_STREQ(r->kind(), "drain");
}

TEST(ParseRequest, RejectsMalformedDocuments) {
  const auto code = [](const std::string& text) {
    return parse_request(text).status().code();
  };
  EXPECT_EQ(code("not json"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("{}"), StatusCode::kInvalidArgument);
  // Wrong / missing schema.
  EXPECT_EQ(code("{\"schema\": \"dfmres-request-v2\", \"kind\": \"drain\"}"),
            StatusCode::kInvalidArgument);
  // Unknown kind.
  EXPECT_EQ(code("{\"schema\": \"dfmres-request-v1\", \"kind\": \"boop\"}"),
            StatusCode::kInvalidArgument);
  // Unknown top-level key: strict by design.
  EXPECT_EQ(code("{\"schema\": \"dfmres-request-v1\", \"kind\": \"drain\", "
                 "\"extra\": 1}"),
            StatusCode::kInvalidArgument);
  // submit_campaign without a manifest / with a malformed id.
  EXPECT_EQ(code("{\"schema\": \"dfmres-request-v1\", "
                 "\"kind\": \"submit_campaign\", \"id\": \"c1\"}"),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code(std::string("{\"schema\": \"dfmres-request-v1\", "
                             "\"kind\": \"submit_campaign\", "
                             "\"id\": \"../up\", \"manifest\": ") +
                 kManifestJson + "}"),
            StatusCode::kInvalidArgument);
  // Bad knob value inside the embedded job: the registry fires through
  // the wire path too.
  EXPECT_EQ(code("{\"schema\": \"dfmres-request-v1\", "
                 "\"kind\": \"submit_job\", \"id\": \"j\", "
                 "\"job\": {\"name\": \"j\", \"design\": \"d\", "
                 "\"q_max\": 101}}"),
            StatusCode::kInvalidArgument);
}

TEST(ParseRequest, WireRoundTrip) {
  Request request;
  CampaignJobSpec job;
  job.name = "j1";
  job.design = "sparc_tlu";
  job.mode = Mode::Flow;
  job.flow.atpg.seed = 7;
  request.payload = RunRequest{"j1", job};
  const std::string wire = request_to_json(request);
  const auto back = parse_request(wire);
  ASSERT_TRUE(back) << back.status().to_string() << " wire: " << wire;
  EXPECT_EQ(request_to_json(*back), wire);  // round-trip stable

  auto manifest = CampaignManifest::from_json(kManifestJson);
  ASSERT_TRUE(manifest);
  Request campaign;
  campaign.payload = CampaignRequest{"c9", std::move(*manifest)};
  const std::string wire2 = request_to_json(campaign);
  const auto back2 = parse_request(wire2);
  ASSERT_TRUE(back2) << back2.status().to_string() << " wire: " << wire2;
  EXPECT_EQ(request_to_json(*back2), wire2);
}

}  // namespace
}  // namespace dfmres
