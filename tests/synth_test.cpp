#include <gtest/gtest.h>

#include <algorithm>

#include "src/library/osu018.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/synth/aig.hpp"
#include "src/synth/cuts.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/rng.hpp"

namespace dfmres {
namespace {

TEST(AigTest, ConstantFolding) {
  Aig aig;
  const auto a = Aig::make(aig.add_input(), false);
  EXPECT_EQ(aig.and2(a, Aig::kFalse), Aig::kFalse);
  EXPECT_EQ(aig.and2(a, Aig::kTrue), a);
  EXPECT_EQ(aig.and2(a, a), a);
  EXPECT_EQ(aig.and2(a, Aig::neg(a)), Aig::kFalse);
}

TEST(AigTest, StructuralHashing) {
  Aig aig;
  const auto a = Aig::make(aig.add_input(), false);
  const auto b = Aig::make(aig.add_input(), false);
  const auto x = aig.and2(a, b);
  const auto y = aig.and2(b, a);  // commuted
  EXPECT_EQ(x, y);
  const std::size_t before = aig.num_nodes();
  (void)aig.and2(a, b);
  EXPECT_EQ(aig.num_nodes(), before);
}

TEST(AigTest, XorAndMuxSimulate) {
  Aig aig;
  const auto a = Aig::make(aig.add_input(), false);
  const auto b = Aig::make(aig.add_input(), false);
  const auto s = Aig::make(aig.add_input(), false);
  aig.add_po(aig.xor2(a, b));
  aig.add_po(aig.mux(s, a, b));
  Rng rng(3);
  const std::uint64_t va = rng.next(), vb = rng.next(), vs = rng.next();
  const std::uint64_t in[] = {va, vb, vs};
  const auto values = aig.simulate(in);
  const auto eval = [&](Aig::Lit l) {
    const auto v = values[Aig::node_of(l)];
    return Aig::compl_of(l) ? ~v : v;
  };
  EXPECT_EQ(eval(aig.pos()[0]), va ^ vb);
  EXPECT_EQ(eval(aig.pos()[1]), (vs & va) | (~vs & vb));
}

TEST(AigTest, BuildFunctionMatchesTruthTable) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const int nvars = 1 + static_cast<int>(rng.below(6));
    const std::uint64_t mask =
        nvars == 6 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << (1u << nvars)) - 1);
    const std::uint64_t tt = rng.next() & mask;
    Aig aig;
    std::vector<Aig::Lit> ins;
    for (int i = 0; i < nvars; ++i) {
      ins.push_back(Aig::make(aig.add_input(), false));
    }
    aig.add_po(aig.build_function(tt, ins, nvars));
    // Drive input i with its characteristic pattern over 64 lanes.
    std::vector<std::uint64_t> words(static_cast<std::size_t>(nvars));
    for (int i = 0; i < nvars; ++i) {
      std::uint64_t w = 0;
      for (int lane = 0; lane < 64; ++lane) {
        if ((lane >> i) & 1) w |= std::uint64_t{1} << lane;
      }
      words[static_cast<std::size_t>(i)] = w;
    }
    const auto values = aig.simulate(words);
    const Aig::Lit po = aig.pos()[0];
    const std::uint64_t got = Aig::compl_of(po)
                                  ? ~values[Aig::node_of(po)]
                                  : values[Aig::node_of(po)];
    for (int lane = 0; lane < 64; ++lane) {
      const auto minterm = static_cast<std::uint32_t>(lane) &
                           ((1u << nvars) - 1);
      EXPECT_EQ((got >> lane) & 1, (tt >> minterm) & 1)
          << "trial " << trial << " lane " << lane;
    }
  }
}

/// Random AIG builder for property tests.
Aig random_aig(Rng& rng, int num_inputs, int num_ands, int num_pos) {
  Aig aig;
  std::vector<Aig::Lit> lits;
  for (int i = 0; i < num_inputs; ++i) {
    lits.push_back(Aig::make(aig.add_input(), false));
  }
  for (int i = 0; i < num_ands; ++i) {
    Aig::Lit a = lits[rng.below(lits.size())];
    Aig::Lit b = lits[rng.below(lits.size())];
    if (rng.flip()) a = Aig::neg(a);
    if (rng.flip()) b = Aig::neg(b);
    lits.push_back(aig.and2(a, b));
  }
  for (int i = 0; i < num_pos; ++i) {
    Aig::Lit l = lits[lits.size() - 1 - rng.below(std::min<std::size_t>(
                                              lits.size(), 16))];
    if (rng.flip()) l = Aig::neg(l);
    aig.add_po(l);
  }
  return aig;
}

std::vector<std::uint64_t> sim_pos(const Aig& aig,
                                   std::span<const std::uint64_t> in) {
  const auto values = aig.simulate(in);
  std::vector<std::uint64_t> out;
  for (Aig::Lit po : aig.pos()) {
    const auto v = values[Aig::node_of(po)];
    out.push_back(Aig::compl_of(po) ? ~v : v);
  }
  return out;
}

class BalanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BalanceProperty, PreservesFunctionAndNeverDeepens) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int num_inputs = 4 + static_cast<int>(rng.below(8));
  const Aig aig = random_aig(rng, num_inputs, 120, 6);
  const Aig bal = balance(aig);
  EXPECT_EQ(bal.num_inputs(), aig.num_inputs());
  ASSERT_EQ(bal.pos().size(), aig.pos().size());

  const auto depth = [](const Aig& a) {
    const auto lv = a.levels();
    std::uint32_t d = 0;
    for (Aig::Lit po : a.pos()) d = std::max(d, lv[Aig::node_of(po)]);
    return d;
  };
  EXPECT_LE(depth(bal), depth(aig));

  std::vector<std::uint64_t> words(static_cast<std::size_t>(num_inputs));
  for (int round = 0; round < 4; ++round) {
    for (auto& w : words) w = rng.next();
    EXPECT_EQ(sim_pos(aig, words), sim_pos(bal, words));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalanceProperty, ::testing::Range(0, 12));

TEST(Tt4Test, PadReplicates) {
  EXPECT_EQ(tt4::pad(0x2, 1), 0xAAAA);       // x0
  EXPECT_EQ(tt4::pad(0x8, 2), 0x8888);       // x0 & x1
  EXPECT_EQ(tt4::pad(0x6, 2), 0x6666);       // xor
}

TEST(Tt4Test, PermuteSwapsVariables) {
  // f = x0 & !x1 over 2 vars: tt = 0b0010 -> padded 0x2222.
  const std::uint16_t f = tt4::pad(0x2, 2);
  const std::uint16_t g = tt4::permute(f, 2, {1, 0, 2, 3});
  // g = x1 & !x0: minterm 2 only -> 0b0100 padded.
  EXPECT_EQ(g, tt4::pad(0x4, 2));
}

TEST(Tt4Test, FlipInputs) {
  const std::uint16_t f = tt4::pad(0x8, 2);  // and
  EXPECT_EQ(tt4::flip_inputs(f, 2, 0b01), tt4::pad(0x4, 2));  // !x0 & x1
  EXPECT_EQ(tt4::flip_inputs(f, 2, 0b11), tt4::pad(0x1, 2));  // nor
}

TEST(Tt4Test, DependsOn) {
  const std::uint16_t f = tt4::pad(0x8, 2);
  EXPECT_TRUE(tt4::depends_on(f, 0));
  EXPECT_TRUE(tt4::depends_on(f, 1));
  EXPECT_FALSE(tt4::depends_on(f, 2));
  EXPECT_FALSE(tt4::depends_on(tt4::pad(0x2, 1), 1));
}

TEST(CutSetTest, EnumeratesSmallCuts) {
  Aig aig;
  const auto a = Aig::make(aig.add_input(), false);
  const auto b = Aig::make(aig.add_input(), false);
  const auto c = Aig::make(aig.add_input(), false);
  const auto ab = aig.and2(a, b);
  const auto abc = aig.and2(ab, c);
  aig.add_po(abc);
  const CutSet cuts(aig);
  const auto& top = cuts.cuts(Aig::node_of(abc));
  // Expect at least: {ab, c} and {a, b, c} and trivial {abc}.
  bool found3 = false;
  for (const Cut& cut : top) {
    if (cut.size == 3) {
      found3 = true;
      // Function should be the AND of all three leaves.
      EXPECT_EQ(cut.tt, tt4::pad(0x80, 3));
    }
  }
  EXPECT_TRUE(found3);
}

TEST(MatchTableTest, FindsNandAndExcludesBanned) {
  const auto lib = osu018_library();
  {
    const MatchTable table(*lib, {});
    ASSERT_TRUE(table.inverter().has_value());
    EXPECT_EQ(lib->cell(*table.inverter()).name, "INVX1");
    // AND function over 2 leaves must be matched (AND2X2 or NOR2 variants).
    const auto* m = table.find(2, tt4::pad(0x8, 2));
    ASSERT_NE(m, nullptr);
    EXPECT_FALSE(m->empty());
  }
  {
    std::vector<bool> banned(lib->num_cells(), false);
    banned[lib->require("AND2X2").value()] = true;
    const MatchTable table(*lib, banned);
    const auto* m = table.find(2, tt4::pad(0x8, 2));
    if (m) {
      for (const MatchEntry& e : *m) {
        EXPECT_NE(lib->cell(e.cell).name, "AND2X2");
      }
    }
  }
}

// ---------- technology mapping ----------

/// Random netlist over the generic library.
Netlist random_generic(Rng& rng, int num_inputs, int num_gates, int num_pos) {
  const auto lib = generic_library();
  Netlist nl(lib, "rand");
  std::vector<NetId> nets;
  for (int i = 0; i < num_inputs; ++i) nets.push_back(nl.add_primary_input());
  const char* kCells[] = {"NOT", "AND2", "OR2",  "XOR2", "NAND2",
                          "NOR2", "MUX2", "AND3", "OR3",  "XNOR2"};
  for (int i = 0; i < num_gates; ++i) {
    const CellId cell = lib->require(kCells[rng.below(std::size(kCells))]);
    const CellSpec& spec = lib->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      // Bias toward recent nets to get depth.
      const std::size_t span = std::min<std::size_t>(nets.size(), 24);
      fanins.push_back(nets[nets.size() - 1 - rng.below(span)]);
    }
    nets.push_back(nl.gate(nl.add_gate(cell, fanins)).outputs[0]);
  }
  for (int i = 0; i < num_pos; ++i) {
    nl.mark_primary_output(nets[nets.size() - 1 - rng.below(16)]);
  }
  return nl;
}

std::vector<std::uint64_t> sim_outputs(const Netlist& nl,
                                       std::span<const std::uint64_t> pi) {
  const CombView view = CombView::build(nl);
  ParallelSimulator sim(nl, view);
  for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
    sim.set_source(nl.primary_inputs()[i], pi[i]);
  }
  sim.run();
  std::vector<std::uint64_t> out;
  for (NetId po : nl.primary_outputs()) out.push_back(sim.value(po));
  return out;
}

class MapperProperty : public ::testing::TestWithParam<int> {};

TEST_P(MapperProperty, MappedNetlistIsEquivalent) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const int num_inputs = 5 + static_cast<int>(rng.below(10));
  const Netlist src = random_generic(rng, num_inputs, 150, 8);
  const auto mapped = technology_map(src, osu018_library(), {});
  ASSERT_TRUE(mapped.has_value());
  EXPECT_TRUE(mapped->validate().empty());
  EXPECT_EQ(mapped->primary_inputs().size(), src.primary_inputs().size());
  ASSERT_EQ(mapped->primary_outputs().size(), src.primary_outputs().size());

  std::vector<std::uint64_t> pi(static_cast<std::size_t>(num_inputs));
  for (int round = 0; round < 4; ++round) {
    for (auto& w : pi) w = rng.next();
    EXPECT_EQ(sim_outputs(src, pi), sim_outputs(*mapped, pi))
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperProperty, ::testing::Range(0, 16));

TEST(MapperTest, BannedCellsDoNotAppear) {
  Rng rng(77);
  const Netlist src = random_generic(rng, 8, 120, 6);
  const auto lib = osu018_library();
  std::vector<bool> banned(lib->num_cells(), false);
  for (const char* name : {"AOI22X1", "OAI22X1", "MUX2X1", "XOR2X1",
                           "XNOR2X1", "AOI21X1", "OAI21X1"}) {
    banned[lib->require(name).value()] = true;
  }
  MapOptions options;
  options.banned = banned;
  const auto mapped = technology_map(src, lib, options);
  ASSERT_TRUE(mapped.has_value());
  for (GateId g : mapped->live_gates()) {
    EXPECT_FALSE(banned[mapped->gate(g).cell.value()])
        << mapped->cell_of(g).name;
  }
  // Still equivalent.
  std::vector<std::uint64_t> pi(8);
  for (auto& w : pi) w = rng.next();
  EXPECT_EQ(sim_outputs(src, pi), sim_outputs(*mapped, pi));
}

TEST(MapperTest, InsufficientCellSubsetFails) {
  Rng rng(78);
  const Netlist src = random_generic(rng, 6, 60, 4);
  const auto lib = osu018_library();
  std::vector<bool> banned(lib->num_cells(), true);
  // Leave only inverters: cannot implement AND-class logic.
  banned[lib->require("INVX1").value()] = false;
  MapOptions options;
  options.banned = banned;
  EXPECT_FALSE(technology_map(src, lib, options).has_value());
}

TEST(MapperTest, MinimalSufficientSubsetSucceeds) {
  Rng rng(79);
  const Netlist src = random_generic(rng, 6, 60, 4);
  const auto lib = osu018_library();
  std::vector<bool> banned(lib->num_cells(), true);
  banned[lib->require("INVX1").value()] = false;
  banned[lib->require("NAND2X1").value()] = false;
  MapOptions options;
  options.banned = banned;
  const auto mapped = technology_map(src, lib, options);
  ASSERT_TRUE(mapped.has_value());
  std::vector<std::uint64_t> pi(6);
  for (auto& w : pi) w = rng.next();
  EXPECT_EQ(sim_outputs(src, pi), sim_outputs(*mapped, pi));
}

TEST(MapperTest, FixedMacroMappingPreservesDffAndFa) {
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  Netlist src(glib, "seq");
  const NetId a = src.add_primary_input("a");
  const NetId b = src.add_primary_input("b");
  const NetId c = src.add_primary_input("c");
  const NetId fa_ins[] = {a, b, c};
  const GateId fa = src.add_gate(glib->require("FA"), fa_ins);
  const NetId carry = src.gate(fa).outputs[0];
  const NetId sum = src.gate(fa).outputs[1];
  const NetId x_ins[] = {carry, sum};
  const GateId x = src.add_gate(glib->require("XOR2"), x_ins);
  const NetId dff_in[] = {src.gate(x).outputs[0]};
  const GateId dff = src.add_gate(glib->require("DFF"), dff_in);
  src.mark_primary_output(src.gate(dff).outputs[0]);

  MapOptions options;
  options.fixed_map.emplace(glib->require("DFF").value(),
                            tlib->require("DFFPOSX1"));
  options.fixed_map.emplace(glib->require("FA").value(),
                            tlib->require("FAX1"));
  const auto mapped = technology_map(src, tlib, options);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_TRUE(mapped->validate().empty());
  int fax = 0, dffs = 0;
  for (GateId g : mapped->live_gates()) {
    fax += mapped->cell_of(g).name == "FAX1";
    dffs += mapped->cell_of(g).name == "DFFPOSX1";
  }
  EXPECT_EQ(fax, 1);
  EXPECT_EQ(dffs, 1);
}

TEST(MapperTest, ConstantOutputsAreMaterialized) {
  const auto glib = generic_library();
  Netlist src(glib, "const");
  const NetId a = src.add_primary_input("a");
  const NetId na_in[] = {a};
  const GateId inv = src.add_gate(glib->require("NOT"), na_in);
  const NetId and_ins[] = {a, src.gate(inv).outputs[0]};
  const GateId gand = src.add_gate(glib->require("AND2"), and_ins);
  src.mark_primary_output(src.gate(gand).outputs[0]);  // constant 0

  const auto mapped = technology_map(src, osu018_library(), {});
  ASSERT_TRUE(mapped.has_value());
  std::vector<std::uint64_t> pi(1);
  Rng rng(4);
  pi[0] = rng.next();
  const auto out = sim_outputs(*mapped, pi);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

}  // namespace
}  // namespace dfmres
