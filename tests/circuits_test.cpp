#include <gtest/gtest.h>

#include "src/circuits/benchmarks.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/stats.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/rng.hpp"

namespace dfmres {
namespace {

class BenchmarkCircuit : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkCircuit, BuildsValidAndNonTrivial) {
  const Netlist nl = build_benchmark(GetParam()).value();
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_GT(nl.num_live_gates(), 150u) << "blocks must be non-trivial";
  EXPECT_GT(nl.primary_inputs().size(), 8u);
  EXPECT_GT(nl.primary_outputs().size(), 4u);
  const CellUsage usage = cell_usage(nl);
  EXPECT_GT(usage.num_sequential, 8u) << "blocks are registered designs";
}

TEST_P(BenchmarkCircuit, Deterministic) {
  const Netlist a = build_benchmark(GetParam()).value();
  const Netlist b = build_benchmark(GetParam()).value();
  EXPECT_EQ(a.num_live_gates(), b.num_live_gates());
  EXPECT_EQ(a.num_live_nets(), b.num_live_nets());
  // Same structure: spot-check gate cells in order.
  const auto ga = a.live_gates(), gb = b.live_gates();
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(a.gate(ga[i]).cell, b.gate(gb[i]).cell);
  }
}

TEST_P(BenchmarkCircuit, MapsOntoStandardCells) {
  const Netlist rtl = build_benchmark(GetParam()).value();
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  const auto mapped = technology_map(rtl, tlib, mo);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_TRUE(mapped->validate().empty());
  EXPECT_EQ(mapped->primary_inputs().size(), rtl.primary_inputs().size());
  EXPECT_EQ(mapped->primary_outputs().size(), rtl.primary_outputs().size());
}

INSTANTIATE_TEST_SUITE_P(
    AllBlocks, BenchmarkCircuit,
    ::testing::Values("tv80", "systemcaes", "aes_core", "wb_conmax",
                      "des_perf", "sparc_spu", "sparc_ffu", "sparc_exu",
                      "sparc_ifu", "sparc_tlu", "sparc_lsu", "sparc_fpu"),
    [](const auto& info) { return info.param; });

/// Functional equivalence of mapping for two representative blocks (the
/// others exercise the same mapper; the property is already covered by
/// random netlists in synth_test).
class MappingEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(MappingEquivalence, RandomVectorsMatch) {
  const Netlist rtl = build_benchmark(GetParam()).value();
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  const auto mapped = technology_map(rtl, tlib, mo);
  ASSERT_TRUE(mapped.has_value());

  // Compare combinational behavior: drive PIs and pseudo-PIs (flop
  // outputs) identically. Flop ordering matches because fixed gates are
  // emitted in source order.
  const CombView va = CombView::build(rtl);
  const CombView vb = CombView::build(*mapped);
  ASSERT_EQ(va.sources.size(), vb.sources.size());
  ASSERT_EQ(va.observe.size(), vb.observe.size());
  ParallelSimulator sa(rtl, va);
  ParallelSimulator sb(*mapped, vb);
  Rng rng(42);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < va.sources.size(); ++i) {
      const std::uint64_t w = rng.next();
      sa.set_source(va.sources[i], w);
      sb.set_source(vb.sources[i], w);
    }
    sa.run();
    sb.run();
    for (std::size_t i = 0; i < va.observe.size(); ++i) {
      ASSERT_EQ(sa.value(va.observe[i]), sb.value(vb.observe[i]))
          << GetParam() << " observe " << i << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoBlocks, MappingEquivalence,
                         ::testing::Values("tv80", "sparc_tlu"),
                         [](const auto& info) { return info.param; });

TEST(C17, MatchesKnownStructure) {
  const Netlist c17 = build_c17();
  EXPECT_TRUE(c17.validate().empty());
  EXPECT_EQ(c17.num_live_gates(), 6u);
  EXPECT_EQ(c17.primary_inputs().size(), 5u);
  EXPECT_EQ(c17.primary_outputs().size(), 2u);
}

TEST(BenchmarkNames, TwelveBlocks) {
  EXPECT_EQ(benchmark_names().size(), 12u);
}

}  // namespace
}  // namespace dfmres
