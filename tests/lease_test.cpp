// Lease-protocol and multi-process campaign tests: claim arbitration
// (exactly-once, torn files, backoff, attempt budgets), heartbeat
// takeover, poison tombstones in the merged report, and the
// campaign-level crash-resume bit-identity contract (SIGKILL a worker
// mid-run, let another finish, canonical report equals the
// uninterrupted serial run).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/campaign.hpp"
#include "src/core/lease.hpp"
#include "src/util/crashpoint.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"

namespace dfmres {
namespace {

using Outcome = LeaseClaim::Outcome;

LeaseConfig fast_config(const std::string& owner) {
  LeaseConfig config;
  config.owner = owner;
  config.heartbeat_period = std::chrono::milliseconds(20);
  config.ttl = std::chrono::milliseconds(60);
  config.max_attempts = 3;
  config.backoff_base = std::chrono::milliseconds(10);
  return config;
}

/// A fresh lease root under the test temp dir.
std::string make_lease_root(const std::string& tag) {
  const std::string root = testing::TempDir() + "dfmres_lease_" + tag + "_" +
                           std::to_string(::getpid());
  EXPECT_TRUE(make_dir(root).is_ok());
  return root;
}

TEST(Lease, FreshJobIsClaimedAtEpochOne) {
  const std::string root = make_lease_root("fresh");
  const LeaseDir leases(root, fast_config("w1"));
  ASSERT_TRUE(leases.init().is_ok());
  const auto claim = leases.try_claim("job");
  ASSERT_TRUE(claim) << claim.status().to_string();
  EXPECT_EQ(claim->outcome, Outcome::Claimed);
  EXPECT_EQ(claim->epoch, 1);
  EXPECT_EQ(claim->attempt, 1);
  EXPECT_FALSE(claim->poison);
  // The holder is live: a second claim (any owner) is Busy.
  const LeaseDir other(root, fast_config("w2"));
  const auto busy = other.try_claim("job");
  ASSERT_TRUE(busy);
  EXPECT_EQ(busy->outcome, Outcome::Busy);
}

TEST(Lease, TornLeaseFileIsImmediatelyClaimable) {
  const std::string root = make_lease_root("torn");
  const LeaseDir leases(root, fast_config("w1"));
  ASSERT_TRUE(leases.init().is_ok());
  ASSERT_TRUE(make_dir(leases.job_dir("job")).is_ok());
  // A crash mid-publish leaves a truncated record; it must not wedge
  // the job until the TTL, it is claimable right away.
  ASSERT_TRUE(write_file_atomic(leases.epoch_path("job", 1),
                                "{\"schema\": \"dfmres-lea", "t")
                  .is_ok());
  const auto claim = leases.try_claim("job");
  ASSERT_TRUE(claim) << claim.status().to_string();
  EXPECT_EQ(claim->outcome, Outcome::Claimed);
  EXPECT_EQ(claim->epoch, 2);
}

TEST(Lease, EmptyLeaseFileIsImmediatelyClaimable) {
  const std::string root = make_lease_root("empty");
  const LeaseDir leases(root, fast_config("w1"));
  ASSERT_TRUE(leases.init().is_ok());
  ASSERT_TRUE(make_dir(leases.job_dir("job")).is_ok());
  ASSERT_TRUE(write_file_atomic(leases.epoch_path("job", 1), "", "t").is_ok());
  const auto claim = leases.try_claim("job");
  ASSERT_TRUE(claim) << claim.status().to_string();
  EXPECT_EQ(claim->outcome, Outcome::Claimed);
  EXPECT_EQ(claim->epoch, 2);
}

TEST(Lease, RacingClaimsWinExactlyOnce) {
  const std::string root = make_lease_root("race");
  {
    const LeaseDir init(root, fast_config("w0"));
    ASSERT_TRUE(init.init().is_ok());
  }
  constexpr int kThreads = 8;
  std::atomic<int> wins{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const LeaseDir leases(root, fast_config("w" + std::to_string(t)));
      const auto claim = leases.try_claim("job");
      if (!claim) {
        errors.fetch_add(1);
        return;
      }
      if (claim->outcome == Outcome::Claimed) wins.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(wins.load(), 1);
}

TEST(Lease, StaleHeartbeatAllowsTakeoverAndOldHolderIsCancelled) {
  const std::string root = make_lease_root("stale");
  const LeaseDir a(root, fast_config("a"));
  ASSERT_TRUE(a.init().is_ok());
  const auto held = a.try_claim("job");
  ASSERT_TRUE(held);
  ASSERT_EQ(held->outcome, Outcome::Claimed);
  // Holder a stops heartbeating; past the TTL the lease is stale.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const LeaseDir b(root, fast_config("b"));
  const auto takeover = b.try_claim("job");
  ASSERT_TRUE(takeover) << takeover.status().to_string();
  EXPECT_EQ(takeover->outcome, Outcome::Claimed);
  EXPECT_EQ(takeover->epoch, 2);
  EXPECT_EQ(takeover->attempt, 2);
  // The usurped holder discovers the higher epoch at its next refresh.
  const Status late = a.heartbeat("job", *held);
  EXPECT_EQ(late.code(), StatusCode::kCancelled);
}

TEST(Lease, HeartbeatKeeperKeepsLeaseFreshAndTripsTokenOnTakeover) {
  const std::string root = make_lease_root("keeper");
  const LeaseDir a(root, fast_config("a"));
  ASSERT_TRUE(a.init().is_ok());
  const auto held = a.try_claim("job");
  ASSERT_TRUE(held);
  ASSERT_EQ(held->outcome, Outcome::Claimed);
  CancelToken job_token;
  HeartbeatKeeper keeper(a, "job", *held, &job_token);
  // With the keeper refreshing, the lease never goes stale: well past
  // the TTL another worker still sees Busy.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const LeaseDir b(root, fast_config("b"));
  const auto busy = b.try_claim("job");
  ASSERT_TRUE(busy);
  EXPECT_EQ(busy->outcome, Outcome::Busy);
  EXPECT_FALSE(keeper.lost());
  EXPECT_FALSE(job_token.expired());
  // Force a takeover by publishing a higher epoch; the keeper must
  // notice within a couple of refresh periods and trip the job token.
  LeaseRecord usurper;
  usurper.owner = "b";
  usurper.attempt = 2;
  usurper.heartbeat_ns = lease_now_ns();
  ASSERT_TRUE(write_file_exclusive(a.epoch_path("job", 2), usurper.to_json(),
                                   "b")
                  .is_ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!keeper.lost() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(keeper.lost());
  EXPECT_TRUE(job_token.expired());
}

TEST(Lease, FailedAttemptBacksOffThenRetriesWithPriorError) {
  const std::string root = make_lease_root("backoff");
  const LeaseDir leases(root, fast_config("w1"));
  ASSERT_TRUE(leases.init().is_ok());
  const auto first = leases.try_claim("job");
  ASSERT_TRUE(first);
  ASSERT_EQ(first->outcome, Outcome::Claimed);
  ASSERT_TRUE(leases.mark_failed("job", *first, "boom").is_ok());
  // Inside the backoff window the job is not claimable, and the claim
  // reports how long to wait.
  const auto backoff = leases.try_claim("job");
  ASSERT_TRUE(backoff);
  EXPECT_EQ(backoff->outcome, Outcome::Backoff);
  EXPECT_GT(backoff->wait_ns, 0u);
  // After the window: claimable at the next attempt, carrying the
  // previous holder's error.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto retry = leases.try_claim("job");
  ASSERT_TRUE(retry) << retry.status().to_string();
  EXPECT_EQ(retry->outcome, Outcome::Claimed);
  EXPECT_EQ(retry->attempt, 2);
  EXPECT_FALSE(retry->poison);
  EXPECT_EQ(retry->prior_error, "boom");
}

TEST(Lease, AttemptBudgetExhaustionYieldsPoisonClaim) {
  const std::string root = make_lease_root("poison");
  LeaseConfig config = fast_config("w1");
  config.max_attempts = 2;
  const LeaseDir leases(root, config);
  ASSERT_TRUE(leases.init().is_ok());
  for (int attempt = 1; attempt <= 2; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(90));
    const auto claim = leases.try_claim("job");
    ASSERT_TRUE(claim) << claim.status().to_string();
    ASSERT_EQ(claim->outcome, Outcome::Claimed) << "attempt " << attempt;
    ASSERT_EQ(claim->attempt, attempt);
    EXPECT_FALSE(claim->poison);
    ASSERT_TRUE(
        leases.mark_failed("job", *claim, "fail " + std::to_string(attempt))
            .is_ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(90));
  const auto poison = leases.try_claim("job");
  ASSERT_TRUE(poison) << poison.status().to_string();
  EXPECT_EQ(poison->outcome, Outcome::Claimed);
  EXPECT_EQ(poison->attempt, 3);
  EXPECT_TRUE(poison->poison);
  EXPECT_EQ(poison->prior_error, "fail 2");
}

TEST(Lease, RecordRoundTripsThroughJson) {
  LeaseRecord record;
  record.owner = "w42";
  record.attempt = 3;
  record.running = false;
  record.heartbeat_ns = 123456789;
  record.backoff_until_ns = 987654321;
  record.error = "cancelled: \"deadline\"";
  const auto parsed = LeaseRecord::parse(record.to_json());
  ASSERT_TRUE(parsed) << parsed.status().to_string();
  EXPECT_EQ(parsed->owner, "w42");
  EXPECT_EQ(parsed->attempt, 3);
  EXPECT_FALSE(parsed->running);
  EXPECT_EQ(parsed->heartbeat_ns, 123456789u);
  EXPECT_EQ(parsed->backoff_until_ns, 987654321u);
  EXPECT_EQ(parsed->error, "cancelled: \"deadline\"");
}

// ---- Multi-process campaign layer ----

/// Trimmed search budgets so worker-run jobs stay unit-test sized.
void trim(CampaignJobSpec& job) {
  job.flow.atpg.random_batches = 4;
  job.flow.atpg.backtrack_limit = 1000;
  job.resyn.max_iterations_per_phase = 8;
  job.resyn.reanalyses_per_iteration = 8;
}

CampaignWorkerOptions fast_worker(const std::string& root,
                                  const std::string& owner) {
  CampaignWorkerOptions options;
  options.campaign_root = root;
  options.owner = owner;
  options.total_threads = 1;
  options.heartbeat = std::chrono::milliseconds(20);
  options.lease_ttl = std::chrono::milliseconds(60);
  options.backoff_base = std::chrono::milliseconds(10);
  return options;
}

TEST(CampaignRoot, InitIsIdempotentForIdenticalManifests) {
  CampaignManifest manifest;
  manifest.jobs.push_back({});
  manifest.jobs[0].name = "a";
  manifest.jobs[0].design = "sparc_tlu";
  const std::string root = make_lease_root("init");
  ASSERT_TRUE(init_campaign_root(manifest, root + "/camp").is_ok());
  // Same content: a coordinator restart reuses the root.
  EXPECT_TRUE(init_campaign_root(manifest, root + "/camp").is_ok());
  // Different content: refused, the root belongs to another sweep.
  manifest.jobs[0].design = "wb_conmax";
  const Status other = init_campaign_root(manifest, root + "/camp");
  EXPECT_EQ(other.code(), StatusCode::kAlreadyExists);
  // Round-trip through the stored manifest.
  const auto read_back = read_campaign_root(root + "/camp");
  ASSERT_TRUE(read_back) << read_back.status().to_string();
  ASSERT_EQ(read_back->jobs.size(), 1u);
  EXPECT_EQ(read_back->jobs[0].design, "sparc_tlu");
}

TEST(CampaignRoot, RejectsReservedJobNames) {
  CampaignManifest manifest;
  manifest.jobs.push_back({});
  manifest.jobs[0].name = "__merge__";
  manifest.jobs[0].design = "sparc_tlu";
  EXPECT_EQ(manifest.validate().code(), StatusCode::kInvalidArgument);
}

TEST(CampaignWorker, FailingJobIsPoisonedIntoTheMergedReport) {
  CampaignManifest manifest;
  manifest.jobs.push_back({});
  manifest.jobs[0].name = "doomed";
  manifest.jobs[0].design = "no_such_benchmark";
  const std::string root = make_lease_root("doomed") + "/camp";
  ASSERT_TRUE(init_campaign_root(manifest, root).is_ok());
  CampaignWorkerOptions options = fast_worker(root, "w1");
  options.max_attempts = 2;
  const auto stats = run_campaign_worker(options);
  ASSERT_TRUE(stats) << stats.status().to_string();
  EXPECT_EQ(stats->jobs_poisoned, 1);
  EXPECT_TRUE(stats->merged);
  const auto report_text = read_file(root + "/report.json");
  ASSERT_TRUE(report_text) << report_text.status().to_string();
  const auto doc = JsonValue::parse(*report_text);
  ASSERT_TRUE(doc) << doc.status().to_string();
  EXPECT_EQ(doc->find("failed")->as_number(), 1.0);
  const JsonValue& job = doc->find("jobs")->items()[0];
  EXPECT_FALSE(job.find("ok")->as_bool());
  EXPECT_TRUE(job.find("poisoned")->as_bool());
  // The tombstone records the exhausted budget and the last error.
  EXPECT_GE(job.find("attempts")->as_number(), 2.0);
  EXPECT_NE(job.find("status")->as_string().find("not_found"),
            std::string::npos);
  // Poisoned reports still canonicalize (the projection must not choke
  // on rows without embedded run reports).
  const auto canon = canonical_campaign_report(*report_text);
  ASSERT_TRUE(canon) << canon.status().to_string();
}

TEST(CampaignWorker, SecondWorkerOnDrainedRootHasNothingToDo) {
  CampaignManifest manifest;
  manifest.jobs.push_back({});
  manifest.jobs[0].name = "doomed";
  manifest.jobs[0].design = "no_such_benchmark";
  const std::string root = make_lease_root("drained") + "/camp";
  ASSERT_TRUE(init_campaign_root(manifest, root).is_ok());
  CampaignWorkerOptions options = fast_worker(root, "w1");
  options.max_attempts = 1;
  const auto first = run_campaign_worker(options);
  ASSERT_TRUE(first) << first.status().to_string();
  const auto second = run_campaign_worker(fast_worker(root, "w2"));
  ASSERT_TRUE(second) << second.status().to_string();
  EXPECT_EQ(second->jobs_run, 0);
  EXPECT_EQ(second->jobs_poisoned, 0);
  EXPECT_FALSE(second->merged);  // report already present
}

/// Forks a campaign worker as a child process (threads=1 so the job
/// runs on the inline path — no pool threads cross the fork). Returns
/// the child's wait status.
int fork_worker(const std::string& root, const std::string& owner) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Earlier tests already ran crash_point with no spec armed; pick up
    // the DFMRES_CRASH_AFTER the parent set just before forking.
    crash_point_rearm_from_env();
    const auto stats = run_campaign_worker(fast_worker(root, owner));
    ::_exit(stats ? 0 : 1);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return wstatus;
}

TEST(CampaignWorkerHeavy, SigkilledWorkerResumesToIdenticalCanonicalReport) {
  CampaignManifest manifest;
  manifest.jobs.push_back({});
  CampaignJobSpec& spec = manifest.jobs[0];
  spec.name = "tlu";
  spec.design = "sparc_tlu";
  spec.resyn.q_max = 0;
  trim(spec);

  // Uninterrupted serial reference, same inner budget as the workers.
  CampaignOptions serial;
  serial.total_threads = 1;
  const auto reference = run_campaign(manifest, serial);
  ASSERT_TRUE(reference) << reference.status().to_string();
  const auto want = canonical_campaign_report(reference->report_json());
  ASSERT_TRUE(want) << want.status().to_string();

  const std::string root = make_lease_root("sigkill") + "/camp";
  ASSERT_TRUE(init_campaign_root(manifest, root).is_ok());

  // First worker: SIGKILL right after claiming the job — it dies
  // without publishing a shard and leaves a stale running lease behind.
  ASSERT_EQ(::setenv("DFMRES_CRASH_AFTER", "job.start:1", 1), 0);
  const int killed = fork_worker(root, "victim");
  ASSERT_EQ(::unsetenv("DFMRES_CRASH_AFTER"), 0);
  ASSERT_TRUE(WIFSIGNALED(killed)) << "worker survived the crash point";
  EXPECT_EQ(WTERMSIG(killed), SIGKILL);
  EXPECT_FALSE(path_exists(root + "/shards/tlu.json"));

  // Second worker: reclaims the stale lease (attempt 2), resumes from
  // the shared checkpoint dir, publishes the shard and merges.
  const int finished = fork_worker(root, "rescuer");
  ASSERT_TRUE(WIFEXITED(finished));
  ASSERT_EQ(WEXITSTATUS(finished), 0);

  const auto merged_text = read_file(root + "/report.json");
  ASSERT_TRUE(merged_text) << merged_text.status().to_string();
  // Provenance is honest in the full report...
  const auto doc = JsonValue::parse(*merged_text);
  ASSERT_TRUE(doc);
  const JsonValue& job = doc->find("jobs")->items()[0];
  EXPECT_EQ(job.find("worker")->as_string(), "rescuer");
  EXPECT_EQ(job.find("attempts")->as_number(), 2.0);
  // ...and stripped by the canonical projection, which must match the
  // uninterrupted run byte for byte.
  const auto got = canonical_campaign_report(*merged_text);
  ASSERT_TRUE(got) << got.status().to_string();
  EXPECT_EQ(*got, *want);
}

TEST(CampaignReport, CanonicalProjectionStripsSchedulingFields) {
  CampaignReportTotals totals;
  totals.jobs_total = 1;
  totals.completed = 1;
  totals.inner_threads = 7;
  totals.total_threads = 14;
  totals.runtime_seconds = 12.5;
  CampaignReportRow row;
  row.name = "a";
  row.design = "sparc_tlu";
  row.mode = "flow";
  row.ok = true;
  row.attempts = 4;
  row.worker = "w99";
  row.inner_threads = 7;
  row.runtime_seconds = 12.5;
  const std::string report =
      render_campaign_report(totals, {row}, "{\"counters\": {}}");
  const auto canon = canonical_campaign_report(report);
  ASSERT_TRUE(canon) << canon.status().to_string();
  // Substance survives; timing, provenance and metrics do not.
  EXPECT_NE(canon->find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(canon->find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(canon->find("runtime_seconds"), std::string::npos);
  EXPECT_EQ(canon->find("w99"), std::string::npos);
  EXPECT_EQ(canon->find("attempts"), std::string::npos);
  EXPECT_EQ(canon->find("inner_threads"), std::string::npos);
  EXPECT_EQ(canon->find("metrics"), std::string::npos);
  // Identical substance from a different schedule canonicalizes to the
  // same bytes.
  CampaignReportTotals other_totals = totals;
  other_totals.inner_threads = 1;
  other_totals.total_threads = 1;
  other_totals.runtime_seconds = 99.0;
  CampaignReportRow other_row = row;
  other_row.attempts = 1;
  other_row.worker = "";
  other_row.runtime_seconds = 99.0;
  const auto other_canon = canonical_campaign_report(
      render_campaign_report(other_totals, {other_row}, "{}"));
  ASSERT_TRUE(other_canon) << other_canon.status().to_string();
  EXPECT_EQ(*canon, *other_canon);
  // Non-campaign documents are rejected.
  EXPECT_FALSE(canonical_campaign_report("{\"schema\": \"nope\"}"));
}

}  // namespace
}  // namespace dfmres
