#include <gtest/gtest.h>

#include "src/circuits/benchmarks.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/verilog.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/rng.hpp"

namespace dfmres {
namespace {

Netlist mapped_tlu() {
  const Netlist rtl = build_benchmark("sparc_tlu").value();
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  return *technology_map(rtl, tlib, mo);
}

TEST(Verilog, EmitsStructuralSubset) {
  const Netlist nl = mapped_tlu();
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module sparc_tlu"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("DFFPOSX1"), std::string::npos);
  EXPECT_NE(v.find("assign po0"), std::string::npos);
}

TEST(Verilog, RoundTripPreservesStructureAndFunction) {
  const Netlist nl = mapped_tlu();
  const std::string v = to_verilog(nl);
  const auto back = read_verilog(v, osu018_library());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->validate().empty());
  EXPECT_EQ(back->num_live_gates(), nl.num_live_gates());
  EXPECT_EQ(back->primary_inputs().size(), nl.primary_inputs().size());
  EXPECT_EQ(back->primary_outputs().size(), nl.primary_outputs().size());

  // Functional equivalence on random vectors. Source order matches: PIs
  // are declared in order and gate instances are emitted in live-gate
  // (id) order, so flop ordinals line up.
  const CombView va = CombView::build(nl);
  const CombView vb = CombView::build(*back);
  ASSERT_EQ(va.sources.size(), vb.sources.size());
  ASSERT_EQ(va.observe.size(), vb.observe.size());
  ParallelSimulator sa(nl, va);
  ParallelSimulator sb(*back, vb);
  Rng rng(12);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < va.sources.size(); ++i) {
      const std::uint64_t w = rng.next();
      sa.set_source(va.sources[i], w);
      sb.set_source(vb.sources[i], w);
    }
    sa.run();
    sb.run();
    for (std::size_t i = 0; i < va.observe.size(); ++i) {
      ASSERT_EQ(sa.value(va.observe[i]), sb.value(vb.observe[i])) << i;
    }
  }
}

TEST(Verilog, RejectsUnknownCell) {
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  BOGUS g0 (.A(a), .Y(n1));\n"
      "  assign po0 = n1;\nendmodule\n",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
  // The error names the cell and the line it appeared on.
  EXPECT_NE(r.status().message().find("BOGUS"), std::string::npos);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(Verilog, RejectsOpenInput) {
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  NAND2X1 g0 (.A(a), .Y(n1));\n"
      "  assign po0 = n1;\nendmodule\n",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("g0"), std::string::npos);
}

TEST(Verilog, RejectsTruncatedModule) {
  // Input that stops mid-instance: the parser must fail with a located
  // error, not crash or hang.
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  INVX1 g0 (.A(a),",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
}

TEST(Verilog, RejectsMissingEndmodule) {
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  INVX1 g0 (.A(a), .Y(n1));\n"
      "  assign po0 = n1;\n",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("endmodule"), std::string::npos);
}

TEST(Verilog, RejectsDanglingPin) {
  // Pin name that does not exist on the cell.
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  INVX1 g0 (.A(a), .Q(n1));\n"
      "  assign po0 = n1;\nendmodule\n",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("Q"), std::string::npos);
}

TEST(Verilog, RejectsDuplicateAssign) {
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1; wire n2;\n"
      "  INVX1 g0 (.A(a), .Y(n1));\n"
      "  INVX1 g1 (.A(n1), .Y(n2));\n"
      "  assign po0 = n1;\n"
      "  assign po0 = n2;\n"
      "endmodule\n",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
  // Both conflicting lines are cited.
  EXPECT_NE(r.status().message().find("line 5"), std::string::npos);
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos);
}

TEST(Verilog, RejectsUndeclaredAssignSource) {
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  INVX1 g0 (.A(a), .Y(n1));\n"
      "  assign po0 = ghost;\nendmodule\n",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("ghost"), std::string::npos);
}

TEST(Verilog, RejectsCombinationalCycle) {
  // Structurally well-formed but cyclic: validation turns it into a
  // parse error instead of letting topological_order trip downstream.
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1; wire n2;\n"
      "  NAND2X1 g0 (.A(a), .B(n2), .Y(n1));\n"
      "  NAND2X1 g1 (.A(a), .B(n1), .Y(n2));\n"
      "  assign po0 = n1;\nendmodule\n",
      osu018_library());
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.code(), StatusCode::kInvalidArgument);
}

TEST(Verilog, ParsesHandWrittenModule) {
  const auto r = read_verilog(
      "// hand written\n"
      "module half (a, b, po0, po1);\n"
      "  input a; input b;\n"
      "  output po0; output po1;\n"
      "  wire c; wire s;\n"
      "  HAX1 u0 (.A(a), .B(b), .YC(c), .YS(s));\n"
      "  assign po0 = c;\n"
      "  assign po1 = s;\n"
      "endmodule\n",
      osu018_library());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->num_live_gates(), 1u);
  EXPECT_EQ(r->primary_outputs().size(), 2u);
}

}  // namespace
}  // namespace dfmres
