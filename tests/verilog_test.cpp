#include <gtest/gtest.h>

#include "src/circuits/benchmarks.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/verilog.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/rng.hpp"

namespace dfmres {
namespace {

Netlist mapped_tlu() {
  const Netlist rtl = build_benchmark("sparc_tlu");
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  return *technology_map(rtl, tlib, mo);
}

TEST(Verilog, EmitsStructuralSubset) {
  const Netlist nl = mapped_tlu();
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module sparc_tlu"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("DFFPOSX1"), std::string::npos);
  EXPECT_NE(v.find("assign po0"), std::string::npos);
}

TEST(Verilog, RoundTripPreservesStructureAndFunction) {
  const Netlist nl = mapped_tlu();
  const std::string v = to_verilog(nl);
  const auto back = read_verilog(v, osu018_library());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->validate().empty());
  EXPECT_EQ(back->num_live_gates(), nl.num_live_gates());
  EXPECT_EQ(back->primary_inputs().size(), nl.primary_inputs().size());
  EXPECT_EQ(back->primary_outputs().size(), nl.primary_outputs().size());

  // Functional equivalence on random vectors. Source order matches: PIs
  // are declared in order and gate instances are emitted in live-gate
  // (id) order, so flop ordinals line up.
  const CombView va = CombView::build(nl);
  const CombView vb = CombView::build(*back);
  ASSERT_EQ(va.sources.size(), vb.sources.size());
  ASSERT_EQ(va.observe.size(), vb.observe.size());
  ParallelSimulator sa(nl, va);
  ParallelSimulator sb(*back, vb);
  Rng rng(12);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < va.sources.size(); ++i) {
      const std::uint64_t w = rng.next();
      sa.set_source(va.sources[i], w);
      sb.set_source(vb.sources[i], w);
    }
    sa.run();
    sb.run();
    for (std::size_t i = 0; i < va.observe.size(); ++i) {
      ASSERT_EQ(sa.value(va.observe[i]), sb.value(vb.observe[i])) << i;
    }
  }
}

TEST(Verilog, RejectsUnknownCell) {
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  BOGUS g0 (.A(a), .Y(n1));\n"
      "  assign po0 = n1;\nendmodule\n",
      osu018_library());
  EXPECT_FALSE(r.has_value());
}

TEST(Verilog, RejectsOpenInput) {
  const auto r = read_verilog(
      "module m (a, po0); input a; output po0; wire n1;\n"
      "  NAND2X1 g0 (.A(a), .Y(n1));\n"
      "  assign po0 = n1;\nendmodule\n",
      osu018_library());
  EXPECT_FALSE(r.has_value());
}

TEST(Verilog, ParsesHandWrittenModule) {
  const auto r = read_verilog(
      "// hand written\n"
      "module half (a, b, po0, po1);\n"
      "  input a; input b;\n"
      "  output po0; output po1;\n"
      "  wire c; wire s;\n"
      "  HAX1 u0 (.A(a), .B(b), .YC(c), .YS(s));\n"
      "  assign po0 = c;\n"
      "  assign po1 = s;\n"
      "endmodule\n",
      osu018_library());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->num_live_gates(), 1u);
  EXPECT_EQ(r->primary_outputs().size(), 2u);
}

}  // namespace
}  // namespace dfmres
