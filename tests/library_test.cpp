#include <gtest/gtest.h>

#include "src/library/osu018.hpp"
#include "src/switchlevel/switch_sim.hpp"
#include "src/switchlevel/udfm.hpp"

namespace dfmres {
namespace {

TEST(Osu018, Has22Cells) {
  const auto lib = osu018_library();
  // 21 combinational cells + DFF, as in the paper's OSU018 setup.
  EXPECT_EQ(lib->num_cells(), 22u);
  int sequential = 0;
  for (const CellSpec& c : *lib) sequential += c.sequential;
  EXPECT_EQ(sequential, 1);
}

TEST(Osu018, LookupByName) {
  const auto lib = osu018_library();
  ASSERT_TRUE(lib->find("NAND2X1").has_value());
  EXPECT_FALSE(lib->find("NAND5X1").has_value());
  const CellSpec& nand2 = lib->cell(lib->require("NAND2X1"));
  EXPECT_EQ(nand2.num_inputs, 2);
  EXPECT_EQ(nand2.truth(0), 0x7u);
}

TEST(Osu018, SelectedTruthTables) {
  const auto lib = osu018_library();
  const auto tt = [&](const char* name, int out = 0) {
    return lib->cell(lib->require(name)).truth(out);
  };
  EXPECT_EQ(tt("INVX1"), 0x1u);
  EXPECT_EQ(tt("BUFX2"), 0x2u);
  EXPECT_EQ(tt("AND2X2"), 0x8u);
  EXPECT_EQ(tt("OR2X2"), 0xEu);
  EXPECT_EQ(tt("XOR2X1"), 0x6u);
  EXPECT_EQ(tt("XNOR2X1"), 0x9u);
  EXPECT_EQ(tt("NAND3X1"), 0x7Fu);
  EXPECT_EQ(tt("NOR3X1"), 0x01u);
  EXPECT_EQ(tt("AOI21X1"), 0x07u);
  EXPECT_EQ(tt("OAI21X1"), 0x1Fu);
  EXPECT_EQ(tt("AOI22X1"), 0x0777u);
  EXPECT_EQ(tt("OAI22X1"), 0x111Fu);
  EXPECT_EQ(tt("MUX2X1"), 0xACu);
  EXPECT_EQ(tt("HAX1", 0), 0x8u);
  EXPECT_EQ(tt("HAX1", 1), 0x6u);
  EXPECT_EQ(tt("FAX1", 0), 0xE8u);
  EXPECT_EQ(tt("FAX1", 1), 0x96u);
}

/// The load-bearing consistency check: for every combinational cell the
/// transistor network, evaluated by the switch-level simulator with no
/// defect, must reproduce the cell's truth table on every input pattern.
class CellNetworkTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CellNetworkTest, NetworkMatchesTruthTable) {
  const auto lib = osu018_library();
  const CellSpec& cell = lib->cell(lib->require(GetParam()));
  ASSERT_FALSE(cell.network.empty());
  ASSERT_EQ(cell.network.input_nodes.size(), cell.num_inputs);
  ASSERT_EQ(cell.network.output_nodes.size(), cell.num_outputs);

  const SwitchSim sim(cell.network);
  const auto patterns = std::uint32_t{1} << cell.num_inputs;
  for (std::uint32_t p = 0; p < patterns; ++p) {
    const auto values = sim.eval(p);
    for (int out = 0; out < cell.num_outputs; ++out) {
      const SwitchValue v = values[cell.network.output_nodes[out]];
      const SwitchValue expect =
          cell.eval(out, p) ? SwitchValue::One : SwitchValue::Zero;
      EXPECT_EQ(v, expect) << cell.name << " output " << out << " pattern "
                           << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombCells, CellNetworkTest,
    ::testing::Values("INVX1", "INVX2", "INVX4", "INVX8", "BUFX2", "BUFX4",
                      "NAND2X1", "NAND3X1", "NOR2X1", "NOR3X1", "AND2X2",
                      "OR2X2", "XOR2X1", "XNOR2X1", "AOI21X1", "AOI22X1",
                      "OAI21X1", "OAI22X1", "MUX2X1", "HAX1", "FAX1"),
    [](const auto& info) { return info.param; });

TEST(CellUdfmTest, EveryCombCellHasInternalFaults) {
  const auto lib = osu018_library();
  for (const CellSpec& cell : *lib) {
    if (cell.sequential) continue;
    const CellUdfm udfm = extract_cell_udfm(cell);
    EXPECT_GT(udfm.num_faults(), 4u) << cell.name;
  }
}

TEST(CellUdfmTest, ComplexCellsHaveMoreFaultsThanSimpleOnes) {
  const auto lib = osu018_library();
  const auto count = [&](const char* name) {
    return extract_cell_udfm(lib->cell(lib->require(name))).num_faults();
  };
  // Paper Section I: resynthesis uses cells with fewer internal faults;
  // the ordering must be meaningful.
  EXPECT_LT(count("INVX1"), count("NAND2X1"));
  EXPECT_LT(count("NAND2X1"), count("AOI22X1"));
  EXPECT_LT(count("AOI22X1"), count("FAX1"));
  EXPECT_LT(count("INVX1"), count("INVX8"));
  EXPECT_LT(count("NAND2X1"), count("XOR2X1"));
}

TEST(CellUdfmTest, MostDefectsAreDetectableAtCellLevel) {
  // Charge-sharing-masked opens and drive-finger opens are legitimately
  // undetectable at the cell level; everything else should carry
  // patterns, leaving at least ~70% detectable per cell.
  const auto lib = osu018_library();
  for (const CellSpec& cell : *lib) {
    if (cell.sequential) continue;
    const CellUdfm udfm = extract_cell_udfm(cell);
    std::size_t detectable = 0;
    for (const auto& f : udfm.faults) detectable += !f.patterns.empty();
    EXPECT_GE(detectable * 10, udfm.num_faults() * 7)
        << cell.name << ": " << detectable << "/" << udfm.num_faults();
  }
}

TEST(CellUdfmTest, PatternsAreWithinRange) {
  const auto lib = osu018_library();
  for (const CellSpec& cell : *lib) {
    if (cell.sequential) continue;
    const CellUdfm udfm = extract_cell_udfm(cell);
    const std::uint32_t limit = 1u << cell.num_inputs;
    for (const auto& f : udfm.faults) {
      for (const auto& p : f.patterns) {
        EXPECT_LT(p.inputs, limit);
        if (p.has_prev) {
          EXPECT_LT(p.prev_inputs, limit);
        }
        EXPECT_LT(p.output, cell.num_outputs);
      }
    }
  }
}

/// UDFM entries must be truthful: a static entry's faulty value must
/// differ from the good value at that pattern.
TEST(CellUdfmTest, StaticEntriesFlipTheOutput) {
  const auto lib = osu018_library();
  for (const CellSpec& cell : *lib) {
    if (cell.sequential) continue;
    const CellUdfm udfm = extract_cell_udfm(cell);
    for (const auto& f : udfm.faults) {
      for (const auto& p : f.patterns) {
        if (p.has_prev) continue;
        EXPECT_NE(p.faulty_value, cell.eval(p.output, p.inputs))
            << cell.name;
      }
    }
  }
}

TEST(GenericLibrary, BasicCells) {
  const auto lib = generic_library();
  EXPECT_TRUE(lib->find("AND2").has_value());
  EXPECT_TRUE(lib->find("MUX2").has_value());
  EXPECT_TRUE(lib->find("DFF").has_value());
  const CellSpec& mux = lib->cell(lib->require("MUX2"));
  EXPECT_EQ(mux.truth(0), 0xACu);
  // Generic cells carry no transistor networks (no internal faults).
  for (const CellSpec& c : *lib) EXPECT_TRUE(c.network.empty());
}

}  // namespace
}  // namespace dfmres
