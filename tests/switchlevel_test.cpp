#include <gtest/gtest.h>

#include <algorithm>

#include "src/library/osu018.hpp"
#include "src/switchlevel/switch_sim.hpp"
#include "src/switchlevel/udfm.hpp"

namespace dfmres {
namespace {

const CellSpec& cell(const char* name) {
  static const auto lib = osu018_library();
  return lib->cell(lib->require(name));
}

TEST(SwitchSim, InverterGoodMachine) {
  const CellSpec& inv = cell("INVX1");
  const SwitchSim sim(inv.network);
  EXPECT_EQ(sim.eval(0)[inv.network.output_nodes[0]], SwitchValue::One);
  EXPECT_EQ(sim.eval(1)[inv.network.output_nodes[0]], SwitchValue::Zero);
}

TEST(SwitchSim, InverterPmosStuckOpenFloatsHigh) {
  const CellSpec& inv = cell("INVX1");
  const SwitchSim sim(inv.network);
  // Find the PMOS device.
  std::uint16_t pmos = 0;
  for (std::uint16_t t = 0; t < inv.network.transistors.size(); ++t) {
    if (inv.network.transistors[t].is_pmos) pmos = t;
  }
  const CellDefect defect{DefectKind::TransistorStuckOpen, pmos, 0};
  // A=0: pull-up gone, pull-down off -> Z.
  const auto v0 = sim.eval(0, &defect);
  EXPECT_EQ(v0[inv.network.output_nodes[0]], SwitchValue::Z);
  // Two-pattern: A=1 initializes output to 0; then A=0 retains 0 (fault!).
  const auto init = sim.eval(1, &defect);
  EXPECT_EQ(init[inv.network.output_nodes[0]], SwitchValue::Zero);
  const auto seq = sim.eval(0, &defect, init);
  EXPECT_EQ(seq[inv.network.output_nodes[0]], SwitchValue::Zero);
}

TEST(SwitchSim, InverterNmosStuckOnFightsToX) {
  const CellSpec& inv = cell("INVX1");
  const SwitchSim sim(inv.network);
  std::uint16_t nmos = 0;
  for (std::uint16_t t = 0; t < inv.network.transistors.size(); ++t) {
    if (!inv.network.transistors[t].is_pmos) nmos = t;
  }
  const CellDefect defect{DefectKind::TransistorStuckOn, nmos, 0};
  // A=0: pull-up on AND stuck-on pull-down -> rail fight -> X; the UDFM
  // layer turns this into a worst-case detection.
  const auto v = sim.eval(0, &defect);
  EXPECT_EQ(v[inv.network.output_nodes[0]], SwitchValue::X);
}

TEST(SwitchSim, OutputShortToRails) {
  const CellSpec& inv = cell("INVX1");
  const SwitchSim sim(inv.network);
  const std::uint16_t out = inv.network.output_nodes[0];
  // A hard short merges the output with the rail: the output is pinned to
  // the rail value (a strong detect when the good value differs).
  const CellDefect to_gnd{DefectKind::NodeShortToGnd, out, 0};
  EXPECT_EQ(sim.eval(0, &to_gnd)[out], SwitchValue::Zero);  // good = 1
  EXPECT_EQ(sim.eval(1, &to_gnd)[out], SwitchValue::Zero);  // matches good
  const CellDefect to_vdd{DefectKind::NodeShortToVdd, out, 0};
  EXPECT_EQ(sim.eval(1, &to_vdd)[out], SwitchValue::One);  // good = 0
  EXPECT_EQ(sim.eval(0, &to_vdd)[out], SwitchValue::One);  // matches good
}

TEST(SwitchSim, Nand2SeriesStuckOpenNeedsSpecificPattern) {
  const CellSpec& nand2 = cell("NAND2X1");
  const SwitchSim sim(nand2.network);
  const std::uint16_t out = nand2.network.output_nodes[0];
  // Find one NMOS in the series stack.
  std::uint16_t nmos = 0;
  for (std::uint16_t t = 0; t < nand2.network.transistors.size(); ++t) {
    if (!nand2.network.transistors[t].is_pmos) {
      nmos = t;
      break;
    }
  }
  const CellDefect defect{DefectKind::TransistorStuckOpen, nmos, 0};
  // Pattern 3 (A=B=1): pull-down broken -> Z (needs two-pattern detect).
  EXPECT_EQ(sim.eval(3, &defect)[out], SwitchValue::Z);
  // Other patterns unaffected.
  EXPECT_EQ(sim.eval(0, &defect)[out], SwitchValue::One);
  EXPECT_EQ(sim.eval(1, &defect)[out], SwitchValue::One);
  EXPECT_EQ(sim.eval(2, &defect)[out], SwitchValue::One);
}

TEST(SwitchSim, PinOpenGivesX) {
  const CellSpec& nand2 = cell("NAND2X1");
  const SwitchSim sim(nand2.network);
  const std::uint16_t out = nand2.network.output_nodes[0];
  const CellDefect defect{DefectKind::PinOpen, 0, 0};  // pin A floats
  // B=1: output = !A -> unknown.
  EXPECT_EQ(sim.eval(3, &defect)[out], SwitchValue::X);
  // B=0 (pattern 0): output 1 regardless of A; the pull-up through B
  // conducts definitely and the series pull-down is definitely broken.
  EXPECT_EQ(sim.eval(0, &defect)[out], SwitchValue::One);
}

TEST(EnumerateDefects, CountsGrowWithComplexity) {
  const auto n = [&](const char* name) {
    return enumerate_cell_defects(cell(name)).size();
  };
  EXPECT_GT(n("NAND2X1"), n("INVX1"));
  EXPECT_GT(n("AOI22X1"), n("NAND2X1"));
  EXPECT_GT(n("FAX1"), n("AOI22X1"));
  EXPECT_GT(n("INVX8"), n("INVX1"));  // finger sites
}

TEST(EnumerateDefects, NoDefectsForSequentialCells) {
  EXPECT_TRUE(enumerate_cell_defects(cell("DFFPOSX1")).empty());
}

TEST(Udfm, Nand2StuckOpenIsTwoPatternDetected) {
  const CellUdfm udfm = extract_cell_udfm(cell("NAND2X1"));
  // Find the stuck-open fault of an NMOS device; it must carry two-pattern
  // entries whose final pattern is A=B=1 (pattern 3).
  bool found = false;
  for (const auto& f : udfm.faults) {
    if (f.defect.kind != DefectKind::TransistorStuckOpen) continue;
    if (cell("NAND2X1").network.transistors[f.defect.a].is_pmos) continue;
    found = true;
    ASSERT_FALSE(f.patterns.empty());
    for (const auto& p : f.patterns) {
      EXPECT_TRUE(p.has_prev);
      EXPECT_EQ(p.inputs, 3u);
      EXPECT_EQ(p.faulty_value, true);  // output stuck high from init
    }
  }
  EXPECT_TRUE(found);
}

TEST(Udfm, DriveFingerOpenIsStaticallyUndetectable) {
  // A single open finger only weakens the drive; no static scan pattern
  // detects it (it would need an at-speed test under worst-case load).
  const CellUdfm udfm = extract_cell_udfm(cell("INVX2"));
  bool found = false;
  for (const auto& f : udfm.faults) {
    if (f.defect.kind != DefectKind::DriveFingerOpen) continue;
    found = true;
    EXPECT_TRUE(f.patterns.empty());
  }
  EXPECT_TRUE(found);
}

TEST(Udfm, DeterministicAcrossCalls) {
  const CellUdfm a = extract_cell_udfm(cell("AOI22X1"));
  const CellUdfm b = extract_cell_udfm(cell("AOI22X1"));
  ASSERT_EQ(a.num_faults(), b.num_faults());
  for (std::size_t i = 0; i < a.num_faults(); ++i) {
    EXPECT_EQ(a.faults[i].defect, b.faults[i].defect);
    EXPECT_EQ(a.faults[i].patterns.size(), b.faults[i].patterns.size());
  }
}

}  // namespace
}  // namespace dfmres
