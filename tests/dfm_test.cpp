#include <gtest/gtest.h>

#include <set>

#include "src/circuits/benchmarks.hpp"
#include "src/dfm/checker.hpp"
#include "src/dfm/guidelines.hpp"
#include "src/layout/floorplan.hpp"
#include "src/library/osu018.hpp"
#include "src/place/placement.hpp"
#include "src/route/router.hpp"
#include "src/synth/mapper.hpp"

namespace dfmres {
namespace {

TEST(Guidelines, PaperCounts) {
  // 19 Via + 29 Metal + 11 Density guidelines (paper Section IV).
  EXPECT_EQ(kNumViaGuidelines, 19);
  EXPECT_EQ(kNumMetalGuidelines, 29);
  EXPECT_EQ(kNumDensityGuidelines, 11);
  EXPECT_EQ(all_guidelines().size(), 59u);
  int via = 0, metal = 0, density = 0;
  for (const Guideline& g : all_guidelines()) {
    switch (g.category) {
      case GuidelineCategory::Via: ++via; break;
      case GuidelineCategory::Metal: ++metal; break;
      case GuidelineCategory::Density: ++density; break;
    }
  }
  EXPECT_EQ(via, kNumViaGuidelines);
  EXPECT_EQ(metal, kNumMetalGuidelines);
  EXPECT_EQ(density, kNumDensityGuidelines);
}

TEST(Guidelines, IdsRoundTrip) {
  for (std::uint16_t id = 0; id < kNumGuidelines; ++id) {
    const Guideline& g = all_guidelines()[id];
    EXPECT_EQ(guideline_id(g.category, g.index_in_category), id);
  }
}

TEST(Guidelines, SelectionIsDeterministic) {
  for (int i = 0; i < 50; ++i) {
    const bool a = cell_defect_selected("FAX1", i, 28,
                                        DefectKind::TransistorStuckOpen,
                                        false);
    const bool b = cell_defect_selected("FAX1", i, 28,
                                        DefectKind::TransistorStuckOpen,
                                        false);
    EXPECT_EQ(a, b);
  }
}

TEST(Guidelines, MaskedSitesAreLikelierViolations) {
  int plain = 0, masked = 0;
  for (int i = 0; i < 200; ++i) {
    plain += cell_defect_selected("X", i, 8, DefectKind::TransistorStuckOpen,
                                  false);
    masked += cell_defect_selected("X", i, 8,
                                   DefectKind::TransistorStuckOpen, true);
  }
  EXPECT_GT(masked, plain);
}

class DfmExtraction : public ::testing::Test {
 protected:
  DfmExtraction()
      : lib_(osu018_library()), udfm_(*lib_), nl_(make_block()) {
    plan_ = make_floorplan(nl_);
    placement_ = global_place(nl_, plan_, {});
    routes_ = route(nl_, placement_, {});
    universe_ = extract_dfm_faults(nl_, placement_, routes_, udfm_);
  }

  static Netlist make_block() {
    const Netlist rtl = build_benchmark("sparc_lsu").value();
    MapOptions mo;
    const auto glib = generic_library();
    const auto tlib = osu018_library();
    mo.fixed_map.emplace(glib->require("DFF").value(),
                         tlib->require("DFFPOSX1"));
    mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
    mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
    return *technology_map(rtl, tlib, mo);
  }

  std::shared_ptr<const Library> lib_;
  UdfmMap udfm_;
  Netlist nl_;
  Floorplan plan_;
  Placement placement_;
  RoutingResult routes_;
  FaultUniverse universe_;
};

TEST_F(DfmExtraction, FaultsReferenceLiveObjects) {
  for (const Fault& f : universe_.faults) {
    EXPECT_TRUE(nl_.net_alive(f.victim));
    EXPECT_LT(f.guideline, kNumGuidelines);
    if (f.scope == FaultScope::Internal) {
      ASSERT_TRUE(nl_.gate_alive(f.owner));
      EXPECT_EQ(f.kind, FaultKind::CellAware);
      EXPECT_LT(f.udfm_index,
                udfm_.of(nl_.gate(f.owner).cell).num_faults());
    }
    if (f.kind == FaultKind::Bridge) {
      ASSERT_TRUE(nl_.net_alive(f.aggressor));
      EXPECT_NE(f.victim, f.aggressor);
    }
  }
}

TEST_F(DfmExtraction, ExternalFaultsAreDedupedPerNetAndGuideline) {
  std::set<std::tuple<std::uint32_t, std::uint16_t, bool>> seen;
  for (const Fault& f : universe_.faults) {
    if (f.scope != FaultScope::External || f.kind == FaultKind::Bridge) {
      continue;
    }
    EXPECT_TRUE(seen.emplace(f.victim.value(), f.guideline, f.value).second)
        << "duplicate external fault on net " << f.victim.value();
  }
}

TEST_F(DfmExtraction, InternalCountsMatchPerCellHelper) {
  std::size_t expected = 0;
  for (GateId g : nl_.live_gates()) {
    if (nl_.cell_of(g).sequential) continue;
    expected += internal_fault_count(*lib_, udfm_, nl_.gate(g).cell);
  }
  // extract adds extra multiplicity for charge-sharing-masked sites;
  // every per-cell selected fault appears at least once.
  EXPECT_GE(universe_.count_internal(), expected);
}

TEST_F(DfmExtraction, ShapeMatchesPaperSectionII) {
  // F_Ex > F_In (more external than internal guideline faults)...
  EXPECT_GT(universe_.count_external(), universe_.count_internal() / 2);
  // ...and every guideline category contributes faults.
  const auto per = universe_.per_guideline(kNumGuidelines);
  std::size_t via = 0, metal = 0, density = 0;
  for (std::uint16_t id = 0; id < kNumGuidelines; ++id) {
    switch (all_guidelines()[id].category) {
      case GuidelineCategory::Via: via += per[id]; break;
      case GuidelineCategory::Metal: metal += per[id]; break;
      case GuidelineCategory::Density: density += per[id]; break;
    }
  }
  EXPECT_GT(via, 0u);
  EXPECT_GT(metal, 0u);
  EXPECT_GT(density, 0u);
}

TEST_F(DfmExtraction, InternalFaultsAreLayoutIndependent) {
  // The internal universe must not depend on placement/routing
  // (Section III-B: PDesign() is gated on internal counts alone).
  const FaultUniverse internal_only = extract_internal_faults(nl_, udfm_);
  EXPECT_EQ(internal_only.size(), universe_.count_internal());
  PlaceOptions other;
  other.seed = 99;
  const Placement placement2 = global_place(nl_, plan_, other);
  const RoutingResult routes2 = route(nl_, placement2, {});
  const FaultUniverse universe2 =
      extract_dfm_faults(nl_, placement2, routes2, udfm_);
  EXPECT_EQ(universe2.count_internal(), universe_.count_internal());
}

}  // namespace
}  // namespace dfmres
