// Copy-on-write probe overlays (FlowOptions::probe_overlays): probes
// replay the committed design's seed good frames and materialize only
// the O(cone) slots their edit dirties. The overlays are a pure
// acceleration — every observable result must be bit-identical to full
// per-probe loads — so these tests run the same work with overlays on
// (in self-verifying mode) and off and require exact agreement, then
// pin the discard/commit lifecycle of the shared baseline.

#include <gtest/gtest.h>

#include <string>

#include "src/circuits/benchmarks.hpp"
#include "src/circuits/builder.hpp"
#include "src/core/flow.hpp"
#include "src/core/resynthesis.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/extract.hpp"
#include "src/synth/mapper.hpp"

namespace dfmres {
namespace {

FlowOptions flow_options(bool overlays, bool verify = false) {
  FlowOptions options;
  options.atpg.random_batches = 4;
  options.atpg.backtrack_limit = 4000;
  options.warm_start = true;
  options.probe_overlays = overlays;
  // Self-verifying overlays: every overlay-loaded batch is re-checked
  // against a full reload, so a disagreement fails loudly. The extra
  // reload is itself a full load, so load economics must be measured
  // with verify off.
  options.atpg.verify_overlays = verify;
  return options;
}

/// Registered datapath with undetectable internal faults (same shape as
/// core_test's small_block).
Netlist small_block() {
  CircuitBuilder cb("ovl");
  const auto a = cb.dff_bus(cb.input_bus("a", 6));
  const auto b = cb.dff_bus(cb.input_bus("b", 6));
  const NetId cin = cb.input("cin");
  auto [sum, carry] = cb.ripple_add(a, b, cin);
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  cb.output(cb.equals(a, b));
  cb.output(cb.xor_n(sum));
  return cb.take();
}

/// Function-preserving local rewrite: re-map one gate's region with its
/// own cell banned.
Netlist remap_one_gate(const Netlist& base) {
  Netlist edited = base;
  GateId target = GateId::invalid();
  for (GateId g : edited.live_gates()) {
    const std::string& n = edited.cell_of(g).name;
    if (n == "XNOR2X1" || n == "XOR2X1" || n == "OAI21X1") {
      target = g;
      break;
    }
  }
  EXPECT_TRUE(target.valid());
  const GateId region[] = {target};
  const Subcircuit sub = extract_subcircuit(edited, region).value();
  MapOptions mo;
  mo.banned.assign(edited.library().num_cells(), false);
  mo.banned[edited.gate(target).cell.value()] = true;
  auto mapped = technology_map(sub.circuit, osu018_library(), mo);
  EXPECT_TRUE(mapped.has_value());
  EXPECT_TRUE(replace_region(edited, sub, *mapped).has_value());
  return edited;
}

std::string accepted_trace(const ResynthesisReport& report) {
  std::string out;
  for (const IterationRecord& r : report.trace) {
    if (!r.accepted) continue;
    out += "q" + std::to_string(r.q) + "p" + std::to_string(r.phase) + ":" +
           r.banned_through + "/U" + std::to_string(r.undetectable) + "/S" +
           std::to_string(r.smax) + ";";
  }
  return out;
}

TEST(Overlay, ProbeMatchesFullLoadAndSelfVerifies) {
  // Three flows probing the same edit: overlays (for load economics),
  // overlays + verify mode (for the batch-by-batch self-check), and
  // full loads (the reference). All must agree exactly.
  DesignFlow on(osu018_library(), flow_options(true));
  const FlowState s_on = on.run_initial(small_block()).value();
  DesignFlow verifying(osu018_library(), flow_options(true, /*verify=*/true));
  const FlowState s_ver = verifying.run_initial(small_block()).value();
  DesignFlow off(osu018_library(), flow_options(false));
  const FlowState s_off = off.run_initial(small_block()).value();
  const Netlist edited = remap_one_gate(s_on.netlist);

  ProbeSession p_on = on.probe();
  const auto u_on = p_on.count_undetectable_internal(edited);
  ASSERT_TRUE(u_on) << u_on.status().to_string();
  ProbeSession p_ver = verifying.probe();
  const auto u_ver = p_ver.count_undetectable_internal(edited);
  ASSERT_TRUE(u_ver) << u_ver.status().to_string();
  ProbeSession p_off = off.probe();
  const auto u_off = p_off.count_undetectable_internal(edited);
  ASSERT_TRUE(u_off) << u_off.status().to_string();
  EXPECT_EQ(*u_on, *u_off);
  EXPECT_EQ(*u_ver, *u_off);

  // Verify mode re-checked every overlay batch and found no mismatch.
  EXPECT_GT(p_ver.counters().overlay_verified_batches, 0u);
  EXPECT_EQ(p_ver.counters().overlay_verify_mismatches, 0u);

  // Load economics (verify off): overlays replace the full seed loads
  // and materialize fewer frame bytes without changing what was
  // simulated.
  const AtpgCounters& c_on = p_on.counters();
  const AtpgCounters& c_off = p_off.counters();
  EXPECT_GT(c_on.overlay_loads, 0u);
  EXPECT_EQ(c_off.overlay_loads, 0u);
  EXPECT_LT(c_on.full_loads, c_off.full_loads);
  EXPECT_LT(c_on.frame_bytes_materialized, c_off.frame_bytes_materialized);
  EXPECT_EQ(c_on.patterns_simulated, c_off.patterns_simulated);
}

TEST(Overlay, DiscardedProbeLeavesCommittedStateUntouched) {
  // Rejected / cancelled probes drop their overlays: after discarding
  // sessions (including a cancelled one), probing the committed design
  // still reproduces the committed classification.
  DesignFlow flow(osu018_library(), flow_options(true, /*verify=*/true));
  const FlowState s = flow.run_initial(small_block()).value();
  const Netlist edited = remap_one_gate(s.netlist);

  std::size_t reference = 0;
  for (std::size_t i = 0; i < s.universe.size(); ++i) {
    reference += s.universe.faults[i].scope == FaultScope::Internal &&
                 s.atpg.status[i] == FaultStatus::Undetectable;
  }

  {
    // Rejected candidate: session probed, then dropped without commit.
    ProbeSession rejected = flow.probe();
    const auto u = rejected.count_undetectable_internal(edited);
    ASSERT_TRUE(u) << u.status().to_string();
  }
  {
    // Cancelled probe: the session must fail cleanly and also be
    // discardable without disturbing the flow.
    CancelToken token;
    token.cancel();
    ProbeSession cancelled = flow.probe(nullptr, 0, &token);
    const auto u = cancelled.count_undetectable_internal(edited);
    ASSERT_FALSE(u.has_value());
    EXPECT_EQ(u.status().code(), StatusCode::kCancelled);
  }

  ProbeSession after = flow.probe();
  const auto u_after = after.count_undetectable_internal(s.netlist);
  ASSERT_TRUE(u_after) << u_after.status().to_string();
  EXPECT_EQ(*u_after, reference);
  EXPECT_EQ(after.counters().overlay_verify_mismatches, 0u);
  flow.commit_probe(std::move(after));
}

TEST(Overlay, ProbeAfterCommitReusesRebasedBaseline) {
  // Committing an edit rebases the shared baseline onto the new design;
  // the next probe must run in overlay mode against the *new* committed
  // netlist and agree with an overlay-free flow brought to the same
  // design point.
  DesignFlow on(osu018_library(), flow_options(true, /*verify=*/true));
  const FlowState s_on = on.run_initial(small_block()).value();
  DesignFlow off(osu018_library(), flow_options(false));
  const FlowState s_off = off.run_initial(small_block()).value();

  const Netlist edited = remap_one_gate(s_on.netlist);
  const auto committed_on = on.analyze(AnalysisRequest::incremental(
      edited, s_on.placement, /*generate_tests=*/true));
  ASSERT_TRUE(committed_on) << committed_on.status().to_string();
  const auto committed_off = off.analyze(AnalysisRequest::incremental(
      edited, s_off.placement, /*generate_tests=*/true));
  ASSERT_TRUE(committed_off) << committed_off.status().to_string();

  const Netlist edited_again = remap_one_gate(committed_on->netlist);
  ProbeSession p_on = on.probe();
  const auto u_on = p_on.count_undetectable_internal(edited_again);
  ASSERT_TRUE(u_on) << u_on.status().to_string();
  ProbeSession p_off = off.probe();
  const auto u_off = p_off.count_undetectable_internal(edited_again);
  ASSERT_TRUE(u_off) << u_off.status().to_string();
  EXPECT_EQ(*u_on, *u_off);
  EXPECT_GT(p_on.counters().overlay_loads, 0u);
  EXPECT_EQ(p_on.counters().overlay_verify_mismatches, 0u);
}

/// The end-to-end acceptance check on a real benchmark: a full tv80
/// resynthesis with overlays (self-verifying) is bit-identical to the
/// same search paying full per-probe loads, and the overlay run
/// materializes far fewer probe frame bytes.
TEST(OverlayHeavy, Tv80ResynthesisBitIdentical) {
  struct Run {
    FlowState state;
    ResynthesisReport report;
  };
  const auto run = [](bool overlays) {
    DesignFlow flow(osu018_library(), flow_options(overlays));
    const FlowState original =
        flow.run_initial(build_benchmark("tv80").value()).value();
    ResynthesisOptions options;
    options.q_max = 1;
    options.max_iterations_per_phase = 4;
    options.reanalyses_per_iteration = 16;
    ResynthesisResult result = resynthesize(flow, original, options).value();
    return Run{std::move(result.state), std::move(result.report)};
  };
  const Run with = run(true);
  const Run without = run(false);

  // PODEM aborts at the backtrack limit are deterministic, so identical
  // runs abort on identical faults — covered fault-by-fault below, and
  // summarized here first for a readable failure.
  EXPECT_EQ(with.state.atpg.num_aborted, without.state.atpg.num_aborted);
  EXPECT_EQ(accepted_trace(with.report), accepted_trace(without.report));
  EXPECT_EQ(with.state.num_undetectable(), without.state.num_undetectable());
  EXPECT_EQ(with.state.smax(), without.state.smax());
  EXPECT_EQ(with.state.num_faults(), without.state.num_faults());
  EXPECT_DOUBLE_EQ(with.state.coverage(), without.state.coverage());
  ASSERT_EQ(with.state.universe.size(), without.state.universe.size());
  for (std::size_t i = 0; i < with.state.universe.size(); ++i) {
    ASSERT_EQ(with.state.universe.faults[i].key(),
              without.state.universe.faults[i].key());
    EXPECT_EQ(with.state.atpg.status[i], without.state.atpg.status[i])
        << "fault " << i;
  }

  // The probes actually ran in overlay mode and it paid off.
  EXPECT_GT(with.report.probe_overlay_loads, 0u);
  EXPECT_EQ(without.report.probe_overlay_loads, 0u);
  EXPECT_GT(without.report.probe_frame_bytes, 0u);
  EXPECT_LT(with.report.probe_frame_bytes, without.report.probe_frame_bytes);
}

}  // namespace
}  // namespace dfmres
