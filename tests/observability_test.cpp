#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/circuits/builder.hpp"
#include "src/core/flow.hpp"
#include "src/core/resynthesis.hpp"
#include "src/core/run_report.hpp"
#include "src/library/osu018.hpp"
#include "src/util/cancel.hpp"
#include "src/util/metrics.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace dfmres {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON syntax checker: enough to prove the writers emit
// well-formed documents without pulling in a parser dependency. Returns
// the index one past the parsed value, or npos on a syntax error.
// ---------------------------------------------------------------------

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

std::size_t parse_value(const std::string& s, std::size_t i);

std::size_t parse_string(const std::string& s, std::size_t i) {
  if (i >= s.size() || s[i] != '"') return std::string::npos;
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;
      continue;
    }
    if (s[i] == '"') return i + 1;
    if (static_cast<unsigned char>(s[i]) < 0x20) return std::string::npos;
  }
  return std::string::npos;
}

std::size_t parse_object(const std::string& s, std::size_t i) {
  ++i;  // consume '{'
  i = skip_ws(s, i);
  if (i < s.size() && s[i] == '}') return i + 1;
  while (i < s.size()) {
    i = parse_string(s, skip_ws(s, i));
    if (i == std::string::npos) return i;
    i = skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return std::string::npos;
    i = parse_value(s, skip_ws(s, i + 1));
    if (i == std::string::npos) return i;
    i = skip_ws(s, i);
    if (i < s.size() && s[i] == ',') {
      i = skip_ws(s, i + 1);
      continue;
    }
    if (i < s.size() && s[i] == '}') return i + 1;
    return std::string::npos;
  }
  return std::string::npos;
}

std::size_t parse_array(const std::string& s, std::size_t i) {
  ++i;  // consume '['
  i = skip_ws(s, i);
  if (i < s.size() && s[i] == ']') return i + 1;
  while (i < s.size()) {
    i = parse_value(s, i);
    if (i == std::string::npos) return i;
    i = skip_ws(s, i);
    if (i < s.size() && s[i] == ',') {
      i = skip_ws(s, i + 1);
      continue;
    }
    if (i < s.size() && s[i] == ']') return i + 1;
    return std::string::npos;
  }
  return std::string::npos;
}

std::size_t parse_value(const std::string& s, std::size_t i) {
  i = skip_ws(s, i);
  if (i >= s.size()) return std::string::npos;
  switch (s[i]) {
    case '{': return parse_object(s, i);
    case '[': return parse_array(s, i);
    case '"': return parse_string(s, i);
    case 't': return s.compare(i, 4, "true") == 0 ? i + 4 : std::string::npos;
    case 'f': return s.compare(i, 5, "false") == 0 ? i + 5 : std::string::npos;
    case 'n': return s.compare(i, 4, "null") == 0 ? i + 4 : std::string::npos;
    default: {
      const std::size_t start = i;
      if (s[i] == '-') ++i;
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
              s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
        ++i;
      }
      return i > start && i != start + (s[start] == '-' ? 1u : 0u)
                 ? i
                 : std::string::npos;
    }
  }
}

::testing::AssertionResult is_valid_json(const std::string& s) {
  const std::size_t end = parse_value(s, 0);
  if (end == std::string::npos) {
    return ::testing::AssertionFailure() << "JSON syntax error";
  }
  if (skip_ws(s, end) != s.size()) {
    return ::testing::AssertionFailure()
           << "trailing garbage at offset " << end;
  }
  return ::testing::AssertionSuccess();
}

/// Clears any events left over from other tests sharing the process-wide
/// tracer, runs enabled for the scope, disables on exit.
class ScopedTracing {
 public:
  ScopedTracing() {
    Tracer::instance().reset();
    Tracer::instance().enable();
  }
  ~ScopedTracing() {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
};

// ---------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  Tracer::instance().reset();
  ASSERT_FALSE(Tracer::instance().enabled());
  {
    TraceSpan span("obs.noop", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1);
  }
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST(Trace, SpanNestingPropagatesAcrossPoolWorkers) {
  ScopedTracing tracing;
  ThreadPool& pool = ThreadPool::shared();
  ASSERT_GE(pool.size(), 4);

  // On a single-core host the submitting thread can drain every chunk
  // before a worker wakes; hold each chunk until a second thread has
  // joined so the cross-thread propagation is actually exercised.
  std::mutex participants_mutex;
  std::set<std::thread::id> participants;
  const auto barrier_until_two_threads = [&] {
    {
      std::lock_guard<std::mutex> lock(participants_mutex);
      participants.insert(std::this_thread::get_id());
    }
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < give_up) {
      {
        std::lock_guard<std::mutex> lock(participants_mutex);
        if (participants.size() >= 2) return;
      }
      std::this_thread::yield();
    }
  };

  std::uint64_t root_id = 0;
  {
    TraceSpan root("obs.root", "test");
    ASSERT_TRUE(root.active());
    root_id = root.id();
    pool.parallel_for(256, 8, pool.size(),
                      [&](int, std::size_t b, std::size_t e) {
                        TraceSpan work("obs.work", "test");
                        work.arg("items", static_cast<std::uint64_t>(e - b));
                        barrier_until_two_threads();
                      });
  }
  EXPECT_GE(participants.size(), 2u);

  // parallel_for returns once every chunk ran, but a worker's lane span
  // closes (and flushes) just after its last chunk completes — poll the
  // snapshot until every work span's parent lane span has landed.
  std::vector<TraceEvent> events;
  std::set<std::uint64_t> chunk_ids;
  std::set<std::uint32_t> chunk_tids;
  std::size_t work_spans = 0;
  const auto flush_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  do {
    events = Tracer::instance().snapshot();
    chunk_ids.clear();
    chunk_tids.clear();
    work_spans = 0;
    bool consistent = true;
    for (const TraceEvent& e : events) {
      if (std::string_view(e.name) == "pool.chunks") {
        chunk_ids.insert(e.id);
        chunk_tids.insert(e.tid);
      }
    }
    for (const TraceEvent& e : events) {
      if (std::string_view(e.name) == "obs.work") {
        ++work_spans;
        consistent = consistent && chunk_ids.count(e.parent) > 0;
      }
    }
    if (consistent) break;
    std::this_thread::yield();
  } while (std::chrono::steady_clock::now() < flush_deadline);

  for (const TraceEvent& e : events) {
    if (std::string_view(e.name) == "pool.chunks") {
      // Worker-side lane spans must nest under the submitting span even
      // though they run on different threads.
      EXPECT_EQ(e.parent, root_id);
    } else if (std::string_view(e.name) == "obs.work") {
      EXPECT_EQ(chunk_ids.count(e.parent), 1u)
          << "work span not parented to a pool lane span";
    }
  }
  EXPECT_GE(work_spans, 1u);
  ASSERT_FALSE(chunk_ids.empty());
  // The shared pool's floor guarantees real workers, so the lane spans
  // must come from more than one thread.
  EXPECT_GT(chunk_tids.size(), 1u);

  const std::string json = Tracer::instance().chrome_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("obs.root"), std::string::npos);
}

// ---------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------

TEST(Metrics, ShardMergeMatchesSerialBitForBit) {
  // One thread feeding everything...
  MetricsRegistry serial;
  for (int i = 0; i < 40; ++i) {
    serial.add("c.events");
    serial.add("c.bytes", static_cast<std::uint64_t>(i));
    serial.observe("h.latency", 0.25 * i);
    serial.sample("s.progress", static_cast<double>(i), 100.0 - i);
  }
  serial.set_gauge("g.level", 7.5);

  // ...must serialize identically to four shards fed round-robin and
  // merged in lane order.
  MetricsRegistry shards[4];
  for (int i = 0; i < 40; ++i) {
    MetricsRegistry& shard = shards[i % 4];
    shard.add("c.events");
    shard.add("c.bytes", static_cast<std::uint64_t>(i));
    shard.observe("h.latency", 0.25 * i);
    shard.sample("s.progress", static_cast<double>(i), 100.0 - i);
  }
  MetricsRegistry merged;
  for (MetricsRegistry& shard : shards) merged.merge(shard);
  merged.set_gauge("g.level", 7.5);

  EXPECT_EQ(merged.counter("c.events"), 40u);
  EXPECT_EQ(merged.counter("c.bytes"), 40u * 39u / 2u);
  EXPECT_EQ(merged.series("s.progress").size(), 40u);
  EXPECT_EQ(serial.to_json(), merged.to_json());
  EXPECT_TRUE(is_valid_json(merged.to_json()));
}

TEST(Metrics, AbsorbAtpgCounters) {
  AtpgCounters counters;
  counters.patterns_simulated = 128;
  counters.detect_mask_calls = 9001;
  counters.phase2_seconds = 1.5;
  counters.threads_used = 4;

  MetricsRegistry registry;
  registry.absorb(counters);
  registry.absorb(counters);  // second run accumulates
  EXPECT_EQ(registry.counter("atpg.patterns_simulated"), 256u);
  EXPECT_EQ(registry.counter("atpg.detect_mask_calls"), 18002u);
  EXPECT_EQ(registry.histogram_stats("atpg.phase2_seconds").count(), 2u);
  EXPECT_DOUBLE_EQ(registry.histogram_stats("atpg.phase2_seconds").sum(), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("atpg.threads_used"), 4.0);
}

// ---------------------------------------------------------------------
// Run reports.
// ---------------------------------------------------------------------

TEST(RunReportTest, JsonRoundTripsThroughTheSyntaxChecker) {
  RunReport report("resyn", "unit_block");
  report.set_threads(4);
  report.set_fingerprint(0xdeadbeefcafe1234ull);
  report.set_runtime_seconds(12.5);

  AtpgCounters atpg;
  atpg.patterns_simulated = 77;
  report.set_atpg_totals(atpg);

  ResynthesisReport resyn;
  resyn.q_used = 5;
  resyn.any_accepted = true;
  resyn.candidates_built = 9;
  IterationRecord rec;
  rec.q = 5;
  rec.phase = 2;
  rec.smax = 11;
  rec.undetectable = 42;
  rec.accepted = true;
  rec.banned_through = "NAND2X1 \"quoted\"";  // exercises escaping
  rec.faults = 1000;
  rec.delay = 3.25;
  rec.power = 99.5;
  rec.seconds = 1.75;
  resyn.trace.push_back(rec);
  report.set_resynthesis(resyn);

  const std::string json = report.to_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("\"schema\":\"dfmres-run-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\":\"deadbeefcafe1234\""),
            std::string::npos);
  EXPECT_NE(json.find("\"partial\":false"), std::string::npos);
  EXPECT_NE(json.find("\"convergence\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"smax_pct\":1.1"), std::string::npos);
}

TEST(RunReportTest, PublishMetricsEmitsConvergenceSeries) {
  ResynthesisReport resyn;
  for (int i = 0; i < 3; ++i) {
    IterationRecord rec;
    rec.seconds = 0.5 * (i + 1);
    rec.undetectable = 30 - i;
    rec.smax = 20 - i;
    rec.faults = 100;
    rec.accepted = i != 1;
    resyn.trace.push_back(rec);
  }
  MetricsRegistry registry;
  publish_metrics(resyn, registry);
  EXPECT_EQ(registry.counter("resyn.candidates_recorded"), 3u);
  EXPECT_EQ(registry.counter("resyn.accepted"), 2u);
  const auto series = registry.series("resyn.series.undetectable");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].x, 0.5);
  EXPECT_DOUBLE_EQ(series[2].y, 28.0);
}

/// Same registered datapath as core_test / resilience_test: rich enough
/// to produce undetectable internal faults, small enough for a unit test.
Netlist small_block() {
  CircuitBuilder cb("small");
  const auto a = cb.dff_bus(cb.input_bus("a", 6));
  const auto b = cb.dff_bus(cb.input_bus("b", 6));
  const NetId cin = cb.input("cin");
  auto [sum, carry] = cb.ripple_add(a, b, cin);
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  cb.output(cb.equals(a, b));
  cb.output(cb.xor_n(sum));
  return cb.take();
}

FlowOptions fast_options() {
  FlowOptions options;
  options.atpg.random_batches = 4;
  options.atpg.backtrack_limit = 2000;
  return options;
}

TEST(RunReportTest, DeadlineExpiryProducesPartialReport) {
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState original = flow.run_initial(small_block()).value();

  // A pre-expired deadline: the procedure returns immediately with the
  // original design, and the report must say so rather than masquerade
  // as a completed run.
  const CancelToken token =
      CancelToken::with_deadline(std::chrono::nanoseconds(0));
  ResynthesisOptions options;
  options.cancel = &token;
  const ResynthesisResult result =
      resynthesize(flow, original, options).value();
  ASSERT_TRUE(result.report.deadline_expired);

  RunReport report("resyn", "small");
  report.set_initial(original);
  report.set_final(result.state);
  report.set_resynthesis(result.report);

  const std::string json = report.to_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("\"partial\":true"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_expired\":true"), std::string::npos);
  EXPECT_NE(json.find("\"initial\""), std::string::npos);
  EXPECT_NE(json.find("\"final\""), std::string::npos);
}

}  // namespace
}  // namespace dfmres
