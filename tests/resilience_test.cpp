#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/atpg/engine.hpp"
#include "src/circuits/builder.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/flow.hpp"
#include "src/core/resynthesis.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/verilog.hpp"
#include "src/util/cancel.hpp"
#include "src/util/json.hpp"
#include "src/util/trace.hpp"

namespace dfmres {
namespace {

/// Same registered datapath as core_test: rich enough to produce
/// undetectable internal faults and several resynthesis acceptances,
/// small enough for complete ATPG in a unit test.
Netlist small_block() {
  CircuitBuilder cb("small");
  const auto a = cb.dff_bus(cb.input_bus("a", 6));
  const auto b = cb.dff_bus(cb.input_bus("b", 6));
  const NetId cin = cb.input("cin");
  auto [sum, carry] = cb.ripple_add(a, b, cin);
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  cb.output(cb.equals(a, b));
  cb.output(cb.xor_n(sum));
  return cb.take();
}

FlowOptions fast_options() {
  FlowOptions options;
  options.atpg.random_batches = 4;
  options.atpg.backtrack_limit = 2000;
  return options;
}

/// The trace records rejected probes too (for the convergence series);
/// journal replay only reproduces the accepted ones.
std::size_t accepted_records(const ResynthesisReport& report) {
  std::size_t n = 0;
  for (const IterationRecord& r : report.trace) n += r.accepted;
  return n;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void spew(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// ---------------------------------------------------------------------
// Cancellation primitives.
// ---------------------------------------------------------------------

TEST(CancelToken, ExplicitCancelLatches) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.has_deadline());
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.to_status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(cancel_expired(nullptr));
  EXPECT_TRUE(cancel_expired(&token));
}

TEST(CancelToken, ExpiredDeadlineReportsDeadlineExceeded) {
  const CancelToken token =
      CancelToken::with_deadline(std::chrono::nanoseconds(0));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.to_status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, PreCancelledAtpgUnwindsWithoutClassifying) {
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState s = flow.run_initial(small_block()).value();

  CancelToken token;
  token.cancel();
  AtpgOptions options = fast_options().atpg;
  options.cancel = &token;
  const AtpgResult r = run_atpg(s.netlist, s.universe, flow.udfm(), options);
  // The run must flag itself unusable; a partial classification is fine,
  // but it cannot claim completeness.
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.status.size(), s.universe.size());
  EXPECT_LT(r.num_detected + r.num_undetectable + r.num_aborted,
            s.universe.size());
}

TEST(CancelToken, PreCancelledResynthesisReturnsOriginalDesign) {
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState original = flow.run_initial(small_block()).value();

  CancelToken token;
  token.cancel();
  ResynthesisOptions options;
  options.cancel = &token;
  const ResynthesisResult result =
      resynthesize(flow, original, options).value();
  EXPECT_TRUE(result.report.deadline_expired);
  EXPECT_FALSE(result.report.any_accepted);
  EXPECT_EQ(result.report.replayed_accepts, 0u);
  // Nothing was accepted, so the "best accepted design" is the original.
  EXPECT_EQ(to_verilog(result.state.netlist), to_verilog(original.netlist));
  EXPECT_EQ(result.state.smax(), original.smax());
  EXPECT_EQ(result.state.num_undetectable(), original.num_undetectable());
  EXPECT_EQ(result.state.num_faults(), original.num_faults());
}

// ---------------------------------------------------------------------
// Checkpoint journal: format, durability, damage tolerance.
// ---------------------------------------------------------------------

TEST(Checkpoint, Crc32MatchesKnownVectors) {
  EXPECT_EQ(crc32(""), 0u);
  // The standard CRC-32/IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(Checkpoint, MissingJournalIsNotFound) {
  const auto journal =
      read_checkpoint(testing::TempDir() + "dfmres_no_such_dir");
  ASSERT_FALSE(journal);
  EXPECT_EQ(journal.code(), StatusCode::kNotFound);
}

TEST(Checkpoint, JournalRoundTrip) {
  const std::string dir = testing::TempDir() + "dfmres_ckpt_roundtrip";
  CheckpointWriter writer;
  ASSERT_TRUE(writer.open_fresh(dir, 0xDEADBEEFCAFEull).is_ok());

  CheckpointRecord a;
  a.kind = CheckpointRecord::Kind::Accept;
  a.q = 3;
  a.phase = 2;
  a.via_backtracking = true;
  a.cell_name = "NAND2X1";
  a.region = {4, 7, 19};
  a.banned = {true, false, true, false};
  a.smax = 42;
  a.undetectable = 7;
  ASSERT_TRUE(writer.append(a).is_ok());

  CheckpointRecord b;  // empty cell name must survive the round trip
  b.kind = CheckpointRecord::Kind::Accept;
  b.q = 5;
  b.phase = 1;
  b.region = {2};
  b.banned = {false, false};
  b.smax = 40;
  b.undetectable = 6;
  ASSERT_TRUE(writer.append(b).is_ok());

  CheckpointRecord done;
  done.kind = CheckpointRecord::Kind::Done;
  ASSERT_TRUE(writer.append(done).is_ok());

  CheckpointRecord fin;
  fin.kind = CheckpointRecord::Kind::Final;
  fin.undetectable = 6;
  fin.smax = 40;
  fin.faults = 1234;
  ASSERT_TRUE(writer.append(fin).is_ok());
  writer.close();

  const auto journal = read_checkpoint(dir);
  ASSERT_TRUE(journal);
  EXPECT_EQ(journal->fingerprint, 0xDEADBEEFCAFEull);
  EXPECT_TRUE(journal->search_complete());
  ASSERT_EQ(journal->records.size(), 4u);

  const CheckpointRecord& ra = journal->records[0];
  EXPECT_EQ(ra.kind, CheckpointRecord::Kind::Accept);
  EXPECT_EQ(ra.q, 3);
  EXPECT_EQ(ra.phase, 2);
  EXPECT_TRUE(ra.via_backtracking);
  EXPECT_EQ(ra.cell_name, "NAND2X1");
  EXPECT_EQ(ra.region, (std::vector<std::uint32_t>{4, 7, 19}));
  EXPECT_EQ(ra.banned, (std::vector<bool>{true, false, true, false}));
  EXPECT_EQ(ra.smax, 42u);
  EXPECT_EQ(ra.undetectable, 7u);

  EXPECT_EQ(journal->records[1].cell_name, "");
  EXPECT_EQ(journal->records[2].kind, CheckpointRecord::Kind::Done);
  const CheckpointRecord& rf = journal->records[3];
  EXPECT_EQ(rf.kind, CheckpointRecord::Kind::Final);
  EXPECT_EQ(rf.undetectable, 6u);
  EXPECT_EQ(rf.smax, 40u);
  EXPECT_EQ(rf.faults, 1234u);
}

TEST(Checkpoint, TornTailIsDroppedAndResumeTruncatesIt) {
  const std::string dir = testing::TempDir() + "dfmres_ckpt_torn";
  CheckpointWriter writer;
  ASSERT_TRUE(writer.open_fresh(dir, 99).is_ok());
  CheckpointRecord a;
  a.region = {1, 2};
  a.banned = {true};
  a.smax = 10;
  a.undetectable = 3;
  ASSERT_TRUE(writer.append(a).is_ok());
  writer.close();

  const std::string path = checkpoint_journal_path(dir);
  const std::string intact = slurp(path);
  // A crash mid-append leaves a partial line with no valid checksum.
  spew(path, intact + "A 0 1 0 NAND");

  const auto journal = read_checkpoint(dir);
  ASSERT_TRUE(journal);
  ASSERT_EQ(journal->records.size(), 1u);
  EXPECT_EQ(journal->valid_bytes, intact.size());
  EXPECT_FALSE(journal->search_complete());

  // Resuming truncates the torn tail for good and appends past it.
  CheckpointWriter resumed;
  ASSERT_TRUE(resumed.open_resume(dir, journal->valid_bytes).is_ok());
  CheckpointRecord b = a;
  b.q = 1;
  ASSERT_TRUE(resumed.append(b).is_ok());
  resumed.close();

  const auto again = read_checkpoint(dir);
  ASSERT_TRUE(again);
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].q, 1);
}

TEST(Checkpoint, InteriorCorruptionIsDataLoss) {
  const std::string dir = testing::TempDir() + "dfmres_ckpt_corrupt";
  CheckpointWriter writer;
  ASSERT_TRUE(writer.open_fresh(dir, 7).is_ok());
  CheckpointRecord a;
  a.q = 3;
  a.region = {1};
  a.banned = {true};
  ASSERT_TRUE(writer.append(a).is_ok());
  CheckpointRecord b = a;
  b.q = 5;
  ASSERT_TRUE(writer.append(b).is_ok());
  writer.close();

  const std::string path = checkpoint_journal_path(dir);
  std::string text = slurp(path);
  // Flip the first record's q so its checksum no longer matches; the
  // valid record after it turns silent damage into reportable data loss.
  const auto pos = text.find("A 3");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = '9';
  spew(path, text);

  const auto journal = read_checkpoint(dir);
  ASSERT_FALSE(journal);
  EXPECT_EQ(journal.code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------
// End-to-end resume determinism.
// ---------------------------------------------------------------------

TEST(Resilience, ResumeOfCompletedJournalReplaysWithoutSearching) {
  const std::string dir = testing::TempDir() + "dfmres_resume_complete";
  std::remove(checkpoint_journal_path(dir).c_str());

  ResynthesisOptions options;
  options.checkpoint_dir = dir;

  DesignFlow flow1(osu018_library(), fast_options());
  const FlowState orig1 = flow1.run_initial(small_block()).value();
  const ResynthesisResult ref = resynthesize(flow1, orig1, options).value();
  ASSERT_TRUE(ref.report.any_accepted);

  ResynthesisOptions resume = options;
  resume.resume = true;
  DesignFlow flow2(osu018_library(), fast_options());
  const FlowState orig2 = flow2.run_initial(small_block()).value();
  const ResynthesisResult replayed =
      resynthesize(flow2, orig2, resume).value();

  // Every acceptance came from the journal; no candidate was searched.
  EXPECT_EQ(replayed.report.replayed_accepts, accepted_records(ref.report));
  EXPECT_EQ(replayed.report.u_in_probes, 0u);
  EXPECT_EQ(replayed.report.full_probes, 0u);
  EXPECT_FALSE(replayed.report.deadline_expired);

  // ...and it reconverged to the bit-identical design point.
  EXPECT_EQ(to_verilog(replayed.state.netlist), to_verilog(ref.state.netlist));
  EXPECT_EQ(replayed.state.smax(), ref.state.smax());
  EXPECT_EQ(replayed.state.num_undetectable(), ref.state.num_undetectable());
  EXPECT_EQ(replayed.state.num_faults(), ref.state.num_faults());
  EXPECT_EQ(replayed.report.q_used, ref.report.q_used);
  // Replay records only the accepted sequence — no probes means no
  // rejected-candidate records.
  EXPECT_EQ(replayed.report.trace.size(), accepted_records(ref.report));

  // A journal is pinned to its (options, design, seed) fingerprint.
  ResynthesisOptions other = resume;
  other.q_max = 2;
  DesignFlow flow3(osu018_library(), fast_options());
  const FlowState orig3 = flow3.run_initial(small_block()).value();
  const auto mismatch = resynthesize(flow3, orig3, other);
  ASSERT_FALSE(mismatch);
  EXPECT_EQ(mismatch.code(), StatusCode::kFailedPrecondition);
}

TEST(Resilience, InterruptedThenResumedMatchesUninterrupted) {
  // Reference: the uninterrupted run.
  DesignFlow flow1(osu018_library(), fast_options());
  const FlowState orig1 = flow1.run_initial(small_block()).value();
  const ResynthesisResult ref =
      resynthesize(flow1, orig1, ResynthesisOptions{}).value();

  // Interrupted run: a deadline cuts the search mid-ladder; whatever
  // was accepted up to that point is journaled. (If the machine is fast
  // enough to finish inside the budget the journal is simply complete —
  // the resumed run must match the reference either way.)
  const std::string dir = testing::TempDir() + "dfmres_resume_interrupted";
  std::remove(checkpoint_journal_path(dir).c_str());
  DesignFlow flow2(osu018_library(), fast_options());
  const FlowState orig2 = flow2.run_initial(small_block()).value();
  const CancelToken token =
      CancelToken::with_deadline(std::chrono::milliseconds(250));
  ResynthesisOptions interrupted_options;
  interrupted_options.cancel = &token;
  interrupted_options.checkpoint_dir = dir;
  const ResynthesisResult interrupted =
      resynthesize(flow2, orig2, interrupted_options).value();

  // A truncated search must never journal Done — a cancelled candidate
  // probe comes back empty exactly like converged search, and mistaking
  // one for the other would make the resume below a no-op.
  EXPECT_EQ(read_checkpoint(dir).value().search_complete(),
            !interrupted.report.deadline_expired);

  // Resume without a deadline and run to completion.
  DesignFlow flow3(osu018_library(), fast_options());
  const FlowState orig3 = flow3.run_initial(small_block()).value();
  ResynthesisOptions resume_options;
  resume_options.checkpoint_dir = dir;
  resume_options.resume = true;
  const ResynthesisResult resumed =
      resynthesize(flow3, orig3, resume_options).value();

  EXPECT_EQ(resumed.report.replayed_accepts,
            accepted_records(interrupted.report));
  EXPECT_FALSE(resumed.report.deadline_expired);

  // The resumed run is bit-identical to never having been interrupted.
  EXPECT_EQ(to_verilog(resumed.state.netlist), to_verilog(ref.state.netlist));
  EXPECT_EQ(resumed.state.smax(), ref.state.smax());
  EXPECT_EQ(resumed.state.num_undetectable(), ref.state.num_undetectable());
  EXPECT_EQ(resumed.state.num_faults(), ref.state.num_faults());
  EXPECT_EQ(resumed.report.q_used, ref.report.q_used);
  // The resumed trace lacks the rejected-probe records from before the
  // interruption (replay doesn't probe), but the accepted sequence is
  // the reference's.
  EXPECT_EQ(accepted_records(resumed.report), accepted_records(ref.report));
}

// ---------------------------------------------------------------------
// Journal write fencing and observability-on-failure regressions.
// ---------------------------------------------------------------------

TEST(Checkpoint, JournalLockFencesSecondWriter) {
  const std::string dir = testing::TempDir() + "dfmres_ckpt_lock";
  CheckpointWriter holder;
  ASSERT_TRUE(holder.open_fresh(dir, 11).is_ok());

  // While the first writer holds the OFD lock, neither open path may
  // touch the journal: a taken-over-but-alive lease holder must get a
  // clean refusal instead of interleaving appends with the claimant.
  CheckpointWriter fenced;
  const Status fresh = fenced.open_fresh(dir, 11);
  EXPECT_EQ(fresh.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(fenced.is_open());
  const Status resume = fenced.open_resume(dir, 0);
  EXPECT_EQ(resume.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(fenced.is_open());

  // The fenced attempt must not have truncated the holder's file: the
  // holder keeps appending durable records as if nothing happened.
  CheckpointRecord a;
  a.region = {1};
  a.banned = {true};
  ASSERT_TRUE(holder.append(a).is_ok());
  holder.close();
  const auto journal = read_checkpoint(dir);
  ASSERT_TRUE(journal) << journal.status().to_string();
  EXPECT_EQ(journal->records.size(), 1u);

  // The lock dies with the fd: after close the successor opens freely.
  CheckpointWriter successor;
  EXPECT_TRUE(successor.open_resume(dir, journal->valid_bytes).is_ok());
  successor.close();
}

TEST(Resilience, DeadlineExpiredRunStillYieldsValidTraceJson) {
  // Regression: an expired deadline used to exit the CLI before the
  // trace buffers were flushed, leaving --trace-out absent or torn.
  // The library-level contract behind the fix: whatever spans a
  // truncated run recorded must export as complete, parseable Chrome
  // JSON at any instant.
  Tracer& tracer = Tracer::instance();
  const bool was_enabled = tracer.enabled();
  tracer.enable();

  DesignFlow flow(osu018_library(), fast_options());
  const FlowState original = flow.run_initial(small_block()).value();
  CancelToken token;
  token.cancel();
  ResynthesisOptions options;
  options.cancel = &token;
  const ResynthesisResult result =
      resynthesize(flow, original, options).value();
  EXPECT_TRUE(result.report.deadline_expired);

  const std::string path =
      testing::TempDir() + "dfmres_expired_trace.json";
  ASSERT_TRUE(tracer.write_chrome_json(path).is_ok());
  if (!was_enabled) tracer.disable();

  const std::string text = slurp(path);
  const auto doc = JsonValue::parse(text);
  ASSERT_TRUE(doc) << doc.status().to_string();
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  // The truncated run still recorded real spans, flow analysis at
  // minimum — an empty export would mean the flush happened too early.
  EXPECT_FALSE(events->items().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dfmres
