#include <gtest/gtest.h>

#include "src/circuits/benchmarks.hpp"
#include "src/circuits/builder.hpp"
#include "src/core/flow.hpp"
#include "src/core/resynthesis.hpp"
#include "src/netlist/extract.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/synth/mapper.hpp"
#include "src/library/osu018.hpp"

namespace dfmres {
namespace {

/// Small registered datapath: one 6-bit adder + comparator + parity.
/// Rich enough to produce undetectable internal faults, small enough for
/// fast complete ATPG in tests.
Netlist small_block() {
  CircuitBuilder cb("small");
  const auto a = cb.dff_bus(cb.input_bus("a", 6));
  const auto b = cb.dff_bus(cb.input_bus("b", 6));
  const NetId cin = cb.input("cin");
  auto [sum, carry] = cb.ripple_add(a, b, cin);
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  cb.output(cb.equals(a, b));
  cb.output(cb.xor_n(sum));
  return cb.take();
}

FlowOptions fast_options() {
  FlowOptions options;
  options.atpg.random_batches = 4;
  options.atpg.backtrack_limit = 2000;
  return options;
}

TEST(DesignFlow, InitialFlowInvariants) {
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState s = flow.run_initial(small_block()).value();
  EXPECT_TRUE(s.netlist.validate().empty());
  EXPECT_EQ(s.atpg.status.size(), s.universe.size());
  EXPECT_GT(s.num_faults(), 100u);
  EXPECT_GT(s.coverage(), 0.5);
  EXPECT_LE(s.coverage(), 1.0);
  EXPECT_GT(s.timing.critical_delay, 0.0);
  EXPECT_GT(s.timing.total_power(), 0.0);
  EXPECT_TRUE(s.placement.plan.fits(s.netlist));
  // Status bookkeeping adds up.
  EXPECT_EQ(s.atpg.num_detected + s.atpg.num_undetectable +
                s.atpg.num_aborted,
            s.universe.size());
  // The FA carry chain must produce undetectable internal faults.
  EXPECT_GT(s.num_undetectable(), 0u);
}

TEST(DesignFlow, CellOrderIsByInternalFaults) {
  DesignFlow flow(osu018_library(), fast_options());
  const auto order = flow.cells_by_internal_faults();
  ASSERT_GT(order.size(), 10u);
  std::size_t prev = std::numeric_limits<std::size_t>::max();
  for (const CellId cell : order) {
    const std::size_t count =
        internal_fault_count(flow.target(), flow.udfm(), cell);
    EXPECT_LE(count, prev);
    EXPECT_GT(count, 0u);
    prev = count;
  }
  // FAX1 carries the most internal faults in this library.
  EXPECT_EQ(flow.target().cell(order.front()).name, "FAX1");
}

TEST(DesignFlow, ReanalyzePreservesUntouchedFaultStatuses) {
  // The load-bearing cache assumption: after a function-preserving local
  // rewrite, every fault outside the region keeps its status. Verify by
  // comparing a cached re-analysis against a cache-free one.
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState original = flow.run_initial(small_block()).value();

  // Rewrite: re-map one gate's region with its own cell banned -- a real
  // function-preserving local resynthesis step.
  Netlist edited = original.netlist;
  GateId target = GateId::invalid();
  for (GateId g : edited.live_gates()) {
    const std::string& n = edited.cell_of(g).name;
    if (n == "XNOR2X1" || n == "XOR2X1" || n == "OAI21X1") {
      target = g;
      break;
    }
  }
  ASSERT_TRUE(target.valid());
  {
    const GateId region[] = {target};
    const Subcircuit sub = extract_subcircuit(edited, region).value();
    MapOptions mo;
    mo.banned.assign(edited.library().num_cells(), false);
    mo.banned[edited.gate(target).cell.value()] = true;
    auto mapped = technology_map(sub.circuit, osu018_library(), mo);
    ASSERT_TRUE(mapped.has_value());
    EXPECT_TRUE(replace_region(edited, sub, *mapped).has_value());
  }

  auto cached = flow.analyze(
      AnalysisRequest::incremental(edited, original.placement));
  ASSERT_TRUE(cached.has_value());

  DesignFlow fresh_flow(osu018_library(), fast_options());
  auto fresh = fresh_flow.analyze(
      AnalysisRequest::incremental(edited, original.placement));
  ASSERT_TRUE(fresh.has_value());

  ASSERT_EQ(cached->universe.size(), fresh->universe.size());
  EXPECT_EQ(cached->num_undetectable(), fresh->num_undetectable());
  for (std::size_t i = 0; i < cached->universe.size(); ++i) {
    EXPECT_EQ(cached->universe.faults[i].key(),
              fresh->universe.faults[i].key());
    EXPECT_EQ(cached->atpg.status[i], fresh->atpg.status[i]) << i;
  }
}

TEST(DesignFlow, CountUndetectableInternalMatchesFullRun) {
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState s = flow.run_initial(small_block()).value();
  std::size_t u_in = 0;
  for (std::size_t i = 0; i < s.universe.size(); ++i) {
    u_in += s.universe.faults[i].scope == FaultScope::Internal &&
            s.atpg.status[i] == FaultStatus::Undetectable;
  }
  ProbeSession session = flow.probe();
  const auto probed = session.count_undetectable_internal(s.netlist);
  ASSERT_TRUE(probed.has_value());
  flow.commit_probe(std::move(session));
  EXPECT_EQ(*probed, u_in);
}

TEST(Resynthesis, ImprovesCoverageWithinConstraints) {
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState original = flow.run_initial(small_block()).value();

  ResynthesisOptions options;
  options.q_max = 3;
  options.max_iterations_per_phase = 8;
  const ResynthesisResult result = resynthesize(flow, original, options).value();

  // U must not grow (monotone acceptance, paper Section I).
  EXPECT_LE(result.state.num_undetectable(), original.num_undetectable());
  // The trace of accepted iterations must be monotone in U as well.
  std::size_t prev_u = original.num_undetectable();
  for (const auto& r : result.report.trace) {
    if (!r.accepted) continue;
    EXPECT_LE(r.undetectable, prev_u);
    prev_u = r.undetectable;
  }
  // Design constraints at the accepted q.
  const double envelope = 1.0 + result.report.q_used / 100.0 + 1e-6;
  if (result.report.any_accepted) {
    EXPECT_LE(result.state.timing.critical_delay,
              original.timing.critical_delay * envelope);
    EXPECT_LE(result.state.timing.total_power(),
              original.timing.total_power() * envelope);
  }
  // Die area is frozen.
  EXPECT_EQ(result.state.placement.plan.rows, original.placement.plan.rows);
  EXPECT_EQ(result.state.placement.plan.sites_per_row,
            original.placement.plan.sites_per_row);
  EXPECT_TRUE(result.state.placement.plan.fits(result.state.netlist));
  EXPECT_TRUE(result.state.netlist.validate().empty());
}

TEST(Resynthesis, FunctionIsPreserved) {
  DesignFlow flow(osu018_library(), fast_options());
  const FlowState original = flow.run_initial(small_block()).value();
  ResynthesisOptions options;
  options.q_max = 2;
  options.max_iterations_per_phase = 6;
  const ResynthesisResult result = resynthesize(flow, original, options).value();

  // Same combinational function on random vectors.
  const CombView va = CombView::build(original.netlist);
  const CombView vb = CombView::build(result.state.netlist);
  ASSERT_EQ(va.sources.size(), vb.sources.size());
  ASSERT_EQ(va.observe.size(), vb.observe.size());
  ParallelSimulator sa(original.netlist, va);
  ParallelSimulator sb(result.state.netlist, vb);
  Rng rng(7);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < va.sources.size(); ++i) {
      const std::uint64_t w = rng.next();
      sa.set_source(va.sources[i], w);
      sb.set_source(vb.sources[i], w);
    }
    sa.run();
    sb.run();
    for (std::size_t i = 0; i < va.observe.size(); ++i) {
      ASSERT_EQ(sa.value(va.observe[i]), sb.value(vb.observe[i]))
          << "observe " << i;
    }
  }
}

}  // namespace
}  // namespace dfmres
