#include <gtest/gtest.h>

#include "src/library/osu018.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/util/rng.hpp"

namespace dfmres {
namespace {

class SimTest : public ::testing::Test {
 protected:
  SimTest() : lib_(osu018_library()), nl_(lib_, "sim") {}

  GateId add(const char* cell, std::initializer_list<NetId> ins) {
    std::vector<NetId> fanins(ins);
    return nl_.add_gate(lib_->require(cell), fanins);
  }
  NetId out(GateId g, int k = 0) { return nl_.gate(g).outputs[k]; }

  std::shared_ptr<const Library> lib_;
  Netlist nl_;
};

TEST_F(SimTest, EvalCellMatchesTruthTable) {
  const CellSpec& aoi22 = lib_->cell(lib_->require("AOI22X1"));
  // Drive each input with a counting pattern so all 16 minterms appear.
  std::uint64_t ins[4];
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if ((bit >> i) & 1) v |= std::uint64_t{1} << bit;
    }
    ins[i] = v;
  }
  const std::uint64_t result = ParallelSimulator::eval_cell(aoi22, 0, ins);
  for (int bit = 0; bit < 64; ++bit) {
    const bool expect = aoi22.eval(0, static_cast<std::uint32_t>(bit % 16));
    EXPECT_EQ(((result >> bit) & 1) != 0, expect) << bit;
  }
}

TEST_F(SimTest, FullAdderCircuit) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const NetId c = nl_.add_primary_input();
  const GateId fa = add("FAX1", {a, b, c});
  nl_.mark_primary_output(out(fa, 0));  // carry
  nl_.mark_primary_output(out(fa, 1));  // sum

  const CombView view = CombView::build(nl_);
  ParallelSimulator sim(nl_, view);
  // 8 patterns in lanes 0..7.
  std::uint64_t va = 0, vb = 0, vc = 0;
  for (int p = 0; p < 8; ++p) {
    if (p & 1) va |= 1ull << p;
    if (p & 2) vb |= 1ull << p;
    if (p & 4) vc |= 1ull << p;
  }
  sim.set_source(a, va);
  sim.set_source(b, vb);
  sim.set_source(c, vc);
  sim.run();
  for (int p = 0; p < 8; ++p) {
    const int ones = (p & 1) + ((p >> 1) & 1) + ((p >> 2) & 1);
    EXPECT_EQ((sim.value(out(fa, 0)) >> p) & 1, std::uint64_t(ones >= 2));
    EXPECT_EQ((sim.value(out(fa, 1)) >> p) & 1, std::uint64_t(ones & 1));
  }
}

TEST_F(SimTest, XorTreeRandomAgainstReference) {
  // XOR of 8 inputs via a tree; compare against direct computation.
  std::vector<NetId> level;
  for (int i = 0; i < 8; ++i) level.push_back(nl_.add_primary_input());
  const std::vector<NetId> inputs = level;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(out(add("XOR2X1", {level[i], level[i + 1]})));
    }
    level = next;
  }
  nl_.mark_primary_output(level[0]);

  const CombView view = CombView::build(nl_);
  ParallelSimulator sim(nl_, view);
  Rng rng(5);
  std::vector<std::uint64_t> vals(8);
  for (int i = 0; i < 8; ++i) {
    vals[i] = rng.next();
    sim.set_source(inputs[i], vals[i]);
  }
  sim.run();
  std::uint64_t expect = 0;
  for (auto v : vals) expect ^= v;
  EXPECT_EQ(sim.value(level[0]), expect);
}

TEST_F(SimTest, DffBoundary) {
  // inv -> DFF -> inv: combinationally the two sides are independent.
  const NetId a = nl_.add_primary_input();
  const GateId inv1 = add("INVX1", {a});
  const GateId dff = add("DFFPOSX1", {out(inv1)});
  const GateId inv2 = add("INVX1", {out(dff)});
  nl_.mark_primary_output(out(inv2));

  const CombView view = CombView::build(nl_);
  ParallelSimulator sim(nl_, view);
  sim.set_source(a, 0xFFull);
  sim.set_source(out(dff), 0x0Full);  // pseudo-PI
  sim.run();
  EXPECT_EQ(sim.value(out(inv1)), ~0xFFull);
  EXPECT_EQ(sim.value(out(inv2)), ~0x0Full);
}

}  // namespace
}  // namespace dfmres
