// Warm-start incremental ATPG: the optimizations (seed-test replay,
// cone-restricted retargeting, candidate dedup, parallel ladder, shared
// simulator arenas) are pure accelerations — every observable result
// must be identical to the cold serial reference. These tests pin that
// contract on full pipelines over two different seed blocks.
//
// Bit-identical status comparison is only meaningful when no fault hits
// the PODEM backtrack limit (an Aborted in one mode can be a Detected in
// the other without changing U, %Smax or coverage), so every identity
// test also asserts num_aborted == 0.

#include <gtest/gtest.h>

#include <string>

#include "src/circuits/builder.hpp"
#include "src/core/flow.hpp"
#include "src/core/resynthesis.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/extract.hpp"
#include "src/synth/mapper.hpp"

namespace dfmres {
namespace {

/// Registered adder + comparator + parity (same shape as core_test).
Netlist block_a() {
  CircuitBuilder cb("wsa");
  const auto a = cb.dff_bus(cb.input_bus("a", 6));
  const auto b = cb.dff_bus(cb.input_bus("b", 6));
  const NetId cin = cb.input("cin");
  auto [sum, carry] = cb.ripple_add(a, b, cin);
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  cb.output(cb.equals(a, b));
  cb.output(cb.xor_n(sum));
  return cb.take();
}

/// A second, structurally different block (narrower adder, different
/// observation mix) so the identity checks run on more than one design.
Netlist block_b() {
  CircuitBuilder cb("wsb");
  const auto a = cb.dff_bus(cb.input_bus("p", 5));
  const auto b = cb.dff_bus(cb.input_bus("q", 5));
  const NetId cin = cb.input("c0");
  auto [sum, carry] = cb.ripple_add(a, b, cin);
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  cb.output(cb.xor_n(a));
  cb.output(cb.equals(sum, b));
  return cb.take();
}

FlowOptions flow_options(bool warm, int threads) {
  FlowOptions options;
  options.atpg.random_batches = 4;
  options.atpg.backtrack_limit = 4000;  // high enough: no aborts on these
  options.atpg.num_threads = threads;
  options.warm_start = warm;
  return options;
}

struct PipelineRun {
  FlowState state;
  ResynthesisReport report;
  AtpgCounters totals;
};

PipelineRun run_pipeline(const Netlist& rtl, bool warm, bool parallel_ladder,
                         int threads) {
  DesignFlow flow(osu018_library(), flow_options(warm, threads));
  const FlowState original = flow.run_initial(rtl).value();
  ResynthesisOptions options;
  options.q_max = 2;
  options.max_iterations_per_phase = 6;
  options.dedup_candidates = warm;
  options.parallel_ladder = parallel_ladder;
  ResynthesisResult result = resynthesize(flow, original, options).value();
  return {std::move(result.state), std::move(result.report),
          flow.atpg_totals()};
}

std::string accepted_trace(const ResynthesisReport& report) {
  std::string out;
  for (const IterationRecord& r : report.trace) {
    if (!r.accepted) continue;
    out += "q" + std::to_string(r.q) + "p" + std::to_string(r.phase) + ":" +
           r.banned_through + (r.via_backtracking ? "*" : "") + "/U" +
           std::to_string(r.undetectable) + "/S" + std::to_string(r.smax) +
           ";";
  }
  return out;
}

void expect_identical(const PipelineRun& x, const PipelineRun& y) {
  ASSERT_EQ(x.state.atpg.num_aborted, 0u);
  ASSERT_EQ(y.state.atpg.num_aborted, 0u);
  EXPECT_EQ(accepted_trace(x.report), accepted_trace(y.report));
  EXPECT_EQ(x.state.num_undetectable(), y.state.num_undetectable());
  EXPECT_EQ(x.state.smax(), y.state.smax());
  EXPECT_EQ(x.state.num_faults(), y.state.num_faults());
  EXPECT_DOUBLE_EQ(x.state.coverage(), y.state.coverage());
  ASSERT_EQ(x.state.universe.size(), y.state.universe.size());
  for (std::size_t i = 0; i < x.state.universe.size(); ++i) {
    ASSERT_EQ(x.state.universe.faults[i].key(),
              y.state.universe.faults[i].key());
    EXPECT_EQ(x.state.atpg.status[i], y.state.atpg.status[i]) << "fault " << i;
  }
}

/// Function-preserving local rewrite: re-map one gate's region with its
/// own cell banned (the resynthesis move, applied by hand).
Netlist remap_one_gate(const Netlist& base) {
  Netlist edited = base;
  GateId target = GateId::invalid();
  for (GateId g : edited.live_gates()) {
    const std::string& n = edited.cell_of(g).name;
    if (n == "XNOR2X1" || n == "XOR2X1" || n == "OAI21X1") {
      target = g;
      break;
    }
  }
  EXPECT_TRUE(target.valid());
  const GateId region[] = {target};
  const Subcircuit sub = extract_subcircuit(edited, region).value();
  MapOptions mo;
  mo.banned.assign(edited.library().num_cells(), false);
  mo.banned[edited.gate(target).cell.value()] = true;
  auto mapped = technology_map(sub.circuit, osu018_library(), mo);
  EXPECT_TRUE(mapped.has_value());
  EXPECT_TRUE(replace_region(edited, sub, *mapped).has_value());
  return edited;
}

TEST(WarmStart, ColdVsWarmPipelineIdentity) {
  for (const Netlist& rtl : {block_a(), block_b()}) {
    const PipelineRun warm =
        run_pipeline(rtl, /*warm=*/true, /*parallel_ladder=*/false, 1);
    const PipelineRun cold =
        run_pipeline(rtl, /*warm=*/false, /*parallel_ladder=*/false, 1);
    expect_identical(warm, cold);
  }
}

TEST(WarmStart, SerialVsParallelLadderIdentity) {
  // resolve_threads honors explicit requests above the hardware count,
  // so four ladder workers are exercised even on a single-core host.
  for (const Netlist& rtl : {block_a(), block_b()}) {
    const PipelineRun serial =
        run_pipeline(rtl, /*warm=*/true, /*parallel_ladder=*/false, 4);
    const PipelineRun parallel =
        run_pipeline(rtl, /*warm=*/true, /*parallel_ladder=*/true, 4);
    expect_identical(serial, parallel);
  }
}

TEST(WarmStart, CachedStatusesMatchColdRecomputeAfterRewrite) {
  // The FaultStatusCache invariant, end to end: after a
  // function-preserving rewrite, a warm re-analysis (replay + cone trust
  // + cache) classifies every fault exactly as a cold flow that has
  // never seen the design.
  DesignFlow warm_flow(osu018_library(), flow_options(true, 1));
  const FlowState original = warm_flow.run_initial(block_a()).value();
  const Netlist edited = remap_one_gate(original.netlist);

  auto warm = warm_flow.analyze(AnalysisRequest::incremental(
      edited, original.placement, /*generate_tests=*/true));
  ASSERT_TRUE(warm.has_value());
  DesignFlow cold_flow(osu018_library(), flow_options(false, 1));
  auto cold = cold_flow.analyze(AnalysisRequest::incremental(
      edited, original.placement, /*generate_tests=*/true));
  ASSERT_TRUE(cold.has_value());

  ASSERT_EQ(warm->atpg.num_aborted, 0u);
  ASSERT_EQ(cold->atpg.num_aborted, 0u);
  ASSERT_EQ(warm->universe.size(), cold->universe.size());
  EXPECT_EQ(warm->num_undetectable(), cold->num_undetectable());
  for (std::size_t i = 0; i < warm->universe.size(); ++i) {
    ASSERT_EQ(warm->universe.faults[i].key(), cold->universe.faults[i].key());
    EXPECT_EQ(warm->atpg.status[i], cold->atpg.status[i]) << "fault " << i;
  }
}

TEST(WarmStart, ReplayAndConeCountersAdvance) {
  const PipelineRun warm =
      run_pipeline(block_a(), /*warm=*/true, /*parallel_ladder=*/false, 1);
  // Seed replay resolved at least some faults without random patterns,
  // and the sign-off re-analysis trusted cached detections outside the
  // rewritten cones instead of re-running PODEM on them.
  EXPECT_GT(warm.totals.replay_drops, 0u);
  EXPECT_GT(warm.totals.podem_targets_skipped, 0u);
  const PipelineRun cold =
      run_pipeline(block_a(), /*warm=*/false, /*parallel_ladder=*/false, 1);
  EXPECT_EQ(cold.totals.replay_drops, 0u);
  EXPECT_EQ(cold.totals.podem_targets_skipped, 0u);
}

TEST(WarmStart, SeedWidthMismatchIsIgnored) {
  DesignFlow flow(osu018_library(), flow_options(true, 1));
  const FlowState s = flow.run_initial(block_a()).value();
  const auto count_u_in = [&flow](const Netlist& nl) {
    ProbeSession session = flow.probe();
    const std::size_t count = session.count_undetectable_internal(nl).value();
    flow.commit_probe(std::move(session));
    return count;
  };
  const std::size_t reference = count_u_in(s.netlist);
  // Replace the seed set with patterns of a bogus frame width: the
  // engine must ignore them (guard in run_atpg) and still agree.
  std::vector<TestPattern> bogus(3);
  for (auto& t : bogus) {
    t.frame0.assign(2, 0x5a);
    t.frame1.assign(2, 0xa5);
  }
  flow.set_seed_tests(std::move(bogus));
  EXPECT_EQ(count_u_in(s.netlist), reference);
}

TEST(WarmStart, ArenaReuseAcrossDesignsIsTransparent) {
  // One arena rebound across differently-sized netlists returns the same
  // classifications as fresh per-call simulators.
  DesignFlow flow(osu018_library(), flow_options(true, 1));
  const FlowState s = flow.run_initial(block_a()).value();
  const Netlist edited = remap_one_gate(s.netlist);

  FaultSimArena shared;
  ProbeSession shared_session = flow.probe(&shared);
  const std::size_t u_edit_shared =
      *shared_session.count_undetectable_internal(edited);
  const std::size_t u_base_shared =
      *shared_session.count_undetectable_internal(s.netlist);
  ProbeSession fresh_edit = flow.probe();
  const std::size_t u_edit_fresh =
      *fresh_edit.count_undetectable_internal(edited);
  ProbeSession fresh_base = flow.probe();
  const std::size_t u_base_fresh =
      *fresh_base.count_undetectable_internal(s.netlist);
  EXPECT_EQ(u_edit_shared, u_edit_fresh);
  EXPECT_EQ(u_base_shared, u_base_fresh);
  EXPECT_EQ(shared.size(), 1u);  // single-threaded: master slot only
}

}  // namespace
}  // namespace dfmres
