// W-sweep bit-identity suite for the SimWord fault-sim kernels: every
// mode (scalar, portable 4/8-word, AVX2, AVX-512, auto) must produce
// detection masks bit-identical per 64-lane group to the scalar kernel,
// for full batches and for every tail shape (1, 63, W*64-1 lanes).
// Also pins the dispatch table (parse/resolve/width invariants), the
// PortableWord operations, and end-to-end run_atpg identity across
// modes — cold, warm-start + overlay-baseline, and one tv80-sized run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "src/atpg/engine.hpp"
#include "src/atpg/excitation.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/circuits/benchmarks.hpp"
#include "src/core/flow.hpp"
#include "src/dfm/checker.hpp"
#include "src/library/osu018.hpp"
#include "src/sim/sim_word.hpp"
#include "src/sim/simd_dispatch.hpp"
#include "src/util/rng.hpp"

namespace dfmres {
namespace {

std::shared_ptr<const Library> lib() {
  static auto l = osu018_library();
  return l;
}

/// Every requestable mode; resolution maps unsupported ISA modes onto
/// the portable kernel of the same width, so the whole list is runnable
/// on any machine.
GateId add_gate(Netlist& nl, const char* cell,
                std::initializer_list<NetId> ins) {
  const std::vector<NetId> fanins(ins);
  return nl.add_gate(lib()->require(cell), fanins);
}

constexpr SimdMode kAllModes[] = {
    SimdMode::kScalar, SimdMode::kPortable4, SimdMode::kPortable8,
    SimdMode::kAvx2,   SimdMode::kAvx512,    SimdMode::kAuto,
};

/// Temporarily pins the process-wide kernel request; restores on scope
/// exit so test order cannot leak a mode into unrelated tests.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(SimdMode mode) : saved_(global_simd_mode()) {
    set_global_simd_mode(mode);
  }
  ~ScopedSimdMode() { set_global_simd_mode(saved_); }
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  SimdMode saved_;
};

// ---------------------------------------------------------------------------
// Word operations

template <int W>
void check_portable_word_ops(std::uint64_t seed) {
  Rng rng(seed);
  using Word = PortableWord<W>;
  std::uint64_t a[W], b[W], got[W];
  for (int i = 0; i < W; ++i) {
    a[i] = rng.next();
    b[i] = rng.next();
  }
  const Word wa = Word::load(a);
  const Word wb = Word::load(b);

  wa.store(got);
  for (int i = 0; i < W; ++i) EXPECT_EQ(got[i], a[i]) << "load/store " << i;
  (wa & wb).store(got);
  for (int i = 0; i < W; ++i) EXPECT_EQ(got[i], a[i] & b[i]) << "and " << i;
  (wa | wb).store(got);
  for (int i = 0; i < W; ++i) EXPECT_EQ(got[i], a[i] | b[i]) << "or " << i;
  (wa ^ wb).store(got);
  for (int i = 0; i < W; ++i) EXPECT_EQ(got[i], a[i] ^ b[i]) << "xor " << i;
  (~wa).store(got);
  for (int i = 0; i < W; ++i) EXPECT_EQ(got[i], ~a[i]) << "not " << i;
  wa.andnot(wb).store(got);
  for (int i = 0; i < W; ++i) EXPECT_EQ(got[i], a[i] & ~b[i]) << "andnot " << i;

  EXPECT_TRUE(Word::zero().none());
  EXPECT_FALSE(Word::ones().none());
  EXPECT_TRUE(wa == wa);
  EXPECT_FALSE(wa == wb);  // astronomically unlikely to collide
  EXPECT_TRUE((wa ^ wa).none());

  // A single bit anywhere must defeat none()/equality.
  std::uint64_t one_bit[W] = {};
  one_bit[W - 1] = 1ULL << 63;
  EXPECT_FALSE(Word::load(one_bit).none());
  EXPECT_FALSE(Word::load(one_bit) == Word::zero());
}

TEST(SimWord, PortableOpsMatchScalarReference) {
  check_portable_word_ops<1>(101);
  check_portable_word_ops<4>(202);
  check_portable_word_ops<8>(303);
}

// ---------------------------------------------------------------------------
// Dispatch invariants

TEST(SimdDispatch, ParseRoundTripsEverySpelling) {
  for (const SimdMode mode : kAllModes) {
    const auto parsed = parse_simd_mode(simd_mode_name(mode));
    ASSERT_TRUE(parsed.has_value()) << simd_mode_name(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_simd_mode("").has_value());
  EXPECT_FALSE(parse_simd_mode("sse2").has_value());
  EXPECT_FALSE(parse_simd_mode("avx").has_value());
}

TEST(SimdDispatch, ResolveNeverReturnsAutoAndKeepsWidths) {
  for (const SimdMode mode : kAllModes) {
    const SimdMode resolved = resolve_simd_mode(mode);
    EXPECT_NE(resolved, SimdMode::kAuto) << simd_mode_name(mode);
    // Resolving is idempotent.
    EXPECT_EQ(resolve_simd_mode(resolved), resolved);
  }
  // Portable kernels are always available verbatim.
  EXPECT_EQ(resolve_simd_mode(SimdMode::kScalar), SimdMode::kScalar);
  EXPECT_EQ(resolve_simd_mode(SimdMode::kPortable4), SimdMode::kPortable4);
  EXPECT_EQ(resolve_simd_mode(SimdMode::kPortable8), SimdMode::kPortable8);
  // ISA requests keep their lane width even when degraded to portable.
  EXPECT_EQ(simd_mode_words(resolve_simd_mode(SimdMode::kAvx2)), 4);
  EXPECT_EQ(simd_mode_words(resolve_simd_mode(SimdMode::kAvx512)), 8);
  // Auto picks a wide kernel (at least 4 words) on every build.
  EXPECT_GE(simd_mode_words(resolve_simd_mode(SimdMode::kAuto)), 4);
  // ISA kernels only resolve to themselves when the CPU has the feature.
  if (!cpu_supports_avx2()) {
    EXPECT_EQ(resolve_simd_mode(SimdMode::kAvx2), SimdMode::kPortable4);
  }
  if (!cpu_supports_avx512()) {
    EXPECT_EQ(resolve_simd_mode(SimdMode::kAvx512), SimdMode::kPortable8);
  }
}

TEST(SimdDispatch, SimulatorReportsResolvedKernel) {
  Netlist nl(lib(), "disp");
  const NetId a = nl.add_primary_input();
  const GateId g = add_gate(nl, "INVX1", {a});
  nl.mark_primary_output(nl.gate(g).outputs[0]);
  const CombView view = CombView::build(nl);
  for (const SimdMode mode : kAllModes) {
    const SimdMode resolved = resolve_simd_mode(mode);
    ScopedSimdMode scope(mode);
    FaultSimulator sim(nl, view);
    EXPECT_STREQ(sim.kernel_name(), simd_mode_name(resolved));
    EXPECT_EQ(sim.words(), simd_mode_words(resolved));
    EXPECT_EQ(sim.lane_capacity(), 64 * simd_mode_words(resolved));
  }
}

// ---------------------------------------------------------------------------
// W-sweep bit identity on synthetic blocks

struct Block {
  Netlist nl{lib(), "simd"};
  std::vector<Excitation> excs;
  std::vector<TestPattern> tests;
};

/// Random mapped block in the style of the atpg_test fixtures: 8 PIs, 40
/// gates over a mixed cell set, 4 POs, stuck-at excitations on every
/// internal net, and `num_tests` fully random two-frame patterns.
Block build_block(std::uint64_t seed, std::size_t num_tests) {
  Block blk;
  Rng rng(977 * seed + 11);
  std::vector<NetId> nets;
  for (int i = 0; i < 8; ++i) nets.push_back(blk.nl.add_primary_input());
  const char* kCells[] = {"NAND2X1", "NOR2X1", "XOR2X1",
                          "AOI22X1", "INVX1",  "AND2X2"};
  for (int i = 0; i < 40; ++i) {
    const CellId cell = lib()->require(kCells[rng.below(6)]);
    const CellSpec& spec = lib()->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(nets[nets.size() - 1 -
                            rng.below(std::min<std::size_t>(nets.size(), 12))]);
    }
    nets.push_back(blk.nl.gate(blk.nl.add_gate(cell, fanins)).outputs[0]);
  }
  for (int i = 0; i < 4; ++i) {
    blk.nl.mark_primary_output(nets[nets.size() - 1 - i]);
  }

  for (std::size_t i = 8; i < nets.size(); ++i) {
    for (const bool fv : {false, true}) {
      Excitation exc;
      exc.victim = nets[i];
      exc.faulty_value = fv;
      blk.excs.push_back(exc);
    }
  }

  const CombView view = CombView::build(blk.nl);
  for (std::size_t t = 0; t < num_tests; ++t) {
    TestPattern p;
    p.frame0 = random_sim_frame(view.sources.size(), rng);
    p.frame1 = random_sim_frame(view.sources.size(), rng);
    blk.tests.push_back(std::move(p));
  }
  return blk;
}

/// Classifies every excitation over every test lane under `mode`,
/// batching at the mode's own lane capacity, and returns the detection
/// bits re-based onto global 64-lane groups: entry e*total_groups + g
/// holds lanes [64g, 64g+64) of excitation e. Identical for every mode
/// by the bit-identity contract.
std::vector<std::uint64_t> detect_bits(SimdMode mode, const Netlist& nl,
                                       const CombView& view,
                                       std::span<const TestPattern> tests,
                                       std::span<const Excitation> excs) {
  ScopedSimdMode scope(mode);
  FaultSimulator sim(nl, view);
  const std::size_t cap = static_cast<std::size_t>(sim.lane_capacity());
  const std::size_t total_groups = (tests.size() + 63) / 64;
  std::vector<std::uint64_t> out(excs.size() * total_groups, 0);
  for (std::size_t first = 0; first < tests.size(); first += cap) {
    const std::size_t count = std::min(cap, tests.size() - first);
    sim.load(tests, first, count);
    EXPECT_EQ(sim.lanes(), static_cast<int>(count));
    EXPECT_EQ(sim.groups(), static_cast<int>((count + 63) / 64));
    const std::size_t base = first / 64;
    for (std::size_t e = 0; e < excs.size(); ++e) {
      std::uint64_t m[kMaxSimWords] = {};
      sim.detect_masks(excs.subspan(e, 1), m);
      for (int g = 0; g < sim.groups(); ++g) {
        out[e * total_groups + base + static_cast<std::size_t>(g)] = m[g];
      }
    }
  }
  return out;
}

TEST(SimdKernel, WSweepBitIdentityTwelveBlocks) {
  // One pattern count per block, covering full batches and the tail
  // shapes the issue calls out: 1, 63, and W*64-1 for W in {1, 4, 8}
  // (63 / 255 / 511), plus assorted mid-batch tails.
  const std::size_t kCounts[12] = {1,   63,  64,  65,  100, 127,
                                   255, 256, 320, 511, 512, 3};
  for (std::uint64_t blkno = 0; blkno < 12; ++blkno) {
    const Block blk = build_block(blkno, kCounts[blkno]);
    const CombView view = CombView::build(blk.nl);
    const auto ref =
        detect_bits(SimdMode::kScalar, blk.nl, view, blk.tests, blk.excs);
    // The random blocks must actually exercise detection, not just agree
    // on all-zero masks.
    EXPECT_TRUE(std::any_of(ref.begin(), ref.end(),
                            [](std::uint64_t m) { return m != 0; }))
        << "block " << blkno;
    for (const SimdMode mode : kAllModes) {
      if (mode == SimdMode::kScalar) continue;
      EXPECT_EQ(detect_bits(mode, blk.nl, view, blk.tests, blk.excs), ref)
          << simd_mode_name(mode) << " diverges on block " << blkno << " ("
          << kCounts[blkno] << " lanes)";
    }
  }
}

TEST(SimdKernel, TailLanesExactMaskEveryMode) {
  // Ground-truth check (not just cross-mode agreement): AND output SA0
  // is detected exactly on lanes where both inputs are 1 — the even
  // lanes of this pattern set — and never beyond the loaded tail.
  Netlist nl(lib(), "tail");
  const NetId a = nl.add_primary_input();
  const NetId b = nl.add_primary_input();
  const GateId g = add_gate(nl, "AND2X2", {a, b});
  nl.mark_primary_output(nl.gate(g).outputs[0]);
  const CombView view = CombView::build(nl);

  Excitation exc;
  exc.victim = nl.gate(g).outputs[0];
  exc.faulty_value = false;
  const Excitation excs[] = {exc};

  for (const SimdMode mode : kAllModes) {
    ScopedSimdMode scope(mode);
    FaultSimulator sim(nl, view);
    const std::size_t cap = static_cast<std::size_t>(sim.lane_capacity());
    const std::set<std::size_t> counts = {1, 63, cap - 1, cap};
    for (const std::size_t count : counts) {
      std::vector<TestPattern> tests(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t v = i % 2 == 0;
        tests[i].frame0 = {v, v};
        tests[i].frame1 = {v, v};
      }
      sim.load(tests, 0, count);
      ASSERT_EQ(sim.lanes(), static_cast<int>(count));
      std::uint64_t m[kMaxSimWords] = {};
      sim.detect_masks(excs, m);
      for (int grp = 0; grp < sim.groups(); ++grp) {
        const std::size_t lanes_in_group =
            std::min<std::size_t>(64, count - 64 * grp);
        std::uint64_t expected = 0x5555555555555555ULL;
        if (lanes_in_group < 64) {
          expected &= (1ULL << lanes_in_group) - 1;
        }
        EXPECT_EQ(m[grp], expected)
            << simd_mode_name(mode) << " count " << count << " group " << grp;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level identity

/// The 4-bit ripple-carry adder block of Engine.EndToEndClassification:
/// big enough to include undetectable faults and multi-batch test sets.
Netlist build_adder() {
  Netlist nl(lib(), "fa");
  std::vector<NetId> a, b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(nl.add_primary_input());
    b.push_back(nl.add_primary_input());
  }
  NetId carry = nl.add_primary_input();
  for (int i = 0; i < 4; ++i) {
    const GateId fa = add_gate(nl, "FAX1", {a[i], b[i], carry});
    carry = nl.gate(fa).outputs[0];
    nl.mark_primary_output(nl.gate(fa).outputs[1]);
  }
  nl.mark_primary_output(carry);
  return nl;
}

void expect_equal_results(const AtpgResult& got, const AtpgResult& ref,
                          const char* label) {
  EXPECT_EQ(got.status, ref.status) << label;
  EXPECT_EQ(got.tests, ref.tests) << label;
  EXPECT_EQ(got.num_detected, ref.num_detected) << label;
  EXPECT_EQ(got.num_undetectable, ref.num_undetectable) << label;
  EXPECT_EQ(got.num_aborted, ref.num_aborted) << label;
}

TEST(SimdKernel, EngineColdRunBitIdenticalAcrossModes) {
  const Netlist nl = build_adder();
  UdfmMap udfm(*lib());
  const FaultUniverse universe = extract_internal_faults(nl, udfm);
  ASSERT_GT(universe.size(), 50u);
  AtpgOptions options;
  options.random_batches = 4;

  const auto run_mode = [&](SimdMode mode) {
    ScopedSimdMode scope(mode);
    return run_atpg(nl, universe, udfm, options);
  };
  const AtpgResult ref = run_mode(SimdMode::kScalar);
  EXPECT_GT(ref.num_detected, 0u);
  EXPECT_FALSE(ref.tests.empty());
  for (const SimdMode mode : kAllModes) {
    if (mode == SimdMode::kScalar) continue;
    expect_equal_results(run_mode(mode), ref, simd_mode_name(mode));
  }
}

TEST(SimdKernel, EngineWarmOverlayRunBitIdenticalAcrossModes) {
  // Warm-start replay over a baseline built under the same mode: covers
  // the wide overlay loads (seed batches and pre-simulated random
  // batches) plus the verify-overlays cross-check, which recomputes
  // every replay batch with a full load and compares masks in-engine.
  const Netlist nl = build_adder();
  UdfmMap udfm(*lib());
  const FaultUniverse universe = extract_internal_faults(nl, udfm);
  AtpgOptions options;
  options.random_batches = 4;

  const std::vector<TestPattern> seeds = [&] {
    ScopedSimdMode scope(SimdMode::kScalar);
    return run_atpg(nl, universe, udfm, options).tests;
  }();
  ASSERT_FALSE(seeds.empty());

  const auto warm_run = [&](SimdMode mode) {
    ScopedSimdMode scope(mode);
    const SimBaseline base =
        build_sim_baseline(nl, seeds, options.seed, options.random_batches);
    EXPECT_EQ(base.words, simd_mode_words(resolve_simd_mode(mode)));
    AtpgOptions warm = options;
    warm.seed_tests = &seeds;
    warm.baseline = &base;
    warm.verify_overlays = true;
    const AtpgResult result = run_atpg(nl, universe, udfm, warm);
    EXPECT_GT(result.counters.overlay_verified_batches, 0u)
        << simd_mode_name(mode);
    EXPECT_EQ(result.counters.overlay_verify_mismatches, 0u)
        << simd_mode_name(mode);
    return result;
  };
  const AtpgResult ref = warm_run(SimdMode::kScalar);
  for (const SimdMode mode : kAllModes) {
    if (mode == SimdMode::kScalar) continue;
    expect_equal_results(warm_run(mode), ref, simd_mode_name(mode));
  }
}

TEST(SimdKernelHeavy, Tv80ClassificationBitIdenticalScalarVsAuto) {
  // One realistic-sized end-to-end fingerprint: classify the full DFM
  // fault universe of the mapped tv80 benchmark under the scalar kernel
  // and under auto (the widest kernel this machine has), and require
  // identical statuses and an identical compacted test set. Budgets are
  // trimmed so the whole test stays bounded on one core.
  FlowOptions fopts;
  fopts.atpg.random_batches = 4;
  fopts.atpg.backtrack_limit = 1000;
  DesignFlow flow(lib(), fopts);
  const FlowState state =
      flow.run_initial(build_benchmark("tv80").value()).value();
  ASSERT_GT(state.num_faults(), 1000u);

  const auto run_mode = [&](SimdMode mode) {
    ScopedSimdMode scope(mode);
    return run_atpg(state.netlist, state.universe, flow.udfm(), fopts.atpg);
  };
  const AtpgResult ref = run_mode(SimdMode::kScalar);
  const AtpgResult wide = run_mode(SimdMode::kAuto);
  expect_equal_results(wide, ref, "auto vs scalar on tv80");
}

}  // namespace
}  // namespace dfmres
