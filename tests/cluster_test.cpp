#include <gtest/gtest.h>

#include "src/cluster/clustering.hpp"
#include "src/library/osu018.hpp"

namespace dfmres {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : lib_(osu018_library()), nl_(lib_, "cl") {}

  GateId add(const char* cell, std::initializer_list<NetId> ins) {
    std::vector<NetId> fanins(ins);
    return nl_.add_gate(lib_->require(cell), fanins);
  }
  NetId out(GateId g) { return nl_.gate(g).outputs[0]; }

  Fault internal_fault(GateId owner) {
    Fault f;
    f.kind = FaultKind::CellAware;
    f.scope = FaultScope::Internal;
    f.owner = owner;
    f.victim = nl_.gate(owner).outputs[0];
    return f;
  }
  Fault stuck_at(NetId net, bool v) {
    Fault f;
    f.kind = FaultKind::StuckAt;
    f.scope = FaultScope::External;
    f.victim = net;
    f.value = v;
    return f;
  }

  std::shared_ptr<const Library> lib_;
  Netlist nl_;
};

TEST_F(ClusterTest, CorrespondingGates) {
  const NetId a = nl_.add_primary_input();
  const GateId g1 = add("INVX1", {a});
  const GateId g2 = add("INVX1", {out(g1)});
  nl_.mark_primary_output(out(g2));

  // Internal fault: exactly the owner (paper Section II: an internal
  // fault only has one gate that corresponds to it).
  EXPECT_EQ(corresponding_gates(internal_fault(g1), nl_),
            std::vector<GateId>{g1});
  // External fault on the mid net: driver and sink.
  const auto gates = corresponding_gates(stuck_at(out(g1), false), nl_);
  EXPECT_EQ(gates.size(), 2u);

  // Bridge: gates of both nets.
  Fault bridge;
  bridge.kind = FaultKind::Bridge;
  bridge.scope = FaultScope::External;
  bridge.victim = out(g1);
  bridge.aggressor = out(g2);
  EXPECT_EQ(corresponding_gates(bridge, nl_).size(), 2u);
}

TEST_F(ClusterTest, SeparateChainsFormSeparateClusters) {
  // Two disjoint inverter chains, undetectable faults on both.
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const GateId a1 = add("INVX1", {a});
  const GateId a2 = add("INVX1", {out(a1)});
  const GateId b1 = add("INVX1", {b});
  const GateId b2 = add("INVX1", {out(b1)});
  nl_.mark_primary_output(out(a2));
  nl_.mark_primary_output(out(b2));

  FaultUniverse u;
  u.faults = {internal_fault(a1), internal_fault(a2), internal_fault(b1),
              internal_fault(b2), internal_fault(b2)};
  const std::vector<FaultStatus> status(u.size(),
                                        FaultStatus::Undetectable);
  const ClusterAnalysis analysis = cluster_undetectable(nl_, u, status);
  ASSERT_EQ(analysis.clusters.size(), 2u);
  EXPECT_EQ(analysis.clusters[0].size(), 3u);  // chain b (largest first)
  EXPECT_EQ(analysis.clusters[1].size(), 2u);
  EXPECT_EQ(analysis.undetectable.size(), 5u);
  EXPECT_EQ(analysis.gates_u.size(), 4u);
  EXPECT_EQ(analysis.gmax.size(), 2u);  // b1, b2
}

TEST_F(ClusterTest, AdjacencyThroughDriverSinkEdges) {
  // g1 -> g2 -> g3: faults on g1 and g3 only are NOT adjacent (g2 carries
  // no undetectable fault), so they form two clusters; adding a g2 fault
  // merges everything (transitive closure, paper Section II).
  const NetId a = nl_.add_primary_input();
  const GateId g1 = add("INVX1", {a});
  const GateId g2 = add("INVX1", {out(g1)});
  const GateId g3 = add("INVX1", {out(g2)});
  nl_.mark_primary_output(out(g3));

  FaultUniverse u;
  u.faults = {internal_fault(g1), internal_fault(g3)};
  std::vector<FaultStatus> status(2, FaultStatus::Undetectable);
  EXPECT_EQ(cluster_undetectable(nl_, u, status).clusters.size(), 2u);

  u.faults.push_back(internal_fault(g2));
  status.assign(3, FaultStatus::Undetectable);
  const auto merged = cluster_undetectable(nl_, u, status);
  ASSERT_EQ(merged.clusters.size(), 1u);
  EXPECT_EQ(merged.smax(), 3u);
}

TEST_F(ClusterTest, ExternalFaultBridgesClusters) {
  // Distinct chains glued together by a bridge fault between them, the
  // effect that makes external shorts correspond to multiple gates.
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const GateId a1 = add("INVX1", {a});
  const GateId b1 = add("INVX1", {b});
  nl_.mark_primary_output(out(a1));
  nl_.mark_primary_output(out(b1));

  Fault bridge;
  bridge.kind = FaultKind::Bridge;
  bridge.scope = FaultScope::External;
  bridge.victim = out(a1);
  bridge.aggressor = out(b1);

  FaultUniverse u;
  u.faults = {internal_fault(a1), internal_fault(b1), bridge};
  const std::vector<FaultStatus> status(3, FaultStatus::Undetectable);
  const auto analysis = cluster_undetectable(nl_, u, status);
  ASSERT_EQ(analysis.clusters.size(), 1u);
  EXPECT_EQ(analysis.smax(), 3u);
}

TEST_F(ClusterTest, OnlyUndetectableFaultsParticipate) {
  const NetId a = nl_.add_primary_input();
  const GateId g1 = add("INVX1", {a});
  const GateId g2 = add("INVX1", {out(g1)});
  nl_.mark_primary_output(out(g2));

  FaultUniverse u;
  u.faults = {internal_fault(g1), internal_fault(g2)};
  const std::vector<FaultStatus> status{FaultStatus::Undetectable,
                                        FaultStatus::Detected};
  const auto analysis = cluster_undetectable(nl_, u, status);
  EXPECT_EQ(analysis.undetectable.size(), 1u);
  EXPECT_EQ(analysis.smax(), 1u);
  EXPECT_EQ(analysis.gates_u.size(), 1u);
}

TEST_F(ClusterTest, SmaxInternalCountsInternalOnly) {
  const NetId a = nl_.add_primary_input();
  const GateId g1 = add("INVX1", {a});
  nl_.mark_primary_output(out(g1));

  FaultUniverse u;
  u.faults = {internal_fault(g1), stuck_at(out(g1), true)};
  const std::vector<FaultStatus> status(2, FaultStatus::Undetectable);
  const auto analysis = cluster_undetectable(nl_, u, status);
  ASSERT_EQ(analysis.smax(), 2u);
  EXPECT_EQ(analysis.smax_internal(u), 1u);
}

TEST_F(ClusterTest, EmptyUniverse) {
  const NetId a = nl_.add_primary_input();
  const GateId g1 = add("INVX1", {a});
  nl_.mark_primary_output(out(g1));
  FaultUniverse u;
  const auto analysis =
      cluster_undetectable(nl_, u, std::vector<FaultStatus>{});
  EXPECT_TRUE(analysis.clusters.empty());
  EXPECT_EQ(analysis.smax(), 0u);
  EXPECT_TRUE(analysis.gmax.empty());
}

}  // namespace
}  // namespace dfmres
