// Serve-daemon tests: the dfmres-request-v1 socket round-trip with two
// concurrent clients, admission control (quota / inflight / duplicate
// rejections), and the crash-restart contract — SIGKILL the daemon
// mid-run, restart it over the same campaign root, and the recovered
// campaign's canonical report is byte-identical to a serial run.
//
// Fork-based (daemon as a child process), so scripts/run_tsan.sh
// excludes ServeHeavy like the other multi-process suites.

#include "src/core/serve.hpp"

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/campaign.hpp"
#include "src/core/request.hpp"
#include "src/util/crashpoint.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"

namespace dfmres {
namespace {

std::string make_root(const std::string& tag) {
  const std::string root = testing::TempDir() + "dfmres_serve_" + tag + "_" +
                           std::to_string(::getpid());
  EXPECT_TRUE(make_dir(root).is_ok());
  return root;
}

/// Trimmed search budgets so daemon-run jobs stay unit-test sized.
void trim(CampaignJobSpec& job) {
  job.flow.atpg.random_batches = 4;
  job.flow.atpg.backtrack_limit = 1000;
  job.resyn.max_iterations_per_phase = 8;
  job.resyn.reanalyses_per_iteration = 8;
}

CampaignManifest flow_manifest(int jobs) {
  CampaignManifest manifest;
  for (int i = 0; i < jobs; ++i) {
    CampaignJobSpec job;
    job.name = "tlu-" + std::to_string(i);
    job.design = "sparc_tlu";
    job.mode = CampaignJobSpec::Mode::Flow;
    job.flow.atpg.seed = static_cast<std::uint64_t>(100 + i);
    trim(job);
    manifest.jobs.push_back(std::move(job));
  }
  return manifest;
}

std::string canon_of(const CampaignResult& result) {
  const auto canon = canonical_campaign_report(result.report_json());
  EXPECT_TRUE(canon) << canon.status().to_string();
  return canon ? *canon : std::string();
}

std::string canon_of_file(const std::string& path) {
  const auto text = read_file(path);
  EXPECT_TRUE(text) << path << ": " << text.status().to_string();
  if (!text) return std::string();
  const auto canon = canonical_campaign_report(*text);
  EXPECT_TRUE(canon) << path << ": " << canon.status().to_string();
  return canon ? *canon : std::string();
}

/// Forks the serve daemon. The child re-arms DFMRES_CRASH_AFTER from
/// the environment (crash-injection tests set it pre-fork) and exits 0
/// only on a clean drain.
pid_t fork_daemon(const std::string& root, const std::string& socket_path,
                  int workers, std::size_t max_inflight = 64,
                  std::size_t client_quota = 8) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  crash_point_rearm_from_env();
  ServeOptions options;
  options.campaign_root = root;
  options.socket_path = socket_path;
  options.workers = workers;
  options.total_threads = workers;
  options.max_inflight_jobs = max_inflight;
  options.max_client_campaigns = client_quota;
  options.poll_interval = std::chrono::milliseconds(20);
  const auto stats = run_serve(options);
  ::_exit(stats && stats->drained ? 0 : 1);
}

/// Minimal blocking protocol client over the daemon's Unix socket.
class Client {
 public:
  ~Client() { close(); }

  /// Connects, retrying until the daemon has bound the socket.
  [[nodiscard]] bool connect(const std::string& path, int attempts = 100) {
    for (int i = 0; i < attempts; ++i) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd_ < 0) return false;
      sockaddr_un addr = {};
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return true;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  [[nodiscard]] bool send(const Request& request) {
    return send_raw(request_to_json(request) + "\n");
  }

  [[nodiscard]] bool send_raw(const std::string& line) {
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next response line, or "" on EOF/timeout.
  [[nodiscard]] std::string read_line(int timeout_ms = 120000) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line.empty()) return line;
        continue;
      }
      pollfd p = {fd_, POLLIN, 0};
      const int r = ::poll(&p, 1, timeout_ms);
      if (r <= 0) return std::string();
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return std::string();
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads until an event named `event` arrives (returns its document)
  /// or the stream ends (returns parse failure).
  [[nodiscard]] Expected<JsonValue> wait_for(const std::string& event) {
    for (;;) {
      const std::string line = read_line();
      if (line.empty()) {
        return Status(StatusCode::kUnavailable, "stream ended before " + event);
      }
      auto doc = JsonValue::parse(line);
      if (!doc) return doc.status();
      const JsonValue* ev = doc->find("event");
      if (ev == nullptr || !ev->is_string()) continue;
      if (ev->as_string() == event || ev->as_string() == "rejected" ||
          ev->as_string() == "error") {
        return doc;
      }
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

Request submit(const std::string& id, CampaignManifest manifest) {
  Request r;
  r.payload = CampaignRequest{id, std::move(manifest)};
  return r;
}

Request status_of(const std::string& id) {
  Request r;
  r.payload = StatusRequest{id};
  return r;
}

Request drain() {
  Request r;
  r.payload = DrainRequest{};
  return r;
}

void expect_event(const Expected<JsonValue>& doc, const char* event) {
  ASSERT_TRUE(doc) << doc.status().to_string();
  const JsonValue* ev = doc->find("event");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->as_string(), event);
}

/// Two clients, two concurrent campaigns, four workers: both reports
/// stream back, the daemon drains cleanly, and each campaign's
/// canonical projection is byte-identical to a serial run_campaign of
/// the same manifest.
TEST(ServeHeavy, TwoClientsConcurrentCampaignsCanonIdentical) {
  const CampaignManifest alpha = flow_manifest(3);
  const CampaignManifest beta = flow_manifest(2);

  CampaignOptions serial;
  serial.total_threads = 1;
  const auto ref_alpha = run_campaign(alpha, serial);
  ASSERT_TRUE(ref_alpha) << ref_alpha.status().to_string();
  const auto ref_beta = run_campaign(beta, serial);
  ASSERT_TRUE(ref_beta) << ref_beta.status().to_string();

  const std::string root = make_root("two") + "/serve";
  const std::string sock = root + ".sock";
  const pid_t daemon = fork_daemon(root, sock, /*workers=*/4);
  ASSERT_GT(daemon, 0);

  Client c1;
  Client c2;
  ASSERT_TRUE(c1.connect(sock));
  ASSERT_TRUE(c2.connect(sock));
  ASSERT_TRUE(c1.send(submit("alpha", alpha)));
  ASSERT_TRUE(c2.send(submit("beta", beta)));
  expect_event(c1.wait_for("accepted"), "accepted");
  expect_event(c2.wait_for("accepted"), "accepted");

  // Both campaigns complete; each client gets its own report event.
  const auto report_alpha = c1.wait_for("report");
  ASSERT_TRUE(report_alpha) << report_alpha.status().to_string();
  EXPECT_EQ(report_alpha->find("id")->as_string(), "alpha");
  const auto report_beta = c2.wait_for("report");
  ASSERT_TRUE(report_beta) << report_beta.status().to_string();
  EXPECT_EQ(report_beta->find("id")->as_string(), "beta");

  ASSERT_TRUE(c1.send(drain()));
  expect_event(c1.wait_for("drained"), "drained");
  c1.close();
  c2.close();
  int wstatus = 0;
  ASSERT_EQ(::waitpid(daemon, &wstatus, 0), daemon);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);

  // Canon byte-identity against the serial scheduler, per campaign.
  EXPECT_EQ(canon_of_file(root + "/alpha/report.json"), canon_of(*ref_alpha));
  EXPECT_EQ(canon_of_file(root + "/beta/report.json"), canon_of(*ref_beta));
}

/// Admission control rejects, never queues silently: duplicate ids,
/// per-client campaign quotas and the inflight-jobs bound all come back
/// as typed `rejected` events while the daemon keeps serving. A
/// deliberately slow resyn job pins one campaign active for the whole
/// test, so every bound is checked deterministically; a cancel request
/// then terminalizes it (skipped shard, merged report) before drain.
TEST(ServeHeavy, AdmissionControlRejectsExplicitly) {
  const std::string root = make_root("admit") + "/serve";
  const std::string sock = root + ".sock";
  const pid_t daemon = fork_daemon(root, sock, /*workers=*/2,
                                   /*max_inflight=*/2, /*client_quota=*/1);
  ASSERT_GT(daemon, 0);

  // One resyn job with untrimmed budgets: runs until cancelled.
  CampaignManifest slow;
  {
    CampaignJobSpec job;
    job.name = "slow";
    job.design = "sparc_tlu";
    job.mode = CampaignJobSpec::Mode::Resyn;
    job.resyn.q_max = 5;
    slow.jobs.push_back(std::move(job));
  }

  Client c1;
  ASSERT_TRUE(c1.connect(sock));
  ASSERT_TRUE(c1.send(submit("slow", slow)));
  expect_event(c1.wait_for("accepted"), "accepted");

  // Same id again: kAlreadyExists, regardless of which client asks.
  Client c2;
  ASSERT_TRUE(c2.connect(sock));
  ASSERT_TRUE(c2.send(submit("slow", flow_manifest(1))));
  auto rejected = c2.wait_for("rejected");
  ASSERT_TRUE(rejected) << rejected.status().to_string();
  EXPECT_EQ(rejected->find("event")->as_string(), "rejected");
  EXPECT_EQ(rejected->find("code")->as_string(), "already_exists");

  // "slow" holds 1 inflight job; 2 more would exceed max_inflight=2.
  ASSERT_TRUE(c2.send(submit("big", flow_manifest(2))));
  rejected = c2.wait_for("rejected");
  ASSERT_TRUE(rejected) << rejected.status().to_string();
  EXPECT_EQ(rejected->find("event")->as_string(), "rejected");
  EXPECT_EQ(rejected->find("code")->as_string(), "resource_exhausted");

  // c1 already has an active campaign and the per-client quota is 1.
  ASSERT_TRUE(c1.send(submit("extra", flow_manifest(1))));
  rejected = c1.wait_for("rejected");
  ASSERT_TRUE(rejected) << rejected.status().to_string();
  EXPECT_EQ(rejected->find("event")->as_string(), "rejected");
  EXPECT_EQ(rejected->find("code")->as_string(), "resource_exhausted");

  // Malformed request: typed error event, connection stays usable.
  ASSERT_TRUE(c2.send_raw("{\"schema\":\"dfmres-request-v1\"}\n"));
  const auto err = c2.wait_for("error");
  ASSERT_TRUE(err) << err.status().to_string();
  EXPECT_EQ(err->find("event")->as_string(), "error");
  ASSERT_TRUE(c2.send(status_of("")));
  const auto server = c2.wait_for("status");
  ASSERT_TRUE(server) << server.status().to_string();

  // Cancel terminalizes the slow campaign: its job lands as a skipped
  // shard and the report still merges (streamed back to c1).
  {
    Request cancel;
    cancel.payload = CancelRequest{"slow"};
    ASSERT_TRUE(c1.send(cancel));
  }
  const auto report = c1.wait_for("report");
  ASSERT_TRUE(report) << report.status().to_string();
  EXPECT_EQ(report->find("id")->as_string(), "slow");
  const JsonValue* body = report->find("report");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->find("skipped")->as_number(), 1.0);

  ASSERT_TRUE(c1.send(drain()));
  expect_event(c1.wait_for("drained"), "drained");
  c1.close();
  c2.close();
  int wstatus = 0;
  ASSERT_EQ(::waitpid(daemon, &wstatus, 0), daemon);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

/// SIGKILL the daemon mid-run (crash point at a job claim), restart it
/// over the same root: the unfinished campaign is recovered headless,
/// runs to completion, and its canonical report is byte-identical to a
/// serial run — the acceptance contract of the serve subsystem.
TEST(ServeHeavy, SigkillRestartResumesByteIdentical) {
  const CampaignManifest manifest = flow_manifest(3);
  CampaignOptions serial;
  serial.total_threads = 1;
  const auto reference = run_campaign(manifest, serial);
  ASSERT_TRUE(reference) << reference.status().to_string();

  const std::string root = make_root("sigkill") + "/serve";
  const std::string sock = root + ".sock";

  // First daemon: dies at the second job claim, after accepting the
  // campaign — some shards may exist, the report does not.
  ASSERT_EQ(::setenv("DFMRES_CRASH_AFTER", "job.start:2", 1), 0);
  const pid_t victim = fork_daemon(root, sock, /*workers=*/2);
  ASSERT_EQ(::unsetenv("DFMRES_CRASH_AFTER"), 0);
  ASSERT_GT(victim, 0);

  {
    Client c;
    ASSERT_TRUE(c.connect(sock));
    ASSERT_TRUE(c.send(submit("gamma", manifest)));
    expect_event(c.wait_for("accepted"), "accepted");
    // The stream ends when the daemon is SIGKILLed by the crash point.
    for (;;) {
      const std::string line = c.read_line();
      if (line.empty()) break;
    }
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(victim, &wstatus, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "daemon survived the crash point";
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);
  EXPECT_FALSE(path_exists(root + "/gamma/report.json"));

  // Second daemon, same root: restart recovery rescans the sub-roots,
  // re-admits "gamma" headless and finishes its unclaimed jobs.
  const pid_t rescuer = fork_daemon(root, sock, /*workers=*/2);
  ASSERT_GT(rescuer, 0);
  {
    Client c;
    ASSERT_TRUE(c.connect(sock));
    for (int i = 0; i < 1200; ++i) {
      ASSERT_TRUE(c.send(status_of("gamma")));
      const auto doc = c.wait_for("status");
      ASSERT_TRUE(doc) << doc.status().to_string();
      const JsonValue* body = doc->find("status");
      ASSERT_NE(body, nullptr);
      if (body->find("report_written")->as_bool()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ASSERT_TRUE(path_exists(root + "/gamma/report.json"))
        << "recovered campaign did not finish";
    ASSERT_TRUE(c.send(drain()));
    expect_event(c.wait_for("drained"), "drained");
  }
  ASSERT_EQ(::waitpid(rescuer, &wstatus, 0), rescuer);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);

  // The kill schedule left no trace in the canonical projection.
  EXPECT_EQ(canon_of_file(root + "/gamma/report.json"), canon_of(*reference));
}

}  // namespace
}  // namespace dfmres
