#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "src/util/cancel.hpp"
#include "src/util/duration.hpp"
#include "src/util/ids.hpp"
#include "src/util/json.hpp"
#include "src/util/logging.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/union_find.hpp"

namespace dfmres {
namespace {

TEST(Ids, DefaultIsInvalid) {
  GateId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, GateId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  NetId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_NE(id, NetId{41});
  EXPECT_LT(NetId{41}, id);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(UnionFind, MergeAndFind) {
  UnionFind uf(10);
  EXPECT_EQ(uf.num_sets(), 10u);
  EXPECT_TRUE(uf.merge(0, 1));
  EXPECT_TRUE(uf.merge(1, 2));
  EXPECT_FALSE(uf.merge(0, 2));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 3));
  EXPECT_EQ(uf.num_sets(), 8u);
  EXPECT_EQ(uf.size_of(1), 3u);
}

TEST(UnionFind, TransitiveClosureMatchesBruteForce) {
  Rng rng(99);
  const std::size_t n = 64;
  UnionFind uf(n);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (int i = 0; i < 40; ++i) {
    edges.emplace_back(rng.below(n), rng.below(n));
    uf.merge(edges.back().first, edges.back().second);
  }
  // Brute-force reachability.
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [a, b] : edges) {
      const std::uint32_t m = std::min(label[a], label[b]);
      if (label[a] != m || label[b] != m) {
        label[a] = label[b] = m;
        changed = true;
      }
    }
    // Propagate labels through shared labels.
    for (std::uint32_t i = 0; i < n; ++i) {
      if (label[label[i]] != label[i]) {
        label[i] = label[label[i]];
        changed = true;
      }
    }
  }
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      EXPECT_EQ(uf.same(a, b), label[a] == label[b]) << a << "," << b;
    }
  }
}

TEST(Stats, RunningStats) {
  RunningStats s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

// Regression: the first sample must seed min/max even when every value is
// negative (a zero-initialized min_ of 0.0 would win otherwise).
TEST(Stats, RunningStatsNegativeOnlySamples) {
  RunningStats s;
  for (double x : {-5.0, -1.0, -3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), -1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -3.0);
}

TEST(Stats, RunningStatsMerge) {
  RunningStats a, b, empty;
  for (double x : {-2.0, -8.0}) a.add(x);
  for (double x : {4.0, 6.0}) b.add(x);

  RunningStats seeded;
  seeded.merge(a);  // merge into empty adopts the source verbatim
  EXPECT_EQ(seeded.count(), 2u);
  EXPECT_DOUBLE_EQ(seeded.min(), -8.0);
  EXPECT_DOUBLE_EQ(seeded.max(), -2.0);

  a.merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.max(), -2.0);

  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), -8.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
}

TEST(Stats, Histogram) {
  std::vector<double> v{0.1, 0.2, 0.9, 1.5, -3.0};
  auto h = histogram(v, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // 0.1, 0.2, -3.0 (clamped)
  EXPECT_EQ(h[1], 2u);  // 0.9, 1.5 (clamped)
}

// Regression: degenerate bin requests must not divide by zero or index
// out of range.
TEST(Stats, HistogramDegenerateEdges) {
  std::vector<double> v{0.5, 1.5};
  EXPECT_TRUE(histogram(v, 0.0, 1.0, 0).empty());
  const auto inverted = histogram(v, 1.0, 0.0, 3);
  ASSERT_EQ(inverted.size(), 3u);
  EXPECT_EQ(inverted[0] + inverted[1] + inverted[2], 0u);
  const auto collapsed = histogram(v, 2.0, 2.0, 2);
  ASSERT_EQ(collapsed.size(), 2u);
  EXPECT_EQ(collapsed[0] + collapsed[1], 0u);
}

TEST(Stats, AtpgCountersMergeAndFormat) {
  AtpgCounters a, b;
  a.patterns_simulated = 10;
  a.propagation_events = 5;
  a.phase1_seconds = 0.5;
  a.threads_used = 2;
  b.patterns_simulated = 3;
  b.podem_backtracks = 7;
  b.phase1_seconds = 0.25;
  b.threads_used = 4;
  a.merge(b);
  EXPECT_EQ(a.patterns_simulated, 13u);
  EXPECT_EQ(a.podem_backtracks, 7u);
  EXPECT_DOUBLE_EQ(a.phase1_seconds, 0.75);
  EXPECT_EQ(a.threads_used, 4);
  EXPECT_NE(a.summary().find("13 patterns"), std::string::npos);
  EXPECT_NE(a.json().find("\"podem_backtracks\": 7"), std::string::npos);
}

TEST(Duration, ParsesSuffixedSpecs) {
  using std::chrono::nanoseconds;
  EXPECT_EQ(parse_duration_spec("500ms").value(), nanoseconds(500'000'000));
  EXPECT_EQ(parse_duration_spec("30s").value(), nanoseconds(30'000'000'000));
  EXPECT_EQ(parse_duration_spec("2m").value(), nanoseconds(120'000'000'000));
  EXPECT_EQ(parse_duration_spec("0.25s").value(), nanoseconds(250'000'000));
  EXPECT_EQ(parse_duration_spec("7").value(), nanoseconds(7'000'000'000));
}

TEST(Duration, RejectsNonPositiveAndOverflow) {
  const auto code = [](const char* text) {
    const auto d = parse_duration_spec(text);
    return d ? StatusCode::kOk : d.status().code();
  };
  // Negative, zero and underflow-to-zero all mean "no deadline" to the
  // consumers — never what a spec author intended.
  EXPECT_EQ(code("-3s"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("0"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("0ms"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("1e-400s"), StatusCode::kInvalidArgument);
  // Overflow: strtod ERANGE, explicit inf/nan, and values that would
  // overflow the nanosecond cast.
  EXPECT_EQ(code("1e400s"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("1e300s"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("inf"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("nan"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("1e10s"), StatusCode::kInvalidArgument);  // > 1e9 seconds
  // Garbage and trailing junk.
  EXPECT_EQ(code(""), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("abc"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("12x"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("1.2.3s"), StatusCode::kInvalidArgument);
  // The message locates the offending spec and says why.
  const auto bad = parse_duration_spec("-3s");
  ASSERT_FALSE(bad);
  EXPECT_NE(bad.status().message().find("'-3s'"), std::string::npos);
  EXPECT_NE(bad.status().message().find("must be positive"),
            std::string::npos);
  const auto huge = parse_duration_spec("1e300s");
  ASSERT_FALSE(huge);
  EXPECT_NE(huge.status().message().find("out of range"), std::string::npos);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5);
  EXPECT_GE(ThreadPool::resolve_threads(-3), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1337);
  pool.parallel_for(hits.size(), 7, 4, [&](int, std::size_t b, std::size_t e) {
    EXPECT_LE(e - b, 7u);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, LaneIdsStayWithinBudget) {
  ThreadPool pool(8);
  for (const int budget : {1, 2, 5}) {
    std::atomic<int> max_lane{0};
    pool.parallel_for(10000, 3, budget,
                      [&](int lane, std::size_t, std::size_t) {
                        int seen = max_lane.load();
                        while (lane > seen &&
                               !max_lane.compare_exchange_weak(seen, lane)) {
                        }
                      });
    EXPECT_LT(max_lane.load(), budget) << "budget " << budget;
  }
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> out(100, 0);
  pool.parallel_for(out.size(), 8, 4, [&](int lane, std::size_t b,
                                          std::size_t e) {
    EXPECT_EQ(lane, 0);
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<int>(i);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, ManyBackToBackJobs) {
  // Stresses job handoff: parked workers must pick up each new
  // generation and the caller must never return before all chunks ran.
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint32_t> out(97 + round, 0);
    pool.parallel_for(out.size(), 4, 3, [&](int, std::size_t b,
                                            std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[i] = static_cast<std::uint32_t>(2 * i);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], 2 * i) << "round " << round;
    }
  }
}

TEST(ThreadPool, SharedPoolIsUsableAndStable) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 4);  // floor lets 1-core machines exercise threads
  std::atomic<std::uint64_t> sum{0};
  a.parallel_for(1000, 16, a.size(), [&](int, std::size_t b2, std::size_t e) {
    std::uint64_t local = 0;
    for (std::size_t i = b2; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 999u * 1000u / 2u);
}

TEST(ThreadPool, LanesPerJobSplitsTheBudget) {
  EXPECT_EQ(ThreadPool::lanes_per_job(8, 2), 4);
  EXPECT_EQ(ThreadPool::lanes_per_job(8, 3), 2);
  EXPECT_EQ(ThreadPool::lanes_per_job(4, 4), 1);
  // Oversubscribed job counts floor at one lane each.
  EXPECT_EQ(ThreadPool::lanes_per_job(2, 8), 1);
  EXPECT_EQ(ThreadPool::lanes_per_job(0, 3), 1);
  EXPECT_EQ(ThreadPool::lanes_per_job(8, 0), 8);
  // jobs * inner <= max(total, jobs) for representative splits.
  for (const int total : {1, 2, 4, 8, 13}) {
    for (const int jobs : {1, 2, 3, 7, 16}) {
      const int inner = ThreadPool::lanes_per_job(total, jobs);
      EXPECT_GE(inner, 1);
      EXPECT_LE(jobs * inner, std::max(total, jobs))
          << total << "/" << jobs;
    }
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A parallel_for issued from inside a pool lane must degenerate to an
  // inline serial loop (never re-enter the pool), so concurrent jobs
  // cannot deadlock or oversubscribe through nesting.
  ThreadPool pool(3);
  EXPECT_FALSE(ThreadPool::in_pool_lane());
  std::atomic<int> inner_nonzero_lanes{0};
  std::atomic<int> outer_chunks{0};
  pool.parallel_for(12, 1, 3, [&](int, std::size_t b, std::size_t e) {
    outer_chunks.fetch_add(1);
    EXPECT_TRUE(ThreadPool::in_pool_lane());
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(64, 4, 3, [&](int lane, std::size_t, std::size_t) {
        if (lane != 0) inner_nonzero_lanes.fetch_add(1);
      });
    }
  });
  EXPECT_FALSE(ThreadPool::in_pool_lane());
  EXPECT_EQ(outer_chunks.load(), 12);
  EXPECT_EQ(inner_nonzero_lanes.load(), 0);
}

TEST(Cancel, ParentCancellationReachesChildren) {
  CancelToken parent;
  const CancelToken child(Deadline::never(), &parent);
  EXPECT_FALSE(child.expired());
  parent.cancel();
  EXPECT_TRUE(child.expired());
  EXPECT_EQ(child.to_status().code(), StatusCode::kCancelled);
}

TEST(Cancel, ChildDeadlineDoesNotPropagateUpward) {
  CancelToken parent;
  const CancelToken child(Deadline::after(std::chrono::nanoseconds(1)),
                          &parent);
  EXPECT_TRUE(child.has_deadline());
  EXPECT_TRUE(child.expired());
  EXPECT_EQ(child.to_status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(parent.expired());
}

TEST(Cancel, ParentDeadlineCountsAsDeadlineForChildren) {
  const CancelToken parent =
      CancelToken::with_deadline(std::chrono::nanoseconds(1));
  const CancelToken child(Deadline::never(), &parent);
  EXPECT_TRUE(child.has_deadline());
  EXPECT_TRUE(child.expired());
  EXPECT_EQ(child.to_status().code(), StatusCode::kDeadlineExceeded);
}

TEST(Json, ParsesScalarsAndContainers) {
  const auto doc = JsonValue::parse(
      " {\"s\": \"a\\n\\\"b\\\"\\u0041\", \"n\": -2.5e2, \"t\": true, "
      "\"f\": false, \"z\": null, \"arr\": [1, 2, 3], \"obj\": {}} ");
  ASSERT_TRUE(doc) << doc.status().to_string();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("s")->as_string(), "a\n\"b\"A");
  EXPECT_DOUBLE_EQ(doc->find("n")->as_number(), -250.0);
  EXPECT_TRUE(doc->find("t")->as_bool());
  EXPECT_FALSE(doc->find("f")->as_bool());
  EXPECT_TRUE(doc->find("z")->is_null());
  ASSERT_EQ(doc->find("arr")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->find("arr")->items()[2].as_number(), 3.0);
  EXPECT_TRUE(doc->find("obj")->members().empty());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "a \"quoted\"\tname");
  w.field("count", std::uint64_t{42});
  w.key("nested");
  w.begin_array();
  w.value(1.5);
  w.value(false);
  w.end_array();
  w.end_object();
  const auto doc = JsonValue::parse(w.str());
  ASSERT_TRUE(doc) << doc.status().to_string();
  EXPECT_EQ(doc->find("name")->as_string(), "a \"quoted\"\tname");
  EXPECT_DOUBLE_EQ(doc->find("count")->as_number(), 42.0);
  EXPECT_FALSE(doc->find("nested")->items()[1].as_bool());
}

TEST(Json, RejectsMalformedInput) {
  const auto code = [](const char* text) {
    const auto doc = JsonValue::parse(text);
    return doc ? StatusCode::kOk : doc.status().code();
  };
  EXPECT_EQ(code(""), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("{"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("{} extra"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("{\"a\": 1,}"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("[1 2]"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("truth"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("01"), StatusCode::kInvalidArgument);  // leading zero
  EXPECT_EQ(code("1."), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("\"unterminated"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("\"bad \\x escape\""), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("NaN"), StatusCode::kInvalidArgument);
  // Duplicate keys are rejected (strict manifests want one value per
  // key, not last-wins).
  EXPECT_EQ(code("{\"a\": 1, \"a\": 2}"), StatusCode::kInvalidArgument);
  // Errors carry a line:column locator.
  const auto err = JsonValue::parse("{\n  \"a\": @\n}");
  ASSERT_FALSE(err);
  EXPECT_NE(err.status().message().find("json 2:8"), std::string::npos)
      << err.status().message();
}

TEST(Json, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(JsonValue::parse(deep));
  std::string ok;
  for (int i = 0; i < 30; ++i) ok += "[";
  for (int i = 0; i < 30; ++i) ok += "]";
  EXPECT_TRUE(JsonValue::parse(ok));
}

std::mutex g_log_lines_mutex;
std::vector<std::string> g_log_lines;

void capture_log_line(std::string_view line) {
  std::lock_guard<std::mutex> lock(g_log_lines_mutex);
  g_log_lines.emplace_back(line);
}

// Lines must arrive at the sink whole — one callback per log() call with
// the `[seconds] [tid] [level]` prefix and trailing newline — even when
// many threads log at once.
TEST(Logging, SinkReceivesWholeLinesAcrossThreads) {
  {
    std::lock_guard<std::mutex> lock(g_log_lines_mutex);
    g_log_lines.clear();
  }
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::Info);
  set_log_sink(&capture_log_line);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_info("msg thread=%d seq=%d", t, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  set_log_sink(nullptr);
  set_log_level(saved_level);

  std::lock_guard<std::mutex> lock(g_log_lines_mutex);
  ASSERT_EQ(g_log_lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::string> unique;
  for (const std::string& line : g_log_lines) {
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_EQ(line.back(), '\n') << line;
    EXPECT_NE(line.find("[INFO] msg thread="), std::string::npos) << line;
    // Exactly one message per line — a torn write would duplicate "msg".
    EXPECT_EQ(line.find("msg"), line.rfind("msg")) << line;
    unique.insert(line.substr(line.find("msg")));
  }
  EXPECT_EQ(unique.size(), g_log_lines.size());
}

}  // namespace
}  // namespace dfmres
