#include <gtest/gtest.h>

#include <set>

#include "src/util/ids.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/union_find.hpp"

namespace dfmres {
namespace {

TEST(Ids, DefaultIsInvalid) {
  GateId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, GateId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  NetId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_NE(id, NetId{41});
  EXPECT_LT(NetId{41}, id);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(UnionFind, MergeAndFind) {
  UnionFind uf(10);
  EXPECT_EQ(uf.num_sets(), 10u);
  EXPECT_TRUE(uf.merge(0, 1));
  EXPECT_TRUE(uf.merge(1, 2));
  EXPECT_FALSE(uf.merge(0, 2));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 3));
  EXPECT_EQ(uf.num_sets(), 8u);
  EXPECT_EQ(uf.size_of(1), 3u);
}

TEST(UnionFind, TransitiveClosureMatchesBruteForce) {
  Rng rng(99);
  const std::size_t n = 64;
  UnionFind uf(n);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (int i = 0; i < 40; ++i) {
    edges.emplace_back(rng.below(n), rng.below(n));
    uf.merge(edges.back().first, edges.back().second);
  }
  // Brute-force reachability.
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [a, b] : edges) {
      const std::uint32_t m = std::min(label[a], label[b]);
      if (label[a] != m || label[b] != m) {
        label[a] = label[b] = m;
        changed = true;
      }
    }
    // Propagate labels through shared labels.
    for (std::uint32_t i = 0; i < n; ++i) {
      if (label[label[i]] != label[i]) {
        label[i] = label[label[i]];
        changed = true;
      }
    }
  }
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      EXPECT_EQ(uf.same(a, b), label[a] == label[b]) << a << "," << b;
    }
  }
}

TEST(Stats, RunningStats) {
  RunningStats s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
}

TEST(Stats, Histogram) {
  std::vector<double> v{0.1, 0.2, 0.9, 1.5, -3.0};
  auto h = histogram(v, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // 0.1, 0.2, -3.0 (clamped)
  EXPECT_EQ(h[1], 2u);  // 0.9, 1.5 (clamped)
}

}  // namespace
}  // namespace dfmres
