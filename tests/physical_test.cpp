#include <gtest/gtest.h>

#include <set>

#include "src/circuits/benchmarks.hpp"
#include "src/layout/floorplan.hpp"
#include "src/library/osu018.hpp"
#include "src/place/placement.hpp"
#include "src/route/router.hpp"
#include "src/sta/sta.hpp"
#include "src/synth/mapper.hpp"

namespace dfmres {
namespace {

Netlist mapped_block(const char* name) {
  const Netlist rtl = build_benchmark(name).value();
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  auto mapped = technology_map(rtl, tlib, mo);
  EXPECT_TRUE(mapped.has_value());
  return std::move(*mapped);
}

TEST(Floorplan, SizedForUtilization) {
  const Netlist nl = mapped_block("sparc_tlu");
  const Floorplan plan = make_floorplan(nl, 0.70);
  const double util = plan.utilization(nl);
  EXPECT_GT(util, 0.55);
  EXPECT_LT(util, 0.80);
  EXPECT_TRUE(plan.fits(nl));
}

TEST(Placement, LegalAndComplete) {
  const Netlist nl = mapped_block("sparc_tlu");
  const Floorplan plan = make_floorplan(nl);
  const Placement pl = global_place(nl, plan, {});
  // Every live gate placed inside the die, no site overlaps.
  std::set<std::pair<int, int>> occupied;
  for (GateId g : nl.live_gates()) {
    const auto& p = pl.of(g);
    ASSERT_TRUE(p.valid());
    const int w = nl.cell_of(g).width_sites;
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x + w, plan.sites_per_row);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.y, plan.rows);
    for (int i = 0; i < w; ++i) {
      EXPECT_TRUE(occupied.emplace(p.x + i, p.y).second)
          << "overlap at " << p.x + i << "," << p.y;
    }
  }
}

TEST(Placement, AnnealingDoesNotWorsenWirelength) {
  const Netlist nl = mapped_block("sparc_tlu");
  const Floorplan plan = make_floorplan(nl);
  PlaceOptions no_anneal;
  no_anneal.moves_per_gate = 0;
  const Placement raw = global_place(nl, plan, no_anneal);
  const Placement refined = global_place(nl, plan, {});
  EXPECT_LE(total_hpwl(nl, refined), total_hpwl(nl, raw) * 1.02);
}

TEST(Placement, IncrementalKeepsSurvivorsAndStaysLegal) {
  Netlist nl = mapped_block("sparc_tlu");
  const Floorplan plan = make_floorplan(nl);
  const Placement before = global_place(nl, plan, {});

  // Edit: retype some inverters (no topology change) and add a few gates.
  const auto lib = nl.library_ptr();
  std::vector<GateId> survivors = nl.live_gates();
  const NetId a = nl.primary_inputs()[0];
  for (int i = 0; i < 5; ++i) {
    const NetId in[] = {a};
    nl.add_gate(lib->require("INVX1"), in);
  }
  const auto after = incremental_place(nl, before);
  ASSERT_TRUE(after.has_value());
  for (GateId g : survivors) {
    EXPECT_EQ(after->of(g).x, before.of(g).x);
    EXPECT_EQ(after->of(g).y, before.of(g).y);
  }
  std::set<std::pair<int, int>> occupied;
  for (GateId g : nl.live_gates()) {
    const auto& p = after->of(g);
    ASSERT_TRUE(p.valid());
    for (int i = 0; i < nl.cell_of(g).width_sites; ++i) {
      EXPECT_TRUE(occupied.emplace(p.x + i, p.y).second);
    }
  }
}

TEST(Placement, IncrementalFailsWhenDieFull) {
  Netlist nl = mapped_block("sparc_tlu");
  Floorplan plan = make_floorplan(nl);
  const Placement before = global_place(nl, plan, {});
  // Stuff the die far beyond capacity.
  const auto lib = nl.library_ptr();
  const NetId a = nl.primary_inputs()[0];
  const long free_sites = plan.total_sites() - total_width_sites(nl);
  const int to_add = static_cast<int>(free_sites / 10) + 50;
  for (int i = 0; i < to_add; ++i) {
    const NetId in[] = {a, a, a};
    nl.add_gate(lib->require("FAX1"), in);
  }
  EXPECT_FALSE(incremental_place(nl, before).has_value());
}

TEST(Router, SegmentsInsideGridAndUsageConsistent) {
  const Netlist nl = mapped_block("sparc_tlu");
  const Floorplan plan = make_floorplan(nl);
  const Placement pl = global_place(nl, plan, {});
  const RoutingResult rr = route(nl, pl, {});
  ASSERT_GT(rr.grid_w, 0);
  ASSERT_GT(rr.grid_h, 0);
  std::vector<std::uint32_t> h_check(rr.h_usage.size(), 0),
      v_check(rr.v_usage.size(), 0);
  for (const RouteSegment& s : rr.segments) {
    EXPECT_LE(s.lo, s.hi);
    if (s.horizontal) {
      EXPECT_LT(s.fixed, rr.grid_h);
      EXPECT_LT(s.hi, rr.grid_w);
      for (int x = s.lo; x <= s.hi; ++x) ++h_check[rr.cell(x, s.fixed)];
    } else {
      EXPECT_LT(s.fixed, rr.grid_w);
      EXPECT_LT(s.hi, rr.grid_h);
      for (int y = s.lo; y <= s.hi; ++y) ++v_check[rr.cell(s.fixed, y)];
    }
  }
  for (std::size_t i = 0; i < h_check.size(); ++i) {
    EXPECT_EQ(h_check[i], rr.h_usage[i]);
    EXPECT_EQ(v_check[i], rr.v_usage[i]);
  }
  for (const Via& via : rr.vias) {
    EXPECT_LT(via.x, rr.grid_w);
    EXPECT_LT(via.y, rr.grid_h);
  }
}

TEST(Router, MultiPinNetsGetWireAndVias) {
  const Netlist nl = mapped_block("sparc_tlu");
  const Floorplan plan = make_floorplan(nl);
  const Placement pl = global_place(nl, plan, {});
  const RoutingResult rr = route(nl, pl, {});
  std::size_t with_wire = 0, with_vias = 0, multi_pin = 0;
  for (NetId net : nl.live_nets()) {
    const auto& n = nl.net(net);
    const std::size_t pins = n.sinks.size() + (n.has_gate_driver() ? 1 : 0);
    if (pins < 2) continue;
    ++multi_pin;
    with_wire += rr.nets[net.value()].wirelength > 0;
    with_vias += rr.nets[net.value()].num_vias > 0;
  }
  EXPECT_GT(multi_pin, 100u);
  // Nets whose pins share one gcell need no routing; every net that got
  // wire must have pin vias, and most multi-pin nets span gcells.
  EXPECT_GE(with_vias, with_wire);
  EXPECT_GT(with_wire * 10, multi_pin * 5);
}

TEST(Sta, ArrivalsMonotoneAlongPaths) {
  const Netlist nl = mapped_block("sparc_tlu");
  const Floorplan plan = make_floorplan(nl);
  const Placement pl = global_place(nl, plan, {});
  const RoutingResult rr = route(nl, pl, {});
  const TimingPower tp = analyze_timing_power(nl, rr, {});
  EXPECT_GT(tp.critical_delay, 0.0);
  EXPECT_GT(tp.dynamic_power, 0.0);
  EXPECT_GT(tp.leakage_power, 0.0);
  for (GateId g : nl.live_gates()) {
    if (nl.cell_of(g).sequential) continue;
    double in_arrival = 0.0;
    for (NetId in : nl.gate(g).fanin) {
      in_arrival = std::max(in_arrival, tp.arrival[in.value()]);
    }
    for (NetId out : nl.gate(g).outputs) {
      EXPECT_GT(tp.arrival[out.value()], in_arrival);
    }
  }
}

TEST(Sta, DriveDownsizingSlowsLoadedNets) {
  // Retyping a loaded INVX4 to INVX1 must not speed the circuit up.
  // (sparc_exu's operand decoders give the mapper high-fanout nets to
  // size, unlike the smaller tlu block.)
  Netlist nl = mapped_block("sparc_exu");
  const Floorplan plan = make_floorplan(nl);
  const Placement pl = global_place(nl, plan, {});
  const RoutingResult rr = route(nl, pl, {});
  const double before = analyze_timing_power(nl, rr, {}).critical_delay;
  const auto lib = nl.library_ptr();
  int retyped = 0;
  for (GateId g : nl.live_gates()) {
    const std::string& name = nl.cell_of(g).name;
    if (name == "INVX2" || name == "INVX4" || name == "INVX8") {
      nl.retype_gate(g, lib->require("INVX1"));
      ++retyped;
    }
  }
  if (retyped == 0) GTEST_SKIP() << "no sized inverters in this block";
  const double after = analyze_timing_power(nl, rr, {}).critical_delay;
  EXPECT_GE(after, before);
}

}  // namespace
}  // namespace dfmres
