// ReadyQueue tests: the relaxed-FIFO contract (strict FIFO per
// producer, arbitrary interleave across producers), empty/full
// backpressure, close/drain semantics, cancellation, and an MPMC
// stress that scripts/run_tsan.sh runs under ThreadSanitizer.

#include "src/util/ready_queue.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/cancel.hpp"

namespace dfmres {
namespace {

TEST(ReadyQueue, SingleThreadFifo) {
  ReadyQueue q(8);
  for (std::uint64_t v = 0; v < 8; ++v) EXPECT_TRUE(q.try_push(v));
  for (std::uint64_t v = 0; v < 8; ++v) {
    std::uint64_t got = 0;
    ASSERT_TRUE(q.try_pop(&got));
    EXPECT_EQ(got, v);
  }
  std::uint64_t got = 0;
  EXPECT_FALSE(q.try_pop(&got));
}

TEST(ReadyQueue, CapacityRoundsUpToWholeBlocks) {
  ReadyQueue q(5, /*block_size=*/4);
  EXPECT_EQ(q.block_size(), 4u);
  EXPECT_GE(q.capacity(), 5u);
  EXPECT_EQ(q.capacity() % q.block_size(), 0u);
  // At least two blocks: the cursor protocol needs a distinct "next".
  EXPECT_GE(q.capacity() / q.block_size(), 2u);
}

TEST(ReadyQueue, FullQueueBackpressure) {
  ReadyQueue q(4, /*block_size=*/2);
  const std::size_t cap = q.capacity();
  for (std::size_t v = 0; v < cap; ++v) EXPECT_TRUE(q.try_push(v));
  EXPECT_FALSE(q.try_push(99));  // full: explicit backpressure
  EXPECT_EQ(q.size_approx(), cap);
  std::uint64_t got = 0;
  ASSERT_TRUE(q.try_pop(&got));
  EXPECT_EQ(got, 0u);
  EXPECT_TRUE(q.try_push(99));  // slot freed, push succeeds again
}

TEST(ReadyQueue, WrapsManyRounds) {
  ReadyQueue q(4, /*block_size=*/2);
  std::uint64_t next = 0;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.try_push(static_cast<std::uint64_t>(round)));
    std::uint64_t got = 0;
    ASSERT_TRUE(q.try_pop(&got));
    EXPECT_EQ(got, next++);
  }
  EXPECT_EQ(q.size_approx(), 0u);
}

TEST(ReadyQueue, CloseDrainsThenUnavailable) {
  ReadyQueue q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.push(3).code(), StatusCode::kUnavailable);
  // Poppers drain the committed backlog before seeing closed.
  EXPECT_EQ(q.pop().value(), 1u);
  EXPECT_EQ(q.pop().value(), 2u);
  EXPECT_EQ(q.pop().status().code(), StatusCode::kUnavailable);
  q.close();  // idempotent
}

TEST(ReadyQueue, BlockingPopUnblocksOnClose) {
  ReadyQueue q(8);
  std::thread popper([&] {
    const auto got = q.pop();
    EXPECT_FALSE(got);
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  popper.join();
}

TEST(ReadyQueue, BlockingPopUnblocksOnCancel) {
  ReadyQueue q(8);
  CancelToken token;
  std::thread popper([&] {
    const auto got = q.pop(&token);
    EXPECT_FALSE(got);
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  token.cancel();
  popper.join();
}

TEST(ReadyQueue, BlockingPushWaitsForSpace) {
  ReadyQueue q(4, /*block_size=*/2);
  const std::size_t cap = q.capacity();
  for (std::size_t v = 0; v < cap; ++v) ASSERT_TRUE(q.try_push(v));
  std::atomic<bool> pushed{false};
  std::thread pusher([&] {
    EXPECT_TRUE(q.push(77).is_ok());
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());  // still full, still blocked
  std::uint64_t got = 0;
  ASSERT_TRUE(q.try_pop(&got));
  pusher.join();
  EXPECT_TRUE(pushed.load());
}

/// Strict FIFO per producer: tag each value with its producer in the
/// high bits and a per-producer sequence in the low bits; every
/// consumer must observe each producer's sequence strictly increasing.
TEST(ReadyQueue, FifoPerProducer) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 2000;
  ReadyQueue q(64, /*block_size=*/8);

  std::vector<std::vector<std::uint64_t>> consumed(kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | s;
        ASSERT_TRUE(q.push(v).is_ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &consumed, c] {
      for (;;) {
        const auto got = q.pop();
        if (!got) break;  // closed and drained
        consumed[static_cast<std::size_t>(c)].push_back(*got);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }

  // Each consumer saw each producer's sequence strictly increasing.
  std::uint64_t total = 0;
  for (const auto& log : consumed) {
    std::vector<std::uint64_t> last(kProducers, 0);
    std::vector<bool> seen(kProducers, false);
    for (const std::uint64_t v : log) {
      const std::size_t p = static_cast<std::size_t>(v >> 32);
      const std::uint64_t s = v & 0xffffffffu;
      if (seen[p]) EXPECT_GT(s, last[p]) << "producer " << p;
      seen[p] = true;
      last[p] = s;
    }
    total += log.size();
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
}

/// MPMC stress (the TSan target): every pushed value is consumed
/// exactly once, across blocking and non-blocking paths.
TEST(ReadyQueue, MpmcStressExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  ReadyQueue q(128);

  std::vector<std::atomic<int>> hits(kTotal);
  for (auto& h : hits) h.store(0);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + s;
        // Mix non-blocking and blocking pushes.
        if (!q.try_push(v)) ASSERT_TRUE(q.push(v).is_ok());
      }
    });
  }
  std::atomic<std::uint64_t> consumed{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        std::uint64_t v = 0;
        if (q.try_pop(&v)) {
          hits[v].fetch_add(1);
          consumed.fetch_add(1);
          continue;
        }
        const auto got = q.pop();
        if (!got) break;
        hits[*got].fetch_add(1);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  EXPECT_EQ(consumed.load(), kTotal);
  for (std::uint64_t v = 0; v < kTotal; ++v) {
    ASSERT_EQ(hits[v].load(), 1) << "value " << v;
  }
}

}  // namespace
}  // namespace dfmres
