#include <gtest/gtest.h>

#include <algorithm>

#include "src/library/osu018.hpp"
#include "src/netlist/extract.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/stats.hpp"

namespace dfmres {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : lib_(osu018_library()), nl_(lib_, "t") {}

  GateId add(const char* cell, std::initializer_list<NetId> ins) {
    std::vector<NetId> fanins(ins);
    return nl_.add_gate(lib_->require(cell), fanins);
  }

  std::shared_ptr<const Library> lib_;
  Netlist nl_;
};

TEST_F(NetlistTest, BuildSmallCircuit) {
  const NetId a = nl_.add_primary_input("a");
  const NetId b = nl_.add_primary_input("b");
  const GateId g1 = add("NAND2X1", {a, b});
  const GateId g2 = add("INVX1", {nl_.gate(g1).outputs[0]});
  nl_.mark_primary_output(nl_.gate(g2).outputs[0]);

  EXPECT_EQ(nl_.num_live_gates(), 2u);
  EXPECT_EQ(nl_.primary_inputs().size(), 2u);
  EXPECT_EQ(nl_.primary_outputs().size(), 1u);
  EXPECT_TRUE(nl_.validate().empty());
  EXPECT_GT(nl_.total_area(), 0.0);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDependencies) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const GateId g1 = add("NAND2X1", {a, b});
  const GateId g2 = add("NOR2X1", {nl_.gate(g1).outputs[0], a});
  const GateId g3 = add("XOR2X1", {nl_.gate(g2).outputs[0],
                                   nl_.gate(g1).outputs[0]});
  nl_.mark_primary_output(nl_.gate(g3).outputs[0]);

  const auto order = nl_.topological_order();
  ASSERT_EQ(order.size(), 3u);
  const auto pos = [&](GateId g) {
    return std::find(order.begin(), order.end(), g) - order.begin();
  };
  EXPECT_LT(pos(g1), pos(g2));
  EXPECT_LT(pos(g2), pos(g3));
}

TEST_F(NetlistTest, SequentialGatesAreOrderBoundaries) {
  const NetId a = nl_.add_primary_input();
  const GateId inv = add("INVX1", {a});
  const GateId dff = add("DFFPOSX1", {nl_.gate(inv).outputs[0]});
  const GateId inv2 = add("INVX1", {nl_.gate(dff).outputs[0]});
  nl_.mark_primary_output(nl_.gate(inv2).outputs[0]);

  const auto order = nl_.topological_order();
  EXPECT_EQ(order.size(), 2u);  // DFF excluded

  const CombView view = CombView::build(nl_);
  // Sources: PI + DFF Q. Observations: PO + DFF D.
  EXPECT_EQ(view.sources.size(), 2u);
  EXPECT_EQ(view.observe.size(), 2u);
}

TEST_F(NetlistTest, RemoveGateDetachesAndKillsDanglingNets) {
  const NetId a = nl_.add_primary_input();
  const GateId g1 = add("INVX1", {a});
  const NetId mid = nl_.gate(g1).outputs[0];
  const GateId g2 = add("INVX1", {mid});
  const NetId out = nl_.gate(g2).outputs[0];
  nl_.mark_primary_output(out);

  nl_.remove_gate(g2);
  EXPECT_FALSE(nl_.gate_alive(g2));
  EXPECT_TRUE(nl_.net_alive(mid));   // still driven by g1
  EXPECT_TRUE(nl_.net_alive(out));   // kept: primary output marking
  EXPECT_TRUE(nl_.net(mid).sinks.empty());
  EXPECT_FALSE(nl_.net(out).has_gate_driver());

  nl_.remove_gate(g1);
  EXPECT_FALSE(nl_.net_alive(mid));  // no driver, no sinks
}

TEST_F(NetlistTest, RewireFanin) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const GateId g = add("NAND2X1", {a, a});
  nl_.mark_primary_output(nl_.gate(g).outputs[0]);
  EXPECT_EQ(nl_.net(a).sinks.size(), 2u);

  nl_.rewire_fanin(g, 1, b);
  EXPECT_EQ(nl_.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl_.net(b).sinks.size(), 1u);
  EXPECT_EQ(nl_.gate(g).fanin[1], b);
  EXPECT_TRUE(nl_.validate().empty());
}

TEST_F(NetlistTest, CompactDropsDeadSlots) {
  const NetId a = nl_.add_primary_input("a");
  const GateId g1 = add("INVX1", {a});
  const GateId g2 = add("INVX1", {nl_.gate(g1).outputs[0]});
  const GateId g3 = add("BUFX2", {nl_.gate(g2).outputs[0]});
  nl_.mark_primary_output(nl_.gate(g3).outputs[0]);
  // Splice g2 out: drive g3 from g1 directly.
  nl_.rewire_fanin(g3, 0, nl_.gate(g1).outputs[0]);
  nl_.remove_gate(g2);

  const Netlist dense = nl_.compact();
  EXPECT_EQ(dense.num_live_gates(), 2u);
  EXPECT_EQ(dense.gate_capacity(), 2u);
  EXPECT_TRUE(dense.validate().empty());
  EXPECT_EQ(dense.primary_inputs().size(), 1u);
  EXPECT_EQ(dense.primary_outputs().size(), 1u);
  EXPECT_EQ(dense.input_name(0), "a");
}

TEST_F(NetlistTest, CellUsageCountsTypes) {
  const NetId a = nl_.add_primary_input();
  const GateId g1 = add("INVX1", {a});
  add("INVX1", {nl_.gate(g1).outputs[0]});
  add("NAND2X1", {a, nl_.gate(g1).outputs[0]});

  const CellUsage usage = cell_usage(nl_);
  EXPECT_EQ(usage.num_gates, 3u);
  ASSERT_EQ(usage.entries.size(), 2u);
  for (const auto& e : usage.entries) {
    if (e.name == "INVX1") {
      EXPECT_EQ(e.count, 2u);
    }
    if (e.name == "NAND2X1") {
      EXPECT_EQ(e.count, 1u);
    }
  }
}

TEST_F(NetlistTest, ExtractSubcircuitBoundaries) {
  // a -> inv1 -> nand(a, inv1) -> inv2 -> PO ; extract {nand}
  const NetId a = nl_.add_primary_input();
  const GateId inv1 = add("INVX1", {a});
  const GateId nand = add("NAND2X1", {a, nl_.gate(inv1).outputs[0]});
  const GateId inv2 = add("INVX1", {nl_.gate(nand).outputs[0]});
  nl_.mark_primary_output(nl_.gate(inv2).outputs[0]);

  const GateId region[] = {nand};
  const Subcircuit sub = extract_subcircuit(nl_, region).value();
  EXPECT_EQ(sub.boundary_inputs.size(), 2u);
  EXPECT_EQ(sub.boundary_outputs.size(), 1u);
  EXPECT_EQ(sub.circuit.num_live_gates(), 1u);
  EXPECT_TRUE(sub.circuit.validate().empty());
  EXPECT_EQ(sub.circuit.primary_outputs().size(), 1u);
}

TEST_F(NetlistTest, ReplaceRegionPreservesStructure) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const GateId nand = add("NAND2X1", {a, b});
  const GateId inv = add("INVX1", {nl_.gate(nand).outputs[0]});
  nl_.mark_primary_output(nl_.gate(inv).outputs[0]);

  // Replace {nand, inv} (== AND) with AND2X2.
  const GateId region[] = {nand, inv};
  const Subcircuit sub = extract_subcircuit(nl_, region).value();
  ASSERT_EQ(sub.boundary_inputs.size(), 2u);
  ASSERT_EQ(sub.boundary_outputs.size(), 1u);

  Netlist repl(lib_, "repl");
  const NetId ra = repl.add_primary_input();
  const NetId rb = repl.add_primary_input();
  const NetId ins[] = {ra, rb};
  const GateId rand_gate = repl.add_gate(lib_->require("AND2X2"), ins);
  repl.mark_primary_output(repl.gate(rand_gate).outputs[0]);

  const auto added = replace_region(nl_, sub, repl).value();
  EXPECT_EQ(added.size(), 1u);
  EXPECT_EQ(nl_.num_live_gates(), 1u);
  EXPECT_TRUE(nl_.validate().empty());
  // The PO net is preserved and now driven by the AND2X2.
  const NetId po = nl_.primary_outputs()[0];
  EXPECT_TRUE(nl_.net(po).has_gate_driver());
  EXPECT_EQ(nl_.cell_of(nl_.net(po).driver_gate).name, "AND2X2");
}

TEST_F(NetlistTest, ReplaceRegionWireThroughMergesNets) {
  // Region computes identity; replacement is a wire-through (PO == PI),
  // so the boundary output net is merged onto the boundary input.
  const NetId a = nl_.add_primary_input();
  const GateId inv1 = add("INVX1", {a});
  const GateId inv2 = add("INVX1", {nl_.gate(inv1).outputs[0]});
  const GateId sink = add("INVX1", {nl_.gate(inv2).outputs[0]});
  nl_.mark_primary_output(nl_.gate(sink).outputs[0]);

  const GateId region[] = {inv1, inv2};
  const Subcircuit sub = extract_subcircuit(nl_, region).value();

  Netlist repl(lib_, "repl");
  const NetId ra = repl.add_primary_input();
  repl.mark_primary_output(ra);  // wire-through

  const auto added = replace_region(nl_, sub, repl).value();
  EXPECT_TRUE(added.empty());
  EXPECT_TRUE(nl_.validate().empty());
  // The surviving sink now reads the primary input directly.
  EXPECT_EQ(nl_.gate(sink).fanin[0], a);
}

TEST_F(NetlistTest, ValidateCatchesArityMismatch) {
  // add_gate_driving asserts in debug; craft a subtler issue instead:
  // a net marked PO but never driven.
  const NetId n = nl_.add_net();
  nl_.mark_primary_output(n);
  const auto problems = nl_.validate();
  ASSERT_FALSE(problems.empty());
}

}  // namespace
}  // namespace dfmres
