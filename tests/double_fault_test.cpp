#include <gtest/gtest.h>

#include "src/atpg/double_fault.hpp"
#include "src/dfm/checker.hpp"
#include "src/library/osu018.hpp"

namespace dfmres {
namespace {

class DoubleFaultTest : public ::testing::Test {
 protected:
  DoubleFaultTest() : lib_(osu018_library()), nl_(lib_, "df") {}

  GateId add(const char* cell, std::initializer_list<NetId> ins) {
    std::vector<NetId> fanins(ins);
    return nl_.add_gate(lib_->require(cell), fanins);
  }
  NetId out(GateId g) { return nl_.gate(g).outputs[0]; }

  std::shared_ptr<const Library> lib_;
  Netlist nl_;
};

TEST_F(DoubleFaultTest, EnumeratesAdjacentPairs) {
  // out = a | (a & b): SA0 on the absorbed AND output is undetectable;
  // faults on the same/adjacent gates are its double-fault partners.
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const GateId and_g = add("AND2X2", {a, b});
  const GateId or_g = add("OR2X2", {a, out(and_g)});
  nl_.mark_primary_output(out(or_g));

  FaultUniverse universe;
  const auto push_sa = [&](NetId net, bool v) {
    Fault f;
    f.kind = FaultKind::StuckAt;
    f.scope = FaultScope::External;
    f.victim = net;
    f.value = v;
    universe.faults.push_back(f);
  };
  push_sa(out(and_g), false);  // undetectable (absorbed term)
  push_sa(out(and_g), true);   // detectable
  push_sa(out(or_g), false);   // detectable, adjacent gate
  push_sa(a, true);            // detectable, adjacent (drives both gates)

  const std::vector<FaultStatus> status = {
      FaultStatus::Undetectable, FaultStatus::Detected,
      FaultStatus::Detected, FaultStatus::Detected};
  const auto targets =
      enumerate_double_faults(nl_, universe, status, /*max_per_fault=*/8);
  ASSERT_GE(targets.size(), 2u);
  for (const auto& t : targets) {
    EXPECT_EQ(t.undetectable, 0u);
    EXPECT_NE(t.detectable, 0u);
  }
}

TEST_F(DoubleFaultTest, PairWithSilentUndetectableBehavesLikeSingle) {
  // The absorbed-term SA0 has no functional effect, so the double fault
  // (SA0-on-AND, SA1-on-OR-output) is detected exactly when the single
  // detectable fault is: any test setting out=0 (a=0, b=*).
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const GateId and_g = add("AND2X2", {a, b});
  const GateId or_g = add("OR2X2", {a, out(and_g)});
  nl_.mark_primary_output(out(or_g));

  FaultUniverse universe;
  Fault u;
  u.kind = FaultKind::StuckAt;
  u.scope = FaultScope::External;
  u.victim = out(and_g);
  u.value = false;
  Fault d = u;
  d.victim = out(or_g);
  d.value = true;
  universe.faults = {u, d};

  const std::vector<DoubleFaultTarget> targets = {{0, 1}};
  UdfmMap udfm(*lib_);

  // Test a=0,b=0: good out=0, double-faulty out=1 -> detected.
  TestPattern detecting;
  detecting.frame0 = {0, 0};
  detecting.frame1 = {0, 0};
  // Test a=1,b=1: good out=1, faulty out=1 -> not detected.
  TestPattern missing;
  missing.frame0 = {1, 1};
  missing.frame1 = {1, 1};

  const std::vector<TestPattern> only_missing{missing};
  EXPECT_EQ(evaluate_double_fault_coverage(nl_, universe, udfm, targets,
                                           only_missing)
                .covered,
            0u);
  const std::vector<TestPattern> with_detecting{missing, detecting};
  EXPECT_EQ(evaluate_double_fault_coverage(nl_, universe, udfm, targets,
                                           with_detecting)
                .covered,
            1u);
}

TEST_F(DoubleFaultTest, AugmentationReachesGoalOnEasyTargets) {
  const NetId a = nl_.add_primary_input();
  const NetId b = nl_.add_primary_input();
  const NetId c = nl_.add_primary_input();
  const GateId and_g = add("AND2X2", {a, b});
  const GateId or_g = add("OR2X2", {a, out(and_g)});
  const GateId x = add("XOR2X1", {out(or_g), c});
  nl_.mark_primary_output(out(x));

  FaultUniverse universe;
  Fault u;
  u.kind = FaultKind::StuckAt;
  u.scope = FaultScope::External;
  u.victim = out(and_g);
  u.value = false;  // absorbed: undetectable alone
  Fault d = u;
  d.victim = out(x);
  d.value = true;
  universe.faults = {u, d};
  UdfmMap udfm(*lib_);
  const std::vector<DoubleFaultTarget> targets = {{0, 1}};

  std::vector<TestPattern> tests;  // start from nothing
  const std::size_t added = augment_tests_for_double_faults(
      nl_, universe, udfm, targets, /*goal=*/1.0, /*max_new=*/64,
      /*seed=*/3, &tests);
  EXPECT_GE(added, 1u);
  EXPECT_EQ(evaluate_double_fault_coverage(nl_, universe, udfm, targets,
                                           tests)
                .covered,
            1u);
}

}  // namespace
}  // namespace dfmres
