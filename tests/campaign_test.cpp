#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "src/circuits/benchmarks.hpp"
#include "src/circuits/builder.hpp"
#include "src/core/campaign.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/verilog.hpp"
#include "src/util/json.hpp"

namespace dfmres {
namespace {

using Mode = CampaignJobSpec::Mode;

/// Trimmed search budgets so a multi-job campaign stays unit-test sized.
void trim(CampaignJobSpec& job) {
  job.flow.atpg.random_batches = 4;
  job.flow.atpg.backtrack_limit = 1000;
  job.resyn.max_iterations_per_phase = 8;
  job.resyn.reanalyses_per_iteration = 8;
}

CampaignJobSpec resyn_job(const std::string& name, const std::string& design,
                          int q_max) {
  CampaignJobSpec job;
  job.name = name;
  job.design = design;
  job.mode = Mode::Resyn;
  job.resyn.q_max = q_max;
  trim(job);
  return job;
}

std::string accepted_trace(const ResynthesisReport& report) {
  std::string out;
  for (const IterationRecord& r : report.trace) {
    if (!r.accepted) continue;
    out += "q" + std::to_string(r.q) + ":" + r.banned_through + "/U" +
           std::to_string(r.undetectable) + "/S" + std::to_string(r.smax) +
           ";";
  }
  return out;
}

TEST(ParseDurationSpec, AcceptsSuffixes) {
  using std::chrono::nanoseconds;
  EXPECT_EQ(parse_duration_spec("500ms").value(), nanoseconds(500'000'000));
  EXPECT_EQ(parse_duration_spec("2s").value(), nanoseconds(2'000'000'000));
  EXPECT_EQ(parse_duration_spec("2").value(), nanoseconds(2'000'000'000));
  EXPECT_EQ(parse_duration_spec("1m").value(), nanoseconds(60'000'000'000));
  EXPECT_EQ(parse_duration_spec("1.5ms").value(), nanoseconds(1'500'000));
}

TEST(ParseDurationSpec, RejectsGarbage) {
  EXPECT_FALSE(parse_duration_spec(""));
  EXPECT_FALSE(parse_duration_spec("abc"));
  EXPECT_FALSE(parse_duration_spec("-3s"));
  EXPECT_FALSE(parse_duration_spec("0"));
  EXPECT_FALSE(parse_duration_spec("12x"));
  EXPECT_FALSE(parse_duration_spec("1e10s"));  // > 1e9 seconds
  EXPECT_EQ(parse_duration_spec("oops").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CampaignManifest, RoundTripsThroughJson) {
  CampaignManifest manifest;
  manifest.jobs.push_back(resyn_job("a", "sparc_tlu", 0));
  manifest.jobs.push_back(resyn_job("b", "wb_conmax", 2));
  manifest.jobs[0].mode = Mode::Flow;
  manifest.jobs[0].flow.utilization = 0.65;
  manifest.jobs[0].flow.warm_start = false;
  manifest.jobs[1].deadline = std::chrono::milliseconds(1500);
  manifest.jobs[1].resyn.p1 = 0.02;
  manifest.jobs[1].resyn.parallel_ladder = false;

  const auto parsed = CampaignManifest::from_json(manifest.to_json());
  ASSERT_TRUE(parsed) << parsed.status().to_string();
  ASSERT_EQ(parsed->jobs.size(), 2u);
  EXPECT_EQ(parsed->jobs[0].name, "a");
  EXPECT_EQ(parsed->jobs[0].mode, Mode::Flow);
  EXPECT_DOUBLE_EQ(parsed->jobs[0].flow.utilization, 0.65);
  EXPECT_FALSE(parsed->jobs[0].flow.warm_start);
  EXPECT_EQ(parsed->jobs[1].design, "wb_conmax");
  EXPECT_EQ(parsed->jobs[1].resyn.q_max, 2);
  EXPECT_DOUBLE_EQ(parsed->jobs[1].resyn.p1, 0.02);
  EXPECT_FALSE(parsed->jobs[1].resyn.parallel_ladder);
  EXPECT_EQ(parsed->jobs[1].deadline, std::chrono::nanoseconds(1'500'000'000));
  EXPECT_EQ(parsed->jobs[1].flow.atpg.random_batches, 4);
  EXPECT_EQ(parsed->jobs[1].resyn.max_iterations_per_phase, 8);
  // Canonical form: a second round trip is textually identical.
  EXPECT_EQ(parsed->to_json(), manifest.to_json());
}

TEST(CampaignManifest, RejectsMalformedDocuments) {
  const auto code = [](const char* text) {
    const auto m = CampaignManifest::from_json(text);
    return m ? StatusCode::kOk : m.status().code();
  };
  const std::string head =
      "{\"schema\": \"dfmres-campaign-manifest-v1\", \"jobs\": [";
  // Syntax error (carries a line:column locator).
  const auto syntax = CampaignManifest::from_json("{\"schema\": }");
  ASSERT_FALSE(syntax);
  EXPECT_NE(syntax.status().message().find("json 1:"), std::string::npos);
  // Wrong / missing schema.
  EXPECT_EQ(code("{\"jobs\": []}"), StatusCode::kInvalidArgument);
  EXPECT_EQ(code("{\"schema\": \"nope\", \"jobs\": []}"),
            StatusCode::kInvalidArgument);
  // Unknown keys, at both levels.
  EXPECT_EQ(code("{\"schema\": \"dfmres-campaign-manifest-v1\", "
                 "\"jobs\": [], \"extra\": 1}"),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      code((head + "{\"name\": \"a\", \"design\": \"sparc_tlu\", "
                   "\"typo\": 1}]}")
               .c_str()),
      StatusCode::kInvalidArgument);
  // Missing required keys.
  EXPECT_EQ(code((head + "{\"design\": \"sparc_tlu\"}]}").c_str()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code((head + "{\"name\": \"a\"}]}").c_str()),
            StatusCode::kInvalidArgument);
  // Bad enum / bad range / wrong type / bad duration.
  EXPECT_EQ(code((head + "{\"name\": \"a\", \"design\": \"d\", "
                         "\"mode\": \"other\"}]}")
                     .c_str()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code((head + "{\"name\": \"a\", \"design\": \"d\", "
                         "\"q_max\": 101}]}")
                     .c_str()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code((head + "{\"name\": \"a\", \"design\": \"d\", "
                         "\"q_max\": 2.5}]}")
                     .c_str()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code((head + "{\"name\": \"a\", \"design\": \"d\", "
                         "\"warm_start\": 1}]}")
                     .c_str()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code((head + "{\"name\": \"a\", \"design\": \"d\", "
                         "\"deadline\": \"soon\"}]}")
                     .c_str()),
            StatusCode::kInvalidArgument);
  // Duplicate job names; names with path separators; empty manifests.
  EXPECT_EQ(code((head + "{\"name\": \"a\", \"design\": \"d\"}, "
                         "{\"name\": \"a\", \"design\": \"e\"}]}")
                     .c_str()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code((head + "{\"name\": \"a/b\", \"design\": \"d\"}]}").c_str()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(code("{\"schema\": \"dfmres-campaign-manifest-v1\", "
                 "\"jobs\": []}"),
            StatusCode::kInvalidArgument);
}

TEST(CampaignManifest, Table2CoversEveryBenchmark) {
  const CampaignManifest manifest = table2_manifest();
  ASSERT_EQ(manifest.jobs.size(), benchmark_names().size());
  EXPECT_TRUE(manifest.validate().is_ok());
  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    EXPECT_EQ(manifest.jobs[i].design, std::string(benchmark_names()[i]));
    EXPECT_EQ(manifest.jobs[i].mode, Mode::Resyn);
    EXPECT_EQ(manifest.jobs[i].resyn.q_max, 5);
  }
  const auto parsed = CampaignManifest::from_json(manifest.to_json());
  ASSERT_TRUE(parsed) << parsed.status().to_string();
  EXPECT_EQ(parsed->jobs.size(), manifest.jobs.size());
}

TEST(CampaignManifest, ReadReportsMissingFile) {
  const auto m = CampaignManifest::read(testing::TempDir() +
                                        "dfmres_no_such_manifest.json");
  ASSERT_FALSE(m);
  EXPECT_EQ(m.status().code(), StatusCode::kNotFound);
}

TEST(Campaign, RejectsEmptyManifest) {
  const auto result = run_campaign(CampaignManifest{}, CampaignOptions{});
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Campaign, SkipsEverythingWhenPreCancelled) {
  CampaignManifest manifest;
  manifest.jobs.push_back(resyn_job("a", "sparc_tlu", 0));
  manifest.jobs.push_back(resyn_job("b", "wb_conmax", 0));
  CancelToken token;
  token.cancel();
  CampaignOptions options;
  options.cancel = &token;
  options.max_parallel_jobs = 2;
  const auto result = run_campaign(manifest, options);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_EQ(result->skipped, 2u);
  EXPECT_EQ(result->completed, 0u);
  for (const auto& job : result->jobs) {
    EXPECT_TRUE(job.skipped);
    EXPECT_FALSE(job.ok());
    EXPECT_EQ(job.status.code(), StatusCode::kCancelled);
    EXPECT_FALSE(job.final_state.has_value());
  }
}

/// One failing job (unknown design) must not disturb its neighbors, and
/// a job whose deadline expires returns its best design, flagged.
TEST(CampaignHeavy, IsolatesFailingAndExpiringJobs) {
  CampaignManifest manifest;
  manifest.jobs.push_back(resyn_job("good", "sparc_tlu", 0));
  manifest.jobs.push_back(resyn_job("missing", "no_such_design", 0));
  manifest.jobs.push_back(resyn_job("rushed", "sparc_tlu", 5));
  manifest.jobs[2].deadline = std::chrono::milliseconds(1);
  CampaignOptions options;
  options.max_parallel_jobs = 3;
  const auto result = run_campaign(manifest, options);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_EQ(result->failed, 1u);
  EXPECT_EQ(result->skipped, 0u);
  EXPECT_EQ(result->completed + result->expired, 2u);

  const CampaignJobResult& good = result->jobs[0];
  EXPECT_TRUE(good.ok());
  ASSERT_TRUE(good.final_state.has_value());
  ASSERT_TRUE(good.report.has_value());
  EXPECT_GT(good.final_state->coverage(), 0.9);

  const CampaignJobResult& missing = result->jobs[1];
  EXPECT_FALSE(missing.ok());
  EXPECT_FALSE(missing.skipped);
  EXPECT_EQ(missing.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(missing.final_state.has_value());
  EXPECT_FALSE(missing.report.has_value());

  const CampaignJobResult& rushed = result->jobs[2];
  EXPECT_TRUE(rushed.status.is_ok());
  ASSERT_TRUE(rushed.final_state.has_value());
  EXPECT_TRUE(rushed.deadline_expired);
}

/// The acceptance criterion of the scheduler: every job's results are
/// bit-identical to the same job run alone, at any --jobs level.
TEST(CampaignHeavy, JobsAreBitIdenticalToStandaloneRuns) {
  CampaignManifest manifest;
  manifest.jobs.push_back(resyn_job("tlu-q0", "sparc_tlu", 0));
  manifest.jobs.push_back(resyn_job("tlu-q2", "sparc_tlu", 2));
  manifest.jobs.push_back(resyn_job("wb-q2", "wb_conmax", 2));

  // Standalone reference runs (same options, no scheduler).
  struct Reference {
    std::size_t u, smax, faults, tests;
    double coverage;
    std::string trace;
    std::uint64_t fingerprint;
  };
  std::vector<Reference> refs;
  for (const CampaignJobSpec& spec : manifest.jobs) {
    DesignFlow flow(osu018_library(), spec.flow);
    const FlowState original =
        flow.run_initial(build_benchmark(spec.design).value()).value();
    const std::uint64_t fingerprint =
        resynthesis_fingerprint(flow, original, spec.resyn);
    const ResynthesisResult result =
        resynthesize(flow, original, spec.resyn).value();
    refs.push_back({result.state.num_undetectable(), result.state.smax(),
                    result.state.num_faults(), result.state.atpg.tests.size(),
                    result.state.coverage(), accepted_trace(result.report),
                    fingerprint});
  }

  for (const int jobs : {1, 4}) {
    CampaignOptions options;
    options.max_parallel_jobs = jobs;
    const auto result = run_campaign(manifest, options);
    ASSERT_TRUE(result) << result.status().to_string();
    ASSERT_EQ(result->jobs.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const CampaignJobResult& job = result->jobs[i];
      ASSERT_TRUE(job.ok()) << job.name << ": " << job.status.to_string();
      const FlowState& s = *job.final_state;
      EXPECT_EQ(s.num_undetectable(), refs[i].u) << job.name;
      EXPECT_EQ(s.smax(), refs[i].smax) << job.name;
      EXPECT_EQ(s.num_faults(), refs[i].faults) << job.name;
      EXPECT_EQ(s.atpg.tests.size(), refs[i].tests) << job.name;
      EXPECT_EQ(s.coverage(), refs[i].coverage) << job.name;
      EXPECT_EQ(accepted_trace(*job.resyn), refs[i].trace) << job.name;
    }
  }
}

/// The campaign report parses as strict JSON and carries the schema,
/// per-job run reports and the merged metrics.
TEST(CampaignHeavy, ReportValidates) {
  CampaignManifest manifest;
  manifest.jobs.push_back(resyn_job("tlu", "sparc_tlu", 0));
  manifest.jobs[0].mode = Mode::Flow;
  CampaignOptions options;
  const auto result = run_campaign(manifest, options);
  ASSERT_TRUE(result) << result.status().to_string();

  const auto doc = JsonValue::parse(result->report_json());
  ASSERT_TRUE(doc) << doc.status().to_string();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("schema")->as_string(), "dfmres-campaign-report-v1");
  EXPECT_EQ(doc->find("jobs_total")->as_number(), 1.0);
  EXPECT_EQ(doc->find("completed")->as_number(), 1.0);
  const JsonValue& jobs = *doc->find("jobs");
  ASSERT_TRUE(jobs.is_array());
  ASSERT_EQ(jobs.items().size(), 1u);
  const JsonValue& job = jobs.items()[0];
  EXPECT_EQ(job.find("name")->as_string(), "tlu");
  EXPECT_TRUE(job.find("ok")->as_bool());
  const JsonValue* report = job.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("command")->as_string(), "flow");
  ASSERT_NE(report->find("final"), nullptr);
  EXPECT_GT(report->find("final")->find("coverage")->as_number(), 0.9);
  const JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->is_object());

  // The merged metrics match a manifest-order merge of the shards.
  MetricsRegistry merged;
  result->merge_metrics_into(merged);
  EXPECT_GT(merged.counter("atpg.patterns_simulated"), 0u);
}

/// A mapped .v design file runs through the campaign's flow mode.
TEST(CampaignHeavy, LoadsVerilogDesignFiles) {
  CampaignManifest first;
  first.jobs.push_back(resyn_job("tlu", "sparc_tlu", 0));
  first.jobs[0].mode = Mode::Flow;
  const auto flow_result = run_campaign(first, CampaignOptions{});
  ASSERT_TRUE(flow_result) << flow_result.status().to_string();
  ASSERT_TRUE(flow_result->jobs[0].ok());

  const std::string path = testing::TempDir() + "dfmres_campaign_design.v";
  {
    std::ofstream out(path);
    write_verilog(flow_result->jobs[0].final_state->netlist, out);
  }
  CampaignManifest second;
  second.jobs.push_back(resyn_job("mapped", path, 0));
  second.jobs[0].mode = Mode::Flow;
  const auto result = run_campaign(second, CampaignOptions{});
  ASSERT_TRUE(result) << result.status().to_string();
  const CampaignJobResult& job = result->jobs[0];
  ASSERT_TRUE(job.ok()) << job.status.to_string();
  EXPECT_EQ(job.final_state->num_faults(),
            flow_result->jobs[0].final_state->num_faults());
}

/// The consolidated API contract the deleted pre-campaign shims used to
/// forward to: a speculative ProbeSession of an unchanged design agrees
/// with a committed analyze() of the same design, and committing the
/// session folds its counters into the flow totals.
TEST(AnalysisApi, ProbeSessionMatchesCommittedAnalysis) {
  CircuitBuilder cb("shim");
  const auto a = cb.dff_bus(cb.input_bus("a", 4));
  const auto b = cb.dff_bus(cb.input_bus("b", 4));
  auto [sum, carry] = cb.ripple_add(a, b, cb.input("cin"));
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  const Netlist design = cb.take();

  FlowOptions options;
  options.atpg.random_batches = 4;

  DesignFlow via_probe(osu018_library(), options);
  const FlowState base_probe = via_probe.run_initial(design).value();
  DesignFlow via_api(osu018_library(), options);
  const FlowState base_api = via_api.run_initial(design).value();

  // Committed re-analysis vs a speculative probe of the same netlist.
  const auto committed = via_api.analyze(AnalysisRequest::incremental(
      base_api.netlist, base_api.placement, /*generate_tests=*/false));
  ASSERT_TRUE(committed) << committed.status().to_string();
  ProbeSession probe = via_probe.probe();
  const auto probed = probe.reanalyze(base_probe.netlist,
                                      base_probe.placement,
                                      /*generate_tests=*/false);
  ASSERT_TRUE(probed) << probed.status().to_string();
  EXPECT_EQ(committed->num_undetectable(), probed->num_undetectable());
  EXPECT_EQ(committed->smax(), probed->smax());
  EXPECT_EQ(committed->coverage(), probed->coverage());

  // A hand-committed u_in probe agrees across independent flows and
  // folds its counters into the flow totals on commit.
  ProbeSession s_api = via_api.probe();
  const auto count_api = s_api.count_undetectable_internal(base_api.netlist);
  ASSERT_TRUE(count_api) << count_api.status().to_string();
  via_api.commit_probe(std::move(s_api));
  ProbeSession s_probe = via_probe.probe();
  const auto count_probe =
      s_probe.count_undetectable_internal(base_probe.netlist);
  ASSERT_TRUE(count_probe) << count_probe.status().to_string();
  EXPECT_EQ(*count_api, *count_probe);
  // (A probe of the unchanged committed design is fully cache-hit, so
  // its pattern count is legitimately zero — the fold must still hold.)
  const std::uint64_t probe_patterns = s_probe.counters().patterns_simulated;
  const std::uint64_t before = via_probe.atpg_totals().patterns_simulated;
  via_probe.commit_probe(std::move(s_probe));
  EXPECT_EQ(via_probe.atpg_totals().patterns_simulated,
            before + probe_patterns);
}

}  // namespace
}  // namespace dfmres
