#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "src/atpg/engine.hpp"
#include "src/atpg/excitation.hpp"
#include "src/atpg/fault_sim.hpp"
#include "src/atpg/podem.hpp"
#include "src/circuits/benchmarks.hpp"
#include "src/dfm/checker.hpp"
#include "src/library/osu018.hpp"
#include "src/sim/parallel_sim.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/rng.hpp"

namespace dfmres {
namespace {

std::shared_ptr<const Library> lib() {
  static auto l = osu018_library();
  return l;
}

struct Fixture {
  Netlist nl{lib(), "atpg"};

  GateId add(const char* cell, std::initializer_list<NetId> ins) {
    std::vector<NetId> fanins(ins);
    return nl.add_gate(lib()->require(cell), fanins);
  }
  NetId out(GateId g, int k = 0) { return nl.gate(g).outputs[k]; }
};

TEST(Excitations, StuckAtHasNoConditions) {
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const GateId inv = f.add("INVX1", {a});
  f.nl.mark_primary_output(f.out(inv));
  UdfmMap udfm(*lib());
  Fault fault;
  fault.kind = FaultKind::StuckAt;
  fault.victim = f.out(inv);
  fault.value = true;
  const auto exc = build_excitations(fault, f.nl, udfm);
  ASSERT_EQ(exc.size(), 1u);
  EXPECT_TRUE(exc[0].lits.empty());
  EXPECT_EQ(exc[0].victim, f.out(inv));
  EXPECT_TRUE(exc[0].faulty_value);
}

TEST(Excitations, TransitionCarriesFrame0Literal) {
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const GateId inv = f.add("INVX1", {a});
  f.nl.mark_primary_output(f.out(inv));
  UdfmMap udfm(*lib());
  Fault fault;
  fault.kind = FaultKind::Transition;
  fault.victim = f.out(inv);
  fault.value = false;  // slow-to-rise
  const auto exc = build_excitations(fault, f.nl, udfm);
  ASSERT_EQ(exc.size(), 1u);
  ASSERT_EQ(exc[0].lits.size(), 1u);
  EXPECT_EQ(exc[0].lits[0].frame, 0);
  EXPECT_EQ(exc[0].lits[0].net, f.out(inv));
  EXPECT_FALSE(exc[0].lits[0].value);
}

TEST(Excitations, BridgeConditionsOnAggressor) {
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const NetId b = f.nl.add_primary_input();
  const GateId g1 = f.add("INVX1", {a});
  const GateId g2 = f.add("INVX1", {b});
  f.nl.mark_primary_output(f.out(g1));
  f.nl.mark_primary_output(f.out(g2));
  UdfmMap udfm(*lib());
  Fault fault;
  fault.kind = FaultKind::Bridge;
  fault.victim = f.out(g1);
  fault.aggressor = f.out(g2);
  fault.bridge_type = BridgeType::DomAnd;
  const auto exc = build_excitations(fault, f.nl, udfm);
  ASSERT_EQ(exc.size(), 1u);
  ASSERT_EQ(exc[0].lits.size(), 1u);
  EXPECT_EQ(exc[0].lits[0].net, f.out(g2));
  EXPECT_FALSE(exc[0].lits[0].value);  // wired-AND: aggressor low dominates
  EXPECT_FALSE(exc[0].faulty_value);
}

TEST(Podem, DetectsSimpleStuckAt) {
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const NetId b = f.nl.add_primary_input();
  const GateId g = f.add("AND2X2", {a, b});
  f.nl.mark_primary_output(f.out(g));
  const CombView view = CombView::build(f.nl);
  Podem podem(f.nl, view, {1000});
  Excitation exc;
  exc.victim = f.out(g);
  exc.faulty_value = false;  // output SA0: need a=b=1
  std::vector<V3> test;
  ASSERT_EQ(podem.detect(exc, &test), Podem::Outcome::Detected);
  EXPECT_EQ(test[0], V3::One);
  EXPECT_EQ(test[1], V3::One);
}

TEST(Podem, ProvesRedundantFaultUndetectable) {
  // y = (a & b) | (a & !b): fault "second AND output SA0" is detectable,
  // but SA1 on the OR output is undetectable when a=1 (always 1)? Build
  // the classic: out = or(and(a,b), and(a,!b)) == a. SA1 on `out` needs
  // out=0 -> a=0 ok; SA0 needs out=1 -> a=1 ok; both detectable. The
  // undetectable one: SA0 on and(a,b) propagates only when and(a,!b)=0
  // and flips out: a=1,b=1 -> other term 0, out flips: detectable too!
  // A genuinely undetectable case: SA1 on and(a,b) requires b=0 for
  // propagation (other term a&!b = a); with a=1,b=0 the faulty OR sees
  // (1,1) vs good (0,1): masked. With a=0: excitation needs and=0 ok but
  // propagation blocked (other term 0, out 0 both ways? faulty or = 1!).
  // Actually a=0,b=*: good and=0, faulty and=1 -> out good=0, faulty=1:
  // detected. So craft real redundancy instead: out = a | (a & b).
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const NetId b = f.nl.add_primary_input();
  const GateId and_g = f.add("AND2X2", {a, b});
  const GateId or_g = f.add("OR2X2", {a, f.out(and_g)});
  f.nl.mark_primary_output(f.out(or_g));
  const CombView view = CombView::build(f.nl);
  Podem podem(f.nl, view, {10000});
  // SA1 on the AND output: flips out only when a=0 -> but then faulty
  // out=1 ... wait good out=a; faulty out = a|1 = 1; at a=0 differs ->
  // detectable. SA0 on the AND output: faulty out = a|0 = a == good for
  // all inputs: undetectable (classic absorbed term).
  Excitation exc;
  exc.victim = f.out(and_g);
  exc.faulty_value = false;
  EXPECT_EQ(podem.detect(exc, nullptr), Podem::Outcome::Undetectable);
  // And its SA1 counterpart is detectable.
  exc.faulty_value = true;
  EXPECT_EQ(podem.detect(exc, nullptr), Podem::Outcome::Detected);
}

TEST(Podem, JustifyConditions) {
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const NetId b = f.nl.add_primary_input();
  const GateId g = f.add("NAND2X1", {a, b});
  f.nl.mark_primary_output(f.out(g));
  const CombView view = CombView::build(f.nl);
  Podem podem(f.nl, view, {1000});
  const CondLiteral want_zero[] = {{f.out(g), false, 0}};
  std::vector<V3> test;
  ASSERT_EQ(podem.justify(want_zero, &test), Podem::Outcome::Detected);
  EXPECT_EQ(test[0], V3::One);
  EXPECT_EQ(test[1], V3::One);
  // NAND output = 0 AND input a = 0 simultaneously: impossible.
  const CondLiteral impossible[] = {{f.out(g), false, 0}, {a, false, 0}};
  EXPECT_EQ(podem.justify(impossible, nullptr),
            Podem::Outcome::Undetectable);
}

/// PODEM vs exhaustive simulation on random circuits: for every stuck-at
/// fault, PODEM's verdict must match brute-force enumeration of all
/// source assignments.
class PodemExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(PodemExhaustive, AgreesWithBruteForce) {
  Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  Fixture f;
  const int num_inputs = 5;
  std::vector<NetId> nets;
  for (int i = 0; i < num_inputs; ++i) {
    nets.push_back(f.nl.add_primary_input());
  }
  const char* kCells[] = {"INVX1",  "NAND2X1", "NOR2X1", "AND2X2",
                          "OR2X2",  "XOR2X1",  "AOI21X1", "OAI21X1"};
  for (int i = 0; i < 25; ++i) {
    const CellId cell = lib()->require(kCells[rng.below(std::size(kCells))]);
    const CellSpec& spec = lib()->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(nets[nets.size() - 1 - rng.below(
                                std::min<std::size_t>(nets.size(), 10))]);
    }
    nets.push_back(f.out(f.nl.add_gate(cell, fanins)));
  }
  for (int i = 0; i < 4; ++i) {
    f.nl.mark_primary_output(nets[nets.size() - 1 - rng.below(6)]);
  }

  const CombView view = CombView::build(f.nl);
  Podem podem(f.nl, view, {100000});
  ParallelSimulator sim(f.nl, view);

  // Brute force: all 32 assignments in lanes.
  const auto brute_force_detects = [&](NetId victim, bool sa) {
    for (std::size_t s = 0; s < view.sources.size(); ++s) {
      std::uint64_t w = 0;
      for (int lane = 0; lane < 32; ++lane) {
        if ((lane >> s) & 1) w |= std::uint64_t{1} << lane;
      }
      sim.set_source(view.sources[s], w);
    }
    sim.run();
    const std::uint64_t good = sim.value(victim);
    // Faulty copy: flip victim where excited, propagate via FaultSim.
    FaultSimulator fsim(f.nl, view);
    std::vector<TestPattern> tests;
    for (int lane = 0; lane < 32; ++lane) {
      TestPattern t;
      for (std::size_t s = 0; s < view.sources.size(); ++s) {
        t.frame0.push_back((lane >> s) & 1);
        t.frame1.push_back((lane >> s) & 1);
      }
      tests.push_back(std::move(t));
    }
    fsim.load(tests, 0, 32);
    Excitation exc;
    exc.victim = victim;
    exc.faulty_value = sa;
    const Excitation excs[] = {exc};
    (void)good;
    return fsim.detect_mask(excs) != 0;
  };

  int checked = 0;
  for (std::size_t i = 0; i < nets.size() && checked < 20; i += 3) {
    const NetId victim = nets[i];
    for (const bool sa : {false, true}) {
      Excitation exc;
      exc.victim = victim;
      exc.faulty_value = sa;
      const auto verdict = podem.detect(exc, nullptr);
      ASSERT_NE(verdict, Podem::Outcome::Aborted);
      EXPECT_EQ(verdict == Podem::Outcome::Detected,
                brute_force_detects(victim, sa))
          << "net " << victim.value() << " sa" << sa;
      ++checked;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemExhaustive, ::testing::Range(0, 8));

TEST(FaultSim, AgreesWithPodemTests) {
  // Any test PODEM generates must be confirmed by the fault simulator.
  Rng rng(77);
  Fixture f;
  std::vector<NetId> nets;
  for (int i = 0; i < 8; ++i) nets.push_back(f.nl.add_primary_input());
  const char* kCells[] = {"NAND2X1", "NOR2X1", "XOR2X1", "AOI22X1"};
  for (int i = 0; i < 40; ++i) {
    const CellId cell = lib()->require(kCells[rng.below(4)]);
    const CellSpec& spec = lib()->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(nets[nets.size() - 1 - rng.below(
                                std::min<std::size_t>(nets.size(), 12))]);
    }
    nets.push_back(f.out(f.nl.add_gate(cell, fanins)));
  }
  for (int i = 0; i < 4; ++i) f.nl.mark_primary_output(nets[nets.size() - 1 - i]);

  const CombView view = CombView::build(f.nl);
  Podem podem(f.nl, view, {20000});
  FaultSimulator fsim(f.nl, view);
  int confirmed = 0;
  for (std::size_t i = 8; i < nets.size(); i += 2) {
    Excitation exc;
    exc.victim = nets[i];
    exc.faulty_value = rng.flip();
    std::vector<V3> assign;
    if (podem.detect(exc, &assign) != Podem::Outcome::Detected) continue;
    TestPattern t;
    for (std::size_t s = 0; s < view.sources.size(); ++s) {
      const V3 v = assign[s];
      t.frame1.push_back(v == V3::One);
      t.frame0.push_back(rng.flip());
    }
    std::vector<TestPattern> tests{t};
    fsim.load(tests, 0, 1);
    const Excitation excs[] = {exc};
    EXPECT_NE(fsim.detect_mask(excs), 0u) << "net " << nets[i].value();
    ++confirmed;
  }
  EXPECT_GT(confirmed, 5);
}

TEST(Engine, EndToEndClassification) {
  // Full run_atpg over the internal faults of a small mapped block.
  Fixture f;
  std::vector<NetId> a, b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(f.nl.add_primary_input());
    b.push_back(f.nl.add_primary_input());
  }
  NetId carry = f.nl.add_primary_input();
  for (int i = 0; i < 4; ++i) {
    const GateId fa = f.add("FAX1", {a[i], b[i], carry});
    carry = f.out(fa, 0);
    f.nl.mark_primary_output(f.out(fa, 1));
  }
  f.nl.mark_primary_output(carry);

  UdfmMap udfm(*lib());
  const FaultUniverse universe = extract_internal_faults(f.nl, udfm);
  ASSERT_GT(universe.size(), 50u);
  AtpgOptions options;
  options.random_batches = 4;
  const AtpgResult result = run_atpg(f.nl, universe, udfm, options);
  EXPECT_EQ(result.num_detected + result.num_undetectable +
                result.num_aborted,
            universe.size());
  EXPECT_GT(result.num_detected, universe.size() / 2);
  // FA carry chains carry the charge-sharing-masked opens: some faults
  // must be undetectable.
  EXPECT_GT(result.num_undetectable, 0u);
  EXPECT_FALSE(result.tests.empty());

  // All detected faults must be covered by the compacted test set.
  const CombView view = CombView::build(f.nl);
  FaultSimulator fsim(f.nl, view);
  std::vector<bool> covered(universe.size(), false);
  for (std::size_t first = 0; first < result.tests.size(); first += 64) {
    const std::size_t count =
        std::min<std::size_t>(64, result.tests.size() - first);
    fsim.load(result.tests, first, count);
    for (std::size_t i = 0; i < universe.size(); ++i) {
      if (covered[i] || result.status[i] != FaultStatus::Detected) continue;
      const auto exc = build_excitations(universe.faults[i], f.nl, udfm);
      if (fsim.detect_mask(exc) != 0) covered[i] = true;
    }
  }
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (result.status[i] == FaultStatus::Detected) {
      EXPECT_TRUE(covered[i]) << "fault " << i << " not covered by tests";
    }
  }
}

TEST(FaultSim, LaneMaskUnderSixtyFourLanes) {
  // Fewer than 64 loaded tests must exercise the `(1 << lanes) - 1`
  // shift path: detection bits may only appear in loaded lanes.
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const NetId b = f.nl.add_primary_input();
  const GateId g = f.add("AND2X2", {a, b});
  f.nl.mark_primary_output(f.out(g));
  const CombView view = CombView::build(f.nl);
  FaultSimulator fsim(f.nl, view);

  // Output SA0 is detected exactly where the good output is 1.
  std::vector<TestPattern> tests;
  for (const auto& [va, vb] : {std::pair{1, 1}, {0, 1}, {1, 1}}) {
    TestPattern t;
    t.frame0 = {0, 0};
    t.frame1 = {static_cast<std::uint8_t>(va), static_cast<std::uint8_t>(vb)};
    tests.push_back(std::move(t));
  }
  fsim.load(tests, 0, 3);
  EXPECT_EQ(fsim.lanes(), 3);
  Excitation exc;
  exc.victim = f.out(g);
  exc.faulty_value = false;
  const Excitation excs[] = {exc};
  EXPECT_EQ(fsim.detect_mask(excs), 0b101u);

  // A single-lane load of the undetected pattern yields mask 0.
  fsim.load(tests, 1, 1);
  EXPECT_EQ(fsim.lanes(), 1);
  EXPECT_EQ(fsim.detect_mask(excs), 0u);
}

TEST(FaultSim, LoadFromMatchesLoad) {
  Rng rng(31);
  Fixture f;
  std::vector<NetId> nets;
  for (int i = 0; i < 6; ++i) nets.push_back(f.nl.add_primary_input());
  const char* kCells[] = {"NAND2X1", "NOR2X1", "XOR2X1", "AOI21X1"};
  for (int i = 0; i < 30; ++i) {
    const CellId cell = lib()->require(kCells[rng.below(4)]);
    const CellSpec& spec = lib()->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(nets[nets.size() - 1 - rng.below(
                                std::min<std::size_t>(nets.size(), 8))]);
    }
    nets.push_back(f.out(f.nl.add_gate(cell, fanins)));
  }
  f.nl.mark_primary_output(nets.back());
  f.nl.mark_primary_output(nets[nets.size() - 3]);

  const CombView view = CombView::build(f.nl);
  FaultSimulator master(f.nl, view);
  FaultSimulator worker(f.nl, view);
  std::vector<TestPattern> tests;
  for (int lane = 0; lane < 40; ++lane) {
    TestPattern t;
    for (std::size_t s = 0; s < view.sources.size(); ++s) {
      t.frame0.push_back(rng.flip());
      t.frame1.push_back(rng.flip());
    }
    tests.push_back(std::move(t));
  }
  master.load(tests, 0, tests.size());
  worker.load_from(master);
  EXPECT_EQ(worker.lanes(), master.lanes());
  for (std::size_t i = 6; i < nets.size(); ++i) {
    for (const bool sa : {false, true}) {
      Excitation exc;
      exc.victim = nets[i];
      exc.faulty_value = sa;
      const Excitation excs[] = {exc};
      EXPECT_EQ(master.detect_mask(excs), worker.detect_mask(excs))
          << "net " << nets[i].value() << " sa" << sa;
    }
  }
}

TEST(FaultSimArena, RebindAcrossDesignsMatchesFreshSimulators) {
  // Regression for stale per-batch scratch: one arena slot rebound
  // across differently-sized designs (large -> small -> large) must
  // answer every detect_mask query exactly like a simulator freshly
  // constructed for that design.
  Rng rng(91);
  const char* kCells[] = {"NAND2X1", "NOR2X1", "XOR2X1", "AOI21X1"};
  struct Design {
    Fixture f;
    std::vector<NetId> nets;
    std::vector<TestPattern> tests;
  };
  const auto make = [&](int inputs, int gates) {
    auto d = std::make_unique<Design>();
    for (int i = 0; i < inputs; ++i) {
      d->nets.push_back(d->f.nl.add_primary_input());
    }
    for (int i = 0; i < gates; ++i) {
      const CellId cell = lib()->require(kCells[rng.below(4)]);
      const CellSpec& spec = lib()->cell(cell);
      std::vector<NetId> fanins;
      for (int j = 0; j < spec.num_inputs; ++j) {
        fanins.push_back(d->nets[d->nets.size() - 1 - rng.below(
                                    std::min<std::size_t>(d->nets.size(), 8))]);
      }
      d->nets.push_back(d->f.out(d->f.nl.add_gate(cell, fanins)));
    }
    d->f.nl.mark_primary_output(d->nets.back());
    d->f.nl.mark_primary_output(d->nets[d->nets.size() - 2]);
    const CombView view = CombView::build(d->f.nl);
    for (int lane = 0; lane < 48; ++lane) {
      TestPattern t;
      for (std::size_t s = 0; s < view.sources.size(); ++s) {
        t.frame0.push_back(rng.flip());
        t.frame1.push_back(rng.flip());
      }
      d->tests.push_back(std::move(t));
    }
    return d;
  };
  const auto masks_of = [](Design& d, FaultSimulator& sim) {
    std::vector<std::uint64_t> out;
    sim.load(d.tests, 0, d.tests.size());
    for (const NetId net : d.nets) {
      for (const bool sa : {false, true}) {
        Excitation exc;
        exc.victim = net;
        exc.faulty_value = sa;
        const Excitation excs[] = {exc};
        out.push_back(sim.detect_mask(excs));
      }
    }
    return out;
  };
  const auto fresh_masks = [&](Design& d) {
    FaultSimulator sim(d.f.nl, CombView::build(d.f.nl));
    return masks_of(d, sim);
  };

  const auto big = make(8, 60);
  const auto small = make(4, 10);
  const auto big_view =
      DenseView::build_shared(big->f.nl, CombView::build(big->f.nl));
  const auto small_view =
      DenseView::build_shared(small->f.nl, CombView::build(small->f.nl));

  FaultSimArena arena;
  EXPECT_EQ(masks_of(*big, arena.acquire(0, big_view)), fresh_masks(*big));
  // Shrinking rebind: every buffer is now oversized for the new design;
  // any stale lane count, frame value or event scratch shows up here.
  EXPECT_EQ(masks_of(*small, arena.acquire(0, small_view)),
            fresh_masks(*small));
  EXPECT_EQ(masks_of(*big, arena.acquire(0, big_view)), fresh_masks(*big));
  EXPECT_EQ(arena.size(), 1u);
}

TEST(FaultSim, BaselineOverlayMatchesFullLoad) {
  // A copy-on-write load against a committed baseline must agree bit for
  // bit with a full O(netlist) load of the same patterns, while
  // materializing strictly fewer frame bytes.
  Rng rng(47);
  Fixture f;
  std::vector<NetId> nets;
  for (int i = 0; i < 6; ++i) nets.push_back(f.nl.add_primary_input());
  const char* kCells[] = {"NAND2X1", "NOR2X1", "XOR2X1", "AOI21X1"};
  for (int i = 0; i < 30; ++i) {
    const CellId cell = lib()->require(kCells[rng.below(4)]);
    const CellSpec& spec = lib()->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(nets[nets.size() - 1 - rng.below(
                                std::min<std::size_t>(nets.size(), 8))]);
    }
    nets.push_back(f.out(f.nl.add_gate(cell, fanins)));
  }
  f.nl.mark_primary_output(nets.back());
  f.nl.mark_primary_output(nets[nets.size() - 3]);

  const CombView base_view = CombView::build(f.nl);
  std::vector<TestPattern> seeds;
  for (int lane = 0; lane < 100; ++lane) {
    TestPattern t;
    for (std::size_t s = 0; s < base_view.sources.size(); ++s) {
      t.frame0.push_back(rng.flip());
      t.frame1.push_back(rng.flip());
    }
    seeds.push_back(std::move(t));
  }
  const SimBaseline base = build_sim_baseline(f.nl, seeds);
  ASSERT_TRUE(base.valid());
  // Batches pack 64 * W lanes under the active SimWord kernel.
  const std::size_t cap = 64 * static_cast<std::size_t>(base.words);
  ASSERT_EQ(base.batches.size(), (seeds.size() + cap - 1) / cap);

  // Candidate: the committed design plus a small appended cone — its new
  // nets are the only dirty slots.
  Netlist cand = f.nl;
  std::vector<NetId> cand_nets = nets;
  for (int i = 0; i < 3; ++i) {
    const CellId cell = lib()->require(kCells[rng.below(4)]);
    const CellSpec& spec = lib()->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(cand_nets[cand_nets.size() - 1 - rng.below(6)]);
    }
    const GateId g = cand.add_gate(cell, fanins);
    cand_nets.push_back(cand.gate(g).outputs[0]);
  }
  cand.mark_primary_output(cand_nets.back());

  const auto cand_view =
      DenseView::build_shared(cand, CombView::build(cand));
  const CowPlan plan = build_cow_plan(*cand_view, *base.view);
  ASSERT_TRUE(plan.valid);
  EXPECT_GT(plan.dirty_nets.size(), 0u);
  EXPECT_LT(plan.dirty_nets.size(), cand_view->net_slots);

  FaultSimulator overlay_sim(cand_view);
  FaultSimulator full_sim(cand_view);
  for (std::size_t b = 0; b < base.batches.size(); ++b) {
    const std::size_t count =
        static_cast<std::size_t>(base.batches[b].lanes);
    overlay_sim.load_baseline(base, plan, b, count);
    full_sim.load(seeds, b * cap, count);
    ASSERT_EQ(overlay_sim.lanes(), full_sim.lanes());
    ASSERT_EQ(overlay_sim.groups(), full_sim.groups());
    for (const NetId net : cand_nets) {
      for (const bool sa : {false, true}) {
        Excitation exc;
        exc.victim = net;
        exc.faulty_value = sa;
        const Excitation excs[] = {exc};
        std::uint64_t om[kMaxSimWords] = {};
        std::uint64_t fm[kMaxSimWords] = {};
        overlay_sim.detect_masks(excs, om);
        full_sim.detect_masks(excs, fm);
        for (int g = 0; g < overlay_sim.groups(); ++g) {
          ASSERT_EQ(om[g], fm[g]) << "batch " << b << " group " << g
                                  << " net " << net.value() << " sa" << sa;
        }
      }
    }
  }
  EXPECT_EQ(overlay_sim.overlay_loads(), base.batches.size());
  EXPECT_EQ(overlay_sim.full_loads(), 0u);
  EXPECT_LT(overlay_sim.frame_bytes_materialized(),
            full_sim.frame_bytes_materialized());
  // Both accountings agree on patterns: 2 frames per loaded pattern.
  EXPECT_EQ(overlay_sim.patterns_simulated(), full_sim.patterns_simulated());

  // The pre-simulated phase-1 batches obey the same contract: the stored
  // patterns reproduce the engine's deterministic draw, and an overlay
  // replay agrees bit for bit with a full load of those patterns.
  const SimBaseline rbase =
      build_sim_baseline(f.nl, seeds, /*random_seed=*/99, /*random_batches=*/2);
  ASSERT_EQ(rbase.random_batch_count, 2);
  ASSERT_EQ(rbase.random_batches.size(), (128 + cap - 1) / cap);
  ASSERT_EQ(rbase.random_patterns.size(), 128u);
  Rng replay(99);
  for (const TestPattern& t : rbase.random_patterns) {
    ASSERT_EQ(t.frame0, random_sim_frame(rbase.frame_width, replay));
    ASSERT_EQ(t.frame1, random_sim_frame(rbase.frame_width, replay));
  }
  const CowPlan rplan = build_cow_plan(*cand_view, *rbase.view);
  ASSERT_TRUE(rplan.valid);
  FaultSimulator roverlay_sim(cand_view);
  FaultSimulator rfull_sim(cand_view);
  for (std::size_t b = 0; b < rbase.random_batches.size(); ++b) {
    const std::size_t count =
        static_cast<std::size_t>(rbase.random_batches[b].lanes);
    roverlay_sim.load_baseline_random(rbase, rplan, b, count);
    rfull_sim.load(rbase.random_patterns, b * cap, count);
    for (const NetId net : cand_nets) {
      for (const bool sa : {false, true}) {
        Excitation exc;
        exc.victim = net;
        exc.faulty_value = sa;
        const Excitation excs[] = {exc};
        std::uint64_t om[kMaxSimWords] = {};
        std::uint64_t fm[kMaxSimWords] = {};
        roverlay_sim.detect_masks(excs, om);
        rfull_sim.detect_masks(excs, fm);
        for (int g = 0; g < roverlay_sim.groups(); ++g) {
          ASSERT_EQ(om[g], fm[g]) << "random batch " << b << " group " << g
                                  << " net " << net.value() << " sa" << sa;
        }
      }
    }
  }
}

TEST(Engine, DuplicateFaultsMirrorRepresentative) {
  // Distinct physical violations inducing the same logic fault (equal
  // Fault::Key, e.g. different guideline ids) are classified once and
  // the verdict mirrored onto every duplicate.
  Fixture f;
  const NetId a = f.nl.add_primary_input();
  const NetId b = f.nl.add_primary_input();
  const GateId and_g = f.add("AND2X2", {a, b});
  const GateId or_g = f.add("OR2X2", {a, f.out(and_g)});
  f.nl.mark_primary_output(f.out(or_g));
  UdfmMap udfm(*lib());

  FaultUniverse universe;
  Fault detectable;  // primary-output SA0: trivially detectable
  detectable.kind = FaultKind::StuckAt;
  detectable.victim = f.out(or_g);
  detectable.value = false;
  detectable.guideline = 1;
  Fault undetectable;  // absorbed-term SA0 (see PodemExhaustive above)
  undetectable.kind = FaultKind::StuckAt;
  undetectable.victim = f.out(and_g);
  undetectable.value = false;
  undetectable.guideline = 2;
  // Interleave duplicates with different guideline ids.
  universe.faults = {detectable, undetectable, detectable, undetectable,
                     detectable};
  universe.faults[2].guideline = 7;
  universe.faults[3].guideline = 8;
  universe.faults[4].guideline = 9;

  const AtpgResult result = run_atpg(f.nl, universe, udfm, {});
  ASSERT_EQ(result.status.size(), 5u);
  for (const std::size_t i : {0u, 2u, 4u}) {
    EXPECT_EQ(result.status[i], FaultStatus::Detected) << i;
  }
  for (const std::size_t i : {1u, 3u}) {
    EXPECT_EQ(result.status[i], FaultStatus::Undetectable) << i;
  }
  // Duplicates count toward the totals like any other fault.
  EXPECT_EQ(result.num_detected, 3u);
  EXPECT_EQ(result.num_undetectable, 2u);
}

/// num_threads must never change results: the parallel sweeps write
/// per-fault mask slots and reduce serially. Statuses, compacted tests
/// and counts are required to be bit-identical on a seed benchmark.
TEST(Engine, ParallelMatchesSerialOnSeedBenchmark) {
  // Smallest benchmark block keeps the double classification fast.
  std::string_view smallest;
  std::size_t smallest_gates = std::numeric_limits<std::size_t>::max();
  for (const auto name : benchmark_names()) {
    const Netlist rtl = build_benchmark(name).value();
    if (rtl.num_live_gates() < smallest_gates) {
      smallest_gates = rtl.num_live_gates();
      smallest = name;
    }
  }
  const Netlist rtl = build_benchmark(smallest).value();
  MapOptions mo;
  const Library& slib = rtl.library();
  const auto pin = [&](const char* src, const char* dst) {
    if (const auto s = slib.find(src)) {
      mo.fixed_map.emplace(s->value(), *lib()->find(dst));
    }
  };
  pin("DFF", "DFFPOSX1");
  pin("FA", "FAX1");
  pin("HA", "HAX1");
  const auto mapped = technology_map(rtl, lib(), mo);
  ASSERT_TRUE(mapped.has_value());

  UdfmMap udfm(*lib());
  const FaultUniverse universe = extract_internal_faults(*mapped, udfm);
  ASSERT_GT(universe.size(), 100u);

  AtpgOptions serial;
  serial.random_batches = 4;
  serial.num_threads = 1;
  const AtpgResult base = run_atpg(*mapped, universe, udfm, serial);
  EXPECT_EQ(base.counters.threads_used, 1);
  EXPECT_GT(base.counters.patterns_simulated, 0u);
  EXPECT_GT(base.counters.detect_mask_calls, 0u);

  for (const int threads : {2, 4}) {
    AtpgOptions options = serial;
    options.num_threads = threads;
    const AtpgResult parallel = run_atpg(*mapped, universe, udfm, options);
    EXPECT_EQ(parallel.counters.threads_used, threads);
    ASSERT_EQ(parallel.status.size(), base.status.size());
    for (std::size_t i = 0; i < base.status.size(); ++i) {
      ASSERT_EQ(parallel.status[i], base.status[i])
          << "fault " << i << " at " << threads << " threads";
    }
    EXPECT_EQ(parallel.num_detected, base.num_detected);
    EXPECT_EQ(parallel.num_undetectable, base.num_undetectable);
    EXPECT_EQ(parallel.num_aborted, base.num_aborted);
    ASSERT_EQ(parallel.tests.size(), base.tests.size());
    for (std::size_t t = 0; t < base.tests.size(); ++t) {
      EXPECT_EQ(parallel.tests[t].frame0, base.tests[t].frame0) << t;
      EXPECT_EQ(parallel.tests[t].frame1, base.tests[t].frame1) << t;
    }
  }
}

TEST(Engine, CacheReproducesStatuses) {
  Fixture f;
  std::vector<NetId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(f.nl.add_primary_input());
  Rng rng(9);
  std::vector<NetId> nets = ins;
  for (int i = 0; i < 30; ++i) {
    const char* kCells[] = {"NAND2X1", "XOR2X1", "AOI21X1"};
    const CellId cell = lib()->require(kCells[rng.below(3)]);
    const CellSpec& spec = lib()->cell(cell);
    std::vector<NetId> fanins;
    for (int j = 0; j < spec.num_inputs; ++j) {
      fanins.push_back(nets[nets.size() - 1 - rng.below(
                                std::min<std::size_t>(nets.size(), 8))]);
    }
    nets.push_back(f.out(f.nl.add_gate(cell, fanins)));
  }
  f.nl.mark_primary_output(nets.back());
  f.nl.mark_primary_output(nets[nets.size() - 2]);

  UdfmMap udfm(*lib());
  const FaultUniverse universe = extract_internal_faults(f.nl, udfm);
  AtpgOptions options;
  options.generate_tests = false;
  FaultStatusCache cache;
  const AtpgResult fresh = run_atpg(f.nl, universe, udfm, options, &cache);
  const AtpgResult cached = run_atpg(f.nl, universe, udfm, options, &cache);
  ASSERT_EQ(fresh.status.size(), cached.status.size());
  for (std::size_t i = 0; i < fresh.status.size(); ++i) {
    EXPECT_EQ(fresh.status[i], cached.status[i]) << i;
  }
}

}  // namespace
}  // namespace dfmres
