# Empty compiler generated dependencies file for dfmres_cli.
# This may be replaced when dependencies are built.
