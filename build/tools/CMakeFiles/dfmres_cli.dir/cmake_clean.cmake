file(REMOVE_RECURSE
  "CMakeFiles/dfmres_cli.dir/dfmres_cli.cpp.o"
  "CMakeFiles/dfmres_cli.dir/dfmres_cli.cpp.o.d"
  "dfmres"
  "dfmres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
