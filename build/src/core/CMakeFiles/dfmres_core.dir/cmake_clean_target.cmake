file(REMOVE_RECURSE
  "libdfmres_core.a"
)
