file(REMOVE_RECURSE
  "CMakeFiles/dfmres_core.dir/flow.cpp.o"
  "CMakeFiles/dfmres_core.dir/flow.cpp.o.d"
  "CMakeFiles/dfmres_core.dir/resynthesis.cpp.o"
  "CMakeFiles/dfmres_core.dir/resynthesis.cpp.o.d"
  "libdfmres_core.a"
  "libdfmres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
