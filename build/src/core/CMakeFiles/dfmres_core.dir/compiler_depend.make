# Empty compiler generated dependencies file for dfmres_core.
# This may be replaced when dependencies are built.
