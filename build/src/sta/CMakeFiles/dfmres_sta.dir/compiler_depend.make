# Empty compiler generated dependencies file for dfmres_sta.
# This may be replaced when dependencies are built.
