file(REMOVE_RECURSE
  "CMakeFiles/dfmres_sta.dir/sta.cpp.o"
  "CMakeFiles/dfmres_sta.dir/sta.cpp.o.d"
  "libdfmres_sta.a"
  "libdfmres_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
