file(REMOVE_RECURSE
  "libdfmres_sta.a"
)
