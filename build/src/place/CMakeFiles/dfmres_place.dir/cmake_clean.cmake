file(REMOVE_RECURSE
  "CMakeFiles/dfmres_place.dir/placement.cpp.o"
  "CMakeFiles/dfmres_place.dir/placement.cpp.o.d"
  "libdfmres_place.a"
  "libdfmres_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
