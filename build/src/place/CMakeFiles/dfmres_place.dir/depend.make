# Empty dependencies file for dfmres_place.
# This may be replaced when dependencies are built.
