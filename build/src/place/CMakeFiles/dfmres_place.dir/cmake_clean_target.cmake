file(REMOVE_RECURSE
  "libdfmres_place.a"
)
