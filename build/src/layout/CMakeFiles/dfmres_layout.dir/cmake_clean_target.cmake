file(REMOVE_RECURSE
  "libdfmres_layout.a"
)
