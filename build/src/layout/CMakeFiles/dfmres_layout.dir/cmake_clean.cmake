file(REMOVE_RECURSE
  "CMakeFiles/dfmres_layout.dir/floorplan.cpp.o"
  "CMakeFiles/dfmres_layout.dir/floorplan.cpp.o.d"
  "libdfmres_layout.a"
  "libdfmres_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
