# Empty compiler generated dependencies file for dfmres_layout.
# This may be replaced when dependencies are built.
