file(REMOVE_RECURSE
  "libdfmres_switchlevel.a"
)
