file(REMOVE_RECURSE
  "CMakeFiles/dfmres_switchlevel.dir/switch_sim.cpp.o"
  "CMakeFiles/dfmres_switchlevel.dir/switch_sim.cpp.o.d"
  "CMakeFiles/dfmres_switchlevel.dir/udfm.cpp.o"
  "CMakeFiles/dfmres_switchlevel.dir/udfm.cpp.o.d"
  "libdfmres_switchlevel.a"
  "libdfmres_switchlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_switchlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
