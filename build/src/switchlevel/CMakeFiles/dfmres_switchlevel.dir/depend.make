# Empty dependencies file for dfmres_switchlevel.
# This may be replaced when dependencies are built.
