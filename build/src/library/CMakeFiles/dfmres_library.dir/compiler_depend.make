# Empty compiler generated dependencies file for dfmres_library.
# This may be replaced when dependencies are built.
