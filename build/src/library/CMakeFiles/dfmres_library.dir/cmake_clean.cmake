file(REMOVE_RECURSE
  "CMakeFiles/dfmres_library.dir/library.cpp.o"
  "CMakeFiles/dfmres_library.dir/library.cpp.o.d"
  "CMakeFiles/dfmres_library.dir/osu018.cpp.o"
  "CMakeFiles/dfmres_library.dir/osu018.cpp.o.d"
  "libdfmres_library.a"
  "libdfmres_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
