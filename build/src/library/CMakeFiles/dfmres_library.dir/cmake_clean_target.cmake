file(REMOVE_RECURSE
  "libdfmres_library.a"
)
