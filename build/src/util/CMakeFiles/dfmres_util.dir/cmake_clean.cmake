file(REMOVE_RECURSE
  "CMakeFiles/dfmres_util.dir/logging.cpp.o"
  "CMakeFiles/dfmres_util.dir/logging.cpp.o.d"
  "CMakeFiles/dfmres_util.dir/stats.cpp.o"
  "CMakeFiles/dfmres_util.dir/stats.cpp.o.d"
  "CMakeFiles/dfmres_util.dir/union_find.cpp.o"
  "CMakeFiles/dfmres_util.dir/union_find.cpp.o.d"
  "libdfmres_util.a"
  "libdfmres_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
