# Empty compiler generated dependencies file for dfmres_util.
# This may be replaced when dependencies are built.
