file(REMOVE_RECURSE
  "libdfmres_util.a"
)
