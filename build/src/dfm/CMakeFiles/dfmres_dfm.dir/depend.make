# Empty dependencies file for dfmres_dfm.
# This may be replaced when dependencies are built.
