file(REMOVE_RECURSE
  "libdfmres_dfm.a"
)
