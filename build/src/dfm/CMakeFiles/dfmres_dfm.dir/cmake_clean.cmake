file(REMOVE_RECURSE
  "CMakeFiles/dfmres_dfm.dir/checker.cpp.o"
  "CMakeFiles/dfmres_dfm.dir/checker.cpp.o.d"
  "CMakeFiles/dfmres_dfm.dir/guidelines.cpp.o"
  "CMakeFiles/dfmres_dfm.dir/guidelines.cpp.o.d"
  "libdfmres_dfm.a"
  "libdfmres_dfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_dfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
