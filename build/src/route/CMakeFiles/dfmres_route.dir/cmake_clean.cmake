file(REMOVE_RECURSE
  "CMakeFiles/dfmres_route.dir/router.cpp.o"
  "CMakeFiles/dfmres_route.dir/router.cpp.o.d"
  "libdfmres_route.a"
  "libdfmres_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
