# Empty compiler generated dependencies file for dfmres_route.
# This may be replaced when dependencies are built.
