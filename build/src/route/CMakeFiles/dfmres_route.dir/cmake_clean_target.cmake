file(REMOVE_RECURSE
  "libdfmres_route.a"
)
