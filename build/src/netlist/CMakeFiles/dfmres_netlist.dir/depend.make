# Empty dependencies file for dfmres_netlist.
# This may be replaced when dependencies are built.
