file(REMOVE_RECURSE
  "libdfmres_netlist.a"
)
