file(REMOVE_RECURSE
  "CMakeFiles/dfmres_netlist.dir/extract.cpp.o"
  "CMakeFiles/dfmres_netlist.dir/extract.cpp.o.d"
  "CMakeFiles/dfmres_netlist.dir/netlist.cpp.o"
  "CMakeFiles/dfmres_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/dfmres_netlist.dir/stats.cpp.o"
  "CMakeFiles/dfmres_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/dfmres_netlist.dir/verilog.cpp.o"
  "CMakeFiles/dfmres_netlist.dir/verilog.cpp.o.d"
  "libdfmres_netlist.a"
  "libdfmres_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
