# Empty dependencies file for dfmres_circuits.
# This may be replaced when dependencies are built.
