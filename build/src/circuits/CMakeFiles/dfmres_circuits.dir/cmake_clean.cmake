file(REMOVE_RECURSE
  "CMakeFiles/dfmres_circuits.dir/benchmarks.cpp.o"
  "CMakeFiles/dfmres_circuits.dir/benchmarks.cpp.o.d"
  "CMakeFiles/dfmres_circuits.dir/builder.cpp.o"
  "CMakeFiles/dfmres_circuits.dir/builder.cpp.o.d"
  "libdfmres_circuits.a"
  "libdfmres_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
