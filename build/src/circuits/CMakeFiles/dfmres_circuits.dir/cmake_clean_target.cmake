file(REMOVE_RECURSE
  "libdfmres_circuits.a"
)
