# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("library")
subdirs("switchlevel")
subdirs("sim")
subdirs("faults")
subdirs("synth")
subdirs("layout")
subdirs("place")
subdirs("route")
subdirs("sta")
subdirs("dfm")
subdirs("atpg")
subdirs("cluster")
subdirs("circuits")
subdirs("core")
