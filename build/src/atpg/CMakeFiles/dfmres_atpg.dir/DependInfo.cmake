
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/double_fault.cpp" "src/atpg/CMakeFiles/dfmres_atpg.dir/double_fault.cpp.o" "gcc" "src/atpg/CMakeFiles/dfmres_atpg.dir/double_fault.cpp.o.d"
  "/root/repo/src/atpg/engine.cpp" "src/atpg/CMakeFiles/dfmres_atpg.dir/engine.cpp.o" "gcc" "src/atpg/CMakeFiles/dfmres_atpg.dir/engine.cpp.o.d"
  "/root/repo/src/atpg/excitation.cpp" "src/atpg/CMakeFiles/dfmres_atpg.dir/excitation.cpp.o" "gcc" "src/atpg/CMakeFiles/dfmres_atpg.dir/excitation.cpp.o.d"
  "/root/repo/src/atpg/fault_sim.cpp" "src/atpg/CMakeFiles/dfmres_atpg.dir/fault_sim.cpp.o" "gcc" "src/atpg/CMakeFiles/dfmres_atpg.dir/fault_sim.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/atpg/CMakeFiles/dfmres_atpg.dir/podem.cpp.o" "gcc" "src/atpg/CMakeFiles/dfmres_atpg.dir/podem.cpp.o.d"
  "/root/repo/src/atpg/values.cpp" "src/atpg/CMakeFiles/dfmres_atpg.dir/values.cpp.o" "gcc" "src/atpg/CMakeFiles/dfmres_atpg.dir/values.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faults/CMakeFiles/dfmres_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dfmres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/switchlevel/CMakeFiles/dfmres_switchlevel.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dfmres_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/dfmres_library.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfmres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
