# Empty compiler generated dependencies file for dfmres_atpg.
# This may be replaced when dependencies are built.
