file(REMOVE_RECURSE
  "libdfmres_atpg.a"
)
