file(REMOVE_RECURSE
  "CMakeFiles/dfmres_atpg.dir/double_fault.cpp.o"
  "CMakeFiles/dfmres_atpg.dir/double_fault.cpp.o.d"
  "CMakeFiles/dfmres_atpg.dir/engine.cpp.o"
  "CMakeFiles/dfmres_atpg.dir/engine.cpp.o.d"
  "CMakeFiles/dfmres_atpg.dir/excitation.cpp.o"
  "CMakeFiles/dfmres_atpg.dir/excitation.cpp.o.d"
  "CMakeFiles/dfmres_atpg.dir/fault_sim.cpp.o"
  "CMakeFiles/dfmres_atpg.dir/fault_sim.cpp.o.d"
  "CMakeFiles/dfmres_atpg.dir/podem.cpp.o"
  "CMakeFiles/dfmres_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/dfmres_atpg.dir/values.cpp.o"
  "CMakeFiles/dfmres_atpg.dir/values.cpp.o.d"
  "libdfmres_atpg.a"
  "libdfmres_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
