file(REMOVE_RECURSE
  "libdfmres_cluster.a"
)
