# Empty dependencies file for dfmres_cluster.
# This may be replaced when dependencies are built.
