file(REMOVE_RECURSE
  "CMakeFiles/dfmres_cluster.dir/clustering.cpp.o"
  "CMakeFiles/dfmres_cluster.dir/clustering.cpp.o.d"
  "libdfmres_cluster.a"
  "libdfmres_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
