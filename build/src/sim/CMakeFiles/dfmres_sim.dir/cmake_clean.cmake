file(REMOVE_RECURSE
  "CMakeFiles/dfmres_sim.dir/parallel_sim.cpp.o"
  "CMakeFiles/dfmres_sim.dir/parallel_sim.cpp.o.d"
  "libdfmres_sim.a"
  "libdfmres_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
