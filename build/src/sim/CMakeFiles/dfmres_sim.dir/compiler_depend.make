# Empty compiler generated dependencies file for dfmres_sim.
# This may be replaced when dependencies are built.
