file(REMOVE_RECURSE
  "libdfmres_sim.a"
)
