file(REMOVE_RECURSE
  "libdfmres_synth.a"
)
