# Empty compiler generated dependencies file for dfmres_synth.
# This may be replaced when dependencies are built.
