file(REMOVE_RECURSE
  "CMakeFiles/dfmres_synth.dir/aig.cpp.o"
  "CMakeFiles/dfmres_synth.dir/aig.cpp.o.d"
  "CMakeFiles/dfmres_synth.dir/cuts.cpp.o"
  "CMakeFiles/dfmres_synth.dir/cuts.cpp.o.d"
  "CMakeFiles/dfmres_synth.dir/mapper.cpp.o"
  "CMakeFiles/dfmres_synth.dir/mapper.cpp.o.d"
  "libdfmres_synth.a"
  "libdfmres_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
