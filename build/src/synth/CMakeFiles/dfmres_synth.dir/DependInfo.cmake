
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/aig.cpp" "src/synth/CMakeFiles/dfmres_synth.dir/aig.cpp.o" "gcc" "src/synth/CMakeFiles/dfmres_synth.dir/aig.cpp.o.d"
  "/root/repo/src/synth/cuts.cpp" "src/synth/CMakeFiles/dfmres_synth.dir/cuts.cpp.o" "gcc" "src/synth/CMakeFiles/dfmres_synth.dir/cuts.cpp.o.d"
  "/root/repo/src/synth/mapper.cpp" "src/synth/CMakeFiles/dfmres_synth.dir/mapper.cpp.o" "gcc" "src/synth/CMakeFiles/dfmres_synth.dir/mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dfmres_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/dfmres_library.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfmres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
