file(REMOVE_RECURSE
  "libdfmres_faults.a"
)
