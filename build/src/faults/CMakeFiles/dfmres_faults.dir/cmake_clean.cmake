file(REMOVE_RECURSE
  "CMakeFiles/dfmres_faults.dir/faults.cpp.o"
  "CMakeFiles/dfmres_faults.dir/faults.cpp.o.d"
  "libdfmres_faults.a"
  "libdfmres_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfmres_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
