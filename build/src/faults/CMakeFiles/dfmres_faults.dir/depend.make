# Empty dependencies file for dfmres_faults.
# This may be replaced when dependencies are built.
