# Empty dependencies file for switchlevel_test.
# This may be replaced when dependencies are built.
