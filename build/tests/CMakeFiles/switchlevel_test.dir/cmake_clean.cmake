file(REMOVE_RECURSE
  "CMakeFiles/switchlevel_test.dir/switchlevel_test.cpp.o"
  "CMakeFiles/switchlevel_test.dir/switchlevel_test.cpp.o.d"
  "switchlevel_test"
  "switchlevel_test.pdb"
  "switchlevel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchlevel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
