
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/switchlevel_test.cpp" "tests/CMakeFiles/switchlevel_test.dir/switchlevel_test.cpp.o" "gcc" "tests/CMakeFiles/switchlevel_test.dir/switchlevel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/switchlevel/CMakeFiles/dfmres_switchlevel.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/dfmres_library.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfmres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
