
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/dfmres_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/dfmres_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/dfmres_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/switchlevel/CMakeFiles/dfmres_switchlevel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dfmres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dfmres_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/dfmres_library.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dfmres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
