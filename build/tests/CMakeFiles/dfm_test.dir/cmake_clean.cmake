file(REMOVE_RECURSE
  "CMakeFiles/dfm_test.dir/dfm_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm_test.cpp.o.d"
  "dfm_test"
  "dfm_test.pdb"
  "dfm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
