# Empty dependencies file for double_fault_test.
# This may be replaced when dependencies are built.
