file(REMOVE_RECURSE
  "CMakeFiles/double_fault_test.dir/double_fault_test.cpp.o"
  "CMakeFiles/double_fault_test.dir/double_fault_test.cpp.o.d"
  "double_fault_test"
  "double_fault_test.pdb"
  "double_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
