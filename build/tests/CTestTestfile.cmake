# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/library_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/switchlevel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/atpg_test[1]_include.cmake")
include("/root/repo/build/tests/physical_test[1]_include.cmake")
include("/root/repo/build/tests/dfm_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/double_fault_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
