# Empty dependencies file for resynthesize_block.
# This may be replaced when dependencies are built.
