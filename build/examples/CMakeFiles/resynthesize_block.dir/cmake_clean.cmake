file(REMOVE_RECURSE
  "CMakeFiles/resynthesize_block.dir/resynthesize_block.cpp.o"
  "CMakeFiles/resynthesize_block.dir/resynthesize_block.cpp.o.d"
  "resynthesize_block"
  "resynthesize_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resynthesize_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
