# Empty dependencies file for dfm_audit.
# This may be replaced when dependencies are built.
