file(REMOVE_RECURSE
  "CMakeFiles/dfm_audit.dir/dfm_audit.cpp.o"
  "CMakeFiles/dfm_audit.dir/dfm_audit.cpp.o.d"
  "dfm_audit"
  "dfm_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfm_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
