# Empty dependencies file for cell_library_report.
# This may be replaced when dependencies are built.
