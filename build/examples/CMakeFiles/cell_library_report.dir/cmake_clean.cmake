file(REMOVE_RECURSE
  "CMakeFiles/cell_library_report.dir/cell_library_report.cpp.o"
  "CMakeFiles/cell_library_report.dir/cell_library_report.cpp.o.d"
  "cell_library_report"
  "cell_library_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_library_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
