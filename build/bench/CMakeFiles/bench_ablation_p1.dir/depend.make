# Empty dependencies file for bench_ablation_p1.
# This may be replaced when dependencies are built.
