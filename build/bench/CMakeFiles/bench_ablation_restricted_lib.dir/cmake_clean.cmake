file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_restricted_lib.dir/bench_ablation_restricted_lib.cpp.o"
  "CMakeFiles/bench_ablation_restricted_lib.dir/bench_ablation_restricted_lib.cpp.o.d"
  "bench_ablation_restricted_lib"
  "bench_ablation_restricted_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_restricted_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
