# Empty compiler generated dependencies file for bench_ablation_restricted_lib.
# This may be replaced when dependencies are built.
