# Empty dependencies file for bench_baseline_double_faults.
# This may be replaced when dependencies are built.
