file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_double_faults.dir/bench_baseline_double_faults.cpp.o"
  "CMakeFiles/bench_baseline_double_faults.dir/bench_baseline_double_faults.cpp.o.d"
  "bench_baseline_double_faults"
  "bench_baseline_double_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_double_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
