#!/bin/sh
# Standalone UndefinedBehaviorSanitizer gate (-DDFMRES_SANITIZE=undefined)
# for the paths that parse untrusted or on-disk bytes: the Verilog
# front-end (verilog_test), the checkpoint journal reader and the
# cancellation machinery (resilience_test), plus the netlist core they
# feed (netlist_test). Narrower and much faster than the combined
# ASan+UBSan build in run_asan.sh; any report aborts with a non-zero
# exit. Usage: scripts/run_ubsan.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . -DDFMRES_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target verilog_test netlist_test resilience_test simd_kernel_test

# Fail loudly on the first report.
SAN_ENV="halt_on_error=1 exitcode=66"
UBSAN_OPTIONS="$SAN_ENV" "$BUILD_DIR/tests/verilog_test"
UBSAN_OPTIONS="$SAN_ENV" "$BUILD_DIR/tests/netlist_test"
UBSAN_OPTIONS="$SAN_ENV" "$BUILD_DIR/tests/resilience_test"
# The portable SimWord kernels lean on fixed-count loops and unaligned
# uint64 loads; UBSan checks the shifts and pointer math across every
# width, batch-tail shape included.
UBSAN_OPTIONS="$SAN_ENV" \
  "$BUILD_DIR/tests/simd_kernel_test" --gtest_filter='-SimdKernelHeavy.*'

echo "UBSan: no reports."
