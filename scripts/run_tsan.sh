#!/bin/sh
# ThreadSanitizer gate for the fault-simulation thread pool: configures a
# dedicated -DDFMRES_SANITIZE=thread build tree and runs the suites
# that drive the pool (atpg_test exercises the parallel sweeps in
# run_atpg, sim_test the shared simulation substrate, campaign_test the
# multi-job scheduler) plus the pool's own unit tests. Any data race
# aborts with a TSan report and a non-zero exit.
# Usage: scripts/run_tsan.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DDFMRES_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target atpg_test sim_test util_test observability_test campaign_test \
  overlay_test simd_kernel_test lease_test ready_queue_test

# TSAN_OPTIONS: fail loudly, first report wins.
TSAN_OPTIONS="halt_on_error=1 exitcode=66" \
  "$BUILD_DIR/tests/util_test" --gtest_filter='ThreadPool.*:Logging.*'
# ReadyQueue: the serve daemon's MPMC dispatch queue. The stress suite
# mixes try_/blocking push/pop from many producers and consumers; any
# racy cell handoff shows up here. (serve_test itself is fork-based and
# stays out of TSan, like the other fork-driven suites.)
TSAN_OPTIONS="halt_on_error=1 exitcode=66" "$BUILD_DIR/tests/ready_queue_test"
TSAN_OPTIONS="halt_on_error=1 exitcode=66" "$BUILD_DIR/tests/atpg_test"
TSAN_OPTIONS="halt_on_error=1 exitcode=66" "$BUILD_DIR/tests/sim_test"
# Tracer buffers + cross-worker span propagation and the metrics locks.
TSAN_OPTIONS="halt_on_error=1 exitcode=66" \
  "$BUILD_DIR/tests/observability_test"
# Campaign scheduler: job runners racing the shared pool, cancellation
# fan-out, and metrics-shard merging. The standalone bit-identity
# comparison is skipped here (it reruns full flows; identity is covered
# by the regular build), the concurrent-jobs paths are not.
TSAN_OPTIONS="halt_on_error=1 exitcode=66" "$BUILD_DIR/tests/campaign_test" \
  --gtest_filter='-CampaignHeavy.JobsAreBitIdenticalToStandaloneRuns'
# Probe overlays: overlay loads feed the parallel sweep workers through
# load_from frame aliasing, so races here would corrupt detect masks.
# The tv80 end-to-end case is far too slow under instrumentation; the
# small-block cases drive the same load/discard/rebase paths.
TSAN_OPTIONS="halt_on_error=1 exitcode=66" "$BUILD_DIR/tests/overlay_test" \
  --gtest_filter='-OverlayHeavy.*'
# SimWord kernels: the engine-level identity tests run the parallel
# sweep workers over wide shared good frames under every kernel mode.
TSAN_OPTIONS="halt_on_error=1 exitcode=66" \
  "$BUILD_DIR/tests/simd_kernel_test" --gtest_filter='-SimdKernelHeavy.*'
# Lease protocol: racing claim threads and the HeartbeatKeeper refresh
# thread against the claim-scoped cancel token. The fork-based resume
# case is excluded (fork + TSan runtime do not mix).
TSAN_OPTIONS="halt_on_error=1 exitcode=66" "$BUILD_DIR/tests/lease_test" \
  --gtest_filter='-CampaignWorkerHeavy.*'

echo "TSan: no data races detected."
