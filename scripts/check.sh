#!/bin/sh
# Full local gate: tier-1 build + test suite (with the fuzz harness
# built and replayed over its seed corpus), then the sanitizer
# configurations (TSan for the thread pool, ASan+UBSan for the
# warm-start/arena machinery, plain UBSan for the parser/journal
# paths). Usage: scripts/check.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DDFMRES_FUZZ=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Under gcc fuzz_verilog is the standalone replayer: every corpus seed
# must run through the front-end without crashing.
"$BUILD_DIR/tools/fuzz_verilog" tools/fuzz_corpus/*.v

scripts/run_tsan.sh
scripts/run_asan.sh
scripts/run_ubsan.sh

echo "check.sh: all gates passed."
