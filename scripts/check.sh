#!/bin/sh
# Full local gate: tier-1 build + test suite, then both sanitizer
# configurations (TSan for the thread pool, ASan+UBSan for the
# warm-start/arena machinery). Usage: scripts/check.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

scripts/run_tsan.sh
scripts/run_asan.sh

echo "check.sh: all gates passed."
