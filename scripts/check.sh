#!/bin/sh
# Full local gate: tier-1 build + test suite (with the fuzz harness
# built and replayed over its seed corpus), then the sanitizer
# configurations (TSan for the thread pool, ASan+UBSan for the
# warm-start/arena machinery, plain UBSan for the parser/journal
# paths). Usage: scripts/check.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DDFMRES_FUZZ=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Under gcc the fuzz targets are standalone replayers: every corpus
# seed must run through its front-end without crashing.
"$BUILD_DIR/tools/fuzz_verilog" tools/fuzz_corpus/*.v
"$BUILD_DIR/tools/fuzz_manifest" tools/fuzz_corpus_manifest/*.json
"$BUILD_DIR/tools/fuzz_request" tools/fuzz_corpus_request/*.json

# Schema registry cross-check: the C++ registry (src/core/schemas.hpp)
# and the Python summarizer must agree on the exact set of versioned
# document names, so neither side can grow a schema the other cannot
# see.
grep -o '"dfmres-[a-z0-9-]*-v[0-9]*"' src/core/schemas.hpp \
  | tr -d '"' | sort -u > "$BUILD_DIR/schemas_cpp.txt"
python3 scripts/summarize_report.py --list-schemas \
  | sort -u > "$BUILD_DIR/schemas_py.txt"
diff -u "$BUILD_DIR/schemas_cpp.txt" "$BUILD_DIR/schemas_py.txt"
echo "schema registry: C++ and Python agree" \
  "($(wc -l < "$BUILD_DIR/schemas_cpp.txt") schemas)"

# CLI exit-code contract (regression pin): 0 = success, 1 = runtime
# failure, 2 = usage/flag error. Scripts and the serve tests key off
# these; a drift here silently breaks every caller.
expect_exit() {
  want="$1"; shift
  set +e
  "$@" >/dev/null 2>&1
  got=$?
  set -e
  if [ "$got" != "$want" ]; then
    echo "check.sh: '$*' exited $got, pinned $want" >&2
    exit 1
  fi
}
expect_exit 0 "$BUILD_DIR/tools/dfmres" list
expect_exit 1 "$BUILD_DIR/tools/dfmres" resyn no_such_design
expect_exit 1 "$BUILD_DIR/tools/dfmres" request --socket /nonexistent.sock drain
expect_exit 2 "$BUILD_DIR/tools/dfmres" resyn sparc_tlu --q 999
expect_exit 2 "$BUILD_DIR/tools/dfmres" flow sparc_tlu --util bogus
expect_exit 2 "$BUILD_DIR/tools/dfmres" no_such_command
echo "cli exit codes: 0/1/2 contract holds"

# Observability gate: a CLI run with all three output flags must produce
# three well-formed JSON documents (trace loadable in chrome://tracing,
# metrics, run report) and the report must pass the summarizer's schema
# check.
OBS_DIR="$BUILD_DIR/obs_gate"
mkdir -p "$OBS_DIR"
"$BUILD_DIR/tools/dfmres" resyn sparc_tlu --q 1 --deadline 120s \
  --trace-out "$OBS_DIR/trace.json" \
  --metrics-out "$OBS_DIR/metrics.json" \
  --report-out "$OBS_DIR/report.json"
python3 - "$OBS_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))
assert trace["traceEvents"], "empty trace"
assert any(e.get("ph") == "X" for e in trace["traceEvents"]), "no spans"
metrics = json.load(open(os.path.join(d, "metrics.json")))
assert metrics["counters"].get("atpg.patterns_simulated", 0) > 0
report = json.load(open(os.path.join(d, "report.json")))
assert report["schema"] == "dfmres-run-report-v1"
assert report["resynthesis"]["convergence"], "empty convergence series"
print("observability gate: trace/metrics/report OK")
EOF
python3 scripts/summarize_report.py "$OBS_DIR/report.json"

# A failing run must still flush its observability outputs: the CLI
# exits non-zero but --trace-out holds a complete, loadable document,
# not nothing and not a torn file.
if "$BUILD_DIR/tools/dfmres" resyn no_such_design \
    --trace-out "$OBS_DIR/failed_trace.json" 2>/dev/null; then
  echo "check.sh: expected resyn on a bogus design to fail" >&2
  exit 1
fi
python3 - "$OBS_DIR/failed_trace.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert "traceEvents" in trace, "failed run left no trace document"
print("observability gate: failed-run trace still loads")
EOF

# Campaign gate: a 2-job mini-campaign from a manifest must finish with
# every job completed and emit a schema-valid campaign report whose
# per-job run reports and merged metrics survive the summarizer.
CAMP_DIR="$BUILD_DIR/campaign_gate"
mkdir -p "$CAMP_DIR"
cat > "$CAMP_DIR/manifest.json" <<'EOF'
{
  "schema": "dfmres-campaign-manifest-v1",
  "jobs": [
    {"name": "tlu-q0", "design": "sparc_tlu", "mode": "resyn", "q_max": 0},
    {"name": "wb-q2", "design": "wb_conmax", "mode": "resyn", "q_max": 2}
  ]
}
EOF
"$BUILD_DIR/tools/dfmres" campaign --manifest "$CAMP_DIR/manifest.json" \
  --jobs 2 --checkpoint-root "$CAMP_DIR/ckpt" \
  --report-out "$CAMP_DIR/report.json"
python3 - "$CAMP_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
report = json.load(open(os.path.join(d, "report.json")))
assert report["schema"] == "dfmres-campaign-report-v1"
assert report["jobs_total"] == 2 and report["completed"] == 2
assert report["failed"] == 0 and report["skipped"] == 0
assert report["jobs_in_flight"] == 2
for job in report["jobs"]:
    assert job["ok"], job
    assert job["report"]["command"] == "resyn", job
    assert job["report"]["final"]["coverage"] > 0.9, job
assert {j["name"] for j in report["jobs"]} == {"tlu-q0", "wb-q2"}
assert report["metrics"]["counters"]["atpg.patterns_simulated"] > 0
print("campaign gate: report OK")
EOF
python3 scripts/summarize_report.py "$CAMP_DIR/report.json"

# Chaos gate: the same manifest as a 2-worker lease-claimed campaign
# with deterministic SIGKILL injection (each worker dies at its 2nd
# checkpoint append and again when it first stages a shard; the
# coordinator respawns it and the job resumes from the shared
# checkpoint). The merged report must canonicalize byte-identically to
# the in-process run above.
CHAOS_DIR="$BUILD_DIR/chaos_gate"
rm -rf "$CHAOS_DIR"
mkdir -p "$CHAOS_DIR"
DFMRES_CRASH_AFTER="ckpt.append:2,shard.stage:1" \
  "$BUILD_DIR/tools/dfmres" campaign --manifest "$CAMP_DIR/manifest.json" \
  --workers 2 --campaign-root "$CHAOS_DIR/root"
"$BUILD_DIR/tools/dfmres" canon "$CAMP_DIR/report.json" \
  > "$CHAOS_DIR/serial.canon"
"$BUILD_DIR/tools/dfmres" canon "$CHAOS_DIR/root/report.json" \
  > "$CHAOS_DIR/chaos.canon"
cmp "$CHAOS_DIR/serial.canon" "$CHAOS_DIR/chaos.canon"
python3 scripts/summarize_report.py "$CHAOS_DIR"/root/shards/*.json
echo "chaos gate: crash-resumed merge canonically identical"

# Serve gate: the always-on daemon must accept the same manifest over
# its socket via the protocol client, stream schema-valid
# dfmres-response-v1 events, answer a status query, drain cleanly
# (exit 0), and leave a campaign report whose canonical projection is
# byte-identical to the in-process serial run above.
SERVE_DIR="$BUILD_DIR/serve_gate"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
SERVE_SOCK="$SERVE_DIR/serve.sock"
"$BUILD_DIR/tools/dfmres" serve --campaign-root "$SERVE_DIR/root" \
  --listen "$SERVE_SOCK" --workers 2 > "$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
i=0
while [ ! -S "$SERVE_SOCK" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
"$BUILD_DIR/tools/dfmres" request --socket "$SERVE_SOCK" submit \
  --id gate --manifest "$CAMP_DIR/manifest.json" --wait \
  > "$SERVE_DIR/submit_events.jsonl"
"$BUILD_DIR/tools/dfmres" request --socket "$SERVE_SOCK" status --id gate \
  > "$SERVE_DIR/status_event.jsonl"
"$BUILD_DIR/tools/dfmres" request --socket "$SERVE_SOCK" drain \
  > "$SERVE_DIR/drain_events.jsonl"
wait "$SERVE_PID"
python3 - "$SERVE_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
def lines(name):
    with open(os.path.join(d, name)) as fh:
        return [json.loads(l) for l in fh if l.strip()]
submit = lines("submit_events.jsonl")
assert all(e["schema"] == "dfmres-response-v1" for e in submit)
events = [e["event"] for e in submit]
assert events[0] == "accepted", events
assert events.count("job_done") == 2, events
assert events[-1] == "report", events
report = submit[-1]["report"]
assert report["schema"] == "dfmres-campaign-report-v1"
assert report["completed"] == 2 and report["failed"] == 0
status = lines("status_event.jsonl")
assert status[-1]["event"] == "status"
assert status[-1]["status"]["schema"] == "dfmres-status-v1"
assert status[-1]["status"]["report_written"]
drain = lines("drain_events.jsonl")
assert drain[-1]["event"] == "drained"
print("serve gate: accepted/job_done/report/status/drained all schema-valid")
EOF
"$BUILD_DIR/tools/dfmres" canon "$SERVE_DIR/root/gate/report.json" \
  > "$SERVE_DIR/serve.canon"
cmp "$CHAOS_DIR/serial.canon" "$SERVE_DIR/serve.canon"
echo "serve gate: socket-run report canonically identical to serial"

# Saturation bench: latency percentiles must be ordered at every load
# level and the over-capacity level must produce explicit admission
# rejections (the bench itself exits non-zero if it sees none).
SAT_DIR="$BUILD_DIR/serve_sat_gate"
rm -rf "$SAT_DIR"
mkdir -p "$SAT_DIR"
SAT_BIN="$BUILD_DIR/bench/bench_serve_saturation"
case "$SAT_BIN" in /*) ;; *) SAT_BIN="$(pwd)/$SAT_BIN" ;; esac
(cd "$SAT_DIR" && "$SAT_BIN")
python3 - "$SAT_DIR/BENCH_serve_saturation.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "dfmres-bench-serve-v1"
assert report["rejections_seen"], "saturated level saw no rejections"
for level in report["levels"]:
    assert level["accepted"] + level["rejected"] == level["offered"], level
    if level["accepted"]:
        assert 0 < level["p50_ms"] <= level["p95_ms"] <= level["p99_ms"], level
sat = report["levels"][-1]
assert sat["offered"] > report["max_inflight_jobs"] and sat["rejected"] > 0
print(f"serve saturation gate: {len(report['levels'])} levels,"
      f" {sat['rejected']} rejection(s) at offered={sat['offered']}")
EOF
python3 scripts/summarize_report.py "$SAT_DIR/BENCH_serve_saturation.json"

# Telemetry gate: a 2-worker chaos mini-campaign (every first-generation
# worker SIGKILLed right after claiming, so the respawns take over the
# stale leases) must leave behind schema-valid machine output at every
# layer: dfmres status --json, the per-worker telemetry snapshots, and a
# merged Chrome timeline that re-merges byte-identically and records the
# forced lease takeover.
TELEM_DIR="$BUILD_DIR/telemetry_gate"
rm -rf "$TELEM_DIR"
mkdir -p "$TELEM_DIR"
DFMRES_CRASH_AFTER="job.start:1" \
  "$BUILD_DIR/tools/dfmres" campaign --manifest "$CAMP_DIR/manifest.json" \
  --workers 2 --campaign-root "$TELEM_DIR/root" --snapshot-interval 100ms
"$BUILD_DIR/tools/dfmres" status --json --campaign-root "$TELEM_DIR/root" \
  > "$TELEM_DIR/status.json"
"$BUILD_DIR/tools/dfmres" trace merge --campaign-root "$TELEM_DIR/root" \
  --out "$TELEM_DIR/merge1.json"
"$BUILD_DIR/tools/dfmres" trace merge --campaign-root "$TELEM_DIR/root" \
  --out "$TELEM_DIR/merge2.json"
cmp "$TELEM_DIR/merge1.json" "$TELEM_DIR/merge2.json"
python3 - "$TELEM_DIR" <<'EOF'
import json, sys, os, glob
d = sys.argv[1]
status = json.load(open(os.path.join(d, "status.json")))
assert status["schema"] == "dfmres-status-v1"
assert status["report_written"]
assert status["done"] == status["jobs_total"] == 2
assert all(j["state"] == "done" for j in status["jobs"])
assert status["workers"], "no telemetry snapshots behind the status"
shards = sorted(glob.glob(os.path.join(d, "root", "telemetry", "*.json")))
assert shards, "telemetry directory is empty"
for path in shards:
    snap = json.load(open(path))
    assert snap["schema"] == "dfmres-telemetry-v1", path
trace = json.load(open(os.path.join(d, "merge1.json")))
names = {e.get("name") for e in trace["traceEvents"]}
assert "lease.claim" in names, "no lease-protocol rows in the timeline"
assert "lease.takeover" in names, "kill injection left no takeover event"
pids = {e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"}
assert len(pids) >= 2, f"expected spans from >=2 worker pids, got {pids}"
print("telemetry gate: status/snapshots/merge/takeover OK")
EOF
python3 scripts/summarize_report.py "$TELEM_DIR/status.json"

# Probe-overlay gate: the copy-on-write overlays must stay bit-identical
# to full per-probe loads and keep the local-edit probe cost at O(cone):
# >= 10x fewer frame bytes per probe than the O(netlist) full loads on
# tv80. The bench exits non-zero on any observable divergence.
OVL_DIR="$BUILD_DIR/overlay_gate"
mkdir -p "$OVL_DIR"
OVL_BIN="$BUILD_DIR/bench/bench_probe_overlay"
case "$OVL_BIN" in /*) ;; *) OVL_BIN="$(pwd)/$OVL_BIN" ;; esac
(cd "$OVL_DIR" && "$OVL_BIN" tv80)
python3 - "$OVL_DIR/BENCH_probe_overlay_compare.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "dfmres-bench-probe-overlay-v1"
assert report["identical"], "overlay and full runs disagree"
ratio = report["bytes_per_probe_ratio"]
assert ratio >= 10.0, f"local-edit bytes/probe ratio {ratio:.1f}x < 10x"
print(f"probe overlay gate: bit-identical, {ratio:.1f}x fewer bytes/probe")
EOF
python3 scripts/summarize_report.py "$OVL_DIR/BENCH_probe_overlay_compare.json"

# SIMD kernel gate: the W-sweep bit-identity suite must pass with the
# process-wide default pinned to the scalar kernel and to auto (the
# widest kernel this machine runs), and the kernel bench must report
# bit-identical masks across every mode. The bench also records the
# honest per-mode speedups against the STREAM roofline.
DFMRES_SIMD=scalar "$BUILD_DIR/tests/simd_kernel_test" \
  --gtest_filter='-SimdKernelHeavy.*'
DFMRES_SIMD=auto "$BUILD_DIR/tests/simd_kernel_test" \
  --gtest_filter='-SimdKernelHeavy.*'
SIMD_DIR="$BUILD_DIR/simd_gate"
mkdir -p "$SIMD_DIR"
SIMD_BIN="$BUILD_DIR/bench/bench_simd_kernel"
case "$SIMD_BIN" in /*) ;; *) SIMD_BIN="$(pwd)/$SIMD_BIN" ;; esac
(cd "$SIMD_DIR" && "$SIMD_BIN")
python3 - "$SIMD_DIR/BENCH_simd_kernel.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "dfmres-bench-simd-kernel-v1"
assert report["identical_masks"], "kernel masks diverge from scalar"
words = {r["mode"]: r["words"] for r in report["runs"]}
assert words["scalar"] == 1 and words["portable4"] == 4
assert words["portable8"] == 8 and words["auto"] >= 4
print(f"simd kernel gate: bit-identical, auto load speedup "
      f"{report['auto_load_speedup']:.2f}x")
EOF
python3 scripts/summarize_report.py "$SIMD_DIR/BENCH_simd_kernel.json"

scripts/run_tsan.sh
scripts/run_asan.sh
scripts/run_ubsan.sh

echo "check.sh: all gates passed."
