#!/bin/sh
# Fault-injection supervisor for multi-process campaigns: runs the
# 12-block Table-II sweep with N lease-claimed workers while SIGKILL-ing
# a random worker at a fixed cadence, then asserts the merged report
# canonicalizes byte-identically to an unperturbed serial run of the
# same manifest. The coordinator respawns the victims; killed jobs are
# reclaimed through stale leases and resume from the shared checkpoints.
#
# Usage: scripts/chaos_campaign.sh [build-dir] [workers] [kills] [interval-s]
#   workers   worker processes (default 3)
#   kills     total SIGKILLs to inject (default 6; keep below the
#             --max-attempts budget so no job can be poisoned)
#   interval  seconds between kills (default 15)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
WORKERS="${2:-3}"
KILLS="${3:-6}"
INTERVAL="${4:-15}"
DFMRES="$BUILD_DIR/tools/dfmres"
ROOT="$BUILD_DIR/chaos_campaign"

rm -rf "$ROOT"
mkdir -p "$ROOT"
"$DFMRES" campaign --emit-table2 "$ROOT/manifest.json"

echo "chaos_campaign: serial baseline..."
"$DFMRES" campaign --manifest "$ROOT/manifest.json" \
  --report-out "$ROOT/serial.json"

echo "chaos_campaign: $WORKERS workers, $KILLS random SIGKILLs..."
"$DFMRES" campaign --manifest "$ROOT/manifest.json" \
  --workers "$WORKERS" --campaign-root "$ROOT/root" \
  --max-attempts $((KILLS + WORKERS + 3)) &
COORD=$!

kills_left="$KILLS"
while [ "$kills_left" -gt 0 ] && kill -0 "$COORD" 2>/dev/null; do
  sleep "$INTERVAL"
  # A random live worker of this campaign (never the coordinator).
  VICTIM=$(pgrep -f "work --campaign-root $ROOT/root" | sort -R | head -1)
  if [ -n "${VICTIM:-}" ]; then
    echo "chaos_campaign: SIGKILL worker $VICTIM"
    kill -KILL "$VICTIM" 2>/dev/null || true
    kills_left=$((kills_left - 1))
  fi
done

wait "$COORD"

"$DFMRES" canon "$ROOT/serial.json" > "$ROOT/serial.canon"
"$DFMRES" canon "$ROOT/root/report.json" > "$ROOT/chaos.canon"
cmp "$ROOT/serial.canon" "$ROOT/chaos.canon"
echo "chaos_campaign: merged report canonically identical to serial run."

# The merged trace timeline is the flight recorder for the carnage
# above: when kills actually landed, the lease-protocol rows must show
# at least one takeover (a respawned worker claiming a dead victim's
# stale lease). Merging twice also proves the stitch is deterministic.
"$DFMRES" trace merge --campaign-root "$ROOT/root" --out "$ROOT/trace1.json"
"$DFMRES" trace merge --campaign-root "$ROOT/root" --out "$ROOT/trace2.json"
cmp "$ROOT/trace1.json" "$ROOT/trace2.json"
KILLED=$((KILLS - kills_left))
python3 - "$ROOT/trace1.json" "$KILLED" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
killed = int(sys.argv[2])
names = [e.get("name") for e in trace["traceEvents"]]
assert "lease.claim" in names, "no lease-protocol rows in the timeline"
if killed > 0:
    assert "lease.takeover" in names, (
        f"{killed} worker(s) were SIGKILLed but the merged timeline"
        " records no lease.takeover"
    )
print(f"chaos_campaign: timeline OK ({names.count('lease.takeover')}"
      f" takeover(s) recorded for {killed} kill(s))")
EOF
