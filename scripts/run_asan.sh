#!/bin/sh
# AddressSanitizer + UndefinedBehaviorSanitizer gate for the warm-start
# incremental ATPG machinery: -DDFMRES_SANITIZE=address expands to
# address,undefined (see CMakeLists.txt). Runs the suites that exercise
# the simulator-arena rebinding, the cache overlays and the speculative
# ladder (warm_start_test), the core flow (core_test), the engine
# itself (atpg_test), and the copy-on-write probe overlays
# (overlay_test — baseline frame aliasing and the per-batch dirty-slot
# replay are exactly the pointer gymnastics ASan is for). Any report
# aborts with a non-zero exit.
# Usage: scripts/run_asan.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DDFMRES_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target warm_start_test core_test atpg_test overlay_test simd_kernel_test \
  lease_test

# Fail loudly on the first report from either sanitizer.
SAN_ENV="halt_on_error=1 exitcode=66"
ASAN_OPTIONS="$SAN_ENV" UBSAN_OPTIONS="$SAN_ENV" \
  "$BUILD_DIR/tests/warm_start_test"
ASAN_OPTIONS="$SAN_ENV" UBSAN_OPTIONS="$SAN_ENV" \
  "$BUILD_DIR/tests/core_test"
ASAN_OPTIONS="$SAN_ENV" UBSAN_OPTIONS="$SAN_ENV" \
  "$BUILD_DIR/tests/atpg_test"
# The tv80 end-to-end case reruns two full resynthesis searches — far
# too slow under instrumentation; the small-block cases cover the same
# overlay load/discard/rebase code paths.
ASAN_OPTIONS="$SAN_ENV" UBSAN_OPTIONS="$SAN_ENV" \
  "$BUILD_DIR/tests/overlay_test" --gtest_filter='-OverlayHeavy.*'
# SimWord kernels: the W-sweep identity suite drives every portable
# width (plus the ISA kernels on machines that have them) through the
# load / overlay / detect paths, including the batch-tail lane masks.
ASAN_OPTIONS="$SAN_ENV" UBSAN_OPTIONS="$SAN_ENV" \
  "$BUILD_DIR/tests/simd_kernel_test" --gtest_filter='-SimdKernelHeavy.*'
# Lease protocol + campaign workers: single-line JSON records, epoch
# path arithmetic and the shard render/parse round-trip are exactly the
# string/buffer handling ASan watches. The fork-heavy resume case runs
# in the regular build (forking an ASan child doubles the shadow).
ASAN_OPTIONS="$SAN_ENV" UBSAN_OPTIONS="$SAN_ENV" \
  "$BUILD_DIR/tests/lease_test" --gtest_filter='-CampaignWorkerHeavy.*'

echo "ASan/UBSan: no reports."
