#!/usr/bin/env python3
"""Summarize a dfmres run or campaign report.

For a dfmres-run-report-v1 document (--report-out /
BENCH_*_report.json) prints the run header, initial vs final
Table-II-style stats, ATPG and resynthesis counters, and a compact
convergence table. For a dfmres-campaign-report-v1 document
(dfmres campaign --report-out) prints the campaign totals, a one-line
ledger per job, and the embedded per-job run reports. With several
reports, prints one block per file. Exits non-zero on a file that is
not a valid document of either schema, so CI can use it as a schema
gate.

With --list-schemas, prints every versioned document name the tooling
understands (one per line) and exits; scripts/check.sh diffs this list
against the C++ registry in src/core/schemas.hpp so the two sides of
the language boundary cannot drift.

Usage: scripts/summarize_report.py report.json [more.json ...]
       scripts/summarize_report.py --list-schemas
"""

import json
import sys

# Mirror of src/core/schemas.hpp kAll[] — checked by scripts/check.sh.
KNOWN_SCHEMAS = [
    "dfmres-campaign-manifest-v1",
    "dfmres-campaign-report-v1",
    "dfmres-campaign-shard-v1",
    "dfmres-run-report-v1",
    "dfmres-lease-v1",
    "dfmres-telemetry-v1",
    "dfmres-status-v1",
    "dfmres-request-v1",
    "dfmres-response-v1",
    "dfmres-bench-probe-overlay-v1",
    "dfmres-bench-simd-kernel-v1",
    "dfmres-bench-serve-v1",
]


def fmt_state(s):
    return (
        f"U={s['undetectable']:<6} Smax={s['smax']:<6} "
        f"%Smax={s['smax_pct']:6.2f}  cov={100.0 * s['coverage']:6.2f}%  "
        f"delay={s['delay']:.3f}  power={s['power']:.1f}  T={s['tests']}"
    )


def summarize(path):
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema == "dfmres-campaign-report-v1":
        summarize_campaign(path, report)
        return
    if schema == "dfmres-campaign-shard-v1":
        summarize_shard(path, report)
        return
    if schema == "dfmres-status-v1":
        summarize_status(path, report)
        return
    if schema == "dfmres-telemetry-v1":
        summarize_telemetry(path, report)
        return
    if schema == "dfmres-bench-probe-overlay-v1":
        summarize_probe_overlay(path, report)
        return
    if schema == "dfmres-bench-simd-kernel-v1":
        summarize_simd_kernel(path, report)
        return
    if schema == "dfmres-bench-serve-v1":
        summarize_serve_saturation(path, report)
        return
    if schema != "dfmres-run-report-v1":
        raise ValueError(f"{path}: unexpected schema {schema!r}")

    print(f"== {path}")
    summarize_run(report)


def summarize_status(path, status):
    """dfmres-status-v1: one line of `dfmres status --json` output."""
    print(f"== {path}")
    report_flag = "  [report written]" if status["report_written"] else ""
    print(
        f"   campaign: {status['done']}/{status['jobs_total']} done,"
        f" {status['running']} running, {status['pending']} pending"
        f"{report_flag}"
    )
    if status["eta_s"] > 0.0:
        print(f"   eta: ~{status['eta_s']:.0f}s")
    for job in status["jobs"]:
        detail = f" ({job['error']})" if job.get("error") else ""
        owner = f" @{job['owner']}" if job.get("owner") else ""
        print(
            f"   job {job['name']}: {job['state']}{owner},"
            f" attempt {job['attempt']}{detail}"
        )
    for worker in status["workers"]:
        job = worker["job"] or "idle"
        rate = (
            f", {worker['faults_per_s']:.0f} faults/s"
            if worker["faults_per_s"] >= 0.0
            else ""
        )
        print(
            f"   worker {worker['owner']} (pid {worker['pid']},"
            f" seq {worker['seq']}): {job},"
            f" {worker['faults_classified']} faults classified{rate}"
        )


def summarize_telemetry(path, snap):
    """dfmres-telemetry-v1: one worker's crash-durable snapshot."""
    print(f"== {path}")
    progress = snap["progress"]
    job = snap["job"] or "idle"
    print(
        f"   snapshot {snap['owner']}.{snap['seq']} (pid {snap['pid']}):"
        f" {job}, phase {snap['phase']}, {snap['jobs_done']} job(s) done"
    )
    print(
        f"   progress: {progress['analyses']} analyses,"
        f" {progress['faults_classified']} faults classified,"
        f" {progress['probes_committed']} probes committed,"
        f" {len(snap['trace'])} trace span(s) shipped"
    )


def summarize_probe_overlay(path, report):
    """BENCH_probe_overlay_compare.json: CoW probe-overlay economics."""
    print(f"== {path}")
    print(
        f"   probe overlays on {report['circuit']}:"
        f" bit-identical={'yes' if report['identical'] else 'NO'}"
    )
    local = report["local"]
    for mode in ("full", "overlay"):
        m = local[mode]
        print(
            f"   local {mode:<7} {m['bytes_per_probe']:12.0f} bytes/probe"
            f"  ({m['full_loads']} full / {m['overlay_loads']} overlay"
            f" loads over {local['probes']} probes)"
        )
    print(
        f"   local-edit bytes/probe ratio (full/overlay):"
        f" {report['bytes_per_probe_ratio']:.1f}x"
    )
    for mode in ("full", "overlay"):
        m = report[mode]
        print(
            f"   search {mode:<7} {m['bytes_per_probe']:12.0f} bytes/probe"
            f"  ({m['probes']} probes, {m['wall_seconds']:.2f}s,"
            f" U={m['final_undetectable']} Smax={m['final_smax']})"
        )
    print(
        f"   search bytes/probe ratio (full/overlay):"
        f" {report['search_bytes_per_probe_ratio']:.1f}x"
    )
    if not report["identical"]:
        raise ValueError(f"{path}: overlay and full runs disagree")


def summarize_simd_kernel(path, report):
    """BENCH_simd_kernel.json: SimWord kernel throughput vs roofline."""
    print(f"== {path}")
    print(
        f"   SimWord kernels on {report['gates']} gates x"
        f" {report['patterns']} patterns x {report['excitations']} excitations:"
        f" bit-identical={'yes' if report['identical_masks'] else 'NO'}"
    )
    triad = report["triad_gbs"]
    print(f"   STREAM triad roofline: {triad:.2f} GB/s")
    for run in report["runs"]:
        pct = 100.0 * run["load_gbs"] / triad if triad > 0 else 0.0
        print(
            f"   {run['mode']:<9} -> {run['kernel']:<9} W={run['words']}"
            f"  load {run['load_gbs']:5.2f} GB/s ({pct:3.0f}% of triad,"
            f" {run['load_speedup_vs_scalar']:.2f}x)"
            f"  detect {run['detect_lanes_per_sec'] / 1e6:7.1f}M lanes/s"
            f" ({run['detect_speedup_vs_scalar']:.2f}x)"
        )
    print(
        f"   auto kernel speedup vs scalar:"
        f" load {report['auto_load_speedup']:.2f}x,"
        f" detect {report['auto_detect_speedup']:.2f}x"
    )
    if not report["identical_masks"]:
        raise ValueError(f"{path}: kernel masks diverge from scalar")


def summarize_serve_saturation(path, report):
    """BENCH_serve_saturation.json: serve-daemon latency vs offered load."""
    print(f"== {path}")
    print(
        f"   serve saturation: {report['workers']} worker(s),"
        f" admission bound {report['max_inflight_jobs']} in-flight job(s),"
        f" rejections_seen={'yes' if report['rejections_seen'] else 'NO'}"
    )
    for level in report["levels"]:
        print(
            f"   offered {level['offered']:3d}: {level['accepted']:3d} accepted"
            f" {level['rejected']:3d} rejected"
            f"  p50 {level['p50_ms']:7.1f}ms  p95 {level['p95_ms']:7.1f}ms"
            f"  p99 {level['p99_ms']:7.1f}ms"
            f"  {level['jobs_per_s']:.1f} jobs/s"
        )
    if not report["rejections_seen"]:
        raise ValueError(f"{path}: saturated level saw no admission rejections")


def job_flags(job):
    """Status flags shared by campaign rows and worker shards."""
    flags = []
    if job.get("poisoned"):
        flags.append(f"POISONED after {job.get('attempts', '?')} attempt(s)")
    elif job.get("skipped"):
        flags.append("skipped")
    elif not job["ok"]:
        flags.append(f"FAILED ({job['status']})")
    if job["deadline_expired"]:
        flags.append("deadline expired")
    return flags


def summarize_shard(path, shard):
    """dfmres-campaign-shard-v1: one worker-published job result."""
    print(f"== {path}")
    flags = job_flags(shard)
    provenance = (
        f" by {shard['worker']}" if shard.get("worker") else ""
    )
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    print(
        f"   shard {shard['name']}: {shard['mode']} on {shard['design']},"
        f" attempt {shard.get('attempts', 1)}{provenance},"
        f" {shard['inner_threads']} lane(s),"
        f" {shard['runtime_seconds']:.2f}s{suffix}"
    )
    counters = shard.get("metrics", {}).get("counters", {})
    patterns = counters.get("atpg.patterns_simulated")
    if patterns is not None:
        print(f"   shard metrics: {patterns} ATPG patterns simulated")
    if "report" in shard:
        summarize_run(shard["report"], indent="   ")


def summarize_campaign(path, report):
    print(f"== {path}")
    total = report["jobs_total"]
    print(
        f"   campaign: {total} job(s), {report['completed']} completed,"
        f" {report['expired']} expired, {report['failed']} failed,"
        f" {report['skipped']} skipped"
    )
    print(
        f"   schedule: {report['jobs_in_flight']} job(s) in flight x"
        f" {report['inner_threads']} lane(s)"
        f" of {report['total_threads']} total,"
        f" wall {report['runtime_seconds']:.2f}s"
    )
    jobs = report["jobs"]
    if len(jobs) != total:
        raise ValueError(f"{path}: jobs_total {total} != {len(jobs)} entries")
    for job in jobs:
        flags = job_flags(job)
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        provenance = ""
        if job.get("worker"):
            provenance = (
                f" (worker {job['worker']}, {job.get('attempts', 1)}"
                f" attempt(s))"
            )
        print(
            f"   job {job['name']}: {job['mode']} on {job['design']},"
            f" {job['inner_threads']} lane(s),"
            f" {job['runtime_seconds']:.2f}s{provenance}{suffix}"
        )
    counters = report.get("metrics", {}).get("counters", {})
    patterns = counters.get("atpg.patterns_simulated")
    if patterns is not None:
        print(f"   merged metrics: {patterns} ATPG patterns simulated")
    for job in jobs:
        if "report" in job:
            print(f"   -- job {job['name']}")
            summarize_run(job["report"], indent="   ")


def summarize_run(report, indent=""):
    def print_line(text):
        print(indent + text)

    header = f"{report['command']} on {report['circuit']}"
    if report.get("sim_kernel"):
        header += f", {report['sim_kernel']} kernel (W={report.get('sim_words', 1)})"
    if report.get("threads"):
        header += f", {report['threads']} threads"
    if report.get("fingerprint"):
        header += f", fingerprint {report['fingerprint']}"
    print_line(f"   {header}")
    wall = report.get("runtime_seconds", 0.0)
    cpu = report.get("cpu_seconds", 0.0)
    partial = "  [PARTIAL RUN]" if report.get("partial") else ""
    print_line(f"   wall {wall:.2f}s, cpu {cpu:.2f}s{partial}")

    if "initial" in report:
        print_line(f"   initial: {fmt_state(report['initial'])}")
    if "final" in report:
        print_line(f"   final:   {fmt_state(report['final'])}")

    atpg = report.get("atpg")
    if atpg:
        print_line(
            f"   atpg: {atpg['patterns_simulated']} patterns, "
            f"{atpg['detect_mask_calls']} detect_mask calls, "
            f"{atpg['podem_backtracks']} backtracks, "
            f"phases {atpg['phase0_seconds']:.2f}/"
            f"{atpg['phase1_seconds']:.2f}/{atpg['phase2_seconds']:.2f}/"
            f"{atpg['phase3_seconds']:.2f}s"
        )

    resyn = report.get("resynthesis")
    if resyn:
        c = resyn["counters"]
        p = resyn["phase_seconds"]
        print_line(
            f"   resyn: q_used={resyn['q_used']}%"
            f" accepted={'yes' if resyn['any_accepted'] else 'no'}"
            f" deadline_expired={'yes' if resyn['deadline_expired'] else 'no'}"
            f"  {c['candidates_built']} built, {c['u_in_probes']} u_in probes,"
            f" {c['full_probes']} full probes"
        )
        print_line(
            f"   resyn phases: build {p['build']:.2f}s, u_in {p['u_in']:.2f}s,"
            f" probe {p['probe']:.2f}s, signoff {p['signoff']:.2f}s"
        )
        trace = resyn.get("convergence", [])
        accepted = [r for r in trace if r["accepted"]]
        print_line(
            f"   convergence: {len(trace)} candidates recorded, "
            f"{len(accepted)} accepted"
        )
        if accepted:
            print_line(
                f"   {'sec':>8} {'q':>3} {'ph':>2} {'U':>6} {'Smax':>6}"
                f" {'%Smax':>7} {'via':>12} {'banned':>10}"
            )
            for r in accepted:
                via = "backtracking" if r["via_backtracking"] else "direct"
                print_line(
                    f"   {r['seconds']:8.2f} {r['q']:2d}% {r['phase']:2d}"
                    f" {r['undetectable']:6d} {r['smax']:6d}"
                    f" {r['smax_pct']:6.2f}% {via:>12} {r['ban_through']:>10}"
                )


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 2
    if argv[1] == "--list-schemas":
        for schema in KNOWN_SCHEMAS:
            print(schema)
        return 0
    for path in argv[1:]:
        summarize(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
