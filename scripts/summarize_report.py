#!/usr/bin/env python3
"""Summarize a dfmres run report (--report-out / BENCH_*_report.json).

Prints the run header, initial vs final Table-II-style stats, ATPG and
resynthesis counters, and a compact convergence table. With several
reports, prints one block per file. Exits non-zero on a file that is
not a valid dfmres-run-report-v1 document, so CI can use it as a
schema gate.

Usage: scripts/summarize_report.py report.json [more.json ...]
"""

import json
import sys


def fmt_state(s):
    return (
        f"U={s['undetectable']:<6} Smax={s['smax']:<6} "
        f"%Smax={s['smax_pct']:6.2f}  cov={100.0 * s['coverage']:6.2f}%  "
        f"delay={s['delay']:.3f}  power={s['power']:.1f}  T={s['tests']}"
    )


def summarize(path):
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != "dfmres-run-report-v1":
        raise ValueError(f"{path}: unexpected schema {schema!r}")

    print(f"== {path}")
    header = f"{report['command']} on {report['circuit']}"
    if report.get("threads"):
        header += f", {report['threads']} threads"
    if report.get("fingerprint"):
        header += f", fingerprint {report['fingerprint']}"
    print(f"   {header}")
    wall = report.get("runtime_seconds", 0.0)
    cpu = report.get("cpu_seconds", 0.0)
    partial = "  [PARTIAL RUN]" if report.get("partial") else ""
    print(f"   wall {wall:.2f}s, cpu {cpu:.2f}s{partial}")

    if "initial" in report:
        print(f"   initial: {fmt_state(report['initial'])}")
    if "final" in report:
        print(f"   final:   {fmt_state(report['final'])}")

    atpg = report.get("atpg")
    if atpg:
        print(
            f"   atpg: {atpg['patterns_simulated']} patterns, "
            f"{atpg['detect_mask_calls']} detect_mask calls, "
            f"{atpg['podem_backtracks']} backtracks, "
            f"phases {atpg['phase0_seconds']:.2f}/"
            f"{atpg['phase1_seconds']:.2f}/{atpg['phase2_seconds']:.2f}/"
            f"{atpg['phase3_seconds']:.2f}s"
        )

    resyn = report.get("resynthesis")
    if resyn:
        c = resyn["counters"]
        p = resyn["phase_seconds"]
        print(
            f"   resyn: q_used={resyn['q_used']}%"
            f" accepted={'yes' if resyn['any_accepted'] else 'no'}"
            f" deadline_expired={'yes' if resyn['deadline_expired'] else 'no'}"
            f"  {c['candidates_built']} built, {c['u_in_probes']} u_in probes,"
            f" {c['full_probes']} full probes"
        )
        print(
            f"   resyn phases: build {p['build']:.2f}s, u_in {p['u_in']:.2f}s,"
            f" probe {p['probe']:.2f}s, signoff {p['signoff']:.2f}s"
        )
        trace = resyn.get("convergence", [])
        accepted = [r for r in trace if r["accepted"]]
        print(
            f"   convergence: {len(trace)} candidates recorded, "
            f"{len(accepted)} accepted"
        )
        if accepted:
            print(
                f"   {'sec':>8} {'q':>3} {'ph':>2} {'U':>6} {'Smax':>6}"
                f" {'%Smax':>7} {'via':>12} {'banned':>10}"
            )
            for r in accepted:
                via = "backtracking" if r["via_backtracking"] else "direct"
                print(
                    f"   {r['seconds']:8.2f} {r['q']:2d}% {r['phase']:2d}"
                    f" {r['undetectable']:6d} {r['smax']:6d}"
                    f" {r['smax_pct']:6.2f}% {via:>12} {r['ban_through']:>10}"
                )


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 2
    for path in argv[1:]:
        summarize(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
