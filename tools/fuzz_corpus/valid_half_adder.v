// seed: smallest well-formed module the parser accepts
module half (a, b, po0, po1);
  input a; input b;
  output po0; output po1;
  wire c; wire s;
  HAX1 u0 (.A(a), .B(b), .YC(c), .YS(s));
  assign po0 = c;
  assign po1 = s;
endmodule
