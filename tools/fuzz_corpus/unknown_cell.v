module m (a, po0); input a; output po0; wire n1;
  BOGUS g0 (.A(a), .Y(n1));
  assign po0 = n1;
endmodule
