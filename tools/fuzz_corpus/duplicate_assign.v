module m (a, po0); input a; output po0; wire n1; wire n2;
  INVX1 g0 (.A(a), .Y(n1));
  INVX1 g1 (.A(n1), .Y(n2));
  assign po0 = n1;
  assign po0 = n2;
endmodule
