module m (a, po0); input a; output po0; wire n1; wire n2;
  NAND2X1 g0 (.A(a), .B(n2), .Y(n1));
  NAND2X1 g1 (.A(a), .B(n1), .Y(n2));
  assign po0 = n1;
endmodule
