module m (a, po0); input a; output po0; wire n1;
  INVX1 g0 (.A(a),
