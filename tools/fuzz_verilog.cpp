// Fuzzing harness for the structural-Verilog front-end.
//
// The parser is the one surface that consumes fully untrusted bytes, so
// it must never crash, hang, or hand back an inconsistent netlist — it
// either returns a validated design or a located kInvalidArgument
// status. This harness asserts exactly that contract.
//
// Build with -DDFMRES_FUZZ=ON:
//  - under clang, a real libFuzzer binary (-fsanitize=fuzzer); seed it
//    with tools/fuzz_corpus/;
//  - under gcc (no libFuzzer runtime), a standalone replayer that runs
//    every file passed on the command line through the same entry point
//    (scripts/check.sh uses it as a corpus regression gate).

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/library/osu018.hpp"
#include "src/netlist/verilog.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const auto lib = dfmres::osu018_library();
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto result = dfmres::read_verilog(text, lib);
  if (result && !result->validate().empty()) {
    // An accepted parse must be internally consistent; anything else is
    // a front-end bug worth a crash report.
    __builtin_trap();
  }
  return 0;
}

#ifdef DFMRES_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file>...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[i]);
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string s = text.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], s.size());
  }
  return 0;
}
#endif
