// Fuzzing harness for the campaign-manifest front-end.
//
// Manifests are the second fully-untrusted input surface (campaign
// roots are shared directories — any process can write one), and they
// pull in the strict JSON parser, the duration-spec parser and the
// manifest validation rules. The contract under fuzz: never crash or
// hang; an accepted manifest must validate clean and round-trip through
// its canonical JSON to an equal document (parse(to_json(m)) == m at
// the JSON level).
//
// Build with -DDFMRES_FUZZ=ON:
//  - under clang, a real libFuzzer binary (-fsanitize=fuzzer); seed it
//    with tools/fuzz_corpus_manifest/;
//  - under gcc (no libFuzzer runtime), a standalone replayer that runs
//    every file passed on the command line through the same entry point
//    (scripts/check.sh uses it as a corpus regression gate).

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/campaign.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto manifest = dfmres::CampaignManifest::from_json(text);
  if (!manifest) return 0;
  // An accepted manifest must pass its own validation rules...
  if (!manifest->validate().is_ok()) __builtin_trap();
  // ...and its canonical JSON must re-parse to the same canonical JSON
  // (the round-trip contract from_json documents).
  const std::string canonical = manifest->to_json();
  const auto reparsed = dfmres::CampaignManifest::from_json(canonical);
  if (!reparsed) __builtin_trap();
  if (reparsed->to_json() != canonical) __builtin_trap();
  return 0;
}

#ifdef DFMRES_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file>...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[i]);
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string s = text.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], s.size());
  }
  return 0;
}
#endif
