// Fuzzing harness for the dfmres-request-v1 front-end.
//
// Requests are the most exposed untrusted surface: any process that can
// reach the serve socket gets a full line into parse_request, which
// drives the strict JSON parser, the job-field registry (every knob's
// type and range checks) and campaign-id validation. The contract under
// fuzz: never crash or hang; an accepted request must carry a valid
// campaign id (or none, for drain / server-wide status) and must
// round-trip through its canonical wire form to an identical string
// (request_to_json(parse(request_to_json(r))) == request_to_json(r)).
//
// Build with -DDFMRES_FUZZ=ON:
//  - under clang, a real libFuzzer binary (-fsanitize=fuzzer); seed it
//    with tools/fuzz_corpus_request/;
//  - under gcc (no libFuzzer runtime), a standalone replayer that runs
//    every file passed on the command line through the same entry point
//    (scripts/check.sh uses it as a corpus regression gate).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "src/core/request.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto request = dfmres::parse_request(text);
  if (!request) return 0;
  // An accepted request must address a directory-safe campaign id; only
  // drain and server-wide status may leave it empty.
  const std::string& id = request->id();
  if (id.empty()) {
    const bool idless = std::strcmp(request->kind(), "drain") == 0 ||
                        std::strcmp(request->kind(), "status") == 0;
    if (!idless) __builtin_trap();
  } else if (!dfmres::validate_campaign_id(id).is_ok()) {
    __builtin_trap();
  }
  // The canonical wire form must re-parse to the same canonical form
  // (the round-trip contract request_to_json documents).
  const std::string canonical = dfmres::request_to_json(*request);
  const auto reparsed = dfmres::parse_request(canonical);
  if (!reparsed) __builtin_trap();
  if (dfmres::request_to_json(*reparsed) != canonical) __builtin_trap();
  return 0;
}

#ifdef DFMRES_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file>...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[i]);
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string s = text.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], s.size());
  }
  return 0;
}
#endif
