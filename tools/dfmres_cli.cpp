// dfmres command-line driver.
//
//   dfmres list
//       Print the available benchmark blocks.
//   dfmres flow <circuit|file.v> [--write out.v] [--util 0.70]
//       Run the implementation flow (map, place, route, DFM check, ATPG)
//       and print the fault/cluster summary. A .v argument is parsed as
//       structural Verilog over the OSU018-style library.
//   dfmres resyn <circuit|file.v> [--q 5] [--p1 1.0] [--write out.v]
//       Run the flow and then the paper's two-phase resynthesis
//       procedure; print the before/after comparison.
//   dfmres verilog <circuit>
//       Map a benchmark and dump it as structural Verilog to stdout.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "src/circuits/benchmarks.hpp"
#include "src/core/resynthesis.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/stats.hpp"
#include "src/netlist/verilog.hpp"
#include "src/synth/mapper.hpp"

namespace {

using namespace dfmres;

int usage() {
  std::fprintf(stderr,
               "usage: dfmres <list|flow|resyn|verilog> [args]\n"
               "  dfmres list\n"
               "  dfmres flow <circuit|file.v> [--write out.v] [--util U] "
               "[--threads N]\n"
               "  dfmres resyn <circuit|file.v> [--q N] [--p1 PCT] "
               "[--write out.v] [--threads N] [--cold]\n"
               "  dfmres verilog <circuit>\n"
               "  --threads N: fault-simulation worker lanes "
               "(0 = hardware, 1 = serial; results are identical)\n"
               "  --cold: disable warm-start ATPG, candidate dedup and the "
               "parallel ladder (reference mode; same results, slower)\n");
  return 2;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Loads a design: benchmark name -> generic RTL netlist; *.v file ->
/// already-mapped netlist over the standard library.
std::optional<Netlist> load_design(const std::string& name, bool* is_mapped) {
  *is_mapped = false;
  if (ends_with(name, ".v")) {
    std::ifstream in(name);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", name.c_str());
      return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto nl = read_verilog(text.str(), osu018_library());
    if (!nl) {
      std::fprintf(stderr, "failed to parse '%s'\n", name.c_str());
      return std::nullopt;
    }
    *is_mapped = true;
    return nl;
  }
  for (const auto n : benchmark_names()) {
    if (n == name) return build_benchmark(name);
  }
  std::fprintf(stderr, "unknown circuit '%s' (try 'dfmres list')\n",
               name.c_str());
  return std::nullopt;
}

void print_state(const char* label, const FlowState& s,
                 const FlowState* baseline) {
  const FlowState& ref = baseline ? *baseline : s;
  std::printf(
      "%-8s F=%-6zu U=%-5zu cov=%6.2f%%  T=%-4zu Smax=%-5zu (%.2f%% of F)  "
      "delay=%5.1f%% power=%5.1f%%\n",
      label, s.num_faults(), s.num_undetectable(), 100.0 * s.coverage(),
      s.atpg.tests.size(), s.smax(), 100.0 * s.smax_fraction(),
      100.0 * s.timing.critical_delay / ref.timing.critical_delay,
      100.0 * s.timing.total_power() / ref.timing.total_power());
}

FlowState run_flow(DesignFlow& flow, const Netlist& design, bool is_mapped) {
  if (!is_mapped) return flow.run_initial(design);
  // Already mapped: place in a fresh floorplan and analyze.
  const Floorplan plan =
      make_floorplan(design, flow.options().utilization);
  const Placement placement =
      global_place(design, plan, flow.options().place);
  auto state = flow.reanalyze_with_placement(design, placement,
                                             /*generate_tests=*/true);
  return std::move(*state);
}

int cmd_list() {
  for (const auto n : benchmark_names()) {
    std::printf("%.*s\n", static_cast<int>(n.size()), n.data());
  }
  return 0;
}

int cmd_flow(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string write_path;
  FlowOptions options;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--write") && i + 1 < argc) {
      write_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--util") && i + 1 < argc) {
      options.utilization = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      options.atpg.num_threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cold")) {
      options.warm_start = false;
    } else {
      return usage();
    }
  }
  bool is_mapped = false;
  const auto design = load_design(argv[0], &is_mapped);
  if (!design) return 1;
  DesignFlow flow(osu018_library(), options);
  const FlowState state = run_flow(flow, *design, is_mapped);
  std::printf("%s", describe(state.netlist).c_str());
  print_state("flow", state, nullptr);
  std::printf("%s\n", state.atpg.counters.summary().c_str());
  std::printf("clusters:");
  for (std::size_t i = 0; i < state.clusters.clusters.size() && i < 10; ++i) {
    std::printf(" %zu", state.clusters.clusters[i].size());
  }
  std::printf("\n");
  if (!write_path.empty()) {
    std::ofstream out(write_path);
    write_verilog(state.netlist, out);
    std::printf("wrote %s\n", write_path.c_str());
  }
  return 0;
}

int cmd_resyn(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string write_path;
  ResynthesisOptions options;
  FlowOptions flow_options;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--q") && i + 1 < argc) {
      options.q_max = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--p1") && i + 1 < argc) {
      options.p1 = std::atof(argv[++i]) / 100.0;
    } else if (!std::strcmp(argv[i], "--write") && i + 1 < argc) {
      write_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      flow_options.atpg.num_threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cold")) {
      flow_options.warm_start = false;
      options.dedup_candidates = false;
      options.parallel_ladder = false;
    } else {
      return usage();
    }
  }
  bool is_mapped = false;
  const auto design = load_design(argv[0], &is_mapped);
  if (!design) return 1;
  DesignFlow flow(osu018_library(), flow_options);
  const FlowState original = run_flow(flow, *design, is_mapped);
  print_state("orig", original, nullptr);
  const ResynthesisResult result = resynthesize(flow, original, options);
  print_state("resyn", result.state, &original);
  std::printf("%s\n", result.state.atpg.counters.summary().c_str());
  std::printf("largest accepted q: %d%%  runtime: %.1fs\n",
              result.report.q_used, result.report.runtime_seconds);
  if (!write_path.empty()) {
    std::ofstream out(write_path);
    write_verilog(result.state.netlist, out);
    std::printf("wrote %s\n", write_path.c_str());
  }
  return 0;
}

int cmd_verilog(int argc, char** argv) {
  if (argc < 1) return usage();
  bool is_mapped = false;
  const auto design = load_design(argv[0], &is_mapped);
  if (!design) return 1;
  if (is_mapped) {
    write_verilog(*design, std::cout);
    return 0;
  }
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  const auto mapped = technology_map(*design, tlib, mo);
  if (!mapped) {
    std::fprintf(stderr, "mapping failed\n");
    return 1;
  }
  write_verilog(*mapped, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "flow") return cmd_flow(argc - 2, argv + 2);
  if (cmd == "resyn") return cmd_resyn(argc - 2, argv + 2);
  if (cmd == "verilog") return cmd_verilog(argc - 2, argv + 2);
  return usage();
}
