// dfmres command-line driver.
//
//   dfmres list
//       Print the available benchmark blocks.
//   dfmres flow <circuit|file.v> [--write out.v] [--util 0.70]
//       Run the implementation flow (map, place, route, DFM check, ATPG)
//       and print the fault/cluster summary. A .v argument is parsed as
//       structural Verilog over the OSU018-style library.
//   dfmres resyn <circuit|file.v> [--q 5] [--p1 1.0] [--write out.v]
//                [--deadline 30s] [--checkpoint DIR] [--resume]
//       Run the flow and then the paper's two-phase resynthesis
//       procedure; print the before/after comparison.
//   dfmres campaign <--manifest F|--table2> [--jobs N] [--threads N]
//       Run a batched multi-design sweep from a campaign manifest, N
//       jobs in flight, and write one aggregated campaign report. With
//       --workers N --campaign-root DIR the sweep instead runs as N
//       forked worker processes claiming jobs through lease files in
//       DIR; crashed workers are respawned and their jobs resumed from
//       the shared checkpoints, and the shards are merged into
//       DIR/report.json.
//   dfmres work --campaign-root DIR
//       Attach one worker process to an existing campaign root (the
//       elastic half of --workers: extra workers can join a running
//       campaign from other shells or hosts sharing the directory).
//   dfmres status --campaign-root DIR [--follow] [--json]
//       Observe a campaign root read-only: per-job lease/shard state,
//       per-worker telemetry and an ETA. --follow polls until the
//       merged report lands; --json emits dfmres-status-v1 lines.
//   dfmres serve --campaign-root DIR --listen SOCKET [--workers N]
//       Run the always-on job service: a daemon multiplexing many
//       concurrent campaigns from many clients over one Unix-domain
//       socket (newline-delimited dfmres-request-v1 in,
//       dfmres-response-v1 events out). Killed daemons restart by
//       rescanning DIR; a drain request shuts down cleanly.
//   dfmres request --socket S <submit|submit-job|status|cancel|drain>
//       The reference protocol client: send one request to a serve
//       daemon and stream its response events (nc/socat equivalent).
//   dfmres trace merge --campaign-root DIR [--out F]
//       Stitch every worker's telemetry trace shards and the lease
//       protocol events into one Chrome trace_event timeline.
//   dfmres canon <report.json>
//       Print the canonical projection of a campaign report (the
//       schedule-independent substance) for bit-identity comparison.
//   dfmres verilog <circuit>
//       Map a benchmark and dump it as structural Verilog to stdout.
//
// Exit codes: 0 success, 1 runtime failure (reported with its status),
// 2 usage / flag-validation error, 130 interrupted by SIGINT/SIGTERM
// (partial outputs were still flushed; a second signal kills hard).

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/circuits/benchmarks.hpp"
#include "src/core/campaign.hpp"
#include "src/core/request.hpp"
#include "src/core/resynthesis.hpp"
#include "src/core/run_report.hpp"
#include "src/core/serve.hpp"
#include "src/core/telemetry.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/stats.hpp"
#include "src/netlist/verilog.hpp"
#include "src/sim/simd_dispatch.hpp"
#include "src/synth/mapper.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"
#include "src/util/trace.hpp"

namespace {

using namespace dfmres;

/// Graceful-interrupt plumbing. The first SIGINT/SIGTERM trips the
/// root cancel token (CancelToken::cancel is a relaxed atomic store —
/// async-signal-safe) so runs unwind cooperatively, flush their partial
/// outputs and exit 130. A second signal restores the default
/// disposition and re-raises, so a wedged run can still be killed.
volatile std::sig_atomic_t g_signal_num = 0;
CancelToken g_signal_token;

extern "C" void handle_interrupt(int sig) {
  if (g_signal_num != 0) {
    std::signal(sig, SIG_DFL);
    ::raise(sig);
    return;
  }
  g_signal_num = sig;
  g_signal_token.cancel();
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_interrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking waits must see EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

[[nodiscard]] bool interrupted() { return g_signal_num != 0; }

/// Maps a run's natural exit code through the interrupt state: an
/// interrupted run reports 130 (the shell convention for SIGINT death)
/// so callers can tell "stopped on request, partial results flushed"
/// from a hard failure.
[[nodiscard]] int exit_code(int natural) {
  return interrupted() ? 130 : natural;
}

/// argv[0] as seen by main(), the exec fallback when /proc is absent.
const char* g_argv0 = "dfmres";

[[nodiscard]] std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return g_argv0;
}

/// The flag block shared by the run-producing commands. Every command
/// takes the three observability outputs: --trace-out (Chrome
/// trace_event JSON), --metrics-out (merged counters/gauges/histograms/
/// series) and --report-out (the run or campaign report). Commands
/// constructed `with_robustness` additionally take the robustness trio:
/// --deadline, --checkpoint (or the name passed as `checkpoint_flag`,
/// e.g. --checkpoint-root for `campaign`) and --resume.
struct CommonRunFlags {
  explicit CommonRunFlags(bool with_robustness,
                          const char* checkpoint_flag = "--checkpoint")
      : with_robustness_(with_robustness), checkpoint_flag_(checkpoint_flag) {}

  std::string trace_out;
  std::string metrics_out;
  std::string report_out;
  std::chrono::nanoseconds deadline{0};
  std::string checkpoint;
  bool resume = false;
  /// Set when a matched flag had an invalid value (already reported to
  /// stderr); the command should exit 2.
  bool failed = false;

  /// Consumes argv[*i] (and its value) when it is one of the shared
  /// flags.
  bool match(int argc, char** argv, int* i) {
    const auto take = [&](const char* flag, std::string* out) {
      if (!std::strcmp(argv[*i], flag) && *i + 1 < argc) {
        *out = argv[++*i];
        return true;
      }
      return false;
    };
    if (take("--trace-out", &trace_out) ||
        take("--metrics-out", &metrics_out) ||
        take("--report-out", &report_out)) {
      return true;
    }
    // --simd MODE / --simd=MODE: pin the fault-simulation kernel for
    // this process (default: auto = widest this CPU supports). Applied
    // immediately so everything downstream — including the run report's
    // kernel stamp — sees the requested mode.
    std::string simd;
    if (take("--simd", &simd) ||
        (!std::strncmp(argv[*i], "--simd=", 7) && (simd = argv[*i] + 7, true))) {
      const auto mode = parse_simd_mode(simd);
      if (!mode) {
        std::fprintf(stderr,
                     "--simd: unknown mode '%s' (want auto|scalar|portable4|"
                     "portable8|avx2|avx512)\n",
                     simd.c_str());
        failed = true;
      } else {
        set_global_simd_mode(*mode);
      }
      return true;
    }
    if (!with_robustness_) return false;
    if (!std::strcmp(argv[*i], "--deadline") && *i + 1 < argc) {
      const auto d = parse_duration_spec(argv[++*i]);
      if (!d) {
        std::fprintf(stderr, "--deadline: %s\n",
                     d.status().to_string().c_str());
        failed = true;
      } else {
        deadline = *d;
      }
      return true;
    }
    if (take(checkpoint_flag_, &checkpoint)) return true;
    if (!std::strcmp(argv[*i], "--resume")) {
      resume = true;
      return true;
    }
    return false;
  }

  /// Tracing must be on before the run; the other outputs are flushed
  /// after it.
  void arm() const {
    if (!trace_out.empty()) Tracer::instance().enable();
  }

  /// The run's stop token: trips on --deadline expiry (when given) and
  /// always on SIGINT/SIGTERM through the signal parent, so every run
  /// is interruptible. Not assignable (atomic latch), so it is armed at
  /// construction.
  [[nodiscard]] CancelToken make_cancel() const {
    return CancelToken(deadline.count() > 0 ? Deadline::after(deadline)
                                            : Deadline::never(),
                       &g_signal_token);
  }

  /// Writes the requested outputs. Returns false if any write failed.
  [[nodiscard]] bool flush(const RunReport& report) const {
    return flush_impl(
        [&](const std::string& path) { return report.write_json(path); });
  }
  [[nodiscard]] bool flush(const CampaignResult& result) const {
    return flush_impl(
        [&](const std::string& path) { return result.write_report(path); });
  }

  /// The error/drain-path flush: whatever spans and metrics the run got
  /// to record are still evidence, so a load failure, a cancelled run or
  /// an expired deadline writes complete, valid --trace-out /
  /// --metrics-out documents instead of nothing (the report needs a
  /// finished run and is skipped).
  bool flush_observability() const {
    bool ok = true;
    const auto emit = [&](const std::string& path, const Status& s) {
      if (path.empty()) return;
      if (s.is_ok()) {
        std::printf("wrote %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "%s\n", s.to_string().c_str());
        ok = false;
      }
    };
    if (!trace_out.empty()) {
      emit(trace_out, Tracer::instance().write_chrome_json(trace_out));
    }
    if (!metrics_out.empty()) {
      emit(metrics_out, MetricsRegistry::global().write_json(metrics_out));
    }
    return ok;
  }

 private:
  template <typename WriteReport>
  [[nodiscard]] bool flush_impl(const WriteReport& write_report) const {
    bool ok = flush_observability();
    const auto emit = [&](const std::string& path, const Status& s) {
      if (path.empty()) return;
      if (s.is_ok()) {
        std::printf("wrote %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "%s\n", s.to_string().c_str());
        ok = false;
      }
    };
    if (!report_out.empty()) emit(report_out, write_report(report_out));
    return ok;
  }

  bool with_robustness_;
  const char* checkpoint_flag_;
};

int usage() {
  std::fprintf(stderr,
               "usage: dfmres <list|flow|resyn|campaign|work|status|serve|"
               "request|trace|canon|verilog> "
               "[args]\n"
               "  dfmres list\n"
               "  dfmres flow <circuit|file.v> [--write out.v] [--util U] "
               "[--threads N]\n"
               "               [--trace-out F] [--metrics-out F] "
               "[--report-out F]\n"
               "  dfmres resyn <circuit|file.v> [--q N] [--p1 PCT] "
               "[--write out.v] [--threads N] [--cold]\n"
               "               [--deadline D] [--checkpoint DIR] [--resume]\n"
               "               [--trace-out F] [--metrics-out F] "
               "[--report-out F]\n"
               "  dfmres campaign <--manifest F|--table2> [--jobs N] "
               "[--threads N] [--deadline D]\n"
               "               [--checkpoint-root DIR] [--resume] "
               "[--emit-table2 F]\n"
               "               [--workers N --campaign-root DIR "
               "[--heartbeat D] [--lease-ttl D] [--max-attempts N]]\n"
               "               [--trace-out F] [--metrics-out F] "
               "[--report-out F]\n"
               "  dfmres work --campaign-root DIR [--owner ID] [--threads N]\n"
               "               [--heartbeat D] [--lease-ttl D] "
               "[--max-attempts N] [--snapshot-interval D]\n"
               "  dfmres status --campaign-root DIR [--follow] [--json] "
               "[--interval D]\n"
               "  dfmres serve --campaign-root DIR --listen SOCKET "
               "[--workers N] [--threads N]\n"
               "               [--max-inflight N] [--client-quota N] "
               "[--queue-capacity N]\n"
               "  dfmres request --socket S submit --id ID --manifest F "
               "[--wait]\n"
               "  dfmres request --socket S submit-job --id ID --design D "
               "[--name N] [--mode flow|resyn]\n"
               "               [--q N] [--p1 PCT] [--util U] [--seed N] "
               "[--deadline D] [--wait]\n"
               "  dfmres request --socket S <status [--id ID]|cancel --id ID"
               "|drain>\n"
               "  dfmres trace merge --campaign-root DIR [--out F]\n"
               "  dfmres canon <report.json>\n"
               "  dfmres verilog <circuit>\n"
               "  --manifest F: campaign manifest JSON "
               "(dfmres-campaign-manifest-v1)\n"
               "  --table2: run the built-in Table II sweep (every "
               "benchmark, q_max 5)\n"
               "  --emit-table2 F: write the Table II sweep manifest to F "
               "and exit\n"
               "  --jobs N: campaign jobs in flight at once; each gets "
               "total-threads/N fault-sim lanes\n"
               "  --workers N: fork N worker processes claiming jobs via "
               "lease files in --campaign-root\n"
               "                  (crash-tolerant: dead workers are "
               "respawned, jobs resume from shared checkpoints)\n"
               "  --campaign-root DIR: the shared coordination directory "
               "(manifest, leases, checkpoints, shards, report)\n"
               "  --heartbeat D: worker lease refresh period "
               "(default 500ms)\n"
               "  --lease-ttl D: heartbeat age after which a lease is "
               "stale and reclaimable (default 3x heartbeat)\n"
               "  --max-attempts N: lease attempts before a job is marked "
               "poisoned (default 3)\n"
               "  --owner ID: worker identity stamped into leases and "
               "shards (default w<pid>)\n"
               "  --snapshot-interval D: period of the crash-durable "
               "telemetry snapshots workers publish under\n"
               "                  <root>/telemetry (default 1s; 0 "
               "disables)\n"
               "  --follow: poll status until the merged report is "
               "written (SIGINT stops)\n"
               "  --json: emit one dfmres-status-v1 JSON line per poll "
               "instead of the table\n"
               "  --interval D: status poll period with --follow "
               "(default 2s)\n"
               "  --out F: write the merged Chrome trace to F (atomic) "
               "instead of stdout\n"
               "  --threads N: fault-simulation worker lanes "
               "(0 = hardware, 1 = serial; results are identical)\n"
               "  --simd M: fault-simulation kernel: auto|scalar|portable4|"
               "portable8|avx2|avx512 (default auto = widest\n"
               "                  this CPU runs; every mode is bit-identical "
               "per 64-lane group, only throughput moves)\n"
               "  --cold: disable warm-start ATPG, candidate dedup and the "
               "parallel ladder (reference mode; same results, slower)\n"
               "  --deadline D: stop searching after D (e.g. 500ms, 30s, "
               "2m) and keep the best accepted design\n"
               "  --checkpoint DIR: journal every accepted candidate to "
               "DIR, fsync'd, for crash recovery\n"
               "  --resume: replay the journal in --checkpoint DIR before "
               "searching\n"
               "  --trace-out F: write a Chrome trace_event JSON span "
               "trace (chrome://tracing, Perfetto)\n"
               "  --metrics-out F: write the merged metrics registry "
               "(counters/gauges/histograms/series) as JSON\n"
               "  --report-out F: write the machine-readable run report "
               "(options fingerprint, Table I/II stats,\n"
               "                  per-candidate convergence series); "
               "written even when --deadline expires\n");
  return 2;
}

/// Validated integer flag value: the whole string must parse and land in
/// [min, max]. On failure names the flag, prints to stderr, returns
/// false.
bool parse_long(const char* flag, const char* text, long min, long max,
                long* out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < min || v > max) {
    std::fprintf(stderr, "invalid value '%s' for %s (expected integer in "
                 "[%ld, %ld])\n", text, flag, min, max);
    return false;
  }
  *out = v;
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Loads a design: benchmark name -> generic RTL netlist; *.v file ->
/// already-mapped netlist over the standard library.
std::optional<Netlist> load_design(const std::string& name, bool* is_mapped) {
  *is_mapped = false;
  if (ends_with(name, ".v")) {
    std::ifstream in(name);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", name.c_str());
      return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto nl = read_verilog(text.str(), osu018_library());
    if (!nl) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   nl.status().to_string().c_str());
      return std::nullopt;
    }
    *is_mapped = true;
    return std::move(*nl);
  }
  auto nl = build_benchmark(name);
  if (!nl) {
    std::fprintf(stderr, "%s (try 'dfmres list')\n",
                 nl.status().to_string().c_str());
    return std::nullopt;
  }
  return std::move(*nl);
}

void print_state(const char* label, const FlowState& s,
                 const FlowState* baseline) {
  const FlowState& ref = baseline ? *baseline : s;
  std::printf(
      "%-8s F=%-6zu U=%-5zu cov=%6.2f%%  T=%-4zu Smax=%-5zu (%.2f%% of F)  "
      "delay=%5.1f%% power=%5.1f%%\n",
      label, s.num_faults(), s.num_undetectable(), 100.0 * s.coverage(),
      s.atpg.tests.size(), s.smax(), 100.0 * s.smax_fraction(),
      100.0 * s.timing.critical_delay / ref.timing.critical_delay,
      100.0 * s.timing.total_power() / ref.timing.total_power());
}

std::optional<FlowState> run_flow(DesignFlow& flow, const Netlist& design,
                                  bool is_mapped) {
  if (!is_mapped) {
    auto state = flow.run_initial(design);
    if (!state) {
      std::fprintf(stderr, "%s\n", state.status().to_string().c_str());
      return std::nullopt;
    }
    return std::move(*state);
  }
  // Already mapped: place in a fresh floorplan and analyze.
  const Floorplan plan =
      make_floorplan(design, flow.options().utilization);
  Placement placement =
      global_place(design, plan, flow.options().place);
  auto state = flow.analyze(AnalysisRequest::placed(
      design, std::move(placement), /*generate_tests=*/true));
  if (!state) {
    std::fprintf(stderr, "%s\n", state.status().to_string().c_str());
    return std::nullopt;
  }
  return std::move(*state);
}

/// Run-failure exit that still writes --trace-out/--metrics-out (the
/// SIGINT/SIGTERM drain and deadline-expiry paths land here too, via
/// exit_code's 130 mapping).
int flush_and_fail(const CommonRunFlags& obs) {
  (void)obs.flush_observability();
  return exit_code(1);
}

int cmd_list() {
  for (const auto n : benchmark_names()) {
    std::printf("%.*s\n", static_cast<int>(n.size()), n.data());
  }
  return 0;
}

/// A matched-but-invalid job flag: report the registry's message and
/// exit 2 (same contract as the old hand-rolled parse_long/parse_double
/// paths, now shared with manifests and the wire protocol).
int report_flag_error(const Status& status) {
  std::fprintf(stderr, "%s\n", status.to_string().c_str());
  return 2;
}

int cmd_flow(int argc, char** argv) {
  if (argc < 1) return usage();
  // Registry-backed knobs: the value validation (type, range, message)
  // lives in the request.hpp field table, shared with manifest and wire
  // parsing.
  static constexpr CliFlagBinding kFlags[] = {
      {"--util", "utilization"},
      {"--threads", "threads"},
      {"--seed", "seed"},
  };
  std::string write_path;
  CampaignJobSpec job;
  job.mode = CampaignJobSpec::Mode::Flow;
  CommonRunFlags obs(/*with_robustness=*/false);
  for (int i = 1; i < argc; ++i) {
    const auto matched = match_job_flag(kFlags, argc, argv, &i, &job);
    if (!matched) return report_flag_error(matched.status());
    if (*matched) continue;
    if (!std::strcmp(argv[i], "--write") && i + 1 < argc) {
      write_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--cold")) {
      job.flow.warm_start = false;
    } else if (obs.match(argc, argv, &i)) {
      continue;
    } else {
      return usage();
    }
  }
  if (obs.failed) return 2;
  const FlowOptions& options = job.flow;
  obs.arm();
  const auto t0 = std::chrono::steady_clock::now();
  bool is_mapped = false;
  const auto design = load_design(argv[0], &is_mapped);
  if (!design) return flush_and_fail(obs);
  DesignFlow flow(osu018_library(), options);
  const auto state = run_flow(flow, *design, is_mapped);
  if (!state) return flush_and_fail(obs);
  std::printf("%s", describe(state->netlist).c_str());
  print_state("flow", *state, nullptr);
  std::printf("%s\n", state->atpg.counters.summary().c_str());
  std::printf("clusters:");
  for (std::size_t i = 0; i < state->clusters.clusters.size() && i < 10;
       ++i) {
    std::printf(" %zu", state->clusters.clusters[i].size());
  }
  std::printf("\n");
  if (!write_path.empty()) {
    std::ofstream out(write_path);
    write_verilog(state->netlist, out);
    std::printf("wrote %s\n", write_path.c_str());
  }
  MetricsRegistry::global().absorb(flow.atpg_totals());
  RunReport report("flow", argv[0]);
  report.set_threads(state->atpg.counters.threads_used);
  report.set_final(*state);
  report.set_atpg_totals(flow.atpg_totals());
  report.set_runtime_seconds(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
  if (!obs.flush(report)) return 1;
  return 0;
}

int cmd_resyn(int argc, char** argv) {
  if (argc < 1) return usage();
  static constexpr CliFlagBinding kFlags[] = {
      {"--q", "q_max"},
      {"--p1", "p1_pct"},
      {"--util", "utilization"},
      {"--threads", "threads"},
      {"--seed", "seed"},
  };
  std::string write_path;
  CampaignJobSpec job;
  job.mode = CampaignJobSpec::Mode::Resyn;
  CommonRunFlags obs(/*with_robustness=*/true);
  for (int i = 1; i < argc; ++i) {
    const auto matched = match_job_flag(kFlags, argc, argv, &i, &job);
    if (!matched) return report_flag_error(matched.status());
    if (*matched) continue;
    if (!std::strcmp(argv[i], "--write") && i + 1 < argc) {
      write_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--cold")) {
      job.flow.warm_start = false;
      job.resyn.dedup_candidates = false;
      job.resyn.parallel_ladder = false;
    } else if (obs.match(argc, argv, &i)) {
      continue;
    } else {
      return usage();
    }
  }
  if (obs.failed) return 2;
  ResynthesisOptions& options = job.resyn;
  const FlowOptions& flow_options = job.flow;
  options.checkpoint_dir = obs.checkpoint;
  options.resume = obs.resume;
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint DIR\n");
    return 2;
  }
  obs.arm();
  const auto t0 = std::chrono::steady_clock::now();
  bool is_mapped = false;
  const auto design = load_design(argv[0], &is_mapped);
  if (!design) return flush_and_fail(obs);
  DesignFlow flow(osu018_library(), flow_options);
  const auto original = run_flow(flow, *design, is_mapped);
  if (!original) return flush_and_fail(obs);
  print_state("orig", *original, nullptr);
  // The fingerprint depends on the seed tests, which the sign-off
  // regenerates — compute it now, on the state resynthesize() will see.
  const std::uint64_t fingerprint =
      resynthesis_fingerprint(flow, *original, options);
  const CancelToken cancel = obs.make_cancel();
  options.cancel = &cancel;
  auto result = resynthesize(flow, *original, options);
  if (!result) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return flush_and_fail(obs);
  }
  print_state("resyn", result->state, original ? &*original : nullptr);
  std::printf("%s\n", result->state.atpg.counters.summary().c_str());
  std::printf("largest accepted q: %d%%  runtime: %.1fs\n",
              result->report.q_used, result->report.runtime_seconds);
  if (result->report.deadline_expired) {
    std::printf("deadline expired: returned the best accepted design "
                "(%zu ladder rungs skipped)\n",
                result->report.rungs_skipped);
  }
  if (result->report.replayed_accepts > 0) {
    std::printf("resumed from checkpoint: %zu acceptance(s) replayed\n",
                result->report.replayed_accepts);
  }
  if (!write_path.empty()) {
    std::ofstream out(write_path);
    write_verilog(result->state.netlist, out);
    std::printf("wrote %s\n", write_path.c_str());
  }
  MetricsRegistry::global().absorb(flow.atpg_totals());
  publish_metrics(result->report, MetricsRegistry::global());
  RunReport report("resyn", argv[0]);
  report.set_threads(result->state.atpg.counters.threads_used);
  report.set_fingerprint(fingerprint);
  report.set_initial(*original);
  report.set_final(result->state);
  report.set_resynthesis(result->report);
  report.set_atpg_totals(flow.atpg_totals());
  report.set_runtime_seconds(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
  if (!obs.flush(report)) return 1;
  if (interrupted()) {
    std::fprintf(stderr,
                 "interrupted: kept the best accepted design so far\n");
  }
  return exit_code(0);
}

/// Forks one `dfmres work` child attached to `root`. Returns the pid or
/// -1 (reported). The child never returns from here.
pid_t spawn_worker(const std::string& root, int threads,
                   const std::string& heartbeat, const std::string& ttl,
                   long max_attempts, const std::string& snapshot_interval) {
  const std::string exe = self_exe_path();
  const std::string threads_text = std::to_string(threads);
  const std::string attempts_text = std::to_string(max_attempts);
  const pid_t pid = ::fork();
  if (pid != 0) {
    if (pid < 0) std::perror("fork");
    return pid;
  }
  std::vector<const char*> args = {exe.c_str(),    "work",
                                   "--campaign-root", root.c_str(),
                                   "--threads",    threads_text.c_str(),
                                   "--max-attempts", attempts_text.c_str()};
  if (!heartbeat.empty()) {
    args.push_back("--heartbeat");
    args.push_back(heartbeat.c_str());
  }
  if (!ttl.empty()) {
    args.push_back("--lease-ttl");
    args.push_back(ttl.c_str());
  }
  if (!snapshot_interval.empty()) {
    args.push_back("--snapshot-interval");
    args.push_back(snapshot_interval.c_str());
  }
  args.push_back(nullptr);
  ::execv(exe.c_str(), const_cast<char* const*>(args.data()));
  std::perror("execv");
  ::_exit(127);
}

/// The `--workers N` coordinator: initializes the campaign root, forks
/// N workers, respawns the ones that die abnormally (SIGKILL chaos,
/// crash points) within a bounded budget, and merges the shards if no
/// worker got to it. SIGINT/SIGTERM forwards to the workers and exits
/// 130 once they drain.
int run_worker_campaign(const CampaignManifest& manifest,
                        const std::string& root, int workers, int threads,
                        const std::string& heartbeat, const std::string& ttl,
                        long max_attempts,
                        const std::string& snapshot_interval,
                        const CommonRunFlags& obs) {
  if (Status s = init_campaign_root(manifest, root); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  std::vector<pid_t> live;
  for (int i = 0; i < workers; ++i) {
    const pid_t pid = spawn_worker(root, threads, heartbeat, ttl,
                                   max_attempts, snapshot_interval);
    if (pid > 0) live.push_back(pid);
  }
  if (live.empty()) return 1;
  // The first generation inherits DFMRES_CRASH_AFTER (the chaos hook);
  // respawned workers run clean so each armed crash site fires exactly
  // once and the campaign still converges deterministically.
  ::unsetenv("DFMRES_CRASH_AFTER");
  int respawn_budget = 4 + 4 * workers;
  bool forwarded_signal = false;
  int worker_failures = 0;
  while (!live.empty()) {
    if (interrupted() && !forwarded_signal) {
      forwarded_signal = true;
      for (const pid_t child : live) ::kill(child, SIGTERM);
    }
    int wstatus = 0;
    const pid_t pid = ::waitpid(-1, &wstatus, 0);
    if (pid < 0) {
      if (errno != EINTR) break;
      continue;  // interrupt forwarding happens at the top of the loop
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i] == pid) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    const bool clean = WIFEXITED(wstatus) && (WEXITSTATUS(wstatus) == 0 ||
                                              WEXITSTATUS(wstatus) == 130);
    if (clean || interrupted()) {
      if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0 &&
          WEXITSTATUS(wstatus) != 130) {
        ++worker_failures;
      }
      continue;
    }
    ++worker_failures;
    if (respawn_budget > 0) {
      --respawn_budget;
      if (WIFSIGNALED(wstatus)) {
        std::fprintf(stderr, "worker %d killed by signal %d; respawning\n",
                     static_cast<int>(pid), WTERMSIG(wstatus));
      } else {
        std::fprintf(stderr, "worker %d exited %d; respawning\n",
                     static_cast<int>(pid), WEXITSTATUS(wstatus));
      }
      const pid_t fresh = spawn_worker(root, threads, heartbeat, ttl,
                                       max_attempts, snapshot_interval);
      if (fresh > 0) live.push_back(fresh);
    } else {
      std::fprintf(stderr, "worker %d died and the respawn budget is "
                   "exhausted\n", static_cast<int>(pid));
    }
  }
  if (interrupted()) {
    std::fprintf(stderr, "interrupted: campaign root %s keeps its "
                 "checkpoints; rerun to resume\n", root.c_str());
    return 130;
  }
  // Normally the last worker out merges; cover the window where every
  // worker died between the final shard publish and the merge.
  const std::string report_path = root + "/report.json";
  if (!path_exists(report_path)) {
    const auto merged = merge_campaign_shards(root);
    if (!merged) {
      std::fprintf(stderr, "%s\n", merged.status().to_string().c_str());
      return 1;
    }
  }
  const auto report_text = read_file(report_path);
  if (!report_text) {
    std::fprintf(stderr, "%s\n", report_text.status().to_string().c_str());
    return 1;
  }
  // Campaign verdict straight from the merged document, so the exit
  // code matches what any consumer of report.json would conclude.
  long failed = 0;
  long skipped = 0;
  const auto doc = JsonValue::parse(*report_text);
  if (doc) {
    if (const JsonValue* v = doc->find("failed")) {
      failed = static_cast<long>(v->as_number());
    }
    if (const JsonValue* v = doc->find("skipped")) {
      skipped = static_cast<long>(v->as_number());
    }
    const auto print_count = [&](const char* key) {
      const JsonValue* v = doc->find(key);
      std::printf(" %s=%ld", key, v ? static_cast<long>(v->as_number()) : 0);
    };
    std::printf("campaign:");
    print_count("jobs_total");
    print_count("completed");
    print_count("expired");
    print_count("failed");
    print_count("skipped");
    std::printf("  (%d worker(s), %d failure(s) absorbed)\n", workers,
                worker_failures);
  }
  std::printf("wrote %s\n", report_path.c_str());
  if (!obs.report_out.empty() && obs.report_out != report_path) {
    if (Status s = write_file_atomic(obs.report_out, *report_text, "cli");
        !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("wrote %s\n", obs.report_out.c_str());
  }
  return failed == 0 && skipped == 0 ? 0 : 1;
}

/// Validated duration flag: keeps the original spelling (forwarded to
/// worker argv) after checking it parses.
bool take_duration(const char* flag, const char* text, std::string* out) {
  const auto d = parse_duration_spec(text);
  if (!d) {
    std::fprintf(stderr, "%s: %s\n", flag, d.status().to_string().c_str());
    return false;
  }
  *out = text;
  return true;
}

int cmd_campaign(int argc, char** argv) {
  std::string manifest_path;
  std::string emit_path;
  bool table2 = false;
  long workers = 0;
  long max_attempts = 3;
  std::string campaign_root;
  std::string heartbeat;
  std::string lease_ttl;
  std::string snapshot_interval;
  CampaignOptions options;
  CommonRunFlags obs(/*with_robustness=*/true, "--checkpoint-root");
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--manifest") && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--table2")) {
      table2 = true;
    } else if (!std::strcmp(argv[i], "--emit-table2") && i + 1 < argc) {
      emit_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      long jobs = 0;
      if (!parse_long("--jobs", argv[++i], 1, 1024, &jobs)) return 2;
      options.max_parallel_jobs = static_cast<int>(jobs);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      long threads = 0;
      if (!parse_long("--threads", argv[++i], 0, 1024, &threads)) return 2;
      options.total_threads = static_cast<int>(threads);
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      if (!parse_long("--workers", argv[++i], 1, 256, &workers)) return 2;
    } else if (!std::strcmp(argv[i], "--campaign-root") && i + 1 < argc) {
      campaign_root = argv[++i];
    } else if (!std::strcmp(argv[i], "--heartbeat") && i + 1 < argc) {
      if (!take_duration("--heartbeat", argv[++i], &heartbeat)) return 2;
    } else if (!std::strcmp(argv[i], "--lease-ttl") && i + 1 < argc) {
      if (!take_duration("--lease-ttl", argv[++i], &lease_ttl)) return 2;
    } else if (!std::strcmp(argv[i], "--snapshot-interval") && i + 1 < argc) {
      // "0" (disable) is meaningful here, unlike other duration flags.
      ++i;
      if (std::strcmp(argv[i], "0") != 0 &&
          !take_duration("--snapshot-interval", argv[i], &snapshot_interval)) {
        return 2;
      }
      snapshot_interval = argv[i];
    } else if (!std::strcmp(argv[i], "--max-attempts") && i + 1 < argc) {
      if (!parse_long("--max-attempts", argv[++i], 1, 100, &max_attempts)) {
        return 2;
      }
    } else if (obs.match(argc, argv, &i)) {
      continue;
    } else {
      return usage();
    }
  }
  if (obs.failed) return 2;
  if (!emit_path.empty()) {
    const Status s = table2_manifest().write_json(emit_path);
    if (!s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("wrote %s\n", emit_path.c_str());
    return 0;
  }
  if (table2 == !manifest_path.empty()) {
    std::fprintf(stderr,
                 "campaign needs exactly one of --manifest F or --table2\n");
    return 2;
  }
  if (obs.resume && obs.checkpoint.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-root DIR\n");
    return 2;
  }
  options.checkpoint_root = obs.checkpoint;
  options.resume = obs.resume;
  obs.arm();
  const auto manifest = table2 ? Expected<CampaignManifest>(table2_manifest())
                               : CampaignManifest::read(manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "%s\n", manifest.status().to_string().c_str());
    return 1;
  }
  if (workers > 0) {
    if (campaign_root.empty()) {
      std::fprintf(stderr, "--workers requires --campaign-root DIR\n");
      return 2;
    }
    return run_worker_campaign(*manifest, campaign_root,
                               static_cast<int>(workers),
                               options.total_threads, heartbeat, lease_ttl,
                               max_attempts, snapshot_interval, obs);
  }
  if (!campaign_root.empty()) {
    std::fprintf(stderr, "--campaign-root requires --workers N (use "
                 "'dfmres work' to attach to an existing root)\n");
    return 2;
  }
  const CancelToken cancel = obs.make_cancel();
  options.cancel = &cancel;
  const auto result = run_campaign(*manifest, options);
  if (!result) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return 1;
  }
  for (const auto& job : result->jobs) {
    if (job.skipped) {
      std::printf("%-16s skipped (%s)\n", job.name.c_str(),
                  job.status.to_string().c_str());
    } else if (!job.status.is_ok()) {
      std::printf("%-16s FAILED: %s\n", job.name.c_str(),
                  job.status.to_string().c_str());
    } else {
      const FlowState& s = *job.final_state;
      std::printf("%-16s U=%-5zu cov=%6.2f%%  Smax=%-5zu (%.2f%% of F)  "
                  "%.1fs%s\n",
                  job.name.c_str(), s.num_undetectable(),
                  100.0 * s.coverage(), s.smax(), 100.0 * s.smax_fraction(),
                  job.seconds,
                  job.deadline_expired ? "  (deadline expired)" : "");
    }
  }
  std::printf("campaign: %zu completed, %zu expired, %zu failed, %zu "
              "skipped in %.1fs (%d job(s) x %d lane(s))\n",
              result->completed, result->expired, result->failed,
              result->skipped, result->seconds, result->jobs_in_flight,
              result->inner_threads);
  result->merge_metrics_into(MetricsRegistry::global());
  if (!obs.flush(*result)) return 1;
  if (interrupted()) {
    std::fprintf(stderr, "interrupted: partial campaign report flushed\n");
  }
  return exit_code(result->failed == 0 && result->skipped == 0 ? 0 : 1);
}

/// `dfmres work`: one worker process attached to a campaign root.
int cmd_work(int argc, char** argv) {
  CampaignWorkerOptions options;
  long threads = 0;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--campaign-root") && i + 1 < argc) {
      options.campaign_root = argv[++i];
    } else if (!std::strcmp(argv[i], "--owner") && i + 1 < argc) {
      options.owner = argv[++i];
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      if (!parse_long("--threads", argv[++i], 0, 1024, &threads)) return 2;
      options.total_threads = static_cast<int>(threads);
    } else if (!std::strcmp(argv[i], "--heartbeat") && i + 1 < argc) {
      const auto d = parse_duration_spec(argv[++i]);
      if (!d) {
        std::fprintf(stderr, "--heartbeat: %s\n",
                     d.status().to_string().c_str());
        return 2;
      }
      options.heartbeat = *d;
    } else if (!std::strcmp(argv[i], "--lease-ttl") && i + 1 < argc) {
      const auto d = parse_duration_spec(argv[++i]);
      if (!d) {
        std::fprintf(stderr, "--lease-ttl: %s\n",
                     d.status().to_string().c_str());
        return 2;
      }
      options.lease_ttl = *d;
    } else if (!std::strcmp(argv[i], "--max-attempts") && i + 1 < argc) {
      long attempts = 0;
      if (!parse_long("--max-attempts", argv[++i], 1, 100, &attempts)) {
        return 2;
      }
      options.max_attempts = static_cast<int>(attempts);
    } else if (!std::strcmp(argv[i], "--snapshot-interval") && i + 1 < argc) {
      ++i;
      if (!std::strcmp(argv[i], "0")) {
        options.telemetry_interval = std::chrono::nanoseconds{0};
      } else {
        const auto d = parse_duration_spec(argv[i]);
        if (!d) {
          std::fprintf(stderr, "--snapshot-interval: %s\n",
                       d.status().to_string().c_str());
          return 2;
        }
        options.telemetry_interval = *d;
      }
    } else {
      return usage();
    }
  }
  if (options.campaign_root.empty()) {
    std::fprintf(stderr, "work requires --campaign-root DIR\n");
    return 2;
  }
  const CancelToken cancel(Deadline::never(), &g_signal_token);
  options.cancel = &cancel;
  const auto stats = run_campaign_worker(options);
  if (!stats) {
    std::fprintf(stderr, "%s\n", stats.status().to_string().c_str());
    return 1;
  }
  std::printf("worker: %d job(s), %d poisoned%s%s\n", stats->jobs_run,
              stats->jobs_poisoned, stats->merged ? ", merged the report" : "",
              stats->cancelled ? ", interrupted" : "");
  return stats->cancelled ? 130 : 0;
}

/// `dfmres status`: read-only observation of a campaign root. Polling
/// opens files and nothing else — no leases, no locks, no signals — so
/// watching a live campaign cannot slow it down or perturb its
/// scheduling.
int cmd_status(int argc, char** argv) {
  std::string root;
  bool follow = false;
  bool as_json = false;
  std::chrono::nanoseconds interval{std::chrono::seconds(2)};
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--campaign-root") && i + 1 < argc) {
      root = argv[++i];
    } else if (!std::strcmp(argv[i], "--follow")) {
      follow = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      as_json = true;
    } else if (!std::strcmp(argv[i], "--interval") && i + 1 < argc) {
      const auto d = parse_duration_spec(argv[++i]);
      if (!d) {
        std::fprintf(stderr, "--interval: %s\n",
                     d.status().to_string().c_str());
        return 2;
      }
      interval = *d;
    } else {
      return usage();
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "status requires --campaign-root DIR\n");
    return 2;
  }
  // One poller for the whole (possibly --follow) session: its per-owner
  // sequence cursors make every telemetry snapshot parse at most once
  // across polls, instead of the follow loop rereading the campaign's
  // entire telemetry history every tick.
  StatusPoller poller(root);
  for (;;) {
    const auto status = poller.poll();
    if (!status) {
      std::fprintf(stderr, "%s\n", status.status().to_string().c_str());
      return 1;
    }
    if (as_json) {
      std::fputs(render_status_json(*status).c_str(), stdout);
    } else {
      std::fputs(render_status_table(*status).c_str(), stdout);
    }
    std::fflush(stdout);
    if (!follow || status->report_written) return exit_code(0);
    if (!as_json) std::printf("\n");
    // Sleep in short slices so SIGINT ends the follow promptly.
    auto left = interval;
    while (left.count() > 0 && !interrupted()) {
      const auto slice =
          std::min<std::chrono::nanoseconds>(left,
                                             std::chrono::milliseconds(100));
      std::this_thread::sleep_for(slice);
      left -= slice;
    }
    if (interrupted()) return 130;
  }
}

/// `dfmres serve`: the always-on job service. Runs until a drain
/// request completes (exit 0) or SIGINT/SIGTERM (exit 130; everything
/// resumes on the next start).
int cmd_serve(int argc, char** argv) {
  ServeOptions options;
  for (int i = 0; i < argc; ++i) {
    long v = 0;
    if (!std::strcmp(argv[i], "--campaign-root") && i + 1 < argc) {
      options.campaign_root = argv[++i];
    } else if (!std::strcmp(argv[i], "--listen") && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      if (!parse_long("--workers", argv[++i], 1, 256, &v)) return 2;
      options.workers = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      if (!parse_long("--threads", argv[++i], 0, 1024, &v)) return 2;
      options.total_threads = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--max-inflight") && i + 1 < argc) {
      if (!parse_long("--max-inflight", argv[++i], 1, 1000000, &v)) return 2;
      options.max_inflight_jobs = static_cast<std::size_t>(v);
    } else if (!std::strcmp(argv[i], "--client-quota") && i + 1 < argc) {
      if (!parse_long("--client-quota", argv[++i], 1, 100000, &v)) return 2;
      options.max_client_campaigns = static_cast<std::size_t>(v);
    } else if (!std::strcmp(argv[i], "--queue-capacity") && i + 1 < argc) {
      if (!parse_long("--queue-capacity", argv[++i], 1, 1000000, &v)) {
        return 2;
      }
      options.queue_capacity = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  if (options.campaign_root.empty() || options.socket_path.empty()) {
    std::fprintf(stderr, "serve requires --campaign-root DIR and "
                 "--listen SOCKET\n");
    return 2;
  }
  const CancelToken cancel(Deadline::never(), &g_signal_token);
  options.cancel = &cancel;
  const auto stats = run_serve(options);
  if (!stats) {
    std::fprintf(stderr, "%s\n", stats.status().to_string().c_str());
    return 1;
  }
  std::printf("serve: %zu admitted, %zu recovered, %zu completed, %zu "
              "job(s) executed, %zu rejected, %zu malformed%s\n",
              stats->campaigns_admitted, stats->campaigns_recovered,
              stats->campaigns_completed, stats->jobs_executed,
              stats->requests_rejected, stats->requests_malformed,
              stats->drained ? ", drained" : ", interrupted");
  return stats->drained ? 0 : exit_code(1);
}

/// Connects to the serve daemon's Unix-domain socket. -1 = reported.
int connect_serve_socket(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Streams `dfmres-response-v1` lines from the daemon to stdout until
/// `decide` picks an exit code (or EOF / SIGINT). `decide` sees each
/// parsed event document; returning a negative code keeps streaming.
int stream_serve_events(int fd, bool print,
                        const std::function<int(const JsonValue&)>& decide) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        if (interrupted()) return 130;
        continue;
      }
      std::perror("read");
      return 1;
    }
    if (n == 0) {
      std::fprintf(stderr, "server closed the connection\n");
      return 1;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      if (print) std::printf("%s\n", line.c_str());
      const auto doc = JsonValue::parse(line);
      if (!doc) continue;  // torn / foreign line: keep streaming
      const int code = decide(*doc);
      if (code >= 0) return code;
    }
    buf.erase(0, start);
  }
}

[[nodiscard]] const char* event_name(const JsonValue& doc) {
  const JsonValue* ev = doc.find("event");
  return ev != nullptr && ev->is_string() ? ev->as_string().c_str() : "";
}

/// `dfmres request`: the reference protocol client. Sends exactly one
/// `dfmres-request-v1` line over the daemon socket and streams the
/// response events to stdout; scripts get the protocol without speaking
/// raw JSON (nc/socat remain equivalent).
int cmd_request(int argc, char** argv) {
  if (argc < 1) return usage();
  static constexpr CliFlagBinding kJobFlags[] = {
      {"--mode", "mode"},         {"--util", "utilization"},
      {"--threads", "threads"},   {"--seed", "seed"},
      {"--q", "q_max"},           {"--p1", "p1_pct"},
      {"--deadline", "deadline"},
  };
  std::string verb;
  std::string socket_path;
  std::string id;
  std::string manifest_path;
  std::string name;
  bool wait = false;
  CampaignJobSpec job;
  for (int i = 0; i < argc; ++i) {
    const auto matched = match_job_flag(kJobFlags, argc, argv, &i, &job);
    if (!matched) return report_flag_error(matched.status());
    if (*matched) continue;
    if (std::strncmp(argv[i], "--", 2) != 0 && verb.empty()) {
      verb = argv[i];
    } else if (!std::strcmp(argv[i], "--socket") && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--id") && i + 1 < argc) {
      id = argv[++i];
    } else if (!std::strcmp(argv[i], "--manifest") && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--design") && i + 1 < argc) {
      job.design = argv[++i];
    } else if (!std::strcmp(argv[i], "--name") && i + 1 < argc) {
      name = argv[++i];
    } else if (!std::strcmp(argv[i], "--wait")) {
      wait = true;
    } else {
      return usage();
    }
  }
  if (socket_path.empty() || verb.empty()) {
    std::fprintf(stderr, "request requires --socket PATH and a verb "
                 "(submit|submit-job|status|cancel|drain)\n");
    return 2;
  }

  Request request;
  if (verb == "submit") {
    if (id.empty() || manifest_path.empty()) {
      std::fprintf(stderr, "submit requires --id ID and --manifest F\n");
      return 2;
    }
    auto manifest = CampaignManifest::read(manifest_path);
    if (!manifest) {
      std::fprintf(stderr, "%s\n", manifest.status().to_string().c_str());
      return 1;
    }
    request.payload = CampaignRequest{id, std::move(*manifest)};
  } else if (verb == "submit-job") {
    if (id.empty() || job.design.empty()) {
      std::fprintf(stderr, "submit-job requires --id ID and --design D\n");
      return 2;
    }
    job.name = name.empty() ? id : name;
    request.payload = RunRequest{id, std::move(job)};
  } else if (verb == "status") {
    request.payload = StatusRequest{id};
  } else if (verb == "cancel") {
    if (id.empty()) {
      std::fprintf(stderr, "cancel requires --id ID\n");
      return 2;
    }
    request.payload = CancelRequest{id};
  } else if (verb == "drain") {
    request.payload = DrainRequest{};
  } else {
    return usage();
  }
  if (Status s = validate_campaign_id(request.id());
      !request.id().empty() && !s.is_ok()) {
    std::fprintf(stderr, "--id: %s\n", s.to_string().c_str());
    return 2;
  }

  const int fd = connect_serve_socket(socket_path);
  if (fd < 0) return 1;
  const std::string line = request_to_json(request) + "\n";
  for (std::size_t off = 0; off < line.size();) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::perror("write");
      ::close(fd);
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }

  // Each verb has one terminal event; a submit with --wait keeps the
  // stream open through job_done events until the campaign report.
  const int code = stream_serve_events(fd, true, [&](const JsonValue& doc) {
    const std::string event = event_name(doc);
    if (event == "rejected" || event == "error") return 1;
    if (verb == "drain") return event == "drained" ? 0 : -1;
    if (verb == "status") return event == "status" ? 0 : -1;
    if (verb == "cancel" || !wait) return event == "accepted" ? 0 : -1;
    return event == "report" ? 0 : -1;
  });
  ::close(fd);
  return code;
}

/// `dfmres trace merge`: the cross-process timeline.
int cmd_trace(int argc, char** argv) {
  if (argc < 1 || std::strcmp(argv[0], "merge") != 0) return usage();
  std::string root;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--campaign-root") && i + 1 < argc) {
      root = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else {
      return usage();
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "trace merge requires --campaign-root DIR\n");
    return 2;
  }
  const auto merged = merge_campaign_trace(root);
  if (!merged) {
    std::fprintf(stderr, "%s\n", merged.status().to_string().c_str());
    return 1;
  }
  if (out.empty()) {
    std::fputs(merged->c_str(), stdout);
    std::fputs("\n", stdout);
    return 0;
  }
  if (Status s = write_file_atomic(out, *merged, "trace"); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

/// `dfmres canon`: the canonical projection of a campaign report, for
/// byte-identity comparison across worker counts and kill schedules.
int cmd_canon(int argc, char** argv) {
  if (argc != 1) return usage();
  const auto text = read_file(argv[0]);
  if (!text) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 text.status().to_string().c_str());
    return 1;
  }
  const auto canon = canonical_campaign_report(*text);
  if (!canon) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 canon.status().to_string().c_str());
    return 1;
  }
  std::fputs(canon->c_str(), stdout);
  if (canon->empty() || canon->back() != '\n') std::fputs("\n", stdout);
  return 0;
}

int cmd_verilog(int argc, char** argv) {
  if (argc < 1) return usage();
  bool is_mapped = false;
  const auto design = load_design(argv[0], &is_mapped);
  if (!design) return 1;
  if (is_mapped) {
    write_verilog(*design, std::cout);
    return 0;
  }
  MapOptions mo;
  const auto glib = generic_library();
  const auto tlib = osu018_library();
  mo.fixed_map.emplace(glib->require("DFF").value(), tlib->require("DFFPOSX1"));
  mo.fixed_map.emplace(glib->require("FA").value(), tlib->require("FAX1"));
  mo.fixed_map.emplace(glib->require("HA").value(), tlib->require("HAX1"));
  const auto mapped = technology_map(*design, tlib, mo);
  if (!mapped) {
    std::fprintf(stderr, "%s\n", mapped.status().to_string().c_str());
    return 1;
  }
  write_verilog(*mapped, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  g_argv0 = argv[0];
  install_signal_handlers();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "flow") return cmd_flow(argc - 2, argv + 2);
  if (cmd == "resyn") return cmd_resyn(argc - 2, argv + 2);
  if (cmd == "campaign") return cmd_campaign(argc - 2, argv + 2);
  if (cmd == "work") return cmd_work(argc - 2, argv + 2);
  if (cmd == "status") return cmd_status(argc - 2, argv + 2);
  if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  if (cmd == "request") return cmd_request(argc - 2, argv + 2);
  if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
  if (cmd == "canon") return cmd_canon(argc - 2, argv + 2);
  if (cmd == "verilog") return cmd_verilog(argc - 2, argv + 2);
  return usage();
}
