// Quickstart: the full journey on a small circuit.
//
//   1. Build a technology-independent netlist (here: the ISCAS c17
//      classic plus a tiny adder so there is something for the DFM
//      analysis to find).
//   2. Run the implementation flow: technology mapping onto the
//      OSU018-style library, floorplan, placement, routing, DFM
//      guideline checking, ATPG.
//   3. Inspect the undetectable-fault clusters.
//   4. Run the paper's two-phase resynthesis procedure and compare.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/circuits/benchmarks.hpp"
#include "src/circuits/builder.hpp"
#include "src/core/resynthesis.hpp"
#include "src/library/osu018.hpp"
#include "src/netlist/stats.hpp"

using namespace dfmres;

int main() {
  // ---- 1. a small "RTL" design: c17 + an 8-bit ripple adder ----
  CircuitBuilder cb("quickstart");
  const auto a = cb.input_bus("a", 8);
  const auto b = cb.input_bus("b", 8);
  const NetId carry_in = cb.input("cin");
  auto [sum, carry] = cb.ripple_add(a, b, carry_in);
  cb.output_bus(cb.dff_bus(sum));
  cb.output(carry);
  cb.output(cb.xor_n(sum));  // parity
  Netlist rtl = cb.take();
  std::printf("RTL netlist:\n%s\n", describe(rtl).c_str());

  // ---- 2. implementation flow ----
  DesignFlow flow(osu018_library(), {});
  FlowState state = flow.run_initial(rtl).value();
  std::printf("mapped design:\n%s\n", describe(state.netlist).c_str());
  std::printf("faults: %zu total (%zu internal / %zu external)\n",
              state.num_faults(), state.universe.count_internal(),
              state.universe.count_external());
  std::printf("ATPG: %zu detected, %zu undetectable, %zu aborted, "
              "%zu tests, coverage %.2f%%\n",
              state.atpg.num_detected, state.atpg.num_undetectable,
              state.atpg.num_aborted, state.atpg.tests.size(),
              100.0 * state.coverage());

  // ---- 3. clusters of undetectable faults (paper Section II) ----
  std::printf("clusters of undetectable faults (largest first):");
  for (std::size_t i = 0;
       i < state.clusters.clusters.size() && i < 8; ++i) {
    std::printf(" %zu", state.clusters.clusters[i].size());
  }
  std::printf("\nS_max covers %zu gates (G_max) of %zu total\n",
              state.clusters.gmax.size(), state.netlist.num_live_gates());

  // ---- 4. resynthesis (paper Section III) ----
  ResynthesisOptions options;
  const ResynthesisResult result = resynthesize(flow, state, options).value();
  std::printf("\nafter resynthesis (largest accepted q = %d%%):\n",
              result.report.q_used);
  std::printf("  U: %zu -> %zu   Smax: %zu -> %zu   coverage: %.2f%% -> "
              "%.2f%%\n",
              state.num_undetectable(), result.state.num_undetectable(),
              state.smax(), result.state.smax(), 100.0 * state.coverage(),
              100.0 * result.state.coverage());
  std::printf("  delay: %.1f%%   power: %.1f%% of the original design\n",
              100.0 * result.state.timing.critical_delay /
                  state.timing.critical_delay,
              100.0 * result.state.timing.total_power() /
                  state.timing.total_power());
  std::printf("%s\n", describe(result.state.netlist).c_str());
  return 0;
}
