// Resynthesize one benchmark block end to end and print a Table-II style
// before/after row plus the accepted-iteration trace.
//
// Usage: ./build/examples/resynthesize_block [circuit] [q_max] [p1_pct]
//   circuit  one of the 12 benchmark names        (default sparc_tlu)
//   q_max    max % increase in delay/power, 0..5  (default 5)
//   p1_pct   phase-1 cluster target in percent    (default 1.0)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/circuits/benchmarks.hpp"
#include "src/core/resynthesis.hpp"
#include "src/library/osu018.hpp"

using namespace dfmres;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "sparc_tlu";
  ResynthesisOptions options;
  if (argc > 2) options.q_max = std::atoi(argv[2]);
  if (argc > 3) options.p1 = std::atof(argv[3]) / 100.0;

  bool known = false;
  for (const auto n : benchmark_names()) known |= n == name;
  if (!known) {
    std::printf("unknown circuit '%s'; choose one of:", name.c_str());
    for (const auto n : benchmark_names()) {
      std::printf(" %.*s", static_cast<int>(n.size()), n.data());
    }
    std::printf("\n");
    return 1;
  }

  DesignFlow flow(osu018_library(), {});
  const FlowState original = flow.run_initial(build_benchmark(name).value()).value();
  std::printf("%-12s %8s %6s %9s %5s %6s %10s %8s %8s\n", "", "F", "U",
              "Cov", "T", "Smax", "%Smax_all", "Delay", "Power");
  const auto print_state = [&](const char* label, const FlowState& s) {
    std::printf("%-12s %8zu %6zu %8.2f%% %5zu %6zu %9.2f%% %7.1f%% %7.1f%%\n",
                label, s.num_faults(), s.num_undetectable(),
                100.0 * s.coverage(), s.atpg.tests.size(), s.smax(),
                100.0 * s.smax_fraction(),
                100.0 * s.timing.critical_delay /
                    original.timing.critical_delay,
                100.0 * s.timing.total_power() /
                    original.timing.total_power());
  };
  print_state(name.c_str(), original);

  const ResynthesisResult result = resynthesize(flow, original, options).value();
  print_state("resyn", result.state);

  std::printf("\nlargest accepted q: %d%%   procedure runtime: %.1fs\n",
              result.report.q_used, result.report.runtime_seconds);
  std::printf("accepted iterations:\n");
  for (const auto& r : result.report.trace) {
    if (!r.accepted) continue;
    std::printf("  q=%d phase=%d  Smax=%-6zu U=%-6zu banned through %s%s\n",
                r.q, r.phase, r.smax, r.undetectable,
                r.banned_through.c_str(),
                r.via_backtracking ? "  (backtracking)" : "");
  }
  return 0;
}
