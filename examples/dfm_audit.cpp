// DFM audit: run the sign-off style guideline check on a benchmark block
// and print where the potential systematic defects are anticipated —
// per-guideline violation counts, fault-kind breakdown, per-cell-type
// internal fault pressure, and an ASCII die map of undetectable-fault
// density (the paper's Fig. 2 "clusters in certain areas" picture).
//
// Usage: ./build/examples/dfm_audit [circuit]     (default: sparc_exu)

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/circuits/benchmarks.hpp"
#include "src/core/flow.hpp"
#include "src/dfm/guidelines.hpp"
#include "src/library/osu018.hpp"

using namespace dfmres;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "sparc_exu";
  DesignFlow flow(osu018_library(), {});
  const FlowState state = flow.run_initial(build_benchmark(name).value()).value();

  std::printf("==== DFM audit: %s ====\n", name.c_str());
  std::printf("%zu gates, %zu nets, die %d rows x %d sites\n",
              state.netlist.num_live_gates(), state.netlist.num_live_nets(),
              state.placement.plan.rows, state.placement.plan.sites_per_row);

  // Fault-kind breakdown.
  const char* kind_names[] = {"stuck-at", "transition", "bridge",
                              "cell-aware"};
  std::size_t by_kind[4] = {}, undet_by_kind[4] = {};
  for (std::size_t i = 0; i < state.universe.size(); ++i) {
    const auto k = static_cast<int>(state.universe.faults[i].kind);
    ++by_kind[k];
    undet_by_kind[k] +=
        state.atpg.status[i] == FaultStatus::Undetectable;
  }
  std::printf("\nfaults by model:\n");
  for (int k = 0; k < 4; ++k) {
    std::printf("  %-11s F=%-7zu U=%zu\n", kind_names[k], by_kind[k],
                undet_by_kind[k]);
  }

  // Top guidelines by violation-induced faults.
  const auto per_guideline = state.universe.per_guideline(kNumGuidelines);
  std::vector<std::size_t> order(kNumGuidelines);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return per_guideline[x] > per_guideline[y];
  });
  std::printf("\ntop guidelines by fault count:\n");
  for (std::size_t i = 0; i < 10 && per_guideline[order[i]] > 0; ++i) {
    std::printf("  %-40s %zu\n", all_guidelines()[order[i]].name,
                per_guideline[order[i]]);
  }

  // Internal fault pressure per cell type.
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_cell;
  for (std::size_t i = 0; i < state.universe.size(); ++i) {
    const Fault& f = state.universe.faults[i];
    if (f.scope != FaultScope::Internal) continue;
    auto& [total, undet] = per_cell[state.netlist.cell_of(f.owner).name];
    ++total;
    undet += state.atpg.status[i] == FaultStatus::Undetectable;
  }
  std::printf("\ninternal faults by cell type (F / U):\n");
  for (const auto& [cell, counts] : per_cell) {
    std::printf("  %-10s %6zu / %zu\n", cell.c_str(), counts.first,
                counts.second);
  }

  // Die map of undetectable-fault density.
  const int gw = state.routing.grid_w, gh = state.routing.grid_h;
  std::vector<int> density(static_cast<std::size_t>(gw) * gh, 0);
  for (const std::uint32_t idx : state.clusters.undetectable) {
    const Fault& f = state.universe.faults[idx];
    for (GateId g : corresponding_gates(f, state.netlist)) {
      const auto& p = state.placement.of(g);
      if (!p.valid()) continue;
      const int gx = std::min(gw - 1, p.x / state.routing.options.gcell_sites);
      const int gy = std::min(gh - 1, p.y / state.routing.options.gcell_rows);
      ++density[static_cast<std::size_t>(gy) * gw + gx];
    }
  }
  const int peak = *std::max_element(density.begin(), density.end());
  std::printf("\nundetectable-fault density map (peak=%d per gcell):\n",
              peak);
  const char* shades = " .:-=+*#%@";
  for (int y = gh - 1; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < gw; ++x) {
      const int d = density[static_cast<std::size_t>(y) * gw + x];
      const int level =
          peak == 0 ? 0 : std::min(9, d * 9 / std::max(1, peak));
      std::printf("%c", shades[level]);
    }
    std::printf("\n");
  }
  std::printf("\nS_max = %zu faults over %zu gates; %zu clusters total\n",
              state.smax(), state.clusters.gmax.size(),
              state.clusters.clusters.size());
  return 0;
}
