// Library report: for every cell of the OSU018-style library, print its
// electrical figures, transistor count, the DFM defect sites selected as
// guideline violations, and the extracted UDFM — including the
// cell-level-undetectable (charge-sharing masked / drive-marginal)
// defects that drive the whole resynthesis story.
//
// Usage: ./build/examples/cell_library_report

#include <cstdio>

#include "src/dfm/checker.hpp"
#include "src/faults/udfm_map.hpp"
#include "src/library/osu018.hpp"

using namespace dfmres;

namespace {
const char* kind_name(DefectKind k) {
  switch (k) {
    case DefectKind::TransistorStuckOpen: return "stuck-open";
    case DefectKind::TransistorStuckOn: return "stuck-on";
    case DefectKind::PinOpen: return "pin-open";
    case DefectKind::NodeShortToVdd: return "short-vdd";
    case DefectKind::NodeShortToGnd: return "short-gnd";
    case DefectKind::NodeBridge: return "bridge";
    case DefectKind::DriveFingerOpen: return "finger-open";
  }
  return "?";
}
}  // namespace

int main() {
  const auto lib = osu018_library();
  const UdfmMap udfm(*lib);

  std::printf("%-9s %5s %6s %8s %6s %9s %9s %7s\n", "cell", "area",
              "delay", "transist", "sites", "selected", "untestbl",
              "2patt");
  for (std::uint32_t i = 0; i < lib->num_cells(); ++i) {
    const CellId id{i};
    const CellSpec& c = lib->cell(id);
    if (c.sequential) {
      std::printf("%-9s %5.0f %6.3f %8s (sequential; no cell-aware model)\n",
                  c.name.c_str(), c.area_um2, c.intrinsic_delay, "-");
      continue;
    }
    const CellUdfm& cu = udfm.of(id);
    std::size_t selected = 0, untestable = 0, two_pattern = 0;
    for (std::size_t d = 0; d < cu.faults.size(); ++d) {
      if (!cell_defect_selected(c.name, d, c.network.transistors.size(),
                                cu.faults[d].defect.kind,
                                cu.faults[d].patterns.empty())) {
        continue;
      }
      ++selected;
      if (cu.faults[d].patterns.empty()) ++untestable;
      for (const auto& p : cu.faults[d].patterns) {
        if (p.has_prev) {
          ++two_pattern;
          break;
        }
      }
    }
    std::printf("%-9s %5.0f %6.3f %8zu %6zu %9zu %9zu %7zu\n",
                c.name.c_str(), c.area_um2, c.intrinsic_delay,
                c.network.transistors.size(), cu.num_faults(), selected,
                untestable, two_pattern);
  }

  std::printf("\ncell-level-undetectable defect sites (the faults only "
              "resynthesis can remove):\n");
  for (std::uint32_t i = 0; i < lib->num_cells(); ++i) {
    const CellId id{i};
    const CellSpec& c = lib->cell(id);
    if (c.sequential) continue;
    const CellUdfm& cu = udfm.of(id);
    for (std::size_t d = 0; d < cu.faults.size(); ++d) {
      if (!cu.faults[d].patterns.empty()) continue;
      if (!cell_defect_selected(c.name, d, c.network.transistors.size(),
                                cu.faults[d].defect.kind, true)) {
        continue;
      }
      std::printf("  %-9s site %-3zu %-12s (device/node %u)\n",
                  c.name.c_str(), d, kind_name(cu.faults[d].defect.kind),
                  cu.faults[d].defect.a);
    }
  }
  return 0;
}
