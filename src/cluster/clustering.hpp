#pragma once

#include <span>
#include <vector>

#include "src/atpg/engine.hpp"
#include "src/faults/fault.hpp"
#include "src/netlist/netlist.hpp"

namespace dfmres {

/// Partition of the undetectable faults into subsets of structurally
/// adjacent faults (paper Section II): a gate *corresponds* to a fault if
/// the fault is inside it (internal) or on its input/output nets
/// (external); two gates are adjacent if one drives the other; two faults
/// are adjacent if they share a gate or sit on adjacent gates. Subsets
/// are merged to closure, exactly the S_0, S_1, ... construction.
struct ClusterAnalysis {
  /// Indices into the fault universe of all undetectable faults.
  std::vector<std::uint32_t> undetectable;
  /// Clusters as lists of positions into `undetectable`, largest first.
  std::vector<std::vector<std::uint32_t>> clusters;
  /// Gates corresponding to at least one undetectable fault (G_U).
  std::vector<GateId> gates_u;
  /// Gates corresponding to the faults of the largest cluster (G_max).
  std::vector<GateId> gmax;

  [[nodiscard]] std::size_t smax() const {
    return clusters.empty() ? 0 : clusters.front().size();
  }
  /// Undetectable *internal* faults inside the largest cluster (Smax_I).
  [[nodiscard]] std::size_t smax_internal(const FaultUniverse& universe) const;
};

[[nodiscard]] ClusterAnalysis cluster_undetectable(
    const Netlist& nl, const FaultUniverse& universe,
    std::span<const FaultStatus> status);

}  // namespace dfmres
