#include "src/cluster/clustering.hpp"

#include <algorithm>
#include <unordered_set>

#include "src/util/union_find.hpp"

namespace dfmres {

std::size_t ClusterAnalysis::smax_internal(
    const FaultUniverse& universe) const {
  if (clusters.empty()) return 0;
  std::size_t count = 0;
  for (const std::uint32_t pos : clusters.front()) {
    if (universe.faults[undetectable[pos]].scope == FaultScope::Internal) {
      ++count;
    }
  }
  return count;
}

ClusterAnalysis cluster_undetectable(const Netlist& nl,
                                     const FaultUniverse& universe,
                                     std::span<const FaultStatus> status) {
  ClusterAnalysis out;
  for (std::uint32_t i = 0; i < universe.size(); ++i) {
    if (status[i] == FaultStatus::Undetectable) out.undetectable.push_back(i);
  }

  // Per-gate list of undetectable-fault positions.
  std::vector<std::vector<std::uint32_t>> faults_of_gate(nl.gate_capacity());
  for (std::uint32_t pos = 0; pos < out.undetectable.size(); ++pos) {
    const Fault& f = universe.faults[out.undetectable[pos]];
    for (GateId g : corresponding_gates(f, nl)) {
      faults_of_gate[g.value()].push_back(pos);
    }
  }

  // Union faults sharing a gate, then faults on driver/sink adjacent gates.
  UnionFind uf(out.undetectable.size());
  for (std::uint32_t gs = 0; gs < faults_of_gate.size(); ++gs) {
    const auto& list = faults_of_gate[gs];
    for (std::size_t i = 1; i < list.size(); ++i) uf.merge(list[0], list[i]);
  }
  for (std::uint32_t gs = 0; gs < faults_of_gate.size(); ++gs) {
    if (faults_of_gate[gs].empty() || !nl.gate_alive(GateId{gs})) continue;
    for (NetId outnet : nl.gate(GateId{gs}).outputs) {
      for (const PinRef& sink : nl.net(outnet).sinks) {
        const auto& other = faults_of_gate[sink.gate.value()];
        if (!other.empty()) uf.merge(faults_of_gate[gs][0], other[0]);
      }
    }
  }

  // Materialize clusters, largest first.
  std::vector<std::vector<std::uint32_t>> by_root(out.undetectable.size());
  for (std::uint32_t pos = 0; pos < out.undetectable.size(); ++pos) {
    by_root[uf.find(pos)].push_back(pos);
  }
  for (auto& cluster : by_root) {
    if (!cluster.empty()) out.clusters.push_back(std::move(cluster));
  }
  std::sort(out.clusters.begin(), out.clusters.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });

  // G_U and G_max.
  std::unordered_set<std::uint32_t> gu;
  for (std::uint32_t gs = 0; gs < faults_of_gate.size(); ++gs) {
    if (!faults_of_gate[gs].empty()) gu.insert(gs);
  }
  out.gates_u.reserve(gu.size());
  for (std::uint32_t gs : gu) out.gates_u.emplace_back(gs);
  std::sort(out.gates_u.begin(), out.gates_u.end());

  if (!out.clusters.empty()) {
    std::unordered_set<std::uint32_t> gmax_set;
    for (const std::uint32_t pos : out.clusters.front()) {
      const Fault& f = universe.faults[out.undetectable[pos]];
      for (GateId g : corresponding_gates(f, nl)) gmax_set.insert(g.value());
    }
    for (std::uint32_t gs : gmax_set) out.gmax.emplace_back(gs);
    std::sort(out.gmax.begin(), out.gmax.end());
  }
  return out;
}

}  // namespace dfmres
