#include <algorithm>

#include "src/faults/fault.hpp"
#include "src/faults/udfm_map.hpp"
#include "src/netlist/netlist.hpp"

namespace dfmres {

std::vector<GateId> corresponding_gates(const Fault& fault,
                                        const Netlist& nl) {
  std::vector<GateId> gates;
  const auto add_net_gates = [&](NetId net) {
    if (!net.valid() || !nl.net_alive(net)) return;
    const auto& n = nl.net(net);
    if (n.has_gate_driver()) gates.push_back(n.driver_gate);
    for (const PinRef& sink : n.sinks) gates.push_back(sink.gate);
  };
  if (fault.scope == FaultScope::Internal) {
    gates.push_back(fault.owner);  // internal faults affect exactly one gate
  } else {
    add_net_gates(fault.victim);
    if (fault.kind == FaultKind::Bridge) add_net_gates(fault.aggressor);
  }
  std::sort(gates.begin(), gates.end());
  gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
  return gates;
}

std::size_t FaultUniverse::count_internal() const {
  return static_cast<std::size_t>(
      std::count_if(faults.begin(), faults.end(), [](const Fault& f) {
        return f.scope == FaultScope::Internal;
      }));
}

std::size_t FaultUniverse::count_external() const {
  return faults.size() - count_internal();
}

std::vector<std::size_t> FaultUniverse::per_guideline(
    std::size_t num_guidelines) const {
  std::vector<std::size_t> counts(num_guidelines, 0);
  for (const Fault& f : faults) {
    if (f.guideline < num_guidelines) ++counts[f.guideline];
  }
  return counts;
}

UdfmMap::UdfmMap(const Library& lib) {
  udfm_.reserve(lib.num_cells());
  for (const CellSpec& cell : lib) udfm_.push_back(extract_cell_udfm(cell));
}

}  // namespace dfmres
