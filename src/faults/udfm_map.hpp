#pragma once

#include <vector>

#include "src/library/library.hpp"
#include "src/switchlevel/udfm.hpp"

namespace dfmres {

/// Per-cell-type internal fault universes for a whole library, extracted
/// once (switch-level simulation is deterministic, so every instance of a
/// cell shares the same CellUdfm — paper Section I).
class UdfmMap {
 public:
  explicit UdfmMap(const Library& lib);

  [[nodiscard]] const CellUdfm& of(CellId cell) const {
    return udfm_[cell.value()];
  }

 private:
  std::vector<CellUdfm> udfm_;
};

}  // namespace dfmres
