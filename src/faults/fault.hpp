#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/ids.hpp"

namespace dfmres {

class Netlist;

/// Logic fault models the DFM violations translate to (paper Section II):
/// stuck-at and transition faults for opens, 4-way dominant bridges for
/// shorts between nets, and UDFM cell-aware faults for defects inside
/// standard cells.
enum class FaultKind : std::uint8_t { StuckAt, Transition, Bridge, CellAware };

enum class FaultScope : std::uint8_t { Internal, External };

/// Dominant bridge flavor: the aggressor forces the victim when it holds
/// the dominant value (wired-AND: 0 dominates; wired-OR: 1 dominates).
enum class BridgeType : std::uint8_t { DomAnd, DomOr };

struct Fault {
  FaultKind kind = FaultKind::StuckAt;
  FaultScope scope = FaultScope::External;
  /// StuckAt/Transition/Bridge: the faulted net. CellAware: the first
  /// output net of the owning gate (anchor for clustering; per-pattern
  /// victims come from the UDFM).
  NetId victim;
  /// StuckAt: stuck value. Transition: the value the net is stuck at
  /// during the failing transition (0 = slow-to-rise). Bridge: unused.
  bool value = false;
  NetId aggressor;                       ///< Bridge only
  BridgeType bridge_type = BridgeType::DomAnd;
  GateId owner;                          ///< CellAware: owning gate
  std::uint8_t cell_output = 0;          ///< CellAware anchor output pin
  std::uint32_t udfm_index = 0;          ///< CellAware: index into CellUdfm
  std::uint16_t guideline = 0;           ///< producing DFM guideline id

  /// Identity for status caching: everything that determines
  /// detectability (guideline id excluded — the same logical fault can be
  /// flagged by several guidelines).
  struct Key {
    std::uint8_t kind, bridge_type;
    std::uint32_t victim, aggressor, owner, udfm_index;
    bool value;

    friend bool operator==(const Key&, const Key&) = default;
  };
  [[nodiscard]] Key key() const {
    return {static_cast<std::uint8_t>(kind),
            static_cast<std::uint8_t>(bridge_type),
            victim.value(),
            aggressor.value(),
            owner.value(),
            udfm_index,
            value};
  }
};

/// Gates that *correspond* to a fault (paper Section II): the owner for
/// an internal fault; the driver and sinks of the victim net (and the
/// aggressor net for bridges) for an external fault.
[[nodiscard]] std::vector<GateId> corresponding_gates(const Fault& fault,
                                                      const Netlist& nl);

struct FaultKeyHash {
  std::size_t operator()(const Fault::Key& k) const {
    std::size_t h = k.kind * 0x9e3779b97f4a7c15ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    };
    mix(k.bridge_type);
    mix(k.victim);
    mix(k.aggressor);
    mix(k.owner);
    mix(k.udfm_index);
    mix(k.value);
    return h;
  }
};

/// The complete DFM fault universe of one placed-and-routed netlist.
struct FaultUniverse {
  std::vector<Fault> faults;

  [[nodiscard]] std::size_t size() const { return faults.size(); }
  [[nodiscard]] std::size_t count_internal() const;
  [[nodiscard]] std::size_t count_external() const;
  /// Faults per guideline id (index = guideline id).
  [[nodiscard]] std::vector<std::size_t> per_guideline(
      std::size_t num_guidelines) const;
};

}  // namespace dfmres

namespace std {
template <>
struct hash<dfmres::Fault::Key> {
  size_t operator()(const dfmres::Fault::Key& k) const {
    return dfmres::FaultKeyHash{}(k);
  }
};
}  // namespace std
