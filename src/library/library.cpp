#include "src/library/library.hpp"

#include <cassert>

#include "src/util/status.hpp"

namespace dfmres {

CellId Library::add(CellSpec spec) {
  assert(spec.num_inputs <= kMaxCellInputs);
  assert(spec.num_outputs >= 1 && spec.num_outputs <= kMaxCellOutputs);
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  auto [it, inserted] = by_name_.emplace(spec.name, id);
  if (!inserted) {
    // Libraries are assembled from compiled-in specs; a duplicate name is
    // a defect in that table, not a runtime condition.
    fatal_invariant("duplicate cell name '%s' in library '%s'",
                    spec.name.c_str(), name_.c_str());
  }
  cells_.push_back(std::move(spec));
  return id;
}

std::optional<CellId> Library::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

Expected<CellId> Library::lookup(std::string_view name) const {
  if (const auto id = find(name)) return *id;
  return make_status(StatusCode::kNotFound,
                     "cell '%s' not found in library '%s' (%zu cells)",
                     std::string(name).c_str(), name_.c_str(), cells_.size());
}

CellId Library::require(std::string_view name) const {
  auto id = find(name);
  if (!id) {
    fatal_invariant("cell '%s' not found in library '%s'",
                    std::string(name).c_str(), name_.c_str());
  }
  return *id;
}

}  // namespace dfmres
