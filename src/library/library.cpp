#include "src/library/library.hpp"

#include <cassert>
#include <cstdlib>

#include "src/util/logging.hpp"

namespace dfmres {

CellId Library::add(CellSpec spec) {
  assert(spec.num_inputs <= kMaxCellInputs);
  assert(spec.num_outputs >= 1 && spec.num_outputs <= kMaxCellOutputs);
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  auto [it, inserted] = by_name_.emplace(spec.name, id);
  if (!inserted) {
    log_error("duplicate cell name '%s' in library '%s'", spec.name.c_str(), name_.c_str());
    std::abort();
  }
  cells_.push_back(std::move(spec));
  return id;
}

std::optional<CellId> Library::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

CellId Library::require(std::string_view name) const {
  auto id = find(name);
  if (!id) {
    log_error("cell '%s' not found in library '%s'", std::string(name).c_str(), name_.c_str());
    std::abort();
  }
  return *id;
}

}  // namespace dfmres
