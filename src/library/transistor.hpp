#pragma once

#include <cstdint>
#include <vector>

namespace dfmres {

/// Transistor-level (switch-level) model of a standard cell.
///
/// Nodes are small integers. Node 0 is GND and node 1 is VDD. Input pins,
/// output pins and internal nodes occupy the remaining indices. Transistor
/// gates may be driven by input pins *or* internal nodes (cells such as
/// MUX2X1 and XOR2X1 contain internal inverters).
struct Transistor {
  bool is_pmos = false;
  std::uint16_t gate_node = 0;
  std::uint16_t source_node = 0;
  std::uint16_t drain_node = 0;
};

struct TransistorNetwork {
  static constexpr std::uint16_t kGnd = 0;
  static constexpr std::uint16_t kVdd = 1;

  std::uint16_t num_nodes = 2;  // including GND/VDD
  std::vector<std::uint16_t> input_nodes;   // node index per cell input pin
  std::vector<std::uint16_t> output_nodes;  // node index per cell output pin
  std::vector<Transistor> transistors;

  [[nodiscard]] bool empty() const { return transistors.empty(); }

  std::uint16_t new_node() { return num_nodes++; }

  void add_nmos(std::uint16_t gate, std::uint16_t source, std::uint16_t drain) {
    transistors.push_back({false, gate, source, drain});
  }
  void add_pmos(std::uint16_t gate, std::uint16_t source, std::uint16_t drain) {
    transistors.push_back({true, gate, source, drain});
  }
};

}  // namespace dfmres
