#include "src/library/osu018.hpp"

#include <cmath>
#include <span>
#include <utility>

namespace dfmres {

namespace {

using u16 = std::uint16_t;

/// Adds a chain of series transistors from `from` to `to`, one per gate
/// node, creating internal nodes between them. Returns nothing; the chain
/// conducts when all gates are active.
void series(TransistorNetwork& nw, bool pmos, u16 from,
            std::span<const u16> gates, u16 to) {
  u16 prev = from;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const u16 next = (i + 1 == gates.size()) ? to : nw.new_node();
    if (pmos) {
      nw.add_pmos(gates[i], prev, next);
    } else {
      nw.add_nmos(gates[i], prev, next);
    }
    prev = next;
  }
}

/// Adds one transistor per gate node, all in parallel between from/to.
void parallel(TransistorNetwork& nw, bool pmos, u16 from,
              std::span<const u16> gates, u16 to) {
  for (u16 g : gates) {
    if (pmos) {
      nw.add_pmos(g, from, to);
    } else {
      nw.add_nmos(g, from, to);
    }
  }
}

constexpr u16 kGnd = TransistorNetwork::kGnd;
constexpr u16 kVdd = TransistorNetwork::kVdd;

/// Creates a network with n input nodes and one (or more later) outputs.
TransistorNetwork make_network(int num_inputs) {
  TransistorNetwork nw;
  for (int i = 0; i < num_inputs; ++i) nw.input_nodes.push_back(nw.new_node());
  return nw;
}

/// Static CMOS inverter from `in` onto a fresh node; returns that node.
u16 add_inverter(TransistorNetwork& nw, u16 in) {
  const u16 out = nw.new_node();
  nw.add_pmos(in, kVdd, out);
  nw.add_nmos(in, kGnd, out);
  return out;
}

struct Electrical {
  double area, delay, dres, icap, leak;
  int fingers;
};

CellSpec comb_cell(std::string name, int num_inputs,
                   std::uint64_t tt, Electrical e,
                   TransistorNetwork nw,
                   std::vector<std::string> input_names) {
  CellSpec c;
  c.name = std::move(name);
  c.num_inputs = static_cast<std::uint8_t>(num_inputs);
  c.num_outputs = 1;
  c.function = {tt, 0};
  c.area_um2 = e.area;
  c.width_sites = std::max(1, static_cast<int>(std::lround(e.area / 6.5)));
  c.intrinsic_delay = e.delay;
  c.drive_res = e.dres;
  c.input_cap = e.icap;
  c.leakage = e.leak;
  c.sw_energy = e.area / 13.0;
  c.drive_fingers = e.fingers;
  c.network = std::move(nw);
  c.input_names = std::move(input_names);
  c.output_names = {"Y"};
  return c;
}

TransistorNetwork nand_network(int n) {
  TransistorNetwork nw = make_network(n);
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  parallel(nw, /*pmos=*/true, kVdd, nw.input_nodes, y);
  series(nw, /*pmos=*/false, y, nw.input_nodes, kGnd);
  return nw;
}

TransistorNetwork nor_network(int n) {
  TransistorNetwork nw = make_network(n);
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  series(nw, /*pmos=*/true, kVdd, nw.input_nodes, y);
  parallel(nw, /*pmos=*/false, y, nw.input_nodes, kGnd);
  return nw;
}

TransistorNetwork inv_network() {
  TransistorNetwork nw = make_network(1);
  nw.output_nodes = {add_inverter(nw, nw.input_nodes[0])};
  return nw;
}

TransistorNetwork buf_network() {
  TransistorNetwork nw = make_network(1);
  const u16 mid = add_inverter(nw, nw.input_nodes[0]);
  nw.output_nodes = {add_inverter(nw, mid)};
  return nw;
}

/// NAND/NOR followed by an inverter (AND2X2 / OR2X2).
TransistorNetwork and_or_network(int n, bool is_and) {
  TransistorNetwork nw = is_and ? nand_network(n) : nor_network(n);
  const u16 inner = nw.output_nodes[0];
  nw.output_nodes = {add_inverter(nw, inner)};
  return nw;
}

/// AOI21: Y = !(A*B + C).  Inputs A,B,C = pins 0,1,2.
TransistorNetwork aoi21_network() {
  TransistorNetwork nw = make_network(3);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1],
            c = nw.input_nodes[2];
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  // Pull-down: series(A,B) parallel with C.
  const std::array<u16, 2> ab{a, b};
  series(nw, false, y, ab, kGnd);
  nw.add_nmos(c, y, kGnd);
  // Pull-up: C in series with parallel(A,B).
  const u16 mid = nw.new_node();
  nw.add_pmos(c, kVdd, mid);
  parallel(nw, true, mid, ab, y);
  return nw;
}

/// AOI22: Y = !(A*B + C*D). Pins A,B,C,D = 0..3, but the gate nodes may be
/// internal (used to build XOR/XNOR/MUX with internal inverters).
void aoi22_into(TransistorNetwork& nw, u16 a, u16 b, u16 c, u16 d, u16 y) {
  const std::array<u16, 2> ab{a, b}, cd{c, d};
  series(nw, false, y, ab, kGnd);
  series(nw, false, y, cd, kGnd);
  const u16 mid = nw.new_node();
  parallel(nw, true, kVdd, ab, mid);
  parallel(nw, true, mid, cd, y);
}

TransistorNetwork aoi22_network() {
  TransistorNetwork nw = make_network(4);
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  aoi22_into(nw, nw.input_nodes[0], nw.input_nodes[1], nw.input_nodes[2],
             nw.input_nodes[3], y);
  return nw;
}

/// OAI21: Y = !((A+B)*C).
TransistorNetwork oai21_network() {
  TransistorNetwork nw = make_network(3);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1],
            c = nw.input_nodes[2];
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  const std::array<u16, 2> ab{a, b};
  // Pull-down: parallel(A,B) in series with C.
  const u16 mid = nw.new_node();
  parallel(nw, false, y, ab, mid);
  nw.add_nmos(c, mid, kGnd);
  // Pull-up: series(A,B) parallel with C, between VDD and Y.
  series(nw, true, kVdd, ab, y);
  nw.add_pmos(c, kVdd, y);
  return nw;
}

/// OAI22: Y = !((A+B)*(C+D)).
TransistorNetwork oai22_network() {
  TransistorNetwork nw = make_network(4);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1],
            c = nw.input_nodes[2], d = nw.input_nodes[3];
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  const std::array<u16, 2> ab{a, b}, cd{c, d};
  const u16 mid = nw.new_node();
  parallel(nw, false, y, ab, mid);
  parallel(nw, false, mid, cd, kGnd);
  series(nw, true, kVdd, ab, y);
  series(nw, true, kVdd, cd, y);
  return nw;
}

/// XOR2: transmission-gate style (10T): Y = A when B=0 (TG1), !A when
/// B=1 (TG2). Unlike the AOI-core XOR inside HAX1/FAX1/XNOR2X1, every
/// open defect here degrades a TG to a single device, which the
/// strength-aware switch model resolves to X — so the standalone XOR has
/// no charge-sharing-masked (cell-level undetectable) defects. This is
/// the cheap replacement rung the resynthesis procedure climbs to.
TransistorNetwork xor2_network() {
  TransistorNetwork nw = make_network(2);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1];
  const u16 na = add_inverter(nw, a);
  const u16 nb = add_inverter(nw, b);
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  // TG1 passes A while B=0.
  nw.add_nmos(nb, a, y);
  nw.add_pmos(b, a, y);
  // TG2 passes !A while B=1.
  nw.add_nmos(b, na, y);
  nw.add_pmos(nb, na, y);
  return nw;
}

/// XNOR2: Y = !(A^B) = !(A*nB + nA*B).
TransistorNetwork xnor2_network() {
  TransistorNetwork nw = make_network(2);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1];
  const u16 na = add_inverter(nw, a);
  const u16 nb = add_inverter(nw, b);
  const u16 y = nw.new_node();
  nw.output_nodes = {y};
  aoi22_into(nw, a, nb, na, b, y);
  return nw;
}

/// MUX2: Y = S ? A : B. Pins A,B,S = 0,1,2.
/// invS + AOI22(A,S,B,nS) + output inverter: !( !(A*S + B*nS) ).
TransistorNetwork mux2_network() {
  TransistorNetwork nw = make_network(3);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1],
            s = nw.input_nodes[2];
  const u16 ns = add_inverter(nw, s);
  const u16 m = nw.new_node();
  aoi22_into(nw, a, s, b, ns, m);
  nw.output_nodes = {add_inverter(nw, m)};
  return nw;
}

/// Half adder: YC = A*B, YS = A^B. Outputs [YC, YS].
TransistorNetwork ha_network() {
  TransistorNetwork nw = make_network(2);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1];
  // Carry: NAND2 + inverter.
  const u16 nc = nw.new_node();
  const std::array<u16, 2> ab{a, b};
  parallel(nw, true, kVdd, ab, nc);
  series(nw, false, nc, ab, kGnd);
  const u16 yc = add_inverter(nw, nc);
  // Sum: XOR via inverters + AOI22.
  const u16 na = add_inverter(nw, a);
  const u16 nb = add_inverter(nw, b);
  const u16 ys = nw.new_node();
  aoi22_into(nw, a, b, na, nb, ys);
  nw.output_nodes = {yc, ys};
  return nw;
}

/// Full adder (mirror adder): YC = MAJ(A,B,C), YS = A^B^C.
/// Outputs [YC, YS].
TransistorNetwork fa_network() {
  TransistorNetwork nw = make_network(3);
  const u16 a = nw.input_nodes[0], b = nw.input_nodes[1],
            c = nw.input_nodes[2];
  const std::array<u16, 2> ab{a, b};
  const std::array<u16, 3> abc{a, b, c};

  // ncout = !(A*B + C*(A+B))
  const u16 ncout = nw.new_node();
  series(nw, false, ncout, ab, kGnd);
  {
    const u16 mid = nw.new_node();
    nw.add_nmos(c, ncout, mid);
    parallel(nw, false, mid, ab, kGnd);
  }
  series(nw, true, kVdd, ab, ncout);
  {
    const u16 mid = nw.new_node();
    nw.add_pmos(c, kVdd, mid);
    parallel(nw, true, mid, ab, ncout);
  }
  const u16 yc = add_inverter(nw, ncout);

  // nsum = !(A*B*C + ncout*(A+B+C))
  const u16 nsum = nw.new_node();
  series(nw, false, nsum, abc, kGnd);
  {
    const u16 mid = nw.new_node();
    nw.add_nmos(ncout, nsum, mid);
    parallel(nw, false, mid, abc, kGnd);
  }
  series(nw, true, kVdd, abc, nsum);
  {
    const u16 mid = nw.new_node();
    nw.add_pmos(ncout, kVdd, mid);
    parallel(nw, true, mid, abc, nsum);
  }
  const u16 ys = add_inverter(nw, nsum);

  nw.output_nodes = {yc, ys};
  return nw;
}

std::shared_ptr<const Library> build_osu018() {
  auto lib = std::make_shared<Library>("osu018");

  const std::vector<std::string> in1{"A"};
  const std::vector<std::string> in2{"A", "B"};
  const std::vector<std::string> in3{"A", "B", "C"};
  const std::vector<std::string> in4{"A", "B", "C", "D"};
  const std::vector<std::string> mux_in{"A", "B", "S"};

  lib->add(comb_cell("INVX1", 1, 0x1, {13, .030, .60, .010, 1.0, 1},
                     inv_network(), in1));
  lib->add(comb_cell("INVX2", 1, 0x1, {16, .030, .30, .020, 1.7, 2},
                     inv_network(), in1));
  lib->add(comb_cell("INVX4", 1, 0x1, {22, .032, .15, .040, 3.0, 3},
                     inv_network(), in1));
  lib->add(comb_cell("INVX8", 1, 0x1, {35, .035, .08, .080, 5.5, 4},
                     inv_network(), in1));
  lib->add(comb_cell("BUFX2", 1, 0x2, {16, .065, .30, .010, 1.8, 2},
                     buf_network(), in1));
  lib->add(comb_cell("BUFX4", 1, 0x2, {26, .070, .15, .012, 3.2, 3},
                     buf_network(), in1));
  lib->add(comb_cell("NAND2X1", 2, 0x7, {16, .040, .55, .011, 1.5, 1},
                     nand_network(2), in2));
  lib->add(comb_cell("NAND3X1", 3, 0x7F, {22, .051, .58, .012, 2.1, 1},
                     nand_network(3), in3));
  lib->add(comb_cell("NOR2X1", 2, 0x1, {16, .045, .62, .011, 1.6, 1},
                     nor_network(2), in2));
  lib->add(comb_cell("NOR3X1", 3, 0x01, {22, .062, .70, .012, 2.3, 1},
                     nor_network(3), in3));
  lib->add(comb_cell("AND2X2", 2, 0x8, {22, .075, .28, .011, 2.4, 2},
                     and_or_network(2, true), in2));
  lib->add(comb_cell("OR2X2", 2, 0xE, {22, .080, .28, .011, 2.5, 2},
                     and_or_network(2, false), in2));
  lib->add(comb_cell("XOR2X1", 2, 0x6, {26, .080, .62, .015, 2.9, 1},
                     xor2_network(), in2));
  lib->add(comb_cell("XNOR2X1", 2, 0x9, {35, .090, .60, .016, 3.4, 1},
                     xnor2_network(), in2));
  lib->add(comb_cell("AOI21X1", 3, 0x07, {22, .050, .62, .012, 2.0, 1},
                     aoi21_network(), in3));
  lib->add(comb_cell("AOI22X1", 4, 0x0777, {29, .058, .66, .013, 2.6, 1},
                     aoi22_network(), in4));
  lib->add(comb_cell("OAI21X1", 3, 0x1F, {22, .052, .62, .012, 2.0, 1},
                     oai21_network(), in3));
  lib->add(comb_cell("OAI22X1", 4, 0x111F, {29, .060, .66, .013, 2.6, 1},
                     oai22_network(), in4));
  lib->add(comb_cell("MUX2X1", 3, 0xAC, {35, .085, .55, .014, 3.2, 1},
                     mux2_network(), mux_in));

  {
    CellSpec ha = comb_cell("HAX1", 2, 0x8, {58, .110, .58, .017, 5.2, 1},
                            ha_network(), in2);
    ha.num_outputs = 2;
    ha.function = {0x8, 0x6};  // YC = AND, YS = XOR
    ha.output_names = {"YC", "YS"};
    lib->add(std::move(ha));
  }
  {
    CellSpec fa = comb_cell("FAX1", 3, 0xE8, {95, .130, .60, .020, 8.4, 1},
                            fa_network(), in3);
    fa.num_outputs = 2;
    fa.function = {0xE8, 0x96};  // YC = MAJ, YS = parity
    fa.output_names = {"YC", "YS"};
    lib->add(std::move(fa));
  }

  {
    CellSpec dff;
    dff.name = "DFFPOSX1";
    dff.num_inputs = 1;
    dff.num_outputs = 1;
    dff.sequential = true;
    dff.area_um2 = 85;
    dff.width_sites = 13;
    dff.intrinsic_delay = 0.200;
    dff.drive_res = 0.40;
    dff.input_cap = 0.015;
    dff.leakage = 6.0;
    dff.sw_energy = 64 / 13.0;
    dff.input_names = {"D"};
    dff.output_names = {"Q"};
    lib->add(std::move(dff));
  }

  return lib;
}

CellSpec generic_cell(std::string name, int n, std::uint64_t tt) {
  CellSpec c;
  c.name = std::move(name);
  c.num_inputs = static_cast<std::uint8_t>(n);
  c.num_outputs = 1;
  c.function = {tt, 0};
  for (int i = 0; i < n; ++i) c.input_names.push_back(std::string(1, char('A' + i)));
  c.output_names = {"Y"};
  return c;
}

std::shared_ptr<const Library> build_generic() {
  auto lib = std::make_shared<Library>("generic");
  lib->add(generic_cell("NOT", 1, 0x1));
  lib->add(generic_cell("BUF", 1, 0x2));
  lib->add(generic_cell("AND2", 2, 0x8));
  lib->add(generic_cell("AND3", 3, 0x80));
  lib->add(generic_cell("AND4", 4, 0x8000));
  lib->add(generic_cell("OR2", 2, 0xE));
  lib->add(generic_cell("OR3", 3, 0xFE));
  lib->add(generic_cell("OR4", 4, 0xFFFE));
  lib->add(generic_cell("NAND2", 2, 0x7));
  lib->add(generic_cell("NOR2", 2, 0x1));
  lib->add(generic_cell("XOR2", 2, 0x6));
  lib->add(generic_cell("XNOR2", 2, 0x9));
  lib->add(generic_cell("MUX2", 3, 0xAC));  // pins A,B,S; Y = S ? A : B
  {
    // Arithmetic macros: instantiated by the benchmark generators and
    // macro-mapped 1:1 onto FAX1/HAX1 in the initial flow (the way RTL
    // synthesis maps adders onto full-adder cells).
    CellSpec ha = generic_cell("HA", 2, 0x8);
    ha.num_outputs = 2;
    ha.function = {0x8, 0x6};
    ha.output_names = {"C", "S"};
    lib->add(std::move(ha));
    CellSpec fa = generic_cell("FA", 3, 0xE8);
    fa.num_outputs = 2;
    fa.function = {0xE8, 0x96};
    fa.output_names = {"C", "S"};
    lib->add(std::move(fa));
  }
  {
    CellSpec dff = generic_cell("DFF", 1, 0);
    dff.sequential = true;
    dff.input_names = {"D"};
    dff.output_names = {"Q"};
    lib->add(std::move(dff));
  }
  return lib;
}

}  // namespace

std::shared_ptr<const Library> osu018_library() {
  static const std::shared_ptr<const Library> lib = build_osu018();
  return lib;
}

std::shared_ptr<const Library> generic_library() {
  static const std::shared_ptr<const Library> lib = build_generic();
  return lib;
}

}  // namespace dfmres
