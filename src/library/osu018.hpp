#pragma once

#include <memory>

#include "src/library/library.hpp"

namespace dfmres {

/// The standard cell library used throughout the reproduction: 21
/// combinational cells plus a positive-edge D flip-flop, modeled on the
/// OSU 0.18um (TSMC018) library the paper uses. Every combinational cell
/// carries a CMOS transistor network from which intra-cell DFM defect
/// sites and their UDFM excitation patterns are extracted
/// (src/switchlevel). Built once; shared.
[[nodiscard]] std::shared_ptr<const Library> osu018_library();

/// Technology-independent gate library used by the benchmark circuit
/// generators before technology mapping: NOT/BUF/AND/OR/NAND/NOR/XOR/
/// XNOR/MUX2 plus a generic DFF. Cells have no transistor networks and
/// therefore no internal faults.
[[nodiscard]] std::shared_ptr<const Library> generic_library();

}  // namespace dfmres
