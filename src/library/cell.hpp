#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/library/transistor.hpp"
#include "src/util/ids.hpp"

namespace dfmres {

/// Maximum number of inputs of any library cell; functions are stored as
/// 64-bit truth tables indexed by the input pattern (input pin k is bit k
/// of the pattern index).
inline constexpr int kMaxCellInputs = 6;
inline constexpr int kMaxCellOutputs = 2;

/// Static description of one standard cell (or one technology-independent
/// generic gate). Electrical numbers are representative of a 0.18um
/// standard cell library (OSU018-style); the flow only ever uses them
/// relatively, never as absolute silicon values.
struct CellSpec {
  std::string name;
  std::uint8_t num_inputs = 0;
  std::uint8_t num_outputs = 1;
  bool sequential = false;

  /// Truth table per output over the cell inputs (valid bits:
  /// 2^num_inputs). Undefined for sequential cells.
  std::array<std::uint64_t, kMaxCellOutputs> function{};

  double area_um2 = 0.0;
  int width_sites = 1;        ///< placement footprint in row sites
  double intrinsic_delay = 0; ///< ns, pin-to-pin unloaded
  double drive_res = 0;       ///< ns per pF of load
  double input_cap = 0;       ///< pF per input pin
  double leakage = 0;         ///< relative leakage power
  double sw_energy = 0;       ///< relative internal energy per output toggle
  int drive_fingers = 1;      ///< layout fingers; adds intra-cell DFM sites

  TransistorNetwork network;  ///< empty for generic / sequential cells

  std::vector<std::string> input_names;
  std::vector<std::string> output_names;

  [[nodiscard]] std::uint64_t truth(int output) const {
    return function[static_cast<std::size_t>(output)];
  }
  /// Output value for a fully specified input pattern.
  [[nodiscard]] bool eval(int output, std::uint32_t pattern) const {
    return (truth(output) >> pattern) & 1u;
  }
};

}  // namespace dfmres
