#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/library/cell.hpp"
#include "src/util/ids.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// An ordered collection of cell specs. Cell order is meaningful only as a
/// stable id space; the resynthesis procedure orders cells by internal
/// fault count separately (paper Section III-B).
class Library {
 public:
  explicit Library(std::string name) : name_(std::move(name)) {}

  /// Adds a cell; the name must be unique. Returns its id.
  CellId add(CellSpec spec);

  [[nodiscard]] const CellSpec& cell(CellId id) const {
    return cells_[id.value()];
  }
  [[nodiscard]] std::optional<CellId> find(std::string_view name) const;
  /// find() with a structured error carrying the library context; the
  /// lookup of choice for anything fed by user input (parsers, CLI).
  [[nodiscard]] Expected<CellId> lookup(std::string_view name) const;
  /// Like find() but treats absence as an internal invariant breach
  /// (fatal_invariant); only for compiled-in names.
  [[nodiscard]] CellId require(std::string_view name) const;

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] auto begin() const { return cells_.begin(); }
  [[nodiscard]] auto end() const { return cells_.end(); }

 private:
  std::string name_;
  std::vector<CellSpec> cells_;
  std::unordered_map<std::string, CellId, std::hash<std::string>,
                     std::equal_to<>>
      by_name_;
};

}  // namespace dfmres
