#include "src/route/router.hpp"

#include <algorithm>
#include <cmath>

namespace dfmres {

namespace {

struct GridPoint {
  int x, y;
  friend bool operator==(GridPoint, GridPoint) = default;
};

}  // namespace

RoutingResult route(const Netlist& nl, const Placement& pl,
                    const RouteOptions& options) {
  RoutingResult rr;
  rr.options = options;
  rr.grid_w = std::max(
      1, (pl.plan.sites_per_row + options.gcell_sites - 1) / options.gcell_sites);
  rr.grid_h =
      std::max(1, (pl.plan.rows + options.gcell_rows - 1) / options.gcell_rows);
  rr.h_usage.assign(static_cast<std::size_t>(rr.grid_w) * rr.grid_h, 0);
  rr.v_usage.assign(static_cast<std::size_t>(rr.grid_w) * rr.grid_h, 0);
  rr.nets.resize(nl.net_capacity());

  const auto to_gcell = [&](double x, double y) {
    GridPoint p;
    p.x = std::clamp(static_cast<int>(x) / options.gcell_sites, 0,
                     rr.grid_w - 1);
    p.y = std::clamp(static_cast<int>(y) / options.gcell_rows, 0,
                     rr.grid_h - 1);
    return p;
  };

  // Worst congestion a horizontal run [x0,x1]@y would see.
  const auto h_worst = [&](int x0, int x1, int y) {
    if (x0 > x1) std::swap(x0, x1);
    int worst = 0;
    for (int x = x0; x <= x1; ++x) {
      worst = std::max<int>(worst, rr.h_usage[rr.cell(x, y)]);
    }
    return worst;
  };
  const auto v_worst = [&](int y0, int y1, int x) {
    if (y0 > y1) std::swap(y0, y1);
    int worst = 0;
    for (int y = y0; y <= y1; ++y) {
      worst = std::max<int>(worst, rr.v_usage[rr.cell(x, y)]);
    }
    return worst;
  };

  for (NetId net : nl.live_nets()) {
    const auto& n = nl.net(net);
    std::vector<GridPoint> pins;
    if (n.has_gate_driver()) {
      const auto [x, y] =
          pl.pin_of(n.driver_gate, nl.cell_of(n.driver_gate).width_sites);
      pins.push_back(to_gcell(x, y));
    }
    if (n.is_primary_input || n.is_primary_output) {
      const auto [x, y] = pad_position(nl, pl.plan, net);
      pins.push_back(to_gcell(std::max(0.0, x), y));
    }
    for (const PinRef& sink : n.sinks) {
      const auto [x, y] =
          pl.pin_of(sink.gate, nl.cell_of(sink.gate).width_sites);
      pins.push_back(to_gcell(x, y));
    }
    // Deduplicate pin gcells, preserving order.
    {
      std::vector<GridPoint> unique;
      for (GridPoint p : pins) {
        if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
          unique.push_back(p);
        }
      }
      pins = std::move(unique);
    }
    NetRoute& nr = rr.nets[net.value()];
    if (pins.size() < 2) continue;

    // Chain pins in x-major order starting from the driver pin.
    std::vector<GridPoint> chain{pins.front()};
    std::sort(pins.begin() + 1, pins.end(), [](GridPoint a, GridPoint b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    chain.insert(chain.end(), pins.begin() + 1, pins.end());

    const auto add_via = [&](int x, int y, bool at_end) {
      const bool redundant =
          rr.congestion_pct(x, y) < 50;  // room for a doubled cut
      rr.vias.push_back({net, x, y, redundant, at_end});
      ++nr.num_vias;
    };
    const auto add_h = [&](int x0, int x1, int y) {
      if (x0 == x1) return;
      if (x0 > x1) std::swap(x0, x1);
      rr.segments.push_back({net, true, y, x0, x1});
      for (int x = x0; x <= x1; ++x) ++rr.h_usage[rr.cell(x, y)];
      nr.wirelength += x1 - x0;
    };
    const auto add_v = [&](int y0, int y1, int x) {
      if (y0 == y1) return;
      if (y0 > y1) std::swap(y0, y1);
      rr.segments.push_back({net, false, x, y0, y1});
      for (int y = y0; y <= y1; ++y) ++rr.v_usage[rr.cell(x, y)];
      nr.wirelength += y1 - y0;
    };

    const std::size_t first_segment = rr.segments.size();
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const GridPoint a = chain[i];
      const GridPoint b = chain[i + 1];
      add_via(a.x, a.y, /*at_end=*/true);  // pin via up to routing layers
      if (a.x == b.x && a.y == b.y) continue;
      if (a.y == b.y) {
        add_h(a.x, b.x, a.y);
      } else if (a.x == b.x) {
        add_v(a.y, b.y, a.x);
      } else {
        // L-shape: horizontal-first (elbow at (b.x, a.y)) or
        // vertical-first (elbow at (a.x, b.y)); pick the less congested.
        const int cost_hf = std::max(h_worst(a.x, b.x, a.y),
                                     v_worst(a.y, b.y, b.x));
        const int cost_vf = std::max(v_worst(a.y, b.y, a.x),
                                     h_worst(a.x, b.x, b.y));
        if (cost_hf <= cost_vf) {
          add_h(a.x, b.x, a.y);
          add_v(a.y, b.y, b.x);
          add_via(b.x, a.y, /*at_end=*/false);  // elbow layer change
        } else {
          add_v(a.y, b.y, a.x);
          add_h(a.x, b.x, b.y);
          add_via(a.x, b.y, /*at_end=*/false);
        }
      }
    }
    add_via(chain.back().x, chain.back().y, /*at_end=*/true);

    // Record worst congestion along everything this net touches.
    int worst = 0;
    for (std::size_t si = first_segment; si < rr.segments.size(); ++si) {
      const RouteSegment& s = rr.segments[si];
      for (int t = s.lo; t <= s.hi; ++t) {
        const int x = s.horizontal ? t : s.fixed;
        const int y = s.horizontal ? s.fixed : t;
        worst = std::max(worst, rr.congestion_pct(x, y));
      }
    }
    nr.max_congestion_pct = worst;
  }
  return rr;
}

}  // namespace dfmres
