#pragma once

#include <cstdint>
#include <vector>

#include "src/place/placement.hpp"

namespace dfmres {

/// One routed wire piece on a global-routing grid cell line.
/// Horizontal segments live on metal-2, vertical on metal-3 (metal-1 is
/// cell-internal); `fixed` is the gcell row (horizontal) or column
/// (vertical), [lo, hi] the inclusive span.
struct RouteSegment {
  NetId net;
  bool horizontal = true;
  int fixed = 0;
  int lo = 0, hi = 0;

  [[nodiscard]] int length() const { return hi - lo; }
};

/// A layer change or pin connection.
struct Via {
  NetId net;
  int x = 0, y = 0;
  bool redundant = false;      ///< doubled via (inserted where congestion allows)
  bool at_segment_end = false; ///< pin via with minimal metal enclosure
};

struct NetRoute {
  double wirelength = 0.0;  ///< gcell units
  int num_vias = 0;
  int max_congestion_pct = 0;  ///< worst congestion along the route, 0-100+
};

struct RouteOptions {
  int gcell_sites = 8;        ///< sites per gcell horizontally
  int gcell_rows = 2;         ///< rows per gcell vertically
  int capacity_per_layer = 8; ///< tracks per gcell per layer
};

/// Global-routing result: per-net topology plus grid usage, everything
/// the DFM guideline checker needs (wire lengths, via counts/styles,
/// parallel runs, congestion, density).
struct RoutingResult {
  RouteOptions options;
  int grid_w = 0, grid_h = 0;
  std::vector<RouteSegment> segments;
  std::vector<Via> vias;
  std::vector<NetRoute> nets;          ///< indexed by net slot
  std::vector<std::uint16_t> h_usage;  ///< per gcell, horizontal layer
  std::vector<std::uint16_t> v_usage;  ///< per gcell, vertical layer

  [[nodiscard]] std::size_t cell(int x, int y) const {
    return static_cast<std::size_t>(y) * grid_w + x;
  }
  /// Combined usage of a gcell as a percentage of both-layer capacity.
  [[nodiscard]] int congestion_pct(int x, int y) const {
    const int used = h_usage[cell(x, y)] + v_usage[cell(x, y)];
    return used * 100 / (2 * options.capacity_per_layer);
  }
  /// Deterministic pseudo track index of a net inside a gcell line.
  [[nodiscard]] int track_of(NetId net) const {
    return static_cast<int>((net.value() * 2654435761u) %
                            static_cast<std::uint32_t>(
                                options.capacity_per_layer));
  }
};

/// Routes every live net: pin gcells are chained in coordinate order and
/// connected with congestion-aware L-shapes; vias are doubled (redundant)
/// where local congestion permits.
[[nodiscard]] RoutingResult route(const Netlist& nl, const Placement& pl,
                                  const RouteOptions& options = {});

}  // namespace dfmres
