#pragma once

#include <chrono>
#include <cstddef>
#include <string>

#include "src/util/cancel.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// `dfmres serve`: a long-lived job service multiplexing many
/// concurrent campaigns from many clients over one Unix-domain socket.
///
/// Protocol: newline-delimited JSON, one `dfmres-request-v1` document
/// per line in, one `dfmres-response-v1` event per line out (see
/// request.hpp for the request kinds). Each admitted campaign gets a
/// standard campaign-root sub-directory `<campaign_root>/<id>/` —
/// manifest, leases, checkpoints, shards, merged report — so the whole
/// multi-process machinery (lease TTL takeover, checkpoint resume,
/// exclusive shard publish, deterministic merge) applies unchanged. A
/// daemon killed at any instant restarts by rescanning the root:
/// sub-roots without a report are re-admitted and their unfinished jobs
/// re-enqueued, and `dfmres canon` of the eventual reports is
/// byte-identical to a serial run of the same manifests.
struct ServeOptions {
  /// Parent directory of the per-campaign sub-roots (created if
  /// missing). Also the restart-recovery scan root.
  std::string campaign_root;
  /// Unix-domain socket path. An existing socket file is replaced
  /// (serve assumes it owns the path; run one daemon per root).
  std::string socket_path;
  /// Worker threads pulling jobs off the ready queue.
  int workers = 2;
  /// Hardware budget split across the workers (0 = hardware
  /// concurrency), same two-level rule as run_campaign.
  int total_threads = 0;

  // Admission control: a request that would exceed any bound is
  // rejected with kResourceExhausted — never silently queued.
  /// Jobs admitted but not yet terminal, across all campaigns.
  std::size_t max_inflight_jobs = 64;
  /// Active (not yet completed) campaigns per client connection.
  std::size_t max_client_campaigns = 8;
  /// Ready-queue bound (jobs waiting for a worker).
  std::size_t queue_capacity = 256;

  /// Server-level stop signal (SIGINT/SIGTERM): running jobs unwind
  /// cooperatively, no skip shards are published, and everything
  /// resumes on the next start.
  const CancelToken* cancel = nullptr;
  /// Main-loop poll period (cancel checks, worker-event latency bound).
  std::chrono::nanoseconds poll_interval{std::chrono::milliseconds(100)};
};

struct ServeStats {
  std::size_t campaigns_admitted = 0;   ///< accepted submit requests
  std::size_t campaigns_recovered = 0;  ///< re-admitted at startup
  std::size_t campaigns_completed = 0;  ///< merged reports written
  std::size_t requests_rejected = 0;    ///< admission-control rejections
  std::size_t requests_malformed = 0;   ///< parse/validation failures
  std::size_t jobs_executed = 0;        ///< shards published by this run
  bool drained = false;  ///< clean drain (vs. cancelled shutdown)
};

/// Runs the daemon until a drain request completes or `options.cancel`
/// trips. Errors are reserved for an unusable root or socket; protocol
/// and job failures are per-client / per-job events, never exits.
[[nodiscard]] Expected<ServeStats> run_serve(const ServeOptions& options);

}  // namespace dfmres
