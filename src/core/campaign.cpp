#include "src/core/campaign.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "src/circuits/benchmarks.hpp"
#include "src/layout/floorplan.hpp"
#include "src/netlist/verilog.hpp"
#include "src/place/placement.hpp"
#include "src/library/osu018.hpp"
#include "src/util/json.hpp"
#include "src/util/logging.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

namespace {

constexpr const char* kModeFlow = "flow";
constexpr const char* kModeResyn = "resyn";

/// Strict manifest-side accessors: every value is type- and
/// range-checked so a manifest typo fails the parse, not the campaign.
Status manifest_error(std::size_t job, const char* key, const char* what) {
  return make_status(StatusCode::kInvalidArgument,
                     "manifest job %zu: key '%s': %s", job, key, what);
}

Status parse_number(const JsonValue& v, std::size_t job, const char* key,
                    double lo, double hi, double* out) {
  if (!v.is_number()) return manifest_error(job, key, "expected a number");
  const double d = v.as_number();
  if (!(d >= lo) || !(d <= hi)) {
    return manifest_error(job, key, "out of range");
  }
  *out = d;
  return Status::ok();
}

template <typename T>
Status parse_integer(const JsonValue& v, std::size_t job, const char* key,
                     double lo, double hi, T* out) {
  double d = 0.0;
  if (Status s = parse_number(v, job, key, lo, hi, &d); !s.is_ok()) return s;
  if (d != std::floor(d)) return manifest_error(job, key, "expected an integer");
  *out = static_cast<T>(d);
  return Status::ok();
}

Status parse_bool(const JsonValue& v, std::size_t job, const char* key,
                  bool* out) {
  if (!v.is_bool()) return manifest_error(job, key, "expected a boolean");
  *out = v.as_bool();
  return Status::ok();
}

Status parse_string(const JsonValue& v, std::size_t job, const char* key,
                    std::string* out) {
  if (!v.is_string()) return manifest_error(job, key, "expected a string");
  *out = v.as_string();
  return Status::ok();
}

Status parse_job(const JsonValue& v, std::size_t index, CampaignJobSpec* out) {
  if (!v.is_object()) {
    return make_status(StatusCode::kInvalidArgument,
                       "manifest job %zu: expected an object", index);
  }
  bool have_name = false;
  bool have_design = false;
  for (const auto& [key, value] : v.members()) {
    Status s;
    if (key == "name") {
      s = parse_string(value, index, "name", &out->name);
      have_name = true;
    } else if (key == "design") {
      s = parse_string(value, index, "design", &out->design);
      have_design = true;
    } else if (key == "mode") {
      std::string mode;
      s = parse_string(value, index, "mode", &mode);
      if (s.is_ok()) {
        if (mode == kModeFlow) {
          out->mode = CampaignJobSpec::Mode::Flow;
        } else if (mode == kModeResyn) {
          out->mode = CampaignJobSpec::Mode::Resyn;
        } else {
          s = manifest_error(index, "mode", "expected \"flow\" or \"resyn\"");
        }
      }
    } else if (key == "utilization") {
      s = parse_number(value, index, "utilization", 0.05, 1.0,
                       &out->flow.utilization);
    } else if (key == "threads") {
      s = parse_integer(value, index, "threads", 0, 1024,
                        &out->flow.atpg.num_threads);
    } else if (key == "warm_start") {
      s = parse_bool(value, index, "warm_start", &out->flow.warm_start);
    } else if (key == "seed") {
      s = parse_integer(value, index, "seed", 0, 9e15, &out->flow.atpg.seed);
    } else if (key == "random_batches") {
      s = parse_integer(value, index, "random_batches", 1, 65536,
                        &out->flow.atpg.random_batches);
    } else if (key == "backtrack_limit") {
      s = parse_integer(value, index, "backtrack_limit", 1, 1e9,
                        &out->flow.atpg.backtrack_limit);
    } else if (key == "q_max") {
      s = parse_integer(value, index, "q_max", 0, 100, &out->resyn.q_max);
    } else if (key == "p1_pct") {
      double pct = 0.0;
      s = parse_number(value, index, "p1_pct", 0.0, 100.0, &pct);
      if (s.is_ok()) out->resyn.p1 = pct / 100.0;
    } else if (key == "max_iterations_per_phase") {
      s = parse_integer(value, index, "max_iterations_per_phase", 1, 100000,
                        &out->resyn.max_iterations_per_phase);
    } else if (key == "trend_window") {
      s = parse_integer(value, index, "trend_window", 1, 1000,
                        &out->resyn.trend_window);
    } else if (key == "reanalyses_per_iteration") {
      s = parse_integer(value, index, "reanalyses_per_iteration", 1, 1000000,
                        &out->resyn.reanalyses_per_iteration);
    } else if (key == "dedup_candidates") {
      s = parse_bool(value, index, "dedup_candidates",
                     &out->resyn.dedup_candidates);
    } else if (key == "parallel_ladder") {
      s = parse_bool(value, index, "parallel_ladder",
                     &out->resyn.parallel_ladder);
    } else if (key == "deadline") {
      std::string spec;
      s = parse_string(value, index, "deadline", &spec);
      if (s.is_ok()) {
        auto d = parse_duration_spec(spec);
        if (!d) {
          s = manifest_error(index, "deadline", d.status().message().c_str());
        } else {
          out->deadline = *d;
        }
      }
    } else {
      s = make_status(StatusCode::kInvalidArgument,
                      "manifest job %zu: unknown key '%s'", index, key.c_str());
    }
    if (!s.is_ok()) return s;
  }
  if (!have_name) return manifest_error(index, "name", "missing");
  if (!have_design) return manifest_error(index, "design", "missing");
  return Status::ok();
}

}  // namespace

Expected<CampaignManifest> CampaignManifest::from_json(std::string_view text) {
  auto doc = JsonValue::parse(text);
  if (!doc) return doc.status();
  if (!doc->is_object()) {
    return make_status(StatusCode::kInvalidArgument,
                       "manifest: expected a top-level object");
  }
  CampaignManifest manifest;
  bool have_schema = false;
  for (const auto& [key, value] : doc->members()) {
    if (key == "schema") {
      if (!value.is_string() || value.as_string() != kSchema) {
        return make_status(StatusCode::kInvalidArgument,
                           "manifest: schema must be \"%s\"", kSchema);
      }
      have_schema = true;
    } else if (key == "jobs") {
      if (!value.is_array()) {
        return make_status(StatusCode::kInvalidArgument,
                           "manifest: 'jobs' must be an array");
      }
      for (std::size_t i = 0; i < value.items().size(); ++i) {
        CampaignJobSpec job;
        if (Status s = parse_job(value.items()[i], i, &job); !s.is_ok()) {
          return s;
        }
        manifest.jobs.push_back(std::move(job));
      }
    } else {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest: unknown key '%s'", key.c_str());
    }
  }
  if (!have_schema) {
    return make_status(StatusCode::kInvalidArgument,
                       "manifest: missing \"schema\": \"%s\"", kSchema);
  }
  if (Status s = manifest.validate(); !s.is_ok()) return s;
  return manifest;
}

Expected<CampaignManifest> CampaignManifest::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_status(StatusCode::kNotFound, "cannot open manifest '%s'",
                       path.c_str());
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

std::string CampaignManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema);
  w.key("jobs");
  w.begin_array();
  for (const auto& job : jobs) {
    w.begin_object();
    w.field("name", job.name);
    w.field("design", job.design);
    w.field("mode",
            job.mode == CampaignJobSpec::Mode::Flow ? kModeFlow : kModeResyn);
    w.field("utilization", job.flow.utilization);
    w.field("threads", job.flow.atpg.num_threads);
    w.field("warm_start", job.flow.warm_start);
    w.field("seed", static_cast<std::uint64_t>(job.flow.atpg.seed));
    w.field("random_batches", job.flow.atpg.random_batches);
    w.field("backtrack_limit",
            static_cast<std::int64_t>(job.flow.atpg.backtrack_limit));
    w.field("q_max", job.resyn.q_max);
    w.field("p1_pct", job.resyn.p1 * 100.0);
    w.field("max_iterations_per_phase", job.resyn.max_iterations_per_phase);
    w.field("trend_window", job.resyn.trend_window);
    w.field("reanalyses_per_iteration", job.resyn.reanalyses_per_iteration);
    w.field("dedup_candidates", job.resyn.dedup_candidates);
    w.field("parallel_ladder", job.resyn.parallel_ladder);
    if (job.deadline.count() > 0) {
      w.field("deadline",
              strfmt("%.17gs", std::chrono::duration<double>(job.deadline)
                                   .count()));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

Status CampaignManifest::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot open manifest output '%s'", path.c_str());
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return make_status(StatusCode::kDataLoss,
                       "short write to manifest output '%s'", path.c_str());
  }
  return Status::ok();
}

Status CampaignManifest::validate() const {
  if (jobs.empty()) {
    return make_status(StatusCode::kInvalidArgument, "manifest has no jobs");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CampaignJobSpec& job = jobs[i];
    if (job.name.empty()) {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest job %zu: empty name", i);
    }
    if (job.name == "." || job.name == ".." ||
        job.name.find('/') != std::string::npos) {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest job %zu: name '%s' is not a single path "
                         "component",
                         i, job.name.c_str());
    }
    if (job.design.empty()) {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest job %zu ('%s'): empty design", i,
                         job.name.c_str());
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (jobs[j].name == job.name) {
        return make_status(StatusCode::kInvalidArgument,
                           "manifest jobs %zu and %zu share the name '%s'", j,
                           i, job.name.c_str());
      }
    }
  }
  return Status::ok();
}

CampaignManifest table2_manifest() {
  CampaignManifest manifest;
  for (const auto name : benchmark_names()) {
    CampaignJobSpec job;
    job.name = std::string(name);
    job.design = std::string(name);
    job.mode = CampaignJobSpec::Mode::Resyn;
    job.resyn.q_max = 5;  // the paper's Table II envelope
    manifest.jobs.push_back(std::move(job));
  }
  return manifest;
}

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Benchmark name -> generic RTL netlist (is_mapped=false); *.v file ->
/// already-mapped netlist over the standard library (is_mapped=true).
Expected<Netlist> load_campaign_design(const std::string& name,
                                       bool* is_mapped) {
  *is_mapped = false;
  if (ends_with(name, ".v")) {
    std::ifstream in(name);
    if (!in) {
      return make_status(StatusCode::kNotFound, "cannot open design '%s'",
                         name.c_str());
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto nl = read_verilog(text.str(), osu018_library());
    if (!nl) return nl.status();
    *is_mapped = true;
    return std::move(*nl);
  }
  return build_benchmark(name);
}

/// Runs one job start to finish on the calling (runner) thread. Never
/// throws past here: every failure lands in the result's status so the
/// rest of the campaign is unaffected.
CampaignJobResult run_job(const CampaignJobSpec& spec,
                          const CampaignOptions& options, int inner_threads) {
  CampaignJobResult result;
  result.name = spec.name;
  result.design = spec.design;
  result.mode = spec.mode;
  result.inner_threads = inner_threads;
  result.metrics = std::make_unique<MetricsRegistry>();
  if (cancel_expired(options.cancel)) {
    result.skipped = true;
    result.status = options.cancel->to_status();
    return result;
  }

  TraceSpan span("campaign.job", "campaign");
  span.arg("name", spec.name.c_str());
  const auto t0 = std::chrono::steady_clock::now();
  const auto finish = [&] {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  // The per-job stop signal: the job deadline is armed now (when the job
  // starts, matching a standalone run), chained to the campaign token so
  // a campaign-wide cancel drains this job too.
  const CancelToken token(spec.deadline.count() > 0
                              ? Deadline::after(spec.deadline)
                              : Deadline::never(),
                          options.cancel);

  bool is_mapped = false;
  auto design = load_campaign_design(spec.design, &is_mapped);
  if (!design) {
    result.status = design.status();
    finish();
    return result;
  }

  FlowOptions flow_options = spec.flow;
  // Two-level budget: the job's fault-sim/ladder fan-out never exceeds
  // its share of the machine; an explicit manifest cap only lowers it.
  flow_options.atpg.num_threads =
      flow_options.atpg.num_threads == 0
          ? inner_threads
          : std::min(flow_options.atpg.num_threads, inner_threads);
  DesignFlow flow(osu018_library(), flow_options);

  Expected<FlowState> original = [&]() -> Expected<FlowState> {
    if (!is_mapped) return flow.run_initial(*design);
    const Floorplan plan = make_floorplan(*design, flow_options.utilization);
    Placement placement = global_place(*design, plan, flow_options.place);
    return flow.analyze(AnalysisRequest::placed(
        std::move(*design), std::move(placement), /*generate_tests=*/true));
  }();
  if (!original) {
    result.status = original.status();
    finish();
    return result;
  }

  if (spec.mode == CampaignJobSpec::Mode::Flow) {
    result.final_state = std::move(*original);
    result.atpg_totals = flow.atpg_totals();
    result.metrics->absorb(result.atpg_totals);
    RunReport report("flow", spec.design);
    report.set_threads(result.final_state->atpg.counters.threads_used);
    report.set_final(*result.final_state);
    report.set_atpg_totals(result.atpg_totals);
    finish();
    report.set_runtime_seconds(result.seconds);
    result.report = std::move(report);
    return result;
  }

  ResynthesisOptions resyn_options = spec.resyn;
  resyn_options.cancel = &token;
  if (!options.checkpoint_root.empty()) {
    resyn_options.checkpoint_dir = options.checkpoint_root + "/" + spec.name;
    resyn_options.resume = options.resume;
  } else {
    resyn_options.checkpoint_dir.clear();
    resyn_options.resume = false;
  }
  const std::uint64_t fingerprint =
      resynthesis_fingerprint(flow, *original, resyn_options);
  auto resyn = resynthesize(flow, *original, resyn_options);
  if (!resyn) {
    result.status = resyn.status();
    finish();
    return result;
  }
  result.initial = std::move(*original);
  result.final_state = std::move(resyn->state);
  result.resyn = std::move(resyn->report);
  result.deadline_expired = result.resyn->deadline_expired;
  result.atpg_totals = flow.atpg_totals();
  result.metrics->absorb(result.atpg_totals);
  publish_metrics(*result.resyn, *result.metrics);
  RunReport report("resyn", spec.design);
  report.set_threads(result.final_state->atpg.counters.threads_used);
  report.set_fingerprint(fingerprint);
  report.set_initial(*result.initial);
  report.set_final(*result.final_state);
  report.set_resynthesis(*result.resyn);
  report.set_atpg_totals(result.atpg_totals);
  finish();
  report.set_runtime_seconds(result.seconds);
  result.report = std::move(report);
  return result;
}

}  // namespace

void CampaignResult::merge_metrics_into(MetricsRegistry& out) const {
  for (const auto& job : jobs) {
    if (job.metrics != nullptr) out.merge(*job.metrics);
  }
}

std::string CampaignResult::report_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kReportSchema);
  w.field("jobs_total", static_cast<std::uint64_t>(jobs.size()));
  w.field("completed", static_cast<std::uint64_t>(completed));
  w.field("expired", static_cast<std::uint64_t>(expired));
  w.field("failed", static_cast<std::uint64_t>(failed));
  w.field("skipped", static_cast<std::uint64_t>(skipped));
  w.field("jobs_in_flight", jobs_in_flight);
  w.field("inner_threads", inner_threads);
  w.field("total_threads", total_threads);
  w.field("runtime_seconds", seconds);
  w.key("jobs");
  w.begin_array();
  for (const auto& job : jobs) {
    w.begin_object();
    w.field("name", job.name);
    w.field("design", job.design);
    w.field("mode", job.mode == CampaignJobSpec::Mode::Flow ? kModeFlow
                                                            : kModeResyn);
    w.field("ok", job.ok());
    w.field("status", job.status.is_ok() ? std::string("ok")
                                         : job.status.to_string());
    w.field("skipped", job.skipped);
    w.field("deadline_expired", job.deadline_expired);
    w.field("inner_threads", job.inner_threads);
    w.field("runtime_seconds", job.seconds);
    if (job.report.has_value()) {
      w.key("report");
      w.raw(job.report->to_json());
    }
    w.end_object();
  }
  w.end_array();
  MetricsRegistry merged;
  merge_metrics_into(merged);
  w.key("metrics");
  w.raw(merged.to_json());
  w.end_object();
  return w.take();
}

Status CampaignResult::write_report(const std::string& path) const {
  const std::string json = report_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot open report output '%s'", path.c_str());
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return make_status(StatusCode::kDataLoss,
                       "short write to report output '%s'", path.c_str());
  }
  return Status::ok();
}

Expected<CampaignResult> run_campaign(const CampaignManifest& manifest,
                                      const CampaignOptions& options) {
  if (Status s = manifest.validate(); !s.is_ok()) return s;
  if (!options.checkpoint_root.empty()) {
    if (::mkdir(options.checkpoint_root.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return make_status(StatusCode::kInvalidArgument,
                         "cannot create checkpoint root '%s': %s",
                         options.checkpoint_root.c_str(),
                         std::strerror(errno));
    }
  }

  CampaignResult out;
  out.total_threads = ThreadPool::resolve_threads(options.total_threads);
  out.jobs_in_flight = std::clamp(options.max_parallel_jobs, 1,
                                  static_cast<int>(manifest.jobs.size()));
  out.inner_threads =
      ThreadPool::lanes_per_job(out.total_threads, out.jobs_in_flight);
  out.jobs.resize(manifest.jobs.size());

  log(LogLevel::Info,
      "campaign: %zu job(s), %d in flight, %d fault-sim lane(s) each",
      manifest.jobs.size(), out.jobs_in_flight, out.inner_threads);

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  const auto runner = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= manifest.jobs.size()) return;
      out.jobs[i] = run_job(manifest.jobs[i], options, out.inner_threads);
      const CampaignJobResult& job = out.jobs[i];
      log(job.ok() ? LogLevel::Info : LogLevel::Warn,
          "campaign: job '%s' %s in %.1fs%s", job.name.c_str(),
          job.skipped ? "skipped"
                      : (job.status.is_ok() ? "done" : "failed"),
          job.seconds,
          job.deadline_expired ? " (deadline expired)" : "");
    }
  };
  if (out.jobs_in_flight <= 1) {
    runner();
  } else {
    // Dedicated runner threads; each job's inner fan-out goes through
    // the shared ThreadPool under the two-level budget, so the machine
    // is never oversubscribed by jobs × lanes.
    std::vector<std::jthread> runners;
    runners.reserve(static_cast<std::size_t>(out.jobs_in_flight));
    for (int k = 0; k < out.jobs_in_flight; ++k) runners.emplace_back(runner);
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (const auto& job : out.jobs) {
    if (job.skipped) {
      ++out.skipped;
    } else if (!job.status.is_ok()) {
      ++out.failed;
    } else if (job.deadline_expired) {
      ++out.expired;
    } else {
      ++out.completed;
    }
  }
  return out;
}

}  // namespace dfmres
