#include "src/core/campaign.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include <unistd.h>

#include "src/circuits/benchmarks.hpp"
#include "src/core/lease.hpp"
#include "src/core/request.hpp"
#include "src/core/telemetry.hpp"
#include "src/layout/floorplan.hpp"
#include "src/netlist/verilog.hpp"
#include "src/place/placement.hpp"
#include "src/library/osu018.hpp"
#include "src/util/crashpoint.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"
#include "src/util/logging.hpp"
#include "src/util/ready_queue.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

namespace {

constexpr const char* kModeFlow = "flow";
constexpr const char* kModeResyn = "resyn";

}  // namespace

Expected<CampaignManifest> CampaignManifest::from_json(std::string_view text) {
  auto doc = JsonValue::parse(text);
  if (!doc) return doc.status();
  return from_json_value(*doc);
}

Expected<CampaignManifest> CampaignManifest::from_json_value(
    const JsonValue& doc) {
  if (!doc.is_object()) {
    return make_status(StatusCode::kInvalidArgument,
                       "manifest: expected a top-level object");
  }
  CampaignManifest manifest;
  bool have_schema = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "schema") {
      if (!value.is_string() || value.as_string() != kSchema) {
        return make_status(StatusCode::kInvalidArgument,
                           "manifest: schema must be \"%s\"", kSchema);
      }
      have_schema = true;
    } else if (key == "jobs") {
      if (!value.is_array()) {
        return make_status(StatusCode::kInvalidArgument,
                           "manifest: 'jobs' must be an array");
      }
      for (std::size_t i = 0; i < value.items().size(); ++i) {
        CampaignJobSpec job;
        const std::string ctx = strfmt("manifest job %zu", i);
        if (Status s = parse_job_spec(value.items()[i], ctx.c_str(), &job);
            !s.is_ok()) {
          return s;
        }
        manifest.jobs.push_back(std::move(job));
      }
    } else {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest: unknown key '%s'", key.c_str());
    }
  }
  if (!have_schema) {
    return make_status(StatusCode::kInvalidArgument,
                       "manifest: missing \"schema\": \"%s\"", kSchema);
  }
  if (Status s = manifest.validate(); !s.is_ok()) return s;
  return manifest;
}

Expected<CampaignManifest> CampaignManifest::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_status(StatusCode::kNotFound, "cannot open manifest '%s'",
                       path.c_str());
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

std::string CampaignManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema);
  w.key("jobs");
  w.begin_array();
  for (const auto& job : jobs) {
    write_job_spec(w, job);
  }
  w.end_array();
  w.end_object();
  return w.take();
}

Status CampaignManifest::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot open manifest output '%s'", path.c_str());
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return make_status(StatusCode::kDataLoss,
                       "short write to manifest output '%s'", path.c_str());
  }
  return Status::ok();
}

Status CampaignManifest::validate() const {
  if (jobs.empty()) {
    return make_status(StatusCode::kInvalidArgument, "manifest has no jobs");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CampaignJobSpec& job = jobs[i];
    if (job.name.empty()) {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest job %zu: empty name", i);
    }
    if (job.name == "." || job.name == ".." ||
        job.name.find('/') != std::string::npos) {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest job %zu: name '%s' is not a single path "
                         "component",
                         i, job.name.c_str());
    }
    if (job.name.rfind("__", 0) == 0) {
      // "__merge__" and friends are reserved lease names of the
      // multi-process scheduler.
      return make_status(StatusCode::kInvalidArgument,
                         "manifest job %zu: name '%s' uses the reserved "
                         "'__' prefix",
                         i, job.name.c_str());
    }
    if (job.design.empty()) {
      return make_status(StatusCode::kInvalidArgument,
                         "manifest job %zu ('%s'): empty design", i,
                         job.name.c_str());
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (jobs[j].name == job.name) {
        return make_status(StatusCode::kInvalidArgument,
                           "manifest jobs %zu and %zu share the name '%s'", j,
                           i, job.name.c_str());
      }
    }
  }
  return Status::ok();
}

CampaignManifest table2_manifest() {
  CampaignManifest manifest;
  for (const auto name : benchmark_names()) {
    CampaignJobSpec job;
    job.name = std::string(name);
    job.design = std::string(name);
    job.mode = CampaignJobSpec::Mode::Resyn;
    job.resyn.q_max = 5;  // the paper's Table II envelope
    manifest.jobs.push_back(std::move(job));
  }
  return manifest;
}

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Benchmark name -> generic RTL netlist (is_mapped=false); *.v file ->
/// already-mapped netlist over the standard library (is_mapped=true).
Expected<Netlist> load_campaign_design(const std::string& name,
                                       bool* is_mapped) {
  *is_mapped = false;
  if (ends_with(name, ".v")) {
    std::ifstream in(name);
    if (!in) {
      return make_status(StatusCode::kNotFound, "cannot open design '%s'",
                         name.c_str());
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto nl = read_verilog(text.str(), osu018_library());
    if (!nl) return nl.status();
    *is_mapped = true;
    return std::move(*nl);
  }
  return build_benchmark(name);
}

/// Runs one job start to finish on the calling (runner) thread. Never
/// throws past here: every failure lands in the result's status so the
/// rest of the campaign is unaffected.
CampaignJobResult run_job(const CampaignJobSpec& spec,
                          const CampaignOptions& options, int inner_threads) {
  CampaignJobResult result;
  result.name = spec.name;
  result.design = spec.design;
  result.mode = spec.mode;
  result.inner_threads = inner_threads;
  result.metrics = std::make_unique<MetricsRegistry>();
  if (cancel_expired(options.cancel)) {
    result.skipped = true;
    result.status = options.cancel->to_status();
    return result;
  }

  TraceSpan span("campaign.job", "campaign");
  span.arg("name", spec.name.c_str());
  const auto t0 = std::chrono::steady_clock::now();
  const auto finish = [&] {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  // The per-job stop signal: the job deadline is armed now (when the job
  // starts, matching a standalone run), chained to the campaign token so
  // a campaign-wide cancel drains this job too.
  const CancelToken token(spec.deadline.count() > 0
                              ? Deadline::after(spec.deadline)
                              : Deadline::never(),
                          options.cancel);

  bool is_mapped = false;
  auto design = load_campaign_design(spec.design, &is_mapped);
  if (!design) {
    result.status = design.status();
    finish();
    return result;
  }

  FlowOptions flow_options = spec.flow;
  // Two-level budget: the job's fault-sim/ladder fan-out never exceeds
  // its share of the machine; an explicit manifest cap only lowers it.
  flow_options.atpg.num_threads =
      flow_options.atpg.num_threads == 0
          ? inner_threads
          : std::min(flow_options.atpg.num_threads, inner_threads);
  DesignFlow flow(osu018_library(), flow_options);

  Expected<FlowState> original = [&]() -> Expected<FlowState> {
    if (!is_mapped) return flow.run_initial(*design);
    const Floorplan plan = make_floorplan(*design, flow_options.utilization);
    Placement placement = global_place(*design, plan, flow_options.place);
    return flow.analyze(AnalysisRequest::placed(
        std::move(*design), std::move(placement), /*generate_tests=*/true));
  }();
  if (!original) {
    result.status = original.status();
    finish();
    return result;
  }

  if (spec.mode == CampaignJobSpec::Mode::Flow) {
    result.final_state = std::move(*original);
    result.atpg_totals = flow.atpg_totals();
    result.metrics->absorb(result.atpg_totals);
    RunReport report("flow", spec.design);
    report.set_threads(result.final_state->atpg.counters.threads_used);
    report.set_final(*result.final_state);
    report.set_atpg_totals(result.atpg_totals);
    finish();
    report.set_runtime_seconds(result.seconds);
    result.report = std::move(report);
    return result;
  }

  ResynthesisOptions resyn_options = spec.resyn;
  resyn_options.cancel = &token;
  if (!options.checkpoint_root.empty()) {
    resyn_options.checkpoint_dir = options.checkpoint_root + "/" + spec.name;
    resyn_options.resume = options.resume;
  } else {
    resyn_options.checkpoint_dir.clear();
    resyn_options.resume = false;
  }
  const std::uint64_t fingerprint =
      resynthesis_fingerprint(flow, *original, resyn_options);
  auto resyn = resynthesize(flow, *original, resyn_options);
  if (!resyn) {
    result.status = resyn.status();
    finish();
    return result;
  }
  result.initial = std::move(*original);
  result.final_state = std::move(resyn->state);
  result.resyn = std::move(resyn->report);
  result.deadline_expired = result.resyn->deadline_expired;
  result.atpg_totals = flow.atpg_totals();
  result.metrics->absorb(result.atpg_totals);
  publish_metrics(*result.resyn, *result.metrics);
  RunReport report("resyn", spec.design);
  report.set_threads(result.final_state->atpg.counters.threads_used);
  report.set_fingerprint(fingerprint);
  report.set_initial(*result.initial);
  report.set_final(*result.final_state);
  report.set_resynthesis(*result.resyn);
  report.set_atpg_totals(result.atpg_totals);
  finish();
  report.set_runtime_seconds(result.seconds);
  result.report = std::move(report);
  return result;
}

}  // namespace

void CampaignResult::merge_metrics_into(MetricsRegistry& out) const {
  for (const auto& job : jobs) {
    if (job.metrics != nullptr) out.merge(*job.metrics);
  }
}

std::string render_campaign_report(const CampaignReportTotals& totals,
                                   const std::vector<CampaignReportRow>& rows,
                                   const std::string& metrics_json) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", CampaignResult::kReportSchema);
  w.field("jobs_total", static_cast<std::uint64_t>(totals.jobs_total));
  w.field("completed", static_cast<std::uint64_t>(totals.completed));
  w.field("expired", static_cast<std::uint64_t>(totals.expired));
  w.field("failed", static_cast<std::uint64_t>(totals.failed));
  w.field("skipped", static_cast<std::uint64_t>(totals.skipped));
  w.field("jobs_in_flight", totals.jobs_in_flight);
  w.field("inner_threads", totals.inner_threads);
  w.field("total_threads", totals.total_threads);
  w.field("runtime_seconds", totals.runtime_seconds);
  w.key("jobs");
  w.begin_array();
  for (const CampaignReportRow& row : rows) {
    w.begin_object();
    w.field("name", row.name);
    w.field("design", row.design);
    w.field("mode", row.mode);
    w.field("ok", row.ok);
    w.field("status", row.status);
    w.field("skipped", row.skipped);
    w.field("deadline_expired", row.deadline_expired);
    w.field("poisoned", row.poisoned);
    w.field("attempts", row.attempts);
    w.field("worker", row.worker);
    w.field("inner_threads", row.inner_threads);
    w.field("runtime_seconds", row.runtime_seconds);
    if (!row.report_json.empty()) {
      w.key("report");
      w.raw(row.report_json);
    }
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  w.raw(metrics_json);
  w.end_object();
  return w.take();
}

std::string CampaignResult::report_json() const {
  CampaignReportTotals totals;
  totals.jobs_total = jobs.size();
  totals.completed = completed;
  totals.expired = expired;
  totals.failed = failed;
  totals.skipped = skipped;
  totals.jobs_in_flight = jobs_in_flight;
  totals.inner_threads = inner_threads;
  totals.total_threads = total_threads;
  totals.runtime_seconds = seconds;
  std::vector<CampaignReportRow> rows;
  rows.reserve(jobs.size());
  for (const auto& job : jobs) {
    CampaignReportRow row;
    row.name = job.name;
    row.design = job.design;
    row.mode =
        job.mode == CampaignJobSpec::Mode::Flow ? kModeFlow : kModeResyn;
    row.ok = job.ok();
    row.status = job.status.is_ok() ? std::string("ok")
                                    : job.status.to_string();
    row.skipped = job.skipped;
    row.deadline_expired = job.deadline_expired;
    row.inner_threads = job.inner_threads;
    row.runtime_seconds = job.seconds;
    if (job.report.has_value()) row.report_json = job.report->to_json();
    rows.push_back(std::move(row));
  }
  MetricsRegistry merged;
  merge_metrics_into(merged);
  return render_campaign_report(totals, rows, merged.to_json());
}

Status CampaignResult::write_report(const std::string& path) const {
  const std::string json = report_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot open report output '%s'", path.c_str());
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return make_status(StatusCode::kDataLoss,
                       "short write to report output '%s'", path.c_str());
  }
  return Status::ok();
}

Expected<CampaignResult> run_campaign(const CampaignManifest& manifest,
                                      const CampaignOptions& options) {
  if (Status s = manifest.validate(); !s.is_ok()) return s;
  if (!options.checkpoint_root.empty()) {
    if (Status s = make_dir(options.checkpoint_root); !s.is_ok()) return s;
  }

  CampaignResult out;
  out.total_threads = ThreadPool::resolve_threads(options.total_threads);
  out.jobs_in_flight = std::clamp(options.max_parallel_jobs, 1,
                                  static_cast<int>(manifest.jobs.size()));
  out.inner_threads =
      ThreadPool::lanes_per_job(out.total_threads, out.jobs_in_flight);
  out.jobs.resize(manifest.jobs.size());

  log(LogLevel::Info,
      "campaign: %zu job(s), %d in flight, %d fault-sim lane(s) each",
      manifest.jobs.size(), out.jobs_in_flight, out.inner_threads);

  const auto t0 = std::chrono::steady_clock::now();
  // The ready queue replaces the old atomic job counter: producers
  // seed it in manifest order, runners pull relaxed-FIFO. Determinism
  // is unaffected — each result lands in its manifest slot
  // (out.jobs[i]) and the report renders in manifest order, so the
  // queue only ever changes *dispatch* order, never output bytes.
  ReadyQueue ready(manifest.jobs.size());
  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    if (!ready.try_push(i)) {
      return make_status(StatusCode::kInternal,
                         "campaign ready queue rejected job %zu", i);
    }
  }
  ready.close();  // pop() drains the backlog, then reports closed
  const auto runner = [&] {
    for (;;) {
      Expected<std::uint64_t> i = ready.pop();
      if (!i) return;  // closed and drained
      out.jobs[*i] = run_job(manifest.jobs[*i], options, out.inner_threads);
      const CampaignJobResult& job = out.jobs[*i];
      log(job.ok() ? LogLevel::Info : LogLevel::Warn,
          "campaign: job '%s' %s in %.1fs%s", job.name.c_str(),
          job.skipped ? "skipped"
                      : (job.status.is_ok() ? "done" : "failed"),
          job.seconds,
          job.deadline_expired ? " (deadline expired)" : "");
    }
  };
  if (out.jobs_in_flight <= 1) {
    runner();
  } else {
    // Dedicated runner threads; each job's inner fan-out goes through
    // the shared ThreadPool under the two-level budget, so the machine
    // is never oversubscribed by jobs × lanes.
    std::vector<std::jthread> runners;
    runners.reserve(static_cast<std::size_t>(out.jobs_in_flight));
    for (int k = 0; k < out.jobs_in_flight; ++k) runners.emplace_back(runner);
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (const auto& job : out.jobs) {
    if (job.skipped) {
      ++out.skipped;
    } else if (!job.status.is_ok()) {
      ++out.failed;
    } else if (job.deadline_expired) {
      ++out.expired;
    } else {
      ++out.completed;
    }
  }
  return out;
}

// ---- Multi-process campaigns --------------------------------------------

namespace {

constexpr const char* kMergeLease = "__merge__";

std::string manifest_path(const std::string& root) {
  return root + "/manifest.json";
}
std::string shard_path(const std::string& root, const std::string& job) {
  return root + "/shards/" + job + ".json";
}
std::string merged_report_path(const std::string& root) {
  return root + "/report.json";
}

/// Re-serializes a parsed JsonValue through JsonWriter. Stable for
/// documents this codebase wrote: the writer's %.12g doubles round-trip
/// through parse + re-emit unchanged.
void write_json_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      w.raw("null");
      break;
    case JsonValue::Kind::Bool:
      w.value(v.as_bool());
      break;
    case JsonValue::Kind::Number:
      w.value(v.as_number());
      break;
    case JsonValue::Kind::String:
      w.value(v.as_string());
      break;
    case JsonValue::Kind::Array:
      w.begin_array();
      for (const JsonValue& item : v.items()) write_json_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::Object:
      w.begin_object();
      for (const auto& [key, member] : v.members()) {
        w.key(key);
        write_json_value(w, member);
      }
      w.end_object();
      break;
  }
}

/// Serializes one finished job as a dfmres-campaign-shard-v1 document.
std::string shard_json(const CampaignReportRow& row,
                       const std::string& metrics_json) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kCampaignShardSchema);
  w.field("name", row.name);
  w.field("design", row.design);
  w.field("mode", row.mode);
  w.field("ok", row.ok);
  w.field("status", row.status);
  w.field("skipped", row.skipped);
  w.field("deadline_expired", row.deadline_expired);
  w.field("poisoned", row.poisoned);
  w.field("attempts", row.attempts);
  w.field("worker", row.worker);
  w.field("inner_threads", row.inner_threads);
  w.field("runtime_seconds", row.runtime_seconds);
  if (!row.report_json.empty()) {
    w.key("report");
    w.raw(row.report_json);
  }
  w.key("metrics");
  w.raw(metrics_json);
  w.end_object();
  return w.take();
}

Status shard_error(const std::string& path, const char* what) {
  return make_status(StatusCode::kDataLoss, "shard '%s': %s", path.c_str(),
                     what);
}

/// Parses a shard back into a report row + its metrics sub-document.
Status parse_shard(const std::string& path, const std::string& text,
                   const std::string& expect_name, CampaignReportRow* row,
                   std::string* metrics_json) {
  auto doc = JsonValue::parse(text);
  if (!doc) {
    return make_status(StatusCode::kDataLoss, "shard '%s': %s", path.c_str(),
                       doc.status().message().c_str());
  }
  if (!doc->is_object()) return shard_error(path, "not an object");
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kCampaignShardSchema) {
    return shard_error(path, "bad schema");
  }
  const auto str = [&](const char* key, std::string* out) {
    const JsonValue* v = doc->find(key);
    if (v == nullptr || !v->is_string()) return false;
    *out = v->as_string();
    return true;
  };
  const auto boolean = [&](const char* key, bool* out) {
    const JsonValue* v = doc->find(key);
    if (v == nullptr || !v->is_bool()) return false;
    *out = v->as_bool();
    return true;
  };
  const auto number = [&](const char* key, double* out) {
    const JsonValue* v = doc->find(key);
    if (v == nullptr || !v->is_number()) return false;
    *out = v->as_number();
    return true;
  };
  double attempts = 0.0;
  double inner = 0.0;
  if (!str("name", &row->name) || !str("design", &row->design) ||
      !str("mode", &row->mode) || !boolean("ok", &row->ok) ||
      !str("status", &row->status) || !boolean("skipped", &row->skipped) ||
      !boolean("deadline_expired", &row->deadline_expired) ||
      !boolean("poisoned", &row->poisoned) || !number("attempts", &attempts) ||
      !str("worker", &row->worker) || !number("inner_threads", &inner) ||
      !number("runtime_seconds", &row->runtime_seconds)) {
    return shard_error(path, "missing or mistyped field");
  }
  row->attempts = static_cast<int>(attempts);
  row->inner_threads = static_cast<int>(inner);
  if (row->name != expect_name) return shard_error(path, "wrong job name");
  const JsonValue* report = doc->find("report");
  if (report != nullptr) {
    if (!report->is_object()) return shard_error(path, "bad report");
    JsonWriter w;
    write_json_value(w, *report);
    row->report_json = w.take();
  }
  const JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return shard_error(path, "missing metrics");
  }
  JsonWriter w;
  write_json_value(w, *metrics);
  *metrics_json = w.take();
  return Status::ok();
}

}  // namespace

Status init_campaign_root(const CampaignManifest& manifest,
                          const std::string& root) {
  if (Status s = manifest.validate(); !s.is_ok()) return s;
  if (Status s = make_dir(root); !s.is_ok()) return s;
  for (const char* sub : {"/leases", "/ckpt", "/shards"}) {
    if (Status s = make_dir(root + sub); !s.is_ok()) return s;
  }
  const std::string json = manifest.to_json();
  Expected<std::string> existing = read_file(manifest_path(root));
  if (existing) {
    if (*existing == json) return Status::ok();
    return make_status(StatusCode::kAlreadyExists,
                       "campaign root '%s' holds a different manifest",
                       root.c_str());
  }
  return write_file_atomic(manifest_path(root), json, "init");
}

Expected<CampaignManifest> read_campaign_root(const std::string& root) {
  Expected<std::string> text = read_file(manifest_path(root));
  if (!text) {
    return make_status(StatusCode::kNotFound,
                       "'%s' is not a campaign root (no manifest.json)",
                       root.c_str());
  }
  return CampaignManifest::from_json(*text);
}

bool campaign_shards_complete(const std::string& root,
                              const CampaignManifest& manifest) {
  for (const CampaignJobSpec& job : manifest.jobs) {
    if (!path_exists(shard_path(root, job.name))) return false;
  }
  return true;
}

Expected<std::string> merge_campaign_shards(const std::string& root) {
  auto manifest = read_campaign_root(root);
  if (!manifest) return manifest.status();

  std::vector<CampaignReportRow> rows;
  rows.reserve(manifest->jobs.size());
  MetricsRegistry merged_metrics;
  for (const CampaignJobSpec& job : manifest->jobs) {
    const std::string path = shard_path(root, job.name);
    Expected<std::string> text = read_file(path);
    if (!text) {
      return make_status(StatusCode::kFailedPrecondition,
                         "campaign '%s' is not complete: no shard for job "
                         "'%s'",
                         root.c_str(), job.name.c_str());
    }
    CampaignReportRow row;
    std::string metrics_json;
    if (Status s = parse_shard(path, *text, job.name, &row, &metrics_json);
        !s.is_ok()) {
      return s;
    }
    auto metrics_doc = JsonValue::parse(metrics_json);
    if (!metrics_doc) return shard_error(path, "unparsable metrics");
    if (Status s = merged_metrics.merge_json(*metrics_doc); !s.is_ok()) {
      return shard_error(path, s.message().c_str());
    }
    rows.push_back(std::move(row));
  }

  CampaignReportTotals totals;
  totals.jobs_total = rows.size();
  for (const CampaignReportRow& row : rows) {
    totals.runtime_seconds += row.runtime_seconds;
    if (row.skipped) {
      ++totals.skipped;
    } else if (!row.ok) {
      ++totals.failed;
    } else if (row.deadline_expired) {
      ++totals.expired;
    } else {
      ++totals.completed;
    }
  }
  // jobs_in_flight/thread counts stay 0: a sharded campaign has no
  // single fixed fan-out, and the canonical projection strips them.
  std::string report =
      render_campaign_report(totals, rows, merged_metrics.to_json());
  if (Status s = write_file_atomic(merged_report_path(root), report, "merge");
      !s.is_ok()) {
    return s;
  }
  crash_point("merge");
  return report;
}

namespace {

/// Canonical projection of one embedded run report (see
/// canonical_campaign_report).
Status write_canonical_run_report(JsonWriter& w, const JsonValue& report) {
  if (!report.is_object()) {
    return make_status(StatusCode::kInvalidArgument,
                       "report entry is not an object");
  }
  w.begin_object();
  for (const char* key :
       {"schema", "command", "circuit", "sim_kernel", "sim_words",
        "fingerprint", "initial", "final"}) {
    const JsonValue* v = report.find(key);
    if (v == nullptr) continue;  // fingerprint/initial are optional
    w.key(key);
    write_json_value(w, *v);
  }
  const JsonValue* resyn = report.find("resynthesis");
  if (resyn != nullptr && resyn->is_object()) {
    w.key("resynthesis");
    w.begin_object();
    for (const char* key : {"q_used", "any_accepted"}) {
      const JsonValue* v = resyn->find(key);
      if (v != nullptr) {
        w.key(key);
        write_json_value(w, *v);
      }
    }
    const JsonValue* convergence = resyn->find("convergence");
    if (convergence != nullptr && convergence->is_array()) {
      // Only the accepted records survive: a resumed run replays the
      // accepted sequence bit-identically but never re-probes the
      // rejected candidates from before the interruption. "seconds" is
      // wall clock and drops too.
      w.key("convergence");
      w.begin_array();
      for (const JsonValue& rec : convergence->items()) {
        const JsonValue* accepted = rec.find("accepted");
        if (accepted == nullptr || !accepted->is_bool() ||
            !accepted->as_bool()) {
          continue;
        }
        w.begin_object();
        for (const auto& [key, member] : rec.members()) {
          if (key == "seconds") continue;
          w.key(key);
          write_json_value(w, member);
        }
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  return Status::ok();
}

}  // namespace

Expected<std::string> canonical_campaign_report(std::string_view report_json) {
  auto doc = JsonValue::parse(report_json);
  if (!doc) return doc.status();
  const auto bad = [](const char* what) {
    return make_status(StatusCode::kInvalidArgument, "campaign report: %s",
                       what);
  };
  if (!doc->is_object()) return bad("not an object");
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != CampaignResult::kReportSchema) {
    return bad("bad schema");
  }
  JsonWriter w;
  w.begin_object();
  w.field("schema", schema->as_string());
  for (const char* key :
       {"jobs_total", "completed", "expired", "failed", "skipped"}) {
    const JsonValue* v = doc->find(key);
    if (v == nullptr || !v->is_number()) return bad("missing total");
    w.field(key, static_cast<std::uint64_t>(v->as_number()));
  }
  const JsonValue* jobs = doc->find("jobs");
  if (jobs == nullptr || !jobs->is_array()) return bad("missing jobs");
  w.key("jobs");
  w.begin_array();
  for (const JsonValue& job : jobs->items()) {
    if (!job.is_object()) return bad("job entry is not an object");
    w.begin_object();
    for (const char* key : {"name", "design", "mode", "ok", "status",
                            "skipped", "deadline_expired"}) {
      const JsonValue* v = job.find(key);
      if (v == nullptr) return bad("job entry misses a field");
      w.key(key);
      write_json_value(w, *v);
    }
    // "poisoned" postdates the first report schema revision; absent
    // means false so old and new serial reports canonicalize equal.
    const JsonValue* poisoned = job.find("poisoned");
    w.field("poisoned",
            poisoned != nullptr && poisoned->is_bool() && poisoned->as_bool());
    const JsonValue* report = job.find("report");
    if (report != nullptr) {
      w.key("report");
      if (Status s = write_canonical_run_report(w, *report); !s.is_ok()) {
        return s;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

/// Publishes one finished job as a shard (exclusive: the first writer
/// wins; kAlreadyExists means another worker beat us with bit-identical
/// content, which is success).
Status publish_shard(const std::string& root, const CampaignReportRow& row,
                     const std::string& metrics_json,
                     const std::string& owner) {
  const std::string json = shard_json(row, metrics_json);
  crash_point("shard.stage");
  Status s = write_file_exclusive(shard_path(root, row.name), json, owner);
  if (s.code() == StatusCode::kAlreadyExists) return Status::ok();
  if (s.is_ok()) crash_point("shard.publish");
  return s;
}

}  // namespace

Expected<JobPassOutcome> campaign_job_pass(const CampaignJobPassContext& ctx,
                                           const CampaignJobSpec& spec) {
  const std::string& root = ctx.root;
  if (path_exists(shard_path(root, spec.name))) {
    return JobPassOutcome::kAlreadyDone;
  }
  if (!ctx.skip && cancel_expired(ctx.cancel)) {
    return JobPassOutcome::kCancelled;
  }
  auto claim = ctx.leases->try_claim(spec.name);
  if (!claim) return claim.status();
  if (claim->outcome != LeaseClaim::Outcome::Claimed) {
    return JobPassOutcome::kBusy;
  }
  crash_point("job.start");

  const char* mode_name =
      spec.mode == CampaignJobSpec::Mode::Flow ? kModeFlow : kModeResyn;

  if (claim->poison) {
    // We won the poison epoch: the job burned its attempt budget.
    // Publish the tombstone so the sweep terminates with a complete
    // merged report instead of convoying on one pathological job.
    CampaignReportRow row;
    row.name = spec.name;
    row.design = spec.design;
    row.mode = mode_name;
    row.ok = false;
    row.status = strfmt(
        "internal: poisoned after %d failed attempts; last error: %s",
        ctx.max_attempts,
        claim->prior_error.empty() ? "(lease lost repeatedly)"
                                   : claim->prior_error.c_str());
    row.poisoned = true;
    row.attempts = ctx.max_attempts;
    row.worker = ctx.owner;
    MetricsRegistry empty;
    if (Status s = publish_shard(root, row, empty.to_json(), ctx.owner);
        !s.is_ok()) {
      return s;
    }
    log(LogLevel::Warn, "worker %s: job '%s' poisoned (%d attempts)",
        ctx.owner.c_str(), spec.name.c_str(), ctx.max_attempts);
    if (ctx.telemetry != nullptr) {
      ctx.telemetry->note_job_done();
      (void)ctx.telemetry->publish_now();
    }
    return JobPassOutcome::kPoisoned;
  }

  if (ctx.skip) {
    // Terminalize without running: a cancelled campaign's pending jobs
    // become skipped shards so the merge still completes.
    CampaignReportRow row;
    row.name = spec.name;
    row.design = spec.design;
    row.mode = mode_name;
    row.ok = false;
    row.status = "ok";
    row.skipped = true;
    row.attempts = claim->attempt;
    row.worker = ctx.owner;
    MetricsRegistry empty;
    if (Status s = publish_shard(root, row, empty.to_json(), ctx.owner);
        !s.is_ok()) {
      return s;
    }
    log(LogLevel::Info, "worker %s: job '%s' skipped (campaign cancelled)",
        ctx.owner.c_str(), spec.name.c_str());
    if (ctx.telemetry != nullptr) {
      ctx.telemetry->note_job_done();
      (void)ctx.telemetry->publish_now();
    }
    return JobPassOutcome::kPublished;
  }

  // Run the job under a claim-scoped token: the heartbeat keeper trips
  // it if the lease is lost (so we stop double-computing a taken-over
  // job), and the caller's token chains through it.
  CancelToken claim_token(Deadline::never(), ctx.cancel);
  CampaignOptions job_options;
  job_options.cancel = &claim_token;
  job_options.checkpoint_root = root + "/ckpt";
  job_options.resume = true;
  job_options.total_threads = ctx.total_threads;
  CampaignJobResult result;
  bool lease_lost = false;
  if (ctx.telemetry != nullptr) {
    ctx.telemetry->set_job(spec.name, claim->attempt);
  }
  {
    HeartbeatKeeper keeper(*ctx.leases, spec.name, *claim, &claim_token);
    result = run_job(spec, job_options, ctx.inner_threads);
    lease_lost = keeper.lost();
  }
  if (ctx.telemetry != nullptr) ctx.telemetry->clear_job();
  if (lease_lost) {
    log(LogLevel::Warn, "worker %s: lost lease on '%s' (attempt %d)",
        ctx.owner.c_str(), spec.name.c_str(), claim->attempt);
    return JobPassOutcome::kLeaseLost;  // someone else owns the job now
  }
  if (cancel_expired(ctx.cancel)) {
    // Interrupted mid-job: no shard — the checkpoint journal holds the
    // progress and the next claimant resumes bit-identically.
    return JobPassOutcome::kCancelled;
  }
  if (!result.status.is_ok()) {
    if (Status s = ctx.leases->mark_failed(spec.name, *claim,
                                           result.status.to_string());
        !s.is_ok()) {
      return s;
    }
    log(LogLevel::Warn, "worker %s: job '%s' attempt %d failed: %s",
        ctx.owner.c_str(), spec.name.c_str(), claim->attempt,
        result.status.to_string().c_str());
    return JobPassOutcome::kAttemptFailed;
  }
  CampaignReportRow row;
  row.name = result.name;
  row.design = result.design;
  row.mode = result.mode == CampaignJobSpec::Mode::Flow ? kModeFlow
                                                        : kModeResyn;
  row.ok = result.ok();
  row.status = "ok";
  row.deadline_expired = result.deadline_expired;
  row.attempts = claim->attempt;
  row.worker = ctx.owner;
  row.inner_threads = result.inner_threads;
  row.runtime_seconds = result.seconds;
  if (result.report.has_value()) row.report_json = result.report->to_json();
  if (Status s = publish_shard(root, row,
                               result.metrics != nullptr
                                   ? result.metrics->to_json()
                                   : MetricsRegistry{}.to_json(),
                               ctx.owner);
      !s.is_ok()) {
    return s;
  }
  log(LogLevel::Info, "worker %s: job '%s' done in %.1fs (attempt %d)",
      ctx.owner.c_str(), spec.name.c_str(), result.seconds, claim->attempt);
  if (ctx.telemetry != nullptr) {
    if (result.metrics != nullptr) {
      ctx.telemetry->absorb_metrics(*result.metrics);
    }
    ctx.telemetry->note_job_done();
    (void)ctx.telemetry->publish_now();
  }
  return JobPassOutcome::kPublished;
}

Expected<CampaignWorkerStats> run_campaign_worker(
    const CampaignWorkerOptions& options) {
  const std::string& root = options.campaign_root;
  auto manifest = read_campaign_root(root);
  if (!manifest) return manifest.status();

  LeaseConfig lease_config;
  lease_config.owner = options.owner.empty()
                           ? strfmt("w%d", static_cast<int>(::getpid()))
                           : options.owner;
  lease_config.heartbeat_period = options.heartbeat;
  lease_config.ttl = options.lease_ttl;
  lease_config.max_attempts = options.max_attempts;
  lease_config.backoff_base = options.backoff_base;
  const LeaseDir leases(root, lease_config);
  if (Status s = leases.init(); !s.is_ok()) return s;
  for (const char* sub : {"/ckpt", "/shards"}) {
    if (Status s = make_dir(root + sub); !s.is_ok()) return s;
  }

  const int total_threads = ThreadPool::resolve_threads(options.total_threads);
  const int inner_threads = ThreadPool::lanes_per_job(total_threads, 1);
  log(LogLevel::Info, "worker %s: attached to %s (%zu jobs, %d lanes)",
      lease_config.owner.c_str(), root.c_str(), manifest->jobs.size(),
      inner_threads);

  // The telemetry bus: periodic crash-durable snapshots of this
  // worker's progress and trace spans under <root>/telemetry/. Best
  // effort throughout — a worker that can compute but cannot publish
  // telemetry keeps computing.
  std::optional<TelemetryPublisher> telemetry;
  if (options.telemetry_interval.count() > 0) {
    TelemetryOptions telemetry_options;
    telemetry_options.campaign_root = root;
    telemetry_options.owner = lease_config.owner;
    telemetry_options.interval = options.telemetry_interval;
    telemetry.emplace(std::move(telemetry_options));
    if (Status s = telemetry->init(); !s.is_ok()) {
      log(LogLevel::Warn, "worker %s: telemetry disabled: %s",
          lease_config.owner.c_str(), s.to_string().c_str());
      telemetry.reset();
    }
  }

  CampaignWorkerStats stats;
  CampaignJobPassContext ctx;
  ctx.root = root;
  ctx.leases = &leases;
  ctx.owner = lease_config.owner;
  ctx.total_threads = total_threads;
  ctx.inner_threads = inner_threads;
  ctx.cancel = options.cancel;
  ctx.telemetry = telemetry.has_value() ? &*telemetry : nullptr;
  ctx.max_attempts = lease_config.max_attempts;

  // The same ready-queue pull as run_campaign and the serve daemon:
  // each round seeds the queue with the jobs still lacking shards (in
  // manifest order) and drains it through campaign_job_pass; busy or
  // failed jobs come back on the next round.
  ReadyQueue ready(manifest->jobs.size());
  const auto poll_pause = std::min<std::chrono::nanoseconds>(
      options.heartbeat, std::chrono::milliseconds(200));
  for (;;) {
    if (cancel_expired(options.cancel)) {
      stats.cancelled = true;
      break;
    }
    std::size_t pending = 0;
    for (std::size_t i = 0; i < manifest->jobs.size(); ++i) {
      if (path_exists(shard_path(root, manifest->jobs[i].name))) continue;
      if (ready.try_push(i)) ++pending;  // capacity = |jobs|: never full
    }
    if (pending == 0) break;  // every job has a shard
    bool progressed = false;
    std::uint64_t i = 0;
    while (ready.try_pop(&i)) {
      if (cancel_expired(options.cancel)) break;
      auto outcome = campaign_job_pass(ctx, manifest->jobs[i]);
      if (!outcome) return outcome.status();
      switch (*outcome) {
        case JobPassOutcome::kPublished:
          ++stats.jobs_run;
          progressed = true;
          break;
        case JobPassOutcome::kPoisoned:
          ++stats.jobs_poisoned;
          progressed = true;
          break;
        case JobPassOutcome::kAttemptFailed:
          progressed = true;
          break;
        default:
          break;  // AlreadyDone / Busy / LeaseLost / Cancelled
      }
    }
    if (cancel_expired(options.cancel)) {
      stats.cancelled = true;
      break;
    }
    if (!progressed) std::this_thread::sleep_for(poll_pause);
  }

  if (!stats.cancelled && campaign_shards_complete(root, *manifest) &&
      !path_exists(merged_report_path(root))) {
    // Merge election: the last worker out (or a fresh `dfmres work` on a
    // finished root) claims the merge lease; Busy means another live
    // worker is already merging. A crashed merger goes stale and the
    // next attachment re-claims.
    auto claim = leases.try_claim(kMergeLease);
    if (!claim) return claim.status();
    if (claim->outcome == LeaseClaim::Outcome::Claimed) {
      auto merged = merge_campaign_shards(root);
      if (!merged) return merged.status();
      stats.merged = true;
      log(LogLevel::Info, "worker %s: merged %zu shard(s) into %s",
          lease_config.owner.c_str(), manifest->jobs.size(),
          merged_report_path(root).c_str());
    }
  }
  return stats;
}

}  // namespace dfmres
