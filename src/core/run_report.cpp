#include "src/core/run_report.hpp"
#include "src/core/schemas.hpp"

#include <cstdio>
#include <ctime>

#include "src/sim/simd_dispatch.hpp"
#include "src/util/json.hpp"

namespace dfmres {

namespace {

/// Process CPU seconds so far — paired with wall time in the report, it
/// shows how much the pool actually parallelized.
double process_cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

void write_summary(JsonWriter& w, const StateSummary& s) {
  w.begin_object();
  w.field("faults", static_cast<std::uint64_t>(s.faults));
  w.field("undetectable", static_cast<std::uint64_t>(s.undetectable));
  w.field("smax", static_cast<std::uint64_t>(s.smax));
  w.field("smax_pct", s.smax_pct);
  w.field("coverage", s.coverage);
  w.field("delay", s.delay);
  w.field("power", s.power);
  w.field("tests", static_cast<std::uint64_t>(s.tests));
  w.end_object();
}

}  // namespace

StateSummary StateSummary::of(const FlowState& state) {
  StateSummary s;
  s.faults = state.num_faults();
  s.undetectable = state.num_undetectable();
  s.smax = state.smax();
  s.smax_pct = state.smax_fraction() * 100.0;
  s.coverage = state.coverage();
  s.delay = state.timing.critical_delay;
  s.power = state.timing.total_power();
  s.tests = state.atpg.tests.size();
  return s;
}

RunReport::RunReport(std::string command, std::string circuit)
    : command_(std::move(command)), circuit_(std::move(circuit)) {
  const SimdMode resolved = resolve_simd_mode(global_simd_mode());
  sim_kernel_ = simd_mode_name(resolved);
  sim_words_ = simd_mode_words(resolved);
}

void RunReport::set_threads(int threads) { threads_ = threads; }

void RunReport::set_fingerprint(std::uint64_t fingerprint) {
  fingerprint_ = fingerprint;
  has_fingerprint_ = true;
}

void RunReport::set_initial(const FlowState& state) {
  initial_ = StateSummary::of(state);
}

void RunReport::set_final(const FlowState& state) {
  final_ = StateSummary::of(state);
}

void RunReport::set_resynthesis(const ResynthesisReport& report) {
  resyn_ = report;
  partial_ = partial_ || report.deadline_expired;
}

void RunReport::set_atpg_totals(const AtpgCounters& totals) {
  atpg_ = totals;
}

void RunReport::set_runtime_seconds(double seconds) {
  runtime_seconds_ = seconds;
}

void RunReport::set_partial(bool partial) { partial_ = partial; }

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kRunReport);
  w.field("command", command_);
  w.field("circuit", circuit_);
  w.field("sim_kernel", sim_kernel_);
  w.field("sim_words", sim_words_);
  if (threads_ > 0) w.field("threads", threads_);
  if (has_fingerprint_) {
    w.field("fingerprint",
            strfmt("%016llx", static_cast<unsigned long long>(fingerprint_)));
  }
  w.field("partial", partial_);
  w.field("runtime_seconds", runtime_seconds_);
  w.field("cpu_seconds", process_cpu_seconds());
  if (initial_) {
    w.key("initial");
    write_summary(w, *initial_);
  }
  if (final_) {
    w.key("final");
    write_summary(w, *final_);
  }
  if (atpg_) {
    w.key("atpg");
    w.raw(atpg_->json());
  }
  if (resyn_) {
    const ResynthesisReport& r = *resyn_;
    w.key("resynthesis");
    w.begin_object();
    w.field("q_used", r.q_used);
    w.field("any_accepted", r.any_accepted);
    w.field("deadline_expired", r.deadline_expired);
    w.field("runtime_seconds", r.runtime_seconds);
    w.key("counters");
    w.begin_object();
    w.field("rungs_skipped", static_cast<std::uint64_t>(r.rungs_skipped));
    w.field("replayed_accepts",
            static_cast<std::uint64_t>(r.replayed_accepts));
    w.field("candidates_built",
            static_cast<std::uint64_t>(r.candidates_built));
    w.field("u_in_probes", static_cast<std::uint64_t>(r.u_in_probes));
    w.field("full_probes", static_cast<std::uint64_t>(r.full_probes));
    w.field("sig_hits", static_cast<std::uint64_t>(r.sig_hits));
    w.field("stash_commits", static_cast<std::uint64_t>(r.stash_commits));
    w.field("probe_frame_bytes", r.probe_frame_bytes);
    w.field("probe_full_loads", r.probe_full_loads);
    w.field("probe_overlay_loads", r.probe_overlay_loads);
    w.field("probe_load_seconds", r.probe_load_seconds);
    w.end_object();
    w.key("phase_seconds");
    w.begin_object();
    w.field("build", r.build_seconds);
    w.field("u_in", r.u_in_seconds);
    w.field("probe", r.probe_seconds);
    w.field("signoff", r.signoff_seconds);
    w.end_object();
    w.key("convergence");
    w.begin_array();
    for (const IterationRecord& rec : r.trace) {
      w.begin_object();
      w.field("q", rec.q);
      w.field("phase", rec.phase);
      w.field("accepted", rec.accepted);
      w.field("via_backtracking", rec.via_backtracking);
      w.field("ban_through", rec.banned_through);
      w.field("smax", static_cast<std::uint64_t>(rec.smax));
      w.field("undetectable", static_cast<std::uint64_t>(rec.undetectable));
      w.field("faults", static_cast<std::uint64_t>(rec.faults));
      w.field("smax_pct",
              rec.faults == 0 ? 0.0
                              : 100.0 * static_cast<double>(rec.smax) /
                                    static_cast<double>(rec.faults));
      w.field("delay", rec.delay);
      w.field("power", rec.power);
      w.field("seconds", rec.seconds);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.take();
}

Status RunReport::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot open report output '%s'", path.c_str());
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return make_status(StatusCode::kDataLoss,
                       "short write to report output '%s'", path.c_str());
  }
  return Status::ok();
}

void publish_metrics(const ResynthesisReport& report,
                     MetricsRegistry& registry) {
  registry.add("resyn.candidates_built", report.candidates_built);
  registry.add("resyn.u_in_probes", report.u_in_probes);
  registry.add("resyn.full_probes", report.full_probes);
  registry.add("resyn.sig_hits", report.sig_hits);
  registry.add("resyn.stash_commits", report.stash_commits);
  registry.add("resyn.rungs_skipped", report.rungs_skipped);
  registry.add("resyn.replayed_accepts", report.replayed_accepts);
  registry.add("resyn.probe_frame_bytes", report.probe_frame_bytes);
  registry.add("resyn.probe_full_loads", report.probe_full_loads);
  registry.add("resyn.probe_overlay_loads", report.probe_overlay_loads);
  registry.observe("resyn.probe_load_seconds", report.probe_load_seconds);
  registry.observe("resyn.build_seconds", report.build_seconds);
  registry.observe("resyn.u_in_seconds", report.u_in_seconds);
  registry.observe("resyn.probe_seconds", report.probe_seconds);
  registry.observe("resyn.signoff_seconds", report.signoff_seconds);
  registry.set_gauge("resyn.q_used", report.q_used);
  registry.set_gauge("resyn.deadline_expired",
                     report.deadline_expired ? 1.0 : 0.0);
  std::uint64_t accepted = 0;
  for (const IterationRecord& rec : report.trace) {
    accepted += rec.accepted ? 1 : 0;
    const double x = rec.seconds;
    registry.sample("resyn.series.undetectable", x,
                    static_cast<double>(rec.undetectable));
    registry.sample("resyn.series.smax", x, static_cast<double>(rec.smax));
    if (rec.faults > 0) {
      registry.sample("resyn.series.smax_pct", x,
                      100.0 * static_cast<double>(rec.smax) /
                          static_cast<double>(rec.faults));
    }
    registry.sample("resyn.series.delay", x, rec.delay);
    registry.sample("resyn.series.power", x, rec.power);
    registry.sample("resyn.series.accepted", x, rec.accepted ? 1.0 : 0.0);
  }
  registry.add("resyn.candidates_recorded", report.trace.size());
  registry.add("resyn.accepted", accepted);
}

}  // namespace dfmres
