#include "src/core/serve.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/campaign.hpp"
#include "src/core/lease.hpp"
#include "src/core/request.hpp"
#include "src/core/telemetry.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"
#include "src/util/logging.hpp"
#include "src/util/ready_queue.hpp"
#include "src/util/thread_pool.hpp"

namespace dfmres {

namespace {

/// One admitted campaign. Immutable fields are set on admission (the
/// main thread appends, workers only read); the atomics cross the
/// worker boundary. Lives in a deque so references stay stable as
/// campaigns are admitted.
struct ServeCampaign {
  ServeCampaign(std::string id_in, std::string root_in,
                CampaignManifest manifest_in, int client_fd_in,
                const CancelToken* server_token)
      : id(std::move(id_in)),
        root(std::move(root_in)),
        manifest(std::move(manifest_in)),
        client_fd(client_fd_in),
        token(Deadline::never(), server_token) {}

  std::string id;
  std::string root;
  CampaignManifest manifest;
  int client_fd;  ///< subscriber connection; -1 = headless (main only)
  std::size_t jobs_terminal = 0;  ///< main-thread accounting
  bool done = false;              ///< report event delivered (main only)
  /// Explicit per-campaign cancel (the cancel request): pending jobs
  /// terminalize as skipped shards. Distinct from `token` tripping via
  /// the server parent, which must leave resumable state instead.
  std::atomic<bool> cancel_requested{false};
  /// Merge election within the daemon: first worker to see the full
  /// shard set claims the merge.
  std::atomic<bool> merge_claimed{false};
  CancelToken token;  ///< chained to the server token
};

/// What a worker tells the main loop after finishing a queue item.
struct WorkerEvent {
  std::size_t campaign = 0;
  std::size_t job = 0;
  JobPassOutcome outcome = JobPassOutcome::kCancelled;
  bool terminal = false;       ///< the job now has a shard
  bool campaign_done = false;  ///< this event also merged the report
  std::string report_json;     ///< set when campaign_done
  std::string error;           ///< pass/merge infrastructure error
};

struct Client {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
};

constexpr std::uint64_t encode_job(std::size_t campaign, std::size_t job) {
  return (static_cast<std::uint64_t>(campaign) << 32) |
         static_cast<std::uint64_t>(job);
}

/// Shared daemon state. The main thread owns admission, client I/O and
/// campaign bookkeeping; workers own job execution. They meet at the
/// ready queue (jobs out) and the event list + wake pipe (results in).
struct ServeState {
  explicit ServeState(const ServeOptions& options_in)
      : options(options_in),
        server_token(Deadline::never(), options_in.cancel),
        queue(options_in.queue_capacity) {}

  const ServeOptions& options;
  CancelToken server_token;
  ReadyQueue queue;
  std::deque<ServeCampaign> campaigns;
  std::mutex mutex;  ///< guards campaigns size changes + events
  std::vector<WorkerEvent> events;
  int wake_write = -1;
  std::atomic<std::size_t> inflight{0};
  int inner_threads = 1;

  ServeCampaign& campaign(std::size_t index) {
    std::lock_guard<std::mutex> lock(mutex);
    return campaigns[index];
  }

  void post(WorkerEvent event) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back(std::move(event));
    }
    const char byte = 1;
    (void)!::write(wake_write, &byte, 1);
  }
};

/// Runs one queue item to a terminal (or abandoned) state, then posts
/// the result. Retries Busy/AttemptFailed/LeaseLost in place: with one
/// daemon each job is popped exactly once, so nobody else will.
void run_queue_item(ServeState& state, const std::string& owner,
                    std::uint64_t item) {
  const std::size_t ci = static_cast<std::size_t>(item >> 32);
  const std::size_t ji = static_cast<std::size_t>(item & 0xffffffffu);
  ServeCampaign& c = state.campaign(ci);
  const CampaignJobSpec& spec = c.manifest.jobs[ji];

  LeaseConfig lease_config;
  lease_config.owner = owner;
  LeaseDir leases(c.root, lease_config);
  WorkerEvent event;
  event.campaign = ci;
  event.job = ji;
  if (Status s = leases.init(); !s.is_ok()) {
    event.error = s.to_string();
    state.post(std::move(event));
    return;
  }

  CampaignJobPassContext ctx;
  ctx.root = c.root;
  ctx.leases = &leases;
  ctx.owner = owner;
  ctx.total_threads = state.options.total_threads;
  ctx.inner_threads = state.inner_threads;
  ctx.cancel = &c.token;
  ctx.max_attempts = lease_config.max_attempts;

  for (;;) {
    ctx.skip = c.cancel_requested.load(std::memory_order_relaxed) &&
               !state.server_token.expired();
    auto outcome = campaign_job_pass(ctx, spec);
    if (!outcome) {
      event.error = outcome.status().to_string();
      break;
    }
    event.outcome = *outcome;
    if (*outcome == JobPassOutcome::kPublished ||
        *outcome == JobPassOutcome::kPoisoned ||
        *outcome == JobPassOutcome::kAlreadyDone) {
      event.terminal = true;
      break;
    }
    if (*outcome == JobPassOutcome::kCancelled) {
      if (state.server_token.expired()) break;  // resumable shutdown
      // Campaign cancel: loop back in and publish the skip shard. The
      // pause covers the moment the token is visibly tripped but
      // cancel_requested is not yet.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // Busy / AttemptFailed / LeaseLost: back off and retry. The lease
    // layer's attempt budget bounds this — a job that keeps failing
    // poisons and terminates.
    if (state.server_token.expired()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (event.terminal && campaign_shards_complete(c.root, c.manifest) &&
      !c.merge_claimed.exchange(true)) {
    auto merged = merge_campaign_shards(c.root);
    if (merged) {
      event.campaign_done = true;
      event.report_json = std::move(*merged);
    } else if (merged.code() != StatusCode::kFailedPrecondition) {
      event.error = merged.status().to_string();
    } else {
      // Lost a race with a shard that vanished? Cannot happen with one
      // daemon; release the claim so a later event retries.
      c.merge_claimed.store(false);
    }
  }
  state.post(std::move(event));
}

void worker_main(ServeState& state, int index) {
  const std::string owner = strfmt("serve-w%d", index);
  for (;;) {
    Expected<std::uint64_t> item = state.queue.pop(&state.server_token);
    if (!item) return;  // closed-and-drained, or server cancel
    run_queue_item(state, owner, *item);
  }
}

// ---- response rendering --------------------------------------------------

std::string render_simple_event(const char* event) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", event);
  w.end_object();
  return w.take() + "\n";
}

std::string render_accepted(const std::string& id, std::size_t jobs) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", "accepted");
  if (!id.empty()) w.field("id", id);
  w.field("jobs", static_cast<std::uint64_t>(jobs));
  w.end_object();
  return w.take() + "\n";
}

std::string render_rejected(const std::string& id, const Status& status) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", "rejected");
  if (!id.empty()) w.field("id", id);
  w.field("code", status_code_name(status.code()));
  w.field("error", status.message());
  w.end_object();
  return w.take() + "\n";
}

std::string render_error(const Status& status) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", "error");
  w.field("code", status_code_name(status.code()));
  w.field("error", status.message());
  w.end_object();
  return w.take() + "\n";
}

std::string render_job_done(const std::string& id, const std::string& job,
                            JobPassOutcome outcome) {
  const char* name = "published";
  if (outcome == JobPassOutcome::kPoisoned) name = "poisoned";
  if (outcome == JobPassOutcome::kAlreadyDone) name = "already_done";
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", "job_done");
  w.field("id", id);
  w.field("job", job);
  w.field("outcome", name);
  w.end_object();
  return w.take() + "\n";
}

std::string render_report(const std::string& id,
                          const std::string& report_json) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", "report");
  w.field("id", id);
  w.key("report");
  w.raw(report_json);
  w.end_object();
  return w.take() + "\n";
}

std::string render_campaign_status(const std::string& id,
                                   const CampaignStatus& status) {
  std::string doc = render_status_json(status);
  while (!doc.empty() && doc.back() == '\n') doc.pop_back();
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", "status");
  w.field("id", id);
  w.key("status");
  w.raw(doc);
  w.end_object();
  return w.take() + "\n";
}

// ---- the daemon ----------------------------------------------------------

class Server {
 public:
  explicit Server(const ServeOptions& options)
      : options_(options), state_(options) {}

  Expected<ServeStats> run();

 private:
  Status setup_socket();
  Status recover_campaigns();
  void accept_clients();
  void read_client(Client& client);
  void flush_client(Client& client);
  void drop_client(std::size_t index);
  void handle_line(Client& client, std::string_view line);
  void handle_request(Client& client, Request request);
  Status admit(const std::string& id, CampaignManifest manifest,
               int client_fd, std::size_t* enqueued);
  void send_to(int fd, const std::string& bytes);
  void process_events();
  ServeCampaign* find_campaign(const std::string& id);
  std::string render_server_status() const;
  void shutdown_workers();

  const ServeOptions& options_;
  ServeState state_;
  ServeStats stats_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  std::vector<Client> clients_;
  std::vector<std::thread> workers_;
  bool draining_ = false;
  int drain_fd_ = -1;
  std::size_t active_campaigns_ = 0;
};

Status Server::setup_socket() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return make_status(StatusCode::kInvalidArgument,
                       "serve: bad socket path '%s'",
                       options_.socket_path.c_str());
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return make_status(StatusCode::kInternal, "serve: socket(): %s",
                       std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // serve owns the path
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return make_status(StatusCode::kInternal, "serve: bind('%s'): %s",
                       options_.socket_path.c_str(), std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) {
    return make_status(StatusCode::kInternal, "serve: listen(): %s",
                       std::strerror(errno));
  }
  return Status::ok();
}

/// Startup replay: every sub-root with a manifest but no merged report
/// is an interrupted campaign — re-admit it headless and re-enqueue its
/// unfinished jobs. Lease TTL takeover and checkpoint resume make the
/// re-run bit-identical from wherever the previous daemon died.
Status Server::recover_campaigns() {
  Expected<std::vector<std::string>> entries =
      list_dir(options_.campaign_root);
  if (!entries) return Status::ok();  // fresh root
  for (const std::string& name : *entries) {
    const std::string root = options_.campaign_root + "/" + name;
    if (!path_exists(root + "/manifest.json")) continue;
    if (path_exists(root + "/report.json")) continue;
    auto manifest = read_campaign_root(root);
    if (!manifest) {
      log(LogLevel::Warn, "serve: skipping unreadable campaign '%s': %s",
          name.c_str(), manifest.status().to_string().c_str());
      continue;
    }
    std::size_t enqueued = 0;
    if (Status s = admit(name, std::move(*manifest), -1, &enqueued);
        !s.is_ok()) {
      log(LogLevel::Warn, "serve: cannot recover campaign '%s': %s",
          name.c_str(), s.to_string().c_str());
      continue;
    }
    ++stats_.campaigns_recovered;
    log(LogLevel::Info, "serve: recovered campaign '%s' (%zu job(s) left)",
        name.c_str(), enqueued);
  }
  return Status::ok();
}

ServeCampaign* Server::find_campaign(const std::string& id) {
  for (ServeCampaign& c : state_.campaigns) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

Status Server::admit(const std::string& id, CampaignManifest manifest,
                     int client_fd, std::size_t* enqueued) {
  if (draining_) {
    return make_status(StatusCode::kUnavailable,
                       "server is draining; not accepting submissions");
  }
  if (find_campaign(id) != nullptr) {
    return make_status(StatusCode::kAlreadyExists,
                       "campaign '%s' is already active", id.c_str());
  }
  if (client_fd >= 0) {
    std::size_t active = 0;
    for (const ServeCampaign& c : state_.campaigns) {
      if (c.client_fd == client_fd && !c.done) ++active;
    }
    if (active >= options_.max_client_campaigns) {
      return make_status(StatusCode::kResourceExhausted,
                         "client quota: %zu active campaign(s) (max %zu)",
                         active, options_.max_client_campaigns);
    }
  }
  const std::size_t jobs = manifest.jobs.size();
  const std::size_t inflight = state_.inflight.load();
  if (inflight + jobs > options_.max_inflight_jobs) {
    return make_status(StatusCode::kResourceExhausted,
                       "in-flight job bound: %zu + %zu > %zu", inflight, jobs,
                       options_.max_inflight_jobs);
  }
  if (state_.queue.size_approx() + jobs > state_.queue.capacity()) {
    return make_status(StatusCode::kResourceExhausted,
                       "ready queue bound: %zu + %zu > %zu",
                       state_.queue.size_approx(), jobs,
                       state_.queue.capacity());
  }

  const std::string root = options_.campaign_root + "/" + id;
  if (Status s = init_campaign_root(manifest, root); !s.is_ok()) return s;

  std::size_t index = 0;
  {
    std::lock_guard<std::mutex> lock(state_.mutex);
    index = state_.campaigns.size();
    state_.campaigns.emplace_back(id, root, std::move(manifest), client_fd,
                                  &state_.server_token);
  }
  ServeCampaign& c = state_.campaigns[index];
  std::size_t pushed = 0;
  for (std::size_t j = 0; j < c.manifest.jobs.size(); ++j) {
    if (path_exists(root + "/shards/" + c.manifest.jobs[j].name + ".json")) {
      ++c.jobs_terminal;
      continue;
    }
    // Bound checked above; with one producer (this thread) the push
    // cannot fail.
    if (!state_.queue.try_push(encode_job(index, j))) {
      return make_status(StatusCode::kInternal,
                         "ready queue rejected job %zu of '%s'", j,
                         id.c_str());
    }
    state_.inflight.fetch_add(1);
    ++pushed;
  }
  ++active_campaigns_;
  if (enqueued != nullptr) *enqueued = pushed;
  if (pushed == 0 && c.jobs_terminal == c.manifest.jobs.size()) {
    // Every shard already exists (re-admitted root killed between the
    // last shard and the merge): merge inline so the campaign
    // completes without a worker touching it.
    if (!c.merge_claimed.exchange(true)) {
      auto merged = merge_campaign_shards(root);
      if (merged) {
        WorkerEvent event;
        event.campaign = index;
        event.job = 0;
        event.terminal = false;
        event.campaign_done = true;
        event.report_json = std::move(*merged);
        state_.post(std::move(event));
      }
    }
  }
  return Status::ok();
}

void Server::send_to(int fd, const std::string& bytes) {
  if (fd < 0) return;
  for (Client& client : clients_) {
    if (client.fd == fd) {
      client.outbuf += bytes;
      return;
    }
  }
}

void Server::handle_request(Client& client, Request request) {
  if (std::holds_alternative<RunRequest>(request.payload)) {
    auto& run = std::get<RunRequest>(request.payload);
    CampaignManifest manifest;
    manifest.jobs.push_back(std::move(run.job));
    std::size_t enqueued = 0;
    if (Status s = admit(run.id, std::move(manifest), client.fd, &enqueued);
        !s.is_ok()) {
      ++stats_.requests_rejected;
      client.outbuf += render_rejected(run.id, s);
      return;
    }
    ++stats_.campaigns_admitted;
    client.outbuf += render_accepted(run.id, 1);
  } else if (std::holds_alternative<CampaignRequest>(request.payload)) {
    auto& submit = std::get<CampaignRequest>(request.payload);
    const std::size_t jobs = submit.manifest.jobs.size();
    std::size_t enqueued = 0;
    if (Status s = admit(submit.id, std::move(submit.manifest), client.fd,
                         &enqueued);
        !s.is_ok()) {
      ++stats_.requests_rejected;
      client.outbuf += render_rejected(submit.id, s);
      return;
    }
    ++stats_.campaigns_admitted;
    client.outbuf += render_accepted(submit.id, jobs);
  } else if (std::holds_alternative<StatusRequest>(request.payload)) {
    const auto& status = std::get<StatusRequest>(request.payload);
    if (status.id.empty()) {
      client.outbuf += render_server_status();
      return;
    }
    const std::string root = options_.campaign_root + "/" + status.id;
    auto polled = poll_campaign_status(root);
    if (!polled) {
      client.outbuf += render_error(polled.status());
      return;
    }
    client.outbuf += render_campaign_status(status.id, *polled);
  } else if (std::holds_alternative<CancelRequest>(request.payload)) {
    const auto& cancel = std::get<CancelRequest>(request.payload);
    ServeCampaign* c = find_campaign(cancel.id);
    if (c == nullptr) {
      client.outbuf += render_error(make_status(
          StatusCode::kNotFound, "no active campaign '%s'",
          cancel.id.c_str()));
      return;
    }
    c->cancel_requested.store(true, std::memory_order_relaxed);
    c->token.cancel();
    client.outbuf += render_accepted(cancel.id, 0);
  } else {
    draining_ = true;
    drain_fd_ = client.fd;
    client.outbuf += render_accepted("", 0);
  }
}

void Server::handle_line(Client& client, std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return;
  Expected<Request> request = parse_request(line);
  if (!request) {
    ++stats_.requests_malformed;
    client.outbuf += render_error(request.status());
    return;
  }
  handle_request(client, *std::move(request));
}

std::string Server::render_server_status() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kResponse);
  w.field("event", "status");
  w.key("server");
  w.begin_object();
  w.field("campaigns", static_cast<std::uint64_t>(state_.campaigns.size()));
  w.field("active", static_cast<std::uint64_t>(active_campaigns_));
  w.field("inflight_jobs",
          static_cast<std::uint64_t>(state_.inflight.load()));
  w.field("queue_depth",
          static_cast<std::uint64_t>(state_.queue.size_approx()));
  w.field("workers", static_cast<std::int64_t>(options_.workers));
  w.field("draining", draining_);
  w.end_object();
  w.end_object();
  return w.take() + "\n";
}

void Server::accept_clients() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    Client client;
    client.fd = fd;
    clients_.push_back(std::move(client));
  }
}

void Server::read_client(Client& client) {
  char buf[4096];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::read(client.fd, buf, sizeof(buf));
    if (n > 0) {
      client.inbuf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    eof = true;  // EOF or hard error
    break;
  }
  // Process complete lines even on EOF: a submit-and-hang-up client
  // (nc style) still gets its campaign admitted.
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = client.inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    handle_line(client,
                std::string_view(client.inbuf).substr(start, nl - start));
    start = nl + 1;
  }
  client.inbuf.erase(0, start);
  if (eof) {
    // Poison the fd (negative, recoverable) so the drop pass after the
    // poll loop closes it; queued events cannot misroute meanwhile.
    client.fd = -client.fd - 2;
  }
}

void Server::flush_client(Client& client) {
  while (!client.outbuf.empty()) {
    const ssize_t n =
        ::write(client.fd, client.outbuf.data(), client.outbuf.size());
    if (n > 0) {
      client.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    client.fd = -client.fd - 2;  // broken pipe: poison for drop
    return;
  }
}

void Server::drop_client(std::size_t index) {
  const int poisoned = clients_[index].fd;
  const int fd = poisoned >= 0 ? poisoned : -(poisoned + 2);
  for (ServeCampaign& c : state_.campaigns) {
    if (c.client_fd == fd) c.client_fd = -1;  // campaign continues headless
  }
  if (drain_fd_ == fd) drain_fd_ = -1;
  ::close(fd);
  clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(index));
}

void Server::process_events() {
  std::vector<WorkerEvent> events;
  {
    std::lock_guard<std::mutex> lock(state_.mutex);
    events.swap(state_.events);
  }
  for (WorkerEvent& event : events) {
    ServeCampaign& c = state_.campaigns[event.campaign];
    if (!event.error.empty()) {
      log(LogLevel::Warn, "serve: campaign '%s' job %zu: %s", c.id.c_str(),
          event.job, event.error.c_str());
    }
    if (event.terminal) {
      ++c.jobs_terminal;
      ++stats_.jobs_executed;
      state_.inflight.fetch_sub(1);
      send_to(c.client_fd,
              render_job_done(c.id, c.manifest.jobs[event.job].name,
                              event.outcome));
    } else if (!event.campaign_done) {
      // Abandoned (shutdown) or dropped on an infrastructure error;
      // the job stays on disk for the next start, not in our count.
      state_.inflight.fetch_sub(1);
    }
    if (event.campaign_done && !c.done) {
      c.done = true;
      --active_campaigns_;
      ++stats_.campaigns_completed;
      send_to(c.client_fd, render_report(c.id, event.report_json));
      log(LogLevel::Info, "serve: campaign '%s' complete (%zu job(s))",
          c.id.c_str(), c.manifest.jobs.size());
    }
  }
}

void Server::shutdown_workers() {
  state_.queue.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

Expected<ServeStats> Server::run() {
  if (options_.campaign_root.empty()) {
    return make_status(StatusCode::kInvalidArgument,
                       "serve: --campaign-root is required");
  }
  if (Status s = make_dir(options_.campaign_root); !s.is_ok()) return s;
  if (Status s = setup_socket(); !s.is_ok()) return s;

  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) {
    return make_status(StatusCode::kInternal, "serve: pipe2(): %s",
                       std::strerror(errno));
  }
  wake_read_ = wake[0];
  state_.wake_write = wake[1];

  const int workers = std::max(1, options_.workers);
  const int total = ThreadPool::resolve_threads(options_.total_threads);
  state_.inner_threads = ThreadPool::lanes_per_job(total, workers);
  log(LogLevel::Info,
      "serve: root %s, socket %s, %d worker(s), %d lane(s) each",
      options_.campaign_root.c_str(), options_.socket_path.c_str(), workers,
      state_.inner_threads);

  if (Status s = recover_campaigns(); !s.is_ok()) return s;

  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(state_, i); });
  }

  const int poll_ms = std::max<int>(
      1, static_cast<int>(options_.poll_interval.count() / 1000000));
  for (;;) {
    if (cancel_expired(options_.cancel)) {
      state_.server_token.cancel();
      break;
    }
    if (draining_ && state_.inflight.load() == 0 && active_campaigns_ == 0) {
      stats_.drained = true;
      break;
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_, POLLIN, 0});
    for (const Client& client : clients_) {
      short events = POLLIN;
      if (!client.outbuf.empty()) events |= POLLOUT;
      fds.push_back({client.fd, events, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), poll_ms);
    if (rc < 0 && errno != EINTR) {
      state_.server_token.cancel();
      shutdown_workers();
      return make_status(StatusCode::kInternal, "serve: poll(): %s",
                         std::strerror(errno));
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_, drain, sizeof(drain)) > 0) {
      }
    }
    process_events();

    if ((fds[0].revents & POLLIN) != 0) accept_clients();
    for (std::size_t i = 0; i < clients_.size() && i + 2 < fds.size(); ++i) {
      Client& client = clients_[i];
      if (client.fd < 0) continue;
      const short revents = fds[i + 2].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) read_client(client);
      if (client.fd >= 0 && (revents & POLLOUT) != 0) flush_client(client);
      if (client.fd >= 0 && !client.outbuf.empty()) flush_client(client);
    }
    for (std::size_t i = clients_.size(); i-- > 0;) {
      if (clients_[i].fd < 0) drop_client(i);
    }
  }

  shutdown_workers();
  process_events();  // deliver results that raced the shutdown

  if (stats_.drained && drain_fd_ >= 0) {
    // Synchronous farewell: the drain requester gets the event even
    // though the poll loop is gone.
    const std::string bye = render_simple_event("drained");
    for (Client& client : clients_) {
      if (client.fd == drain_fd_) {
        client.outbuf += bye;
        int spins = 0;
        while (!client.outbuf.empty() && spins++ < 1000) {
          flush_client(client);
          if (client.fd < 0) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
  }
  for (Client& client : clients_) {
    if (client.fd >= 0) ::close(client.fd);
  }
  clients_.clear();
  ::close(listen_fd_);
  ::close(wake_read_);
  ::close(state_.wake_write);
  ::unlink(options_.socket_path.c_str());
  log(LogLevel::Info,
      "serve: exit (%zu admitted, %zu recovered, %zu completed, %zu "
      "rejected, %s)",
      stats_.campaigns_admitted, stats_.campaigns_recovered,
      stats_.campaigns_completed, stats_.requests_rejected,
      stats_.drained ? "drained" : "cancelled");
  return stats_;
}

}  // namespace

Expected<ServeStats> run_serve(const ServeOptions& options) {
  Server server(options);
  return server.run();
}

}  // namespace dfmres
