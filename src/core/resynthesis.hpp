#pragma once

#include <string>
#include <vector>

#include "src/core/flow.hpp"
#include "src/util/cancel.hpp"

namespace dfmres {

struct ResynthesisOptions {
  /// Phase-1 target: stop when the largest cluster holds at most this
  /// fraction of all faults (p1 = 1% in the paper).
  double p1 = 0.01;
  /// Maximum acceptable percentage increase in delay and power (q swept
  /// 0..q_max; die area is never allowed to grow).
  int q_max = 5;
  /// Safety bound on accepted iterations per phase per q step.
  int max_iterations_per_phase = 24;
  /// Early phase termination: stop scanning cells after the candidate
  /// total-U trend has risen this many consecutive times (Section III-B).
  int trend_window = 2;
  /// Budget of PDesign()-backed candidate evaluations per iteration
  /// (ladder scan + backtracking); memo hits are free. Bounds the
  /// exploration cost of one accepted step.
  int reanalyses_per_iteration = 64;
  /// Recognize ban prefixes that re-map the region onto an identical
  /// replacement and reuse their metrics instead of re-analyzing. The
  /// reanalysis budget is still charged exactly as a recompute would
  /// charge it, so the accepted-candidate sequence is unchanged.
  bool dedup_candidates = true;
  /// Evaluate the remaining ladder rungs speculatively on the shared
  /// thread pool before the serial acceptance walk. Decisions stay
  /// serial in ladder order, so results match the serial run; requires
  /// dedup_candidates and degenerates to the serial walk with a single
  /// worker.
  bool parallel_ladder = true;
  /// Cooperative stop signal (deadline or explicit cancellation).
  /// Speculative probes poll it; committed work (acceptance realization,
  /// the final sign-off) always runs to completion, so on expiry the
  /// procedure returns the best design accepted so far — never a
  /// half-applied edit. Null = run to natural completion.
  const CancelToken* cancel = nullptr;
  /// Directory for the crash-safe acceptance journal (empty = no
  /// checkpointing). Each accepted candidate is appended and fsync'd
  /// before the search continues.
  std::string checkpoint_dir;
  /// Replay a journal found in `checkpoint_dir` before searching: the
  /// accepted-candidate sequence is rebuilt through the deterministic
  /// candidate path and committed via the warm-start flow, reconverging
  /// to the identical design point, then the live search resumes where
  /// the journal ends. A missing journal falls back to a fresh run; a
  /// journal written by a different run (options / initial design /
  /// seed-test mismatch) fails with kFailedPrecondition.
  bool resume = false;
};

/// One evaluated candidate (for the Fig. 2 style per-iteration trace).
/// Accepted records describe the committed state after the step;
/// rejected records describe the probed candidate that was turned down
/// (candidates without full metrics — map/u_in-gate/area failures and
/// cancellations — are not recorded).
struct IterationRecord {
  int q = 0;
  int phase = 1;
  std::size_t smax = 0;          ///< after this step
  std::size_t undetectable = 0;  ///< after this step
  bool accepted = false;
  bool via_backtracking = false;
  std::string banned_through;    ///< last cell banned for this attempt
  std::size_t faults = 0;        ///< fault universe size at this point
  double delay = 0.0;            ///< critical-path delay
  double power = 0.0;            ///< total power
  double seconds = 0.0;          ///< wall time since resynthesize() began
};

struct ResynthesisReport {
  int q_used = 0;  ///< largest q at which an acceptance happened (Max Inc)
  bool any_accepted = false;
  std::vector<IterationRecord> trace;
  double runtime_seconds = 0.0;
  /// The cancel token expired before the search finished: the result is
  /// the best accepted design, not the converged one.
  bool deadline_expired = false;
  /// Ladder rungs abandoned because cancellation interrupted their
  /// evaluation (their probes are discarded, never memoized).
  std::size_t rungs_skipped = 0;
  /// Acceptances reconstructed from a checkpoint journal instead of
  /// searched for.
  std::size_t replayed_accepts = 0;
  /// Candidate-evaluation economics of the inner loop (includes the
  /// speculative ladder work when parallel_ladder is on).
  std::size_t candidates_built = 0;  ///< region extractions + re-mappings
  std::size_t u_in_probes = 0;       ///< internal-fault ATPG probes
  std::size_t full_probes = 0;       ///< PDesign()-backed re-analyses
  std::size_t sig_hits = 0;          ///< identical-candidate metric reuses
  std::size_t stash_commits = 0;     ///< acceptances realized from the stash
  double build_seconds = 0.0;
  double u_in_seconds = 0.0;
  double probe_seconds = 0.0;
  double signoff_seconds = 0.0;      ///< final test-generating analysis
  /// Probe-side fault-sim load economics, aggregated over every probe
  /// session the search ran (committed analyses report through the
  /// flow's own totals). `probe_frame_bytes` is the good-frame bytes
  /// materialized by probe batch loads — the number the copy-on-write
  /// overlays exist to shrink from O(netlist) to O(cone) per probe.
  std::uint64_t probe_frame_bytes = 0;
  std::uint64_t probe_full_loads = 0;
  std::uint64_t probe_overlay_loads = 0;
  double probe_load_seconds = 0.0;
};

struct ResynthesisResult {
  FlowState state;  ///< final design, re-analyzed with test generation
  ResynthesisReport report;
};

/// The paper's two-phase resynthesis procedure (Section III):
///  - phase 1 repeatedly re-maps the gates of the largest undetectable
///    cluster that carry undetectable internal faults, banning cells in
///    decreasing internal-fault order, until %Smax <= p1;
///  - phase 2 does the same over every gate with undetectable internal
///    faults, accepting only strict total-U decreases with %Smax <= p2;
///  - PDesign() runs only when the undetectable internal fault count
///    drops; constraint violations trigger the sqrt(n)-group
///    backtracking procedure (Section III-C);
///  - q (the delay/power envelope) is swept 0..q_max, each step applied
///    on top of the previous solution.
///
/// Cancellation is not an error: on deadline/cancel expiry the best
/// accepted design is signed off and returned with
/// `report.deadline_expired` set. Errors are reserved for checkpoint
/// problems: journal IO failures, a fingerprint mismatch on resume
/// (kFailedPrecondition), or a journal that no longer replays against
/// this design (kDataLoss).
[[nodiscard]] Expected<ResynthesisResult> resynthesize(
    DesignFlow& flow, const FlowState& original,
    const ResynthesisOptions& options);

/// The fingerprint pinning a checkpoint journal (and a run report) to
/// (procedure options, flow options, initial design point, seed tests) —
/// everything that influences the accepted-candidate sequence. The same
/// value resynthesize() writes into the journal header.
[[nodiscard]] std::uint64_t resynthesis_fingerprint(
    const DesignFlow& flow, const FlowState& original,
    const ResynthesisOptions& options);

}  // namespace dfmres
