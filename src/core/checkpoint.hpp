#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.hpp"

namespace dfmres {

/// Crash-safe acceptance journal for the resynthesis procedure.
///
/// The journal is a text file of checksummed single-line records,
/// fsync'd after every append, holding exactly the information needed to
/// replay the accepted-candidate sequence deterministically against the
/// same initial design:
///
///   H <version> <fingerprint>            header; fingerprint pins the
///                                        (options, initial state, seed
///                                        tests) the journal belongs to
///   A <q> <ph> <bt> <cell> <smax> <undet> <k> <gate>*k <banned-bits>
///                                        one accepted candidate: the
///                                        region gate ids and the ban
///                                        bitset reproduce the identical
///                                        replacement netlist (ids and
///                                        all) via the deterministic
///                                        build path; smax/undet verify
///                                        the replay landed on the same
///                                        design point
///   D                                    search completed (no record
///                                        past this point is expected;
///                                        a journal without it resumes
///                                        the live search)
///   F <undet> <smax> <faults>            final sign-off metrics
///
/// Every line carries a trailing " #xxxxxxxx" CRC-32 of its body. A
/// torn tail (one trailing line that fails the checksum or lacks a
/// newline — the only damage a crash mid-append can cause on a POSIX
/// filesystem) is dropped silently; corruption *before* valid records
/// is reported as kDataLoss.
struct CheckpointRecord {
  enum class Kind : std::uint8_t { Accept, Done, Final };
  Kind kind = Kind::Accept;
  // Accept fields.
  int q = 0;
  int phase = 1;
  bool via_backtracking = false;
  std::string cell_name;                ///< last cell banned (trace label)
  std::vector<std::uint32_t> region;    ///< parent gate ids re-mapped
  std::vector<bool> banned;             ///< per-CellId ban flags
  // Accept: metrics after the step. Final: sign-off metrics.
  std::uint64_t smax = 0;
  std::uint64_t undetectable = 0;
  std::uint64_t faults = 0;             ///< Final only
};

struct CheckpointJournal {
  std::uint64_t fingerprint = 0;
  std::vector<CheckpointRecord> records;
  /// Byte length of the valid prefix (a resuming writer truncates the
  /// file here before appending, so a dropped torn tail stays dropped).
  std::uint64_t valid_bytes = 0;
  /// True when a Done record is present: the search finished and replay
  /// alone reproduces the full run.
  [[nodiscard]] bool search_complete() const;
};

/// CRC-32 (IEEE, reflected) of a byte string.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Journal path inside a checkpoint directory.
[[nodiscard]] std::string checkpoint_journal_path(const std::string& dir);

/// Parses the journal under `dir`. kNotFound when no journal exists
/// (callers usually start fresh), kDataLoss on interior corruption or a
/// missing/garbled header.
[[nodiscard]] Expected<CheckpointJournal> read_checkpoint(
    const std::string& dir);

/// Append-only journal writer with fsync-per-record durability. All
/// methods are single-threaded; the resynthesis procedure appends only
/// from its serial acceptance walk.
/// Append-only journal writer. Both open paths take a non-blocking
/// exclusive fcntl(F_OFD_SETLK) whole-file lock before touching any
/// bytes and hold it until close: on a shared campaign root this fences
/// a taken-over writer — a stalled-but-alive previous lease holder gets
/// kUnavailable instead of interleaving appends with the new claimant.
/// OFD locks bind to the open file description (not the process), die
/// with the fd on any exit including SIGKILL, and conflict between two
/// writers inside one process, so the fence is unit-testable.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Creates `dir` (one level) if needed and starts a fresh journal,
  /// clobbering any previous one, with a fingerprint header.
  [[nodiscard]] Status open_fresh(const std::string& dir,
                                  std::uint64_t fingerprint);

  /// Re-opens an existing journal for appending after a replay:
  /// truncates to `valid_bytes` (dropping a torn tail for good) and
  /// leaves the cursor at the end.
  [[nodiscard]] Status open_resume(const std::string& dir,
                                   std::uint64_t valid_bytes);

  /// Serializes, appends, flushes, and fsyncs one record. The record is
  /// durable when this returns OK.
  [[nodiscard]] Status append(const CheckpointRecord& record);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  void close();

 private:
  [[nodiscard]] Status write_line(const std::string& body);

  int fd_ = -1;
  std::string path_;
};

}  // namespace dfmres
