#include "src/core/flow.hpp"

#include <algorithm>

#include "src/core/telemetry.hpp"
#include "src/library/osu018.hpp"
#include "src/util/logging.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

DesignFlow::DesignFlow(std::shared_ptr<const Library> target,
                       FlowOptions options)
    : target_(std::move(target)), options_(options), udfm_(*target_) {}

Expected<FlowState> DesignFlow::run_initial(const Netlist& rtl) {
  // Synthesize(): technology mapping with arithmetic/sequential macros
  // pinned, the way RTL synthesis instantiates adder and flop cells.
  MapOptions map_options;
  const Library& slib = rtl.library();
  const auto pin_macro = [&](const char* src_name, const char* dst_name) {
    if (const auto src = slib.find(src_name)) {
      if (const auto dst = target_->find(dst_name)) {
        map_options.fixed_map.emplace(src->value(), *dst);
      }
    }
  };
  pin_macro("DFF", "DFFPOSX1");
  pin_macro("FA", "FAX1");
  pin_macro("HA", "HAX1");

  auto mapped = technology_map(rtl, target_, map_options);
  if (!mapped) return mapped.status();

  const Floorplan plan = make_floorplan(*mapped, options_.utilization);
  Placement placement = global_place(*mapped, plan, options_.place);
  auto state = analyze(AnalysisRequest::placed(std::move(*mapped),
                                               std::move(placement),
                                               /*generate_tests=*/true));
  if (!state) {
    // The initial floorplan is sized for the mapped netlist, so the
    // area constraint cannot fire here; treat it as an invariant breach.
    fatal_invariant("run_initial: initial placement of '%s' did not fit",
                    rtl.name().c_str());
  }
  return std::move(*state);
}

Expected<FlowState> DesignFlow::analyze(AnalysisRequest request) {
  if ((request.previous != nullptr) == request.placement.has_value()) {
    return make_status(StatusCode::kInvalidArgument,
                       "analyze: exactly one of previous/placement must be "
                       "set on the AnalysisRequest");
  }
  if (request.previous != nullptr) {
    std::optional<Placement> placement;
    {
      TraceSpan span("flow.incremental_place", "flow");
      placement = incremental_place(request.netlist, *request.previous);
    }
    if (!placement) {
      return make_status(StatusCode::kUnsatisfiable,
                         "analyze: die cannot absorb the edit to '%s'",
                         request.netlist.name().c_str());
    }
    // Gates without a position in the previous placement are exactly the
    // ones the edit introduced (ids are never reused), so the rewritten
    // region is recoverable without the caller spelling it out.
    std::vector<GateId> changed;
    const Placement& previous = *request.previous;
    for (GateId g : request.netlist.live_gates()) {
      if (g.value() >= previous.pos.size() ||
          !previous.pos[g.value()].valid()) {
        changed.push_back(g);
      }
    }
    return analyze_committed(std::move(request.netlist),
                             std::move(*placement), request.generate_tests,
                             &changed);
  }
  return analyze_committed(std::move(request.netlist),
                           std::move(*request.placement),
                           request.generate_tests,
                           /*changed_gates=*/nullptr);
}

FlowState DesignFlow::analyze_committed(
    Netlist netlist, Placement placement, bool generate_tests,
    const std::vector<GateId>* changed_gates) {
  // Cone bookkeeping: accumulate the rewrites since the last seed epoch;
  // an edit of unknown extent poisons cone trust until re-anchored.
  if (changed_gates) {
    changed_since_seed_.insert(changed_since_seed_.end(),
                               changed_gates->begin(), changed_gates->end());
  } else {
    changed_unknown_ = true;
  }

  TraceSpan analyze_span("flow.analyze", "flow");
  if (analyze_span.active()) {
    analyze_span.arg("gates",
                     static_cast<std::uint64_t>(netlist.num_live_gates()));
    analyze_span.arg("generate_tests", generate_tests ? 1 : 0);
  }
  // Stage spans reuse one optional slot; emplace closes the previous
  // stage before opening the next, so the spans tile the function.
  std::optional<TraceSpan> stage;
  stage.emplace("flow.route", "flow");
  RoutingResult routing = route(netlist, placement, options_.route);
  stage.emplace("flow.sta", "flow");
  TimingPower timing = analyze_timing_power(netlist, routing, options_.sta);
  stage.emplace("flow.extract_faults", "flow");
  FaultUniverse universe =
      extract_dfm_faults(netlist, placement, routing, udfm_);
  stage.emplace("flow.atpg", "flow");
  AtpgOptions atpg_options = options_.atpg;
  atpg_options.generate_tests = generate_tests;
  atpg_options.arena = &arena_;
  std::vector<std::uint8_t> untouched;
  if (options_.warm_start) {
    if (!seed_tests_.empty()) atpg_options.seed_tests = &seed_tests_;
    if (generate_tests && !changed_unknown_ && !seed_tests_.empty()) {
      untouched = cone_untouched_flags(netlist, universe, changed_since_seed_);
      atpg_options.cone_untouched = &untouched;
    }
  }
  AtpgResult atpg = run_atpg(netlist, universe, udfm_, atpg_options, &cache_);
  atpg_totals_.merge(atpg.counters);
  ProgressCounters& progress = ProgressCounters::global();
  progress.analyses.fetch_add(1, std::memory_order_relaxed);
  progress.faults_classified.fetch_add(universe.size(),
                                       std::memory_order_relaxed);
  if (generate_tests) {
    // Re-anchor the seed epoch: these tests become the replay set and
    // the rewritten-gate ledger restarts from this design point.
    seed_tests_ = atpg.tests;
    changed_since_seed_.clear();
    changed_unknown_ = false;
  }
  // This netlist is now the committed design probes will diff against;
  // re-anchor the shared seed frames onto it.
  rebase_overlays(netlist);
  stage.emplace("flow.cluster", "flow");
  ClusterAnalysis clusters =
      cluster_undetectable(netlist, universe, atpg.status);
  stage.reset();
  return FlowState{std::move(netlist), std::move(placement),
                   std::move(routing), std::move(timing),
                   std::move(universe), std::move(atpg),
                   std::move(clusters)};
}

Expected<FlowState> DesignFlow::probe_reanalyze_impl(
    Netlist netlist, const Placement& previous, bool generate_tests,
    const FaultStatusCache* base_cache, FaultStatusCache* updates,
    FaultSimArena* arena, int num_threads, const CancelToken* cancel,
    AtpgCounters* counters) const {
  if (cancel_expired(cancel)) return cancel->to_status();
  TraceSpan probe_span("flow.probe", "flow");
  auto placement = incremental_place(netlist, previous);
  if (!placement) {
    return make_status(StatusCode::kUnsatisfiable,
                       "probe: die cannot absorb the edit to '%s'",
                       netlist.name().c_str());
  }
  RoutingResult routing = route(netlist, *placement, options_.route);
  TimingPower timing = analyze_timing_power(netlist, routing, options_.sta);
  FaultUniverse universe =
      extract_dfm_faults(netlist, *placement, routing, udfm_);
  AtpgOptions atpg_options = options_.atpg;
  atpg_options.generate_tests = generate_tests;
  atpg_options.arena = arena;
  atpg_options.cancel = cancel;
  if (num_threads != 0) atpg_options.num_threads = num_threads;
  if (options_.warm_start && !seed_tests_.empty()) {
    atpg_options.seed_tests = &seed_tests_;
    if (options_.probe_overlays && probe_baseline_.valid()) {
      atpg_options.baseline = &probe_baseline_;
    }
  }
  AtpgResult atpg =
      run_atpg_overlay(netlist, universe, udfm_, atpg_options, base_cache,
                       updates);
  if (atpg.cancelled) return cancel->to_status();
  if (counters != nullptr) counters->merge(atpg.counters);
  ProgressCounters& progress = ProgressCounters::global();
  progress.probes_committed.fetch_add(1, std::memory_order_relaxed);
  progress.faults_classified.fetch_add(universe.size(),
                                       std::memory_order_relaxed);
  ClusterAnalysis clusters =
      cluster_undetectable(netlist, universe, atpg.status);
  return FlowState{std::move(netlist), std::move(*placement),
                   std::move(routing), std::move(timing),
                   std::move(universe), std::move(atpg),
                   std::move(clusters)};
}

Expected<std::size_t> DesignFlow::probe_count_impl(
    const Netlist& nl, const FaultStatusCache* base_cache,
    FaultStatusCache* updates, FaultSimArena* arena, int num_threads,
    const CancelToken* cancel, AtpgCounters* counters) const {
  if (cancel_expired(cancel)) return cancel->to_status();
  TraceSpan probe_span("flow.u_in_probe", "flow");
  const FaultUniverse internal = extract_internal_faults(nl, udfm_);
  AtpgOptions atpg_options = options_.atpg;
  atpg_options.generate_tests = false;
  atpg_options.arena = arena;
  atpg_options.cancel = cancel;
  if (num_threads != 0) atpg_options.num_threads = num_threads;
  if (options_.warm_start && !seed_tests_.empty()) {
    atpg_options.seed_tests = &seed_tests_;
    if (options_.probe_overlays && probe_baseline_.valid()) {
      atpg_options.baseline = &probe_baseline_;
    }
  }
  const AtpgResult result =
      run_atpg_overlay(nl, internal, udfm_, atpg_options, base_cache, updates);
  if (result.cancelled) return cancel->to_status();
  if (counters != nullptr) counters->merge(result.counters);
  ProgressCounters& progress = ProgressCounters::global();
  progress.analyses.fetch_add(1, std::memory_order_relaxed);
  progress.faults_classified.fetch_add(internal.size(),
                                       std::memory_order_relaxed);
  return result.num_undetectable;
}

Expected<FlowState> ProbeSession::reanalyze(Netlist netlist,
                                            const Placement& previous,
                                            bool generate_tests) {
  return flow_->probe_reanalyze_impl(std::move(netlist), previous,
                                     generate_tests, base_, &updates_, arena_,
                                     num_threads_, cancel_, &counters_);
}

Expected<std::size_t> ProbeSession::count_undetectable_internal(
    const Netlist& nl) {
  return flow_->probe_count_impl(nl, base_, &updates_, arena_, num_threads_,
                                 cancel_, &counters_);
}

void DesignFlow::rebase_overlays(const Netlist& nl) {
  if (!options_.warm_start || !options_.probe_overlays ||
      seed_tests_.empty()) {
    probe_baseline_.clear();
    return;
  }
  rebase_sim_baseline(probe_baseline_, nl, seed_tests_, options_.atpg.seed,
                      options_.atpg.random_batches);
}

void DesignFlow::commit_updates(const FaultStatusCache& updates) {
  for (const auto& [key, status] : updates.map) cache_.map[key] = status;
}

std::vector<std::uint8_t> DesignFlow::cone_untouched_flags(
    const Netlist& nl, const FaultUniverse& universe,
    std::span<const GateId> changed_gates) {
  // A: nets whose value could differ after an arbitrary rewrite of the
  // changed gates — the fanout closure of their outputs, stopping at
  // sequential cells (full-scan frames are independent scan loads).
  std::vector<std::uint8_t> in_a(nl.net_capacity(), 0);
  std::vector<NetId> stack;
  const auto push_a = [&](NetId n) {
    if (n.valid() && n.value() < in_a.size() && !in_a[n.value()]) {
      in_a[n.value()] = 1;
      stack.push_back(n);
    }
  };
  for (GateId g : changed_gates) {
    if (!nl.gate_alive(g)) continue;
    for (NetId out : nl.gate(g).outputs) push_a(out);
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    for (const PinRef& sink : nl.net(n).sinks) {
      if (nl.cell_of(sink.gate).sequential) continue;
      for (NetId out : nl.gate(sink.gate).outputs) push_a(out);
    }
  }
  // B: nets that can reach A (backward closure over combinational
  // gates). A fault whose victim is outside B cannot propagate through
  // any changed value — not even via side inputs, because a path gate
  // with a side input in A has its output in A, which the victim would
  // then reach. So victim ∉ B (and aggressor ∉ B for bridges) plus an
  // unchanged owner makes excitation and propagation both invariant.
  std::vector<std::uint8_t> in_b = in_a;
  for (std::uint32_t v = 0; v < in_a.size(); ++v) {
    if (in_a[v]) stack.push_back(NetId{v});
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const auto& net = nl.net(n);
    if (!net.has_gate_driver()) continue;
    if (nl.cell_of(net.driver_gate).sequential) continue;
    for (NetId f : nl.gate(net.driver_gate).fanin) {
      if (f.valid() && f.value() < in_b.size() && !in_b[f.value()]) {
        in_b[f.value()] = 1;
        stack.push_back(f);
      }
    }
  }
  std::vector<std::uint8_t> changed_gate(nl.gate_capacity(), 0);
  for (GateId g : changed_gates) {
    if (g.value() < changed_gate.size()) changed_gate[g.value()] = 1;
  }

  std::vector<std::uint8_t> untouched(universe.size(), 0);
  const auto net_touched = [&](NetId n) {
    return n.valid() && (n.value() >= in_b.size() || in_b[n.value()] != 0);
  };
  for (std::uint32_t i = 0; i < universe.size(); ++i) {
    const Fault& f = universe.faults[i];
    bool touched = net_touched(f.victim);
    if (f.kind == FaultKind::Bridge) touched = touched || net_touched(f.aggressor);
    if (f.owner.valid() && (f.owner.value() >= changed_gate.size() ||
                            changed_gate[f.owner.value()] != 0)) {
      touched = true;
    }
    untouched[i] = touched ? 0 : 1;
  }
  return untouched;
}

std::vector<CellId> DesignFlow::cells_by_internal_faults() const {
  std::vector<std::pair<std::size_t, CellId>> ranked;
  for (std::uint32_t i = 0; i < target_->num_cells(); ++i) {
    const CellId id{i};
    if (target_->cell(id).sequential) continue;
    const std::size_t count = internal_fault_count(*target_, udfm_, id);
    if (count > 0) ranked.emplace_back(count, id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<CellId> order;
  order.reserve(ranked.size());
  for (const auto& [count, id] : ranked) order.push_back(id);
  return order;
}

}  // namespace dfmres
