#include "src/core/flow.hpp"

#include <algorithm>
#include <cstdlib>

#include "src/library/osu018.hpp"
#include "src/util/logging.hpp"

namespace dfmres {

DesignFlow::DesignFlow(std::shared_ptr<const Library> target,
                       FlowOptions options)
    : target_(std::move(target)), options_(options), udfm_(*target_) {}

FlowState DesignFlow::run_initial(const Netlist& rtl) {
  // Synthesize(): technology mapping with arithmetic/sequential macros
  // pinned, the way RTL synthesis instantiates adder and flop cells.
  MapOptions map_options;
  const Library& slib = rtl.library();
  const auto pin_macro = [&](const char* src_name, const char* dst_name) {
    if (const auto src = slib.find(src_name)) {
      if (const auto dst = target_->find(dst_name)) {
        map_options.fixed_map.emplace(src->value(), *dst);
      }
    }
  };
  pin_macro("DFF", "DFFPOSX1");
  pin_macro("FA", "FAX1");
  pin_macro("HA", "HAX1");

  auto mapped = technology_map(rtl, target_, map_options);
  if (!mapped) {
    log_error("run_initial: mapping failed for '%s'", rtl.name().c_str());
    std::abort();
  }

  const Floorplan plan = make_floorplan(*mapped, options_.utilization);
  const Placement placement = global_place(*mapped, plan, options_.place);
  auto state = reanalyze_with_placement(std::move(*mapped), placement,
                                        /*generate_tests=*/true);
  return std::move(*state);
}

std::optional<FlowState> DesignFlow::reanalyze(Netlist netlist,
                                               const Placement& previous,
                                               bool generate_tests) {
  auto placement = incremental_place(netlist, previous);
  if (!placement) return std::nullopt;  // die full: area constraint
  return reanalyze_with_placement(std::move(netlist), *placement,
                                  generate_tests);
}

std::optional<FlowState> DesignFlow::reanalyze_with_placement(
    Netlist netlist, Placement placement, bool generate_tests) {
  RoutingResult routing = route(netlist, placement, options_.route);
  TimingPower timing = analyze_timing_power(netlist, routing, options_.sta);
  FaultUniverse universe =
      extract_dfm_faults(netlist, placement, routing, udfm_);
  AtpgOptions atpg_options = options_.atpg;
  atpg_options.generate_tests = generate_tests;
  AtpgResult atpg = run_atpg(netlist, universe, udfm_, atpg_options, &cache_);
  ClusterAnalysis clusters =
      cluster_undetectable(netlist, universe, atpg.status);
  return FlowState{std::move(netlist), std::move(placement),
                   std::move(routing), std::move(timing),
                   std::move(universe), std::move(atpg),
                   std::move(clusters)};
}

std::size_t DesignFlow::count_undetectable_internal(const Netlist& nl) {
  const FaultUniverse internal = extract_internal_faults(nl, udfm_);
  AtpgOptions atpg_options = options_.atpg;
  atpg_options.generate_tests = false;
  const AtpgResult result =
      run_atpg(nl, internal, udfm_, atpg_options, &cache_);
  return result.num_undetectable;
}

std::vector<CellId> DesignFlow::cells_by_internal_faults() const {
  std::vector<std::pair<std::size_t, CellId>> ranked;
  for (std::uint32_t i = 0; i < target_->num_cells(); ++i) {
    const CellId id{i};
    if (target_->cell(id).sequential) continue;
    const std::size_t count = internal_fault_count(*target_, udfm_, id);
    if (count > 0) ranked.emplace_back(count, id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<CellId> order;
  order.reserve(ranked.size());
  for (const auto& [count, id] : ranked) order.push_back(id);
  return order;
}

}  // namespace dfmres
