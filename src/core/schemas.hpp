#pragma once

#include <cstddef>
#include <string_view>

/// The schema registry: every versioned `dfmres-*-v1` document name the
/// system reads or writes, in one place. JSON emitters reference these
/// constants instead of repeating the literal, and `scripts/check.sh`
/// cross-checks this list against `summarize_report.py --list-schemas`,
/// so a new document type cannot land unregistered on either side of
/// the C++/Python boundary.
///
/// Version bumps are new constants (kFooV2 next to kFooV1 during a
/// migration window), never edits: a persisted document's schema string
/// is a contract with every reader that ever shipped.

namespace dfmres::schemas {

// ---- persisted / wire documents ----

/// Campaign manifest: the job list a campaign executes.
inline constexpr const char* kCampaignManifest = "dfmres-campaign-manifest-v1";
/// Merged campaign report (serial scheduler and shard merge).
inline constexpr const char* kCampaignReport = "dfmres-campaign-report-v1";
/// One finished job, published exclusively by its lease holder.
inline constexpr const char* kCampaignShard = "dfmres-campaign-shard-v1";
/// Single-run report (`--report-out` of flow/resyn).
inline constexpr const char* kRunReport = "dfmres-run-report-v1";
/// Epoch lease record under <root>/leases/<job>/e<N>.
inline constexpr const char* kLease = "dfmres-lease-v1";
/// Crash-durable worker snapshot under <root>/telemetry/.
inline constexpr const char* kTelemetry = "dfmres-telemetry-v1";
/// `dfmres status --json` poll line.
inline constexpr const char* kStatus = "dfmres-status-v1";
/// Client request over the `dfmres serve` socket (one per line).
inline constexpr const char* kRequest = "dfmres-request-v1";
/// Server event over the `dfmres serve` socket (one per line).
inline constexpr const char* kResponse = "dfmres-response-v1";

// ---- benchmark reports ----

inline constexpr const char* kBenchProbeOverlay =
    "dfmres-bench-probe-overlay-v1";
inline constexpr const char* kBenchSimdKernel = "dfmres-bench-simd-kernel-v1";
/// Saturation bench: submit->done latency percentiles vs offered load.
inline constexpr const char* kBenchServe = "dfmres-bench-serve-v1";

/// Every registered schema, for exhaustive validation sweeps.
inline constexpr const char* kAll[] = {
    kCampaignManifest, kCampaignReport, kCampaignShard, kRunReport,
    kLease,            kTelemetry,      kStatus,        kRequest,
    kResponse,         kBenchProbeOverlay, kBenchSimdKernel, kBenchServe,
};

[[nodiscard]] inline constexpr bool is_registered(std::string_view schema) {
  for (const char* name : kAll) {
    if (schema == name) return true;
  }
  return false;
}

}  // namespace dfmres::schemas
