#include "src/core/telemetry.hpp"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "src/core/campaign.hpp"
#include "src/core/lease.hpp"
#include "src/util/crashpoint.hpp"
#include "src/util/fmt.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"

namespace dfmres {

namespace {

/// Reserved lease the merge election runs under (see campaign.cpp).
constexpr const char* kMergeLeaseName = "__merge__";

/// How stale a heartbeat / snapshot may be before status renders the
/// holder as "stale" rather than "running" and stops counting the
/// worker as live for the ETA. Deliberately generous: status is a
/// human-paced view, not the lease TTL.
constexpr double kStaleAfterSeconds = 10.0;

// ---- telemetry snapshot document ----

struct SnapshotEvent {
  std::string name;
  std::string cat;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t rec = 0;
  std::uint64_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

struct Snapshot {
  std::string owner;
  std::uint64_t seq = 0;
  std::uint64_t pid = 0;
  std::uint64_t published_ns = 0;
  std::uint64_t anchor_ns = 0;
  std::string job;
  int attempt = 0;
  int phase = 0;
  int jobs_done = 0;
  std::uint64_t analyses = 0;
  std::uint64_t faults_classified = 0;
  std::uint64_t probes_committed = 0;
  std::vector<SnapshotEvent> events;
};

bool json_u64(const JsonValue& doc, const char* key, std::uint64_t* out) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || !v->is_number() || v->as_number() < 0) return false;
  *out = static_cast<std::uint64_t>(v->as_number());
  return true;
}

bool json_str(const JsonValue& doc, const char* key, std::string* out) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->as_string();
  return true;
}

/// Parses one dfmres-telemetry-v1 document. Returns false for anything
/// malformed — readers tolerate torn or foreign files by skipping them.
bool parse_snapshot(std::string_view text, Snapshot* out) {
  Expected<JsonValue> doc = JsonValue::parse(text);
  if (!doc || !doc->is_object()) return false;
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kTelemetrySchema) {
    return false;
  }
  std::uint64_t attempt = 0;
  std::uint64_t phase = 0;
  std::uint64_t jobs_done = 0;
  if (!json_str(*doc, "owner", &out->owner) ||
      !json_u64(*doc, "seq", &out->seq) ||
      !json_u64(*doc, "pid", &out->pid) ||
      !json_u64(*doc, "published_ns", &out->published_ns) ||
      !json_u64(*doc, "trace_anchor_ns", &out->anchor_ns) ||
      !json_str(*doc, "job", &out->job) ||
      !json_u64(*doc, "attempt", &attempt) ||
      !json_u64(*doc, "phase", &phase) ||
      !json_u64(*doc, "jobs_done", &jobs_done)) {
    return false;
  }
  out->attempt = static_cast<int>(attempt);
  out->phase = static_cast<int>(phase);
  out->jobs_done = static_cast<int>(jobs_done);
  const JsonValue* progress = doc->find("progress");
  if (progress == nullptr || !progress->is_object() ||
      !json_u64(*progress, "analyses", &out->analyses) ||
      !json_u64(*progress, "faults_classified", &out->faults_classified) ||
      !json_u64(*progress, "probes_committed", &out->probes_committed)) {
    return false;
  }
  const JsonValue* trace = doc->find("trace");
  if (trace == nullptr || !trace->is_array()) return false;
  for (const JsonValue& item : trace->items()) {
    if (!item.is_object()) return false;
    SnapshotEvent ev;
    if (!json_str(item, "name", &ev.name) ||
        !json_str(item, "cat", &ev.cat) ||
        !json_u64(item, "start_ns", &ev.start_ns) ||
        !json_u64(item, "dur_ns", &ev.dur_ns) ||
        !json_u64(item, "id", &ev.id) ||
        !json_u64(item, "parent", &ev.parent) ||
        !json_u64(item, "rec", &ev.rec) ||
        !json_u64(item, "tid", &ev.tid)) {
      return false;
    }
    if (const JsonValue* args = item.find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->members()) {
        if (!value.is_string()) return false;
        ev.args.emplace_back(key, value.as_string());
      }
    }
    out->events.push_back(std::move(ev));
  }
  return true;
}

/// Splits `<owner>.<seq>.json` from the right, so owners containing
/// dots stay intact. Anything else (temp files, foreign files) is
/// rejected.
bool parse_telemetry_name(const std::string& name, std::string* owner,
                          std::uint64_t* seq) {
  constexpr std::string_view kExt = ".json";
  if (name.size() <= kExt.size() ||
      name.compare(name.size() - kExt.size(), kExt.size(), kExt) != 0) {
    return false;
  }
  const std::string stem = name.substr(0, name.size() - kExt.size());
  const std::size_t dot = stem.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= stem.size()) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = dot + 1; i < stem.size(); ++i) {
    const char c = stem[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *owner = stem.substr(0, dot);
  *seq = value;
  return true;
}

/// All parsable snapshots of a root, ordered by (owner, seq). Torn and
/// foreign files are skipped; a missing telemetry directory is an empty
/// campaign, not an error.
std::vector<Snapshot> load_snapshots(const std::string& root) {
  std::vector<Snapshot> out;
  Expected<std::vector<std::string>> names = list_dir(root + "/telemetry");
  if (!names) return out;
  for (const std::string& name : *names) {
    std::string owner;
    std::uint64_t seq = 0;
    if (!parse_telemetry_name(name, &owner, &seq)) continue;
    Expected<std::string> text = read_file(root + "/telemetry/" + name);
    if (!text) continue;
    Snapshot snap;
    if (!parse_snapshot(*text, &snap)) continue;
    if (snap.owner != owner || snap.seq != seq) continue;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(), [](const Snapshot& a, const Snapshot& b) {
    return a.owner != b.owner ? a.owner < b.owner : a.seq < b.seq;
  });
  return out;
}

/// Minimal shard facts the trace merge / status poll need; full parsing
/// lives in campaign.cpp.
struct ShardFacts {
  bool present = false;
  bool ok = false;
  bool poisoned = false;
  bool deadline_expired = false;
  bool skipped = false;
  int attempts = 0;
  std::string worker;
  std::string status;
  double runtime_seconds = 0.0;
};

ShardFacts read_shard_facts(const std::string& root, const std::string& job) {
  ShardFacts facts;
  Expected<std::string> text = read_file(root + "/shards/" + job + ".json");
  if (!text) return facts;
  Expected<JsonValue> doc = JsonValue::parse(*text);
  if (!doc || !doc->is_object()) return facts;
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kCampaignShardSchema) {
    return facts;
  }
  const auto boolean = [&](const char* key, bool* out) {
    const JsonValue* v = doc->find(key);
    if (v != nullptr && v->is_bool()) *out = v->as_bool();
  };
  facts.present = true;
  boolean("ok", &facts.ok);
  boolean("poisoned", &facts.poisoned);
  boolean("deadline_expired", &facts.deadline_expired);
  boolean("skipped", &facts.skipped);
  std::uint64_t attempts = 0;
  if (json_u64(*doc, "attempts", &attempts)) {
    facts.attempts = static_cast<int>(attempts);
  }
  (void)json_str(*doc, "worker", &facts.worker);
  (void)json_str(*doc, "status", &facts.status);
  if (const JsonValue* v = doc->find("runtime_seconds");
      v != nullptr && v->is_number()) {
    facts.runtime_seconds = v->as_number();
  }
  return facts;
}

/// Epoch lease records of one job, index 0 = epoch 1. Torn epochs are
/// kept as empty optionals so takeover classification can still see the
/// epoch count.
std::vector<std::pair<bool, LeaseRecord>> read_epochs(const std::string& root,
                                                      const std::string& job) {
  std::vector<std::pair<bool, LeaseRecord>> epochs;
  for (int k = 1;; ++k) {
    const std::string path = root + "/leases/" + job + strfmt("/e%d", k);
    if (!path_exists(path)) break;
    Expected<std::string> text = read_file(path);
    bool parsed = false;
    LeaseRecord rec;
    if (text) {
      if (Expected<LeaseRecord> r = LeaseRecord::parse(*text)) {
        rec = *r;
        parsed = true;
      }
    }
    epochs.emplace_back(parsed, std::move(rec));
  }
  return epochs;
}

void write_args_object(
    JsonWriter& w,
    const std::vector<std::pair<std::string, std::string>>& args) {
  w.key("args");
  w.begin_object();
  for (const auto& [key, value] : args) w.field(key, value);
  w.end_object();
}

double to_us(std::uint64_t ns, std::uint64_t base_ns) {
  return static_cast<double>(ns - base_ns) / 1e3;
}

}  // namespace

// ---- ProgressCounters ----

ProgressCounters& ProgressCounters::global() {
  static ProgressCounters counters;
  return counters;
}

// ---- TelemetryPublisher ----

std::string telemetry_file_name(const std::string& owner, std::uint64_t seq) {
  return owner + strfmt(".%llu.json", static_cast<unsigned long long>(seq));
}

TelemetryPublisher::TelemetryPublisher(TelemetryOptions options)
    : options_(std::move(options)) {}

Status TelemetryPublisher::init() {
  dir_ = options_.campaign_root + "/telemetry";
  if (Status s = make_dir(dir_); !s.is_ok()) return s;
  // Recover the sequence: a respawned worker with the same owner must
  // continue past every name it already published, or the exclusive
  // create would wedge it behind its own history.
  std::uint64_t max_seq = 0;
  Expected<std::vector<std::string>> names = list_dir(dir_);
  if (!names) return names.status();
  for (const std::string& name : *names) {
    std::string owner;
    std::uint64_t seq = 0;
    if (parse_telemetry_name(name, &owner, &seq) && owner == options_.owner) {
      max_seq = std::max(max_seq, seq);
    }
  }
  next_seq_.store(max_seq + 1, std::memory_order_relaxed);
  Tracer& tracer = Tracer::instance();
  tracer_was_enabled_ = tracer.enabled();
  tracer.enable();
  // Both clocks are CLOCK_MONOTONIC; the anchor maps tracer-relative
  // span times onto the lease timeline so the merge can interleave
  // spans and lease events from different processes on one axis.
  anchor_ns_ = lease_now_ns() - tracer.now_ns();
  initialized_ = true;
  if (options_.interval.count() > 0) {
    thread_ = std::thread([this] { run(); });
  }
  return Status::ok();
}

TelemetryPublisher::~TelemetryPublisher() {
  if (thread_.joinable()) {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  if (initialized_) {
    // Final drain snapshot: a clean exit (including SIGINT/SIGTERM
    // drains that unwind through destructors) always leaves the last
    // interval's spans on the bus.
    std::lock_guard lock(mutex_);
    (void)publish_locked();
    if (!tracer_was_enabled_) Tracer::instance().disable();
  }
}

void TelemetryPublisher::run() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      return;
    }
    (void)publish_locked();
  }
}

void TelemetryPublisher::set_job(const std::string& job, int attempt) {
  std::lock_guard lock(mutex_);
  job_ = job;
  attempt_ = attempt;
}

void TelemetryPublisher::clear_job() {
  std::lock_guard lock(mutex_);
  job_.clear();
  attempt_ = 0;
}

void TelemetryPublisher::note_job_done() {
  std::lock_guard lock(mutex_);
  ++jobs_done_;
}

void TelemetryPublisher::absorb_metrics(const MetricsRegistry& shard) {
  std::lock_guard lock(mutex_);
  cumulative_.merge(shard);
}

Status TelemetryPublisher::publish_now() {
  std::lock_guard lock(mutex_);
  return publish_locked();
}

Status TelemetryPublisher::publish_locked() {
  if (!initialized_) {
    return make_status(StatusCode::kFailedPrecondition,
                       "telemetry publisher not initialized");
  }
  const std::uint64_t seq = next_seq_.load(std::memory_order_relaxed);
  std::uint64_t next_cursor = trace_cursor_;
  const std::string json = snapshot_json(seq, &next_cursor);
  const std::string path =
      dir_ + "/" + telemetry_file_name(options_.owner, seq);
  Status s = write_file_exclusive(path, json, options_.owner);
  if (s.code() == StatusCode::kAlreadyExists) {
    // A twin with our owner published this name (misconfigured fleet).
    // Skip past it; our spans stay unshipped for the next attempt.
    next_seq_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  if (!s.is_ok()) return s;
  crash_point("telemetry.publish");
  // Commit order matters for the at-most-one-interval loss bound: the
  // cursor only advances once the file carrying those spans is durably
  // named, so a SIGKILL between publishes re-ships nothing and loses
  // nothing already published.
  next_seq_.fetch_add(1, std::memory_order_relaxed);
  trace_cursor_ = next_cursor;
  return Status::ok();
}

std::string TelemetryPublisher::snapshot_json(std::uint64_t seq,
                                              std::uint64_t* next_cursor) {
  const std::vector<TraceEvent> events =
      Tracer::instance().collect_since(trace_cursor_, next_cursor);
  const ProgressCounters& progress = ProgressCounters::global();
  JsonWriter w;
  w.begin_object();
  w.field("schema", kTelemetrySchema);
  w.field("owner", options_.owner);
  w.field("seq", seq);
  w.field("pid", static_cast<std::uint64_t>(::getpid()));
  w.field("published_ns", lease_now_ns());
  w.field("trace_anchor_ns", anchor_ns_);
  w.field("job", job_);
  w.field("attempt", attempt_);
  w.field("phase", progress.phase.load(std::memory_order_relaxed));
  w.field("jobs_done", jobs_done_);
  w.key("progress");
  w.begin_object();
  w.field("analyses", progress.analyses.load(std::memory_order_relaxed));
  w.field("faults_classified",
          progress.faults_classified.load(std::memory_order_relaxed));
  w.field("probes_committed",
          progress.probes_committed.load(std::memory_order_relaxed));
  w.end_object();
  w.key("metrics");
  w.raw(cumulative_.to_json());
  w.key("trace");
  w.begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.field("name", e.name);
    w.field("cat", e.cat);
    w.field("start_ns", e.start_ns);
    w.field("dur_ns", e.dur_ns);
    w.field("id", e.id);
    w.field("parent", e.parent);
    w.field("rec", e.rec);
    w.field("tid", static_cast<std::uint64_t>(e.tid));
    w.key("args");
    w.begin_object();
    for (const auto& [key, value] : e.args) w.field(key, value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

// ---- Cross-process trace merge ----

Expected<std::string> merge_campaign_trace(const std::string& root) {
  Expected<CampaignManifest> manifest = read_campaign_root(root);
  if (!manifest) return manifest.status();
  const std::vector<Snapshot> snapshots = load_snapshots(root);

  // Lease rows: one pseudo-thread per job in manifest order, plus the
  // merge election last. Everything below is derived from file content
  // only, so the merged document is a pure function of the root.
  std::vector<std::string> lease_rows;
  for (const CampaignJobSpec& job : manifest->jobs) {
    lease_rows.push_back(job.name);
  }
  lease_rows.push_back(kMergeLeaseName);

  struct LeaseEvent {
    std::string name;
    std::uint64_t ts_ns = 0;
    std::uint64_t tid = 0;  ///< lease row index + 1
    char phase = 'i';       ///< 'i' instant, 's'/'f' flow endpoints
    std::uint64_t flow_id = 0;
    std::vector<std::pair<std::string, std::string>> args;
  };
  std::vector<LeaseEvent> lease_events;
  std::uint64_t next_flow_id = 1;
  for (std::size_t row = 0; row < lease_rows.size(); ++row) {
    const std::string& job = lease_rows[row];
    const auto epochs = read_epochs(root, job);
    const ShardFacts shard =
        job == kMergeLeaseName ? ShardFacts{} : read_shard_facts(root, job);
    for (std::size_t i = 0; i < epochs.size(); ++i) {
      const auto& [parsed, rec] = epochs[i];
      if (!parsed) continue;  // torn epoch: crash mid-publish, no times
      const std::uint64_t claim_ns =
          rec.claimed_ns != 0 ? rec.claimed_ns : rec.heartbeat_ns;
      LeaseEvent claim;
      claim.ts_ns = claim_ns;
      claim.tid = row + 1;
      claim.args.emplace_back("owner", rec.owner);
      claim.args.emplace_back("attempt", strfmt("%d", rec.attempt));
      const bool prior_err = i > 0 && epochs[i - 1].first &&
                             !epochs[i - 1].second.running;
      if (i == 0) {
        claim.name = "lease.claim";
      } else if (prior_err) {
        claim.name = "lease.retry";
        claim.args.emplace_back("prior_error", epochs[i - 1].second.error);
      } else {
        claim.name = "lease.takeover";
      }
      if (shard.poisoned && i + 1 == epochs.size()) {
        claim.name = "lease.poison";
      }
      lease_events.push_back(claim);
      if (i > 0 && epochs[i - 1].first && epochs[i - 1].second.running) {
        // TTL takeover: a flow arrow from the victim's last sign of
        // life to the claimant makes the handoff legible on the
        // timeline.
        LeaseEvent from;
        from.name = "lease.handoff";
        from.ts_ns = epochs[i - 1].second.heartbeat_ns;
        from.tid = row + 1;
        from.phase = 's';
        from.flow_id = next_flow_id;
        LeaseEvent to = from;
        to.ts_ns = claim_ns;
        to.phase = 'f';
        lease_events.push_back(from);
        lease_events.push_back(to);
        ++next_flow_id;
      }
      if (rec.heartbeat_ns > claim_ns) {
        LeaseEvent beat;
        beat.name = rec.running ? "lease.heartbeat" : "lease.error";
        beat.ts_ns = rec.heartbeat_ns;
        beat.tid = row + 1;
        beat.args.emplace_back("owner", rec.owner);
        if (!rec.running) beat.args.emplace_back("error", rec.error);
        lease_events.push_back(beat);
      }
    }
  }

  // Normalize the time axis to the earliest event so timestamps are
  // campaign-relative microseconds instead of nanoseconds since boot
  // (which %.12g would round).
  std::uint64_t base_ns = UINT64_MAX;
  for (const Snapshot& snap : snapshots) {
    for (const SnapshotEvent& e : snap.events) {
      base_ns = std::min(base_ns, snap.anchor_ns + e.start_ns);
    }
  }
  for (const LeaseEvent& e : lease_events) {
    base_ns = std::min(base_ns, e.ts_ns);
  }
  if (base_ns == UINT64_MAX) base_ns = 0;

  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  const auto metadata = [&w](const char* what, std::uint64_t pid,
                             std::uint64_t tid, bool with_tid,
                             const std::string& label) {
    w.begin_object();
    w.field("ph", "M");
    w.field("name", what);
    w.field("pid", pid);
    if (with_tid) w.field("tid", tid);
    w.key("args");
    w.begin_object();
    w.field("name", label);
    w.end_object();
    w.end_object();
  };
  // The lease pseudo-process: pid 0 cannot collide with a real worker.
  metadata("process_name", 0, 0, false, "lease protocol");
  for (std::size_t row = 0; row < lease_rows.size(); ++row) {
    metadata("thread_name", 0, row + 1, true, lease_rows[row]);
  }
  // Worker processes: label each (pid, tid) pair actually present, in
  // (owner, seq) order with first-seen-wins, so respawned owners get
  // one row per incarnation under their real pid.
  std::vector<std::pair<std::uint64_t, std::string>> pids_seen;
  std::map<std::pair<std::uint64_t, std::uint64_t>, bool> tids_seen;
  for (const Snapshot& snap : snapshots) {
    const auto pid_known =
        std::find_if(pids_seen.begin(), pids_seen.end(),
                     [&](const auto& p) { return p.first == snap.pid; });
    if (pid_known == pids_seen.end()) {
      pids_seen.emplace_back(snap.pid, snap.owner);
      metadata("process_name", snap.pid, 0, false, "worker " + snap.owner);
    }
    for (const SnapshotEvent& e : snap.events) {
      if (!tids_seen.emplace(std::make_pair(snap.pid, e.tid), true).second) {
        continue;
      }
      metadata("thread_name", snap.pid, e.tid, true,
               e.tid == 0 ? std::string("main") : strfmt("worker-%llu",
                            static_cast<unsigned long long>(e.tid)));
    }
  }
  for (const Snapshot& snap : snapshots) {
    for (const SnapshotEvent& e : snap.events) {
      w.begin_object();
      w.field("ph", "X");
      w.field("name", e.name);
      w.field("cat", e.cat);
      w.field("pid", snap.pid);
      w.field("tid", e.tid);
      w.field("ts", to_us(snap.anchor_ns + e.start_ns, base_ns));
      w.field("dur", static_cast<double>(e.dur_ns) / 1e3);
      std::vector<std::pair<std::string, std::string>> args;
      args.emplace_back("owner", snap.owner);
      args.emplace_back(
          "span", strfmt("%llu", static_cast<unsigned long long>(e.id)));
      if (e.parent != 0) {
        args.emplace_back(
            "parent",
            strfmt("%llu", static_cast<unsigned long long>(e.parent)));
      }
      args.insert(args.end(), e.args.begin(), e.args.end());
      write_args_object(w, args);
      w.end_object();
    }
  }
  for (const LeaseEvent& e : lease_events) {
    w.begin_object();
    if (e.phase == 'i') {
      w.field("ph", "i");
      w.field("s", "t");
    } else {
      w.field("ph", e.phase == 's' ? "s" : "f");
      if (e.phase == 'f') w.field("bp", "e");
      w.field("id", e.flow_id);
    }
    w.field("name", e.name);
    w.field("cat", "lease");
    w.field("pid", 0);
    w.field("tid", e.tid);
    w.field("ts", to_us(e.ts_ns, base_ns));
    write_args_object(w, e.args);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

// ---- Live status ----

namespace {

/// The shard/lease-derived job rows of a status poll (shared by the
/// one-shot poll and the incremental poller; telemetry handling is the
/// part that differs).
void fill_job_rows(const std::string& root, const CampaignManifest& manifest,
                   std::uint64_t now, CampaignStatus* st_out,
                   double* runtime_sum_out, std::size_t* runtime_n_out) {
  CampaignStatus& st = *st_out;
  double& runtime_sum = *runtime_sum_out;
  std::size_t& runtime_n = *runtime_n_out;
  st.jobs_total = manifest.jobs.size();
  st.report_written = path_exists(root + "/report.json");
  for (const CampaignJobSpec& job : manifest.jobs) {
    JobStatusRow row;
    row.name = job.name;
    const ShardFacts shard = read_shard_facts(root, job.name);
    if (shard.present) {
      if (shard.poisoned) {
        row.state = "poisoned";
      } else if (!shard.ok) {
        row.state = "failed";
      } else if (shard.deadline_expired) {
        row.state = "expired";
      } else {
        row.state = "done";
      }
      row.owner = shard.worker;
      row.attempt = shard.attempts;
      row.runtime_s = shard.runtime_seconds;
      if (!shard.ok || shard.poisoned) row.error = shard.status;
      ++st.done;
      if (shard.ok && !shard.poisoned && shard.runtime_seconds > 0.0) {
        runtime_sum += shard.runtime_seconds;
        ++runtime_n;
      }
    } else {
      const auto epochs = read_epochs(root, job.name);
      row.attempt = static_cast<int>(epochs.size());
      if (epochs.empty() || !epochs.back().first) {
        // Never claimed, or the newest epoch is torn (claimable).
        row.state = "pending";
        ++st.pending;
      } else {
        const LeaseRecord& rec = epochs.back().second;
        row.owner = rec.owner;
        if (rec.running) {
          row.heartbeat_age_s =
              now > rec.heartbeat_ns
                  ? static_cast<double>(now - rec.heartbeat_ns) / 1e9
                  : 0.0;
          if (row.heartbeat_age_s > kStaleAfterSeconds) {
            row.state = "stale";
          } else {
            row.state = "running";
            ++st.running;
          }
        } else {
          row.error = rec.error;
          if (now < rec.backoff_until_ns) {
            row.state = "backoff";
          } else {
            row.state = "pending";
            ++st.pending;
          }
        }
      }
    }
    st.jobs.push_back(std::move(row));
  }
}

/// Worker row from the (prev, last) snapshot pair of one owner.
WorkerStatusRow worker_row_from(const Snapshot* prev, const Snapshot& last,
                                std::uint64_t now) {
  WorkerStatusRow row;
  row.owner = last.owner;
  row.pid = last.pid;
  row.seq = last.seq;
  row.age_s = now > last.published_ns
                  ? static_cast<double>(now - last.published_ns) / 1e9
                  : 0.0;
  row.job = last.job;
  row.attempt = last.attempt;
  row.phase = last.phase;
  row.jobs_done = last.jobs_done;
  row.analyses = last.analyses;
  row.faults_classified = last.faults_classified;
  row.probes_committed = last.probes_committed;
  if (prev != nullptr && last.published_ns > prev->published_ns &&
      last.faults_classified >= prev->faults_classified) {
    const double dt =
        static_cast<double>(last.published_ns - prev->published_ns) / 1e9;
    row.faults_per_s =
        static_cast<double>(last.faults_classified -
                            prev->faults_classified) / dt;
  }
  return row;
}

}  // namespace

struct StatusPoller::Impl {
  struct OwnerCache {
    std::uint64_t cursor = 0;  ///< highest seq already consumed
    std::optional<Snapshot> prev;
    std::optional<Snapshot> last;
  };

  std::string root;
  std::map<std::string, OwnerCache> owners;  ///< sorted: render order
  std::size_t parsed = 0;

  /// Reads only the telemetry files whose sequence number is beyond the
  /// owner's cursor; everything older was consumed by a previous poll.
  void refresh() {
    Expected<std::vector<std::string>> names = list_dir(root + "/telemetry");
    if (!names) return;
    std::map<std::string, std::vector<std::pair<std::uint64_t, std::string>>>
        fresh;
    for (const std::string& name : *names) {
      std::string owner;
      std::uint64_t seq = 0;
      if (!parse_telemetry_name(name, &owner, &seq)) continue;
      const auto it = owners.find(owner);
      if (it != owners.end() && seq <= it->second.cursor) continue;
      fresh[owner].emplace_back(seq, name);
    }
    for (auto& [owner, files] : fresh) {
      // list_dir sorts lexicographically, which misorders multi-digit
      // sequence numbers; fold in true sequence order.
      std::sort(files.begin(), files.end());
      OwnerCache& cache = owners[owner];
      for (auto& [seq, name] : files) {
        if (seq <= cache.cursor) continue;
        Expected<std::string> text = read_file(root + "/telemetry/" + name);
        if (!text) continue;  // vanished between list and read
        ++parsed;
        // Snapshots are atomic-renamed into place, so a parse failure
        // is permanent (foreign file): advance the cursor either way
        // rather than re-parsing it every poll.
        cache.cursor = seq;
        Snapshot snap;
        if (!parse_snapshot(*text, &snap)) continue;
        if (snap.owner != owner || snap.seq != seq) continue;
        cache.prev = std::move(cache.last);
        cache.last = std::move(snap);
      }
    }
  }
};

StatusPoller::StatusPoller(std::string root)
    : impl_(std::make_unique<Impl>()) {
  impl_->root = std::move(root);
}

StatusPoller::~StatusPoller() = default;

std::size_t StatusPoller::snapshots_parsed() const { return impl_->parsed; }

Expected<CampaignStatus> StatusPoller::poll() {
  const std::string& root = impl_->root;
  Expected<CampaignManifest> manifest = read_campaign_root(root);
  if (!manifest) return manifest.status();
  const std::uint64_t now = lease_now_ns();
  CampaignStatus st;
  double runtime_sum = 0.0;
  std::size_t runtime_n = 0;
  fill_job_rows(root, *manifest, now, &st, &runtime_sum, &runtime_n);

  impl_->refresh();
  std::size_t live_workers = 0;
  for (const auto& [owner, cache] : impl_->owners) {
    if (!cache.last.has_value()) continue;
    WorkerStatusRow row = worker_row_from(
        cache.prev.has_value() ? &*cache.prev : nullptr, *cache.last, now);
    if (row.age_s < kStaleAfterSeconds) ++live_workers;
    st.workers.push_back(std::move(row));
  }

  const std::size_t remaining = st.jobs_total - st.done;
  if (remaining == 0) {
    st.eta_s = 0.0;
  } else if (runtime_n > 0) {
    const double mean = runtime_sum / static_cast<double>(runtime_n);
    st.eta_s = static_cast<double>(remaining) * mean /
               static_cast<double>(std::max<std::size_t>(1, live_workers));
  }
  return st;
}

Expected<CampaignStatus> poll_campaign_status(const std::string& root) {
  StatusPoller poller(root);
  return poller.poll();
}

std::string render_status_json(const CampaignStatus& status) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kStatusSchema);
  w.field("report_written", status.report_written);
  w.field("jobs_total", static_cast<std::uint64_t>(status.jobs_total));
  w.field("done", static_cast<std::uint64_t>(status.done));
  w.field("running", static_cast<std::uint64_t>(status.running));
  w.field("pending", static_cast<std::uint64_t>(status.pending));
  w.field("eta_s", status.eta_s);
  w.key("jobs");
  w.begin_array();
  for (const JobStatusRow& job : status.jobs) {
    w.begin_object();
    w.field("name", job.name);
    w.field("state", job.state);
    w.field("owner", job.owner);
    w.field("attempt", job.attempt);
    w.field("heartbeat_age_s", job.heartbeat_age_s);
    w.field("runtime_s", job.runtime_s);
    w.field("error", job.error);
    w.end_object();
  }
  w.end_array();
  w.key("workers");
  w.begin_array();
  for (const WorkerStatusRow& worker : status.workers) {
    w.begin_object();
    w.field("owner", worker.owner);
    w.field("pid", worker.pid);
    w.field("seq", worker.seq);
    w.field("age_s", worker.age_s);
    w.field("job", worker.job);
    w.field("attempt", worker.attempt);
    w.field("phase", worker.phase);
    w.field("jobs_done", worker.jobs_done);
    w.field("analyses", worker.analyses);
    w.field("faults_classified", worker.faults_classified);
    w.field("probes_committed", worker.probes_committed);
    w.field("faults_per_s", worker.faults_per_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take() + "\n";
}

std::string render_status_table(const CampaignStatus& status) {
  std::string out = strfmt(
      "campaign: %zu/%zu done, %zu running, %zu pending%s\n",
      status.done, status.jobs_total, status.running, status.pending,
      status.report_written ? "  [report written]" : "");
  if (status.eta_s > 0.0) {
    out += strfmt("eta: ~%.0fs\n", status.eta_s);
  }
  out += strfmt("%-16s %-9s %-12s %3s %8s %9s  %s\n", "JOB", "STATE",
                "OWNER", "ATT", "HB-AGE", "RUNTIME", "ERROR");
  for (const JobStatusRow& job : status.jobs) {
    const std::string hb = job.heartbeat_age_s >= 0.0
                               ? strfmt("%.1fs", job.heartbeat_age_s)
                               : std::string("-");
    const std::string rt = job.runtime_s >= 0.0
                               ? strfmt("%.1fs", job.runtime_s)
                               : std::string("-");
    out += strfmt("%-16s %-9s %-12s %3d %8s %9s  %s\n", job.name.c_str(),
                  job.state.c_str(), job.owner.c_str(), job.attempt,
                  hb.c_str(), rt.c_str(), job.error.c_str());
  }
  if (!status.workers.empty()) {
    out += strfmt("%-12s %5s %7s %-16s %2s %4s %10s %10s %9s\n", "WORKER",
                  "SEQ", "AGE", "JOB", "PH", "DONE", "FAULTS", "PROBES",
                  "RATE");
    for (const WorkerStatusRow& worker : status.workers) {
      const std::string rate =
          worker.faults_per_s >= 0.0
              ? strfmt("%.0f/s", worker.faults_per_s)
              : std::string("-");
      out += strfmt(
          "%-12s %5llu %6.1fs %-16s %2d %4d %10llu %10llu %9s\n",
          worker.owner.c_str(),
          static_cast<unsigned long long>(worker.seq), worker.age_s,
          worker.job.empty() ? "-" : worker.job.c_str(), worker.phase,
          worker.jobs_done,
          static_cast<unsigned long long>(worker.faults_classified),
          static_cast<unsigned long long>(worker.probes_committed),
          rate.c_str());
    }
  }
  return out;
}

}  // namespace dfmres
