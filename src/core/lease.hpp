#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/util/cancel.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// Filesystem lease protocol for multi-process campaign workers.
///
/// Each job owns a directory `<root>/leases/<job>/` holding
/// epoch-numbered claim files `e1`, `e2`, ... that are *never deleted*
/// while the campaign runs. A claim — fresh or takeover — is always the
/// NOREPLACE creation of the next epoch file, so the kernel's rename
/// arbitration makes every epoch claimable exactly once and there is no
/// delete/recreate window in which two workers can both believe they own
/// a job. The highest existing epoch file is the sole authority: lower
/// epochs are history, and a worker whose epoch has been superseded
/// discovers it at the next heartbeat and abandons the job.
///
/// Epoch k carries attempt number k. A lease is claimable when its
/// current holder is provably not making progress:
///   - the file is torn / unparsable (a crash mid-publish), or
///   - state is "run" but the heartbeat stamp is older than the TTL, or
///   - state is "err" and the error backoff window has elapsed.
/// Claims past the attempt budget are *poison* claims: the winner does
/// not run the job again, it wins the exclusive right to publish the
/// poisoned-job shard, so a sweep with one pathological job still
/// terminates with a complete merged report.
///
/// Heartbeat stamps are CLOCK_MONOTONIC nanoseconds, comparable across
/// processes on the same boot (the only deployment this layer targets);
/// wall clocks are never consulted, so ntp steps cannot expire leases.
struct LeaseConfig {
  std::string owner;  ///< unique per worker process (e.g. "w<pid>")
  std::chrono::nanoseconds heartbeat_period{std::chrono::milliseconds(500)};
  /// Staleness threshold; 0 means 3x heartbeat_period (one refresh plus
  /// two missed ones — a single scheduling hiccup never expires a live
  /// worker).
  std::chrono::nanoseconds ttl{0};
  int max_attempts = 3;  ///< run attempts before a job is poisoned
  std::chrono::nanoseconds backoff_base{std::chrono::milliseconds(250)};

  [[nodiscard]] std::chrono::nanoseconds effective_ttl() const {
    return ttl.count() > 0 ? ttl : 3 * heartbeat_period;
  }
  /// backoff_base * 2^(attempt-1), capped at 8x base.
  [[nodiscard]] std::chrono::nanoseconds backoff_after(int attempt) const;
};

/// One parsed `dfmres-lease-v1` file (single-line JSON).
struct LeaseRecord {
  std::string owner;
  int attempt = 0;
  bool running = true;  ///< state "run"; false = "err" (holder reported)
  std::uint64_t heartbeat_ns = 0;
  /// When this epoch was claimed (lease_now_ns). Preserved by heartbeat
  /// refreshes and failure marks, so the telemetry trace merge can place
  /// claim/takeover events at their real times. Absent in records from
  /// older roots: parses as 0.
  std::uint64_t claimed_ns = 0;
  std::uint64_t backoff_until_ns = 0;
  std::string error;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static Expected<LeaseRecord> parse(std::string_view text);
};

/// Outcome of one claim attempt on one job.
struct LeaseClaim {
  enum class Outcome {
    Claimed,  ///< we own this epoch; run the job (or write poison shard)
    Busy,     ///< a live holder is heartbeating (or we lost the race)
    Backoff,  ///< errored holder's backoff window still open; retry later
  };
  Outcome outcome = Outcome::Busy;
  int epoch = 0;             ///< the epoch we own (Claimed only)
  int attempt = 0;           ///< == epoch
  bool poison = false;       ///< Claimed past the budget: publish poison
  std::string prior_error;   ///< last holder's error (poison shards)
  std::uint64_t wait_ns = 0; ///< Backoff: remaining window, as a hint
  std::uint64_t claimed_ns = 0;  ///< claim time, re-stamped by heartbeats
};

/// Monotonic timestamp used for heartbeat stamps.
[[nodiscard]] std::uint64_t lease_now_ns();

/// The lease table of one campaign root. Methods are process-safe by
/// construction (all arbitration happens in the filesystem) and
/// thread-safe (no mutable state beyond the config).
class LeaseDir {
 public:
  LeaseDir(std::string campaign_root, LeaseConfig config);

  /// Creates `<root>/leases`. The campaign root must already exist.
  [[nodiscard]] Status init() const;

  /// Tries to claim `job` (see protocol above). kInternal only for real
  /// I/O failures — protocol outcomes are in the returned LeaseClaim.
  [[nodiscard]] Expected<LeaseClaim> try_claim(const std::string& job) const;

  /// Refreshes the heartbeat stamp of a held claim. Returns kCancelled
  /// when a higher epoch exists — the lease was declared stale and taken
  /// over; the caller must stop working on the job.
  [[nodiscard]] Status heartbeat(const std::string& job,
                                 const LeaseClaim& claim) const;

  /// Records a failed attempt on a held claim: state "err", the error
  /// text, and a backoff window other workers honour before re-claiming.
  [[nodiscard]] Status mark_failed(const std::string& job,
                                   const LeaseClaim& claim,
                                   const std::string& error) const;

  /// Highest existing epoch for `job` (0 = never claimed). For tests
  /// and the merge election.
  [[nodiscard]] int highest_epoch(const std::string& job) const;

  [[nodiscard]] const LeaseConfig& config() const { return config_; }
  [[nodiscard]] std::string job_dir(const std::string& job) const;
  [[nodiscard]] std::string epoch_path(const std::string& job,
                                       int epoch) const;

 private:
  std::string root_;
  LeaseConfig config_;
};

/// Owns the heartbeat refresh thread for one held claim: refreshes every
/// heartbeat_period until destroyed, and trips `on_lost` (the job's
/// cancel token) if the lease is lost or refreshing fails, so the worker
/// unwinds instead of double-computing a taken-over job.
class HeartbeatKeeper {
 public:
  HeartbeatKeeper(const LeaseDir& dir, std::string job, LeaseClaim claim,
                  CancelToken* on_lost);
  ~HeartbeatKeeper();
  HeartbeatKeeper(const HeartbeatKeeper&) = delete;
  HeartbeatKeeper& operator=(const HeartbeatKeeper&) = delete;

  /// True when the lease was lost (on_lost has been tripped).
  [[nodiscard]] bool lost() const { return lost_.load(); }

 private:
  void run();

  const LeaseDir& dir_;
  std::string job_;
  LeaseClaim claim_;
  CancelToken* on_lost_;
  std::atomic<bool> lost_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dfmres
