#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/metrics.hpp"
#include "src/core/schemas.hpp"
#include "src/util/status.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

class CampaignManifest;

/// The campaign root doubles as a telemetry bus: every worker
/// periodically publishes a crash-durable snapshot file
/// `<root>/telemetry/<owner>.<seq>.json` (schema dfmres-telemetry-v1)
/// carrying its progress counters, cumulative metrics registry and the
/// trace spans completed since the previous snapshot. Snapshots are
/// published with the same exclusive-create/atomic-rename discipline as
/// lease and shard files, so a SIGKILL at any instant loses at most the
/// spans of one interval and never leaves a torn document. Readers
/// (`dfmres status`, `dfmres trace merge`) only ever open files — no
/// locks, no signals — so observing a live campaign cannot perturb it.

inline constexpr const char* kTelemetrySchema = schemas::kTelemetry;
inline constexpr const char* kStatusSchema = schemas::kStatus;

/// Process-wide progress counters incremented by the flow/resynthesis
/// hot paths and sampled by the telemetry publisher. Relaxed atomics:
/// readers want a cheap recent value, not a fence.
struct ProgressCounters {
  std::atomic<std::uint64_t> analyses{0};
  std::atomic<std::uint64_t> faults_classified{0};
  std::atomic<std::uint64_t> probes_committed{0};
  /// Resynthesis phase: 0 idle, 1 cluster break-up, 2 global shrink,
  /// 3 sign-off.
  std::atomic<int> phase{0};

  void reset() {
    analyses.store(0, std::memory_order_relaxed);
    faults_classified.store(0, std::memory_order_relaxed);
    probes_committed.store(0, std::memory_order_relaxed);
    phase.store(0, std::memory_order_relaxed);
  }

  static ProgressCounters& global();
};

struct TelemetryOptions {
  std::string campaign_root;
  std::string owner;
  /// Snapshot period; 0 disables the background thread (snapshots then
  /// happen only at publish_now / destruction).
  std::chrono::nanoseconds interval{std::chrono::seconds(1)};
};

/// One worker's telemetry publisher. Owns the snapshot thread, the
/// monotonic sequence numbers (recovered from the directory across
/// restarts of the same owner, so a respawned worker never reuses a
/// name), and the incremental trace cursor. Enables the process tracer
/// for its lifetime and restores the previous enabled-state on
/// destruction, so standalone runs and tests see the tracer exactly as
/// they configured it.
class TelemetryPublisher {
 public:
  explicit TelemetryPublisher(TelemetryOptions options);
  ~TelemetryPublisher();
  TelemetryPublisher(const TelemetryPublisher&) = delete;
  TelemetryPublisher& operator=(const TelemetryPublisher&) = delete;

  /// Creates `<root>/telemetry`, recovers the owner's next sequence
  /// number, anchors the trace clock to lease time and starts the
  /// snapshot thread. Call once before any publish.
  [[nodiscard]] Status init();

  /// Tags subsequent snapshots with the job this worker is running.
  void set_job(const std::string& job, int attempt);
  void clear_job();
  void note_job_done();

  /// Folds one finished job's metrics shard into the cumulative
  /// registry this worker publishes.
  void absorb_metrics(const MetricsRegistry& shard);

  /// Publishes one snapshot immediately (also called by the thread and
  /// the destructor). Best effort by design: a full disk must not kill
  /// a worker that can still compute, so failures are returned for
  /// logging but leave the publisher armed.
  Status publish_now();

  [[nodiscard]] std::uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  [[nodiscard]] Status publish_locked();
  [[nodiscard]] std::string snapshot_json(std::uint64_t seq,
                                          std::uint64_t* next_cursor);

  TelemetryOptions options_;
  std::string dir_;
  bool tracer_was_enabled_ = false;
  bool initialized_ = false;
  std::uint64_t anchor_ns_ = 0;  ///< lease_now_ns() - tracer.now_ns()
  std::atomic<std::uint64_t> next_seq_{1};
  std::uint64_t trace_cursor_ = 1;  ///< first unshipped trace record
  MetricsRegistry cumulative_;
  std::mutex mutex_;  ///< guards job tag + publish critical section
  std::string job_;
  int attempt_ = 0;
  int jobs_done_ = 0;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Telemetry snapshot file name for (owner, seq).
[[nodiscard]] std::string telemetry_file_name(const std::string& owner,
                                              std::uint64_t seq);

// ---- Cross-process trace merge ----

/// Stitches every worker's telemetry trace shards plus the lease files
/// into one Chrome trace_event timeline: real pid/tid rows per worker
/// process, and a pid-0 "lease protocol" pseudo-process carrying claim /
/// takeover / retry / poison instants, heartbeat ticks and takeover flow
/// arrows synthesized from the epoch files. Purely content-driven and
/// ordered (owner, seq, record sequence; jobs in manifest order), so
/// re-merging an unchanged root is byte-identical — the output is
/// diffable evidence. Torn or foreign files in the telemetry directory
/// are skipped, not fatal. kNotFound only when `root` has no manifest.
[[nodiscard]] Expected<std::string> merge_campaign_trace(
    const std::string& root);

// ---- Live status ----

/// One manifest job's observed state, derived read-only from shards and
/// lease files.
struct JobStatusRow {
  std::string name;
  /// "done" | "expired" | "failed" | "poisoned" (terminal, from the
  /// shard) or "running" | "stale" | "backoff" | "pending" (from the
  /// lease authority; "stale" = heartbeat older than 10 s).
  std::string state;
  std::string owner;    ///< current/last holder ("" for pending)
  int attempt = 0;      ///< lease epochs consumed so far
  double heartbeat_age_s = -1.0;  ///< running/stale only
  double runtime_s = -1.0;        ///< terminal jobs: shard runtime
  std::string error;              ///< failed/backoff/poisoned detail
};

/// One worker's latest telemetry snapshot, plus the progress rate from
/// its last two snapshots.
struct WorkerStatusRow {
  std::string owner;
  std::uint64_t pid = 0;
  std::uint64_t seq = 0;
  double age_s = -1.0;  ///< since the snapshot was published
  std::string job;      ///< "" = idle / between jobs
  int attempt = 0;
  int phase = 0;
  int jobs_done = 0;
  std::uint64_t analyses = 0;
  std::uint64_t faults_classified = 0;
  std::uint64_t probes_committed = 0;
  double faults_per_s = -1.0;  ///< needs two snapshots
};

struct CampaignStatus {
  bool report_written = false;  ///< <root>/report.json exists
  std::size_t jobs_total = 0;
  std::size_t done = 0;     ///< terminal shards (any verdict)
  std::size_t running = 0;  ///< live heartbeat
  std::size_t pending = 0;  ///< never claimed / claimable
  /// Naive remaining-work estimate: remaining jobs x mean terminal
  /// runtime / live workers. Negative = not enough data.
  double eta_s = -1.0;
  std::vector<JobStatusRow> jobs;      ///< manifest order
  std::vector<WorkerStatusRow> workers;  ///< owner order
};

/// Incremental status poller: the engine behind `dfmres status
/// --follow` and the serve daemon's status requests. Holds per-owner
/// telemetry sequence cursors, so across repeated poll() calls each
/// snapshot file is opened and parsed at most once — a follow loop no
/// longer rebuilds the full state (re-reading every snapshot ever
/// published) on every tick. Read-only like poll_campaign_status.
class StatusPoller {
 public:
  explicit StatusPoller(std::string root);
  ~StatusPoller();
  StatusPoller(const StatusPoller&) = delete;
  StatusPoller& operator=(const StatusPoller&) = delete;

  [[nodiscard]] Expected<CampaignStatus> poll();

  /// Telemetry documents parsed since construction, each file counted
  /// at most once (the follow-loop regression test pins this).
  [[nodiscard]] std::size_t snapshots_parsed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Polls a campaign root read-only. Never takes a lease, never writes:
/// status observation is free of observer effects by construction.
/// One-shot form of StatusPoller.
[[nodiscard]] Expected<CampaignStatus> poll_campaign_status(
    const std::string& root);

/// One `dfmres-status-v1` JSON line (newline-terminated), the machine
/// interface behind `dfmres status --json`.
[[nodiscard]] std::string render_status_json(const CampaignStatus& status);

/// Human table for `dfmres status`.
[[nodiscard]] std::string render_status_table(const CampaignStatus& status);

}  // namespace dfmres
