#pragma once

#include <span>
#include <string>
#include <string_view>
#include <variant>

#include "src/core/campaign.hpp"
#include "src/core/schemas.hpp"
#include "src/util/json.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// The unified request surface: one typed, versioned description of
/// "run this work / tell me about it" shared by every entry point. A
/// CLI flag, a manifest field and a `dfmres-request-v1` wire field all
/// funnel through the same per-knob validation table
/// (apply_job_field_json / apply_job_field_text below), so the three
/// surfaces cannot drift apart: adding a knob means adding one registry
/// row, and every front-end picks it up with the same name, type and
/// range checks.

// ---- single options-validation path --------------------------------------

/// Applies one job knob from a parsed JSON value (manifest jobs, wire
/// `job` objects). `ctx` names the caller's locus for error messages
/// (e.g. "manifest job 3"). Unknown keys are kInvalidArgument.
[[nodiscard]] Status apply_job_field_json(CampaignJobSpec* job,
                                          const std::string& key,
                                          const JsonValue& value,
                                          const char* ctx);

/// Applies one job knob from flag text (`--q 5`). Same registry, same
/// ranges: the text is converted to the field's kind first, so "5x"
/// for an integer knob fails exactly like a JSON string would.
[[nodiscard]] Status apply_job_field_text(CampaignJobSpec* job,
                                          std::string_view key,
                                          const char* text, const char* ctx);

/// Parses a whole job object (all keys through the registry; `name` and
/// `design` required).
[[nodiscard]] Status parse_job_spec(const JsonValue& value, const char* ctx,
                                    CampaignJobSpec* out);

/// Serializes a job spec with the registry's wire keys (the manifest
/// `jobs[]` entry form, reused verbatim inside requests).
void write_job_spec(JsonWriter& w, const CampaignJobSpec& job);

// ---- table-driven CLI flag parsing ---------------------------------------

/// One `--flag VALUE` -> registry-key binding. Each CLI command lists
/// the bindings it accepts; the values flow through
/// apply_job_field_text, so the flag parser has no validation logic of
/// its own.
struct CliFlagBinding {
  const char* flag;  ///< e.g. "--q"
  const char* key;   ///< registry key, e.g. "q_max"
};

/// Consumes argv[*i] (and its value) when it matches a binding.
/// Returns: true consumed, false not a bound flag; kInvalidArgument
/// when the flag matched but its value failed validation (the CLI
/// exits 2).
[[nodiscard]] Expected<bool> match_job_flag(
    std::span<const CliFlagBinding> bindings, int argc, char** argv, int* i,
    CampaignJobSpec* job);

// ---- typed requests (dfmres-request-v1) ----------------------------------

/// Submit one job; the daemon runs it as a single-job campaign named
/// `id` under its campaign root.
struct RunRequest {
  std::string id;  ///< client-chosen campaign id (single path component)
  CampaignJobSpec job;
};

/// Submit a whole manifest as campaign `id`.
struct CampaignRequest {
  std::string id;
  CampaignManifest manifest;
};

/// Query one campaign (`id`) or, with an empty id, the server itself.
struct StatusRequest {
  std::string id;
};

/// Cancel campaign `id`: running jobs unwind cooperatively, pending
/// jobs terminalize as skipped, the report still merges.
struct CancelRequest {
  std::string id;
};

/// Stop admissions, finish everything in flight, then shut down.
struct DrainRequest {};

struct Request {
  std::variant<RunRequest, CampaignRequest, StatusRequest, CancelRequest,
               DrainRequest>
      payload;

  [[nodiscard]] const char* kind() const;
  /// The campaign id the request addresses ("" for drain / server-wide
  /// status).
  [[nodiscard]] const std::string& id() const;
};

/// Strict parse of one newline-delimited `dfmres-request-v1` document.
/// Unknown keys, wrong types, out-of-range values and malformed ids are
/// all kInvalidArgument with a message naming the offending key.
[[nodiscard]] Expected<Request> parse_request(std::string_view json);

/// The wire form parse_request accepts (round-trip stable).
[[nodiscard]] std::string request_to_json(const Request& request);

/// A campaign id must be usable as a directory name under the campaign
/// root and must not collide with reserved names.
[[nodiscard]] Status validate_campaign_id(const std::string& id);

}  // namespace dfmres
