#include "src/core/lease.hpp"
#include "src/core/schemas.hpp"

#include <time.h>

#include <algorithm>

#include "src/util/crashpoint.hpp"
#include "src/util/fmt.hpp"
#include "src/util/fsio.hpp"
#include "src/util/json.hpp"

namespace dfmres {

namespace {

constexpr const char* kLeaseSchema = schemas::kLease;

}  // namespace

std::chrono::nanoseconds LeaseConfig::backoff_after(int attempt) const {
  const int shift = std::clamp(attempt - 1, 0, 3);  // 1x..8x
  return backoff_base * (1 << shift);
}

std::uint64_t lease_now_ns() {
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::string LeaseRecord::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kLeaseSchema);
  w.field("owner", owner);
  w.field("attempt", attempt);
  w.field("state", running ? "run" : "err");
  w.field("heartbeat_ns", heartbeat_ns);
  w.field("claimed_ns", claimed_ns);
  w.field("backoff_until_ns", backoff_until_ns);
  w.field("error", error);
  w.end_object();
  return w.take();
}

Expected<LeaseRecord> LeaseRecord::parse(std::string_view text) {
  Expected<JsonValue> doc = JsonValue::parse(text);
  if (!doc) return doc.status();
  const auto bad = [](const char* what) {
    return make_status(StatusCode::kDataLoss, "lease record: %s", what);
  };
  if (!doc->is_object()) return bad("not an object");
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kLeaseSchema) {
    return bad("bad schema");
  }
  LeaseRecord rec;
  const JsonValue* owner = doc->find("owner");
  const JsonValue* attempt = doc->find("attempt");
  const JsonValue* state = doc->find("state");
  const JsonValue* heartbeat = doc->find("heartbeat_ns");
  const JsonValue* backoff = doc->find("backoff_until_ns");
  const JsonValue* error = doc->find("error");
  if (owner == nullptr || !owner->is_string() || attempt == nullptr ||
      !attempt->is_number() || attempt->as_number() < 1 || state == nullptr ||
      !state->is_string() || heartbeat == nullptr ||
      !heartbeat->is_number() || backoff == nullptr ||
      !backoff->is_number() || error == nullptr || !error->is_string()) {
    return bad("missing or mistyped field");
  }
  rec.owner = owner->as_string();
  rec.attempt = static_cast<int>(attempt->as_number());
  if (state->as_string() == "run") {
    rec.running = true;
  } else if (state->as_string() == "err") {
    rec.running = false;
  } else {
    return bad("unknown state");
  }
  rec.heartbeat_ns = static_cast<std::uint64_t>(heartbeat->as_number());
  rec.backoff_until_ns = static_cast<std::uint64_t>(backoff->as_number());
  rec.error = error->as_string();
  // claimed_ns postdates the first lease schema revision; absent (an
  // older root) means "unknown" and the trace merge falls back to the
  // heartbeat stamp.
  const JsonValue* claimed = doc->find("claimed_ns");
  if (claimed != nullptr && claimed->is_number()) {
    rec.claimed_ns = static_cast<std::uint64_t>(claimed->as_number());
  }
  return rec;
}

LeaseDir::LeaseDir(std::string campaign_root, LeaseConfig config)
    : root_(std::move(campaign_root)), config_(std::move(config)) {}

Status LeaseDir::init() const { return make_dir(root_ + "/leases"); }

std::string LeaseDir::job_dir(const std::string& job) const {
  return root_ + "/leases/" + job;
}

std::string LeaseDir::epoch_path(const std::string& job, int epoch) const {
  return job_dir(job) + strfmt("/e%d", epoch);
}

int LeaseDir::highest_epoch(const std::string& job) const {
  int epoch = 0;
  while (path_exists(epoch_path(job, epoch + 1))) ++epoch;
  return epoch;
}

Expected<LeaseClaim> LeaseDir::try_claim(const std::string& job) const {
  if (Status s = make_dir(job_dir(job)); !s.is_ok()) return s;
  const int current = highest_epoch(job);
  const std::uint64_t now = lease_now_ns();
  LeaseClaim claim;
  if (current > 0) {
    // The highest epoch file is the authority. Decide whether its holder
    // is live, backing off, or dead.
    Expected<std::string> text = read_file(epoch_path(job, current));
    if (!text && text.code() != StatusCode::kNotFound) return text.status();
    LeaseRecord rec;
    bool torn = true;
    if (text) {
      Expected<LeaseRecord> parsed = LeaseRecord::parse(*text);
      if (parsed) {
        rec = *parsed;
        torn = false;
      }
      // A torn or truncated lease is a crash mid-publish: the holder
      // never ran, so the epoch is immediately claimable.
    }
    if (!torn) {
      const std::uint64_t ttl = static_cast<std::uint64_t>(
          config_.effective_ttl().count());
      if (rec.running) {
        if (now < rec.heartbeat_ns + ttl) {
          claim.outcome = LeaseClaim::Outcome::Busy;
          return claim;
        }
        // Heartbeat expired: dead holder, claimable.
      } else {
        if (now < rec.backoff_until_ns) {
          claim.outcome = LeaseClaim::Outcome::Backoff;
          claim.wait_ns = rec.backoff_until_ns - now;
          return claim;
        }
      }
      claim.prior_error = rec.error;
    }
  }
  const int next = current + 1;
  LeaseRecord mine;
  mine.owner = config_.owner;
  mine.attempt = next;
  mine.running = true;
  mine.heartbeat_ns = now;
  mine.claimed_ns = now;
  Status published = write_file_exclusive(epoch_path(job, next),
                                          mine.to_json(), config_.owner);
  if (published.code() == StatusCode::kAlreadyExists) {
    // Lost the race; whoever won is live by definition.
    claim.outcome = LeaseClaim::Outcome::Busy;
    claim.prior_error.clear();
    return claim;
  }
  if (!published.is_ok()) return published;
  crash_point("lease.claim");
  claim.outcome = LeaseClaim::Outcome::Claimed;
  claim.epoch = next;
  claim.attempt = next;
  claim.poison = next > config_.max_attempts;
  claim.claimed_ns = now;
  return claim;
}

Status LeaseDir::heartbeat(const std::string& job,
                           const LeaseClaim& claim) const {
  if (highest_epoch(job) != claim.epoch) {
    return make_status(StatusCode::kCancelled,
                       "lease for job '%s' epoch %d was taken over",
                       job.c_str(), claim.epoch);
  }
  LeaseRecord rec;
  rec.owner = config_.owner;
  rec.attempt = claim.attempt;
  rec.running = true;
  rec.heartbeat_ns = lease_now_ns();
  rec.claimed_ns = claim.claimed_ns;
  Status s = write_file_atomic(epoch_path(job, claim.epoch), rec.to_json(),
                               config_.owner);
  if (s.is_ok()) crash_point("lease.heartbeat");
  return s;
}

Status LeaseDir::mark_failed(const std::string& job, const LeaseClaim& claim,
                             const std::string& error) const {
  LeaseRecord rec;
  rec.owner = config_.owner;
  rec.attempt = claim.attempt;
  rec.running = false;
  rec.heartbeat_ns = lease_now_ns();
  rec.claimed_ns = claim.claimed_ns;
  rec.backoff_until_ns =
      rec.heartbeat_ns +
      static_cast<std::uint64_t>(config_.backoff_after(claim.attempt).count());
  rec.error = error;
  return write_file_atomic(epoch_path(job, claim.epoch), rec.to_json(),
                           config_.owner);
}

HeartbeatKeeper::HeartbeatKeeper(const LeaseDir& dir, std::string job,
                                 LeaseClaim claim, CancelToken* on_lost)
    : dir_(dir),
      job_(std::move(job)),
      claim_(claim),
      on_lost_(on_lost),
      thread_([this] { run(); }) {}

HeartbeatKeeper::~HeartbeatKeeper() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void HeartbeatKeeper::run() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, dir_.config().heartbeat_period,
                     [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    const Status s = dir_.heartbeat(job_, claim_);
    lock.lock();
    if (!s.is_ok()) {
      // Lost the lease (taken over) or cannot prove liveness anymore;
      // either way, keeping the job would risk double work on a lease
      // someone else now owns.
      lost_.store(true);
      if (on_lost_ != nullptr) on_lost_->cancel();
      return;
    }
  }
}

}  // namespace dfmres
