#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/atpg/engine.hpp"
#include "src/cluster/clustering.hpp"
#include "src/dfm/checker.hpp"
#include "src/layout/floorplan.hpp"
#include "src/place/placement.hpp"
#include "src/route/router.hpp"
#include "src/sta/sta.hpp"
#include "src/synth/mapper.hpp"

namespace dfmres {

struct FlowOptions {
  double utilization = 0.70;  ///< core utilization (paper Section IV)
  AtpgOptions atpg;
  PlaceOptions place;
  RouteOptions route;
  StaOptions sta;
  /// Warm-start incremental ATPG across reanalyses: replay the last
  /// committed compacted test set before random patterns / PODEM, and
  /// trust cached detections of faults structurally untouched by the
  /// rewrites since that test set was generated (see DESIGN.md,
  /// "Incremental-ATPG contract"). false = every analysis runs cold.
  bool warm_start = true;
};

/// A fully analyzed design point: mapped netlist, layout, timing/power,
/// DFM fault universe with classification, and the clustering of the
/// undetectable faults.
struct FlowState {
  Netlist netlist;
  Placement placement;
  RoutingResult routing;
  TimingPower timing;
  FaultUniverse universe;
  AtpgResult atpg;
  ClusterAnalysis clusters;

  [[nodiscard]] std::size_t num_faults() const { return universe.size(); }
  [[nodiscard]] std::size_t num_undetectable() const {
    return atpg.num_undetectable;
  }
  [[nodiscard]] double coverage() const {
    return atpg.coverage(universe.size());
  }
  [[nodiscard]] std::size_t smax() const { return clusters.smax(); }
  /// Fraction of all faults that sit in the largest cluster (%Smax_all).
  [[nodiscard]] double smax_fraction() const {
    return universe.size() == 0
               ? 0.0
               : static_cast<double>(smax()) /
                     static_cast<double>(universe.size());
  }
};

/// Orchestrates Synthesize() / PDesign() / sign-off DFM extraction /
/// ATPG the way the paper's flow does, with a fault-status cache that
/// exploits the function-preserving nature of the resynthesis rewrites
/// (statuses of faults outside a rewritten region are invariant; see
/// DESIGN.md).
class DesignFlow {
 public:
  DesignFlow(std::shared_ptr<const Library> target, FlowOptions options);

  /// Initial implementation flow from a technology-independent netlist:
  /// macro-maps DFF/FA/HA, maps the logic, floorplans at the target
  /// utilization, places, routes, extracts DFM faults and runs full ATPG
  /// with test generation. Fails with the mapper's status when the target
  /// library cannot implement the design.
  [[nodiscard]] Expected<FlowState> run_initial(const Netlist& rtl);

  /// Re-analysis of an edited mapped netlist inside the frozen floorplan
  /// of `previous`: incremental placement, rerouting, STA, DFM
  /// extraction, cached ATPG. Returns nullopt when the die cannot absorb
  /// the edit (area constraint).
  [[nodiscard]] std::optional<FlowState> reanalyze(Netlist netlist,
                                                   const Placement& previous,
                                                   bool generate_tests);

  /// Same pipeline with an explicit (already legal) placement.
  [[nodiscard]] std::optional<FlowState> reanalyze_with_placement(
      Netlist netlist, Placement placement, bool generate_tests);

  /// Number of undetectable *internal* faults of a netlist. Internal
  /// faults do not depend on placement or routing, so this runs before
  /// PDesign() and gates it (paper Section III-B).
  [[nodiscard]] std::size_t count_undetectable_internal(const Netlist& nl);

  /// Speculative (side-effect-free) variant of `reanalyze` for candidate
  /// probing: reads `base_cache` (shareable across concurrent probes —
  /// nobody writes it) and records fresh classifications in the caller's
  /// private `updates` overlay instead of this flow's cache. Seed-test
  /// replay still applies when warm_start is on; `num_threads` overrides
  /// the fault-sim fan-out (pass 1 from inside a thread-pool job — the
  /// shared pool must not be entered twice). Never mutates the flow.
  ///
  /// Probes are the cancellable part of the flow (committed analyses
  /// always run to completion): kUnsatisfiable = the die cannot absorb
  /// the edit (a normal search outcome); kCancelled / kDeadlineExceeded
  /// = `cancel` expired mid-probe, the overlay holds only complete
  /// verdicts and the caller must not memoize the attempt.
  [[nodiscard]] Expected<FlowState> reanalyze_probe(
      Netlist netlist, const Placement& previous, bool generate_tests,
      const FaultStatusCache* base_cache, FaultStatusCache* updates,
      FaultSimArena* arena = nullptr, int num_threads = 0,
      const CancelToken* cancel = nullptr) const;

  /// Probe flavor of `count_undetectable_internal` (same overlay and
  /// cancellation rules).
  [[nodiscard]] Expected<std::size_t> count_undetectable_internal_probe(
      const Netlist& nl, const FaultStatusCache* base_cache,
      FaultStatusCache* updates, FaultSimArena* arena = nullptr,
      int num_threads = 0, const CancelToken* cancel = nullptr) const;

  /// Folds a probe's overlay into the flow cache (used when a probed
  /// candidate is committed).
  void commit_updates(const FaultStatusCache& updates);

  /// Registers rewritten gates with the cone ledger. Needed when a
  /// probed candidate is committed without another reanalyze() (which
  /// would have discovered them from the placement diff).
  void note_changed_gates(std::span<const GateId> gates) {
    changed_since_seed_.insert(changed_since_seed_.end(), gates.begin(),
                               gates.end());
  }

  /// Per-fault flags (parallel to `universe.faults`, 1 = untouched) for
  /// faults whose excitation and propagation provably cannot involve any
  /// of `changed_gates`: the victim (and bridge aggressor) cannot reach
  /// the fanout cone of the changed gates, and the owner is unchanged.
  [[nodiscard]] static std::vector<std::uint8_t> cone_untouched_flags(
      const Netlist& nl, const FaultUniverse& universe,
      std::span<const GateId> changed_gates);

  /// Compacted test set of the last committed test-generating analysis;
  /// replayed by later warm reanalyses (phase 0 of run_atpg).
  [[nodiscard]] const std::vector<TestPattern>& seed_tests() const {
    return seed_tests_;
  }
  void set_seed_tests(std::vector<TestPattern> tests) {
    seed_tests_ = std::move(tests);
  }

  /// Aggregate ATPG counters over every committed analysis this flow ran
  /// (probes excluded — they report through their own results).
  [[nodiscard]] const AtpgCounters& atpg_totals() const {
    return atpg_totals_;
  }

  [[nodiscard]] const UdfmMap& udfm() const { return udfm_; }
  [[nodiscard]] const Library& target() const { return *target_; }
  [[nodiscard]] const std::shared_ptr<const Library>& target_ptr() const {
    return target_;
  }
  [[nodiscard]] const FlowOptions& options() const { return options_; }
  [[nodiscard]] FaultStatusCache& cache() { return cache_; }
  void clear_cache() { cache_.map.clear(); }

  /// Library cells ordered by decreasing internal-fault count (the
  /// consideration order of the resynthesis procedure). Sequential cells
  /// and cells with no internal faults are excluded.
  [[nodiscard]] std::vector<CellId> cells_by_internal_faults() const;

 private:
  /// Shared tail of reanalyze / reanalyze_with_placement. `changed_gates`
  /// (nullable) = gates introduced by the rewrite being analyzed, used to
  /// maintain the cone bookkeeping; null = the edit is unknown, which
  /// disables cone trust until the next test-generating run re-anchors
  /// the seed epoch.
  [[nodiscard]] std::optional<FlowState> analyze(
      Netlist netlist, Placement placement, bool generate_tests,
      const std::vector<GateId>* changed_gates);

  std::shared_ptr<const Library> target_;
  FlowOptions options_;
  UdfmMap udfm_;
  FaultStatusCache cache_;
  /// Reusable fault-simulator buffers for committed analyses (probes
  /// bring their own arena so they can run concurrently).
  FaultSimArena arena_;
  std::vector<TestPattern> seed_tests_;
  /// Gates rewritten since `seed_tests_` was captured; the cone of these
  /// gates is what a warm test-generating run must re-target.
  std::vector<GateId> changed_since_seed_;
  /// True when an edit of unknown extent was analyzed (direct
  /// reanalyze_with_placement on a changed netlist): cone trust is then
  /// withheld until the seed epoch is re-anchored.
  bool changed_unknown_ = false;
  AtpgCounters atpg_totals_;
};

}  // namespace dfmres
