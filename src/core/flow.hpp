#pragma once

#include <memory>
#include <optional>

#include "src/atpg/engine.hpp"
#include "src/cluster/clustering.hpp"
#include "src/dfm/checker.hpp"
#include "src/layout/floorplan.hpp"
#include "src/place/placement.hpp"
#include "src/route/router.hpp"
#include "src/sta/sta.hpp"
#include "src/synth/mapper.hpp"

namespace dfmres {

struct FlowOptions {
  double utilization = 0.70;  ///< core utilization (paper Section IV)
  AtpgOptions atpg;
  PlaceOptions place;
  RouteOptions route;
  StaOptions sta;
};

/// A fully analyzed design point: mapped netlist, layout, timing/power,
/// DFM fault universe with classification, and the clustering of the
/// undetectable faults.
struct FlowState {
  Netlist netlist;
  Placement placement;
  RoutingResult routing;
  TimingPower timing;
  FaultUniverse universe;
  AtpgResult atpg;
  ClusterAnalysis clusters;

  [[nodiscard]] std::size_t num_faults() const { return universe.size(); }
  [[nodiscard]] std::size_t num_undetectable() const {
    return atpg.num_undetectable;
  }
  [[nodiscard]] double coverage() const {
    return atpg.coverage(universe.size());
  }
  [[nodiscard]] std::size_t smax() const { return clusters.smax(); }
  /// Fraction of all faults that sit in the largest cluster (%Smax_all).
  [[nodiscard]] double smax_fraction() const {
    return universe.size() == 0
               ? 0.0
               : static_cast<double>(smax()) /
                     static_cast<double>(universe.size());
  }
};

/// Orchestrates Synthesize() / PDesign() / sign-off DFM extraction /
/// ATPG the way the paper's flow does, with a fault-status cache that
/// exploits the function-preserving nature of the resynthesis rewrites
/// (statuses of faults outside a rewritten region are invariant; see
/// DESIGN.md).
class DesignFlow {
 public:
  DesignFlow(std::shared_ptr<const Library> target, FlowOptions options);

  /// Initial implementation flow from a technology-independent netlist:
  /// macro-maps DFF/FA/HA, maps the logic, floorplans at the target
  /// utilization, places, routes, extracts DFM faults and runs full ATPG
  /// with test generation.
  [[nodiscard]] FlowState run_initial(const Netlist& rtl);

  /// Re-analysis of an edited mapped netlist inside the frozen floorplan
  /// of `previous`: incremental placement, rerouting, STA, DFM
  /// extraction, cached ATPG. Returns nullopt when the die cannot absorb
  /// the edit (area constraint).
  [[nodiscard]] std::optional<FlowState> reanalyze(Netlist netlist,
                                                   const Placement& previous,
                                                   bool generate_tests);

  /// Same pipeline with an explicit (already legal) placement.
  [[nodiscard]] std::optional<FlowState> reanalyze_with_placement(
      Netlist netlist, Placement placement, bool generate_tests);

  /// Number of undetectable *internal* faults of a netlist. Internal
  /// faults do not depend on placement or routing, so this runs before
  /// PDesign() and gates it (paper Section III-B).
  [[nodiscard]] std::size_t count_undetectable_internal(const Netlist& nl);

  [[nodiscard]] const UdfmMap& udfm() const { return udfm_; }
  [[nodiscard]] const Library& target() const { return *target_; }
  [[nodiscard]] const std::shared_ptr<const Library>& target_ptr() const {
    return target_;
  }
  [[nodiscard]] const FlowOptions& options() const { return options_; }
  [[nodiscard]] FaultStatusCache& cache() { return cache_; }
  void clear_cache() { cache_.map.clear(); }

  /// Library cells ordered by decreasing internal-fault count (the
  /// consideration order of the resynthesis procedure). Sequential cells
  /// and cells with no internal faults are excluded.
  [[nodiscard]] std::vector<CellId> cells_by_internal_faults() const;

 private:
  std::shared_ptr<const Library> target_;
  FlowOptions options_;
  UdfmMap udfm_;
  FaultStatusCache cache_;
};

}  // namespace dfmres
