#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/atpg/engine.hpp"
#include "src/cluster/clustering.hpp"
#include "src/dfm/checker.hpp"
#include "src/layout/floorplan.hpp"
#include "src/place/placement.hpp"
#include "src/route/router.hpp"
#include "src/sta/sta.hpp"
#include "src/synth/mapper.hpp"

namespace dfmres {

struct FlowOptions {
  double utilization = 0.70;  ///< core utilization (paper Section IV)
  AtpgOptions atpg;
  PlaceOptions place;
  RouteOptions route;
  StaOptions sta;
  /// Warm-start incremental ATPG across reanalyses: replay the last
  /// committed compacted test set before random patterns / PODEM, and
  /// trust cached detections of faults structurally untouched by the
  /// rewrites since that test set was generated (see DESIGN.md,
  /// "Incremental-ATPG contract"). false = every analysis runs cold.
  bool warm_start = true;
  /// Copy-on-write probe overlays: keep the committed design's seed-test
  /// good frames (a SimBaseline) alive across probes, so each probe's
  /// phase-0 replay materializes only the O(cone) net slots its edit
  /// dirties instead of re-simulating O(netlist) frames per batch. The
  /// baseline is rebased on every commit (folded in place when the
  /// structural diff allows, rebuilt otherwise). Requires warm_start;
  /// results are bit-identical either way — false only disables the
  /// sharing (each probe pays full loads), for A/B measurement.
  bool probe_overlays = true;
};

/// A fully analyzed design point: mapped netlist, layout, timing/power,
/// DFM fault universe with classification, and the clustering of the
/// undetectable faults.
struct FlowState {
  Netlist netlist;
  Placement placement;
  RoutingResult routing;
  TimingPower timing;
  FaultUniverse universe;
  AtpgResult atpg;
  ClusterAnalysis clusters;

  [[nodiscard]] std::size_t num_faults() const { return universe.size(); }
  [[nodiscard]] std::size_t num_undetectable() const {
    return atpg.num_undetectable;
  }
  [[nodiscard]] double coverage() const {
    return atpg.coverage(universe.size());
  }
  [[nodiscard]] std::size_t smax() const { return clusters.smax(); }
  /// Fraction of all faults that sit in the largest cluster (%Smax_all).
  [[nodiscard]] double smax_fraction() const {
    return universe.size() == 0
               ? 0.0
               : static_cast<double>(smax()) /
                     static_cast<double>(universe.size());
  }
};

/// One committed analysis of an edited mapped netlist. Exactly one of
/// `previous` / `placement` must be set: `previous` runs incremental
/// placement inside that placement's frozen floorplan (the edit is
/// recovered from the placement diff, keeping cone trust alive);
/// `placement` supplies an explicit, already-legal placement (the edit's
/// extent is then unknown, which withholds cone trust until the next
/// test-generating analysis re-anchors the seed epoch). `previous` is a
/// borrowed pointer and must outlive the analyze() call.
struct AnalysisRequest {
  Netlist netlist;
  const Placement* previous = nullptr;
  std::optional<Placement> placement;
  bool generate_tests = false;

  explicit AnalysisRequest(Netlist nl) : netlist(std::move(nl)) {}

  [[nodiscard]] static AnalysisRequest incremental(Netlist netlist,
                                                   const Placement& previous,
                                                   bool generate_tests = false) {
    AnalysisRequest r(std::move(netlist));
    r.previous = &previous;
    r.generate_tests = generate_tests;
    return r;
  }
  [[nodiscard]] static AnalysisRequest placed(Netlist netlist,
                                              Placement placement,
                                              bool generate_tests = false) {
    AnalysisRequest r(std::move(netlist));
    r.placement = std::move(placement);
    r.generate_tests = generate_tests;
    return r;
  }
};

class DesignFlow;

/// A bundle of speculative (side-effect-free) analyses against one
/// DesignFlow: reads `base_cache` (shareable across concurrent sessions
/// — nobody writes it) and records fresh fault classifications in the
/// session's private overlay, so probes of the same candidate reuse each
/// other's verdicts while the flow itself stays untouched. `arena`
/// (nullable = call-local buffers) provides reusable simulator scratch;
/// `num_threads` overrides the fault-sim fan-out (pass 1 from inside a
/// thread-pool job); `cancel` makes the session's ATPG cancellable.
///
/// Probes are the cancellable part of the flow (committed analyses
/// always run to completion): kUnsatisfiable = the die cannot absorb the
/// edit (a normal search outcome); kCancelled / kDeadlineExceeded =
/// `cancel` expired mid-probe, the overlay holds only complete verdicts
/// and the caller must not memoize the attempt.
///
/// The session borrows the flow (and base cache, arena, token): all must
/// outlive it. Committing a probed candidate =
/// `flow.commit_probe(std::move(session))`.
class ProbeSession {
 public:
  ProbeSession(const DesignFlow& flow, const FaultStatusCache* base_cache,
               FaultSimArena* arena = nullptr, int num_threads = 0,
               const CancelToken* cancel = nullptr)
      : flow_(&flow),
        base_(base_cache),
        arena_(arena),
        num_threads_(num_threads),
        cancel_(cancel) {}

  /// Speculative re-analysis of an edited netlist inside the frozen
  /// floorplan of `previous` (incremental placement, rerouting, STA, DFM
  /// extraction, overlay ATPG).
  [[nodiscard]] Expected<FlowState> reanalyze(Netlist netlist,
                                              const Placement& previous,
                                              bool generate_tests = false);

  /// Number of undetectable *internal* faults of a netlist. Internal
  /// faults do not depend on placement or routing, so this runs before
  /// PDesign() and gates it (paper Section III-B).
  [[nodiscard]] Expected<std::size_t> count_undetectable_internal(
      const Netlist& nl);

  /// The session's private classification overlay. Exposed mutably so a
  /// caller can stash it (or pre-seed it) when managing overlays across
  /// sessions; most callers only ever hand the session to commit_probe.
  [[nodiscard]] FaultStatusCache& updates() { return updates_; }
  [[nodiscard]] const FaultStatusCache& updates() const { return updates_; }
  [[nodiscard]] FaultStatusCache take_updates() { return std::move(updates_); }

  /// Aggregate ATPG counters over every probe this session ran;
  /// commit_probe folds them into the flow's committed totals.
  [[nodiscard]] const AtpgCounters& counters() const { return counters_; }

 private:
  const DesignFlow* flow_;
  const FaultStatusCache* base_;
  FaultSimArena* arena_;
  int num_threads_;
  const CancelToken* cancel_;
  FaultStatusCache updates_;
  AtpgCounters counters_;
};

/// Orchestrates Synthesize() / PDesign() / sign-off DFM extraction /
/// ATPG the way the paper's flow does, with a fault-status cache that
/// exploits the function-preserving nature of the resynthesis rewrites
/// (statuses of faults outside a rewritten region are invariant; see
/// DESIGN.md).
///
/// Two entry points: `analyze(AnalysisRequest)` for committed work (the
/// flow's cache, seed tests and cone ledger advance) and `probe()` for a
/// ProbeSession of speculative evaluations (the flow is read-only until
/// `commit_probe`).
class DesignFlow {
 public:
  DesignFlow(std::shared_ptr<const Library> target, FlowOptions options);

  /// Initial implementation flow from a technology-independent netlist:
  /// macro-maps DFF/FA/HA, maps the logic, floorplans at the target
  /// utilization, places, routes, extracts DFM faults and runs full ATPG
  /// with test generation. Fails with the mapper's status when the target
  /// library cannot implement the design.
  [[nodiscard]] Expected<FlowState> run_initial(const Netlist& rtl);

  /// Committed analysis of an edited mapped netlist (see
  /// AnalysisRequest for the two placement modes). kUnsatisfiable = the
  /// die cannot absorb the edit (area constraint — a normal search
  /// outcome); kInvalidArgument = malformed request. Committed analyses
  /// always run to completion (no cancellation).
  [[nodiscard]] Expected<FlowState> analyze(AnalysisRequest request);

  /// Opens a probe session against this flow's committed cache.
  [[nodiscard]] ProbeSession probe(FaultSimArena* arena = nullptr,
                                   int num_threads = 0,
                                   const CancelToken* cancel = nullptr) const {
    return ProbeSession(*this, &cache_, arena, num_threads, cancel);
  }

  /// Folds a finished session into the flow: its overlay becomes part of
  /// the committed cache and its ATPG counters join the committed
  /// totals (used when a probed candidate is accepted).
  void commit_probe(ProbeSession&& session) {
    commit_updates(session.updates());
    atpg_totals_.merge(session.counters());
  }

  // ---- shared plumbing (used by both entry points) ----

  /// Re-anchors the probe-overlay baseline (the committed design's seed
  /// good frames) onto `nl`, which must be the flow's newly committed
  /// netlist. analyze() does this automatically; callers that commit a
  /// probed FlowState directly (stash-and-commit in resynthesis) must
  /// call it themselves after note_changed_gates. Folds the structural
  /// diff in place when possible, rebuilds otherwise; clears the
  /// baseline when overlays are disabled or there is no seed set.
  void rebase_overlays(const Netlist& nl);

  /// Folds a probe overlay into the flow cache (commit_probe's cache
  /// half; also used directly by callers that stash overlays).
  void commit_updates(const FaultStatusCache& updates);

  /// Registers rewritten gates with the cone ledger. Needed when a
  /// probed candidate is committed without another committed analyze()
  /// (which would have discovered them from the placement diff).
  void note_changed_gates(std::span<const GateId> gates) {
    changed_since_seed_.insert(changed_since_seed_.end(), gates.begin(),
                               gates.end());
  }

  /// Per-fault flags (parallel to `universe.faults`, 1 = untouched) for
  /// faults whose excitation and propagation provably cannot involve any
  /// of `changed_gates`: the victim (and bridge aggressor) cannot reach
  /// the fanout cone of the changed gates, and the owner is unchanged.
  [[nodiscard]] static std::vector<std::uint8_t> cone_untouched_flags(
      const Netlist& nl, const FaultUniverse& universe,
      std::span<const GateId> changed_gates);

  /// Compacted test set of the last committed test-generating analysis;
  /// replayed by later warm reanalyses (phase 0 of run_atpg).
  [[nodiscard]] const std::vector<TestPattern>& seed_tests() const {
    return seed_tests_;
  }
  void set_seed_tests(std::vector<TestPattern> tests) {
    seed_tests_ = std::move(tests);
  }

  /// Aggregate ATPG counters over every committed analysis this flow ran
  /// (probes excluded until their session is committed — they report
  /// through their own results).
  [[nodiscard]] const AtpgCounters& atpg_totals() const {
    return atpg_totals_;
  }

  [[nodiscard]] const UdfmMap& udfm() const { return udfm_; }
  [[nodiscard]] const Library& target() const { return *target_; }
  [[nodiscard]] const std::shared_ptr<const Library>& target_ptr() const {
    return target_;
  }
  [[nodiscard]] const FlowOptions& options() const { return options_; }
  [[nodiscard]] FaultStatusCache& cache() { return cache_; }
  void clear_cache() { cache_.map.clear(); }

  /// Library cells ordered by decreasing internal-fault count (the
  /// consideration order of the resynthesis procedure). Sequential cells
  /// and cells with no internal faults are excluded.
  [[nodiscard]] std::vector<CellId> cells_by_internal_faults() const;

 private:
  friend class ProbeSession;

  /// Shared tail of the committed paths. `changed_gates` (nullable) =
  /// gates introduced by the rewrite being analyzed, used to maintain
  /// the cone bookkeeping; null = the edit is unknown, which disables
  /// cone trust until the next test-generating run re-anchors the seed
  /// epoch.
  [[nodiscard]] FlowState analyze_committed(
      Netlist netlist, Placement placement, bool generate_tests,
      const std::vector<GateId>* changed_gates);

  /// Probe implementations behind ProbeSession. `counters` (nullable)
  /// receives the run's ATPG counters on success.
  [[nodiscard]] Expected<FlowState> probe_reanalyze_impl(
      Netlist netlist, const Placement& previous, bool generate_tests,
      const FaultStatusCache* base_cache, FaultStatusCache* updates,
      FaultSimArena* arena, int num_threads, const CancelToken* cancel,
      AtpgCounters* counters) const;
  [[nodiscard]] Expected<std::size_t> probe_count_impl(
      const Netlist& nl, const FaultStatusCache* base_cache,
      FaultStatusCache* updates, FaultSimArena* arena, int num_threads,
      const CancelToken* cancel, AtpgCounters* counters) const;

  std::shared_ptr<const Library> target_;
  FlowOptions options_;
  UdfmMap udfm_;
  FaultStatusCache cache_;
  /// Reusable fault-simulator buffers for committed analyses (probes
  /// bring their own arena so they can run concurrently).
  FaultSimArena arena_;
  std::vector<TestPattern> seed_tests_;
  /// Seed-test good frames over the committed design, shared read-only
  /// by every probe's copy-on-write replay (see FlowOptions::
  /// probe_overlays). Rebased by rebase_overlays on each commit.
  SimBaseline probe_baseline_;
  /// Gates rewritten since `seed_tests_` was captured; the cone of these
  /// gates is what a warm test-generating run must re-target.
  std::vector<GateId> changed_since_seed_;
  /// True when an edit of unknown extent was analyzed (an explicit
  /// placement on a changed netlist): cone trust is then withheld until
  /// the seed epoch is re-anchored.
  bool changed_unknown_ = false;
  AtpgCounters atpg_totals_;
};

}  // namespace dfmres
