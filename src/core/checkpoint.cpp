#include "src/core/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/util/crashpoint.hpp"
#include "src/util/fmt.hpp"
#include "src/util/fsio.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

// Open-file-description locks are per open(), not per process, so two
// CheckpointWriters in one process conflict the same way two processes
// do — which is what makes the lock unit-testable. Old glibc headers
// may lack the constant; the kernel ABI value is stable.
#ifndef F_OFD_SETLK
#define F_OFD_SETLK 37
#endif

namespace {

constexpr int kJournalVersion = 1;

/// Takes (non-blocking) an exclusive whole-file OFD record lock on an
/// open journal fd. A held lock fences the previous holder's *open
/// file description*: after a lease TTL takeover, the old writer — even
/// one merely stalled, not dead — cannot reacquire and its process sees
/// the conflict as kUnavailable, a clean failed attempt rather than two
/// writers interleaving fsync'd records in one journal. The lock dies
/// with the fd, so a SIGKILL'd holder releases it instantly.
Status lock_journal(int fd, const std::string& path) {
  struct flock lk {};
  lk.l_type = F_WRLCK;
  lk.l_whence = SEEK_SET;
  lk.l_start = 0;
  lk.l_len = 0;  // whole file, including future appends
  if (::fcntl(fd, F_OFD_SETLK, &lk) != 0) {
    if (errno == EACCES || errno == EAGAIN) {
      return make_status(StatusCode::kUnavailable,
                         "checkpoint journal %s: locked by another writer",
                         path.c_str());
    }
    return make_status(StatusCode::kInternal,
                       "checkpoint journal %s: cannot lock: %s", path.c_str(),
                       std::strerror(errno));
  }
  return Status::ok();
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Splits "body #crc" and verifies the checksum. Returns false on any
/// malformation (the caller decides whether that is a torn tail or data
/// loss).
bool split_checked_line(const std::string& line, std::string* body) {
  const std::size_t mark = line.rfind(" #");
  if (mark == std::string::npos || line.size() - mark != 10) return false;
  std::uint32_t stored = 0;
  for (std::size_t i = mark + 2; i < line.size(); ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
    stored = stored * 16 + digit;
  }
  *body = line.substr(0, mark);
  return crc32(*body) == stored;
}

bool parse_accept(std::istringstream& in, CheckpointRecord* rec) {
  int bt = 0;
  std::size_t num_region = 0;
  if (!(in >> rec->q >> rec->phase >> bt >> rec->cell_name >> rec->smax >>
        rec->undetectable >> num_region)) {
    return false;
  }
  rec->via_backtracking = bt != 0;
  if (rec->cell_name == "-") rec->cell_name.clear();
  rec->region.resize(num_region);
  for (auto& g : rec->region) {
    if (!(in >> g)) return false;
  }
  std::string bits;
  if (!(in >> bits)) return false;
  rec->banned.reserve(bits.size());
  for (const char c : bits) {
    if (c != '0' && c != '1') return false;
    rec->banned.push_back(c == '1');
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string checkpoint_journal_path(const std::string& dir) {
  return dir + "/resyn_journal.txt";
}

bool CheckpointJournal::search_complete() const {
  for (const CheckpointRecord& r : records) {
    if (r.kind == CheckpointRecord::Kind::Done) return true;
  }
  return false;
}

Expected<CheckpointJournal> read_checkpoint(const std::string& dir) {
  TraceSpan span("ckpt.read", "ckpt");
  const std::string path = checkpoint_journal_path(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_status(StatusCode::kNotFound, "no checkpoint journal at %s",
                       path.c_str());
  }
  CheckpointJournal journal;
  std::string line;
  std::uint64_t offset = 0;
  bool have_header = false;
  bool saw_bad = false;  // a rejected line; valid lines after it = data loss
  std::uint64_t bad_offset = 0;
  while (std::getline(in, line)) {
    // getline consumes the '\n'; a final line without one is a torn
    // append and fails the checksum check anyway (the crc suffix is
    // written last).
    const std::uint64_t line_bytes = line.size() + 1;
    std::string body;
    if (!split_checked_line(line, &body)) {
      saw_bad = true;
      bad_offset = offset;
      offset += line_bytes;
      continue;
    }
    if (saw_bad) {
      return make_status(StatusCode::kDataLoss,
                         "checkpoint journal %s: corrupt record at byte %llu "
                         "followed by valid data (not a torn tail)",
                         path.c_str(),
                         static_cast<unsigned long long>(bad_offset));
    }
    std::istringstream fields(body);
    std::string tag;
    fields >> tag;
    if (!have_header) {
      int version = 0;
      if (tag != "H" || !(fields >> version >> journal.fingerprint) ||
          version != kJournalVersion) {
        return make_status(StatusCode::kDataLoss,
                           "checkpoint journal %s: bad header '%s'",
                           path.c_str(), body.c_str());
      }
      have_header = true;
    } else if (tag == "A") {
      CheckpointRecord rec;
      rec.kind = CheckpointRecord::Kind::Accept;
      if (!parse_accept(fields, &rec)) {
        return make_status(StatusCode::kDataLoss,
                           "checkpoint journal %s: malformed accept record "
                           "at byte %llu",
                           path.c_str(),
                           static_cast<unsigned long long>(offset));
      }
      journal.records.push_back(std::move(rec));
    } else if (tag == "D") {
      CheckpointRecord rec;
      rec.kind = CheckpointRecord::Kind::Done;
      journal.records.push_back(std::move(rec));
    } else if (tag == "F") {
      CheckpointRecord rec;
      rec.kind = CheckpointRecord::Kind::Final;
      if (!(fields >> rec.undetectable >> rec.smax >> rec.faults)) {
        return make_status(StatusCode::kDataLoss,
                           "checkpoint journal %s: malformed final record",
                           path.c_str());
      }
      journal.records.push_back(std::move(rec));
    } else {
      return make_status(StatusCode::kDataLoss,
                         "checkpoint journal %s: unknown record tag '%s'",
                         path.c_str(), tag.c_str());
    }
    offset += line_bytes;
    journal.valid_bytes = offset;
  }
  if (!have_header) {
    return make_status(StatusCode::kDataLoss,
                       "checkpoint journal %s: no valid header", path.c_str());
  }
  return journal;
}

CheckpointWriter::~CheckpointWriter() { close(); }

void CheckpointWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status CheckpointWriter::open_fresh(const std::string& dir,
                                    std::uint64_t fingerprint) {
  close();
  if (Status s = make_dir(dir); !s.is_ok()) return s;
  path_ = checkpoint_journal_path(dir);
  // No O_TRUNC here: truncation must wait until the lock proves no
  // live writer owns the journal, or a racing open would destroy a
  // journal it then fails to lock.
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot create checkpoint journal %s: %s",
                       path_.c_str(), std::strerror(errno));
  }
  if (Status s = lock_journal(fd_, path_); !s.is_ok()) {
    close();
    return s;
  }
  if (::ftruncate(fd_, 0) != 0) {
    const Status s = make_status(StatusCode::kInternal,
                                 "cannot truncate checkpoint journal %s: %s",
                                 path_.c_str(), std::strerror(errno));
    close();
    return s;
  }
  // The journal's *bytes* are made durable by the per-record fsync in
  // write_line, but its *name* is only durable once the directory entry
  // is synced — without this, a power loss can orphan a fully-fsync'd
  // journal and a resume would silently restart from scratch.
  if (Status s = fsync_parent_dir(path_); !s.is_ok()) {
    close();
    return s;
  }
  return write_line(strfmt("H %d %llu", kJournalVersion,
                           static_cast<unsigned long long>(fingerprint)));
}

Status CheckpointWriter::open_resume(const std::string& dir,
                                     std::uint64_t valid_bytes) {
  close();
  path_ = checkpoint_journal_path(dir);
  fd_ = ::open(path_.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) {
    return make_status(StatusCode::kInvalidArgument,
                       "cannot reopen checkpoint journal %s: %s",
                       path_.c_str(), std::strerror(errno));
  }
  if (Status s = lock_journal(fd_, path_); !s.is_ok()) {
    close();
    return s;
  }
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    const Status s = make_status(StatusCode::kInternal,
                                 "cannot truncate checkpoint journal %s to "
                                 "%llu bytes: %s",
                                 path_.c_str(),
                                 static_cast<unsigned long long>(valid_bytes),
                                 std::strerror(errno));
    close();
    return s;
  }
  return Status::ok();
}

Status CheckpointWriter::append(const CheckpointRecord& record) {
  // The fsync inside makes this the slowest constant-cost step of an
  // acceptance — worth a span of its own.
  TraceSpan span("ckpt.append", "ckpt");
  std::string body;
  switch (record.kind) {
    case CheckpointRecord::Kind::Accept: {
      body = strfmt("A %d %d %d %s %llu %llu %zu", record.q, record.phase,
                    record.via_backtracking ? 1 : 0,
                    record.cell_name.empty() ? "-" : record.cell_name.c_str(),
                    static_cast<unsigned long long>(record.smax),
                    static_cast<unsigned long long>(record.undetectable),
                    record.region.size());
      for (const std::uint32_t g : record.region) body += strfmt(" %u", g);
      body += ' ';
      for (const bool b : record.banned) body += b ? '1' : '0';
      break;
    }
    case CheckpointRecord::Kind::Done:
      body = "D";
      break;
    case CheckpointRecord::Kind::Final:
      body = strfmt("F %llu %llu %llu",
                    static_cast<unsigned long long>(record.undetectable),
                    static_cast<unsigned long long>(record.smax),
                    static_cast<unsigned long long>(record.faults));
      break;
  }
  return write_line(body);
}

Status CheckpointWriter::write_line(const std::string& body) {
  if (fd_ < 0) {
    return make_status(StatusCode::kFailedPrecondition,
                       "checkpoint writer is not open");
  }
  const std::string line = body + strfmt(" #%08x\n", crc32(body));
  std::size_t done = 0;
  while (done < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + done, line.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_status(StatusCode::kInternal,
                         "checkpoint journal %s: write failed: %s",
                         path_.c_str(), std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return make_status(StatusCode::kInternal,
                       "checkpoint journal %s: fsync failed: %s",
                       path_.c_str(), std::strerror(errno));
  }
  crash_point("ckpt.append");
  return Status::ok();
}

}  // namespace dfmres
