#include "src/core/request.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/util/duration.hpp"
#include "src/util/fmt.hpp"

namespace dfmres {

namespace {

constexpr const char* kModeFlow = "flow";
constexpr const char* kModeResyn = "resyn";

/// The value a field applier receives, already converted and
/// range-checked for the field's kind.
struct FieldValue {
  std::string text;
  double number = 0.0;
  bool boolean = false;
  std::chrono::nanoseconds duration{0};
};

struct JobField {
  enum class Kind { String, Number, Integer, Bool, Duration };
  const char* key;
  Kind kind;
  double lo;
  double hi;
  Status (*apply)(CampaignJobSpec&, const FieldValue&, const char* ctx);
};

Status field_error(const char* ctx, const char* key, const char* what) {
  return make_status(StatusCode::kInvalidArgument, "%s: key '%s': %s", ctx,
                     key, what);
}

/// The registry: every per-job knob, with its one wire/manifest/flag
/// name and its one range check. Order here is the manifest
/// serialization order, so keep it stable.
constexpr JobField kJobFields[] = {
    {"name", JobField::Kind::String, 0, 0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.name = v.text;
       return Status::ok();
     }},
    {"design", JobField::Kind::String, 0, 0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.design = v.text;
       return Status::ok();
     }},
    {"mode", JobField::Kind::String, 0, 0,
     [](CampaignJobSpec& job, const FieldValue& v, const char* ctx) {
       if (v.text == kModeFlow) {
         job.mode = CampaignJobSpec::Mode::Flow;
       } else if (v.text == kModeResyn) {
         job.mode = CampaignJobSpec::Mode::Resyn;
       } else {
         return field_error(ctx, "mode", "expected \"flow\" or \"resyn\"");
       }
       return Status::ok();
     }},
    {"utilization", JobField::Kind::Number, 0.05, 1.0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.flow.utilization = v.number;
       return Status::ok();
     }},
    {"threads", JobField::Kind::Integer, 0, 1024,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.flow.atpg.num_threads = static_cast<int>(v.number);
       return Status::ok();
     }},
    {"warm_start", JobField::Kind::Bool, 0, 0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.flow.warm_start = v.boolean;
       return Status::ok();
     }},
    {"seed", JobField::Kind::Integer, 0, 9e15,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.flow.atpg.seed =
           static_cast<decltype(job.flow.atpg.seed)>(v.number);
       return Status::ok();
     }},
    {"random_batches", JobField::Kind::Integer, 1, 65536,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.flow.atpg.random_batches = static_cast<int>(v.number);
       return Status::ok();
     }},
    {"backtrack_limit", JobField::Kind::Integer, 1, 1e9,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.flow.atpg.backtrack_limit =
           static_cast<decltype(job.flow.atpg.backtrack_limit)>(v.number);
       return Status::ok();
     }},
    {"q_max", JobField::Kind::Integer, 0, 100,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.resyn.q_max = static_cast<int>(v.number);
       return Status::ok();
     }},
    {"p1_pct", JobField::Kind::Number, 0.0, 100.0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.resyn.p1 = v.number / 100.0;
       return Status::ok();
     }},
    {"max_iterations_per_phase", JobField::Kind::Integer, 1, 100000,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.resyn.max_iterations_per_phase = static_cast<int>(v.number);
       return Status::ok();
     }},
    {"trend_window", JobField::Kind::Integer, 1, 1000,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.resyn.trend_window = static_cast<int>(v.number);
       return Status::ok();
     }},
    {"reanalyses_per_iteration", JobField::Kind::Integer, 1, 1000000,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.resyn.reanalyses_per_iteration = static_cast<int>(v.number);
       return Status::ok();
     }},
    {"dedup_candidates", JobField::Kind::Bool, 0, 0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.resyn.dedup_candidates = v.boolean;
       return Status::ok();
     }},
    {"parallel_ladder", JobField::Kind::Bool, 0, 0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.resyn.parallel_ladder = v.boolean;
       return Status::ok();
     }},
    {"deadline", JobField::Kind::Duration, 0, 0,
     [](CampaignJobSpec& job, const FieldValue& v, const char*) {
       job.deadline = v.duration;
       return Status::ok();
     }},
};

const JobField* find_field(std::string_view key) {
  for (const JobField& field : kJobFields) {
    if (key == field.key) return &field;
  }
  return nullptr;
}

/// JSON value -> FieldValue for one field (type + range checks).
Status convert_json(const JobField& field, const JsonValue& value,
                    const char* ctx, FieldValue* out) {
  switch (field.kind) {
    case JobField::Kind::String:
      if (!value.is_string()) {
        return field_error(ctx, field.key, "expected a string");
      }
      out->text = value.as_string();
      return Status::ok();
    case JobField::Kind::Number:
    case JobField::Kind::Integer: {
      if (!value.is_number()) {
        return field_error(ctx, field.key, "expected a number");
      }
      const double d = value.as_number();
      if (!(d >= field.lo) || !(d <= field.hi)) {
        return field_error(ctx, field.key, "out of range");
      }
      if (field.kind == JobField::Kind::Integer && d != std::floor(d)) {
        return field_error(ctx, field.key, "expected an integer");
      }
      out->number = d;
      return Status::ok();
    }
    case JobField::Kind::Bool:
      if (!value.is_bool()) {
        return field_error(ctx, field.key, "expected a boolean");
      }
      out->boolean = value.as_bool();
      return Status::ok();
    case JobField::Kind::Duration: {
      if (!value.is_string()) {
        return field_error(ctx, field.key, "expected a duration string");
      }
      auto d = parse_duration_spec(value.as_string());
      if (!d) {
        return field_error(ctx, field.key, d.status().message().c_str());
      }
      out->duration = *d;
      return Status::ok();
    }
  }
  return field_error(ctx, field.key, "unhandled kind");
}

/// Flag text -> FieldValue through the same ranges as convert_json.
Status convert_text(const JobField& field, const char* text, const char* ctx,
                    FieldValue* out) {
  switch (field.kind) {
    case JobField::Kind::String:
      out->text = text;
      return Status::ok();
    case JobField::Kind::Number:
    case JobField::Kind::Integer: {
      errno = 0;
      char* end = nullptr;
      const double d = std::strtod(text, &end);
      if (end == text || *end != '\0' || errno == ERANGE) {
        return field_error(ctx, field.key, "expected a number");
      }
      if (!(d >= field.lo) || !(d <= field.hi)) {
        return field_error(ctx, field.key, "out of range");
      }
      if (field.kind == JobField::Kind::Integer && d != std::floor(d)) {
        return field_error(ctx, field.key, "expected an integer");
      }
      out->number = d;
      return Status::ok();
    }
    case JobField::Kind::Bool:
      if (!std::strcmp(text, "true") || !std::strcmp(text, "1")) {
        out->boolean = true;
      } else if (!std::strcmp(text, "false") || !std::strcmp(text, "0")) {
        out->boolean = false;
      } else {
        return field_error(ctx, field.key, "expected true or false");
      }
      return Status::ok();
    case JobField::Kind::Duration: {
      auto d = parse_duration_spec(text);
      if (!d) {
        return field_error(ctx, field.key, d.status().message().c_str());
      }
      out->duration = *d;
      return Status::ok();
    }
  }
  return field_error(ctx, field.key, "unhandled kind");
}

}  // namespace

Status apply_job_field_json(CampaignJobSpec* job, const std::string& key,
                            const JsonValue& value, const char* ctx) {
  const JobField* field = find_field(key);
  if (field == nullptr) {
    return make_status(StatusCode::kInvalidArgument, "%s: unknown key '%s'",
                       ctx, key.c_str());
  }
  FieldValue converted;
  if (Status s = convert_json(*field, value, ctx, &converted); !s.is_ok()) {
    return s;
  }
  return field->apply(*job, converted, ctx);
}

Status apply_job_field_text(CampaignJobSpec* job, std::string_view key,
                            const char* text, const char* ctx) {
  const JobField* field = find_field(key);
  if (field == nullptr) {
    return make_status(StatusCode::kInvalidArgument, "%s: unknown key '%.*s'",
                       ctx, static_cast<int>(key.size()), key.data());
  }
  FieldValue converted;
  if (Status s = convert_text(*field, text, ctx, &converted); !s.is_ok()) {
    return s;
  }
  return field->apply(*job, converted, ctx);
}

Status parse_job_spec(const JsonValue& value, const char* ctx,
                      CampaignJobSpec* out) {
  if (!value.is_object()) {
    return make_status(StatusCode::kInvalidArgument, "%s: expected an object",
                       ctx);
  }
  bool have_name = false;
  bool have_design = false;
  for (const auto& [key, member] : value.members()) {
    if (Status s = apply_job_field_json(out, key, member, ctx); !s.is_ok()) {
      return s;
    }
    have_name = have_name || key == "name";
    have_design = have_design || key == "design";
  }
  if (!have_name) return field_error(ctx, "name", "missing");
  if (!have_design) return field_error(ctx, "design", "missing");
  return Status::ok();
}

void write_job_spec(JsonWriter& w, const CampaignJobSpec& job) {
  w.begin_object();
  w.field("name", job.name);
  w.field("design", job.design);
  w.field("mode",
          job.mode == CampaignJobSpec::Mode::Flow ? kModeFlow : kModeResyn);
  w.field("utilization", job.flow.utilization);
  w.field("threads", job.flow.atpg.num_threads);
  w.field("warm_start", job.flow.warm_start);
  w.field("seed", static_cast<std::uint64_t>(job.flow.atpg.seed));
  w.field("random_batches", job.flow.atpg.random_batches);
  w.field("backtrack_limit",
          static_cast<std::int64_t>(job.flow.atpg.backtrack_limit));
  w.field("q_max", job.resyn.q_max);
  w.field("p1_pct", job.resyn.p1 * 100.0);
  w.field("max_iterations_per_phase", job.resyn.max_iterations_per_phase);
  w.field("trend_window", job.resyn.trend_window);
  w.field("reanalyses_per_iteration", job.resyn.reanalyses_per_iteration);
  w.field("dedup_candidates", job.resyn.dedup_candidates);
  w.field("parallel_ladder", job.resyn.parallel_ladder);
  if (job.deadline.count() > 0) {
    w.field("deadline",
            strfmt("%.17gs",
                   std::chrono::duration<double>(job.deadline).count()));
  }
  w.end_object();
}

Expected<bool> match_job_flag(std::span<const CliFlagBinding> bindings,
                              int argc, char** argv, int* i,
                              CampaignJobSpec* job) {
  for (const CliFlagBinding& binding : bindings) {
    if (std::strcmp(argv[*i], binding.flag) != 0) continue;
    if (*i + 1 >= argc) {
      return make_status(StatusCode::kInvalidArgument, "%s needs a value",
                         binding.flag);
    }
    const char* text = argv[++*i];
    if (Status s = apply_job_field_text(job, binding.key, text, binding.flag);
        !s.is_ok()) {
      return s;
    }
    return true;
  }
  return false;
}

// ---- wire requests -------------------------------------------------------

namespace {

constexpr const char* kKindSubmitJob = "submit_job";
constexpr const char* kKindSubmitCampaign = "submit_campaign";
constexpr const char* kKindStatus = "status";
constexpr const char* kKindCancel = "cancel";
constexpr const char* kKindDrain = "drain";

Status request_error(const char* what) {
  return make_status(StatusCode::kInvalidArgument, "request: %s", what);
}

}  // namespace

const char* Request::kind() const {
  return std::visit(
      [](const auto& r) -> const char* {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, RunRequest>) return kKindSubmitJob;
        if constexpr (std::is_same_v<T, CampaignRequest>) {
          return kKindSubmitCampaign;
        }
        if constexpr (std::is_same_v<T, StatusRequest>) return kKindStatus;
        if constexpr (std::is_same_v<T, CancelRequest>) return kKindCancel;
        if constexpr (std::is_same_v<T, DrainRequest>) return kKindDrain;
      },
      payload);
}

const std::string& Request::id() const {
  static const std::string kEmpty;
  return std::visit(
      [](const auto& r) -> const std::string& {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, DrainRequest>) {
          return kEmpty;
        } else {
          return r.id;
        }
      },
      payload);
}

Status validate_campaign_id(const std::string& id) {
  if (id.empty()) {
    return make_status(StatusCode::kInvalidArgument, "empty campaign id");
  }
  if (id.size() > 128) {
    return make_status(StatusCode::kInvalidArgument,
                       "campaign id longer than 128 characters");
  }
  if (id == "." || id == "..") {
    return make_status(StatusCode::kInvalidArgument,
                       "campaign id '%s' is not a directory name", id.c_str());
  }
  if (id.rfind("__", 0) == 0) {
    return make_status(StatusCode::kInvalidArgument,
                       "campaign id '%s' uses the reserved '__' prefix",
                       id.c_str());
  }
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      return make_status(StatusCode::kInvalidArgument,
                         "campaign id '%s' has characters outside "
                         "[A-Za-z0-9._-]",
                         id.c_str());
    }
  }
  return Status::ok();
}

Expected<Request> parse_request(std::string_view json) {
  auto doc = JsonValue::parse(json);
  if (!doc) return doc.status();
  if (!doc->is_object()) return request_error("expected a top-level object");

  std::string kind;
  std::string id;
  bool have_schema = false;
  bool have_kind = false;
  bool have_id = false;
  const JsonValue* job = nullptr;
  const JsonValue* manifest = nullptr;
  for (const auto& [key, value] : doc->members()) {
    if (key == "schema") {
      if (!value.is_string() || value.as_string() != schemas::kRequest) {
        return make_status(StatusCode::kInvalidArgument,
                           "request: schema must be \"%s\"", schemas::kRequest);
      }
      have_schema = true;
    } else if (key == "kind") {
      if (!value.is_string()) return request_error("'kind' must be a string");
      kind = value.as_string();
      have_kind = true;
    } else if (key == "id") {
      if (!value.is_string()) return request_error("'id' must be a string");
      id = value.as_string();
      have_id = true;
    } else if (key == "job") {
      job = &value;
    } else if (key == "manifest") {
      manifest = &value;
    } else {
      return make_status(StatusCode::kInvalidArgument,
                         "request: unknown key '%s'", key.c_str());
    }
  }
  if (!have_schema) {
    return make_status(StatusCode::kInvalidArgument,
                       "request: missing \"schema\": \"%s\"",
                       schemas::kRequest);
  }
  if (!have_kind) return request_error("missing 'kind'");

  Request out;
  if (kind == kKindSubmitJob) {
    if (!have_id) return request_error("submit_job needs an 'id'");
    if (Status s = validate_campaign_id(id); !s.is_ok()) return s;
    if (job == nullptr) return request_error("submit_job needs a 'job'");
    if (manifest != nullptr) {
      return request_error("submit_job does not take a 'manifest'");
    }
    RunRequest run;
    run.id = id;
    if (Status s = parse_job_spec(*job, "request job", &run.job); !s.is_ok()) {
      return s;
    }
    out.payload = std::move(run);
  } else if (kind == kKindSubmitCampaign) {
    if (!have_id) return request_error("submit_campaign needs an 'id'");
    if (Status s = validate_campaign_id(id); !s.is_ok()) return s;
    if (manifest == nullptr) {
      return request_error("submit_campaign needs a 'manifest'");
    }
    if (job != nullptr) {
      return request_error("submit_campaign does not take a 'job'");
    }
    CampaignRequest campaign;
    campaign.id = id;
    // The embedded manifest is a complete dfmres-campaign-manifest-v1
    // document going through the same strict parser as a manifest file,
    // so the two surfaces cannot diverge.
    auto parsed = CampaignManifest::from_json_value(*manifest);
    if (!parsed) return parsed.status();
    campaign.manifest = std::move(*parsed);
    out.payload = std::move(campaign);
  } else if (kind == kKindStatus || kind == kKindCancel) {
    if (job != nullptr || manifest != nullptr) {
      return request_error("status/cancel take only an 'id'");
    }
    if (kind == kKindCancel) {
      if (!have_id) return request_error("cancel needs an 'id'");
      if (Status s = validate_campaign_id(id); !s.is_ok()) return s;
      out.payload = CancelRequest{id};
    } else {
      if (have_id && !id.empty()) {
        if (Status s = validate_campaign_id(id); !s.is_ok()) return s;
      }
      out.payload = StatusRequest{id};
    }
  } else if (kind == kKindDrain) {
    if (have_id || job != nullptr || manifest != nullptr) {
      return request_error("drain takes no arguments");
    }
    out.payload = DrainRequest{};
  } else {
    return make_status(StatusCode::kInvalidArgument,
                       "request: unknown kind '%s'", kind.c_str());
  }
  return out;
}

std::string request_to_json(const Request& request) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schemas::kRequest);
  w.field("kind", request.kind());
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, RunRequest>) {
          w.field("id", r.id);
          w.key("job");
          write_job_spec(w, r.job);
        } else if constexpr (std::is_same_v<T, CampaignRequest>) {
          w.field("id", r.id);
          w.key("manifest");
          w.raw(r.manifest.to_json());
        } else if constexpr (std::is_same_v<T, StatusRequest>) {
          if (!r.id.empty()) w.field("id", r.id);
        } else if constexpr (std::is_same_v<T, CancelRequest>) {
          w.field("id", r.id);
        } else {
          static_assert(std::is_same_v<T, DrainRequest>);
        }
      },
      request.payload);
  w.end_object();
  return w.take();
}

}  // namespace dfmres
