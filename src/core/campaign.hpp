#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/resynthesis.hpp"
#include "src/core/run_report.hpp"
#include "src/core/schemas.hpp"
#include "src/util/duration.hpp"
#include "src/util/metrics.hpp"

namespace dfmres {

class JsonValue;

/// One job of a campaign: a design crossed with the flow and (for resyn
/// jobs) resynthesis options. The spec's `resyn.cancel`,
/// `resyn.checkpoint_dir` and `resyn.resume` fields are managed by the
/// scheduler (per-job token, `<checkpoint_root>/<name>`); values set
/// here are ignored. `flow.atpg.num_threads` is a cap on the job's
/// inner fan-out: the scheduler lowers it to the two-level budget
/// (0 = use the full per-job share).
struct CampaignJobSpec {
  enum class Mode { Flow, Resyn };

  /// Unique within the manifest; names the job in the report and its
  /// checkpoint directory (must be a single path component).
  std::string name;
  /// Benchmark name (see `dfmres list`) or a path to a structural
  /// Verilog file over the standard library.
  std::string design;
  Mode mode = Mode::Resyn;
  FlowOptions flow;
  ResynthesisOptions resyn;
  /// Per-job wall-clock budget, armed when the job starts (0 = none).
  std::chrono::nanoseconds deadline{0};
};

/// An ordered set of campaign jobs with a strict JSON representation
/// (schema `dfmres-campaign-manifest-v1`). The JSON form covers the
/// commonly swept knobs; programmatic callers (benches, tests) can fill
/// any CampaignJobSpec field directly.
struct CampaignManifest {
  static constexpr const char* kSchema = schemas::kCampaignManifest;

  std::vector<CampaignJobSpec> jobs;

  /// Strict parse: unknown keys, duplicate job names, bad enum values
  /// and malformed durations are kInvalidArgument (with a line:column
  /// locator for syntax errors).
  [[nodiscard]] static Expected<CampaignManifest> from_json(
      std::string_view text);
  /// Same strict parse over an already-parsed document (embedded
  /// manifests inside dfmres-request-v1 submissions).
  [[nodiscard]] static Expected<CampaignManifest> from_json_value(
      const JsonValue& doc);
  [[nodiscard]] static Expected<CampaignManifest> read(
      const std::string& path);

  /// Canonical JSON (round-trips through from_json).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] Status write_json(const std::string& path) const;

  /// The duplicate-name / empty-name / path-component checks from_json
  /// applies, callable on programmatically built manifests.
  [[nodiscard]] Status validate() const;
};

/// The paper's Table II sweep: every built-in benchmark as one resyn job
/// at the paper's q_max = 5 envelope.
[[nodiscard]] CampaignManifest table2_manifest();

struct CampaignOptions {
  /// Jobs in flight at once (clamped to [1, |jobs|]).
  int max_parallel_jobs = 1;
  /// Hardware budget split across the jobs in flight:
  /// `inner = max(1, total_threads / jobs_in_flight)` fault-sim lanes
  /// per job, so `jobs × inner ≤ max(total, jobs)`. 0 = hardware
  /// concurrency.
  int total_threads = 0;
  /// Campaign-wide stop signal; per-job tokens chain to it, so
  /// cancelling it drains every running job cooperatively and skips the
  /// jobs not yet started.
  const CancelToken* cancel = nullptr;
  /// Per-job checkpoint journals at `<checkpoint_root>/<job name>`
  /// (empty = no checkpointing). The root is created if missing.
  std::string checkpoint_root;
  /// Resume each job from its journal when one exists.
  bool resume = false;
};

/// Outcome of one campaign job. `status` is ok for a job that ran to
/// completion (including a resyn whose deadline expired — that returns
/// the best accepted design per the resynthesis contract, with
/// `deadline_expired` set); a failed job carries the error here and
/// leaves the optionals empty.
struct CampaignJobResult {
  std::string name;
  std::string design;
  CampaignJobSpec::Mode mode = CampaignJobSpec::Mode::Resyn;
  Status status;
  /// The campaign was cancelled/expired before this job started.
  bool skipped = false;
  bool deadline_expired = false;
  int inner_threads = 0;
  double seconds = 0.0;
  std::optional<FlowState> initial;
  std::optional<FlowState> final_state;
  std::optional<ResynthesisReport> resyn;
  AtpgCounters atpg_totals;
  /// Per-job run report, identical in shape (command "flow"/"resyn") to
  /// the one the standalone CLI run would emit.
  std::optional<RunReport> report;
  /// Per-job metrics shard (never the global registry), merged
  /// deterministically in manifest order into the campaign report.
  std::unique_ptr<MetricsRegistry> metrics;

  [[nodiscard]] bool ok() const { return status.is_ok() && !skipped; }
};

/// One row of a campaign report — the schema-level shape shared by the
/// in-process scheduler and the multi-process shard merge, so both paths
/// render through the same code and produce identical bytes for
/// identical content by construction.
struct CampaignReportRow {
  std::string name;
  std::string design;
  std::string mode;  ///< "flow" | "resyn"
  bool ok = false;
  std::string status = "ok";  ///< "ok" or the Status string
  bool skipped = false;
  bool deadline_expired = false;
  bool poisoned = false;  ///< attempt budget exhausted; no result
  int attempts = 1;       ///< lease attempts consumed (1 in-process)
  std::string worker;     ///< owner id of the publishing worker ("" local)
  int inner_threads = 0;
  double runtime_seconds = 0.0;
  std::string report_json;  ///< embedded run report; empty = absent
};

/// The campaign-level header counts of a report.
struct CampaignReportTotals {
  std::size_t jobs_total = 0;
  std::size_t completed = 0;
  std::size_t expired = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  int jobs_in_flight = 0;  ///< 0 = multi-process (not a fixed fan-out)
  int inner_threads = 0;
  int total_threads = 0;
  double runtime_seconds = 0.0;
};

/// Renders the `dfmres-campaign-report-v1` document.
[[nodiscard]] std::string render_campaign_report(
    const CampaignReportTotals& totals,
    const std::vector<CampaignReportRow>& rows,
    const std::string& metrics_json);

struct CampaignResult {
  static constexpr const char* kReportSchema = schemas::kCampaignReport;

  /// One entry per manifest job, in manifest order regardless of the
  /// order jobs finished in.
  std::vector<CampaignJobResult> jobs;
  std::size_t completed = 0;  ///< ok and not deadline-expired
  std::size_t expired = 0;    ///< ok but the job deadline cut the search
  std::size_t failed = 0;
  std::size_t skipped = 0;
  int jobs_in_flight = 0;   ///< resolved max_parallel_jobs
  int inner_threads = 0;    ///< resolved per-job fan-out budget
  int total_threads = 0;    ///< resolved hardware budget
  double seconds = 0.0;

  /// Folds every job's metrics shard into `out` in manifest order (the
  /// deterministic-merge contract: the result is independent of job
  /// scheduling).
  void merge_metrics_into(MetricsRegistry& out) const;

  /// The `dfmres-campaign-report-v1` JSON: campaign totals, one entry
  /// per job embedding its run report, and the merged metrics.
  [[nodiscard]] std::string report_json() const;
  [[nodiscard]] Status write_report(const std::string& path) const;
};

/// Executes the manifest's jobs, `max_parallel_jobs` at a time, on
/// dedicated runner threads (inner ATPG/ladder fan-outs share the
/// process-wide ThreadPool under the two-level budget; the pool is never
/// entered twice from one lane). Each job is isolated: a failed or
/// deadline-expired job is reported in its slot and the others run to
/// completion. Job results are bit-identical to the same job run alone,
/// whatever the parallelism. Fails only on campaign-level problems: an
/// empty or invalid manifest, or an unusable checkpoint root.
[[nodiscard]] Expected<CampaignResult> run_campaign(
    const CampaignManifest& manifest, const CampaignOptions& options);

// ---- Multi-process campaigns (lease-claimed workers, shard merge) ----
//
// A campaign *root* directory is the shared coordination medium:
//   <root>/manifest.json   the manifest, written once at init
//   <root>/leases/<job>/   epoch-numbered lease files (see lease.hpp)
//   <root>/ckpt/<job>/     the job's checkpoint journal (cross-attempt)
//   <root>/shards/<job>.json  one dfmres-campaign-shard-v1 per done job
//   <root>/report.json     the merged dfmres-campaign-report-v1
// Any number of worker processes may attach concurrently; jobs are
// claimed through the lease protocol, results are published as shards
// (exclusive create — first wins), and the merge is deterministic in
// manifest order, so the merged report does not depend on the worker
// count or on which workers died along the way.

inline constexpr const char* kCampaignShardSchema = schemas::kCampaignShard;

struct CampaignWorkerOptions {
  std::string campaign_root;
  /// Unique worker identity; empty = "w<pid>".
  std::string owner;
  /// Hardware budget for this worker's (serial) jobs; 0 = hardware
  /// concurrency.
  int total_threads = 0;
  /// Worker-level stop signal (SIGINT/SIGTERM): abandons the current
  /// job without publishing a shard, so another worker redoes it.
  const CancelToken* cancel = nullptr;
  std::chrono::nanoseconds heartbeat{std::chrono::milliseconds(500)};
  std::chrono::nanoseconds lease_ttl{0};  ///< 0 = 3x heartbeat
  int max_attempts = 3;
  std::chrono::nanoseconds backoff_base{std::chrono::milliseconds(250)};
  /// Period of the crash-durable telemetry snapshots this worker
  /// publishes under `<root>/telemetry/` (see telemetry.hpp). 0
  /// disables telemetry entirely.
  std::chrono::nanoseconds telemetry_interval{std::chrono::seconds(1)};
};

struct CampaignWorkerStats {
  int jobs_run = 0;       ///< shards this worker published
  int jobs_poisoned = 0;  ///< poison shards this worker published
  bool merged = false;    ///< this worker won the merge election
  bool cancelled = false; ///< stopped by the cancel token, jobs left
};

/// Creates the campaign root layout and writes the manifest (atomic,
/// durable). Fails kAlreadyExists if a manifest is already present with
/// different content; identical re-init is a no-op, so a coordinator
/// restart can reuse a root.
[[nodiscard]] Status init_campaign_root(const CampaignManifest& manifest,
                                        const std::string& root);

/// Reads `<root>/manifest.json`.
[[nodiscard]] Expected<CampaignManifest> read_campaign_root(
    const std::string& root);

/// Attaches to a campaign root and drains it: claims jobs through the
/// lease protocol, runs them one at a time (resuming from the shared
/// checkpoint dir), publishes shards, and participates in the merge
/// election once every job has a shard. Returns when the campaign is
/// complete (or the token trips). kInternal only for unusable roots and
/// I/O failures — job-level errors become failed attempts and
/// eventually poison shards, never worker exits.
[[nodiscard]] Expected<CampaignWorkerStats> run_campaign_worker(
    const CampaignWorkerOptions& options);

// ---- Shared per-job execution core ----
//
// One claim-and-run pass over a single job: the unit both the
// standalone worker (`dfmres work`) and the `dfmres serve` daemon
// schedule through their ready queues. Everything stateful about the
// pass lives in the campaign root (leases, checkpoints, shards), so a
// pass is idempotent and safe to retry from any thread or process.

class LeaseDir;
class TelemetryPublisher;

enum class JobPassOutcome {
  kPublished,     ///< a result (or skip) shard was written
  kPoisoned,      ///< the attempt budget burned; tombstone published
  kAlreadyDone,   ///< a shard already existed; nothing to do
  kBusy,          ///< lease held elsewhere or in backoff; retry later
  kAttemptFailed, ///< ran and failed; lease marked, retry later
  kLeaseLost,     ///< heartbeat lost mid-run; result discarded
  kCancelled,     ///< ctx.cancel tripped; no shard, state resumable
};

struct CampaignJobPassContext {
  std::string root;
  const LeaseDir* leases = nullptr;
  std::string owner;
  int total_threads = 0;  ///< resolved hardware budget
  int inner_threads = 0;  ///< resolved fault-sim lanes for the job
  const CancelToken* cancel = nullptr;
  TelemetryPublisher* telemetry = nullptr;  ///< optional
  int max_attempts = 3;
  /// Publish a skipped shard instead of running the job: a cancelled
  /// campaign still terminalizes every pending job so the merge
  /// completes with a full report.
  bool skip = false;
};

[[nodiscard]] Expected<JobPassOutcome> campaign_job_pass(
    const CampaignJobPassContext& ctx, const CampaignJobSpec& spec);

/// True when every manifest job has a published shard.
[[nodiscard]] bool campaign_shards_complete(const std::string& root,
                                            const CampaignManifest& manifest);

/// Deterministically merges all shards into the campaign report, writes
/// it to `<root>/report.json` (atomic) and returns the JSON. The merge
/// depends only on shard *content* in manifest order — any worker count
/// and any kill schedule that produced the same shard set produces the
/// same bytes. kFailedPrecondition when shards are missing.
[[nodiscard]] Expected<std::string> merge_campaign_shards(
    const std::string& root);

/// Canonical projection of a `dfmres-campaign-report-v1` document: keeps
/// the deterministic substance (per-job verdicts, fingerprints, initial/
/// final Table-I/II summaries, the accepted convergence trace) and
/// strips everything timing- or scheduling-dependent (wall/cpu seconds,
/// thread counts, attempt/worker provenance, work counters that differ
/// across checkpoint resumes, rejected-probe records that replay does
/// not regenerate, metrics). Two runs of the same manifest — serial,
/// sharded, or crash-resumed — canonicalize to identical bytes.
[[nodiscard]] Expected<std::string> canonical_campaign_report(
    std::string_view report_json);

}  // namespace dfmres
