#include "src/core/resynthesis.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/core/checkpoint.hpp"
#include "src/core/telemetry.hpp"
#include "src/netlist/extract.hpp"
#include "src/util/fmt.hpp"
#include "src/util/logging.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

namespace {

using Clock = std::chrono::steady_clock;

/// Gate slots carrying at least one undetectable internal fault.
std::vector<bool> undet_internal_gates(const FlowState& s) {
  std::vector<bool> out(s.netlist.gate_capacity(), false);
  for (std::uint32_t i = 0; i < s.universe.size(); ++i) {
    if (s.universe.faults[i].scope == FaultScope::Internal &&
        s.atpg.status[i] == FaultStatus::Undetectable) {
      out[s.universe.faults[i].owner.value()] = true;
    }
  }
  return out;
}

std::size_t count_undet_internal(const FlowState& s) {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < s.universe.size(); ++i) {
    n += s.universe.faults[i].scope == FaultScope::Internal &&
         s.atpg.status[i] == FaultStatus::Undetectable;
  }
  return n;
}

struct Budgets {
  double delay = 0.0;
  double power = 0.0;
};

/// Adds the scope's wall time to an accumulator on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& acc) : acc_(acc), t0_(Clock::now()) {}
  ~ScopedTimer() {
    acc_ += std::chrono::duration<double>(Clock::now() - t0_).count();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& acc_;
  Clock::time_point t0_;
};

/// Order-independent-free structural digest of a netlist (gates in slot
/// order with cell and connectivity, plus the PO list). Candidates built
/// from the same base netlist splice fresh ids deterministically, so two
/// ban prefixes that map a region onto the same replacement produce
/// literally identical netlists — and identical digests.
std::uint64_t structural_hash(const Netlist& nl, std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(nl.gate_capacity());
  for (std::uint32_t gi = 0; gi < nl.gate_capacity(); ++gi) {
    const GateId g{gi};
    if (!nl.gate_alive(g)) continue;
    mix(gi);
    mix(nl.gate(g).cell.value());
    for (NetId f : nl.gate(g).fanin) mix(f.value());
    for (NetId o : nl.gate(g).outputs) mix(o.value());
  }
  for (NetId po : nl.primary_outputs()) mix(po.value());
  return h;
}

/// Everything needed to judge a candidate without keeping its FlowState.
/// Candidates are deterministic in (current state, region, banned), so
/// these are memoized across the q sweep.
struct CandMetrics {
  bool map_failed = false;
  bool area_failed = false;
  bool u_in_gate_failed = false;
  /// Cancellation interrupted the evaluation: the metrics are partial
  /// and were NOT memoized (a resumed iteration re-evaluates cleanly).
  bool cancelled = false;
  std::size_t u_in_new = 0;
  std::size_t undetectable = 0;
  std::size_t smax = 0;
  std::size_t faults = 0;
  double delay = 0.0;
  double power = 0.0;
};

class Procedure {
 public:
  Procedure(DesignFlow& flow, const FlowState& original,
            const ResynthesisOptions& options)
      : flow_(flow),
        options_(options),
        cell_order_(flow.cells_by_internal_faults()),
        original_delay_(original.timing.critical_delay),
        original_power_(original.timing.total_power()),
        start_time_(Clock::now()) {}

  Expected<ResynthesisResult> run(const FlowState& original) {
    const auto t0 = start_time_;
    TraceSpan run_span("resyn.run", "resyn");
    // Telemetry phase marker: 1 = cluster break-up, 2 = global shrink,
    // 3 = sign-off; back to idle however this run exits.
    struct PhaseIdleGuard {
      ~PhaseIdleGuard() {
        ProgressCounters::global().phase.store(0, std::memory_order_relaxed);
      }
    } phase_idle_guard;
    if (run_span.active()) {
      run_span.arg("q_max", options_.q_max);
      run_span.arg("u0", static_cast<std::uint64_t>(
                             original.num_undetectable()));
    }

    // Checkpoint journal: open (fresh or resuming) and collect the
    // accepted-candidate sequence to replay.
    std::vector<CheckpointRecord> replay;
    std::size_t replay_pos = 0;
    bool search_done_in_journal = false;
    bool final_in_journal = false;
    if (!options_.checkpoint_dir.empty()) {
      const std::uint64_t fp = fingerprint(original);
      bool fresh = true;
      if (options_.resume) {
        auto journal = read_checkpoint(options_.checkpoint_dir);
        if (journal) {
          if (journal->fingerprint != fp) {
            return make_status(
                StatusCode::kFailedPrecondition,
                "checkpoint in %s was written by a different run "
                "(journal fingerprint %016llx, this run %016llx); delete "
                "it or drop --resume",
                options_.checkpoint_dir.c_str(),
                static_cast<unsigned long long>(journal->fingerprint),
                static_cast<unsigned long long>(fp));
          }
          for (CheckpointRecord& rec : journal->records) {
            switch (rec.kind) {
              case CheckpointRecord::Kind::Accept:
                replay.push_back(std::move(rec));
                break;
              case CheckpointRecord::Kind::Done:
                search_done_in_journal = true;
                break;
              case CheckpointRecord::Kind::Final:
                final_in_journal = true;
                break;
            }
          }
          const Status s = writer_.open_resume(options_.checkpoint_dir,
                                               journal->valid_bytes);
          if (!s.is_ok()) return s;
          fresh = false;
        } else if (journal.code() != StatusCode::kNotFound) {
          return journal.status();
        }
      }
      if (fresh) {
        const Status s = writer_.open_fresh(options_.checkpoint_dir, fp);
        if (!s.is_ok()) return s;
      }
    }

    FlowState current = original;
    bool stopped = false;  // cancellation observed; stop searching

    for (int q = 0; q <= options_.q_max && !stopped; ++q) {
      budgets_.delay = original_delay_ * (1.0 + q / 100.0);
      budgets_.power = original_power_ * (1.0 + q / 100.0);
      bool accepted_at_q = false;

      // ---- phase 1: break up the largest clusters ----
      ProgressCounters::global().phase.store(1, std::memory_order_relaxed);
      for (int iter = 0; iter < options_.max_iterations_per_phase; ++iter) {
        const double smax_of_f =
            current.num_faults() == 0
                ? 0.0
                : static_cast<double>(current.smax()) /
                      static_cast<double>(current.num_faults());
        if (smax_of_f <= options_.p1) break;
        if (replay_pos < replay.size()) {
          // A journaled acceptance at this loop position replays instead
          // of searching; a record for a later position means the
          // original run left this loop without accepting.
          const CheckpointRecord& rec = replay[replay_pos];
          if (rec.q != q || rec.phase != 1) break;
          auto replayed = replay_accept(current, rec);
          if (!replayed) return replayed.status();
          ++replay_pos;
          current = std::move(*replayed);
          bump_version();
          accepted_at_q = true;
          continue;
        }
        if (search_done_in_journal) break;  // nothing left to search
        if (cancel_expired(options_.cancel)) {
          stopped = true;
          break;
        }
        auto next = try_region(current, q, /*phase=*/1, /*p2=*/0.0);
        if (!journal_error_.is_ok()) return journal_error_;
        if (!next) {
          // A cancelled try_region also comes back empty; only a journal
          // marked Done may treat that as convergence, else resume would
          // believe a truncated search finished.
          stopped = cancel_expired(options_.cancel);
          break;
        }
        current = std::move(*next);
        bump_version();
        accepted_at_q = true;
      }
      if (stopped) break;

      // p2: the larger of p1 and the %Smax left by phase 1.
      const double p2 = std::max(
          options_.p1,
          current.num_faults() == 0
              ? 0.0
              : static_cast<double>(current.smax()) /
                    static_cast<double>(current.num_faults()));

      // ---- phase 2: shrink U over the whole circuit ----
      ProgressCounters::global().phase.store(2, std::memory_order_relaxed);
      for (int iter = 0; iter < options_.max_iterations_per_phase; ++iter) {
        if (replay_pos < replay.size()) {
          const CheckpointRecord& rec = replay[replay_pos];
          if (rec.q != q || rec.phase != 2) break;
          auto replayed = replay_accept(current, rec);
          if (!replayed) return replayed.status();
          ++replay_pos;
          current = std::move(*replayed);
          bump_version();
          accepted_at_q = true;
          continue;
        }
        if (search_done_in_journal) break;
        if (cancel_expired(options_.cancel)) {
          stopped = true;
          break;
        }
        auto next = try_region(current, q, /*phase=*/2, p2);
        if (!journal_error_.is_ok()) return journal_error_;
        if (!next) {
          stopped = cancel_expired(options_.cancel);
          break;
        }
        current = std::move(*next);
        bump_version();
        accepted_at_q = true;
      }

      if (accepted_at_q) {
        report_.q_used = q;
        report_.any_accepted = true;
      }
    }

    if (replay_pos < replay.size()) {
      return make_status(
          StatusCode::kDataLoss,
          "checkpoint journal holds %zu accepted candidates but only %zu "
          "replayed against this design (journal/design mismatch)",
          replay.size(), replay_pos);
    }
    if (stopped) {
      report_.deadline_expired = true;
    } else if (writer_.is_open() && !search_done_in_journal) {
      CheckpointRecord done;
      done.kind = CheckpointRecord::Kind::Done;
      const Status s = writer_.append(done);
      if (!s.is_ok()) return s;
    }

    // Final sign-off analysis with test generation. Routed through the
    // incremental path (identity incremental placement) so a warm flow
    // can replay its seed tests and cone-restrict the PODEM retargeting
    // to the accumulated rewrites. Sign-off is committed work: it runs
    // to completion even when the deadline already expired.
    Expected<FlowState> final_state = [&]() -> Expected<FlowState> {
      const ScopedTimer t(report_.signoff_seconds);
      TraceSpan span("resyn.signoff", "resyn");
      ProgressCounters::global().phase.store(3, std::memory_order_relaxed);
      return flow_.analyze(AnalysisRequest::incremental(
          current.netlist, current.placement, /*generate_tests=*/true));
    }();
    if (!final_state) {
      // Identity incremental placement of an already-placed design
      // cannot run out of die.
      fatal_invariant("resynthesize: final sign-off placement of '%s' "
                      "did not fit",
                      current.netlist.name().c_str());
    }
    if (writer_.is_open() && !stopped && !final_in_journal) {
      CheckpointRecord fin;
      fin.kind = CheckpointRecord::Kind::Final;
      fin.undetectable = final_state->num_undetectable();
      fin.smax = final_state->smax();
      fin.faults = final_state->num_faults();
      const Status s = writer_.append(fin);
      if (!s.is_ok()) return s;
    }
    report_.runtime_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return ResynthesisResult{std::move(*final_state), std::move(report_)};
  }

 private:
  /// Gates to re-map in this iteration (C_sub minus G_zero): gates with
  /// undetectable internal faults, restricted to G_max in phase 1.
  std::vector<GateId> region_of(const FlowState& s, int phase) const {
    const auto undet = undet_internal_gates(s);
    std::vector<GateId> region;
    const auto eligible = [&](GateId g) {
      return s.netlist.gate_alive(g) && !s.netlist.cell_of(g).sequential &&
             undet[g.value()];
    };
    if (phase == 1) {
      for (GateId g : s.clusters.gmax) {
        if (eligible(g)) region.push_back(g);
      }
    } else {
      for (GateId g : s.netlist.live_gates()) {
        if (eligible(g)) region.push_back(g);
      }
    }
    return region;
  }

  /// Maps the region over the allowed cell subset and splices it in.
  /// kUnsatisfiable = the allowed subset cannot implement the region (a
  /// normal ladder outcome); other codes indicate a malformed region
  /// (possible only when replaying a stale journal).
  Expected<Netlist> build_candidate(const FlowState& s,
                                    std::span<const GateId> region,
                                    const std::vector<bool>& banned) {
    Netlist copy = s.netlist;
    auto sub = extract_subcircuit(copy, region);
    if (!sub) return sub.status();
    MapOptions map_options;
    map_options.banned = banned;
    auto mapped = technology_map(sub->circuit, flow_.target_ptr(), map_options);
    if (!mapped) return mapped.status();
    auto spliced = replace_region(copy, *sub, *mapped);
    if (!spliced) return spliced.status();
    return copy;
  }

  /// See resynthesis_fingerprint() — the journal is pinned to everything
  /// that influences the accepted-candidate sequence. parallel_ladder
  /// and dedup_candidates are deliberately excluded: both are documented
  /// to leave the sequence unchanged, so a journal survives a
  /// thread-count change.
  std::uint64_t fingerprint(const FlowState& original) const {
    return resynthesis_fingerprint(flow_, original, options_);
  }

  /// Rebuilds one journaled acceptance through the deterministic
  /// candidate path and commits it through the warm-start flow, exactly
  /// as the original run's realization did. Any divergence (the journal
  /// does not correspond to this design) is kDataLoss.
  Expected<FlowState> replay_accept(const FlowState& cur,
                                    const CheckpointRecord& rec) {
    if (rec.banned.size() != flow_.target().num_cells()) {
      return make_status(StatusCode::kDataLoss,
                         "checkpoint replay: ban set covers %zu cells, "
                         "target library has %u",
                         rec.banned.size(), flow_.target().num_cells());
    }
    std::vector<GateId> region;
    region.reserve(rec.region.size());
    for (const std::uint32_t g : rec.region) region.push_back(GateId{g});
    auto candidate = build_candidate(cur, region, rec.banned);
    if (!candidate) {
      return make_status(StatusCode::kDataLoss,
                         "checkpoint replay: accepted candidate no longer "
                         "builds: %s",
                         candidate.status().message().c_str());
    }
    auto state = flow_.analyze(AnalysisRequest::incremental(
        std::move(*candidate), cur.placement, /*generate_tests=*/false));
    if (!state) {
      return make_status(StatusCode::kDataLoss,
                         "checkpoint replay: die cannot absorb a journaled "
                         "acceptance");
    }
    if (state->smax() != rec.smax ||
        state->num_undetectable() != rec.undetectable) {
      return make_status(
          StatusCode::kDataLoss,
          "checkpoint replay diverged: journal says smax=%llu U=%llu, "
          "replayed candidate has smax=%zu U=%zu",
          static_cast<unsigned long long>(rec.smax),
          static_cast<unsigned long long>(rec.undetectable), state->smax(),
          state->num_undetectable());
    }
    report_.trace.push_back({rec.q, rec.phase, state->smax(),
                             state->num_undetectable(), /*accepted=*/true,
                             rec.via_backtracking, rec.cell_name,
                             state->num_faults(),
                             state->timing.critical_delay,
                             state->timing.total_power(), elapsed()});
    ++report_.replayed_accepts;
    return std::move(*state);
  }

  std::string memo_key(std::span<const GateId> region,
                       const std::vector<bool>& banned) const {
    std::string key = strfmt("v%llu|",
                             static_cast<unsigned long long>(state_version_));
    for (bool b : banned) key += b ? '1' : '0';
    key += '|';
    for (GateId g : region) key += strfmt("%u,", g.value());
    return key;
  }

  /// Signature of a concrete candidate netlist, valid for the current
  /// base state (the version prefix pins `cur`, which the u_in gate and
  /// acceptance compare against).
  [[nodiscard]] std::string sig_key(const Netlist& candidate) const {
    return strfmt("s%llu|%zu|%016llx|%016llx",
                  static_cast<unsigned long long>(state_version_),
                  candidate.num_live_gates(),
                  static_cast<unsigned long long>(
                      structural_hash(candidate, 0x243F6A8885A308D3ULL)),
                  static_cast<unsigned long long>(
                      structural_hash(candidate, 0x13198A2E03707344ULL)));
  }

  /// Folds a finished probe session's load economics into the report
  /// (the only place probe-side fault-sim counters surface: sessions
  /// here are never handed to commit_probe). Callers on pool lanes must
  /// hold the ladder mutex — report_ is shared.
  void absorb_probe_counters(const ProbeSession& session) {
    const AtpgCounters& c = session.counters();
    report_.probe_frame_bytes += c.frame_bytes_materialized;
    report_.probe_full_loads += c.full_loads;
    report_.probe_overlay_loads += c.overlay_loads;
    report_.probe_load_seconds += c.load_seconds;
  }

  /// Evaluates a candidate's metrics, memoized across the q sweep.
  /// Leaves no flow-cache or netlist side effects behind (probes write
  /// into private overlays). Respects the per-iteration PDesign()
  /// budget: once exhausted, further candidates report as gate-failed
  /// without being memoized (so a later iteration with fresh budget can
  /// still evaluate them), and a dedup/prefetch hit charges the budget
  /// exactly as the recompute it replaces would.
  const CandMetrics& measure(const FlowState& cur,
                             std::span<const GateId> region,
                             const std::vector<bool>& banned) {
    const std::string key = memo_key(region, banned);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    CandMetrics m;
    Expected<Netlist> candidate = [&] {
      const ScopedTimer t(report_.build_seconds);
      ++report_.candidates_built;
      return build_candidate(cur, region, banned);
    }();
    if (!candidate) {
      m.map_failed = true;
      if (candidate.code() == StatusCode::kUnsatisfiable) {
        return memo_.emplace(std::move(key), m).first->second;
      }
      // Not a search outcome (malformed region): report the failure but
      // keep it out of the memo.
      scratch_ = m;
      return scratch_;
    }

    std::string sig;
    if (options_.dedup_candidates) {
      sig = sig_key(*candidate);
      if (auto it = sig_memo_.find(sig); it != sig_memo_.end()) {
        ++report_.sig_hits;
        // An earlier ban prefix produced this exact replacement (banning
        // an unused cell re-maps identically). Reuse its metrics, but
        // keep the budget evolution identical to a recompute: results
        // that came out of a reanalysis still consume one here.
        m = it->second;
        if (!m.u_in_gate_failed) {
          if (reanalyses_left_ <= 0) {
            scratch_ = m;
            scratch_.u_in_gate_failed = true;  // budget exhausted, unmemoized
            return scratch_;
          }
          --reanalyses_left_;
        }
        return memo_.emplace(std::move(key), m).first->second;
      }
    }

    // One probe session per candidate: the full analysis reuses the u_in
    // probe's overlay verdicts, and the flow itself stays untouched
    // until realize() commits the stashed overlay.
    ProbeSession session =
        flow_.probe(&arenas_[0], /*num_threads=*/0, options_.cancel);
    if (const auto pit = partial_u_in_.find(sig);
        options_.dedup_candidates && pit != partial_u_in_.end()) {
      m.u_in_new = pit->second;  // prefetched, analysis still pending
    } else {
      const ScopedTimer t(report_.u_in_seconds);
      ++report_.u_in_probes;
      auto u_in = session.count_undetectable_internal(*candidate);
      if (!u_in) {
        // Cancelled mid-probe: partial verdicts are discarded, nothing
        // is memoized, and the caller abandons the iteration.
        ++report_.rungs_skipped;
        absorb_probe_counters(session);
        scratch_ = m;
        scratch_.cancelled = true;
        scratch_.u_in_gate_failed = true;
        return scratch_;
      }
      m.u_in_new = *u_in;
    }
    const std::size_t u_in_cur = count_undet_internal(cur);
    if (m.u_in_new >= u_in_cur) {
      // PDesign() gate (Section III-B): physical design only when the
      // undetectable internal fault count decreased.
      m.u_in_gate_failed = true;
    } else if (reanalyses_left_ <= 0) {
      absorb_probe_counters(session);
      scratch_ = m;
      scratch_.u_in_gate_failed = true;  // budget exhausted: skip, unmemoized
      return scratch_;
    } else {
      --reanalyses_left_;
      Expected<FlowState> state = [&] {
        const ScopedTimer t(report_.probe_seconds);
        ++report_.full_probes;
        return session.reanalyze(std::move(*candidate), cur.placement, false);
      }();
      if (!state) {
        if (state.code() != StatusCode::kUnsatisfiable) {
          ++report_.rungs_skipped;
          absorb_probe_counters(session);
          scratch_ = m;
          scratch_.cancelled = true;
          scratch_.u_in_gate_failed = true;
          return scratch_;
        }
        m.area_failed = true;  // die full: a normal search outcome
      } else {
        m.undetectable = state->num_undetectable();
        m.smax = state->smax();
        m.faults = state->num_faults();
        m.delay = state->timing.critical_delay;
        m.power = state->timing.total_power();
        if (options_.dedup_candidates) {
          stash_.emplace(sig, Stash{std::move(*state),
                                    session.take_updates()});
        }
      }
    }
    absorb_probe_counters(session);
    if (options_.dedup_candidates) sig_memo_.emplace(sig, m);
    return memo_.emplace(std::move(key), m).first->second;
  }

  /// Produces the FlowState of an already-vetted candidate and commits
  /// its classifications to the flow cache — from the speculative stash
  /// when the evaluation kept one, re-running the full committed
  /// pipeline otherwise.
  std::optional<FlowState> realize(const FlowState& cur,
                                   std::span<const GateId> region,
                                   const std::vector<bool>& banned) {
    auto candidate = build_candidate(cur, region, banned);
    if (!candidate) return std::nullopt;
    // Stage the acceptance for the checkpoint journal: record() appends
    // exactly this (region, ban set) pair, which rebuilds the identical
    // candidate on replay.
    pending_region_.assign(region.begin(), region.end());
    pending_banned_ = banned;
    if (options_.dedup_candidates) {
      const std::string sig = sig_key(*candidate);
      if (const auto it = stash_.find(sig); it != stash_.end()) {
        flow_.commit_updates(it->second.overlay);
        // Register the spliced-in gates (ids >= the base capacity) with
        // the cone ledger, as a committed reanalyze would have.
        std::vector<GateId> changed;
        for (GateId g : it->second.state.netlist.live_gates()) {
          if (g.value() >= cur.netlist.gate_capacity()) changed.push_back(g);
        }
        flow_.note_changed_gates(changed);
        ++report_.stash_commits;
        FlowState state = std::move(it->second.state);
        stash_.erase(it);
        // The stashed candidate is now the committed design; fold the
        // probe-overlay baseline onto it (a committed analyze would
        // have done this itself).
        flow_.rebase_overlays(state.netlist);
        return state;
      }
    }
    auto state = flow_.analyze(AnalysisRequest::incremental(
        std::move(*candidate), cur.placement, /*generate_tests=*/false));
    if (!state) return std::nullopt;  // die full: area constraint
    return std::move(*state);
  }

  bool accepts(const FlowState& cur, const CandMetrics& m, int phase,
               double p2) const {
    if (m.map_failed || m.area_failed || m.u_in_gate_failed) return false;
    if (phase == 1) {
      // S_max must shrink without growing total U.
      return m.smax < cur.smax() && m.undetectable <= cur.num_undetectable();
    }
    const double smax_fraction =
        m.faults == 0
            ? 0.0
            : static_cast<double>(m.smax) / static_cast<double>(m.faults);
    return m.undetectable < cur.num_undetectable() &&
           smax_fraction <= p2 + 1e-12;
  }

  [[nodiscard]] bool constraints_ok(const CandMetrics& m) const {
    constexpr double kEps = 1e-9;
    return !m.area_failed && m.delay <= budgets_.delay + kEps &&
           m.power <= budgets_.power + kEps;
  }

  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_time_).count();
  }

  /// A fully measured candidate that the acceptance rules (or the
  /// constraint budgets) turned down — the rejected half of the
  /// convergence series. Never journaled.
  void record_rejected(int q, int phase, const CandMetrics& m,
                       const std::string& banned_through) {
    report_.trace.push_back({q, phase, m.smax, m.undetectable,
                             /*accepted=*/false, /*via_backtracking=*/false,
                             banned_through, m.faults, m.delay, m.power,
                             elapsed()});
  }

  void record(int q, int phase, const FlowState& after, bool accepted,
              bool via_backtracking, const std::string& banned_through) {
    report_.trace.push_back({q, phase, after.smax(),
                             after.num_undetectable(), accepted,
                             via_backtracking, banned_through,
                             after.num_faults(), after.timing.critical_delay,
                             after.timing.total_power(), elapsed()});
    if (accepted && writer_.is_open()) {
      // Journal the acceptance before the search continues: after the
      // fsync'd append returns, a crash at any later point replays this
      // step. A failed append is surfaced at the next loop boundary.
      CheckpointRecord rec;
      rec.kind = CheckpointRecord::Kind::Accept;
      rec.q = q;
      rec.phase = phase;
      rec.via_backtracking = via_backtracking;
      rec.cell_name = banned_through;
      rec.region.reserve(pending_region_.size());
      for (const GateId g : pending_region_) rec.region.push_back(g.value());
      rec.banned = pending_banned_;
      rec.smax = after.smax();
      rec.undetectable = after.num_undetectable();
      const Status s = writer_.append(rec);
      if (!s.is_ok() && journal_error_.is_ok()) journal_error_ = s;
    }
  }

  /// One resynthesis iteration: scan cells in decreasing internal-fault
  /// order, evaluate candidates, run backtracking on constraint
  /// violations. Returns the accepted state or nullopt.
  std::optional<FlowState> try_region(const FlowState& cur, int q, int phase,
                                      double p2) {
    const std::vector<GateId> region = region_of(cur, phase);
    if (region.empty()) return std::nullopt;
    TraceSpan iter_span("resyn.iteration", "resyn");
    if (iter_span.active()) {
      iter_span.arg("q", q);
      iter_span.arg("phase", phase);
      iter_span.arg("region", static_cast<std::uint64_t>(region.size()));
    }
    reanalyses_left_ = options_.reanalyses_per_iteration;
    prefetch_ladder(cur, region);

    int rising = 0;
    std::size_t last_u = std::numeric_limits<std::size_t>::max();
    std::vector<bool> banned(flow_.target().num_cells(), false);

    for (std::size_t ci = 0; ci < cell_order_.size(); ++ci) {
      const CellId cell = cell_order_[ci];
      banned[cell.value()] = true;
      // Note on eligibility (paper conditions (1)/(2)): skipping ban
      // prefixes whose last cell is absent from the region can jump over
      // the affordable rung when the *replacement* logic would reuse a
      // not-yet-banned high-fault cell (banning FAX1 alone re-maps onto
      // XNOR2X1). We therefore evaluate every prefix of the order; the
      // u_in gate discards the useless ones cheaply.
      const std::string& cell_name = flow_.target().cell(cell).name;

      TraceSpan rung_span("resyn.rung", "resyn");
      if (rung_span.active()) {
        rung_span.arg("ban_through", cell_name.c_str());
        rung_span.arg("region", static_cast<std::uint64_t>(region.size()));
      }
      const CandMetrics& m = measure(cur, region, banned);
      if (m.cancelled) return std::nullopt;  // abandon the iteration
      if (m.map_failed) break;  // subset insufficient; larger bans too
      if (m.u_in_gate_failed) continue;

      const bool ok_accept = accepts(cur, m, phase, p2);
      const bool ok_constraints = constraints_ok(m);
      log_debug("resyn q=%d ph=%d region=%zu ban<=%s u_in->%zu U %zu->%zu "
                "acc=%d con=%d",
                q, phase, region.size(), cell_name.c_str(), m.u_in_new,
                cur.num_undetectable(), m.undetectable, int(ok_accept),
                int(ok_constraints));

      if (!m.area_failed) {
        // Early phase termination on a rising total-U trend.
        rising = (last_u != std::numeric_limits<std::size_t>::max() &&
                  m.undetectable > last_u)
                     ? rising + 1
                     : 0;
        last_u = m.undetectable;
      }

      if (ok_accept && ok_constraints) {
        auto state = realize(cur, region, banned);
        if (state) {
          record(q, phase, *state, true, false, cell_name);
          return state;
        }
      } else {
        // The candidate was fully measured and turned down: one rejected
        // point of the convergence series (area failures carry no
        // metrics and are skipped).
        if (!m.area_failed) record_rejected(q, phase, m, cell_name);
        if (m.area_failed || ok_accept) {
          // Acceptance-worthy but over budget (or placement failed): run
          // the sqrt(n)-group backtracking procedure.
          auto bt = backtrack(cur, region, banned, phase, p2, q, cell_name);
          if (bt) return bt;
        }
      }
      if (rising >= options_.trend_window) break;
    }
    return std::nullopt;
  }

  /// Section III-C: freeze gates of banned types in groups of sqrt(n)
  /// (G_back) to lower the design overhead, then thaw the last group one
  /// by one when the shrunken rewrite no longer improves enough.
  std::optional<FlowState> backtrack(const FlowState& cur,
                                     std::span<const GateId> region,
                                     const std::vector<bool>& banned,
                                     int phase, double p2, int q,
                                     const std::string& cell_name) {
    std::vector<GateId> g_i;  // replaceable gates of banned types
    std::vector<GateId> keep;
    for (GateId g : region) {
      if (banned[cur.netlist.gate(g).cell.value()]) {
        g_i.push_back(g);
      } else {
        keep.push_back(g);
      }
    }
    const std::size_t n = g_i.size();
    if (n == 0) return std::nullopt;
    TraceSpan span("resyn.backtrack", "resyn");
    if (span.active()) {
      span.arg("candidates", static_cast<std::uint64_t>(n));
      span.arg("ban_through", cell_name.c_str());
    }
    // Freeze the costliest replacements first ("modifying fewer gates
    // implies lower relative effect on design constraints", Section
    // III-C): large cells whose decompositions dominate the overhead go
    // into G_back before cheap swaps such as drive downsizing.
    std::sort(g_i.begin(), g_i.end(), [&](GateId a, GateId b) {
      const double aa = cur.netlist.cell_of(a).area_um2;
      const double ab = cur.netlist.cell_of(b).area_um2;
      return aa != ab ? aa > ab : a < b;
    });
    const std::size_t group =
        std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(n)));

    // Verdict: 1 accept, -1 constraints violated, -2 acceptance failed,
    // -3 cancelled (abandon backtracking entirely).
    const auto judge = [&](std::size_t frozen)
        -> std::pair<int, std::vector<GateId>> {
      std::vector<GateId> sub_region = keep;
      sub_region.insert(sub_region.end(), g_i.begin() + frozen, g_i.end());
      if (sub_region.empty()) return {-2, {}};
      const CandMetrics& m = measure(cur, sub_region, banned);
      if (m.cancelled) return {-3, {}};
      if (m.map_failed || m.u_in_gate_failed) return {-2, {}};
      const bool ok_accept = accepts(cur, m, phase, p2);
      const bool ok_constraints = constraints_ok(m);
      if (ok_accept && ok_constraints) return {1, std::move(sub_region)};
      if (!ok_constraints) return {-1, {}};
      return {-2, {}};
    };

    std::size_t frozen = 0;
    while (frozen < n) {
      frozen = std::min(n, frozen + group);
      auto [verdict, sub_region] = judge(frozen);
      if (verdict == -3) return std::nullopt;
      if (verdict == 1) {
        auto state = realize(cur, sub_region, banned);
        if (state) {
          record(q, phase, *state, true, true, cell_name);
          return state;
        }
      }
      if (verdict == -2) {
        // Constraints fine but not enough improvement: thaw the last
        // group one gate at a time.
        const std::size_t group_start = frozen - std::min(frozen, group);
        for (std::size_t f = frozen; f-- > group_start;) {
          auto [verdict2, sub_region2] = judge(f);
          if (verdict2 == -3) return std::nullopt;
          if (verdict2 == 1) {
            auto state = realize(cur, sub_region2, banned);
            if (state) {
              record(q, phase, *state, true, true, cell_name);
              return state;
            }
          }
          if (verdict2 == -1) break;  // overheads reappeared
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// Speculative evaluation of the whole cell ladder on the shared
  /// thread pool before the serial acceptance walk. Each worker probes
  /// with a private cache overlay and simulator arena (inner ATPG runs
  /// single-threaded — the shared pool must not be entered twice), and
  /// publishes into the dedup structures under a mutex; the walk then
  /// consumes the results serially, so acceptance decisions and budget
  /// accounting are identical to the serial run. No-op with one worker.
  void prefetch_ladder(const FlowState& cur, std::span<const GateId> region) {
    if (!options_.parallel_ladder || !options_.dedup_candidates) return;
    const int workers =
        ThreadPool::resolve_threads(flow_.options().atpg.num_threads);
    if (workers <= 1) return;

    struct Rung {
      std::vector<bool> banned;
    };
    std::vector<Rung> rungs;
    std::vector<bool> banned(flow_.target().num_cells(), false);
    for (const CellId cell : cell_order_) {
      banned[cell.value()] = true;
      if (memo_.find(memo_key(region, banned)) == memo_.end()) {
        rungs.push_back({banned});
      }
    }
    if (rungs.size() < 2) return;

    if (arenas_.size() < static_cast<std::size_t>(workers)) {
      arenas_.resize(static_cast<std::size_t>(workers));
    }
    const std::size_t u_in_cur = count_undet_internal(cur);
    std::mutex mutex;
    std::unordered_set<std::string> claimed;
    // At most the iteration's reanalysis budget is speculated; the walk
    // remains the authority on which evaluations actually charge it.
    std::atomic<int> spec_budget{reanalyses_left_};

    ThreadPool::shared().parallel_for(
        rungs.size(), 1, workers,
        [&](int lane, std::size_t begin, std::size_t end) {
          for (std::size_t r = begin; r < end; ++r) {
            if (cancel_expired(options_.cancel)) return;
            TraceSpan spec_span("resyn.rung.spec", "resyn");
            const auto tb = Clock::now();
            auto candidate = build_candidate(cur, region, rungs[r].banned);
            const double build_s =
                std::chrono::duration<double>(Clock::now() - tb).count();
            if (!candidate) continue;
            const std::string sig = sig_key(*candidate);
            {
              std::lock_guard lock(mutex);
              ++report_.candidates_built;
              report_.build_seconds += build_s;
              if (sig_memo_.contains(sig) || partial_u_in_.contains(sig) ||
                  !claimed.insert(sig).second) {
                continue;
              }
            }
            // Lane-private session: inner ATPG runs single-threaded (a
            // pool lane must not fan out again) on the lane's arena.
            ProbeSession session =
                flow_.probe(&arenas_[static_cast<std::size_t>(lane)],
                            /*num_threads=*/1, options_.cancel);
            CandMetrics m;
            const auto tu = Clock::now();
            const auto u_in = session.count_undetectable_internal(*candidate);
            const double u_in_s =
                std::chrono::duration<double>(Clock::now() - tu).count();
            if (!u_in) {
              // Cancelled mid-probe: publish nothing (the session's
              // counters for complete prior runs still count).
              std::lock_guard lock(mutex);
              absorb_probe_counters(session);
              continue;
            }
            m.u_in_new = *u_in;
            if (m.u_in_new >= u_in_cur) {
              m.u_in_gate_failed = true;
              std::lock_guard lock(mutex);
              ++report_.u_in_probes;
              report_.u_in_seconds += u_in_s;
              absorb_probe_counters(session);
              sig_memo_.emplace(sig, m);
              continue;
            }
            if (spec_budget.fetch_sub(1) <= 0) {
              // Over the speculation budget: keep the u_in result so the
              // walk can skip the probe, but leave the analysis (and its
              // budget charge) to the walk.
              std::lock_guard lock(mutex);
              ++report_.u_in_probes;
              report_.u_in_seconds += u_in_s;
              absorb_probe_counters(session);
              partial_u_in_.emplace(sig, m.u_in_new);
              continue;
            }
            const auto tp = Clock::now();
            auto state =
                session.reanalyze(std::move(*candidate), cur.placement, false);
            const double probe_s =
                std::chrono::duration<double>(Clock::now() - tp).count();
            if (!state && state.code() != StatusCode::kUnsatisfiable) {
              // Cancelled mid-analysis: the u_in count is still complete,
              // so keep it as a partial; the walk (if it resumes) will
              // redo or skip the full analysis itself.
              std::lock_guard lock(mutex);
              ++report_.u_in_probes;
              report_.u_in_seconds += u_in_s;
              absorb_probe_counters(session);
              partial_u_in_.emplace(sig, m.u_in_new);
              continue;
            }
            if (!state) {
              m.area_failed = true;
            } else {
              m.undetectable = state->num_undetectable();
              m.smax = state->smax();
              m.faults = state->num_faults();
              m.delay = state->timing.critical_delay;
              m.power = state->timing.total_power();
            }
            std::lock_guard lock(mutex);
            ++report_.u_in_probes;
            report_.u_in_seconds += u_in_s;
            ++report_.full_probes;
            report_.probe_seconds += probe_s;
            absorb_probe_counters(session);
            if (state) {
              stash_.emplace(sig, Stash{std::move(*state),
                                        session.take_updates()});
            }
            sig_memo_.emplace(sig, m);
          }
        }, options_.cancel);
  }

  /// A state was accepted: the base version changes, so every
  /// version-pinned speculative artifact of the old base is dead.
  void bump_version() {
    ++state_version_;
    stash_.clear();
    partial_u_in_.clear();
  }

  struct Stash {
    FlowState state;
    FaultStatusCache overlay;
  };

  DesignFlow& flow_;
  const ResynthesisOptions& options_;
  std::vector<CellId> cell_order_;
  double original_delay_;
  double original_power_;
  Clock::time_point start_time_;
  Budgets budgets_;
  ResynthesisReport report_;
  std::unordered_map<std::string, CandMetrics> memo_;
  /// Candidate-signature memo (dedup_candidates): metrics keyed by the
  /// concrete replacement netlist rather than the ban prefix.
  std::unordered_map<std::string, CandMetrics> sig_memo_;
  /// Prefetched u_in results whose full analysis is still pending.
  std::unordered_map<std::string, std::size_t> partial_u_in_;
  /// Speculative FlowStates + cache overlays awaiting realize().
  std::unordered_map<std::string, Stash> stash_;
  /// Per-ladder-lane simulator arenas (slot 0 = the serial walk).
  std::vector<FaultSimArena> arenas_{1};
  std::uint64_t state_version_ = 0;
  int reanalyses_left_ = 0;
  CandMetrics scratch_;
  /// Acceptance journal (no-op unless options_.checkpoint_dir is set).
  CheckpointWriter writer_;
  /// First journal-append failure; surfaced at the next loop boundary.
  Status journal_error_;
  /// (region, ban set) of the candidate realize() last built, staged for
  /// the journal record of its acceptance.
  std::vector<GateId> pending_region_;
  std::vector<bool> pending_banned_;
};

}  // namespace

Expected<ResynthesisResult> resynthesize(DesignFlow& flow,
                                         const FlowState& original,
                                         const ResynthesisOptions& options) {
  Procedure procedure(flow, original, options);
  return procedure.run(original);
}

std::uint64_t resynthesis_fingerprint(const DesignFlow& flow,
                                      const FlowState& original,
                                      const ResynthesisOptions& options) {
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(options.p1 * 1e9));
  mix(static_cast<std::uint64_t>(options.q_max));
  mix(static_cast<std::uint64_t>(options.max_iterations_per_phase));
  mix(static_cast<std::uint64_t>(options.trend_window));
  mix(static_cast<std::uint64_t>(options.reanalyses_per_iteration));
  const FlowOptions& fo = flow.options();
  mix(fo.warm_start);
  mix(static_cast<std::uint64_t>(fo.utilization * 1e9));
  mix(fo.atpg.seed);
  mix(static_cast<std::uint64_t>(fo.atpg.random_batches));
  mix(static_cast<std::uint64_t>(fo.atpg.backtrack_limit));
  mix(structural_hash(original.netlist, 0x13198A2E03707344ULL));
  mix(original.num_faults());
  mix(original.num_undetectable());
  mix(original.smax());
  for (const TestPattern& t : flow.seed_tests()) {
    for (const std::uint8_t b : t.frame0) mix(b);
    for (const std::uint8_t b : t.frame1) mix(b);
  }
  return h;
}

}  // namespace dfmres
