#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/core/flow.hpp"
#include "src/core/resynthesis.hpp"
#include "src/util/metrics.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// Design-point summary used by the report's `initial`/`final` blocks —
/// the Table I / Table II columns of the paper (fault totals, U, |S_max|
/// and %S_max, coverage, delay, power, test count).
struct StateSummary {
  std::size_t faults = 0;
  std::size_t undetectable = 0;
  std::size_t smax = 0;
  double smax_pct = 0.0;  ///< |S_max| as a percentage of all faults
  double coverage = 0.0;
  double delay = 0.0;
  double power = 0.0;
  std::size_t tests = 0;

  [[nodiscard]] static StateSummary of(const FlowState& state);
};

/// Machine-readable run report (`--report-out`): one JSON document per
/// run with the options fingerprint, per-phase timing, Table-I/II-style
/// initial/final stats and the full per-candidate convergence series.
/// Schema documented in DESIGN.md §10; every producer (CLI commands and
/// bench_* binaries) emits this same shape.
class RunReport {
 public:
  /// `command` names the producer ("flow", "resyn", "bench_table2", …).
  RunReport(std::string command, std::string circuit);

  void set_threads(int threads);
  void set_fingerprint(std::uint64_t fingerprint);
  void set_initial(const FlowState& state);
  void set_final(const FlowState& state);
  /// Convergence series, resynthesis counters, phase timers, q_used and
  /// the partial flag all come from the procedure's report.
  void set_resynthesis(const ResynthesisReport& report);
  void set_atpg_totals(const AtpgCounters& totals);
  void set_runtime_seconds(double seconds);
  /// Marks the report as covering an interrupted run (deadline expiry).
  /// set_resynthesis() also sets this from `deadline_expired`.
  void set_partial(bool partial);

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] Status write_json(const std::string& path) const;

 private:
  std::string command_;
  std::string circuit_;
  /// Fault-sim kernel resolved at construction time ("scalar", "avx2",
  /// …) and its SimWord width W — pins which SIMD path produced the run.
  std::string sim_kernel_;
  int sim_words_ = 1;
  int threads_ = 0;
  std::uint64_t fingerprint_ = 0;
  bool has_fingerprint_ = false;
  bool partial_ = false;
  double runtime_seconds_ = 0.0;
  double cpu_seconds_at_build_ = 0.0;
  std::optional<StateSummary> initial_;
  std::optional<StateSummary> final_;
  std::optional<ResynthesisReport> resyn_;
  std::optional<AtpgCounters> atpg_;
};

/// Publishes a resynthesis report into a metrics registry: the counters
/// under `resyn.*` and, per trace record, the convergence time series
/// (`resyn.series.*`, x = seconds since the procedure started).
void publish_metrics(const ResynthesisReport& report,
                     MetricsRegistry& registry);

}  // namespace dfmres
