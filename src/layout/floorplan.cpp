#include "src/layout/floorplan.hpp"

#include <algorithm>
#include <cmath>

namespace dfmres {

long total_width_sites(const Netlist& nl) {
  long total = 0;
  for (GateId g : nl.live_gates()) total += nl.cell_of(g).width_sites;
  return total;
}

double Floorplan::utilization(const Netlist& nl) const {
  if (total_sites() == 0) return 1.0;
  return static_cast<double>(total_width_sites(nl)) /
         static_cast<double>(total_sites());
}

bool Floorplan::fits(const Netlist& nl) const {
  // Row packing needs a little slack over the raw area bound; cap at 97%
  // of the sites so legalization can always succeed.
  return static_cast<double>(total_width_sites(nl)) <=
         0.97 * static_cast<double>(total_sites());
}

Floorplan make_floorplan(const Netlist& nl, double utilization) {
  const long occupied = std::max(1L, total_width_sites(nl));
  const auto needed =
      static_cast<long>(std::ceil(static_cast<double>(occupied) / utilization));
  Floorplan plan;
  plan.utilization_target = utilization;
  plan.rows = std::max(1, static_cast<int>(std::lround(std::sqrt(
                              static_cast<double>(needed) / 8.0))));
  plan.sites_per_row = static_cast<int>(
      (needed + plan.rows - 1) / plan.rows);
  // Rows hold ~8x more sites than their count: cells are much wider than
  // tall, which matches standard-cell aspect ratios.
  return plan;
}

}  // namespace dfmres
