#pragma once

#include <cstdint>

#include "src/netlist/netlist.hpp"

namespace dfmres {

/// Row-based floorplan. Placement sites are unit-width cells on `rows`
/// horizontal rows of `sites_per_row` sites each. The die outline is
/// fixed once computed from the original design (the paper keeps the
/// floorplan and die area unchanged through resynthesis).
struct Floorplan {
  int rows = 0;
  int sites_per_row = 0;
  double utilization_target = 0.70;

  [[nodiscard]] long total_sites() const {
    return static_cast<long>(rows) * sites_per_row;
  }
  /// Utilization of a netlist in this floorplan (occupied / total sites).
  [[nodiscard]] double utilization(const Netlist& nl) const;

  /// True if the netlist's cells can physically fit.
  [[nodiscard]] bool fits(const Netlist& nl) const;
};

/// Sum of placement widths (sites) over live gates.
[[nodiscard]] long total_width_sites(const Netlist& nl);

/// Computes a roughly square floorplan sized for `nl` at `utilization`
/// core utilization (70% in the paper's experiments).
[[nodiscard]] Floorplan make_floorplan(const Netlist& nl,
                                       double utilization = 0.70);

}  // namespace dfmres
