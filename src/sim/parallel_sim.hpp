#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/util/rng.hpp"

namespace dfmres {

/// 64-way bit-parallel logic simulator over the combinational view of a
/// netlist: one machine word per net, one pattern per bit lane.
class ParallelSimulator {
 public:
  ParallelSimulator(const Netlist& nl, const CombView& view);

  /// Assigns the 64 pattern values of a source net.
  void set_source(NetId net, std::uint64_t bits);
  /// Random values on every source net.
  void randomize_sources(Rng& rng);

  /// Propagates source values through the combinational logic.
  void run();

  [[nodiscard]] std::uint64_t value(NetId net) const {
    return values_[net.value()];
  }
  [[nodiscard]] std::span<const std::uint64_t> values() const {
    return values_;
  }
  [[nodiscard]] const CombView& view() const { return view_; }

  /// Evaluates one cell output from packed input words — shared helper
  /// for fault simulation and power estimation.
  [[nodiscard]] static std::uint64_t eval_cell(
      const CellSpec& cell, int output, std::span<const std::uint64_t> inputs);

 private:
  const Netlist& nl_;
  const CombView& view_;
  std::vector<std::uint64_t> values_;
};

}  // namespace dfmres
