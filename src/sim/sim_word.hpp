#pragma once

// SimWord: the lane word of the bit-parallel simulators, widened from a
// single std::uint64_t to W consecutive 64-lane groups (W ∈ {1, 4, 8}).
//
// Three families implement the same concept:
//   - PortableWord<W>: a plain array of W uint64 words. Every operation
//     is a fixed-count loop the compiler can unroll/auto-vectorize with
//     whatever ISA the base flags allow, so this is both the scalar
//     kernel (W = 1 reproduces the historical simulator bit for bit) and
//     the fallback on hardware without AVX.
//   - Avx2Word (W = 4, one __m256i): only defined in translation units
//     compiled with -mavx2 (src/atpg/fault_sim_kernel_avx2.cpp).
//   - Avx512Word (W = 8, one __m512i): only defined in translation units
//     compiled with -mavx512f (src/atpg/fault_sim_kernel_avx512.cpp).
//
// The ISA-specific types are deliberately invisible outside their own
// TUs (guarded by the compiler's __AVX2__/__AVX512F__ macros), so a
// kernel instantiated over them can never leak vector instructions into
// code that runs before the cpuid dispatch check (src/sim/simd_dispatch).
//
// Memory layout contract shared by every consumer: frames store the W
// words of one net slot contiguously ("slot-major", word g of slot n at
// index n*W + g), so a slot's full lane vector is one unaligned vector
// load. Loads/stores below are unaligned on purpose — frames live in
// std::vector<uint64_t> and modern cores do not penalize loadu on
// aligned addresses.

#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace dfmres {

/// Widest supported lane word, in 64-bit words: AVX-512 = 8 x 64 lanes.
inline constexpr int kMaxSimWords = 8;

template <int W>
struct PortableWord {
  static constexpr int kWords = W;
  std::uint64_t w[W];

  [[nodiscard]] static PortableWord load(const std::uint64_t* p) {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = p[i];
    return r;
  }
  void store(std::uint64_t* p) const {
    for (int i = 0; i < W; ++i) p[i] = w[i];
  }
  [[nodiscard]] static PortableWord zero() {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = 0;
    return r;
  }
  [[nodiscard]] static PortableWord ones() {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = ~std::uint64_t{0};
    return r;
  }

  [[nodiscard]] friend PortableWord operator&(PortableWord a, PortableWord b) {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }
  [[nodiscard]] friend PortableWord operator|(PortableWord a, PortableWord b) {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }
  [[nodiscard]] friend PortableWord operator^(PortableWord a, PortableWord b) {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
  }
  [[nodiscard]] friend PortableWord operator~(PortableWord a) {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = ~a.w[i];
    return r;
  }
  /// a & ~b in one op (maps to vpandn under AVX).
  [[nodiscard]] PortableWord andnot(PortableWord b) const {
    PortableWord r;
    for (int i = 0; i < W; ++i) r.w[i] = w[i] & ~b.w[i];
    return r;
  }

  [[nodiscard]] bool none() const {
    std::uint64_t acc = 0;
    for (int i = 0; i < W; ++i) acc |= w[i];
    return acc == 0;
  }
  [[nodiscard]] friend bool operator==(PortableWord a, PortableWord b) {
    std::uint64_t acc = 0;
    for (int i = 0; i < W; ++i) acc |= a.w[i] ^ b.w[i];
    return acc == 0;
  }
};

#if defined(__AVX2__)
/// 256-bit lane word: 4 x 64 lanes in one ymm register. Only visible in
/// -mavx2 translation units; reached through the runtime dispatch table.
struct Avx2Word {
  static constexpr int kWords = 4;
  __m256i v;

  [[nodiscard]] static Avx2Word load(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  [[nodiscard]] static Avx2Word zero() { return {_mm256_setzero_si256()}; }
  [[nodiscard]] static Avx2Word ones() {
    return {_mm256_set1_epi64x(-1)};
  }

  [[nodiscard]] friend Avx2Word operator&(Avx2Word a, Avx2Word b) {
    return {_mm256_and_si256(a.v, b.v)};
  }
  [[nodiscard]] friend Avx2Word operator|(Avx2Word a, Avx2Word b) {
    return {_mm256_or_si256(a.v, b.v)};
  }
  [[nodiscard]] friend Avx2Word operator^(Avx2Word a, Avx2Word b) {
    return {_mm256_xor_si256(a.v, b.v)};
  }
  [[nodiscard]] friend Avx2Word operator~(Avx2Word a) {
    return {_mm256_xor_si256(a.v, _mm256_set1_epi64x(-1))};
  }
  [[nodiscard]] Avx2Word andnot(Avx2Word b) const {
    // vpandn computes ~first & second, so swap the operands.
    return {_mm256_andnot_si256(b.v, v)};
  }

  [[nodiscard]] bool none() const { return _mm256_testz_si256(v, v) != 0; }
  [[nodiscard]] friend bool operator==(Avx2Word a, Avx2Word b) {
    const __m256i x = _mm256_xor_si256(a.v, b.v);
    return _mm256_testz_si256(x, x) != 0;
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// 512-bit lane word: 8 x 64 lanes in one zmm register. Only visible in
/// -mavx512f translation units; reached through the runtime dispatch
/// table.
struct Avx512Word {
  static constexpr int kWords = 8;
  __m512i v;

  [[nodiscard]] static Avx512Word load(const std::uint64_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint64_t* p) const { _mm512_storeu_si512(p, v); }
  [[nodiscard]] static Avx512Word zero() { return {_mm512_setzero_si512()}; }
  [[nodiscard]] static Avx512Word ones() {
    return {_mm512_set1_epi64(-1)};
  }

  [[nodiscard]] friend Avx512Word operator&(Avx512Word a, Avx512Word b) {
    return {_mm512_and_si512(a.v, b.v)};
  }
  [[nodiscard]] friend Avx512Word operator|(Avx512Word a, Avx512Word b) {
    return {_mm512_or_si512(a.v, b.v)};
  }
  [[nodiscard]] friend Avx512Word operator^(Avx512Word a, Avx512Word b) {
    return {_mm512_xor_si512(a.v, b.v)};
  }
  [[nodiscard]] friend Avx512Word operator~(Avx512Word a) {
    return {_mm512_xor_si512(a.v, _mm512_set1_epi64(-1))};
  }
  [[nodiscard]] Avx512Word andnot(Avx512Word b) const {
    return {_mm512_andnot_si512(b.v, v)};
  }

  [[nodiscard]] bool none() const {
    return _mm512_test_epi64_mask(v, v) == 0;
  }
  [[nodiscard]] friend bool operator==(Avx512Word a, Avx512Word b) {
    return _mm512_cmpneq_epi64_mask(a.v, b.v) == 0;
  }
};
#endif  // __AVX512F__

}  // namespace dfmres
