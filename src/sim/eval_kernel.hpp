#pragma once

// THE cell word-evaluation kernel, shared by every bit-parallel
// simulator in the tree (ParallelSimulator's good-machine wave, the
// FaultSimulator load/overlay/propagation kernels, the double-fault
// pair simulator). Header-only and templated on the lane word so one
// body serves the scalar uint64_t path and every WideWord width — the
// two hand-maintained copies that used to live in parallel_sim.cpp and
// fault_sim.cpp are gone.
//
// A Word is anything with &, |, ^, ~ and a WordTraits<Word>::ones();
// std::uint64_t qualifies via the trait specialization below, so legacy
// 64-lane callers keep their exact code shape (and codegen).

#include <cstddef>
#include <cstdint>

#include "src/library/cell.hpp"

namespace dfmres {

template <class Word>
struct WordTraits {
  [[nodiscard]] static Word ones() { return Word::ones(); }
  [[nodiscard]] static Word zero() { return Word::zero(); }
};

template <>
struct WordTraits<std::uint64_t> {
  [[nodiscard]] static std::uint64_t ones() { return ~std::uint64_t{0}; }
  [[nodiscard]] static std::uint64_t zero() { return 0; }
};

/// Evaluates one cell output from packed input lane words: sum over the
/// truth table's minterms of the AND of each input (or its complement).
/// Bit-exact across widths — lane L of the result depends only on lane L
/// of each input, so a W-wide evaluation equals W independent 64-lane
/// evaluations laid side by side.
template <class Word>
[[nodiscard]] inline Word eval_cell_word(const CellSpec& cell, int output,
                                         const Word* inputs,
                                         std::size_t num_inputs) {
  const std::uint64_t tt = cell.truth(output);
  const auto num_minterms = std::uint32_t{1} << num_inputs;
  Word out = WordTraits<Word>::zero();
  for (std::uint32_t m = 0; m < num_minterms; ++m) {
    if (((tt >> m) & 1u) == 0) continue;
    Word term = WordTraits<Word>::ones();
    for (std::uint32_t i = 0; i < num_inputs; ++i) {
      term = term & (((m >> i) & 1u) ? inputs[i] : ~inputs[i]);
    }
    out = out | term;
  }
  return out;
}

}  // namespace dfmres
