#include "src/sim/parallel_sim.hpp"

#include <cassert>

namespace dfmres {

ParallelSimulator::ParallelSimulator(const Netlist& nl, const CombView& view)
    : nl_(nl), view_(view), values_(view.net_slots, 0) {}

void ParallelSimulator::set_source(NetId net, std::uint64_t bits) {
  values_[net.value()] = bits;
}

void ParallelSimulator::randomize_sources(Rng& rng) {
  for (NetId src : view_.sources) values_[src.value()] = rng.next();
}

std::uint64_t ParallelSimulator::eval_cell(
    const CellSpec& cell, int output, std::span<const std::uint64_t> inputs) {
  assert(inputs.size() == cell.num_inputs);
  const std::uint64_t tt = cell.truth(output);
  const auto num_minterms = std::uint32_t{1} << cell.num_inputs;
  std::uint64_t out = 0;
  for (std::uint32_t m = 0; m < num_minterms; ++m) {
    if (((tt >> m) & 1u) == 0) continue;
    std::uint64_t term = ~std::uint64_t{0};
    for (std::uint32_t i = 0; i < cell.num_inputs; ++i) {
      term &= ((m >> i) & 1u) ? inputs[i] : ~inputs[i];
    }
    out |= term;
  }
  return out;
}

void ParallelSimulator::run() {
  std::uint64_t ins[kMaxCellInputs];
  for (GateId g : view_.order) {
    const auto& gate = nl_.gate(g);
    const CellSpec& cell = nl_.library().cell(gate.cell);
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      ins[i] = values_[gate.fanin[i].value()];
    }
    for (int k = 0; k < cell.num_outputs; ++k) {
      values_[gate.outputs[k].value()] =
          eval_cell(cell, k, {ins, gate.fanin.size()});
    }
  }
}

}  // namespace dfmres
