#include "src/sim/parallel_sim.hpp"

#include <cassert>

#include "src/sim/eval_kernel.hpp"

namespace dfmres {

ParallelSimulator::ParallelSimulator(const Netlist& nl, const CombView& view)
    : nl_(nl), view_(view), values_(view.net_slots, 0) {}

void ParallelSimulator::set_source(NetId net, std::uint64_t bits) {
  values_[net.value()] = bits;
}

void ParallelSimulator::randomize_sources(Rng& rng) {
  for (NetId src : view_.sources) values_[src.value()] = rng.next();
}

std::uint64_t ParallelSimulator::eval_cell(
    const CellSpec& cell, int output, std::span<const std::uint64_t> inputs) {
  assert(inputs.size() == cell.num_inputs);
  // Thin wrapper over the shared width-generic kernel (eval_kernel.hpp):
  // uint64_t is the W = 1 lane word.
  return eval_cell_word<std::uint64_t>(cell, output, inputs.data(),
                                       inputs.size());
}

void ParallelSimulator::run() {
  std::uint64_t ins[kMaxCellInputs];
  for (GateId g : view_.order) {
    const auto& gate = nl_.gate(g);
    const CellSpec& cell = nl_.library().cell(gate.cell);
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      ins[i] = values_[gate.fanin[i].value()];
    }
    for (int k = 0; k < cell.num_outputs; ++k) {
      values_[gate.outputs[k].value()] =
          eval_cell(cell, k, {ins, gate.fanin.size()});
    }
  }
}

}  // namespace dfmres
