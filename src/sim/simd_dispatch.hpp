#pragma once

// Runtime selection of the fault-simulation lane-word kernel: one binary
// carries the portable W ∈ {1, 4, 8} kernels plus AVX2/AVX-512
// specializations compiled in their own -m-flagged translation units,
// and picks at run time based on cpuid (or an explicit --simd= request).
//
// The selected mode changes ONLY throughput. Results are bit-identical
// per 64-lane group across every mode — the W-sweep identity suite
// (tests/simd_kernel_test) and the overlay/warm-start fingerprints pin
// that contract.

#include <optional>
#include <string_view>

namespace dfmres {

enum class SimdMode {
  kAuto = 0,   ///< widest kernel this CPU supports (the default)
  kScalar,     ///< PortableWord<1>: the historical 64-lane kernel
  kPortable4,  ///< PortableWord<4>: 256 lanes, auto-vectorized
  kPortable8,  ///< PortableWord<8>: 512 lanes, auto-vectorized
  kAvx2,       ///< Avx2Word: 256 lanes of vpand/vpor intrinsics
  kAvx512,     ///< Avx512Word: 512 lanes of zmm intrinsics
};

/// Flag spelling used by --simd= and the DFMRES_SIMD environment
/// variable: auto | scalar | portable4 | portable8 | avx2 | avx512.
[[nodiscard]] std::optional<SimdMode> parse_simd_mode(std::string_view text);
[[nodiscard]] const char* simd_mode_name(SimdMode mode);

/// CPUID feature checks (false on non-x86 builds).
[[nodiscard]] bool cpu_supports_avx2();
[[nodiscard]] bool cpu_supports_avx512();

/// Maps a requested mode to one this build + CPU can actually run:
/// kAuto picks the widest available ISA kernel (avx512 → avx2 →
/// portable4); an explicitly requested ISA kernel that is unsupported
/// (CPU lacks it, or the compiler could not build it) degrades to the
/// portable kernel of the same width. Never returns kAuto.
[[nodiscard]] SimdMode resolve_simd_mode(SimdMode requested);

/// Process-wide kernel request. Defaults to the DFMRES_SIMD environment
/// variable when set (unparseable values fall back to auto), else auto.
/// Simulators read this at rebind time, so a mode set between runs
/// applies to the next run; never change it while a run is in flight.
void set_global_simd_mode(SimdMode mode);
[[nodiscard]] SimdMode global_simd_mode();

/// Lane-group width (in 64-bit words) of a resolved mode.
[[nodiscard]] int simd_mode_words(SimdMode resolved);

}  // namespace dfmres
