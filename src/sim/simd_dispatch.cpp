#include "src/sim/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>

namespace dfmres {

namespace {

// The avx kernels exist iff their translation units could be compiled
// with the ISA flags; the kernel registry (atpg/fault_sim_kernel) tells
// the dispatcher through these weak-style hooks. Defined in
// fault_sim_kernel_{avx2,avx512}.cpp as constant functions so the sim
// library does not link against the atpg kernels directly.
}  // namespace

// Set by the kernel TUs' registration objects (see
// src/atpg/fault_sim_kernel.cpp); false until the atpg library is
// linked in, which only matters for binaries that never simulate.
std::atomic<bool> g_avx2_kernel_compiled{false};
std::atomic<bool> g_avx512_kernel_compiled{false};

std::optional<SimdMode> parse_simd_mode(std::string_view text) {
  if (text == "auto") return SimdMode::kAuto;
  if (text == "scalar") return SimdMode::kScalar;
  if (text == "portable4") return SimdMode::kPortable4;
  if (text == "portable8") return SimdMode::kPortable8;
  if (text == "avx2") return SimdMode::kAvx2;
  if (text == "avx512") return SimdMode::kAvx512;
  return std::nullopt;
}

const char* simd_mode_name(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto: return "auto";
    case SimdMode::kScalar: return "scalar";
    case SimdMode::kPortable4: return "portable4";
    case SimdMode::kPortable8: return "portable8";
    case SimdMode::kAvx2: return "avx2";
    case SimdMode::kAvx512: return "avx512";
  }
  return "unknown";
}

bool cpu_supports_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

SimdMode resolve_simd_mode(SimdMode requested) {
  const bool avx2_ok =
      cpu_supports_avx2() && g_avx2_kernel_compiled.load(std::memory_order_relaxed);
  const bool avx512_ok = cpu_supports_avx512() &&
                         g_avx512_kernel_compiled.load(std::memory_order_relaxed);
  switch (requested) {
    case SimdMode::kAuto:
      if (avx512_ok) return SimdMode::kAvx512;
      if (avx2_ok) return SimdMode::kAvx2;
      return SimdMode::kPortable4;
    case SimdMode::kAvx2:
      return avx2_ok ? SimdMode::kAvx2 : SimdMode::kPortable4;
    case SimdMode::kAvx512:
      return avx512_ok ? SimdMode::kAvx512 : SimdMode::kPortable8;
    default:
      return requested;
  }
}

namespace {

SimdMode initial_mode() {
  if (const char* env = std::getenv("DFMRES_SIMD")) {
    if (const auto mode = parse_simd_mode(env)) return *mode;
  }
  return SimdMode::kAuto;
}

std::atomic<SimdMode>& global_mode() {
  static std::atomic<SimdMode> mode{initial_mode()};
  return mode;
}

}  // namespace

void set_global_simd_mode(SimdMode mode) {
  global_mode().store(mode, std::memory_order_relaxed);
}

SimdMode global_simd_mode() {
  return global_mode().load(std::memory_order_relaxed);
}

int simd_mode_words(SimdMode resolved) {
  switch (resolved) {
    case SimdMode::kScalar: return 1;
    case SimdMode::kPortable4:
    case SimdMode::kAvx2: return 4;
    case SimdMode::kPortable8:
    case SimdMode::kAvx512: return 8;
    case SimdMode::kAuto: return simd_mode_words(resolve_simd_mode(resolved));
  }
  return 1;
}

}  // namespace dfmres
