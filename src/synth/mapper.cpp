#include "src/synth/mapper.hpp"

#include "src/netlist/extract.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <set>

#include "src/util/logging.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

namespace {

constexpr double kInf = 1e18;

/// Mapping-time delay estimate: intrinsic plus drive under a nominal load.
double cell_delay(const CellSpec& c) {
  return c.intrinsic_delay + c.drive_res * 0.02;
}

std::uint32_t table_key(int size, std::uint16_t tt) {
  return (static_cast<std::uint32_t>(size) << 16) | tt;
}

}  // namespace

MatchTable::MatchTable(const Library& lib, const std::vector<bool>& banned) {
  const auto is_banned = [&](std::uint32_t idx) {
    return idx < banned.size() && banned[idx];
  };
  double best_inv_area = kInf;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;  // (key, cell)

  for (std::uint32_t idx = 0; idx < lib.num_cells(); ++idx) {
    const CellId id{idx};
    const CellSpec& c = lib.cell(id);
    if (c.sequential || c.num_outputs != 1 || is_banned(idx)) continue;
    if (c.num_inputs == 1) {
      if (c.truth(0) == 0x1 && c.area_um2 < best_inv_area) {
        best_inv_area = c.area_um2;
        inverter_ = id;
      }
      continue;  // 1-input cells are phase converters, not cut matches
    }
    if (c.num_inputs > kMaxCutSize) continue;

    const int n = c.num_inputs;
    const std::uint16_t base = tt4::pad(static_cast<std::uint16_t>(c.truth(0)), n);
    std::array<int, 4> p{0, 1, 2, 3};
    std::vector<int> idxs(static_cast<std::size_t>(n));
    std::iota(idxs.begin(), idxs.end(), 0);
    do {
      for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = idxs[static_cast<std::size_t>(i)];
      std::array<std::uint8_t, kMaxCutSize> inv_p{};
      for (int i = 0; i < n; ++i) inv_p[static_cast<std::size_t>(idxs[static_cast<std::size_t>(i)])] = static_cast<std::uint8_t>(i);
      for (unsigned flip = 0; flip < (1u << n); ++flip) {
        // variant(x) = cell(y ^ flip) with y_{p[i]} = x_i, i.e. cell pin j
        // reads cut leaf inv_p[j], complemented iff bit j of flip.
        const std::uint16_t c2 = tt4::flip_inputs(base, n, flip);
        const std::uint16_t variant = tt4::permute(c2, n, p);
        bool full_support = true;
        for (int v = 0; v < n; ++v) {
          if (!tt4::depends_on(variant, v)) full_support = false;
        }
        if (!full_support) continue;  // a smaller cut covers this function
        const std::uint32_t key = table_key(n, variant);
        if (!seen.emplace(key, idx).second) continue;
        MatchEntry entry;
        entry.cell = id;
        entry.num_inputs = static_cast<std::uint8_t>(n);
        entry.neg_mask = static_cast<std::uint8_t>(flip);
        for (int j = 0; j < n; ++j) entry.leaf_of_pin[static_cast<std::size_t>(j)] = inv_p[static_cast<std::size_t>(j)];
        table_[key].push_back(entry);
      }
    } while (std::next_permutation(idxs.begin(), idxs.end()));
  }
}

const std::vector<MatchEntry>* MatchTable::find(int cut_size,
                                                std::uint16_t tt) const {
  auto it = table_.find(table_key(cut_size, tt));
  return it == table_.end() ? nullptr : &it->second;
}

namespace {

struct PhaseBest {
  double arrival = kInf;
  double area_flow = kInf;
  int cut = -1;
  const MatchEntry* match = nullptr;
  bool via_inv = false;

  [[nodiscard]] bool valid() const { return arrival < kInf / 2; }
  /// Combined objective: area-driven with a delay term, the balance a
  /// commercial area/timing mapper strikes (and what keeps resynthesized
  /// regions inside the fixed die).
  [[nodiscard]] double cost(double delay_weight) const {
    return area_flow + delay_weight * arrival;
  }
};

void take_better(PhaseBest& cur, const PhaseBest& cand, double delay_weight) {
  if (cand.cost(delay_weight) < cur.cost(delay_weight)) cur = cand;
}

/// Builds a constant-valued net in `dst` from reference net `x` using any
/// available (non-banned) 2+-input cell fed from {x, ~x}; real libraries
/// use tie cells, ours synthesizes the constant the way mapped logic
/// would. Returns invalid if no cell works.
NetId materialize_constant(Netlist& dst, bool value, NetId x, NetId x_inv,
                           const std::vector<bool>& banned) {
  const Library& lib = dst.library();
  for (std::uint32_t idx = 0; idx < lib.num_cells(); ++idx) {
    if (idx < banned.size() && banned[idx]) continue;
    const CellSpec& c = lib.cell(CellId{idx});
    if (c.sequential || c.num_outputs != 1 || c.num_inputs < 2) continue;
    const int n = c.num_inputs;
    for (unsigned assign = 0; assign < (1u << n); ++assign) {
      // Pin j gets ~x when bit j set. Output over x in {0,1}:
      unsigned m_x0 = 0, m_x1 = 0;
      for (int j = 0; j < n; ++j) {
        const bool pin_is_inv = (assign >> j) & 1u;
        if (!pin_is_inv) m_x1 |= 1u << j;  // pin = x
        if (pin_is_inv) m_x0 |= 1u << j;   // pin = ~x, high when x=0
      }
      const bool v0 = c.eval(0, m_x0);
      const bool v1 = c.eval(0, m_x1);
      if (v0 == value && v1 == value) {
        std::vector<NetId> fanins;
        for (int j = 0; j < n; ++j) {
          fanins.push_back(((assign >> j) & 1u) ? x_inv : x);
        }
        const GateId g = dst.add_gate(CellId{idx}, fanins);
        return dst.gate(g).outputs[0];
      }
    }
  }
  return NetId::invalid();
}

/// Load-driven drive selection: real flows size inverters to their
/// fanout and buffer heavily loaded nets. High-drive cells carry extra
/// finger-contact DFM sites (statically undetectable), so this pass is
/// where the paper's tension between performance cells and testable
/// cells enters the design.
void size_drives(Netlist& dst, const std::vector<bool>& banned) {
  const Library& lib = dst.library();
  const auto pick = [&](std::initializer_list<const char*> names)
      -> std::optional<CellId> {
    for (const char* n : names) {
      if (auto id = lib.find(n)) {
        if (id->value() >= banned.size() || !banned[id->value()]) return id;
      }
    }
    return std::nullopt;
  };

  // Inverters sized by fanout.
  for (GateId g : dst.live_gates()) {
    const CellSpec& c = dst.cell_of(g);
    if (c.sequential || c.num_inputs != 1 || c.truth(0) != 0x1) continue;
    const std::size_t fanout = dst.net(dst.gate(g).outputs[0]).sinks.size();
    std::optional<CellId> want;
    if (fanout >= 12) {
      want = pick({"INVX8", "INVX4", "INVX2", "INVX1"});
    } else if (fanout >= 6) {
      want = pick({"INVX4", "INVX2", "INVX1"});
    } else if (fanout >= 3) {
      want = pick({"INVX2", "INVX1"});
    }
    if (want && *want != dst.gate(g).cell) dst.retype_gate(g, *want);
  }

  // Buffers split heavily loaded nets whose driver cannot be upsized.
  for (NetId net : dst.live_nets()) {
    const auto& nn = dst.net(net);
    if (nn.has_gate_driver()) {
      const CellSpec& driver = dst.cell_of(nn.driver_gate);
      if (driver.num_inputs == 1 && !driver.sequential) continue;  // sized above
    }
    const std::vector<PinRef> sinks = nn.sinks;  // snapshot
    if (sinks.size() < 6) continue;
    const auto buf = sinks.size() >= 12 ? pick({"BUFX4", "BUFX2"})
                                        : pick({"BUFX2", "BUFX4"});
    if (!buf) continue;
    const NetId fanin[] = {net};
    const GateId g = dst.add_gate(*buf, fanin);
    const NetId bout = dst.gate(g).outputs[0];
    for (std::size_t i = sinks.size() / 2; i < sinks.size(); ++i) {
      dst.rewire_fanin(sinks[i].gate, sinks[i].pin, bout);
    }
  }
}

}  // namespace

Expected<Netlist> technology_map(const Netlist& src,
                                 std::shared_ptr<const Library> target,
                                 const MapOptions& options) {
  TraceSpan span("synth.map", "synth");
  if (span.active()) {
    span.arg("gates", static_cast<std::uint64_t>(src.num_live_gates()));
  }
  const Library& slib = src.library();
  const Library& tlib = *target;
  const MatchTable table(tlib, options.banned);
  // Infeasibility under the allowed cell subset is a normal search
  // outcome for the resynthesis ladder, not an error in the input; it is
  // distinguished with kUnsatisfiable so callers can branch on code().
  const auto unsat = [&](const char* what) {
    return make_status(StatusCode::kUnsatisfiable,
                       "technology_map: allowed cell subset of library '%s' "
                       "cannot implement '%s' (%s)",
                       tlib.name().c_str(), src.name().c_str(), what);
  };

  // ---- classify gates: fixed (pass-through) vs mapped logic ----
  // Pass-through cell per gate slot; invalid = mapped logic.
  std::vector<CellId> fixed_cell(src.gate_capacity(), CellId::invalid());
  const auto live = src.live_gates();
  for (GateId g : live) {
    const CellId sc = src.gate(g).cell;
    if (auto it = options.fixed_map.find(sc.value());
        it != options.fixed_map.end()) {
      fixed_cell[g.value()] = it->second;
    } else if (slib.cell(sc).sequential) {
      const auto same = tlib.find(slib.cell(sc).name);
      if (!same) {
        return make_status(StatusCode::kFailedPrecondition,
                           "technology_map: sequential cell '%s' has no "
                           "mapping in target library '%s'",
                           slib.cell(sc).name.c_str(), tlib.name().c_str());
      }
      fixed_cell[g.value()] = *same;
    }
  }
  std::vector<GateId> fixed_gates;
  std::vector<bool> is_fixed_slot(src.gate_capacity(), false);
  for (GateId g : live) {
    if (fixed_cell[g.value()].valid()) {
      fixed_gates.push_back(g);
      is_fixed_slot[g.value()] = true;
    }
  }

  // Topological order over non-fixed gates (fixed outputs are sources).
  std::vector<GateId> order;
  {
    std::vector<std::uint32_t> pending(src.gate_capacity(), 0);
    std::vector<GateId> ready;
    std::size_t num_logic = 0;
    for (GateId g : live) {
      if (is_fixed_slot[g.value()]) continue;
      ++num_logic;
      std::uint32_t unresolved = 0;
      for (NetId in : src.gate(g).fanin) {
        const auto& net = src.net(in);
        if (net.has_gate_driver() && !is_fixed_slot[net.driver_gate.value()]) {
          ++unresolved;
        }
      }
      pending[g.value()] = unresolved;
      if (unresolved == 0) ready.push_back(g);
    }
    while (!ready.empty()) {
      const GateId g = ready.back();
      ready.pop_back();
      order.push_back(g);
      for (NetId out : src.gate(g).outputs) {
        for (const PinRef& sink : src.net(out).sinks) {
          if (is_fixed_slot[sink.gate.value()]) continue;
          if (--pending[sink.gate.value()] == 0) ready.push_back(sink.gate);
        }
      }
    }
    if (order.size() != num_logic) {
      return make_status(StatusCode::kInvalidArgument,
                         "technology_map: cycle among mapped logic in '%s' "
                         "(%zu of %zu gates ordered)",
                         src.name().c_str(), order.size(), num_logic);
    }
  }

  // ---- build the AIG ----
  Aig raw;
  std::vector<Aig::Lit> lit_of(src.net_capacity(), Aig::kFalse);
  std::vector<bool> lit_set(src.net_capacity(), false);
  std::vector<NetId> source_nets;  // AIG input ordinal -> src net
  const auto add_source = [&](NetId n) {
    lit_of[n.value()] = Aig::make(raw.add_input(), false);
    lit_set[n.value()] = true;
    source_nets.push_back(n);
  };
  for (NetId pi : src.primary_inputs()) add_source(pi);
  for (GateId g : fixed_gates) {
    for (NetId out : src.gate(g).outputs) add_source(out);
  }
  for (GateId g : order) {
    const auto& gate = src.gate(g);
    const CellSpec& cell = slib.cell(gate.cell);
    std::vector<Aig::Lit> ins;
    ins.reserve(gate.fanin.size());
    for (NetId in : gate.fanin) {
      assert(lit_set[in.value()]);
      ins.push_back(lit_of[in.value()]);
    }
    for (int k = 0; k < cell.num_outputs; ++k) {
      lit_of[gate.outputs[static_cast<std::size_t>(k)].value()] =
          raw.build_function(cell.truth(k), ins, cell.num_inputs);
      lit_set[gate.outputs[static_cast<std::size_t>(k)].value()] = true;
    }
  }
  // Observed points: src POs, then fixed-gate fanins (in gate/pin order).
  std::vector<std::pair<GateId, int>> fixed_observes;
  for (NetId po : src.primary_outputs()) {
    assert(lit_set[po.value()]);
    raw.add_po(lit_of[po.value()]);
  }
  for (GateId g : fixed_gates) {
    const auto& gate = src.gate(g);
    for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
      assert(lit_set[gate.fanin[pin].value()]);
      raw.add_po(lit_of[gate.fanin[pin].value()]);
      fixed_observes.emplace_back(g, static_cast<int>(pin));
    }
  }

  const Aig aig = balance(raw);

  // ---- covering DP over (node, phase) ----
  const CutSet cuts(aig);
  const auto refs = aig.reference_counts();
  std::vector<std::array<PhaseBest, 2>> best(aig.num_nodes());

  double inv_delay = kInf, inv_area = kInf;
  if (table.inverter()) {
    const CellSpec& inv = tlib.cell(*table.inverter());
    inv_delay = cell_delay(inv);
    inv_area = inv.area_um2;
  }
  const double delay_weight = options.delay_weight;

  for (std::uint32_t n = 1; n < aig.num_nodes(); ++n) {
    auto& pb = best[n];
    if (aig.is_input(n)) {
      pb[0] = {0.0, 0.0, -1, nullptr, false};
    } else {
      for (const int phase : {0, 1}) {
        const auto& node_cuts = cuts.cuts(n);
        for (std::size_t ci = 0; ci < node_cuts.size(); ++ci) {
          const Cut& cut = node_cuts[ci];
          if (cut.contains(n)) continue;  // trivial self-cut
          const std::uint16_t want =
              phase ? static_cast<std::uint16_t>(~cut.tt) : cut.tt;
          const auto* entries = table.find(cut.size, want);
          if (!entries) continue;
          for (const MatchEntry& e : *entries) {
            double arrival = 0.0, af_sum = 0.0;
            bool feasible = true;
            for (int j = 0; j < e.num_inputs; ++j) {
              const std::uint32_t leaf = cut.leaves[e.leaf_of_pin[static_cast<std::size_t>(j)]];
              const int ph = (e.neg_mask >> j) & 1;
              const PhaseBest& lb = best[leaf][static_cast<std::size_t>(ph)];
              if (!lb.valid()) {
                feasible = false;
                break;
              }
              arrival = std::max(arrival, lb.arrival);
              af_sum += lb.area_flow;
            }
            if (!feasible) continue;
            const CellSpec& cell = tlib.cell(e.cell);
            PhaseBest cand;
            cand.arrival = arrival + cell_delay(cell);
            cand.area_flow = (cell.area_um2 + af_sum) /
                             std::max<std::uint32_t>(1, refs[n]);
            cand.cut = static_cast<int>(ci);
            cand.match = &e;
            take_better(pb[static_cast<std::size_t>(phase)], cand,
                        delay_weight);
          }
        }
      }
    }
    // Cross-phase relaxation through an inverter (run twice so either
    // direction settles).
    if (inv_delay < kInf) {
      for (int rep = 0; rep < 2; ++rep) {
        for (const int phase : {0, 1}) {
          const PhaseBest& other = pb[static_cast<std::size_t>(phase ^ 1)];
          if (!other.valid()) continue;
          PhaseBest cand;
          cand.arrival = other.arrival + inv_delay;
          cand.area_flow = other.area_flow + inv_area;
          cand.via_inv = true;
          take_better(pb[static_cast<std::size_t>(phase)], cand,
                      delay_weight);
        }
      }
    }
  }

  // ---- feasibility check over everything the POs require ----
  {
    std::vector<std::array<bool, 2>> visited(aig.num_nodes(), {false, false});
    std::vector<std::pair<std::uint32_t, int>> stack;
    for (Aig::Lit po : aig.pos()) {
      const std::uint32_t node = Aig::node_of(po);
      if (node == 0) continue;
      stack.emplace_back(node, Aig::compl_of(po) ? 1 : 0);
    }
    while (!stack.empty()) {
      auto [node, phase] = stack.back();
      stack.pop_back();
      if (visited[node][static_cast<std::size_t>(phase)]) continue;
      visited[node][static_cast<std::size_t>(phase)] = true;
      const PhaseBest& pb = best[node][static_cast<std::size_t>(phase)];
      if (aig.is_input(node)) {
        if (phase == 1 && inv_delay >= kInf) {
          return unsat("no inverter available for a negated input");
        }
        continue;
      }
      if (!pb.valid()) return unsat("an AIG node has no cover");
      if (pb.via_inv) {
        stack.emplace_back(node, phase ^ 1);
      } else {
        const Cut& cut = cuts.cuts(node)[static_cast<std::size_t>(pb.cut)];
        for (int j = 0; j < pb.match->num_inputs; ++j) {
          stack.emplace_back(cut.leaves[pb.match->leaf_of_pin[static_cast<std::size_t>(j)]],
                             (pb.match->neg_mask >> j) & 1);
        }
      }
    }
  }

  // ---- emission ----
  Netlist dst(target, src.name());
  const auto input_ordinals = [&] {
    std::vector<std::uint32_t> nodes;
    for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
      if (aig.is_input(n)) nodes.push_back(n);
    }
    return nodes;
  }();
  assert(input_ordinals.size() == source_nets.size());

  std::vector<std::array<NetId, 2>> realized(
      aig.num_nodes(), {NetId::invalid(), NetId::invalid()});
  // Interface nets: PIs then fixed-gate outputs.
  for (std::size_t i = 0; i < source_nets.size(); ++i) {
    const bool is_pi = i < src.primary_inputs().size();
    const NetId net = is_pi ? dst.add_primary_input(src.input_name(i))
                            : dst.add_net();
    realized[input_ordinals[i]][0] = net;
  }

  const auto add_inverter_gate = [&](NetId in) {
    const NetId fanin[] = {in};
    const GateId g = dst.add_gate(*table.inverter(), fanin);
    return dst.gate(g).outputs[0];
  };

  std::function<NetId(std::uint32_t, int)> realize =
      [&](std::uint32_t node, int phase) -> NetId {
    NetId& slot = realized[node][static_cast<std::size_t>(phase)];
    if (slot.valid()) return slot;
    if (aig.is_input(node)) {
      assert(phase == 1);
      slot = add_inverter_gate(realized[node][0]);
      return slot;
    }
    const PhaseBest& pb = best[node][static_cast<std::size_t>(phase)];
    assert(pb.valid());
    if (pb.via_inv) {
      slot = add_inverter_gate(realize(node, phase ^ 1));
      return slot;
    }
    const Cut& cut = cuts.cuts(node)[static_cast<std::size_t>(pb.cut)];
    std::vector<NetId> fanins;
    fanins.reserve(pb.match->num_inputs);
    for (int j = 0; j < pb.match->num_inputs; ++j) {
      const std::uint32_t leaf = cut.leaves[pb.match->leaf_of_pin[static_cast<std::size_t>(j)]];
      fanins.push_back(realize(leaf, (pb.match->neg_mask >> j) & 1));
    }
    const GateId g = dst.add_gate(pb.match->cell, fanins);
    slot = dst.gate(g).outputs[0];
    return slot;
  };

  // Constants (rare: logic that collapsed to 0/1) are synthesized from
  // the first source net.
  NetId const_net[2] = {NetId::invalid(), NetId::invalid()};
  const auto constant = [&](bool value) -> NetId {
    NetId& slot = const_net[value ? 1 : 0];
    if (slot.valid()) return slot;
    if (source_nets.empty() || !table.inverter()) return NetId::invalid();
    const NetId x = realized[input_ordinals[0]][0];
    const NetId xn = realize(input_ordinals[0], 1);
    slot = materialize_constant(dst, value, x, xn, options.banned);
    return slot;
  };

  const auto net_for_lit = [&](Aig::Lit l) -> NetId {
    if (Aig::node_of(l) == 0) return constant(Aig::compl_of(l));
    return realize(Aig::node_of(l), Aig::compl_of(l) ? 1 : 0);
  };

  // Primary outputs.
  const std::size_t num_src_pos = src.primary_outputs().size();
  for (std::size_t i = 0; i < num_src_pos; ++i) {
    const NetId net = net_for_lit(aig.pos()[i]);
    if (!net.valid()) return unsat("unmaterializable constant output");
    dst.mark_primary_output(net);
  }
  // Fixed gates.
  for (std::size_t fo = 0, gi = 0; gi < fixed_gates.size(); ++gi) {
    const GateId g = fixed_gates[gi];
    const auto& gate = src.gate(g);
    std::vector<NetId> fanins;
    for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin, ++fo) {
      const NetId net = net_for_lit(aig.pos()[num_src_pos + fo]);
      if (!net.valid()) return unsat("unmaterializable constant fanin");
      fanins.push_back(net);
    }
    std::vector<NetId> outputs;
    for (NetId out : gate.outputs) {
      // Position of this output in source_nets gives its interface net.
      const auto it =
          std::find(source_nets.begin(), source_nets.end(), out);
      assert(it != source_nets.end());
      const std::size_t ordinal =
          static_cast<std::size_t>(it - source_nets.begin());
      outputs.push_back(realized[input_ordinals[ordinal]][0]);
    }
    dst.add_gate_driving(fixed_cell[g.value()], fanins, outputs);
  }

  size_drives(dst, options.banned);
  sweep_dangling_nets(dst);
  assert(dst.validate().empty());
  return dst;
}

}  // namespace dfmres
