#include "src/synth/aig.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace dfmres {

Aig::Aig() {
  nodes_.push_back({});  // node 0: constant false
  kind_.push_back(NodeKind::Const);
}

std::uint32_t Aig::add_input() {
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({});
  kind_.push_back(NodeKind::Input);
  ++num_inputs_;
  return node;
}

Aig::Lit Aig::and2(Lit a, Lit b) {
  if (a > b) std::swap(a, b);
  // Constant and trivial folding.
  if (a == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (a == b) return a;
  if (a == neg(b)) return kFalse;
  const std::uint64_t key = (std::uint64_t{a} << 32) | b;
  if (auto it = strash_.find(key); it != strash_.end()) {
    return make(it->second, false);
  }
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({a, b});
  kind_.push_back(NodeKind::And);
  strash_.emplace(key, node);
  return make(node, false);
}

Aig::Lit Aig::xor2(Lit a, Lit b) {
  // a ^ b = !( !(a & !b) & !(!a & b) )
  return neg(and2(neg(and2(a, neg(b))), neg(and2(neg(a), b))));
}

Aig::Lit Aig::mux(Lit sel, Lit t, Lit e) {
  return neg(and2(neg(and2(sel, t)), neg(and2(neg(sel), e))));
}

Aig::Lit Aig::build_function(std::uint64_t tt, std::span<const Lit> inputs,
                             int num_vars) {
  assert(num_vars >= 0 && num_vars <= 6);
  assert(inputs.size() >= static_cast<std::size_t>(num_vars));
  const std::uint64_t mask =
      num_vars == 6 ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << (1u << num_vars)) - 1);
  tt &= mask;
  if (tt == 0) return kFalse;
  if (tt == mask) return kTrue;
  assert(num_vars > 0);
  // Shannon on the top variable.
  const int var = num_vars - 1;
  const std::uint32_t half = 1u << var;
  const std::uint64_t lo_mask = (std::uint64_t{1} << half) - 1;
  const std::uint64_t tt0 = tt & lo_mask;
  const std::uint64_t tt1 = (tt >> half) & lo_mask;
  if (tt0 == tt1) return build_function(tt0, inputs, var);
  if (tt1 == (tt0 ^ lo_mask)) {
    // Complementary cofactors: f = var XOR f0, sharing one subtree
    // (essential for parity/adder logic to map onto XOR cells).
    return xor2(inputs[var], build_function(tt0, inputs, var));
  }
  const Lit f0 = build_function(tt0, inputs, var);
  const Lit f1 = build_function(tt1, inputs, var);
  return mux(inputs[var], f1, f0);
}

std::uint32_t Aig::add_po(Lit l) {
  pos_.push_back(l);
  return static_cast<std::uint32_t>(pos_.size() - 1);
}

std::vector<std::uint32_t> Aig::reference_counts() const {
  std::vector<std::uint32_t> refs(nodes_.size(), 0);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (!is_and(n)) continue;
    ++refs[node_of(nodes_[n].f0)];
    ++refs[node_of(nodes_[n].f1)];
  }
  for (Lit po : pos_) ++refs[node_of(po)];
  return refs;
}

std::vector<std::uint32_t> Aig::levels() const {
  std::vector<std::uint32_t> level(nodes_.size(), 0);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (!is_and(n)) continue;
    level[n] = 1 + std::max(level[node_of(nodes_[n].f0)],
                            level[node_of(nodes_[n].f1)]);
  }
  return level;
}

std::vector<std::uint64_t> Aig::simulate(
    std::span<const std::uint64_t> input_words) const {
  assert(input_words.size() == num_inputs_);
  std::vector<std::uint64_t> value(nodes_.size(), 0);
  std::size_t next_input = 0;
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    switch (kind_[n]) {
      case NodeKind::Const:
        value[n] = 0;
        break;
      case NodeKind::Input:
        value[n] = input_words[next_input++];
        break;
      case NodeKind::And: {
        const Lit a = nodes_[n].f0, b = nodes_[n].f1;
        const std::uint64_t va =
            compl_of(a) ? ~value[node_of(a)] : value[node_of(a)];
        const std::uint64_t vb =
            compl_of(b) ? ~value[node_of(b)] : value[node_of(b)];
        value[n] = va & vb;
        break;
      }
    }
  }
  return value;
}

Aig balance(const Aig& src) {
  Aig dst;
  // old node -> new literal (positive phase of the old node).
  std::vector<Aig::Lit> lit_map(src.num_nodes(), Aig::kFalse);
  std::vector<bool> mapped(src.num_nodes(), false);
  lit_map[0] = Aig::kFalse;
  mapped[0] = true;
  for (std::uint32_t n = 0; n < src.num_nodes(); ++n) {
    if (src.is_input(n)) {
      lit_map[n] = Aig::make(dst.add_input(), false);
      mapped[n] = true;
    }
  }

  // Incremental level tracking for dst nodes (and2 may or may not create
  // a node, so sync after every call).
  std::vector<std::uint32_t> dlevel;
  auto sync_levels = [&] {
    while (dlevel.size() < dst.num_nodes()) {
      const auto n = static_cast<std::uint32_t>(dlevel.size());
      dlevel.push_back(dst.is_and(n)
                           ? 1 + std::max(dlevel[Aig::node_of(dst.fanin0(n))],
                                          dlevel[Aig::node_of(dst.fanin1(n))])
                           : 0);
    }
  };
  sync_levels();
  auto dst_and = [&](Aig::Lit a, Aig::Lit b) {
    const Aig::Lit r = dst.and2(a, b);
    sync_levels();
    return r;
  };

  const auto refs = src.reference_counts();

  std::function<Aig::Lit(Aig::Lit)> rebuild = [&](Aig::Lit lit) -> Aig::Lit {
    const std::uint32_t node = Aig::node_of(lit);
    if (!mapped[node]) {
      // Gather the multi-input conjunction under this node. Stop at
      // complemented edges, inputs, and shared (multi-reference) nodes.
      std::vector<Aig::Lit> leaves;
      std::function<void(Aig::Lit)> gather = [&](Aig::Lit l) {
        const std::uint32_t m = Aig::node_of(l);
        if (!Aig::compl_of(l) && src.is_and(m) && refs[m] <= 1) {
          gather(src.fanin0(m));
          gather(src.fanin1(m));
        } else {
          leaves.push_back(rebuild(l));
        }
      };
      gather(src.fanin0(node));
      gather(src.fanin1(node));
      // Combine shallow-first (min-level pairing) to minimize depth.
      auto level_of = [&](Aig::Lit l) { return dlevel[Aig::node_of(l)]; };
      while (leaves.size() > 1) {
        std::sort(leaves.begin(), leaves.end(),
                  [&](Aig::Lit a, Aig::Lit b) {
                    return level_of(a) > level_of(b);
                  });
        const Aig::Lit a = leaves.back();
        leaves.pop_back();
        const Aig::Lit b = leaves.back();
        leaves.pop_back();
        leaves.push_back(dst_and(a, b));
      }
      lit_map[node] = leaves.empty() ? Aig::kTrue : leaves[0];
      mapped[node] = true;
    }
    return Aig::compl_of(lit) ? Aig::neg(lit_map[node]) : lit_map[node];
  };

  for (Aig::Lit po : src.pos()) dst.add_po(rebuild(po));
  return dst;
}

}  // namespace dfmres
