#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace dfmres {

/// And-Inverter Graph with structural hashing and constant folding — the
/// technology-independent form used by Synthesize() (paper Section III).
///
/// Literals encode (node << 1) | complemented. Node 0 is the constant-
/// false node, so literal 0 = false and literal 1 = true. Input nodes and
/// AND nodes share the index space; AND nodes always reference
/// lower-indexed nodes, so index order is a topological order.
class Aig {
 public:
  using Lit = std::uint32_t;
  static constexpr Lit kFalse = 0;
  static constexpr Lit kTrue = 1;

  static constexpr Lit make(std::uint32_t node, bool complemented) {
    return (node << 1) | (complemented ? 1u : 0u);
  }
  static constexpr std::uint32_t node_of(Lit l) { return l >> 1; }
  static constexpr bool compl_of(Lit l) { return (l & 1u) != 0; }
  static constexpr Lit neg(Lit l) { return l ^ 1u; }

  Aig();

  /// Adds a primary input node; returns its node index.
  std::uint32_t add_input();

  // ---- boolean construction (hash-consed, constant-folding) ----
  Lit and2(Lit a, Lit b);
  Lit or2(Lit a, Lit b) { return neg(and2(neg(a), neg(b))); }
  Lit xor2(Lit a, Lit b);
  Lit mux(Lit sel, Lit t, Lit e);  ///< sel ? t : e

  /// Builds an arbitrary function from its truth table over `inputs`
  /// (bit i of a minterm index = value of inputs[i]) by Shannon
  /// decomposition. `num_vars` <= 6.
  Lit build_function(std::uint64_t tt, std::span<const Lit> inputs,
                     int num_vars);

  /// Registers a primary output; returns its index.
  std::uint32_t add_po(Lit l);

  // ---- access ----
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return num_inputs_; }
  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return kind_[node] == NodeKind::Input;
  }
  [[nodiscard]] bool is_and(std::uint32_t node) const {
    return kind_[node] == NodeKind::And;
  }
  [[nodiscard]] bool is_const(std::uint32_t node) const { return node == 0; }
  [[nodiscard]] Lit fanin0(std::uint32_t node) const {
    return nodes_[node].f0;
  }
  [[nodiscard]] Lit fanin1(std::uint32_t node) const {
    return nodes_[node].f1;
  }
  [[nodiscard]] const std::vector<Lit>& pos() const { return pos_; }

  /// Number of references (AND fanins + POs) per node; used for area-flow
  /// estimation during mapping.
  [[nodiscard]] std::vector<std::uint32_t> reference_counts() const;

  /// Logic depth (ANDs) per node.
  [[nodiscard]] std::vector<std::uint32_t> levels() const;

  /// Simulates 64 parallel patterns; `input_words[i]` drives input i.
  [[nodiscard]] std::vector<std::uint64_t> simulate(
      std::span<const std::uint64_t> input_words) const;

 private:
  enum class NodeKind : std::uint8_t { Const, Input, And };

  struct Node {
    Lit f0 = 0;
    Lit f1 = 0;
  };

  std::vector<Node> nodes_;
  std::vector<NodeKind> kind_;
  std::vector<Lit> pos_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::size_t num_inputs_ = 0;
};

/// Returns a depth-reduced equivalent AIG: conjunction trees are
/// re-balanced bottom-up (classic balancing; helps meet the delay
/// constraint after resynthesis). Input/PO order is preserved.
[[nodiscard]] Aig balance(const Aig& aig);

}  // namespace dfmres
