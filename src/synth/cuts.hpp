#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/synth/aig.hpp"

namespace dfmres {

/// Maximum cut width for technology mapping; the largest library cells
/// (AOI22/OAI22) have 4 inputs.
inline constexpr int kMaxCutSize = 4;
/// Priority cuts kept per node.
inline constexpr int kCutsPerNode = 8;

/// A k-feasible cut of an AIG node: a set of leaf nodes (sorted, unique)
/// plus the node's function over those leaves as a 4-variable truth table
/// (leaf i = variable i; unused variables are don't-care-padded by
/// repetition).
struct Cut {
  std::array<std::uint32_t, kMaxCutSize> leaves{};
  std::uint8_t size = 0;
  std::uint16_t tt = 0;

  [[nodiscard]] bool contains(std::uint32_t node) const {
    for (int i = 0; i < size; ++i) {
      if (leaves[i] == node) return true;
    }
    return false;
  }
  /// True if every leaf of this cut also appears in `other` (this
  /// dominates other: other is redundant).
  [[nodiscard]] bool dominates(const Cut& other) const;
};

/// Per-node priority cut sets for a whole AIG. The first cut of every
/// non-const node is its trivial cut {node}.
class CutSet {
 public:
  explicit CutSet(const Aig& aig);

  [[nodiscard]] const std::vector<Cut>& cuts(std::uint32_t node) const {
    return cuts_[node];
  }

 private:
  std::vector<std::vector<Cut>> cuts_;
};

namespace tt4 {

/// Truth table of variable `v` over 4 variables.
[[nodiscard]] std::uint16_t var(int v);

/// Expands `tt` defined over `from` leaves to the leaf set `to`
/// (`from` must be a subset of `to`; both sorted ascending).
[[nodiscard]] std::uint16_t expand(std::uint16_t tt,
                                   const Cut& from, const Cut& to);

/// Applies an input permutation: result(x_{perm[0]},...,) — variable i of
/// the output reads variable perm[i] of the input table.
[[nodiscard]] std::uint16_t permute(std::uint16_t tt, int num_vars,
                                    const std::array<int, 4>& perm);

/// Complements selected input variables (bit i of mask = flip var i).
[[nodiscard]] std::uint16_t flip_inputs(std::uint16_t tt, int num_vars,
                                        unsigned mask);

/// Masks a table down to its valid bits for `num_vars` variables,
/// replicating so that unused high variables are don't cares.
[[nodiscard]] std::uint16_t pad(std::uint16_t tt, int num_vars);

/// True if variable v actually influences the (padded) table.
[[nodiscard]] bool depends_on(std::uint16_t tt, int v);

}  // namespace tt4

}  // namespace dfmres
