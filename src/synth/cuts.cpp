#include "src/synth/cuts.hpp"

#include <algorithm>
#include <cassert>

namespace dfmres {

namespace tt4 {

namespace {
constexpr std::uint16_t kVarTables[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};
}

std::uint16_t var(int v) { return kVarTables[v]; }

std::uint16_t pad(std::uint16_t tt, int num_vars) {
  // Replicate the low 2^num_vars bits across the 16-bit table.
  int bits = 1 << num_vars;
  while (bits < 16) {
    const std::uint16_t mask =
        static_cast<std::uint16_t>((1u << bits) - 1u);
    tt = static_cast<std::uint16_t>((tt & mask) | ((tt & mask) << bits));
    bits <<= 1;
  }
  return tt;
}

std::uint16_t expand(std::uint16_t tt, const Cut& from, const Cut& to) {
  // Map each variable of `from` to its position in `to`, then rebuild the
  // table minterm by minterm over `to`.
  std::array<int, kMaxCutSize> pos{};
  for (int i = 0; i < from.size; ++i) {
    int p = -1;
    for (int j = 0; j < to.size; ++j) {
      if (to.leaves[j] == from.leaves[i]) {
        p = j;
        break;
      }
    }
    assert(p >= 0 && "expand: from-leaf missing in to-cut");
    pos[i] = p;
  }
  std::uint16_t out = 0;
  for (unsigned m = 0; m < 16u; ++m) {
    unsigned src_minterm = 0;
    for (int i = 0; i < from.size; ++i) {
      if ((m >> pos[i]) & 1u) src_minterm |= 1u << i;
    }
    if ((tt >> src_minterm) & 1u) out |= std::uint16_t(1u << m);
  }
  return out;
}

std::uint16_t permute(std::uint16_t tt, int num_vars,
                      const std::array<int, 4>& perm) {
  std::uint16_t out = 0;
  for (unsigned m = 0; m < 16u; ++m) {
    unsigned src = 0;
    for (int i = 0; i < num_vars; ++i) {
      if ((m >> i) & 1u) src |= 1u << perm[i];
    }
    if ((tt >> src) & 1u) out |= std::uint16_t(1u << m);
  }
  return pad(out, num_vars);
}

std::uint16_t flip_inputs(std::uint16_t tt, int num_vars, unsigned mask) {
  std::uint16_t out = 0;
  for (unsigned m = 0; m < 16u; ++m) {
    const unsigned src = (m ^ mask) & 15u;
    if ((tt >> src) & 1u) out |= std::uint16_t(1u << m);
  }
  return pad(out, num_vars);
}

bool depends_on(std::uint16_t tt, int v) {
  const std::uint16_t t = var(v);
  const std::uint16_t hi = tt & t;
  const std::uint16_t lo = static_cast<std::uint16_t>(tt & ~t);
  // Compare cofactors by aligning them.
  const int shift = 1 << v;
  return static_cast<std::uint16_t>(hi >> shift) != lo;
}

}  // namespace tt4

bool Cut::dominates(const Cut& other) const {
  if (size > other.size) return false;
  for (int i = 0; i < size; ++i) {
    if (!other.contains(leaves[i])) return false;
  }
  return true;
}

namespace {

/// Merges the leaf sets of two cuts; returns false if > kMaxCutSize.
bool merge_leaves(const Cut& a, const Cut& b, Cut& out) {
  int i = 0, j = 0, k = 0;
  while (i < a.size || j < b.size) {
    std::uint32_t next;
    if (j >= b.size || (i < a.size && a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i];
      if (j < b.size && b.leaves[j] == next) ++j;
      ++i;
    } else {
      next = b.leaves[j];
      ++j;
    }
    if (k == kMaxCutSize) return false;
    out.leaves[k++] = next;
  }
  out.size = static_cast<std::uint8_t>(k);
  return true;
}

void add_cut(std::vector<Cut>& cuts, const Cut& cut) {
  // Drop if dominated by an existing cut; remove cuts it dominates.
  for (const Cut& c : cuts) {
    if (c.dominates(cut)) return;
  }
  std::erase_if(cuts, [&](const Cut& c) { return cut.dominates(c); });
  cuts.push_back(cut);
}

}  // namespace

CutSet::CutSet(const Aig& aig) : cuts_(aig.num_nodes()) {
  for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
    if (aig.is_const(n)) continue;
    std::vector<Cut>& out = cuts_[n];
    if (aig.is_input(n)) {
      Cut trivial;
      trivial.leaves[0] = n;
      trivial.size = 1;
      trivial.tt = tt4::pad(0x2, 1);  // f = x0
      out.push_back(trivial);
      continue;
    }
    const Aig::Lit l0 = aig.fanin0(n);
    const Aig::Lit l1 = aig.fanin1(n);
    const auto& cuts0 = cuts_[Aig::node_of(l0)];
    const auto& cuts1 = cuts_[Aig::node_of(l1)];
    // The base cut {fanin0, fanin1} must always survive: it is the
    // fallback that keeps any node mappable with just NAND/NOR + INV.
    Cut base;
    {
      const std::uint32_t n0 = Aig::node_of(l0), n1 = Aig::node_of(l1);
      base.size = 2;
      base.leaves[0] = std::min(n0, n1);
      base.leaves[1] = std::max(n0, n1);
      // Variable of each fanin by its leaf position.
      const std::uint16_t v0 = (n0 == base.leaves[0]) ? tt4::var(0)
                                                      : tt4::var(1);
      const std::uint16_t v1 = (n1 == base.leaves[0]) ? tt4::var(0)
                                                      : tt4::var(1);
      const std::uint16_t a =
          Aig::compl_of(l0) ? static_cast<std::uint16_t>(~v0) : v0;
      const std::uint16_t b =
          Aig::compl_of(l1) ? static_cast<std::uint16_t>(~v1) : v1;
      base.tt = static_cast<std::uint16_t>(a & b);
    }
    for (const Cut& c0 : cuts0) {
      for (const Cut& c1 : cuts1) {
        Cut merged;
        if (!merge_leaves(c0, c1, merged)) continue;
        std::uint16_t t0 = tt4::expand(c0.tt, c0, merged);
        std::uint16_t t1 = tt4::expand(c1.tt, c1, merged);
        if (Aig::compl_of(l0)) t0 = static_cast<std::uint16_t>(~t0);
        if (Aig::compl_of(l1)) t1 = static_cast<std::uint16_t>(~t1);
        merged.tt = static_cast<std::uint16_t>(t0 & t1);
        add_cut(out, merged);
        if (out.size() >= kCutsPerNode * 3) break;
      }
      if (out.size() >= kCutsPerNode * 3) break;
    }
    add_cut(out, base);
    // Keep the smallest cuts (they match the cheapest cells) up to the
    // priority budget, then append the trivial cut for parent merging.
    std::sort(out.begin(), out.end(), [](const Cut& a, const Cut& b) {
      return a.size < b.size;
    });
    if (out.size() > kCutsPerNode) out.resize(kCutsPerNode);
    const bool base_present = std::any_of(
        out.begin(), out.end(), [&](const Cut& c) {
          return c.size == base.size &&
                 std::equal(c.leaves.begin(), c.leaves.begin() + c.size,
                            base.leaves.begin()) &&
                 c.tt == base.tt;
        });
    if (!base_present) out.back() = base;
    Cut trivial;
    trivial.leaves[0] = n;
    trivial.size = 1;
    trivial.tt = tt4::pad(0x2, 1);
    out.push_back(trivial);
  }
}

}  // namespace dfmres
