#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/synth/aig.hpp"
#include "src/synth/cuts.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// One way of implementing a cut function with a library cell: cell input
/// pin j connects to cut leaf `leaf_of_pin[j]`, complemented iff bit j of
/// `neg_mask` is set.
struct MatchEntry {
  CellId cell;
  std::array<std::uint8_t, kMaxCutSize> leaf_of_pin{};
  std::uint8_t neg_mask = 0;
  std::uint8_t num_inputs = 0;
};

/// Precomputed cut-function -> cell bindings for a library, honoring a
/// cell exclusion set (the lever of the resynthesis procedure: cells with
/// many internal faults are progressively banned, paper Section III-B).
/// Only single-output combinational cells with 2..4 inputs are matched;
/// inverters are handled separately as phase converters.
class MatchTable {
 public:
  MatchTable(const Library& lib, const std::vector<bool>& banned);

  [[nodiscard]] const std::vector<MatchEntry>* find(int cut_size,
                                                    std::uint16_t tt) const;

  /// Cheapest available inverter, if any.
  [[nodiscard]] std::optional<CellId> inverter() const { return inverter_; }

 private:
  std::unordered_map<std::uint32_t, std::vector<MatchEntry>> table_;
  std::optional<CellId> inverter_;
};

struct MapOptions {
  /// Per-target-CellId ban flags; empty = nothing banned.
  std::vector<bool> banned;
  /// Source cells passed through 1:1 (e.g. generic DFF -> DFFPOSX1,
  /// generic FA -> FAX1 macro mapping in the initial flow). Keys are
  /// source CellId values.
  std::unordered_map<std::uint32_t, CellId> fixed_map;
  /// Weight of the arrival-time term against area flow in the covering
  /// objective (area units per ns).
  double delay_weight = 60.0;
};

/// Technology mapping: source netlist (any library with truth tables) ->
/// netlist over `target`. Combinational logic is rebuilt through an AIG
/// (structural hashing + constant propagation + tree balancing) and
/// covered with library cells via priority-cut matching; sequential
/// gates and `fixed_map` cells pass through unchanged.
///
/// Returns an kUnsatisfiable status when the allowed cell subset cannot
/// implement the logic (this is how the resynthesis procedure discovers
/// that cells i+1..m-1 are insufficient, eligibility condition (3) of
/// Section III-B); other codes signal real input defects (a sequential
/// cell with no target mapping, a cycle among the mapped logic).
[[nodiscard]] Expected<Netlist> technology_map(
    const Netlist& src, std::shared_ptr<const Library> target,
    const MapOptions& options);

}  // namespace dfmres
