#pragma once

#include <optional>
#include <vector>

#include "src/layout/floorplan.hpp"
#include "src/netlist/netlist.hpp"
#include "src/util/rng.hpp"

namespace dfmres {

/// Row/site position of every live gate (by gate slot). Primary inputs
/// and outputs are pinned to the left/right die edges as virtual pads.
struct Placement {
  struct Pos {
    int x = -1;  ///< leftmost occupied site
    int y = -1;  ///< row
    [[nodiscard]] bool valid() const { return x >= 0; }
  };

  Floorplan plan;
  std::vector<Pos> pos;  ///< indexed by gate slot (dead gates invalid)

  [[nodiscard]] const Pos& of(GateId g) const { return pos[g.value()]; }

  /// Pin coordinate used for wirelength and routing: cell center.
  [[nodiscard]] std::pair<double, double> pin_of(GateId g,
                                                 int width_sites) const {
    const Pos& p = pos[g.value()];
    return {p.x + width_sites / 2.0, static_cast<double>(p.y)};
  }
};

/// Half-perimeter wirelength over all live nets, including edge pads.
[[nodiscard]] double total_hpwl(const Netlist& nl, const Placement& pl);

/// Pad coordinate of a primary input/output net on the die edge.
[[nodiscard]] std::pair<double, double> pad_position(const Netlist& nl,
                                                     const Floorplan& plan,
                                                     NetId net);

struct PlaceOptions {
  /// Simulated-annealing moves per gate.
  int moves_per_gate = 32;
  std::uint64_t seed = 1;
};

/// Global placement: connectivity-ordered row fill followed by
/// simulated-annealing refinement on half-perimeter wirelength.
[[nodiscard]] Placement global_place(const Netlist& nl, const Floorplan& plan,
                                     const PlaceOptions& options = {});

/// Incremental placement after resynthesis: surviving gates keep their
/// positions (the floorplan is frozen, paper Section I); new gates are
/// legalized into free sites near the centroid of their placed neighbors.
/// Returns nullopt when the die cannot absorb the new cells — this is the
/// area design-constraint check.
[[nodiscard]] std::optional<Placement> incremental_place(
    const Netlist& nl, const Placement& previous, std::uint64_t seed = 1);

}  // namespace dfmres
