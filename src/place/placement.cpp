#include "src/place/placement.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>

namespace dfmres {

namespace {

/// Row occupancy bitmap with nearest-free-run search.
class SiteMap {
 public:
  explicit SiteMap(const Floorplan& plan)
      : rows_(plan.rows),
        width_(plan.sites_per_row),
        occupied_(static_cast<std::size_t>(plan.rows) * plan.sites_per_row,
                  false) {}

  [[nodiscard]] bool free_run(int x, int y, int w) const {
    if (y < 0 || y >= rows_ || x < 0 || x + w > width_) return false;
    for (int i = 0; i < w; ++i) {
      if (occupied_[idx(x + i, y)]) return false;
    }
    return true;
  }

  void set(int x, int y, int w, bool value) {
    for (int i = 0; i < w; ++i) occupied_[idx(x + i, y)] = value;
  }

  /// Finds the free run of width w nearest to (tx, ty); returns false if
  /// the die is full.
  bool find_nearest(int tx, int ty, int w, int& out_x, int& out_y) const {
    double best = std::numeric_limits<double>::max();
    bool found = false;
    for (int dy = 0; dy < rows_; ++dy) {
      if (found && dy > best) break;  // farther rows cannot win
      for (const int y : {ty - dy, ty + dy}) {
        if (y < 0 || y >= rows_) continue;
        const int x = scan_row(y, tx, w);
        if (x >= 0) {
          const double cost = std::abs(x - tx) / 4.0 + dy;
          if (cost < best) {
            best = cost;
            out_x = x;
            out_y = y;
            found = true;
          }
        }
        if (dy == 0) break;  // ty - 0 == ty + 0
      }
    }
    return found;
  }

 private:
  [[nodiscard]] std::size_t idx(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

  /// Nearest x in row y with w free sites, scanning outward from tx.
  [[nodiscard]] int scan_row(int y, int tx, int w) const {
    tx = std::clamp(tx, 0, width_ - w);
    for (int d = 0; d < width_; ++d) {
      for (const int x : {tx - d, tx + d}) {
        if (d != 0 && x == tx) continue;
        if (free_run(x, y, w)) return x;
      }
      if (tx - d < 0 && tx + d > width_ - w) break;
    }
    return -1;
  }

  int rows_;
  int width_;
  std::vector<bool> occupied_;
};

double net_hpwl(const Netlist& nl, const Placement& pl, NetId net_id) {
  const auto& net = nl.net(net_id);
  double lo_x = 1e18, hi_x = -1e18, lo_y = 1e18, hi_y = -1e18;
  int pins = 0;
  const auto add = [&](double x, double y) {
    lo_x = std::min(lo_x, x);
    hi_x = std::max(hi_x, x);
    lo_y = std::min(lo_y, y);
    hi_y = std::max(hi_y, y);
    ++pins;
  };
  if (net.has_gate_driver()) {
    const auto [x, y] =
        pl.pin_of(net.driver_gate, nl.cell_of(net.driver_gate).width_sites);
    add(x, y);
  }
  if (net.is_primary_input || net.is_primary_output) {
    const auto [x, y] = pad_position(nl, pl.plan, net_id);
    add(x, y);
  }
  for (const PinRef& sink : net.sinks) {
    const auto [x, y] = pl.pin_of(sink.gate, nl.cell_of(sink.gate).width_sites);
    add(x, y);
  }
  if (pins < 2) return 0.0;
  return (hi_x - lo_x) + 2.0 * (hi_y - lo_y);  // rows are taller than sites
}

}  // namespace

std::pair<double, double> pad_position(const Netlist& nl,
                                       const Floorplan& plan, NetId net) {
  // Spread pads deterministically along the left (PI) / right (PO) edge.
  const auto& n = nl.net(net);
  const double y =
      (net.value() * 2654435761u % 1000) / 1000.0 * std::max(1, plan.rows - 1);
  const double x = n.is_primary_input ? -1.0 : plan.sites_per_row;
  return {x, y};
}

double total_hpwl(const Netlist& nl, const Placement& pl) {
  double total = 0.0;
  for (NetId net : nl.live_nets()) total += net_hpwl(nl, pl, net);
  return total;
}

Placement global_place(const Netlist& nl, const Floorplan& plan,
                       const PlaceOptions& options) {
  Placement pl;
  pl.plan = plan;
  pl.pos.resize(nl.gate_capacity());

  // Initial order: breadth-first from primary inputs for locality.
  std::vector<GateId> order;
  {
    std::vector<bool> queued(nl.gate_capacity(), false);
    std::deque<GateId> frontier;
    const auto push_sinks = [&](NetId net) {
      for (const PinRef& sink : nl.net(net).sinks) {
        if (!queued[sink.gate.value()]) {
          queued[sink.gate.value()] = true;
          frontier.push_back(sink.gate);
        }
      }
    };
    for (NetId pi : nl.primary_inputs()) push_sinks(pi);
    while (!frontier.empty()) {
      const GateId g = frontier.front();
      frontier.pop_front();
      order.push_back(g);
      for (NetId out : nl.gate(g).outputs) push_sinks(out);
    }
    for (GateId g : nl.live_gates()) {
      if (!queued[g.value()]) order.push_back(g);  // e.g. gates fed by consts
    }
  }

  // Boustrophedon row fill.
  SiteMap sites(plan);
  {
    int x = 0, y = 0;
    bool reverse = false;
    for (GateId g : order) {
      const int w = nl.cell_of(g).width_sites;
      if (x + w > plan.sites_per_row) {
        x = 0;
        ++y;
        reverse = !reverse;
        if (y >= plan.rows) y = plan.rows - 1;  // overflow: pack last row
      }
      int real_x = reverse ? plan.sites_per_row - x - w : x;
      if (!sites.free_run(real_x, y, w)) {
        if (!sites.find_nearest(real_x, y, w, real_x, y)) {
          // Die genuinely full: caller sized the floorplan, so this is a
          // programming error rather than a recoverable failure.
          assert(false && "global_place: floorplan too small");
        }
      }
      sites.set(real_x, y, w, true);
      pl.pos[g.value()] = {real_x, y};
      x += w;
    }
  }

  // Simulated annealing: swap two gates or move one to free space.
  Rng rng(options.seed);
  const auto live = nl.live_gates();
  if (live.size() < 2) return pl;
  const long moves =
      static_cast<long>(options.moves_per_gate) * static_cast<long>(live.size());

  const auto gate_nets_cost = [&](GateId g) {
    double c = 0.0;
    for (NetId in : nl.gate(g).fanin) c += net_hpwl(nl, pl, in);
    for (NetId out : nl.gate(g).outputs) c += net_hpwl(nl, pl, out);
    return c;
  };

  double temperature = 8.0;
  const double cooling = std::pow(0.02 / temperature,
                                  1.0 / std::max(1L, moves));
  for (long m = 0; m < moves; ++m, temperature *= cooling) {
    const GateId a = live[rng.below(live.size())];
    const GateId b = live[rng.below(live.size())];
    if (a == b) continue;
    const int wa = nl.cell_of(a).width_sites;
    const int wb = nl.cell_of(b).width_sites;
    if (wa != wb) continue;  // equal-width swaps keep legality trivial
    const double before = gate_nets_cost(a) + gate_nets_cost(b);
    std::swap(pl.pos[a.value()], pl.pos[b.value()]);
    const double after = gate_nets_cost(a) + gate_nets_cost(b);
    const double delta = after - before;
    if (delta > 0 && rng.uniform() >= std::exp(-delta / temperature)) {
      std::swap(pl.pos[a.value()], pl.pos[b.value()]);  // reject
    }
  }
  return pl;
}

std::optional<Placement> incremental_place(const Netlist& nl,
                                           const Placement& previous,
                                           std::uint64_t seed) {
  Placement pl;
  pl.plan = previous.plan;
  pl.pos.assign(nl.gate_capacity(), {});

  SiteMap sites(pl.plan);
  std::vector<GateId> fresh;
  for (GateId g : nl.live_gates()) {
    const bool survived = g.value() < previous.pos.size() &&
                          previous.pos[g.value()].valid();
    if (survived) {
      pl.pos[g.value()] = previous.pos[g.value()];
      sites.set(pl.pos[g.value()].x, pl.pos[g.value()].y,
                nl.cell_of(g).width_sites, true);
    } else {
      fresh.push_back(g);
    }
  }

  Rng rng(seed);
  for (GateId g : fresh) {
    // Centroid of already-placed neighbors.
    double sx = 0, sy = 0;
    int n = 0;
    const auto consider = [&](GateId other) {
      if (!pl.pos[other.value()].valid()) return;
      const auto [x, y] = pl.pin_of(other, nl.cell_of(other).width_sites);
      sx += x;
      sy += y;
      ++n;
    };
    for (NetId in : nl.gate(g).fanin) {
      const auto& net = nl.net(in);
      if (net.has_gate_driver()) consider(net.driver_gate);
    }
    for (NetId out : nl.gate(g).outputs) {
      for (const PinRef& sink : nl.net(out).sinks) consider(sink.gate);
    }
    int tx, ty;
    if (n > 0) {
      tx = static_cast<int>(sx / n);
      ty = static_cast<int>(sy / n);
    } else {
      tx = static_cast<int>(rng.below(static_cast<std::uint64_t>(
          std::max(1, pl.plan.sites_per_row))));
      ty = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(std::max(1, pl.plan.rows))));
    }
    const int w = nl.cell_of(g).width_sites;
    int x, y;
    if (!sites.find_nearest(tx, ty, w, x, y)) {
      return std::nullopt;  // area constraint violated
    }
    sites.set(x, y, w, true);
    pl.pos[g.value()] = {x, y};
  }
  return pl;
}

}  // namespace dfmres
