#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/library/osu018.hpp"
#include "src/netlist/netlist.hpp"
#include "src/util/rng.hpp"

namespace dfmres {

/// Convenience layer for writing structural "RTL" over the generic
/// library: the benchmark generators are built from these datapath and
/// control idioms (adders, S-boxes, muxes, decoders, priority logic).
class CircuitBuilder {
 public:
  explicit CircuitBuilder(std::string name);

  [[nodiscard]] Netlist take() { return std::move(nl_); }
  [[nodiscard]] Netlist& netlist() { return nl_; }

  // ---- ports ----
  NetId input(const std::string& name);
  std::vector<NetId> input_bus(const std::string& prefix, int width);
  void output(NetId net);
  void output_bus(std::span<const NetId> nets);

  // ---- gates ----
  NetId not_(NetId a);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  NetId nand2(NetId a, NetId b);
  NetId nor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b);
  /// sel ? a : b
  NetId mux(NetId a, NetId b, NetId sel);
  NetId and_n(std::span<const NetId> xs);
  NetId or_n(std::span<const NetId> xs);
  NetId xor_n(std::span<const NetId> xs);

  // ---- state ----
  NetId dff(NetId d);
  std::vector<NetId> dff_bus(std::span<const NetId> d);

  // ---- datapath ----
  /// Ripple-carry adder from generic FA macros; returns (sum, carry-out).
  std::pair<std::vector<NetId>, NetId> ripple_add(std::span<const NetId> a,
                                                  std::span<const NetId> b,
                                                  NetId carry_in);
  /// Incrementer from HA macros; returns (sum, carry-out).
  std::pair<std::vector<NetId>, NetId> increment(std::span<const NetId> a,
                                                 NetId carry_in);
  /// Arbitrary function of up to 6 variables by Shannon decomposition.
  NetId func(std::uint64_t tt, std::span<const NetId> vars);
  /// Random (seeded) 4-bit -> 4-bit substitution box.
  std::vector<NetId> sbox4(std::span<const NetId> in, Rng& rng);
  /// One-hot decoder: 2^n outputs from n select bits.
  std::vector<NetId> decoder(std::span<const NetId> sel);
  /// Priority encoder: for each position, "this is the highest-priority
  /// active request" (one-hot grant vector).
  std::vector<NetId> priority_grant(std::span<const NetId> requests);
  NetId equals(std::span<const NetId> a, std::span<const NetId> b);
  /// Word-wide 2:1 mux.
  std::vector<NetId> mux_bus(std::span<const NetId> a,
                             std::span<const NetId> b, NetId sel);
  /// Barrel rotate-left by a variable amount (log-depth mux stages).
  std::vector<NetId> rotate_left(std::span<const NetId> a,
                                 std::span<const NetId> amount);
  std::vector<NetId> xor_bus(std::span<const NetId> a,
                             std::span<const NetId> b);

  /// Functionally returns `a`, built through a control-dependent redundant
  /// mux structure (mux(ctrl; a, a)) that structural hashing cannot
  /// collapse. Models the guarded/duplicated logic real RTL carries and
  /// is a classic source of undetectable faults in synthesized designs.
  NetId opaque_copy(NetId a, NetId ctrl);

 private:
  NetId gate1(CellId cell, NetId a);
  NetId gate2(CellId cell, NetId a, NetId b);

  std::shared_ptr<const Library> lib_;
  Netlist nl_;
  CellId not_id_, and_id_, or_id_, xor_id_, nand_id_, nor_id_, xnor_id_,
      mux_id_, dff_id_, fa_id_, ha_id_;
};

}  // namespace dfmres
