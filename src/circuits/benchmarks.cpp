#include "src/circuits/benchmarks.hpp"

#include <array>
#include <cstdlib>
#include <functional>

#include "src/circuits/builder.hpp"
#include "src/util/fmt.hpp"
#include "src/util/logging.hpp"
#include "src/util/rng.hpp"

namespace dfmres {

namespace {

using Bus = std::vector<NetId>;

/// Fixed pseudo-random wiring permutation.
std::vector<std::size_t> permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[rng.below(i)]);
  }
  return p;
}

Bus permute(const Bus& in, const std::vector<std::size_t>& p) {
  Bus out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[p[i]];
  return out;
}

/// One-hot result multiplexer: or-reduce of (grant_k AND value_k) per bit.
/// The one-hot correlation among selects is the classic source of
/// unjustifiable cell input combinations after mapping.
Bus onehot_mux(CircuitBuilder& cb, std::span<const NetId> sel,
               std::span<const Bus> values) {
  const std::size_t width = values[0].size();
  Bus out;
  for (std::size_t bit = 0; bit < width; ++bit) {
    std::vector<NetId> terms;
    for (std::size_t k = 0; k < values.size(); ++k) {
      terms.push_back(cb.and2(sel[k], values[k][bit]));
    }
    out.push_back(cb.or_n(terms));
  }
  return out;
}

/// Encode a one-hot vector into binary (or-trees of selected positions).
Bus encode(CircuitBuilder& cb, std::span<const NetId> onehot, int bits) {
  Bus out;
  for (int b = 0; b < bits; ++b) {
    std::vector<NetId> terms;
    for (std::size_t i = 0; i < onehot.size(); ++i) {
      if ((i >> b) & 1u) terms.push_back(onehot[i]);
    }
    out.push_back(terms.empty() ? cb.and2(onehot[0], cb.not_(onehot[0]))
                                : cb.or_n(terms));
  }
  return out;
}

Bus sbox_layer(CircuitBuilder& cb, const Bus& in, Rng& rng) {
  Bus out;
  for (std::size_t i = 0; i + 4 <= in.size(); i += 4) {
    const NetId nibble[] = {in[i], in[i + 1], in[i + 2], in[i + 3]};
    const Bus s = cb.sbox4(nibble, rng);
    out.insert(out.end(), s.begin(), s.end());
  }
  return out;
}

// ---------------------------------------------------------------------
// tv80: 8-bit microprocessor ALU + flags + decode, two stages.
Netlist build_tv80() {
  CircuitBuilder cb("tv80");
  Rng rng(0x7480);
  const Bus a = cb.dff_bus(cb.input_bus("a", 16));
  const Bus b = cb.dff_bus(cb.input_bus("b", 16));
  const Bus op = cb.dff_bus(cb.input_bus("op", 3));
  const NetId cin = cb.dff(cb.input("cin"));

  const Bus dec = cb.decoder(op);
  // Operation results.
  Bus b_inv;
  for (NetId x : b) b_inv.push_back(cb.not_(x));
  const auto [add_sum, add_carry] = cb.ripple_add(a, b, cin);
  const auto [sub_sum, sub_carry] = cb.ripple_add(a, b_inv, cb.not_(cin));
  Bus land, lor, lxor, rot;
  for (int i = 0; i < 16; ++i) {
    land.push_back(cb.and2(a[i], b[i]));
    lor.push_back(cb.or2(a[i], b[i]));
    lxor.push_back(cb.xor2(a[i], b[i]));
    rot.push_back(a[(i + 15) % 16]);
  }
  Bus pass_b;
  for (int i = 0; i < 16; ++i) pass_b.push_back(cb.opaque_copy(b[i], dec[6]));
  const std::array<Bus, 8> results = {add_sum, sub_sum, land, lor,
                                      lxor,   rot,     pass_b, a};
  const Bus result = onehot_mux(cb, dec, results);

  // Flag logic.
  std::vector<NetId> nres;
  for (NetId r : result) nres.push_back(cb.not_(r));
  const NetId zero = cb.and_n(nres);
  const NetId carry = cb.mux(add_carry, sub_carry, dec[0]);
  const NetId parity = cb.xor_n(result);
  const NetId sign = cb.opaque_copy(result[7], dec[1]);

  // Registered second stage: accumulator updated by xor-merge (keeps the
  // adder count to the main ALU).
  const Bus acc = cb.dff_bus(result);
  Bus acc2 = cb.xor_bus(acc, result);
  acc2[0] = cb.mux(acc2[0], result[0], carry);
  const NetId acc_c = cb.and2(acc[15], result[15]);
  cb.output_bus(acc2);
  cb.output(zero);
  cb.output(carry);
  cb.output(parity);
  cb.output(sign);
  cb.output(acc_c);
  (void)rng;
  return cb.take();
}

// ---------------------------------------------------------------------
// systemcaes: one AES-like round on a 16-bit state, 4 S-boxes.
Netlist build_systemcaes() {
  CircuitBuilder cb("systemcaes");
  Rng rng(0xAE51);
  const Bus state_in = cb.input_bus("s", 32);
  const Bus key = cb.dff_bus(cb.input_bus("k", 32));
  const NetId enc = cb.input("enc");

  const Bus state = cb.dff_bus(state_in);
  Bus x = cb.xor_bus(state, key);
  x = sbox_layer(cb, x, rng);
  // Mix: xor each nibble with its rotated neighbor.
  const auto perm = permutation(32, rng);
  const Bus shifted = permute(x, perm);
  Bus mixed = cb.xor_bus(x, shifted);
  // Guarded second round.
  Bus round2 = sbox_layer(cb, mixed, rng);
  round2 = cb.xor_bus(round2, permute(key, permutation(32, rng)));
  const Bus out = cb.mux_bus(round2, mixed, enc);
  for (std::size_t i = 0; i < 8; ++i) {
    cb.output(cb.opaque_copy(out[i * 4], enc));
  }
  cb.output_bus(cb.dff_bus(out));
  return cb.take();
}

// ---------------------------------------------------------------------
// aes_core: 32-bit state, 8 S-boxes, 2 rounds plus key schedule.
Netlist build_aes_core() {
  CircuitBuilder cb("aes_core");
  Rng rng(0xAE52);
  const Bus state_in = cb.input_bus("s", 48);
  const Bus key_in = cb.input_bus("k", 48);
  const NetId load = cb.input("load");

  const Bus state = cb.dff_bus(cb.mux_bus(state_in, state_in, load));
  const Bus key = cb.dff_bus(key_in);

  // Key schedule: rotate + sbox + xor.
  Bus ks = permute(key, permutation(48, rng));
  ks = sbox_layer(cb, ks, rng);
  const Bus round_key = cb.xor_bus(ks, key);

  Bus x = cb.xor_bus(state, round_key);
  for (int round = 0; round < 2; ++round) {
    x = sbox_layer(cb, x, rng);
    const Bus shifted = permute(x, permutation(48, rng));
    x = cb.xor_bus(x, shifted);
    x = cb.xor_bus(x, round_key);
  }
  cb.output_bus(cb.dff_bus(x));
  cb.output(cb.xor_n(x));  // round parity check bit
  return cb.take();
}

// ---------------------------------------------------------------------
// wb_conmax: 4x4 wishbone-style crossbar with priority arbitration.
Netlist build_wb_conmax() {
  CircuitBuilder cb("wb_conmax");
  Rng rng(0xC0B);
  std::array<Bus, 4> mdata, maddr;
  std::array<NetId, 4> mreq;
  for (int m = 0; m < 4; ++m) {
    mdata[m] = cb.dff_bus(cb.input_bus(strfmt("m%dd", m), 12));
    maddr[m] = cb.dff_bus(cb.input_bus(strfmt("m%da", m), 4));
    mreq[m] = cb.input(strfmt("m%dreq", m));
  }
  for (int s = 0; s < 4; ++s) {
    // Master m targets slave s when addr[3:2] == s and req.
    std::vector<NetId> want;
    for (int m = 0; m < 4; ++m) {
      const NetId a2 = (s & 1) ? maddr[m][2] : cb.not_(maddr[m][2]);
      const NetId a3 = (s & 2) ? maddr[m][3] : cb.not_(maddr[m][3]);
      want.push_back(cb.and2(mreq[m], cb.and2(a2, a3)));
    }
    const Bus grant = cb.priority_grant(want);
    const std::array<Bus, 4> lanes = {mdata[0], mdata[1], mdata[2], mdata[3]};
    const Bus out = onehot_mux(cb, grant, lanes);
    const NetId busy = cb.or_n(grant);
    cb.output_bus(cb.dff_bus(out));
    cb.output(busy);
    for (int m = 0; m < 4; ++m) cb.output(cb.opaque_copy(grant[m], busy));
  }
  (void)rng;
  return cb.take();
}

// ---------------------------------------------------------------------
// des_perf: two Feistel rounds, 16-bit halves, S-boxes and P-boxes.
Netlist build_des_perf() {
  CircuitBuilder cb("des_perf");
  Rng rng(0xDE5);
  const Bus l_in = cb.input_bus("l", 24);
  const Bus r_in = cb.input_bus("r", 24);
  const Bus k1 = cb.dff_bus(cb.input_bus("k1", 24));
  const Bus k2 = cb.dff_bus(cb.input_bus("k2", 24));

  Bus l = cb.dff_bus(l_in), r = cb.dff_bus(r_in);
  for (int round = 0; round < 2; ++round) {
    const Bus& key = round == 0 ? k1 : k2;
    Bus f = cb.xor_bus(permute(r, permutation(24, rng)), key);
    f = sbox_layer(cb, f, rng);
    f = permute(f, permutation(24, rng));
    f = sbox_layer(cb, f, rng);
    const Bus new_r = cb.xor_bus(l, f);
    l = r;
    r = round == 0 ? cb.dff_bus(new_r) : new_r;
  }
  cb.output_bus(l);
  cb.output_bus(cb.dff_bus(r));
  return cb.take();
}

// ---------------------------------------------------------------------
// sparc_spu: stream/crypto unit: rotates, xor mixing, byte adders.
Netlist build_sparc_spu() {
  CircuitBuilder cb("sparc_spu");
  Rng rng(0x59C0);
  const Bus data = cb.input_bus("d", 32);
  const Bus key = cb.dff_bus(cb.input_bus("k", 32));
  const Bus amt = cb.dff_bus(cb.input_bus("amt", 3));

  const Bus state = cb.dff_bus(data);
  Bus mixed = cb.xor_bus(state, key);
  mixed = cb.rotate_left(mixed, amt);
  // Byte-wise adders with the key bytes.
  Bus accum;
  for (int byte = 0; byte < 4; ++byte) {
    const std::span<const NetId> a(&mixed[byte * 8], 8);
    const std::span<const NetId> b(&key[byte * 8], 8);
    auto [sum, carry] = cb.ripple_add(a, b, amt[0]);
    accum.insert(accum.end(), sum.begin(), sum.end());
    cb.output(cb.opaque_copy(carry, amt[1]));
  }
  // Per-byte parity.
  for (int byte = 0; byte < 4; ++byte) {
    cb.output(cb.xor_n(std::span<const NetId>(&accum[byte * 8], 8)));
  }
  cb.output_bus(cb.dff_bus(accum));
  (void)rng;
  return cb.take();
}

// ---------------------------------------------------------------------
// sparc_ffu: FP front-end: barrel rotate, leading-zero, masks, parity.
Netlist build_sparc_ffu() {
  CircuitBuilder cb("sparc_ffu");
  const Bus in = cb.dff_bus(cb.input_bus("d", 24));
  const Bus shamt = cb.dff_bus(cb.input_bus("sh", 5));
  const NetId mode = cb.input("mode");

  const Bus rotated = cb.rotate_left(in, shamt);
  const Bus grant = cb.priority_grant(rotated);  // leading-one detect
  const Bus lz = encode(cb, grant, 4);
  // Thermometer mask from the leading-one position.
  Bus thermo;
  NetId running = grant[0];
  thermo.push_back(running);
  for (std::size_t i = 1; i < grant.size(); ++i) {
    running = cb.or2(running, grant[i]);
    thermo.push_back(running);
  }
  const Bus masked = cb.mux_bus(rotated, thermo, mode);
  cb.output_bus(cb.dff_bus(masked));
  cb.output_bus(lz);
  cb.output(cb.xor_n(masked));
  cb.output(cb.opaque_copy(cb.or_n(grant), mode));
  return cb.take();
}

// ---------------------------------------------------------------------
// sparc_exu: 16-bit ALU with bypass network and condition codes.
Netlist build_sparc_exu() {
  CircuitBuilder cb("sparc_exu");
  const Bus a_in = cb.input_bus("a", 24);
  const Bus b_in = cb.input_bus("b", 24);
  const Bus op = cb.dff_bus(cb.input_bus("op", 3));
  const NetId fwd_a = cb.input("fwd_a");
  const NetId fwd_b = cb.input("fwd_b");

  // Bypass: previous result register forwards over either operand.
  // (Result register defined below; build with a placeholder bus of DFFs
  // fed later is impossible here, so forward the registered operands.)
  const Bus a_reg = cb.dff_bus(a_in);
  const Bus b_reg = cb.dff_bus(b_in);
  const Bus a = cb.mux_bus(a_reg, a_in, fwd_a);
  const Bus b = cb.mux_bus(b_reg, b_in, fwd_b);

  const Bus dec = cb.decoder(op);
  Bus b_inv;
  for (NetId x : b) b_inv.push_back(cb.not_(x));
  const NetId one = cb.or2(dec[1], dec[1]);
  const auto [add_sum, add_c] = cb.ripple_add(a, b, cb.and2(dec[1], one));
  const auto [sub_sum, sub_c] = cb.ripple_add(a, b_inv, one);
  Bus land, lor, lxor, shl;
  for (int i = 0; i < 24; ++i) {
    land.push_back(cb.and2(a[i], b[i]));
    lor.push_back(cb.or2(a[i], b[i]));
    lxor.push_back(cb.xor2(a[i], b[i]));
    shl.push_back(i == 0 ? cb.and2(a[0], cb.not_(a[0])) : a[i - 1]);
  }
  Bus pass;
  for (int i = 0; i < 24; ++i) pass.push_back(cb.opaque_copy(b[i], dec[7]));
  const std::array<Bus, 8> results = {add_sum, add_sum, sub_sum, land,
                                      lor,     lxor,    shl,     pass};
  const Bus result = onehot_mux(cb, dec, results);

  std::vector<NetId> nres;
  for (NetId r : result) nres.push_back(cb.not_(r));
  const NetId zero = cb.and_n(nres);
  const NetId neg = result[23];
  const NetId carry = cb.mux(sub_c, add_c, dec[2]);
  const NetId eq = cb.equals(a, b);

  cb.output_bus(cb.dff_bus(result));
  cb.output(zero);
  cb.output(neg);
  cb.output(carry);
  cb.output(eq);
  return cb.take();
}

// ---------------------------------------------------------------------
// sparc_ifu: fetch unit: PC increment, branch target, decode predicates.
Netlist build_sparc_ifu() {
  CircuitBuilder cb("sparc_ifu");
  const Bus pc_in = cb.input_bus("pc", 24);
  const Bus imm = cb.dff_bus(cb.input_bus("imm", 8));
  const Bus opcode = cb.dff_bus(cb.input_bus("opc", 4));
  const Bus cc = cb.dff_bus(cb.input_bus("cc", 4));

  const Bus pc = cb.dff_bus(pc_in);
  const NetId one = cb.or2(opcode[0], cb.not_(opcode[0]));  // constant 1
  const auto [pc_inc, inc_c] = cb.increment(pc, one);
  // Sign-extended immediate added to PC.
  Bus sext(imm.begin(), imm.end());
  for (int i = 8; i < 24; ++i) sext.push_back(cb.opaque_copy(imm[7], opcode[3]));
  const auto [target, tgt_c] = cb.ripple_add(pc, sext, cb.and2(inc_c, cb.not_(inc_c)));

  const Bus dec = cb.decoder(std::span<const NetId>(opcode.data(), 3));
  // Branch condition predicates over the condition codes.
  const NetId take_eq = cb.and2(dec[1], cc[0]);
  const NetId take_lt = cb.and2(dec[2], cb.xor2(cc[1], cc[2]));
  const NetId take_always = cb.and2(dec[3], opcode[3]);
  const NetId taken = cb.or2(take_eq, cb.or2(take_lt, take_always));

  const Bus next_pc = cb.mux_bus(target, pc_inc, taken);
  cb.output_bus(cb.dff_bus(next_pc));
  for (int i = 0; i < 8; ++i) cb.output(dec[i]);
  cb.output(taken);
  cb.output(cb.opaque_copy(tgt_c, taken));
  return cb.take();
}

// ---------------------------------------------------------------------
// sparc_tlu: trap logic: masked priority over 16 sources, trap state.
Netlist build_sparc_tlu() {
  CircuitBuilder cb("sparc_tlu");
  const Bus traps = cb.dff_bus(cb.input_bus("t", 24));
  const Bus mask = cb.dff_bus(cb.input_bus("m", 24));
  const Bus tl_in = cb.input_bus("tl", 2);
  // 5 bits wide to match encode(grant, 5) below; a narrower bus would
  // read past the end of type_cmp inside CircuitBuilder::equals.
  const Bus type_cmp = cb.input_bus("tt", 5);

  Bus masked;
  for (int i = 0; i < 24; ++i) masked.push_back(cb.and2(traps[i], mask[i]));
  const Bus grant = cb.priority_grant(masked);
  const Bus ttype = encode(cb, grant, 5);
  const NetId any = cb.or_n(grant);
  const NetId match = cb.equals(ttype, type_cmp);

  // Trap-level state machine (2 bits): level saturates upward on a trap.
  const Bus tl = cb.dff_bus(tl_in);
  const NetId at_max = cb.and2(tl[0], tl[1]);
  const auto [tl_inc, tl_c] = cb.increment(tl, any);
  const Bus tl_next = cb.mux_bus(tl, tl_inc, at_max);
  cb.output_bus(cb.dff_bus(tl_next));
  cb.output_bus(ttype);
  cb.output(any);
  cb.output(match);
  cb.output(cb.opaque_copy(tl_c, match));
  for (int i = 0; i < 24; i += 2) cb.output(grant[i]);
  return cb.take();
}

// ---------------------------------------------------------------------
// sparc_lsu: load/store: address gen, alignment, tag compare, masks.
Netlist build_sparc_lsu() {
  CircuitBuilder cb("sparc_lsu");
  const Bus base = cb.input_bus("base", 24);
  const Bus offset = cb.input_bus("off", 8);
  const Bus tag0 = cb.dff_bus(cb.input_bus("tag0", 8));
  const Bus tag1 = cb.dff_bus(cb.input_bus("tag1", 8));
  const Bus wdata = cb.dff_bus(cb.input_bus("wd", 24));
  const NetId size = cb.input("size");

  Bus sext(offset.begin(), offset.end());
  for (int i = 8; i < 24; ++i) sext.push_back(cb.opaque_copy(offset[7], size));
  const auto [addr, addr_c] = cb.ripple_add(base, sext,
                                            cb.and2(size, cb.not_(size)));

  // Alignment: rotate write data by byte offset.
  const NetId amt_bits[] = {addr[0], addr[1], addr[2], addr[3]};
  const Bus aligned = cb.rotate_left(wdata, std::span<const NetId>(amt_bits, 3));

  // Tag compare against two ways.
  const std::span<const NetId> line(&addr[12], 8);
  const NetId hit0 = cb.equals(line, tag0);
  const NetId hit1 = cb.equals(line, tag1);
  const NetId hit = cb.or2(hit0, hit1);
  const NetId conflict = cb.and2(hit0, hit1);  // correlated: nearly never 1

  // Byte enable decoder from addr[1:0] and size.
  const NetId sel[] = {addr[0], addr[1]};
  const Bus lanes = cb.decoder(std::span<const NetId>(sel, 2));
  Bus be;
  for (int i = 0; i < 4; ++i) be.push_back(cb.or2(lanes[i], size));

  cb.output_bus(cb.dff_bus(aligned));
  cb.output_bus(be);
  cb.output(hit);
  cb.output(conflict);
  cb.output(cb.opaque_copy(addr_c, hit));
  cb.output_bus(cb.dff_bus(std::vector<NetId>(addr.begin(), addr.begin() + 8)));
  return cb.take();
}

// ---------------------------------------------------------------------
// sparc_fpu: simplified FP adder: exponent diff, align, add, normalize.
Netlist build_sparc_fpu() {
  CircuitBuilder cb("sparc_fpu");
  const Bus man_a = cb.dff_bus(cb.input_bus("ma", 16));
  const Bus man_b = cb.dff_bus(cb.input_bus("mb", 16));
  const Bus exp_a = cb.dff_bus(cb.input_bus("ea", 8));
  const Bus exp_b = cb.dff_bus(cb.input_bus("eb", 8));
  const NetId sub = cb.input("sub");

  // Exponent difference (a - b).
  Bus eb_inv;
  for (NetId x : exp_b) eb_inv.push_back(cb.not_(x));
  const NetId one = cb.or2(sub, cb.not_(sub));
  const auto [ediff, eborrow] = cb.ripple_add(exp_a, eb_inv, one);
  const NetId a_ge_b = eborrow;

  // Operand swap so the larger exponent stays fixed.
  const Bus big = cb.mux_bus(man_a, man_b, a_ge_b);
  const Bus small = cb.mux_bus(man_b, man_a, a_ge_b);
  const Bus big_exp = cb.mux_bus(exp_a, exp_b, a_ge_b);

  // Alignment shift of the smaller mantissa (rotate as approximation of
  // shift keeps the mux structure identical).
  const NetId amt[] = {ediff[0], ediff[1], ediff[2], ediff[3]};
  const Bus aligned = cb.rotate_left(small, std::span<const NetId>(amt, 4));

  // Add/subtract mantissas.
  Bus addend;
  for (NetId x : aligned) addend.push_back(cb.xor2(x, sub));
  const auto [mant_sum, mant_c] = cb.ripple_add(big, addend, sub);

  // Leading-zero count and normalize.
  Bus reversed(mant_sum.rbegin(), mant_sum.rend());
  const Bus grant = cb.priority_grant(reversed);
  const Bus lzc = encode(cb, grant, 4);
  const Bus normalized = cb.rotate_left(mant_sum, lzc);

  // Rounding increment on the low bits.
  const auto [rounded, round_c] =
      cb.increment(std::span<const NetId>(normalized.data(), 6),
                   cb.and2(normalized[0], normalized[1]));

  // Exponent adjust.
  const auto [exp_adj, exp_c] = cb.ripple_add(
      big_exp, std::vector<NetId>{lzc[0], lzc[1], lzc[2], lzc[3],
                                  cb.not_(one), cb.not_(one),
                                  cb.not_(one), cb.not_(one)},
      mant_c);

  cb.output_bus(cb.dff_bus(normalized));
  cb.output_bus(rounded);
  cb.output_bus(cb.dff_bus(exp_adj));
  cb.output(mant_c);
  cb.output(round_c);
  cb.output(cb.opaque_copy(exp_c, sub));
  cb.output(cb.xor_n(normalized));
  return cb.take();
}

constexpr std::array<std::string_view, 12> kNames = {
    "tv80",      "systemcaes", "aes_core",  "wb_conmax",
    "des_perf",  "sparc_spu",  "sparc_ffu", "sparc_exu",
    "sparc_ifu", "sparc_tlu",  "sparc_lsu", "sparc_fpu"};

}  // namespace

std::span<const std::string_view> benchmark_names() { return kNames; }

Expected<Netlist> build_benchmark(std::string_view name) {
  if (name == "tv80") return build_tv80();
  if (name == "systemcaes") return build_systemcaes();
  if (name == "aes_core") return build_aes_core();
  if (name == "wb_conmax") return build_wb_conmax();
  if (name == "des_perf") return build_des_perf();
  if (name == "sparc_spu") return build_sparc_spu();
  if (name == "sparc_ffu") return build_sparc_ffu();
  if (name == "sparc_exu") return build_sparc_exu();
  if (name == "sparc_ifu") return build_sparc_ifu();
  if (name == "sparc_tlu") return build_sparc_tlu();
  if (name == "sparc_lsu") return build_sparc_lsu();
  if (name == "sparc_fpu") return build_sparc_fpu();
  std::string known;
  for (std::string_view n : kNames) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return make_status(StatusCode::kNotFound,
                     "unknown benchmark '%s' (known: %s)",
                     std::string(name).c_str(), known.c_str());
}

Netlist build_c17() {
  CircuitBuilder cb("c17");
  const NetId n1 = cb.input("1");
  const NetId n2 = cb.input("2");
  const NetId n3 = cb.input("3");
  const NetId n6 = cb.input("6");
  const NetId n7 = cb.input("7");
  const NetId n10 = cb.nand2(n1, n3);
  const NetId n11 = cb.nand2(n3, n6);
  const NetId n16 = cb.nand2(n2, n11);
  const NetId n19 = cb.nand2(n11, n7);
  const NetId n22 = cb.nand2(n10, n16);
  const NetId n23 = cb.nand2(n16, n19);
  cb.output(n22);
  cb.output(n23);
  return cb.take();
}

}  // namespace dfmres
