#include "src/circuits/builder.hpp"

#include <cassert>

#include "src/util/fmt.hpp"

namespace dfmres {

CircuitBuilder::CircuitBuilder(std::string name)
    : lib_(generic_library()), nl_(lib_, std::move(name)) {
  not_id_ = lib_->require("NOT");
  and_id_ = lib_->require("AND2");
  or_id_ = lib_->require("OR2");
  xor_id_ = lib_->require("XOR2");
  nand_id_ = lib_->require("NAND2");
  nor_id_ = lib_->require("NOR2");
  xnor_id_ = lib_->require("XNOR2");
  mux_id_ = lib_->require("MUX2");
  dff_id_ = lib_->require("DFF");
  fa_id_ = lib_->require("FA");
  ha_id_ = lib_->require("HA");
}

NetId CircuitBuilder::input(const std::string& name) {
  return nl_.add_primary_input(name);
}

std::vector<NetId> CircuitBuilder::input_bus(const std::string& prefix,
                                             int width) {
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(input(strfmt("%s%d", prefix.c_str(), i)));
  }
  return bus;
}

void CircuitBuilder::output(NetId net) { nl_.mark_primary_output(net); }

void CircuitBuilder::output_bus(std::span<const NetId> nets) {
  for (NetId n : nets) output(n);
}

NetId CircuitBuilder::gate1(CellId cell, NetId a) {
  const NetId ins[] = {a};
  return nl_.gate(nl_.add_gate(cell, ins)).outputs[0];
}

NetId CircuitBuilder::gate2(CellId cell, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return nl_.gate(nl_.add_gate(cell, ins)).outputs[0];
}

NetId CircuitBuilder::not_(NetId a) { return gate1(not_id_, a); }
NetId CircuitBuilder::and2(NetId a, NetId b) { return gate2(and_id_, a, b); }
NetId CircuitBuilder::or2(NetId a, NetId b) { return gate2(or_id_, a, b); }
NetId CircuitBuilder::xor2(NetId a, NetId b) { return gate2(xor_id_, a, b); }
NetId CircuitBuilder::nand2(NetId a, NetId b) { return gate2(nand_id_, a, b); }
NetId CircuitBuilder::nor2(NetId a, NetId b) { return gate2(nor_id_, a, b); }
NetId CircuitBuilder::xnor2(NetId a, NetId b) { return gate2(xnor_id_, a, b); }

NetId CircuitBuilder::mux(NetId a, NetId b, NetId sel) {
  const NetId ins[] = {a, b, sel};
  return nl_.gate(nl_.add_gate(mux_id_, ins)).outputs[0];
}

namespace {
template <typename F>
NetId tree(std::span<const NetId> xs, F&& combine) {
  assert(!xs.empty());
  std::vector<NetId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine(level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}
}  // namespace

NetId CircuitBuilder::and_n(std::span<const NetId> xs) {
  return tree(xs, [this](NetId a, NetId b) { return and2(a, b); });
}
NetId CircuitBuilder::or_n(std::span<const NetId> xs) {
  return tree(xs, [this](NetId a, NetId b) { return or2(a, b); });
}
NetId CircuitBuilder::xor_n(std::span<const NetId> xs) {
  return tree(xs, [this](NetId a, NetId b) { return xor2(a, b); });
}

NetId CircuitBuilder::dff(NetId d) { return gate1(dff_id_, d); }

std::vector<NetId> CircuitBuilder::dff_bus(std::span<const NetId> d) {
  std::vector<NetId> q;
  q.reserve(d.size());
  for (NetId n : d) q.push_back(dff(n));
  return q;
}

std::pair<std::vector<NetId>, NetId> CircuitBuilder::ripple_add(
    std::span<const NetId> a, std::span<const NetId> b, NetId carry_in) {
  assert(a.size() == b.size());
  std::vector<NetId> sum;
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId ins[] = {a[i], b[i], carry};
    const GateId fa = nl_.add_gate(fa_id_, ins);
    carry = nl_.gate(fa).outputs[0];
    sum.push_back(nl_.gate(fa).outputs[1]);
  }
  return {std::move(sum), carry};
}

std::pair<std::vector<NetId>, NetId> CircuitBuilder::increment(
    std::span<const NetId> a, NetId carry_in) {
  std::vector<NetId> sum;
  NetId carry = carry_in;
  for (const NetId bit : a) {
    const NetId ins[] = {bit, carry};
    const GateId ha = nl_.add_gate(ha_id_, ins);
    carry = nl_.gate(ha).outputs[0];
    sum.push_back(nl_.gate(ha).outputs[1]);
  }
  return {std::move(sum), carry};
}

NetId CircuitBuilder::func(std::uint64_t tt, std::span<const NetId> vars) {
  const int n = static_cast<int>(vars.size());
  assert(n >= 1 && n <= 6);
  const std::uint64_t mask =
      n == 6 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (1u << n)) - 1);
  tt &= mask;
  // Base cases on 1 variable.
  if (n == 1) {
    switch (tt) {
      case 0x0: return and2(vars[0], not_(vars[0]));  // constant 0
      case 0x1: return not_(vars[0]);
      case 0x2: return or2(vars[0], vars[0]);  // buffered copy
      default: return or2(vars[0], not_(vars[0]));  // constant 1
    }
  }
  const int var = n - 1;
  const std::uint32_t half = 1u << var;
  const std::uint64_t lo_mask = (std::uint64_t{1} << half) - 1;
  const std::uint64_t tt0 = tt & lo_mask;
  const std::uint64_t tt1 = (tt >> half) & lo_mask;
  const auto sub = vars.subspan(0, static_cast<std::size_t>(var));
  if (tt0 == tt1) return func(tt0, sub);
  const std::uint64_t full = lo_mask;
  // Simplified Shannon forms avoid materializing constants.
  if (tt0 == 0) {
    if (tt1 == full) return or2(vars[var], vars[var]);
    return and2(vars[var], func(tt1, sub));
  }
  if (tt1 == 0) return and2(not_(vars[var]), func(tt0, sub));
  if (tt0 == full) return or2(not_(vars[var]), func(tt1, sub));
  if (tt1 == full) return or2(vars[var], func(tt0, sub));
  return mux(func(tt1, sub), func(tt0, sub), vars[var]);
}

std::vector<NetId> CircuitBuilder::sbox4(std::span<const NetId> in, Rng& rng) {
  assert(in.size() == 4);
  std::vector<NetId> out;
  for (int k = 0; k < 4; ++k) {
    // A random, balanced-ish 4-input function per output bit.
    const std::uint64_t tt = rng.next() & 0xFFFF;
    out.push_back(func(tt == 0 || tt == 0xFFFF ? 0x6996u : tt, in));
  }
  return out;
}

std::vector<NetId> CircuitBuilder::decoder(std::span<const NetId> sel) {
  const int n = static_cast<int>(sel.size());
  std::vector<NetId> inv;
  for (NetId s : sel) inv.push_back(not_(s));
  std::vector<NetId> out;
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    std::vector<NetId> terms;
    for (int i = 0; i < n; ++i) {
      terms.push_back(((m >> i) & 1u) ? sel[static_cast<std::size_t>(i)]
                                      : inv[static_cast<std::size_t>(i)]);
    }
    out.push_back(and_n(terms));
  }
  return out;
}

std::vector<NetId> CircuitBuilder::priority_grant(
    std::span<const NetId> requests) {
  std::vector<NetId> grant;
  NetId none_above;  // "no higher-priority request"
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i == 0) {
      grant.push_back(or2(requests[0], requests[0]));
      none_above = not_(requests[0]);
    } else {
      grant.push_back(and2(requests[i], none_above));
      if (i + 1 < requests.size()) {
        none_above = and2(none_above, not_(requests[i]));
      }
    }
  }
  return grant;
}

NetId CircuitBuilder::equals(std::span<const NetId> a,
                             std::span<const NetId> b) {
  assert(a.size() == b.size());
  std::vector<NetId> bits;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits.push_back(xnor2(a[i], b[i]));
  }
  return and_n(bits);
}

std::vector<NetId> CircuitBuilder::mux_bus(std::span<const NetId> a,
                                           std::span<const NetId> b,
                                           NetId sel) {
  assert(a.size() == b.size());
  std::vector<NetId> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(mux(a[i], b[i], sel));
  }
  return out;
}

std::vector<NetId> CircuitBuilder::rotate_left(std::span<const NetId> a,
                                               std::span<const NetId> amount) {
  std::vector<NetId> cur(a.begin(), a.end());
  const std::size_t n = cur.size();
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const std::size_t shift = (std::size_t{1} << stage) % n;
    std::vector<NetId> rotated(n);
    for (std::size_t i = 0; i < n; ++i) {
      rotated[(i + shift) % n] = cur[i];
    }
    cur = mux_bus(rotated, cur, amount[stage]);
  }
  return cur;
}

std::vector<NetId> CircuitBuilder::xor_bus(std::span<const NetId> a,
                                           std::span<const NetId> b) {
  assert(a.size() == b.size());
  std::vector<NetId> out;
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(xor2(a[i], b[i]));
  return out;
}

NetId CircuitBuilder::opaque_copy(NetId a, NetId ctrl) {
  // mux(ctrl ? a : a): functionally `a`, structurally control-dependent.
  return mux(a, a, ctrl);
}

}  // namespace dfmres
