#pragma once

#include <span>
#include <string_view>

#include "src/netlist/netlist.hpp"
#include "src/util/status.hpp"

namespace dfmres {

/// Names of the 12 benchmark blocks used in the paper's evaluation
/// (OpenCores blocks and OpenSPARC T1 logic blocks). The originals'
/// RTL is not redistributable here, so each name maps to a deterministic
/// structural generator that reproduces the block's character — datapath
/// widths, S-boxes, crossbars, ALUs, priority/trap logic — at roughly
/// 5-10x reduced gate count so that complete ATPG (undetectability
/// proofs) stays tractable on one machine. See DESIGN.md, substitutions.
[[nodiscard]] std::span<const std::string_view> benchmark_names();

/// Builds the named benchmark over the generic library; an unknown name
/// yields a not_found status listing the valid names.
[[nodiscard]] Expected<Netlist> build_benchmark(std::string_view name);

/// The ISCAS-85 c17 circuit (6 NAND2 gates), handy for tests and the
/// quickstart example.
[[nodiscard]] Netlist build_c17();

}  // namespace dfmres
