#pragma once

#include <cstdint>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/route/router.hpp"

namespace dfmres {

/// Static timing and power figures of a placed-and-routed netlist. Only
/// ever used *relatively* (resynthesized vs. original, the paper's Delay
/// and Power columns), never as absolute silicon numbers.
struct TimingPower {
  double critical_delay = 0.0;   ///< ns, worst source-to-observe path
  double dynamic_power = 0.0;    ///< relative units
  double leakage_power = 0.0;    ///< relative units
  std::vector<double> arrival;   ///< per net slot, ns

  [[nodiscard]] double total_power() const {
    return dynamic_power + leakage_power;
  }
};

struct StaOptions {
  double wire_cap_per_gcell = 0.0015;  ///< pF of routed wire per gcell
  std::uint64_t activity_seed = 7;     ///< random vectors for switching
  /// Clock-tree + internal flop power per sequential cell (the clock
  /// toggles every cycle, so flops dominate block power the way they do
  /// in real full-scan designs).
  double clock_power_per_flop = 130.0;
};

/// Topological arrival-time analysis with a lumped-load delay model
/// (intrinsic + drive resistance x load capacitance) plus a switching-
/// activity power estimate from 64 random patterns.
[[nodiscard]] TimingPower analyze_timing_power(const Netlist& nl,
                                               const RoutingResult& routes,
                                               const StaOptions& options = {});

}  // namespace dfmres
