#include "src/sta/sta.hpp"

#include <algorithm>
#include <bit>

#include "src/sim/parallel_sim.hpp"
#include "src/util/rng.hpp"

namespace dfmres {

TimingPower analyze_timing_power(const Netlist& nl,
                                 const RoutingResult& routes,
                                 const StaOptions& options) {
  TimingPower out;
  out.arrival.assign(nl.net_capacity(), 0.0);

  const auto wire_cap = [&](NetId net) {
    return options.wire_cap_per_gcell * routes.nets[net.value()].wirelength;
  };
  const auto load_of = [&](NetId net) {
    double cap = wire_cap(net);
    for (const PinRef& sink : nl.net(net).sinks) {
      cap += nl.cell_of(sink.gate).input_cap;
    }
    return cap;
  };

  const CombView view = CombView::build(nl);
  // Launch arrivals: primary inputs at 0, flop outputs after clk->q.
  for (NetId src : view.sources) {
    const auto& net = nl.net(src);
    out.arrival[src.value()] =
        net.has_gate_driver() ? nl.cell_of(net.driver_gate).intrinsic_delay
                              : 0.0;
  }
  for (GateId g : view.order) {
    const auto& gate = nl.gate(g);
    const CellSpec& cell = nl.cell_of(g);
    double in_arrival = 0.0;
    for (NetId in : gate.fanin) {
      in_arrival = std::max(in_arrival, out.arrival[in.value()]);
    }
    for (NetId o : gate.outputs) {
      out.arrival[o.value()] =
          in_arrival + cell.intrinsic_delay + cell.drive_res * load_of(o);
    }
  }
  for (NetId obs : view.observe) {
    out.critical_delay = std::max(out.critical_delay,
                                  out.arrival[obs.value()]);
  }

  // Switching activity from 64 random vectors: toggle probability of a
  // net between two independent vectors is 2p(1-p).
  ParallelSimulator sim(nl, view);
  Rng rng(options.activity_seed);
  sim.randomize_sources(rng);
  sim.run();
  for (NetId net : nl.live_nets()) {
    const double p =
        static_cast<double>(std::popcount(sim.value(net))) / 64.0;
    const double activity = 2.0 * p * (1.0 - p);
    out.dynamic_power += activity * load_of(net) * 100.0;
    const auto& n = nl.net(net);
    if (n.has_gate_driver()) {
      out.dynamic_power += activity * nl.cell_of(n.driver_gate).sw_energy;
    }
  }
  for (GateId g : nl.live_gates()) {
    out.leakage_power += nl.cell_of(g).leakage;
    if (nl.cell_of(g).sequential) {
      out.dynamic_power += options.clock_power_per_flop;
    }
  }
  return out;
}

}  // namespace dfmres
