#include "src/atpg/values.hpp"

namespace dfmres {

V3 eval_cell_v3(const CellSpec& cell, int output, std::span<const V3> inputs) {
  // Collect X positions; enumerate their assignments.
  std::uint32_t base = 0;
  std::uint32_t x_positions[kMaxCellInputs];
  int num_x = 0;
  for (int i = 0; i < cell.num_inputs; ++i) {
    switch (inputs[static_cast<std::size_t>(i)]) {
      case V3::One: base |= 1u << i; break;
      case V3::Zero: break;
      case V3::X: x_positions[num_x++] = static_cast<std::uint32_t>(i); break;
    }
  }
  bool first = true;
  bool value = false;
  for (std::uint32_t m = 0; m < (1u << num_x); ++m) {
    std::uint32_t pattern = base;
    for (int k = 0; k < num_x; ++k) {
      if ((m >> k) & 1u) pattern |= 1u << x_positions[k];
    }
    const bool v = cell.eval(output, pattern);
    if (first) {
      value = v;
      first = false;
    } else if (v != value) {
      return V3::X;
    }
  }
  return v3_of(value);
}

}  // namespace dfmres
