#pragma once

#include <cstdint>
#include <span>

#include "src/library/cell.hpp"

namespace dfmres {

/// Three-valued logic for test generation.
enum class V3 : std::uint8_t { Zero = 0, One = 1, X = 2 };

[[nodiscard]] constexpr V3 v3_of(bool b) { return b ? V3::One : V3::Zero; }
[[nodiscard]] constexpr bool is_definite(V3 v) { return v != V3::X; }
[[nodiscard]] constexpr V3 v3_not(V3 v) {
  if (v == V3::X) return V3::X;
  return v == V3::One ? V3::Zero : V3::One;
}

/// Composite good/faulty value (five-valued algebra: 0, 1, X, D = 1/0,
/// D' = 0/1, plus partially-unknown mixtures).
struct V5 {
  V3 good = V3::X;
  V3 faulty = V3::X;

  [[nodiscard]] bool is_d() const {
    return good == V3::One && faulty == V3::Zero;
  }
  [[nodiscard]] bool is_dbar() const {
    return good == V3::Zero && faulty == V3::One;
  }
  [[nodiscard]] bool has_fault_effect() const { return is_d() || is_dbar(); }

  friend bool operator==(V5, V5) = default;
};

/// Three-valued evaluation of one cell output: enumerate the X inputs
/// (cells have at most 4 inputs) and collapse.
[[nodiscard]] V3 eval_cell_v3(const CellSpec& cell, int output,
                              std::span<const V3> inputs);

}  // namespace dfmres
