// AVX2 kernel instantiation. This translation unit is the only one in
// the atpg library compiled with -mavx2 (see src/atpg/CMakeLists.txt);
// nothing here runs unless the runtime dispatcher confirmed cpuid
// support, so the vector instructions can never leak onto older CPUs.
// When the toolchain lacks the flag the TU still compiles — __AVX2__ is
// unset, the provider returns null, and dispatch falls back to the
// portable kernel of the same width.

#include "src/atpg/fault_sim_kernel.hpp"

#if defined(__AVX2__)
#include "src/atpg/fault_sim_kernel_impl.hpp"
#include "src/sim/sim_word.hpp"
#endif

namespace dfmres::fsim {

const KernelOps* avx2_kernel_ops() {
#if defined(__AVX2__)
  static const KernelOps ops = make_kernel_ops<Avx2Word>("avx2");
  return &ops;
#else
  return nullptr;
#endif
}

}  // namespace dfmres::fsim
