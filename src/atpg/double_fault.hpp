#pragma once

#include <vector>

#include "src/atpg/engine.hpp"

namespace dfmres {

/// The baseline the paper contrasts against (Section I, refs [14][15]):
/// instead of resynthesizing away the undetectable faults, generate
/// additional tests for *double faults* consisting of an undetectable
/// fault plus a structurally adjacent detectable fault, improving the
/// coverage of the subcircuits that contain undetectable faults.
struct DoubleFaultTarget {
  std::uint32_t undetectable;  ///< index into the fault universe
  std::uint32_t detectable;    ///< adjacent detectable fault index
};

/// Enumerates (undetectable, adjacent-detectable) pairs: the two faults
/// must correspond to the same gate or to driver/sink-adjacent gates
/// (the paper's structural adjacency). `max_per_fault` bounds the pairs
/// per undetectable fault to keep the target list proportional.
[[nodiscard]] std::vector<DoubleFaultTarget> enumerate_double_faults(
    const Netlist& nl, const FaultUniverse& universe,
    std::span<const FaultStatus> status, std::size_t max_per_fault = 4);

/// Fraction of double-fault targets detected by a test set. A test
/// detects the pair when, with *both* defects present, some observation
/// point differs from the good machine.
struct DoubleFaultCoverage {
  std::size_t covered = 0;
  std::size_t total = 0;

  [[nodiscard]] double fraction() const {
    return total == 0 ? 1.0
                      : static_cast<double>(covered) /
                            static_cast<double>(total);
  }
};

[[nodiscard]] DoubleFaultCoverage evaluate_double_fault_coverage(
    const Netlist& nl, const FaultUniverse& universe, const UdfmMap& udfm,
    std::span<const DoubleFaultTarget> targets,
    std::span<const TestPattern> tests);

/// Greedily augments `tests` with random patterns until the double-fault
/// coverage reaches `goal` or `max_new` extra tests were added; returns
/// the number of tests added. This is the test-set growth the paper
/// calls "excessive" and avoids via resynthesis.
std::size_t augment_tests_for_double_faults(
    const Netlist& nl, const FaultUniverse& universe, const UdfmMap& udfm,
    std::span<const DoubleFaultTarget> targets, double goal,
    std::size_t max_new, std::uint64_t seed, std::vector<TestPattern>* tests);

}  // namespace dfmres
