// AVX-512 kernel instantiation; mirrors fault_sim_kernel_avx2.cpp but
// for the -mavx512f translation unit (one zmm register per net slot).

#include "src/atpg/fault_sim_kernel.hpp"

#if defined(__AVX512F__)
#include "src/atpg/fault_sim_kernel_impl.hpp"
#include "src/sim/sim_word.hpp"
#endif

namespace dfmres::fsim {

const KernelOps* avx512_kernel_ops() {
#if defined(__AVX512F__)
  static const KernelOps ops = make_kernel_ops<Avx512Word>("avx512");
  return &ops;
#else
  return nullptr;
#endif
}

}  // namespace dfmres::fsim
