#pragma once

#include <optional>
#include <utility>
#include <span>
#include <vector>

#include "src/atpg/excitation.hpp"
#include "src/atpg/values.hpp"
#include "src/netlist/netlist.hpp"
#include "src/util/cancel.hpp"

namespace dfmres {

/// PODEM test generator over the combinational (full-scan) view.
///
/// Handles every fault model through condition cubes: the engine
/// justifies the excitation literals on the good machine, forces the
/// victim to its faulty value, and propagates the composite D value to an
/// observation point, branching only on sources (PIs and flop outputs).
/// The search is complete: exhausting it proves undetectability (the
/// paper's U set); hitting the backtrack limit yields Aborted, which is
/// never counted as undetectable.
class Podem {
 public:
  struct Config {
    long backtrack_limit = 50000;
    /// Cooperative cancellation, polled every 64 backtracks inside the
    /// search loop; an expired token yields Outcome::Aborted (never
    /// Undetectable — a cut-short search proves nothing).
    const CancelToken* cancel = nullptr;
  };

  enum class Outcome { Detected, Undetectable, Aborted };

  Podem(const Netlist& nl, const CombView& view, Config config);
  Podem(const Netlist& nl, const CombView& view) : Podem(nl, view, Config{}) {}

  /// Attempts to detect one excitation (frame-1 literals only; frame-0
  /// literals are a separate justify() call). On success `*test`
  /// receives one V3 per source (X = free).
  Outcome detect(const Excitation& excitation, std::vector<V3>* test);

  /// Justifies a set of (frame-agnostic) literals with no propagation
  /// requirement; used for the initializing pattern of two-frame faults.
  Outcome justify(std::span<const CondLiteral> lits, std::vector<V3>* test);

  [[nodiscard]] const CombView& view() const { return view_; }

  /// Total backtracks across every detect/justify call on this instance
  /// (instrumentation for AtpgCounters).
  [[nodiscard]] std::uint64_t total_backtracks() const {
    return total_backtracks_;
  }

 private:
  struct Objective {
    NetId net;
    bool value;
  };
  struct Decision {
    std::size_t source;  // ordinal in view.sources
    bool value;
    bool flipped;
  };

  Outcome search(std::span<const CondLiteral> lits, const Excitation* exc,
                 std::vector<V3>* test);

  [[nodiscard]] V3 eval_gate(GateId g, int out) const;
  void simulate_good();
  /// Incremental decision handling: assigning a source propagates events
  /// through its fanout and records an undo trail. Propagation is pruned
  /// to the gates marked by build_relevant — everything else is dead to
  /// the current search.
  void assign_source(std::size_t source, V3 v);
  void undo_last_assignment();
  /// Collects the victim's fanout cone (the only region where faulty
  /// values can differ from good ones).
  void build_cone(NetId victim);
  /// Marks the nets/gates the current search can ever read: the victim
  /// cone (outputs and side inputs), the condition literals, and their
  /// backward closure over combinational drivers. Values outside this
  /// set are never consulted by the search, so event propagation skips
  /// them — a pure wall-clock pruning with identical outcomes.
  void build_relevant(std::span<const CondLiteral> lits, const Excitation* exc);
  [[nodiscard]] V3 faulty_of(NetId n) const;
  /// Re-simulates the faulty machine over the victim cone and records
  /// whether a fault effect reached an observation point in observed_.
  void simulate_faulty(const Excitation& exc, V3 excited);
  /// All literals hold / definitely broken / undecided on good values.
  [[nodiscard]] V3 excitation_state(std::span<const CondLiteral> lits) const;
  [[nodiscard]] bool x_path_exists(NetId victim);
  [[nodiscard]] std::optional<Objective> pick_objective(
      std::span<const CondLiteral> lits, const Excitation* exc);
  /// Maps an objective to a source assignment, or nullopt on dead end.
  [[nodiscard]] std::optional<Decision> backtrace(Objective obj) const;

  const Netlist& nl_;
  const CombView& view_;
  Config config_;
  std::vector<V5> value_;           // per net slot
  std::vector<V3> source_assign_;   // per source ordinal
  std::vector<std::int32_t> source_ordinal_;  // net slot -> ordinal or -1
  // Ternary LUTs: lut_[cell][output][base-3 input index].
  std::vector<std::array<std::vector<std::uint8_t>, 2>> lut_;
  std::vector<std::uint32_t> topo_pos_;  // gate slot -> topo position
  // Victim-cone state (epoch-stamped to avoid clearing).
  std::vector<GateId> cone_gates_;
  std::vector<std::uint32_t> in_cone_net_;
  std::vector<std::uint32_t> cone_seen_gate_;
  std::uint32_t cone_epoch_ = 0;
  std::vector<std::uint32_t> visited_net_;
  std::uint32_t visit_epoch_ = 0;
  // Relevant set of the current search (see build_relevant).
  std::vector<std::uint32_t> relevant_net_;
  std::vector<std::uint32_t> relevant_gate_;
  std::uint32_t relevant_epoch_ = 0;
  bool observed_ = false;  // set by simulate_faulty
  std::vector<NetId> scratch_queue_;
  std::vector<Decision> stack_;  // decision stack, reused across searches
  // Min-heap buffer for assign_source's event propagation (reused).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> event_heap_;
  std::vector<bool> observe_flag_;  // net slot -> is observation point
  struct TrailEntry {
    NetId net;
    V3 old_good;
  };
  std::vector<TrailEntry> trail_;
  std::vector<std::size_t> trail_marks_;
  std::uint64_t total_backtracks_ = 0;
};

}  // namespace dfmres
