#include "src/atpg/fault_sim.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "src/atpg/fault_sim_kernel.hpp"
#include "src/util/trace.hpp"

namespace dfmres {
namespace {

SimBaseline build_baseline_over(std::shared_ptr<const DenseView> dv,
                                std::span<const TestPattern> seeds,
                                std::uint64_t random_seed,
                                int random_batches) {
  const fsim::KernelOps* ops = fsim::active_kernel_ops();
  const std::size_t capacity = 64 * static_cast<std::size_t>(ops->words);
  SimBaseline out;
  out.num_patterns = seeds.size();
  out.frame_width = dv->sources.size();
  out.seeds_hash = seed_tests_hash(seeds);
  out.words = ops->words;
  std::vector<std::uint64_t> src0, src1;
  for (std::size_t first = 0; first < seeds.size(); first += capacity) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(seeds.size() - first, capacity));
    GoodFrames gf;
    ops->simulate_batch(*dv, seeds, first, lanes, &gf, src0, src1);
    out.batches.push_back(std::move(gf));
  }
  // Phase-1 random batches: draw exactly as the engine does (64 pattern
  // pairs per engine batch, frame0 then frame1) from a fresh rng at the
  // given seed — the draws are rng-sequential, so drawing every batch up
  // front leaves the identical stream — then simulate them packed
  // `words` engine batches per wide batch, matching the engine's own
  // wide chunking.
  out.random_seed = random_seed;
  out.random_batch_count = random_batches;
  Rng rng(random_seed);
  const std::size_t total = 64 * static_cast<std::size_t>(random_batches);
  for (std::size_t i = 0; i < total; ++i) {
    out.random_patterns.push_back({random_sim_frame(out.frame_width, rng),
                                   random_sim_frame(out.frame_width, rng)});
  }
  for (std::size_t first = 0; first < total; first += capacity) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(total - first, capacity));
    GoodFrames gf;
    ops->simulate_batch(*dv, out.random_patterns, first, lanes, &gf, src0,
                        src1);
    out.random_batches.push_back(std::move(gf));
  }
  out.view = std::move(dv);
  return out;
}

}  // namespace

std::vector<std::uint8_t> random_sim_frame(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& v : out) v = rng.flip() ? 1 : 0;
  return out;
}

std::uint64_t seed_tests_hash(std::span<const TestPattern> seeds) {
  // FNV-1a over pattern count, frame widths, and frame bytes in order.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  const auto mix_frame = [&](const std::vector<std::uint8_t>& f) {
    mix(f.size());
    for (std::uint8_t b : f) mix(b);
  };
  mix(seeds.size());
  for (const TestPattern& t : seeds) {
    mix_frame(t.frame0);
    mix_frame(t.frame1);
  }
  return h;
}

SimBaseline build_sim_baseline(const Netlist& nl,
                               std::span<const TestPattern> seeds,
                               std::uint64_t random_seed,
                               int random_batches) {
  if (seeds.empty()) return {};
  const CombView view = CombView::build(nl);
  return build_baseline_over(DenseView::build_shared(nl, view), seeds,
                             random_seed, random_batches);
}

void rebase_sim_baseline(SimBaseline& base, const Netlist& nl,
                         std::span<const TestPattern> seeds,
                         std::uint64_t random_seed, int random_batches) {
  if (seeds.empty()) {
    base.clear();
    return;
  }
  TraceSpan span("fsim.rebase", "fsim");
  const CombView view = CombView::build(nl);
  auto dv = DenseView::build_shared(nl, view);
  const fsim::KernelOps* ops = fsim::active_kernel_ops();
  // The random patterns are a function of (seed, frame width), so an
  // unchanged width keeps them valid through a fold; a changed random
  // configuration — or a changed SimWord width, which changes the frame
  // layout itself — forces the full rebuild below.
  if (base.valid() && base.seeds_hash == seed_tests_hash(seeds) &&
      base.num_patterns == seeds.size() &&
      base.frame_width == dv->sources.size() &&
      base.random_seed == random_seed &&
      base.random_batch_count == random_batches &&
      base.words == ops->words) {
    const CowPlan plan = build_cow_plan(*dv, *base.view);
    if (plan.valid) {
      if (span.active()) {
        span.arg("fold_dirty_nets", static_cast<int>(plan.dirty_nets.size()));
      }
      const std::size_t slots =
          static_cast<std::size_t>(dv->net_slots) * ops->words;
      const auto fold = [&](GoodFrames& gf) {
        // resize() zero-fills slots the old design did not have; the
        // plan marks all of them dirty anyway.
        gf.good0.resize(slots, 0);
        gf.good1.resize(slots, 0);
        ops->refresh_dirty(*dv, plan, gf.good0.data(), gf.good1.data());
      };
      for (GoodFrames& gf : base.batches) fold(gf);
      for (GoodFrames& gf : base.random_batches) fold(gf);
      base.view = std::move(dv);
      return;
    }
  }
  base = build_baseline_over(std::move(dv), seeds, random_seed,
                             random_batches);
}

CowPlan build_cow_plan(const DenseView& cand, const DenseView& base) {
  CowPlan plan;
  // The overlay contract needs identical source vectors (baseline frames
  // are reused without re-packing the scan loads).
  if (cand.sources != base.sources) return plan;

  const auto row_differs = [](const std::vector<std::uint32_t>& off_a,
                              const std::vector<std::uint32_t>& net_a,
                              const std::vector<std::uint32_t>& off_b,
                              const std::vector<std::uint32_t>& net_b,
                              std::uint32_t g) {
    const std::uint32_t ba = off_a[g], bb = off_b[g];
    const std::uint32_t la = off_a[g + 1] - ba, lb = off_b[g + 1] - bb;
    if (la != lb) return true;
    for (std::uint32_t i = 0; i < la; ++i) {
      if (net_a[ba + i] != net_b[bb + i]) return true;
    }
    return false;
  };

  // Seed set: gates that structurally differ between the two views.
  std::vector<std::uint8_t> gate_dirty(cand.gate_slots, 0);
  for (std::uint32_t g = 0; g < cand.gate_slots; ++g) {
    bool differs;
    if (g >= base.gate_slots) {
      differs = cand.cell[g] != nullptr;
    } else {
      differs = cand.cell[g] != base.cell[g] ||
                row_differs(cand.fanin_offset, cand.fanin_net,
                            base.fanin_offset, base.fanin_net, g) ||
                row_differs(cand.output_offset, cand.output_net,
                            base.output_offset, base.output_net, g);
    }
    if (!differs) continue;
    // An edited sequential gate changes a frame source; the overlay
    // replays sources verbatim, so bail out to full loads.
    if (cand.is_sequential[g] ||
        (g < base.gate_slots && base.cell[g] != nullptr &&
         base.is_sequential[g])) {
      return plan;
    }
    if (cand.cell[g] != nullptr) gate_dirty[g] = 1;
  }
  // The seeds themselves, before closure expansion, in candidate topo
  // order — the start set of the value-cutoff overlay replay.
  std::vector<std::uint8_t> seed_gate = gate_dirty;

  // Seed dirty nets: slots the baseline frames do not cover, nets whose
  // driver changed (covers gate removal), and outputs of dirty gates.
  plan.dirty.assign(cand.net_slots, 0);
  std::vector<std::uint32_t> worklist;
  const auto mark_net = [&](std::uint32_t n) {
    if (!plan.dirty[n]) {
      plan.dirty[n] = 1;
      worklist.push_back(n);
    }
  };
  for (std::uint32_t n = 0; n < cand.net_slots; ++n) {
    if (n >= base.net_slots || cand.driver[n] != base.driver[n]) {
      mark_net(n);
      // The overlay can read every other slot straight from the baseline
      // frames and let seed-gate evaluation decide what changed; these
      // it must preset (no baseline value, or newly undriven — the
      // full-load contract leaves unwritten slots at zero). Dead slots
      // are exempt: fault universes, observe sets, and fanout rows all
      // come from live nets only, so nothing ever reads their frames.
      if ((n >= base.net_slots || cand.driver[n] == DenseView::kNoDriver) &&
          cand.net_alive[n]) {
        plan.seed_nets.push_back(n);
      }
    }
  }
  for (std::uint32_t g = 0; g < cand.gate_slots; ++g) {
    if (!gate_dirty[g]) continue;
    for (std::uint32_t i = cand.output_offset[g];
         i < cand.output_offset[g + 1]; ++i) {
      mark_net(cand.output_net[i]);
    }
  }

  // Forward combinational closure: any gate reading a dirty net must be
  // re-evaluated, which dirties its outputs in turn. This is purely
  // structural — no functional-equivalence assumption — so clean slots
  // provably carry identical values in both designs.
  while (!worklist.empty()) {
    const std::uint32_t n = worklist.back();
    worklist.pop_back();
    for (std::uint32_t i = cand.fanout_offset[n]; i < cand.fanout_offset[n + 1];
         ++i) {
      const std::uint32_t gs = cand.fanout_gate[i];
      if (gate_dirty[gs]) continue;
      gate_dirty[gs] = 1;
      for (std::uint32_t o = cand.output_offset[gs];
           o < cand.output_offset[gs + 1]; ++o) {
        mark_net(cand.output_net[o]);
      }
    }
  }

  // Sources must stay clean (they are read from the baseline frames).
  for (std::uint32_t s : cand.sources) {
    if (plan.dirty[s]) return plan;
  }

  for (std::uint32_t n = 0; n < cand.net_slots; ++n) {
    if (plan.dirty[n]) plan.dirty_nets.push_back(n);
  }
  for (std::uint32_t gs : cand.order) {
    if (gate_dirty[gs]) plan.dirty_gates.push_back(gs);
    if (seed_gate[gs]) plan.seed_gates.push_back(gs);
  }
  plan.valid = true;
  return plan;
}

FaultSimulator::FaultSimulator(std::shared_ptr<const DenseView> view) {
  rebind(std::move(view));
}

FaultSimulator::FaultSimulator(const Netlist& nl, const CombView& view)
    : FaultSimulator(DenseView::build_shared(nl, view)) {}

void FaultSimulator::rebind(std::shared_ptr<const DenseView> view) {
  view_ = std::move(view);
  // The kernel is re-resolved per binding: a mode change between runs
  // (or a DFMRES_SIMD override in a child tool) takes effect here, and
  // every frame below is sized for the new kernel's W.
  ops_ = fsim::active_kernel_ops();
  const std::size_t net_slots = view_->net_slots;
  const std::size_t slots = net_slots * static_cast<std::size_t>(ops_->words);
  // assign() reuses capacity, so rebinding an arena slot to a
  // similar-sized netlist performs no allocation. Stamps must be zeroed
  // together with the epoch reset or stale stamps from a previous
  // binding could alias the restarted epoch numbers.
  good0_.assign(slots, 0);
  good1_.assign(slots, 0);
  ov0_.assign(slots, 0);
  ov1_.assign(slots, 0);
  ov_dirty_.assign(net_slots, 0);
  ov_dirty_list_.clear();
  faulty_.assign(slots, 0);
  stamp_.assign(net_slots, 0);
  epoch_ = 0;
  set_lanes(0);
  scheduled_.assign(view_->gate_slots, 0);
  // Event scratch left over from an interrupted query against a previous
  // binding would index into the wrong design — drop it with the rest of
  // the per-binding state.
  event_pos_.clear();
  event_gate_.clear();
  touched_gates_.clear();
  touched_nets_.clear();
  bind_own_frames();
  patterns_simulated_ = 0;
  detect_mask_calls_ = 0;
  propagation_events_ = 0;
  frame_bytes_materialized_ = 0;
  full_loads_ = 0;
  overlay_loads_ = 0;
  overlay_dirty_nets_ = 0;
  load_seconds_ = 0.0;
  cancel_ = nullptr;
}

void FaultSimulator::rebind(const Netlist& nl, const CombView& view) {
  rebind(DenseView::build_shared(nl, view));
}

int FaultSimulator::words() const { return ops_->words; }

int FaultSimulator::lane_capacity() const { return 64 * ops_->words; }

const char* FaultSimulator::kernel_name() const { return ops_->name; }

void FaultSimulator::bind_own_frames() {
  g0_ = good0_.data();
  g1_ = good1_.data();
  o0_ = nullptr;
  o1_ = nullptr;
  dirty_ = nullptr;
}

void FaultSimulator::set_lanes(std::size_t count) {
  lanes_ = static_cast<int>(
      std::min<std::size_t>(count, static_cast<std::size_t>(lane_capacity())));
  groups_ = (lanes_ + 63) / 64;
  for (int g = 0; g < kMaxSimWords; ++g) {
    const int rem = lanes_ - g * 64;
    lane_mask_[g] = rem >= 64 ? ~std::uint64_t{0}
                    : rem > 0 ? (std::uint64_t{1} << rem) - 1
                              : 0;
  }
}

void FaultSimulator::load(std::span<const TestPattern> tests,
                          std::size_t first, std::size_t count) {
  // One span per batch load (detect_mask itself is far too hot to trace
  // per call; the enclosing atpg.sweep span covers the query side).
  TraceSpan span("fsim.load", "fsim");
  if (span.active()) span.arg("lanes", static_cast<int>(count));
  const auto t0 = std::chrono::steady_clock::now();
  set_lanes(count);
  ops_->load(*this, tests, first, count);
  patterns_simulated_ += 2 * static_cast<std::uint64_t>(lanes_);
  ++full_loads_;
  frame_bytes_materialized_ += 2 * sizeof(std::uint64_t) *
                               static_cast<std::uint64_t>(ops_->words) *
                               static_cast<std::uint64_t>(view_->net_slots);
  load_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

void FaultSimulator::load_from(const FaultSimulator& other) {
  // Zero-copy adoption: alias whatever frames `other` has bound (its own
  // arrays after a full load, or baseline + overlay after a CoW load).
  // Frame layout is per-kernel, so the widths must agree; instances
  // rebound under the same global mode (the sweep contract) always do.
  assert(ops_->words == other.ops_->words);
  lanes_ = other.lanes_;
  groups_ = other.groups_;
  for (int g = 0; g < kMaxSimWords; ++g) lane_mask_[g] = other.lane_mask_[g];
  g0_ = other.g0_;
  g1_ = other.g1_;
  o0_ = other.o0_;
  o1_ = other.o1_;
  dirty_ = other.dirty_;
}

void FaultSimulator::load_baseline(const SimBaseline& base, const CowPlan& plan,
                                   std::size_t batch, std::size_t count) {
  load_overlay_frames(base.batches[batch], plan, count);
}

void FaultSimulator::load_baseline_random(const SimBaseline& base,
                                          const CowPlan& plan,
                                          std::size_t batch,
                                          std::size_t count) {
  load_overlay_frames(base.random_batches[batch], plan, count);
}

void FaultSimulator::load_overlay_frames(const GoodFrames& gf,
                                         const CowPlan& plan,
                                         std::size_t count) {
  TraceSpan span("fsim.load", "fsim");
  if (span.active()) span.arg("lanes", static_cast<int>(count));
  const auto t0 = std::chrono::steady_clock::now();
  set_lanes(count);
  ops_->load_overlay(*this, gf, plan, count);
  // Same pattern accounting as a full load: the batch's test frames are
  // (re)played against this design either way.
  patterns_simulated_ += 2 * static_cast<std::uint64_t>(lanes_);
  ++overlay_loads_;
  overlay_dirty_nets_ += ov_dirty_list_.size();
  frame_bytes_materialized_ +=
      2 * sizeof(std::uint64_t) * static_cast<std::uint64_t>(ops_->words) *
      static_cast<std::uint64_t>(ov_dirty_list_.size());
  load_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

void FaultSimulator::detect_masks(std::span<const Excitation> excitations,
                                  std::uint64_t* out) {
  ops_->detect(*this, excitations, out);
}

FaultSimulator& FaultSimArena::acquire(std::size_t index,
                                       std::shared_ptr<const DenseView> view) {
#ifndef NDEBUG
  // Slots must be acquired serially by the run's calling thread (the
  // vector resize below and the rebind are unsynchronized). Different
  // runs may live on different threads — slot 0 re-pins the owner.
  if (index == 0) {
    owner_ = std::this_thread::get_id();
  } else {
    assert(owner_ == std::this_thread::get_id() &&
           "FaultSimArena slots acquired from a different thread than the "
           "run master");
  }
#endif
  if (index >= slots_.size()) slots_.resize(index + 1);
  if (!slots_[index]) {
    slots_[index] = std::make_unique<FaultSimulator>(std::move(view));
  } else {
    slots_[index]->rebind(std::move(view));
  }
  return *slots_[index];
}

}  // namespace dfmres
