#include "src/atpg/fault_sim.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "src/sim/parallel_sim.hpp"
#include "src/util/trace.hpp"

namespace dfmres {

FaultSimulator::FaultSimulator(const Netlist& nl, const CombView& view)
    : nl_(&nl), view_(&view) {
  rebind(nl, view);
}

void FaultSimulator::rebind(const Netlist& nl, const CombView& view) {
  nl_ = &nl;
  view_ = &view;
  // assign() reuses capacity, so rebinding an arena slot to a
  // similar-sized netlist performs no allocation. Stamps must be zeroed
  // together with the epoch reset or stale stamps from a previous
  // binding could alias the restarted epoch numbers.
  good0_.assign(view.net_slots, 0);
  good1_.assign(view.net_slots, 0);
  faulty_.assign(view.net_slots, 0);
  stamp_.assign(view.net_slots, 0);
  epoch_ = 0;
  lanes_ = 0;
  topo_pos_.assign(nl.gate_capacity(), 0);
  scheduled_.assign(nl.gate_capacity(), 0);
  for (std::uint32_t i = 0; i < view.order.size(); ++i) {
    topo_pos_[view.order[i].value()] = i;
  }
  observe_flag_.assign(view.net_slots, 0);
  for (NetId obs : view.observe) observe_flag_[obs.value()] = 1;
  patterns_simulated_ = 0;
  detect_mask_calls_ = 0;
  propagation_events_ = 0;
  cancel_ = nullptr;
}

void FaultSimulator::load(std::span<const TestPattern> tests,
                          std::size_t first, std::size_t count) {
  // One span per batch load (detect_mask itself is far too hot to trace
  // per call; the enclosing atpg.sweep span covers the query side).
  TraceSpan span("fsim.load", "fsim");
  if (span.active()) span.arg("lanes", static_cast<int>(count));
  lanes_ = static_cast<int>(std::min<std::size_t>(count, 64));
  const std::size_t num_sources = view_->sources.size();
  std::vector<std::uint64_t> src0(num_sources, 0), src1(num_sources, 0);
  for (int lane = 0; lane < lanes_; ++lane) {
    const TestPattern& t = tests[first + lane];
    for (std::size_t s = 0; s < num_sources; ++s) {
      if (t.frame0[s]) src0[s] |= std::uint64_t{1} << lane;
      if (t.frame1[s]) src1[s] |= std::uint64_t{1} << lane;
    }
  }
  const auto run = [&](std::span<const std::uint64_t> src,
                       std::vector<std::uint64_t>& out) {
    for (std::size_t s = 0; s < num_sources; ++s) {
      out[view_->sources[s].value()] = src[s];
    }
    std::uint64_t ins[kMaxCellInputs];
    for (GateId g : view_->order) {
      const auto& gate = nl_->gate(g);
      const CellSpec& cell = nl_->cell_of(g);
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
        ins[i] = out[gate.fanin[i].value()];
      }
      for (int k = 0; k < cell.num_outputs; ++k) {
        out[gate.outputs[static_cast<std::size_t>(k)].value()] =
            ParallelSimulator::eval_cell(cell, k, {ins, gate.fanin.size()});
      }
    }
  };
  run(src0, good0_);
  run(src1, good1_);
  patterns_simulated_ += 2 * static_cast<std::uint64_t>(lanes_);
}

void FaultSimulator::load_from(const FaultSimulator& other) {
  lanes_ = other.lanes_;
  good0_ = other.good0_;
  good1_ = other.good1_;
}

std::uint64_t FaultSimulator::detect_mask(
    std::span<const Excitation> excitations) {
  if (cancel_expired(cancel_)) return 0;
  ++detect_mask_calls_;
  const std::uint64_t lane_mask =
      lanes_ == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << lanes_) - 1);
  std::uint64_t detected = 0;

  for (const Excitation& exc : excitations) {
    // Lanes where every condition literal holds and the victim's good
    // value opposes the forced value.
    std::uint64_t e = lane_mask;
    for (const CondLiteral& lit : exc.lits) {
      const std::uint64_t v = (lit.frame == 0 ? good0_ : good1_)[lit.net.value()];
      e &= lit.value ? v : ~v;
      if (e == 0) break;
    }
    if (e == 0) continue;
    const std::uint64_t victim_good = good1_[exc.victim.value()];
    e &= exc.faulty_value ? ~victim_good : victim_good;
    if (e == 0) continue;

    // Event-driven forward propagation of the flip (frame 1 only).
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      // Epoch wraparound: a stale stamp equal to the restarted epoch
      // would silently resurrect old faulty values, so clear the stamps
      // before reusing epoch numbers (once per ~4.3e9 excitations).
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    const auto fv_of = [&](NetId n) {
      return stamp_[n.value()] == epoch_ ? faulty_[n.value()]
                                         : good1_[n.value()];
    };
    const auto set_fv = [&](NetId n, std::uint64_t v) {
      faulty_[n.value()] = v;
      stamp_[n.value()] = epoch_;
      touched_nets_.push_back(n.value());
      ++propagation_events_;
    };
    touched_nets_.clear();
    set_fv(exc.victim, (victim_good & ~e) |
                           (exc.faulty_value ? e : std::uint64_t{0}));

    // Min-heap of gates by topological position (reused buffers; the
    // per-excitation allocations here used to dominate the malloc
    // profile of heavy resynthesis probes).
    event_heap_.clear();
    touched_gates_.clear();
    const auto schedule_sinks = [&](NetId n) {
      for (const PinRef& sink : nl_->net(n).sinks) {
        const std::uint32_t gs = sink.gate.value();
        if (nl_->cell_of(sink.gate).sequential) continue;
        if (!scheduled_[gs]) {
          scheduled_[gs] = 1;
          touched_gates_.push_back(gs);
          event_heap_.emplace_back(topo_pos_[gs], gs);
          std::push_heap(event_heap_.begin(), event_heap_.end(),
                         std::greater<>{});
        }
      }
    };
    schedule_sinks(exc.victim);
    while (!event_heap_.empty()) {
      const auto [pos, gs] = event_heap_.front();
      std::pop_heap(event_heap_.begin(), event_heap_.end(),
                    std::greater<>{});
      event_heap_.pop_back();
      const GateId g{gs};
      const auto& gate = nl_->gate(g);
      const CellSpec& cell = nl_->cell_of(g);
      std::uint64_t ins[kMaxCellInputs];
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
        ins[i] = fv_of(gate.fanin[i]);
      }
      for (int k = 0; k < cell.num_outputs; ++k) {
        const NetId out = gate.outputs[static_cast<std::size_t>(k)];
        const std::uint64_t nv =
            ParallelSimulator::eval_cell(cell, k, {ins, gate.fanin.size()});
        if (nv != fv_of(out)) {
          set_fv(out, nv);
          schedule_sinks(out);
        }
      }
    }
    for (std::uint32_t gs : touched_gates_) scheduled_[gs] = 0;

    // Detection at observation points: only nets stamped this epoch can
    // disagree with the good machine, so scan the touched set instead of
    // every observation point.
    for (std::uint32_t ns : touched_nets_) {
      if (observe_flag_[ns]) {
        detected |= (faulty_[ns] ^ good1_[ns]) & e;
      }
    }
    // The victim itself may be observed directly.
    if (nl_->net(exc.victim).is_primary_output) {
      detected |= (fv_of(exc.victim) ^ victim_good) & e;
    }
    if (detected == lane_mask) break;
  }
  return detected & lane_mask;
}

FaultSimulator& FaultSimArena::acquire(std::size_t index, const Netlist& nl,
                                       const CombView& view) {
  if (index >= slots_.size()) slots_.resize(index + 1);
  if (!slots_[index]) {
    slots_[index] = std::make_unique<FaultSimulator>(nl, view);
  } else {
    slots_[index]->rebind(nl, view);
  }
  return *slots_[index];
}

}  // namespace dfmres
