#include "src/atpg/fault_sim.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <limits>

#include "src/sim/parallel_sim.hpp"
#include "src/util/trace.hpp"

namespace dfmres {
namespace {

/// Packs tests[first..first+lanes) into per-source 64-bit lane words.
void pack_sources(const DenseView& v, std::span<const TestPattern> tests,
                  std::size_t first, int lanes,
                  std::vector<std::uint64_t>& src0,
                  std::vector<std::uint64_t>& src1) {
  const std::size_t num_sources = v.sources.size();
  src0.assign(num_sources, 0);
  src1.assign(num_sources, 0);
  for (int lane = 0; lane < lanes; ++lane) {
    const TestPattern& t = tests[first + static_cast<std::size_t>(lane)];
    for (std::size_t s = 0; s < num_sources; ++s) {
      if (t.frame0[s]) src0[s] |= std::uint64_t{1} << lane;
      if (t.frame1[s]) src1[s] |= std::uint64_t{1} << lane;
    }
  }
}

/// Full good-machine evaluation of one frame over the SoA view: writes
/// the source words, then every combinational gate output in topological
/// order. `out` must hold net_slots words; slots never written (dead or
/// undriven nets) keep their prior contents, so callers zero-fill once.
void eval_frame(const DenseView& v, std::span<const std::uint64_t> src,
                std::uint64_t* out) {
  for (std::size_t s = 0; s < v.sources.size(); ++s) {
    out[v.sources[s]] = src[s];
  }
  std::uint64_t ins[kMaxCellInputs];
  for (std::uint32_t gs : v.order) {
    const CellSpec& cell = *v.cell[gs];
    const std::uint32_t fb = v.fanin_offset[gs];
    const std::size_t nin = v.fanin_offset[gs + 1] - fb;
    for (std::size_t i = 0; i < nin; ++i) {
      ins[i] = out[v.fanin_net[fb + i]];
    }
    const std::uint32_t ob = v.output_offset[gs];
    for (int k = 0; k < cell.num_outputs; ++k) {
      out[v.output_net[ob + static_cast<std::uint32_t>(k)]] =
          ParallelSimulator::eval_cell(cell, k, {ins, nin});
    }
  }
}

/// Recomputes exactly the plan's dirty slots in place over full frame
/// arrays (the rebase fold): zero the dirty slots, then evaluate the
/// dirty gates in topological order. Clean inputs already hold correct
/// values; dirty inputs were either written by an earlier dirty gate or
/// are undriven and stay zero — the same contract a full eval_frame
/// leaves behind.
void refresh_dirty_slots(const DenseView& v, const CowPlan& plan,
                         std::uint64_t* f0, std::uint64_t* f1) {
  for (std::uint32_t n : plan.dirty_nets) {
    f0[n] = 0;
    f1[n] = 0;
  }
  std::uint64_t in0[kMaxCellInputs], in1[kMaxCellInputs];
  for (std::uint32_t gs : plan.dirty_gates) {
    const CellSpec& cell = *v.cell[gs];
    const std::uint32_t fb = v.fanin_offset[gs];
    const std::size_t nin = v.fanin_offset[gs + 1] - fb;
    for (std::size_t i = 0; i < nin; ++i) {
      const std::uint32_t n = v.fanin_net[fb + i];
      in0[i] = f0[n];
      in1[i] = f1[n];
    }
    const std::uint32_t ob = v.output_offset[gs];
    for (int k = 0; k < cell.num_outputs; ++k) {
      const std::uint32_t out =
          v.output_net[ob + static_cast<std::uint32_t>(k)];
      f0[out] = ParallelSimulator::eval_cell(cell, k, {in0, nin});
      f1[out] = ParallelSimulator::eval_cell(cell, k, {in1, nin});
    }
  }
}

/// Simulates patterns[first..first+lanes) over `dv` into one batch of
/// good frames.
GoodFrames simulate_batch(const DenseView& dv,
                          std::span<const TestPattern> patterns,
                          std::size_t first, int lanes,
                          std::vector<std::uint64_t>& src0,
                          std::vector<std::uint64_t>& src1) {
  GoodFrames gf;
  gf.lanes = lanes;
  gf.good0.assign(dv.net_slots, 0);
  gf.good1.assign(dv.net_slots, 0);
  pack_sources(dv, patterns, first, lanes, src0, src1);
  eval_frame(dv, src0, gf.good0.data());
  eval_frame(dv, src1, gf.good1.data());
  return gf;
}

SimBaseline build_baseline_over(std::shared_ptr<const DenseView> dv,
                                std::span<const TestPattern> seeds,
                                std::uint64_t random_seed,
                                int random_batches) {
  SimBaseline out;
  out.num_patterns = seeds.size();
  out.frame_width = dv->sources.size();
  out.seeds_hash = seed_tests_hash(seeds);
  std::vector<std::uint64_t> src0, src1;
  for (std::size_t first = 0; first < seeds.size(); first += 64) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(seeds.size() - first, 64));
    out.batches.push_back(
        simulate_batch(*dv, seeds, first, lanes, src0, src1));
  }
  // Phase-1 random batches: draw exactly as the engine does (64 pattern
  // pairs per batch, frame0 then frame1) from a fresh rng at the given
  // seed, and simulate them like the seed batches.
  out.random_seed = random_seed;
  Rng rng(random_seed);
  for (int b = 0; b < random_batches; ++b) {
    for (int lane = 0; lane < 64; ++lane) {
      out.random_patterns.push_back(
          {random_sim_frame(out.frame_width, rng),
           random_sim_frame(out.frame_width, rng)});
    }
    out.random_batches.push_back(simulate_batch(
        *dv, out.random_patterns, static_cast<std::size_t>(b) * 64, 64,
        src0, src1));
  }
  out.view = std::move(dv);
  return out;
}

}  // namespace

std::vector<std::uint8_t> random_sim_frame(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& v : out) v = rng.flip() ? 1 : 0;
  return out;
}

std::uint64_t seed_tests_hash(std::span<const TestPattern> seeds) {
  // FNV-1a over pattern count, frame widths, and frame bytes in order.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  const auto mix_frame = [&](const std::vector<std::uint8_t>& f) {
    mix(f.size());
    for (std::uint8_t b : f) mix(b);
  };
  mix(seeds.size());
  for (const TestPattern& t : seeds) {
    mix_frame(t.frame0);
    mix_frame(t.frame1);
  }
  return h;
}

SimBaseline build_sim_baseline(const Netlist& nl,
                               std::span<const TestPattern> seeds,
                               std::uint64_t random_seed,
                               int random_batches) {
  if (seeds.empty()) return {};
  const CombView view = CombView::build(nl);
  return build_baseline_over(DenseView::build_shared(nl, view), seeds,
                             random_seed, random_batches);
}

void rebase_sim_baseline(SimBaseline& base, const Netlist& nl,
                         std::span<const TestPattern> seeds,
                         std::uint64_t random_seed, int random_batches) {
  if (seeds.empty()) {
    base.clear();
    return;
  }
  TraceSpan span("fsim.rebase", "fsim");
  const CombView view = CombView::build(nl);
  auto dv = DenseView::build_shared(nl, view);
  // The random patterns are a function of (seed, frame width), so an
  // unchanged width keeps them valid through a fold; a changed random
  // configuration forces the full rebuild below.
  if (base.valid() && base.seeds_hash == seed_tests_hash(seeds) &&
      base.num_patterns == seeds.size() &&
      base.frame_width == dv->sources.size() &&
      base.random_seed == random_seed &&
      base.random_batches.size() == static_cast<std::size_t>(random_batches)) {
    const CowPlan plan = build_cow_plan(*dv, *base.view);
    if (plan.valid) {
      if (span.active()) {
        span.arg("fold_dirty_nets", static_cast<int>(plan.dirty_nets.size()));
      }
      const auto fold = [&](GoodFrames& gf) {
        // resize() zero-fills slots the old design did not have; the
        // plan marks all of them dirty anyway.
        gf.good0.resize(dv->net_slots, 0);
        gf.good1.resize(dv->net_slots, 0);
        refresh_dirty_slots(*dv, plan, gf.good0.data(), gf.good1.data());
      };
      for (GoodFrames& gf : base.batches) fold(gf);
      for (GoodFrames& gf : base.random_batches) fold(gf);
      base.view = std::move(dv);
      return;
    }
  }
  base = build_baseline_over(std::move(dv), seeds, random_seed,
                             random_batches);
}

CowPlan build_cow_plan(const DenseView& cand, const DenseView& base) {
  CowPlan plan;
  // The overlay contract needs identical source vectors (baseline frames
  // are reused without re-packing the scan loads).
  if (cand.sources != base.sources) return plan;

  const auto row_differs = [](const std::vector<std::uint32_t>& off_a,
                              const std::vector<std::uint32_t>& net_a,
                              const std::vector<std::uint32_t>& off_b,
                              const std::vector<std::uint32_t>& net_b,
                              std::uint32_t g) {
    const std::uint32_t ba = off_a[g], bb = off_b[g];
    const std::uint32_t la = off_a[g + 1] - ba, lb = off_b[g + 1] - bb;
    if (la != lb) return true;
    for (std::uint32_t i = 0; i < la; ++i) {
      if (net_a[ba + i] != net_b[bb + i]) return true;
    }
    return false;
  };

  // Seed set: gates that structurally differ between the two views.
  std::vector<std::uint8_t> gate_dirty(cand.gate_slots, 0);
  for (std::uint32_t g = 0; g < cand.gate_slots; ++g) {
    bool differs;
    if (g >= base.gate_slots) {
      differs = cand.cell[g] != nullptr;
    } else {
      differs = cand.cell[g] != base.cell[g] ||
                row_differs(cand.fanin_offset, cand.fanin_net,
                            base.fanin_offset, base.fanin_net, g) ||
                row_differs(cand.output_offset, cand.output_net,
                            base.output_offset, base.output_net, g);
    }
    if (!differs) continue;
    // An edited sequential gate changes a frame source; the overlay
    // replays sources verbatim, so bail out to full loads.
    if (cand.is_sequential[g] ||
        (g < base.gate_slots && base.cell[g] != nullptr &&
         base.is_sequential[g])) {
      return plan;
    }
    if (cand.cell[g] != nullptr) gate_dirty[g] = 1;
  }
  // The seeds themselves, before closure expansion, in candidate topo
  // order — the start set of the value-cutoff overlay replay.
  std::vector<std::uint8_t> seed_gate = gate_dirty;

  // Seed dirty nets: slots the baseline frames do not cover, nets whose
  // driver changed (covers gate removal), and outputs of dirty gates.
  plan.dirty.assign(cand.net_slots, 0);
  std::vector<std::uint32_t> worklist;
  const auto mark_net = [&](std::uint32_t n) {
    if (!plan.dirty[n]) {
      plan.dirty[n] = 1;
      worklist.push_back(n);
    }
  };
  for (std::uint32_t n = 0; n < cand.net_slots; ++n) {
    if (n >= base.net_slots || cand.driver[n] != base.driver[n]) {
      mark_net(n);
      // The overlay can read every other slot straight from the baseline
      // frames and let seed-gate evaluation decide what changed; these
      // it must preset (no baseline value, or newly undriven — the
      // full-load contract leaves unwritten slots at zero). Dead slots
      // are exempt: fault universes, observe sets, and fanout rows all
      // come from live nets only, so nothing ever reads their frames.
      if ((n >= base.net_slots || cand.driver[n] == DenseView::kNoDriver) &&
          cand.net_alive[n]) {
        plan.seed_nets.push_back(n);
      }
    }
  }
  for (std::uint32_t g = 0; g < cand.gate_slots; ++g) {
    if (!gate_dirty[g]) continue;
    for (std::uint32_t i = cand.output_offset[g];
         i < cand.output_offset[g + 1]; ++i) {
      mark_net(cand.output_net[i]);
    }
  }

  // Forward combinational closure: any gate reading a dirty net must be
  // re-evaluated, which dirties its outputs in turn. This is purely
  // structural — no functional-equivalence assumption — so clean slots
  // provably carry identical values in both designs.
  while (!worklist.empty()) {
    const std::uint32_t n = worklist.back();
    worklist.pop_back();
    for (std::uint32_t i = cand.fanout_offset[n]; i < cand.fanout_offset[n + 1];
         ++i) {
      const std::uint32_t gs = cand.fanout_gate[i];
      if (gate_dirty[gs]) continue;
      gate_dirty[gs] = 1;
      for (std::uint32_t o = cand.output_offset[gs];
           o < cand.output_offset[gs + 1]; ++o) {
        mark_net(cand.output_net[o]);
      }
    }
  }

  // Sources must stay clean (they are read from the baseline frames).
  for (std::uint32_t s : cand.sources) {
    if (plan.dirty[s]) return plan;
  }

  for (std::uint32_t n = 0; n < cand.net_slots; ++n) {
    if (plan.dirty[n]) plan.dirty_nets.push_back(n);
  }
  for (std::uint32_t gs : cand.order) {
    if (gate_dirty[gs]) plan.dirty_gates.push_back(gs);
    if (seed_gate[gs]) plan.seed_gates.push_back(gs);
  }
  plan.valid = true;
  return plan;
}

FaultSimulator::FaultSimulator(std::shared_ptr<const DenseView> view) {
  rebind(std::move(view));
}

FaultSimulator::FaultSimulator(const Netlist& nl, const CombView& view)
    : FaultSimulator(DenseView::build_shared(nl, view)) {}

void FaultSimulator::rebind(std::shared_ptr<const DenseView> view) {
  view_ = std::move(view);
  const std::size_t net_slots = view_->net_slots;
  // assign() reuses capacity, so rebinding an arena slot to a
  // similar-sized netlist performs no allocation. Stamps must be zeroed
  // together with the epoch reset or stale stamps from a previous
  // binding could alias the restarted epoch numbers.
  good0_.assign(net_slots, 0);
  good1_.assign(net_slots, 0);
  ov0_.assign(net_slots, 0);
  ov1_.assign(net_slots, 0);
  ov_dirty_.assign(net_slots, 0);
  ov_dirty_list_.clear();
  faulty_.assign(net_slots, 0);
  stamp_.assign(net_slots, 0);
  epoch_ = 0;
  lanes_ = 0;
  scheduled_.assign(view_->gate_slots, 0);
  // Event scratch left over from an interrupted query against a previous
  // binding would index into the wrong design — drop it with the rest of
  // the per-binding state.
  event_heap_.clear();
  touched_gates_.clear();
  touched_nets_.clear();
  bind_own_frames();
  patterns_simulated_ = 0;
  detect_mask_calls_ = 0;
  propagation_events_ = 0;
  frame_bytes_materialized_ = 0;
  full_loads_ = 0;
  overlay_loads_ = 0;
  overlay_dirty_nets_ = 0;
  load_seconds_ = 0.0;
  cancel_ = nullptr;
}

void FaultSimulator::rebind(const Netlist& nl, const CombView& view) {
  rebind(DenseView::build_shared(nl, view));
}

void FaultSimulator::bind_own_frames() {
  g0_ = good0_.data();
  g1_ = good1_.data();
  o0_ = nullptr;
  o1_ = nullptr;
  dirty_ = nullptr;
}

void FaultSimulator::load(std::span<const TestPattern> tests,
                          std::size_t first, std::size_t count) {
  // One span per batch load (detect_mask itself is far too hot to trace
  // per call; the enclosing atpg.sweep span covers the query side).
  TraceSpan span("fsim.load", "fsim");
  if (span.active()) span.arg("lanes", static_cast<int>(count));
  const auto t0 = std::chrono::steady_clock::now();
  lanes_ = static_cast<int>(std::min<std::size_t>(count, 64));
  std::vector<std::uint64_t> src0, src1;
  pack_sources(*view_, tests, first, lanes_, src0, src1);
  eval_frame(*view_, src0, good0_.data());
  eval_frame(*view_, src1, good1_.data());
  bind_own_frames();
  patterns_simulated_ += 2 * static_cast<std::uint64_t>(lanes_);
  ++full_loads_;
  frame_bytes_materialized_ +=
      2 * sizeof(std::uint64_t) * static_cast<std::uint64_t>(view_->net_slots);
  load_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

void FaultSimulator::load_from(const FaultSimulator& other) {
  // Zero-copy adoption: alias whatever frames `other` has bound (its own
  // arrays after a full load, or baseline + overlay after a CoW load).
  lanes_ = other.lanes_;
  g0_ = other.g0_;
  g1_ = other.g1_;
  o0_ = other.o0_;
  o1_ = other.o1_;
  dirty_ = other.dirty_;
}

void FaultSimulator::load_baseline(const SimBaseline& base, const CowPlan& plan,
                                   std::size_t batch, std::size_t count) {
  load_overlay_frames(base.batches[batch], plan, count);
}

void FaultSimulator::load_baseline_random(const SimBaseline& base,
                                          const CowPlan& plan,
                                          std::size_t batch,
                                          std::size_t count) {
  load_overlay_frames(base.random_batches[batch], plan, count);
}

void FaultSimulator::load_overlay_frames(const GoodFrames& gf,
                                         const CowPlan& plan,
                                         std::size_t count) {
  TraceSpan span("fsim.load", "fsim");
  if (span.active()) span.arg("lanes", static_cast<int>(count));
  const auto t0 = std::chrono::steady_clock::now();
  const DenseView& v = *view_;
  lanes_ = static_cast<int>(std::min<std::size_t>(count, 64));
  assert(gf.lanes == lanes_);
  assert(plan.valid && plan.dirty.size() == v.net_slots);
  g0_ = gf.good0.data();
  g1_ = gf.good1.data();
  o0_ = ov0_.data();
  o1_ = ov1_.data();
  // Undo the previous batch's marks instead of clearing O(netlist).
  for (std::uint32_t n : ov_dirty_list_) ov_dirty_[n] = 0;
  ov_dirty_list_.clear();
  dirty_ = ov_dirty_.data();

  // Event-driven replay with value cutoff: re-evaluate the edited gates,
  // record an output slot only when its recomputed words differ from the
  // baseline frames, and wake a reader only for recorded slots. For a
  // function-preserving rewrite the wave dies at the region boundary, so
  // the materialized slots track the edit, not its structural fanout
  // cone. Soundness: a non-seed gate has identical pin rows in both
  // designs, so if its input slots carry the baseline values its stored
  // outputs are already correct.
  const auto mark = [&](std::uint32_t n, std::uint64_t w0, std::uint64_t w1) {
    if (!ov_dirty_[n]) {
      ov_dirty_[n] = 1;
      ov_dirty_list_.push_back(n);
    }
    ov0_[n] = w0;
    ov1_[n] = w1;
  };
  event_heap_.clear();
  touched_gates_.clear();
  const auto schedule = [&](std::uint32_t gs) {
    if (!scheduled_[gs]) {
      scheduled_[gs] = 1;
      touched_gates_.push_back(gs);
      event_heap_.emplace_back(v.topo_pos[gs], gs);
      std::push_heap(event_heap_.begin(), event_heap_.end(),
                     std::greater<>{});
    }
  };
  // Slots the baseline frames cannot answer for start at 0 — the value a
  // full load leaves in slots nothing writes — and wake their readers;
  // a live driver (always a seed gate) overwrites them below.
  for (std::uint32_t n : plan.seed_nets) {
    mark(n, 0, 0);
    for (std::uint32_t i = v.fanout_offset[n]; i < v.fanout_offset[n + 1];
         ++i) {
      schedule(v.fanout_gate[i]);
    }
  }
  for (std::uint32_t gs : plan.seed_gates) schedule(gs);
  std::uint64_t in0[kMaxCellInputs], in1[kMaxCellInputs];
  while (!event_heap_.empty()) {
    const auto [pos, gs] = event_heap_.front();
    std::pop_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
    event_heap_.pop_back();
    const CellSpec& cell = *v.cell[gs];
    const std::uint32_t fb = v.fanin_offset[gs];
    const std::size_t nin = v.fanin_offset[gs + 1] - fb;
    for (std::size_t i = 0; i < nin; ++i) {
      const std::uint32_t n = v.fanin_net[fb + i];
      in0[i] = g0(n);
      in1[i] = g1(n);
    }
    const std::uint32_t ob = v.output_offset[gs];
    for (int k = 0; k < cell.num_outputs; ++k) {
      const std::uint32_t out =
          v.output_net[ob + static_cast<std::uint32_t>(k)];
      const std::uint64_t w0 = ParallelSimulator::eval_cell(cell, k, {in0, nin});
      const std::uint64_t w1 = ParallelSimulator::eval_cell(cell, k, {in1, nin});
      if (ov_dirty_[out]) {
        // Preset slot (no baseline value): store unconditionally; its
        // readers were woken when it was preset.
        ov0_[out] = w0;
        ov1_[out] = w1;
      } else if (w0 != g0_[out] || w1 != g1_[out]) {
        mark(out, w0, w1);
        for (std::uint32_t i = v.fanout_offset[out];
             i < v.fanout_offset[out + 1]; ++i) {
          schedule(v.fanout_gate[i]);
        }
      }
      // else: bit-identical to the baseline — the wave stops here.
    }
  }
  // Scheduled flags persist across the pop (each gate runs once); reset
  // them for the detect_mask queries that share the scratch.
  for (std::uint32_t gs : touched_gates_) scheduled_[gs] = 0;
  touched_gates_.clear();

  // Same pattern accounting as a full load: the batch's test frames are
  // (re)played against this design either way.
  patterns_simulated_ += 2 * static_cast<std::uint64_t>(lanes_);
  ++overlay_loads_;
  overlay_dirty_nets_ += ov_dirty_list_.size();
  frame_bytes_materialized_ +=
      2 * sizeof(std::uint64_t) *
      static_cast<std::uint64_t>(ov_dirty_list_.size());
  load_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

std::uint64_t FaultSimulator::detect_mask(
    std::span<const Excitation> excitations) {
  if (cancel_expired(cancel_)) return 0;
  ++detect_mask_calls_;
  const DenseView& v = *view_;
  const std::uint64_t lane_mask =
      lanes_ == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << lanes_) - 1);
  std::uint64_t detected = 0;

  for (const Excitation& exc : excitations) {
    // Lanes where every condition literal holds and the victim's good
    // value opposes the forced value.
    std::uint64_t e = lane_mask;
    for (const CondLiteral& lit : exc.lits) {
      const std::uint64_t val =
          lit.frame == 0 ? g0(lit.net.value()) : g1(lit.net.value());
      e &= lit.value ? val : ~val;
      if (e == 0) break;
    }
    if (e == 0) continue;
    const std::uint32_t victim = exc.victim.value();
    const std::uint64_t victim_good = g1(victim);
    e &= exc.faulty_value ? ~victim_good : victim_good;
    if (e == 0) continue;

    // Event-driven forward propagation of the flip (frame 1 only).
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      // Epoch wraparound: a stale stamp equal to the restarted epoch
      // would silently resurrect old faulty values, so clear the stamps
      // before reusing epoch numbers (once per ~4.3e9 excitations).
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    const auto fv_of = [&](std::uint32_t n) {
      return stamp_[n] == epoch_ ? faulty_[n] : g1(n);
    };
    const auto set_fv = [&](std::uint32_t n, std::uint64_t val) {
      faulty_[n] = val;
      stamp_[n] = epoch_;
      touched_nets_.push_back(n);
      ++propagation_events_;
    };
    touched_nets_.clear();
    set_fv(victim,
           (victim_good & ~e) | (exc.faulty_value ? e : std::uint64_t{0}));

    // Min-heap of gates by topological position (reused buffers; the
    // per-excitation allocations here used to dominate the malloc
    // profile of heavy resynthesis probes). Sinks come from the view's
    // combinational fanout CSR, which already excludes sequential gates.
    event_heap_.clear();
    touched_gates_.clear();
    const auto schedule_sinks = [&](std::uint32_t n) {
      for (std::uint32_t i = v.fanout_offset[n]; i < v.fanout_offset[n + 1];
           ++i) {
        const std::uint32_t gs = v.fanout_gate[i];
        if (!scheduled_[gs]) {
          scheduled_[gs] = 1;
          touched_gates_.push_back(gs);
          event_heap_.emplace_back(v.topo_pos[gs], gs);
          std::push_heap(event_heap_.begin(), event_heap_.end(),
                         std::greater<>{});
        }
      }
    };
    schedule_sinks(victim);
    while (!event_heap_.empty()) {
      const auto [pos, gs] = event_heap_.front();
      std::pop_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
      event_heap_.pop_back();
      const CellSpec& cell = *v.cell[gs];
      const std::uint32_t fb = v.fanin_offset[gs];
      const std::size_t nin = v.fanin_offset[gs + 1] - fb;
      std::uint64_t ins[kMaxCellInputs];
      for (std::size_t i = 0; i < nin; ++i) {
        ins[i] = fv_of(v.fanin_net[fb + i]);
      }
      const std::uint32_t ob = v.output_offset[gs];
      for (int k = 0; k < cell.num_outputs; ++k) {
        const std::uint32_t out =
            v.output_net[ob + static_cast<std::uint32_t>(k)];
        const std::uint64_t nv =
            ParallelSimulator::eval_cell(cell, k, {ins, nin});
        if (nv != fv_of(out)) {
          set_fv(out, nv);
          schedule_sinks(out);
        }
      }
    }
    for (std::uint32_t gs : touched_gates_) scheduled_[gs] = 0;

    // Detection at observation points: only nets stamped this epoch can
    // disagree with the good machine, so scan the touched set instead of
    // every observation point.
    for (std::uint32_t ns : touched_nets_) {
      if (v.observe_flag[ns]) {
        detected |= (faulty_[ns] ^ g1(ns)) & e;
      }
    }
    // The victim itself may be observed directly.
    if (v.is_primary_output[victim]) {
      detected |= (fv_of(victim) ^ victim_good) & e;
    }
    if (detected == lane_mask) break;
  }
  return detected & lane_mask;
}

FaultSimulator& FaultSimArena::acquire(std::size_t index,
                                       std::shared_ptr<const DenseView> view) {
#ifndef NDEBUG
  // Slots must be acquired serially by the run's calling thread (the
  // vector resize below and the rebind are unsynchronized). Different
  // runs may live on different threads — slot 0 re-pins the owner.
  if (index == 0) {
    owner_ = std::this_thread::get_id();
  } else {
    assert(owner_ == std::this_thread::get_id() &&
           "FaultSimArena slots acquired from a different thread than the "
           "run master");
  }
#endif
  if (index >= slots_.size()) slots_.resize(index + 1);
  if (!slots_[index]) {
    slots_[index] = std::make_unique<FaultSimulator>(std::move(view));
  } else {
    slots_[index]->rebind(std::move(view));
  }
  return *slots_[index];
}

}  // namespace dfmres
