#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/atpg/fault_sim.hpp"
#include "src/atpg/podem.hpp"
#include "src/faults/fault.hpp"
#include "src/faults/udfm_map.hpp"
#include "src/util/cancel.hpp"
#include "src/util/stats.hpp"

namespace dfmres {

enum class FaultStatus : std::uint8_t {
  Unknown = 0,
  Detected,
  Undetectable,
  Aborted,  ///< search budget exhausted; never counted as undetectable
};

/// Detectability memo across resynthesis iterations. Valid because the
/// procedure's rewrites are function-preserving and net/gate ids are
/// never reused: a fault outside the rewritten region keeps its
/// excitation, propagation, and therefore its status (see DESIGN.md).
struct FaultStatusCache {
  std::unordered_map<Fault::Key, FaultStatus> map;

  [[nodiscard]] FaultStatus lookup(const Fault& f) const {
    const auto it = map.find(f.key());
    return it == map.end() ? FaultStatus::Unknown : it->second;
  }
  void store(const Fault& f, FaultStatus s) { map[f.key()] = s; }
};

struct AtpgOptions {
  int random_batches = 8;        ///< 64 random pattern pairs per batch
  long backtrack_limit = 4000;
  bool generate_tests = true;    ///< collect + reverse-compact a test set
  std::uint64_t seed = 12345;
  /// Worker lanes for the fault-simulation sweeps: 0 = one per hardware
  /// thread, 1 = fully serial. Results are bit-identical for every
  /// value (each worker owns a private FaultSimulator; masks land in
  /// per-fault slots and are reduced serially), so 1 is only needed
  /// when single-threaded execution itself is the point.
  int num_threads = 0;

  /// Warm start: compacted test set of a previous run over a
  /// function-preserving rewrite of the same design. A new phase 0
  /// replays these patterns through the drop sweep before any random
  /// batch or PODEM call; useful patterns join the generated test set.
  /// Ignored unless the frame width matches this netlist's CombView
  /// source count (resynthesis never touches sequential gates, so the
  /// source vector is stable across its rewrites — see DESIGN.md).
  const std::vector<TestPattern>* seed_tests = nullptr;
  /// Cone restriction: flags parallel to `universe.faults`, nonzero for
  /// faults whose excitation and propagation cones are disjoint from
  /// the rewritten region. After replay, a cone-untouched fault whose
  /// cached status is Detected is trusted without spending random
  /// patterns or PODEM on it (counted in `podem_targets_skipped`);
  /// everything else is retargeted normally.
  const std::vector<std::uint8_t>* cone_untouched = nullptr;
  /// Committed-baseline good frames for the phase-0 seed replay. When
  /// set (and the seed set matches the baseline's pattern count and
  /// frame width), each replay batch binds the baseline's frames
  /// read-only and materializes only the slots this netlist's structural
  /// diff against the baseline dirties (FaultSimulator::load_baseline) —
  /// O(cone) copied bytes per probe instead of O(netlist). Must have
  /// been built (or rebased) from exactly `seed_tests` over a design the
  /// current netlist derives from by combinational-only edits; the
  /// engine falls back to full loads whenever the copy-on-write plan is
  /// invalid. Borrowed for the duration of the call.
  const SimBaseline* baseline = nullptr;
  /// Debug/test mode: after each overlay-loaded replay batch, reload the
  /// batch fully and compare the sweep masks, counting comparisons and
  /// mismatches in the result counters (the run proceeds with the
  /// full-load masks). Roughly doubles phase-0 cost; off in production.
  bool verify_overlays = false;
  /// Preallocated simulator arena reused across calls (slot 0 = master,
  /// 1..N = sweep workers). When null a call-local arena is used.
  FaultSimArena* arena = nullptr;
  /// Cooperative cancellation: checked between batches, between PODEM
  /// targets, and every few dozen backtracks inside a single search.
  /// On expiry the run returns early with `AtpgResult::cancelled` set,
  /// unclassified faults left Unknown, and NOTHING stored into the
  /// cache (a partial run must not clobber cached verdicts).
  const CancelToken* cancel = nullptr;
};

struct AtpgResult {
  std::vector<FaultStatus> status;  ///< parallel to universe.faults
  std::vector<TestPattern> tests;   ///< compacted; empty if not requested
  std::size_t num_detected = 0;
  std::size_t num_undetectable = 0;
  std::size_t num_aborted = 0;
  /// True when the run was cut short by `AtpgOptions::cancel`; the
  /// classification is then partial (Unknown = never reached) and the
  /// test set is unusable. Callers must discard, not commit.
  bool cancelled = false;
  AtpgCounters counters;            ///< instrumentation (see util/stats)

  [[nodiscard]] double coverage(std::size_t num_faults) const {
    if (num_faults == 0) return 1.0;
    return 1.0 - static_cast<double>(num_undetectable) /
                     static_cast<double>(num_faults);
  }
};

/// Full classification of a DFM fault universe: optional warm-start
/// replay of a seed test set, random-pattern fault simulation with
/// dropping, then complete PODEM for the remainder (detect /
/// prove-undetectable / abort), with optional test-set generation and
/// reverse-order compaction. `cache`, when given, is consulted before
/// any search and updated afterwards.
[[nodiscard]] AtpgResult run_atpg(const Netlist& nl,
                                  const FaultUniverse& universe,
                                  const UdfmMap& udfm,
                                  const AtpgOptions& options = {},
                                  FaultStatusCache* cache = nullptr);

/// Split-cache variant for speculative evaluations running concurrently
/// over a shared memo: lookups consult `updates` first and fall back to
/// the read-only `base`; stores go to `updates` only. Several callers
/// may share one `base` (concurrent reads of an unmodified map are
/// safe) while each owns a private `updates` overlay; the caller
/// decides which overlays to fold back into the base.
[[nodiscard]] AtpgResult run_atpg_overlay(const Netlist& nl,
                                          const FaultUniverse& universe,
                                          const UdfmMap& udfm,
                                          const AtpgOptions& options,
                                          const FaultStatusCache* base,
                                          FaultStatusCache* updates);

}  // namespace dfmres
