// Portable kernel instantiations: compiled with the base flags only, so
// they run on any CPU. PortableWord<1> IS the historical scalar kernel
// (same code shape, same codegen); the wider ones are plain fixed-count
// loops the compiler may auto-vectorize as far as the base ISA allows.

#include "src/atpg/fault_sim_kernel.hpp"
#include "src/atpg/fault_sim_kernel_impl.hpp"
#include "src/sim/sim_word.hpp"

namespace dfmres::fsim {

const KernelOps* scalar_kernel_ops() {
  static const KernelOps ops = make_kernel_ops<PortableWord<1>>("scalar");
  return &ops;
}

const KernelOps* portable4_kernel_ops() {
  static const KernelOps ops = make_kernel_ops<PortableWord<4>>("portable4");
  return &ops;
}

const KernelOps* portable8_kernel_ops() {
  static const KernelOps ops = make_kernel_ops<PortableWord<8>>("portable8");
  return &ops;
}

}  // namespace dfmres::fsim
