#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/atpg/excitation.hpp"
#include "src/netlist/netlist.hpp"

namespace dfmres {

/// One test: a fully specified assignment per source (PIs and flop
/// outputs) for the initialization frame and the detection frame. In the
/// full-scan model the two frames are independent scan loads.
struct TestPattern {
  std::vector<std::uint8_t> frame0;
  std::vector<std::uint8_t> frame1;
};

/// 64-lane single-fault simulator with event-driven cone propagation.
/// Load a batch of up to 64 tests, then query detection masks fault by
/// fault (the engine drops detected faults as it goes).
class FaultSimulator {
 public:
  FaultSimulator(const Netlist& nl, const CombView& view);

  /// Packs tests[first..first+count) into the 64 lanes and simulates the
  /// good machine for both frames.
  void load(std::span<const TestPattern> tests, std::size_t first,
            std::size_t count);

  /// Lane mask of tests that detect a fault with the given excitations.
  [[nodiscard]] std::uint64_t detect_mask(
      std::span<const Excitation> excitations);

  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] const CombView& view() const { return view_; }

 private:
  const Netlist& nl_;
  const CombView& view_;
  int lanes_ = 0;
  std::vector<std::uint64_t> good0_, good1_;   // per net slot
  // Copy-on-write faulty values with epoch stamps (avoids clearing).
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> topo_pos_;        // gate slot -> position
  std::vector<bool> scheduled_;                // gate slot scratch
};

}  // namespace dfmres
