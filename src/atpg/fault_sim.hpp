#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/atpg/excitation.hpp"
#include "src/netlist/netlist.hpp"
#include "src/util/cancel.hpp"

namespace dfmres {

/// One test: a fully specified assignment per source (PIs and flop
/// outputs) for the initialization frame and the detection frame. In the
/// full-scan model the two frames are independent scan loads.
struct TestPattern {
  std::vector<std::uint8_t> frame0;
  std::vector<std::uint8_t> frame1;
};

/// 64-lane single-fault simulator with event-driven cone propagation.
/// Load a batch of up to 64 tests, then query detection masks fault by
/// fault (the engine drops detected faults as it goes).
///
/// Threading model: `detect_mask` reads the good-value frames but
/// mutates the `faulty_`/`stamp_`/`scheduled_` scratch, so a simulator
/// instance must never be shared between threads. Parallel sweeps give
/// each worker a private instance and copy the master's good frames in
/// with `load_from` (one memcpy per batch — the good-machine simulation
/// itself runs once, on the master).
class FaultSimulator {
 public:
  FaultSimulator(const Netlist& nl, const CombView& view);

  /// Re-targets this simulator at another netlist/view, reusing the
  /// already-allocated frame and scratch buffers (they only grow).
  /// Resets lanes, epochs, and the per-instance counters, so a rebound
  /// simulator reports counters for the new binding only.
  void rebind(const Netlist& nl, const CombView& view);

  /// Packs tests[first..first+count) into the 64 lanes and simulates the
  /// good machine for both frames.
  void load(std::span<const TestPattern> tests, std::size_t first,
            std::size_t count);

  /// Adopts another simulator's loaded batch (good-value frames + lane
  /// count) without re-simulating. Both instances must be built over the
  /// same netlist and view.
  void load_from(const FaultSimulator& other);

  /// Lane mask of tests that detect a fault with the given excitations.
  /// With an expired cancel token the query short-circuits to 0 ("not
  /// detected") — only valid when the caller discards cancelled runs.
  [[nodiscard]] std::uint64_t detect_mask(
      std::span<const Excitation> excitations);

  /// Installs a cooperative cancel token polled at detect_mask entry
  /// (nullptr = never cancelled). Sweep workers inherit it via the
  /// options of the run that acquired them, not via load_from.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] const CombView& view() const { return *view_; }

  /// Test frames simulated by `load` on this instance (2 per pattern).
  [[nodiscard]] std::uint64_t patterns_simulated() const {
    return patterns_simulated_;
  }
  /// `detect_mask` queries answered by this instance.
  [[nodiscard]] std::uint64_t detect_mask_calls() const {
    return detect_mask_calls_;
  }
  /// Faulty-value net updates during event-driven propagation.
  [[nodiscard]] std::uint64_t propagation_events() const {
    return propagation_events_;
  }

 private:
  const Netlist* nl_;
  const CombView* view_;
  int lanes_ = 0;
  std::vector<std::uint64_t> good0_, good1_;   // per net slot
  // Copy-on-write faulty values with epoch stamps (avoids clearing).
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> topo_pos_;        // gate slot -> position
  // Gate slot scratch; uint8_t instead of vector<bool> because the
  // bit-proxy read-modify-write sits on the event-propagation hot path.
  std::vector<std::uint8_t> scheduled_;
  std::vector<std::uint8_t> observe_flag_;     // net slot -> observation point
  // Per-excitation scratch reused across detect_mask calls: the event
  // min-heap, the gates whose scheduled_ flag must be reset, and the
  // nets whose faulty value was stamped this epoch (the only nets that
  // can disagree with the good machine at an observation point).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> event_heap_;
  std::vector<std::uint32_t> touched_gates_;
  std::vector<std::uint32_t> touched_nets_;
  std::uint64_t patterns_simulated_ = 0;
  std::uint64_t detect_mask_calls_ = 0;
  std::uint64_t propagation_events_ = 0;
  const CancelToken* cancel_ = nullptr;
};

/// Pool of reusable FaultSimulator instances, one per engine lane
/// (slot 0 = master, slots 1..N = parallel sweep workers). A DesignFlow
/// keeps one arena alive across `run_atpg` calls so the inner loop of
/// resynthesis stops paying a fresh round of frame/scratch allocations
/// per candidate evaluation.
///
/// Not thread-safe: acquire all slots serially (before fanning out) and
/// hand each worker its own `FaultSimulator&`.
class FaultSimArena {
 public:
  /// Returns the simulator in slot `index` rebound to (nl, view),
  /// creating it on first use. Counters reset on each acquire.
  FaultSimulator& acquire(std::size_t index, const Netlist& nl,
                          const CombView& view);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  std::vector<std::unique_ptr<FaultSimulator>> slots_;
};

}  // namespace dfmres
